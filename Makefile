GO ?= go
GOFMT ?= gofmt

.PHONY: build test race vet fmt-check errcheck crossval golden golden-degraded golden-scenario golden-contention golden-machine-degraded golden-update spec-validate cachepass race-machine bench bench-step bench-step-smoke bench-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@fmtout="$$($(GOFMT) -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi

# crossval races the tier cross-validation: all three simulation tiers
# (app-level reference, node-granular, step-based tier-0) on matched
# platform configs and seeds, under the race detector. The pattern also
# picks up TestCrossValidationStepBitIdentity in internal/stepsim — the
# full B/M1/M2 × platform × seed bit-identity matrix against crmodel.
crossval:
	$(GO) test -run TestCrossValidation -race ./...

# golden replays every registered experiment at the pinned regression
# parameters and compares each table cell against the committed goldens.
golden:
	$(GO) test -race -timeout 30m -count=1 -run TestGolden ./internal/experiments

# golden-degraded gates just the degraded-platform experiment: the
# fault-injection golden is the regression net for the injector's
# seed-derivation hygiene (a stray draw anywhere reshuffles every cell).
golden-degraded:
	$(GO) test -race -timeout 30m -count=1 -run 'TestGolden/degraded' ./internal/experiments

# golden-scenario gates just the scenario experiment: the committed
# golden pins every embedded spec's cells, so a drift in spec parsing,
# normalization, cohort scaling, or trace replay shows up as a cell diff.
golden-scenario:
	$(GO) test -race -timeout 30m -count=1 -run 'TestGolden/scenario' ./internal/experiments

# golden-contention gates just the multi-tenant contention experiment:
# its golden pins per-tenant slowdown/queue-wait/starvation under the
# shared bandwidth arbiter, so any drift in arbiter pricing, admission
# order, or the offset-start clock identity shows up as a cell diff.
golden-contention:
	$(GO) test -race -timeout 30m -count=1 -run 'TestGolden/contention' ./internal/experiments

# golden-machine-degraded gates the machine-scope fault-domain
# experiment: its golden pins the brownout repricing schedule, the
# drain-outage requeue order, the crash/requeue/give-up lifecycle, and
# the starvation-watchdog escalations — a stray draw on any machine
# fault substream reshuffles every cell.
golden-machine-degraded:
	$(GO) test -race -timeout 30m -count=1 -run 'TestGolden/machine-degraded' ./internal/experiments

# spec-validate checks every committed scenario spec and failure trace
# (examples/ plus the specs embedded in the scenario experiment) through
# the same strict load/validate path pckpt-sim -spec uses.
spec-validate:
	$(GO) run ./cmd/speccheck ./examples ./internal/experiments/specs

# golden-update regenerates testdata/golden after an intentional
# behaviour change; review the diff before committing.
golden-update:
	$(GO) test ./internal/experiments -count=1 -run TestGolden -update

# cachepass runs the cross-process cold-then-warm result-cache check:
# the same test twice against one shared cache directory — the first
# invocation simulates and populates, the second must resolve every
# configuration from disk and match an uncached reference bit-for-bit.
cachepass:
	@dir=$$(mktemp -d); \
	$(GO) test -race -timeout 30m -count=1 -run TestCacheColdWarm ./internal/experiments -cachedir $$dir && \
	$(GO) test -race -timeout 30m -count=1 -run TestCacheColdWarm ./internal/experiments -cachedir $$dir; \
	rc=$$?; rm -rf $$dir; exit $$rc

# bench runs the full benchmark suite (paper tables/figures plus the
# sim/queue/nodesim/stepsim substrate micro-benchmarks) and writes the
# parsed results as a machine-readable artefact; see EXPERIMENTS.md for
# the schema and how to compare against the committed baseline.
BENCH_OUT ?= BENCH_PR9.json
BENCH_LABEL ?= PR9
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./... | $(GO) run ./cmd/benchfmt -label $(BENCH_LABEL) -out $(BENCH_OUT)

# bench-step runs just the step-vs-process headroom comparisons: the
# step engine's hot-path/interrupt micro-benches next to the process
# engine's equivalents (the events/sec ratio is the committed BENCH_PR7
# claim), plus the episode-machinery pair behind the step-tier default
# for P1/P2 (the commits/sec ratio is the committed BENCH_PR8 claim)
# and the end-to-end P1/P2 step benches.
bench-step:
	$(GO) test -bench 'StepHotPath|StepInterrupt|StepEpisodeDrain|StepSimulateP' -run=^$$ ./internal/stepsim
	$(GO) test -bench 'WaitHotPath|InterruptHeavy' -run=^$$ ./internal/sim
	$(GO) test -bench 'EpisodeProcess' -run=^$$ ./internal/pckpt

# bench-step-smoke is the one-iteration variant of bench-step for CI:
# the episode benches (both engines) and the tier-0 micro-benches run
# once each, so the headroom pairs cannot rot unnoticed between
# baseline regenerations.
bench-step-smoke:
	$(GO) test -bench 'StepHotPath|StepInterrupt|StepEpisodeDrain|StepSimulateP' -benchtime=1x -run=^$$ ./internal/stepsim
	$(GO) test -bench 'WaitHotPath|InterruptHeavy' -benchtime=1x -run=^$$ ./internal/sim
	$(GO) test -bench 'EpisodeProcess' -benchtime=1x -run=^$$ ./internal/pckpt

# bench-smoke runs one iteration of every benchmark (the stepsim
# micro-benches included) through the same parser, so neither the
# benchmarks nor the harness can rot unnoticed.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ ./... | $(GO) run ./cmd/benchfmt -out /dev/null >/dev/null

# race-machine is a focused race pass over the shared-machine layer:
# the arbiter, admission plane, and SimulateN's cross-run worker pool
# (the machine tests include a DeepEqual worker-determinism sweep).
race-machine:
	$(GO) test -race -timeout 30m -count=1 ./internal/machine

# errcheck flags discarded results (a bare `p.Wait(d)` or `s.Validate()`
# statement) in non-test code — the class of bug vet misses.
errcheck:
	$(GO) run ./cmd/vet-ignored ./internal ./cmd

# ci is the full gate: formatting, vet, the ignored-result check (the
# interruptible sim calls, the fault-injector draws, bare Validate()
# statements, and the episode lifecycle hooks), build, scenario-spec
# validation, the FULL race-enabled test suite (no -short: the
# worker-determinism sweeps and injection bit-identity tests must run
# raced — they are exactly the tests that catch cross-worker
# nondeterminism), a dedicated race pass over the tier cross-validation
# (all three tiers), a focused race pass over the step tier's
# bit-identity matrix — all five models, episode machinery included —
# a focused race pass over the shared-machine arbiter/admission layer,
# the golden-table regression suite plus explicit degraded-platform,
# scenario, contention, and machine-degraded golden gates, the
# cold-then-warm cache pass, and one-iteration smoke runs of the full
# benchmark suite and the step-vs-process headroom pairs.
ci:
	$(MAKE) fmt-check
	$(GO) vet ./...
	$(MAKE) errcheck
	$(GO) build ./...
	$(MAKE) spec-validate
	$(MAKE) race
	$(GO) test -run TestCrossValidation -race -timeout 30m ./...
	$(GO) test -run TestCrossValidationStep -race -timeout 30m ./internal/stepsim
	$(MAKE) race-machine
	$(MAKE) golden
	$(MAKE) golden-degraded
	$(MAKE) golden-scenario
	$(MAKE) golden-contention
	$(MAKE) golden-machine-degraded
	$(MAKE) cachepass
	$(MAKE) bench-smoke
	$(MAKE) bench-step-smoke
