GO ?= go
GOFMT ?= gofmt

.PHONY: build test race vet fmt-check crossval bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@fmtout="$$($(GOFMT) -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi

# crossval races the tier cross-validation: both simulation granularities
# on matched platform configs and seeds, under the race detector.
crossval:
	$(GO) test -run TestCrossValidation -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# ci is the full gate: formatting, vet, build, the race-enabled test
# suite, and a dedicated race pass over the tier cross-validation.
ci:
	$(MAKE) fmt-check
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run TestCrossValidation -race ./...
