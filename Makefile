GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# ci is the full gate: vet, build, and the race-enabled test suite.
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
