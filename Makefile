GO ?= go
GOFMT ?= gofmt

.PHONY: build test race vet fmt-check crossval golden golden-update cachepass bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@fmtout="$$($(GOFMT) -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi

# crossval races the tier cross-validation: both simulation granularities
# on matched platform configs and seeds, under the race detector.
crossval:
	$(GO) test -run TestCrossValidation -race ./...

# golden replays every registered experiment at the pinned regression
# parameters and compares each table cell against the committed goldens.
golden:
	$(GO) test -race -timeout 30m -count=1 -run TestGolden ./internal/experiments

# golden-update regenerates testdata/golden after an intentional
# behaviour change; review the diff before committing.
golden-update:
	$(GO) test -count=1 -run TestGolden -update ./internal/experiments

# cachepass runs the cross-process cold-then-warm result-cache check:
# the same test twice against one shared cache directory — the first
# invocation simulates and populates, the second must resolve every
# configuration from disk and match an uncached reference bit-for-bit.
cachepass:
	@dir=$$(mktemp -d); \
	$(GO) test -race -timeout 30m -count=1 -run TestCacheColdWarm ./internal/experiments -cachedir $$dir && \
	$(GO) test -race -timeout 30m -count=1 -run TestCacheColdWarm ./internal/experiments -cachedir $$dir; \
	rc=$$?; rm -rf $$dir; exit $$rc

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# ci is the full gate: formatting, vet, build, the race-enabled test
# suite, a dedicated race pass over the tier cross-validation, the
# golden-table regression suite, and the cold-then-warm cache pass.
# The broad race pass runs -short: the golden suite and the worker
# determinism sweep skip there (the goldens get a dedicated race pass
# below; both run unraced in `test`), which keeps the slowest package
# inside the per-package timeout.
ci:
	$(MAKE) fmt-check
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race -short -timeout 30m ./...
	$(GO) test -run TestCrossValidation -race -timeout 30m ./...
	$(MAKE) golden
	$(MAKE) cachepass
