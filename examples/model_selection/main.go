// Model selection: the paper's Recommendation (after Observation 6)
// operationalised. For every Table I application it applies the rule —
// "systems with a high fault rate and low lead times should use p-ckpt
// (P1) for large applications with short runtimes; long-running
// applications should use hybrid p-ckpt (P2) irrespective of size and
// failure rate" — and then validates the choice by simulating both
// candidates plus the analytical Eq. (8) verdict.
//
//	go run ./examples/model_selection [-runs 150]
package main

import (
	"flag"
	"fmt"

	"pckpt/internal/analytic"
	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/lm"
	"pckpt/internal/platform"
	"pckpt/internal/stats"
	"pckpt/internal/tablefmt"
	"pckpt/internal/workload"
)

// recommend applies the paper's rule of thumb.
func recommend(app workload.App, sys failure.System) crmodel.Model {
	longRunning := app.ComputeHours >= 360
	large := app.TotalCkptGB >= 1e4
	highFailureRate := sys.JobFailureRate(app.Nodes)*app.ComputeSeconds() >= 3
	if longRunning {
		return crmodel.ModelP2
	}
	if large && highFailureRate {
		return crmodel.ModelP1
	}
	return crmodel.ModelP2
}

func main() {
	runs := flag.Int("runs", 150, "simulation runs per configuration")
	flag.Parse()

	sys := failure.Titan
	t := tablefmt.NewTable("App", "recommended", "P1 red.", "P2 red.", "simulated best", "Eq.(8) verdict (α=3)")
	for _, app := range workload.Summit() {
		rec := recommend(app, sys)
		base := crmodel.SimulateN(crmodel.Config{Model: crmodel.ModelB, Config: platform.Config{App: app, System: sys}}, *runs, 3)
		baseTotal := base.MeanOverheads().Total()
		reds := map[crmodel.Model]float64{}
		for _, m := range []crmodel.Model{crmodel.ModelP1, crmodel.ModelP2} {
			agg := crmodel.SimulateN(crmodel.Config{Model: m, Config: platform.Config{App: app, System: sys}}, *runs, 3)
			reds[m] = stats.PercentReduction(baseTotal, agg.MeanOverheads().Total())
		}
		best := crmodel.ModelP1
		if reds[crmodel.ModelP2] > reds[crmodel.ModelP1] {
			best = crmodel.ModelP2
		}
		// The Eq. (8) view: does p-ckpt beat pure LM at the default α?
		sigma := (crmodel.Config{Model: crmodel.ModelP2, Config: platform.Config{App: app, System: sys}}).Sigma()
		if sigma >= analytic.SigmaMax {
			sigma = analytic.SigmaMax - 1e-9
		}
		verdict := "LM"
		if analytic.PckptWins(lm.DefaultAlpha, sigma, 1, 1) {
			verdict = "p-ckpt"
		}
		t.AddRow(app.Name, rec.String(),
			tablefmt.Percent(reds[crmodel.ModelP1]),
			tablefmt.Percent(reds[crmodel.ModelP2]),
			best.String(), verdict)
	}
	fmt.Println("paper Recommendation applied to the Table I catalogue (Titan failures):")
	fmt.Println(t.String())
	fmt.Println("note: with the Table I runtimes (all ≥120 h) the checkpoint-overhead savings of")
	fmt.Println("P2 dominate, matching the paper's advice that long-running applications use P2;")
	fmt.Println("P1's edge appears on failure-prone systems and short-running large apps (Obs. 6/9).")
}
