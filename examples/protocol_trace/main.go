// Protocol trace: run the node-level coordinated prioritized checkpoint
// protocol (Sec. VI of the paper) on a small cluster and print the full
// event log — the p-ckpt request broadcast, the lead-time priority queue
// draining vulnerable nodes one by one over the uncontended PFS path, a
// live migration aborted by a shorter-lead prediction, the pfs-commit
// broadcast, and the healthy nodes' phase-2 commit.
//
//	go run ./examples/protocol_trace
package main

import (
	"fmt"

	"pckpt/internal/iomodel"
	"pckpt/internal/lm"
	"pckpt/internal/pckpt"
)

func main() {
	cfg := pckpt.Config{
		Nodes:     32,
		PerNodeGB: 40, // S3D-like footprint: ≈3s prioritized write, θ≈9.6s
		IO:        iomodel.New(iomodel.DefaultSummit()),
		LM:        lm.Default(),
		Hybrid:    true,
	}
	theta := cfg.LM.Theta(cfg.PerNodeGB)
	fmt.Printf("cluster: %d nodes, %g GB/node, θ = %.2f s\n\n", cfg.Nodes, cfg.PerNodeGB, theta)

	// A busy episode: node 7 has plenty of lead and starts migrating;
	// node 3's short-lead prediction forces p-ckpt, aborting the
	// migration; nodes 12 and 20 become vulnerable during phase 1 and
	// join the priority queue — 20 with less lead, so it overtakes 12.
	preds := []pckpt.Prediction{
		{Node: 7, At: 0, Lead: 3 * theta},
		{Node: 3, At: 2, Lead: 0.5 * theta},
		{Node: 12, At: 4, Lead: 500},
		{Node: 20, At: 5, Lead: 60},
	}
	res := pckpt.Run(cfg, preds)

	for _, line := range res.Trace {
		fmt.Println(line)
	}
	fmt.Println()
	fmt.Printf("commit order (by lead-time priority): %v\n", res.CommitOrder)
	fmt.Printf("phase 1 ended %.2fs, phase 2 ended %.2fs\n", res.Phase1End, res.Phase2End)
	fmt.Printf("mitigated %d/%d vulnerable nodes\n", res.Mitigated(), len(res.Outcomes))
	for _, o := range res.Outcomes {
		fmt.Printf("  node %-2d %-20s done %7.2fs deadline %7.2fs mitigated=%v\n",
			o.Node, o.Action, o.DoneAt, o.Deadline, o.Mitigated)
	}
}
