// Node granularity: run the C/R system with one simulated process per
// compute node (internal/nodesim — the "complete implementation" tier the
// paper leaves out of scope) next to the application-level model the
// paper's evaluation uses (internal/crmodel), on the identical failure
// stream, and show that the two tiers tell the same story.
//
//	go run ./examples/node_granularity [-nodes 48] [-hours 24] [-seeds 20]
package main

import (
	"flag"
	"fmt"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/nodesim"
	"pckpt/internal/platform"
	"pckpt/internal/stats"
	"pckpt/internal/tablefmt"
	"pckpt/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 48, "cluster size (one simulated process per node)")
	hours := flag.Float64("hours", 24, "application compute hours")
	seeds := flag.Int("seeds", 20, "independent runs to average")
	flag.Parse()

	app := workload.App{Name: "demo", Nodes: *nodes, TotalCkptGB: float64(*nodes) * 20, ComputeHours: *hours}
	sys := failure.System{Name: "busy", Shape: 0.75, ScaleHours: 40, Nodes: *nodes}

	pairs := []struct {
		policy nodesim.Policy
		model  crmodel.Model
	}{
		{nodesim.PolicyBase, crmodel.ModelB},
		{nodesim.PolicyPckpt, crmodel.ModelP1},
		{nodesim.PolicyHybrid, crmodel.ModelP2},
	}

	t := tablefmt.NewTable("policy", "tier", "ckpt(h)", "recomp(h)", "recov(h)", "total(h)", "FT", "wall(h)")
	for _, pair := range pairs {
		var nAgg, cAgg stats.Agg
		for seed := uint64(0); seed < uint64(*seeds); seed++ {
			nAgg.Add(nodesim.Simulate(nodesim.Config{Policy: pair.policy, Config: platform.Config{App: app, System: sys}}, seed))
			cAgg.Add(crmodel.Simulate(crmodel.Config{Model: pair.model, Config: platform.Config{App: app, System: sys}}, seed))
		}
		for _, row := range []struct {
			tier string
			agg  *stats.Agg
		}{{"node-granular", &nAgg}, {"app-level", &cAgg}} {
			mo := row.agg.MeanOverheads().Hours()
			t.AddRow(pair.policy.NodeLabel(), row.tier,
				fmt.Sprintf("%.3f", mo.Checkpoint),
				fmt.Sprintf("%.3f", mo.Recompute),
				fmt.Sprintf("%.3f", mo.Recovery),
				fmt.Sprintf("%.3f", mo.Total()),
				fmt.Sprintf("%.2f", row.agg.MeanFTRatio()),
				fmt.Sprintf("%.2f", row.agg.MeanWallSeconds()/3600))
		}
	}
	fmt.Printf("%d nodes × %.0f h under %s failures, %d seeds, identical streams per pair:\n\n",
		app.Nodes, app.ComputeHours, sys.Name, *seeds)
	fmt.Println(t.String())
	fmt.Println("The node-granular tier runs the actual protocol (priority lane, per-node")
	fmt.Println("processes); the app-level tier is the paper's simulation style. Agreement")
	fmt.Println("between them is asserted in internal/nodesim's cross-validation test.")
}
