// Lead-time variability: sweep the prediction lead-time scale from −50%
// to +50% (the axis of the paper's Figs. 4 and 7) for one application and
// compare how the four prediction-assisted C/R models hold up. The
// headline behaviour: safeguard checkpointing (M1) is useless at scale,
// live migration (M2) collapses as soon as leads shrink, while p-ckpt
// (P1) and the hybrid (P2) keep most of their benefit.
//
//	go run ./examples/leadtime_variability [-app CHIMERA] [-runs 150]
package main

import (
	"flag"
	"fmt"
	"log"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/platform"
	"pckpt/internal/stats"
	"pckpt/internal/tablefmt"
	"pckpt/internal/workload"
)

func main() {
	appName := flag.String("app", "CHIMERA", "Table I application")
	runs := flag.Int("runs", 150, "simulation runs per point")
	flag.Parse()

	app, err := workload.ByName(*appName)
	if err != nil {
		log.Fatal(err)
	}

	const seed = 7
	base := crmodel.SimulateN(crmodel.Config{Model: crmodel.ModelB, Config: platform.Config{App: app, System: failure.Titan}}, *runs, seed)
	baseTotal := base.MeanOverheads().Total()
	fmt.Printf("%s under Titan failures: base model total overhead %s\n\n", app.Name, tablefmt.Hours(baseTotal))

	models := []crmodel.Model{crmodel.ModelM1, crmodel.ModelM2, crmodel.ModelP1, crmodel.ModelP2}
	t := tablefmt.NewTable("lead Δ", "M1", "M2", "P1", "P2", "winner")
	for _, scale := range []float64{0.5, 0.7, 0.9, 1.0, 1.1, 1.3, 1.5} {
		row := []string{fmt.Sprintf("%+.0f%%", (scale-1)*100)}
		best, bestRed := "", -1e18
		for _, m := range models {
			cfg := crmodel.Config{Model: m, Config: platform.Config{App: app, System: failure.Titan, LeadScale: scale}}
			agg := crmodel.SimulateN(cfg, *runs, seed)
			red := stats.PercentReduction(baseTotal, agg.MeanOverheads().Total())
			row = append(row, tablefmt.Percent(red))
			if red > bestRed {
				best, bestRed = m.String(), red
			}
		}
		t.AddRow(append(row, best)...)
	}
	fmt.Println("total overhead reduction vs base model B:")
	fmt.Println(t.String())
}
