// Quickstart: simulate the hybrid p-ckpt C/R model (the paper's model P2)
// on one Table I application and print the overhead breakdown against the
// periodic-checkpointing base model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/platform"
	"pckpt/internal/stats"
	"pckpt/internal/workload"
)

func main() {
	// Pick a workload from the paper's Table I catalogue.
	app, err := workload.ByName("XGC")
	if err != nil {
		log.Fatal(err)
	}

	// Configure the hybrid p-ckpt model: failure prediction drives live
	// migration when lead time permits, coordinated prioritized
	// checkpointing otherwise. Everything else (Summit I/O model, Fig. 2a
	// lead times, Desh-grade predictor accuracy) defaults to the paper's
	// setup.
	cfg := crmodel.Config{
		Model:  crmodel.ModelP2,
		Config: platform.Config{App: app, System: failure.Titan},
	}
	fmt.Printf("application: %v\n", app)
	fmt.Printf("LM threshold θ = %.1f s, Eq.(2) σ = %.2f\n\n", cfg.Theta(), cfg.Sigma())

	// Average 200 independent runs (deterministic in the seed), then do
	// the same for the base model to compute the paper's headline
	// "reduction vs B".
	const runs, seed = 200, 1
	hybrid := crmodel.SimulateN(cfg, runs, seed)

	base := cfg
	base.Model = crmodel.ModelB
	baseline := crmodel.SimulateN(base, runs, seed)

	bo, ho := baseline.MeanOverheads(), hybrid.MeanOverheads()
	fmt.Printf("base model B:   %v\n", bo)
	fmt.Printf("hybrid p-ckpt:  %v\n", ho)
	fmt.Printf("FT ratio:       %.2f of failures handled proactively\n", hybrid.MeanFTRatio())
	_, _, _, total := stats.ReductionBreakdown(bo, ho)
	fmt.Printf("total overhead reduction: %.1f%% (paper reports ≈53-65%% across apps)\n", total)
}
