// Timeline: trace a single hybrid p-ckpt run and print its full event
// log plus a one-line activity strip — checkpoint cycles, predictions,
// migrations, p-ckpt episodes, failures, recoveries. Useful for
// understanding what the C/R model actually does with a failure stream.
//
//	go run ./examples/timeline [-app XGC] [-model P2] [-seed 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/platform"
	"pckpt/internal/trace"
	"pckpt/internal/workload"
)

func main() {
	appName := flag.String("app", "XGC", "Table I application")
	modelName := flag.String("model", "P2", "C/R model")
	seed := flag.Uint64("seed", 4, "run seed")
	full := flag.Bool("full", false, "print every event (default: skip per-cycle noise)")
	flag.Parse()

	app, err := workload.ByName(*appName)
	if err != nil {
		log.Fatal(err)
	}
	model, err := crmodel.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}

	var buf trace.Buffer
	cfg := crmodel.Config{Model: model, Config: platform.Config{App: app, System: failure.Titan}, Trace: &buf}
	res := crmodel.Simulate(cfg, *seed)

	if *full {
		fmt.Print(buf.Render())
	} else {
		interesting := buf.Filter(
			trace.Prediction, trace.SpuriousPrediction,
			trace.MigrationStart, trace.MigrationDone, trace.MigrationAborted,
			trace.EpisodeStart, trace.VulnerableCommit, trace.EpisodeEnd,
			trace.SafeguardStart, trace.SafeguardEnd,
			trace.Failure, trace.RecoveryDone, trace.Complete,
		)
		for _, e := range interesting {
			fmt.Println(e)
		}
	}

	fmt.Println("\nevent counts:")
	fmt.Print(buf.Summary())
	fmt.Println("\nactivity strip (whole run, left → right):")
	fmt.Println(buf.Gantt(100))
	fmt.Printf("\nrun result: %v, FT ratio %.2f, wall %.1f h\n",
		res.Overheads, res.FTRatio(), res.WallSeconds/3600)
}
