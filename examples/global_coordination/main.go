// Global coordination: the paper's out-of-scope extension in action.
// Three applications share the machine; their p-ckpt episodes overlap.
// Under the published per-job protocol, one job's vulnerable node races
// its failure deadline while another job's 1500-node phase-2 flood owns
// the PFS — and loses. A machine-wide vulnerable-first view restores the
// contention-free critical path.
//
//	go run ./examples/global_coordination
package main

import (
	"fmt"

	"pckpt/internal/globalview"
	"pckpt/internal/iomodel"
)

func main() {
	io := iomodel.New(iomodel.DefaultSummit())
	cfg := globalview.Config{
		Jobs: []globalview.Job{
			{Name: "S3D-A", Nodes: 505, PerNodeGB: 40},
			{Name: "S3D-B", Nodes: 505, PerNodeGB: 40},
			{Name: "XGC-C", Nodes: 1515, PerNodeGB: 98.76},
		},
		IO: io,
	}

	// XGC-C's episode starts first; its huge bulk phase is mid-flight
	// when the two S3D jobs' short-lead predictions arrive.
	preds := []globalview.Prediction{
		{Job: 2, Node: 100, At: 0, Lead: 1000},
		{Job: 0, Node: 7, At: 15, Lead: io.SingleNodePFSWriteTime(40) * 2},
		{Job: 1, Node: 9, At: 16, Lead: io.SingleNodePFSWriteTime(40) * 2},
	}

	for _, mode := range []globalview.Mode{globalview.PerJob, globalview.Global} {
		c := cfg
		c.Mode = mode
		res := globalview.Run(c, preds)
		fmt.Printf("--- %s coordination (peak concurrent writer groups: %d)\n", mode, res.PeakLaneSharers)
		for _, o := range res.Outcomes {
			verdict := "MISSED"
			if o.Mitigated {
				verdict = "mitigated"
			}
			fmt.Printf("  %-6s node %-3d commit %7.2fs  deadline %7.2fs  episode done %8.2fs  %s\n",
				res.Jobs[o.Job].Name, o.Node, o.CommitAt, o.Deadline, o.EpisodeEnd, verdict)
		}
		fmt.Printf("  FT ratio: %.2f\n\n", res.FTRatio())
	}
	fmt.Println("The global view defers XGC-C's bulk phase for a few seconds so both")
	fmt.Println("S3D vulnerable nodes commit uncontended — the deadline math of the")
	fmt.Println("p-ckpt paper holds machine-wide only with a global system view.")
}
