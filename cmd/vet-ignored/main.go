// Command vet-ignored flags discarded error returns from the simulation
// engine's interruptible blocking calls. `go vet` does not check unused
// call results, and a bare statement like
//
//	p.Wait(cmd.dur)
//
// silently conflates "the wait expired" with "the phase was aborted by an
// interrupt" — exactly the nodesim.nodeLoop bug this repository shipped.
// Explicitly discarding with `_ = p.Wait(d)` is accepted: it states the
// caller considered the abort path and chose to ignore it.
//
// The checker is deliberately type-free (pure AST): it looks for
// expression-statement calls to the engine's error-returning method set.
// That catches every call through the sim API without needing a full type
// check, and a method of another type that happens to share a name is
// still worth an explicit discard at these call sites.
//
// Usage: vet-ignored <dir>...  (walks each tree, skipping _test.go files)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// interruptible is the sim API surface returning an error that encodes an
// interrupt delivery. Dropping one of these on the floor loses an abort.
var interruptible = map[string]bool{
	"Wait":      true, // Proc.Wait
	"WaitEvent": true, // Proc.WaitEvent
	"Join":      true, // Proc.Join
	"Acquire":   true, // Resource.Acquire
	"Await":     true, // Barrier.Await
}

// injectorHooks is the faultinject draw surface. Unlike the interruptible
// set these are zero-argument (or attempt-indexed) draws whose boolean
// result IS the injected fault: a bare statement both discards the fault
// — silently un-degrading the platform — and still consumes the rng draw,
// desynchronising the plan. There is no legitimate discard, so `_ =` is
// not suggested.
var injectorHooks = map[string]bool{
	"BBWriteFails":        true, // Injector.BBWriteFails
	"PFSWriteFails":       true, // Injector.PFSWriteFails
	"CorruptCommit":       true, // Injector.CorruptCommit
	"RestartAttemptFails": true, // Injector.RestartAttemptFails
	"CascadeRecovery":     true, // Injector.CascadeRecovery

	// Machine-scope injector draws: a dropped gap or window both loses
	// the fault event and shifts every later draw on that substream.
	"NextBrownoutGap":     true, // MachineInjector.NextBrownoutGap
	"BrownoutWindow":      true, // MachineInjector.BrownoutWindow
	"NextDrainOutageGap":  true, // MachineInjector.NextDrainOutageGap
	"DrainOutageWindow":   true, // MachineInjector.DrainOutageWindow
	"NextCrashGap":        true, // MachineInjector.NextCrashGap
	"CrashRack":           true, // MachineInjector.CrashRack
	"CrashBackoffSeconds": true, // MachineInjector.CrashBackoffSeconds
}

// validators are zero-argument error-returning checks whose entire point
// is the returned error: platform.Config.Validate, scenario.Spec.Validate,
// scenario.Trace.Validate, failure.Replay.Validate. A bare `x.Validate()`
// statement runs the check and throws the verdict away — an invalid spec
// sails straight into the simulator.
var validators = map[string]bool{
	"Validate": true,
}

// stepDrivers are the step engine's zero-argument driver primitives whose
// boolean result reports whether an event was actually processed. A bare
// `e.ProcessNextEvent()` in a driver loop discards the "engine drained"
// signal — the loop spins forever on an empty heap.
var stepDrivers = map[string]bool{
	"ProcessNextEvent": true, // stepsim.Engine.ProcessNextEvent
}

// lifecycleHooks is the policy.State episode surface whose results carry
// protocol state transitions, not status codes. The step-tier episode
// continuations call these between engine callbacks, where no compiler
// or runtime signal marks a dropped result: a bare FinishMigration
// discards "this migration was already aborted" and double-counts the
// node; a bare ConsumeAvoided/TakeRescheduled both loses the verdict
// and still clears the flag, desynchronising the continuation from the
// state machine. An explicit `_ =` is accepted for the tiers that
// genuinely don't branch (the statistical tier commits unconditionally).
var lifecycleHooks = map[string]bool{
	"FinishMigration": true, // policy.State.FinishMigration
	"ConsumeAvoided":  true, // policy.State.ConsumeAvoided
	"TakeRescheduled": true, // policy.State.TakeRescheduled
	"CommitPFS":       true, // policy.State.CommitPFS
	"FinishDrain":     true, // policy.State.FinishDrain
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: vet-ignored <dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, root := range os.Args[1:] {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			n, err := checkFile(path)
			bad += n
			return err
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vet-ignored: %v\n", err)
			os.Exit(2)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "vet-ignored: %d ignored result(s)\n", bad)
		os.Exit(1)
	}
}

// checkFile reports every offending statement in one file.
func checkFile(path string) (int, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return 0, err
	}
	bad := 0
	ast.Inspect(file, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if injectorHooks[name] {
			// Injector draws are flagged regardless of arity: dropping one
			// un-degrades the platform while still consuming the draw.
			pos := fset.Position(call.Pos())
			fmt.Printf("%s: result of .%s(...) ignored (an injected fault must be handled, not dropped)\n",
				pos, name)
			bad++
			return true
		}
		if validators[name] && len(call.Args) == 0 {
			// Zero-arg Validate() calls exist only for their error result.
			pos := fset.Position(call.Pos())
			fmt.Printf("%s: result of .%s() ignored (the validation verdict is the call's only output)\n",
				pos, name)
			bad++
			return true
		}
		if stepDrivers[name] && len(call.Args) == 0 {
			pos := fset.Position(call.Pos())
			fmt.Printf("%s: result of .%s() ignored (a discarded false spins a driver loop on a drained engine)\n",
				pos, name)
			bad++
			return true
		}
		if lifecycleHooks[name] {
			// Episode lifecycle hooks are flagged regardless of arity: the
			// result is a state transition the continuation must act on.
			pos := fset.Position(call.Pos())
			fmt.Printf("%s: result of .%s(...) ignored (an episode state transition drives the continuation; use `_ =` only where the tier genuinely doesn't branch)\n",
				pos, name)
			bad++
			return true
		}
		if !interruptible[name] {
			return true
		}
		// Every interruptible sim method takes at least one argument;
		// zero-arg calls are other APIs (sync.WaitGroup.Wait and kin).
		if len(call.Args) == 0 {
			return true
		}
		pos := fset.Position(call.Pos())
		fmt.Printf("%s: result of .%s(...) ignored (use `_ =` if the interrupt is deliberately dropped)\n",
			pos, name)
		bad++
		return true
	})
	return bad, nil
}
