// Command speccheck validates every scenario spec and failure trace under
// the given directories — the `make spec-validate` gate that keeps
// committed JSON (examples/, embedded experiment specs) loadable by the
// exact code paths pckpt-sim -spec and the scenario experiment use.
//
// Dispatch is by strict parse: the spec and trace schemas reject each
// other's fields, so a file is checked as whichever of the two it parses
// as (specs first; spec files additionally resolve their trace_file
// references relative to themselves, exactly like scenario.Load).
//
// Usage: speccheck <dir>...
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"pckpt/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: speccheck <dir>...")
		os.Exit(2)
	}
	files, bad := 0, 0
	for _, root := range os.Args[1:] {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".json") {
				return nil
			}
			files++
			if err := checkFile(path); err != nil {
				fmt.Fprintf(os.Stderr, "speccheck: %v\n", err)
				bad++
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "speccheck: %v\n", err)
			os.Exit(2)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "speccheck: %d of %d file(s) invalid\n", bad, files)
		os.Exit(1)
	}
	fmt.Printf("speccheck: %d file(s) valid\n", files)
}

// checkFile validates one JSON file as a spec or a trace.
func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	_, specErr := scenario.Parse(data)
	if specErr == nil {
		// Load re-reads, resolves trace_file, normalizes, and validates —
		// the full pckpt-sim -spec path.
		_, err := scenario.Load(path)
		return err
	}
	tr, traceErr := scenario.ParseTrace(data)
	if traceErr != nil {
		return fmt.Errorf("%s: neither spec (%v) nor trace (%v)", path, specErr, traceErr)
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
