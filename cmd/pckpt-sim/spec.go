package main

import (
	"flag"
	"fmt"
	"runtime"

	"pckpt/internal/experiments"
	"pckpt/internal/machine"
	"pckpt/internal/policy"
	"pckpt/internal/runcache"
	"pckpt/internal/scenario"
	"pckpt/internal/stats"
	"pckpt/internal/tablefmt"
)

// specConflicts are flags that select what the spec itself declares — the
// cohort, the failure source, the run shape of the flag mode. Combining
// them with -spec is ambiguous, so it is an error rather than a silent
// precedence pick.
var specConflicts = []string{"app", "system", "baseline", "trace", "metrics", "metrics-out"}

// specOverridable documents the precedence rule for everything else: the
// spec wins over flag *defaults*, but an explicitly set flag overrides
// the spec's field (detected via flag.Visit, so `-runs 200` overrides
// even when 200 is also the flag default).
type specOverrides struct {
	set map[string]bool

	model     string
	runs      int
	seed      uint64
	leadScale float64
	fn, fp    float64
	alpha     float64

	injBB, injPFS, injCorrupt, injRestart, injCascade, injBackoff float64
	injRetries                                                    int

	mBrownRate, mBrownMean, mBlackout, mDrainRate, mCrashRate, mCrashBack, mEscalate float64
	mDrainSlots, mCrashRetries                                                       int
}

// explicitFlags records which flags the command line actually set.
func explicitFlags() map[string]bool {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// applyOverrides folds explicitly set flags into the loaded spec. The
// spec from Load is already normalized, so every block pointer is
// non-nil except Faults — and the result is deliberately NOT
// re-normalized: an explicit zero (`-seed 0`) must stay zero, exactly
// as it would in flag mode, not snap back to the spec default.
func applyOverrides(s *scenario.Spec, ov specOverrides) *scenario.Spec {
	if ov.set["model"] {
		s.Policies = []string{ov.model}
	}
	if ov.set["runs"] {
		s.Runs = ov.runs
	}
	if ov.set["seed"] {
		s.Seed = ov.seed
	}
	if ov.set["lead-scale"] {
		s.Platform.LeadScale = ov.leadScale
	}
	if ov.set["fn"] {
		s.Platform.FNRate = ov.fn
	}
	if ov.set["fp"] {
		s.Platform.FPRate = ov.fp
	}
	if ov.set["alpha"] {
		s.Platform.LMAlpha = ov.alpha
	}
	inject := func(name string, apply func(*scenario.FaultSpec)) {
		if !ov.set[name] {
			return
		}
		if s.Platform.Faults == nil {
			s.Platform.Faults = &scenario.FaultSpec{}
		}
		apply(s.Platform.Faults)
	}
	inject("inject-bb", func(f *scenario.FaultSpec) { f.BBWriteFailProb = ov.injBB })
	inject("inject-pfs", func(f *scenario.FaultSpec) { f.PFSWriteFailProb = ov.injPFS })
	inject("inject-corrupt", func(f *scenario.FaultSpec) { f.CorruptProb = ov.injCorrupt })
	inject("inject-restart", func(f *scenario.FaultSpec) { f.RestartFailProb = ov.injRestart })
	inject("inject-cascade", func(f *scenario.FaultSpec) { f.CascadeProb = ov.injCascade })
	inject("inject-retries", func(f *scenario.FaultSpec) { f.RestartRetries = ov.injRetries })
	inject("inject-backoff", func(f *scenario.FaultSpec) { f.RestartBackoffSeconds = ov.injBackoff })
	if s.Machine != nil {
		minject := func(name string, apply func(*scenario.MachineFaultSpec)) {
			if !ov.set[name] {
				return
			}
			if s.Machine.Faults == nil {
				s.Machine.Faults = &scenario.MachineFaultSpec{}
			}
			apply(s.Machine.Faults)
		}
		minject("machine-brownout-rate", func(f *scenario.MachineFaultSpec) { f.BrownoutRatePerHour = ov.mBrownRate })
		minject("machine-brownout-mean", func(f *scenario.MachineFaultSpec) { f.BrownoutMeanSeconds = ov.mBrownMean })
		minject("machine-blackout-prob", func(f *scenario.MachineFaultSpec) { f.BlackoutProb = ov.mBlackout })
		minject("machine-drain-outage-rate", func(f *scenario.MachineFaultSpec) { f.DrainOutageRatePerHour = ov.mDrainRate })
		minject("machine-drain-outage-slots", func(f *scenario.MachineFaultSpec) { f.DrainOutageSlots = ov.mDrainSlots })
		minject("machine-crash-rate", func(f *scenario.MachineFaultSpec) { f.CrashRatePerHour = ov.mCrashRate })
		minject("machine-crash-retries", func(f *scenario.MachineFaultSpec) { f.CrashMaxRetries = ov.mCrashRetries })
		minject("machine-crash-backoff", func(f *scenario.MachineFaultSpec) { f.CrashBackoffSeconds = ov.mCrashBack })
		minject("machine-starve-escalation", func(f *scenario.MachineFaultSpec) { f.StarvationEscalationSeconds = ov.mEscalate })
	}
	return s
}

// machineFlags are the -machine-* overrides; they only mean something
// for a spec with a machine block.
var machineFlags = []string{
	"machine-brownout-rate", "machine-brownout-mean", "machine-blackout-prob",
	"machine-drain-outage-rate", "machine-drain-outage-slots",
	"machine-crash-rate", "machine-crash-retries", "machine-crash-backoff",
	"machine-starve-escalation",
}

// runSpec executes one scenario spec: every cohort × policy cell
// simulates with the spec's run/seed plan (matching the flag path's seed
// usage exactly, so a spec mirroring a flag invocation is bit-identical
// to it), optionally resolving cells from a runcache directory first.
// Cells run on the selected tier — the step tier by default — which
// must be bit-identical to the reference: cache keys are tier-agnostic,
// so a cached cell must not depend on which tier produced it.
func runSpec(path, cacheDir string, tier experiments.Tier, ov specOverrides) error {
	for _, name := range specConflicts {
		if ov.set[name] {
			return fmt.Errorf("pckpt-sim: -%s conflicts with -spec: the spec declares the cohort, failure source, and output plan; override its numbers with -runs/-seed/-model/-lead-scale/-fn/-fp/-alpha/-inject-*", name)
		}
	}
	if !tier.BitIdentical {
		return fmt.Errorf("pckpt-sim: spec cells require a tier bit-identical to the reference; the %s tier is not (use -tier app or the default)", tier.Name)
	}
	s, err := scenario.Load(path)
	if err != nil {
		return err
	}
	if s.Machine == nil {
		for _, name := range machineFlags {
			if ov.set[name] {
				return fmt.Errorf("pckpt-sim: -%s needs a spec with a machine block (the machine-fault plan degrades a shared machine, not a solo run)", name)
			}
		}
	}
	s = applyOverrides(s, ov)
	if s.Machine != nil {
		return runMachineSpec(s, cacheDir)
	}
	cfgs, err := s.Configs()
	if err != nil {
		return err
	}

	var store *runcache.Store
	if cacheDir != "" {
		if store, err = runcache.Open(cacheDir); err != nil {
			return err
		}
	}

	fmt.Printf("scenario %s: %d configurations (%d runs each, seed %d)\n", s.Name, len(cfgs), s.Runs, s.Seed)
	if s.Description != "" {
		fmt.Println(s.Description)
	}
	fmt.Println()

	// Baseline totals per cohort label, for the "vs B" column.
	baseline := map[string]stats.Overheads{}
	aggs := make([]*stats.Agg, len(cfgs))
	for i, rc := range cfgs {
		agg, err := runSpecCell(s, rc, tier, store)
		if err != nil {
			return err
		}
		aggs[i] = agg
		if rc.Policy == policy.B {
			baseline[rc.Label] = agg.MeanOverheads()
		}
	}

	t := tablefmt.NewTable("Config", "Model", "Ckpt", "Recomp", "Recov", "Total", "Wall", "FT", "vs B")
	for i, rc := range cfgs {
		agg := aggs[i]
		mo := agg.MeanOverheads()
		vsB := "-"
		if base, ok := baseline[rc.Label]; ok && rc.Policy != policy.B {
			_, _, _, tot := stats.ReductionBreakdown(base, mo)
			vsB = tablefmt.Percent(tot)
		}
		t.AddRow(rc.Label, rc.Policy.String(),
			tablefmt.Hours(mo.Checkpoint), tablefmt.Hours(mo.Recompute), tablefmt.Hours(mo.Recovery),
			tablefmt.Hours(mo.Total()), tablefmt.Hours(agg.MeanWallSeconds()),
			fmt.Sprintf("%.3f", agg.MeanFTRatio()), vsB)
	}
	fmt.Println(t.String())

	if store != nil {
		st := store.Totals()
		fmt.Printf("cache: %d hits, %d misses\n", st.Hits, st.Misses)
	}
	return nil
}

// runMachineSpec executes a spec with a machine block: the cohort ×
// policy cells become tenants of one shared machine (node pool, PFS
// bandwidth ceiling, drain slots), and the report is per-tenant slowdown
// versus the same cell run solo, admission queue wait, and bandwidth
// starvation, averaged over the spec's runs. Machine results are whole-
// cohort outcomes rather than per-cell aggregates, so the runcache does
// not apply.
func runMachineSpec(s *scenario.Spec, cacheDir string) error {
	cfg, err := s.MachineConfig()
	if err != nil {
		return err
	}
	cfgs, err := s.Configs()
	if err != nil {
		return err
	}
	if cacheDir != "" {
		fmt.Println("note: -cache ignored for machine specs (results are whole-cohort, not per-cell)")
	}
	fmt.Printf("scenario %s: machine with %d tenants (%d runs, seed %d)\n", s.Name, len(cfg.Jobs), s.Runs, s.Seed)
	if s.Description != "" {
		fmt.Println(s.Description)
	}
	fmt.Println()

	results := machine.SimulateN(cfg, s.Runs, s.Seed, runtime.GOMAXPROCS(0))
	n := float64(len(results))
	type agg struct {
		wall, slow, wait, starve float64
		crashes, trunc           int
	}
	per := make([]agg, len(cfg.Jobs))
	makespan, peak, brownS := 0.0, 0.0, 0.0
	brown, outages, crashes, requeues, escal := 0, 0, 0, 0, 0
	for _, res := range results {
		for i, jr := range res.Jobs {
			per[i].wall += jr.Run.WallSeconds
			per[i].slow += jr.SlowdownX
			per[i].wait += jr.QueueWaitSeconds
			per[i].starve += jr.StarvationSeconds
			per[i].crashes += jr.Crashes
			if jr.Run.Truncated {
				per[i].trunc++
			}
		}
		makespan += res.MakespanSeconds
		if res.PeakAllocGBs > peak {
			peak = res.PeakAllocGBs
		}
		brown += res.Brownouts
		brownS += res.BrownoutSeconds
		outages += res.DrainOutages
		crashes += res.TenantCrashes
		requeues += res.CrashRequeues
		escal += res.Escalations
	}

	// Truncations and per-tenant fault counts are part of the outcome —
	// a tenant that gave up after its crash-retry budget, or truncated on
	// spare exhaustion, must not be read as a completed run.
	t := tablefmt.NewTable("Tenant", "Model", "Arrive(s)", "Wall(h)", "Slowdown(x)", "QueueWait(s)", "Starve(s)", "Crashes", "Trunc(frac)")
	for i, a := range per {
		t.AddRow(cfgs[i].Label, cfgs[i].Policy.String(),
			fmt.Sprintf("%.0f", cfg.Jobs[i].ArrivalSeconds),
			tablefmt.Hours(a.wall/n),
			fmt.Sprintf("%.3f", a.slow/n),
			fmt.Sprintf("%.1f", a.wait/n),
			fmt.Sprintf("%.1f", a.starve/n),
			fmt.Sprintf("%.2f", float64(a.crashes)/n),
			fmt.Sprintf("%.2f", float64(a.trunc)/n))
	}
	fmt.Println(t.String())
	fmt.Printf("mean makespan %s, peak aggregate PFS allocation %.2f GB/s\n",
		tablefmt.Hours(makespan/n), peak)
	if cfg.Faults.Enabled() {
		fmt.Printf("machine faults per run: %.2f brownouts (%.0fs), %.2f drain outages, %.2f tenant crashes, %.2f requeues, %.2f starvation escalations\n",
			float64(brown)/n, brownS/n, float64(outages)/n, float64(crashes)/n, float64(requeues)/n, float64(escal)/n)
	}
	return nil
}

// runSpecCell resolves one cell: from the cache when possible, by
// simulation otherwise. The cell uses the spec's base seed directly for
// every configuration — the same contract as the flag mode, where the
// model run and its B baseline share -seed. Simulation runs through the
// sweep runner: the selected tier does the work and the app tier rides
// along as a sampled bit-identity cross-check.
func runSpecCell(s *scenario.Spec, rc scenario.RunConfig, tier experiments.Tier, store *runcache.Store) (*stats.Agg, error) {
	key := runcache.Key{
		Experiment:  "pckpt-sim",
		Label:       s.Name + "|" + rc.Label,
		Policy:      rc.Policy.String(),
		Platform:    rc.Platform.CanonicalString(),
		Runs:        s.Runs,
		Seed:        s.Seed,
		Fingerprint: runcache.Fingerprint(),
	}
	if store != nil {
		if agg, _, ok := store.Get(key, false); ok {
			return agg, nil
		}
	}
	agg := experiments.SimulateSweepN(tier, rc.Policy, rc.Platform, s.Runs, s.Seed,
		runtime.GOMAXPROCS(0), experiments.DefaultCrossCheckStride)
	if store != nil {
		if err := store.Put(key, agg, nil); err != nil {
			return nil, err
		}
	}
	return agg, nil
}
