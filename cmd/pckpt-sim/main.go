// Command pckpt-sim runs one C/R-model simulation configuration and
// prints its averaged overhead breakdown — the basic unit of every
// experiment in the paper.
//
// Usage:
//
//	pckpt-sim -app CHIMERA -model P2 -runs 500
//	pckpt-sim -app XGC -model M2 -system "LANL System 18" -lead-scale 0.5
//	pckpt-sim -app CHIMERA -model M2 -tier app
//
// Runs default to the step tier — bit-identical to the app tier on
// every model, an order of magnitude faster. -tier selects another
// registered tier; -metrics implies the app tier (the only metered
// engine) unless -tier was set explicitly.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"pckpt/internal/crmodel"
	"pckpt/internal/experiments"
	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/lm"
	"pckpt/internal/metrics"
	"pckpt/internal/platform"
	"pckpt/internal/stats"
	"pckpt/internal/stepsim"
	"pckpt/internal/tablefmt"
	"pckpt/internal/trace"
	"pckpt/internal/workload"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "scenario spec JSON (see internal/scenario); runs its cohort × policy grid instead of the single flag-built configuration")
		cacheDir  = flag.String("cache", "", "runcache directory for -spec mode: cells resolve from the cache when present and are flushed to it when simulated")
		appName   = flag.String("app", "CHIMERA", "application from the Table I catalogue")
		modelName = flag.String("model", "P2", "C/R model: B, M1, M2, P1, P2")
		tierName  = flag.String("tier", "step", "simulation tier: "+strings.Join(experiments.TierNames(), ", ")+" (see DESIGN.md; -metrics implies app unless -tier is explicit)")
		sysName   = flag.String("system", "OLCF Titan", "failure distribution from the Table III catalogue")
		runs      = flag.Int("runs", 200, "simulation runs to average")
		seed      = flag.Uint64("seed", 42, "base RNG seed")
		leadScale = flag.Float64("lead-scale", 1.0, "lead-time scale factor (1.1 = +10%)")
		fnRate    = flag.Float64("fn", failure.DefaultFNRate, "predictor false-negative rate")
		fpRate    = flag.Float64("fp", failure.DefaultFPRate, "predictor false-positive share")
		alpha     = flag.Float64("alpha", lm.DefaultAlpha, "LM transfer to checkpoint size ratio")
		baseline  = flag.Bool("baseline", true, "also run model B and print reductions")
		showTrace = flag.Bool("trace", false, "trace one run (the base seed) and print its timeline summary")

		injBB      = flag.Float64("inject-bb", 0, "degraded platform: BB checkpoint-write failure probability")
		injPFS     = flag.Float64("inject-pfs", 0, "degraded platform: PFS write failure probability")
		injCorrupt = flag.Float64("inject-corrupt", 0, "degraded platform: silent checkpoint-corruption probability per commit")
		injRestart = flag.Float64("inject-restart", 0, "degraded platform: restart-attempt failure probability")
		injCascade = flag.Float64("inject-cascade", 0, "degraded platform: secondary-failure probability per recovery window")
		injRetries = flag.Int("inject-retries", 0, "degraded platform: restart retry bound (0 = default)")
		injBackoff = flag.Float64("inject-backoff", 0, "degraded platform: base restart backoff seconds, doubling per attempt (0 = default)")

		mBrownRate  = flag.Float64("machine-brownout-rate", 0, "machine faults (-spec with machine block): PFS brownout windows per hour")
		mBrownMean  = flag.Float64("machine-brownout-mean", 0, "machine faults: mean brownout window seconds (0 = default)")
		mBlackout   = flag.Float64("machine-blackout-prob", 0, "machine faults: probability a brownout is a full blackout (ceiling zero)")
		mDrainRate  = flag.Float64("machine-drain-outage-rate", 0, "machine faults: drain-slot outages per hour")
		mDrainSlots = flag.Int("machine-drain-outage-slots", 0, "machine faults: drain slots removed per outage (0 = default)")
		mCrashRate  = flag.Float64("machine-crash-rate", 0, "machine faults: rack crashes per hour (tenants crash and requeue)")
		mCrashRetry = flag.Int("machine-crash-retries", 0, "machine faults: crash readmissions per job before the run truncates (0 = default)")
		mCrashBack  = flag.Float64("machine-crash-backoff", 0, "machine faults: base requeue backoff seconds, doubling per crash (0 = default)")
		mEscalate   = flag.Float64("machine-starve-escalation", 0, "machine faults: starvation-watchdog bound seconds (0 = watchdog off)")

		meter      = flag.Bool("metrics", false, "meter the runs and print the merged metrics summary")
		metricsOut = flag.String("metrics-out", "pckpt-metrics.json", "metrics snapshot JSON path (with -metrics)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	set := explicitFlags()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		exitOn(err)
		exitOn(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer writeMemProfile(*memProfile)

	tier, ok := experiments.TierByName(*tierName)
	if !ok {
		exitOn(fmt.Errorf("pckpt-sim: unknown tier %q (have %s)", *tierName, strings.Join(experiments.TierNames(), ", ")))
	}

	if *specPath != "" {
		// Spec mode: the spec declares everything; explicitly set flags
		// override its numeric plan, conflicting selectors error out.
		exitOn(runSpec(*specPath, *cacheDir, tier, specOverrides{
			set:        set,
			model:      *modelName,
			runs:       *runs,
			seed:       *seed,
			leadScale:  *leadScale,
			fn:         *fnRate,
			fp:         *fpRate,
			alpha:      *alpha,
			injBB:      *injBB,
			injPFS:     *injPFS,
			injCorrupt: *injCorrupt,
			injRestart: *injRestart,
			injCascade: *injCascade,
			injBackoff: *injBackoff,
			injRetries: *injRetries,

			mBrownRate:    *mBrownRate,
			mBrownMean:    *mBrownMean,
			mBlackout:     *mBlackout,
			mDrainRate:    *mDrainRate,
			mDrainSlots:   *mDrainSlots,
			mCrashRate:    *mCrashRate,
			mCrashRetries: *mCrashRetry,
			mCrashBack:    *mCrashBack,
			mEscalate:     *mEscalate,
		}))
		return
	}
	if *cacheDir != "" {
		exitOn(fmt.Errorf("pckpt-sim: -cache requires -spec (flag mode always simulates)"))
	}
	for _, name := range machineFlags {
		if set[name] {
			exitOn(fmt.Errorf("pckpt-sim: -%s requires -spec with a machine block (machine faults degrade a shared machine, not a solo run)", name))
		}
	}

	app, err := workload.ByName(*appName)
	exitOn(err)
	model, err := crmodel.ModelByName(*modelName)
	exitOn(err)
	sys, err := failure.SystemByName(*sysName)
	exitOn(err)
	if *meter && !set["tier"] {
		// -metrics is app-tier only; an implicit tier choice bends to it
		// rather than erroring under the step-tier default.
		tier, _ = experiments.TierByName("app")
	}
	if !tier.Supports(model) {
		exitOn(fmt.Errorf("pckpt-sim: the %s tier does not implement model %s", tier.Name, model))
	}
	if *meter && tier.Name != "app" {
		exitOn(fmt.Errorf("pckpt-sim: -metrics is app-tier only (the tier runner is unmetered); use -tier app or drop -tier"))
	}

	cfg := crmodel.Config{
		Model: model,
		Config: platform.Config{
			App:       app,
			System:    sys,
			LM:        lm.Default().WithAlpha(*alpha),
			LeadScale: *leadScale,
			FNRate:    *fnRate,
			FPRate:    *fpRate,
			Faults: faultinject.Config{
				BBWriteFailProb:       *injBB,
				PFSWriteFailProb:      *injPFS,
				CorruptProb:           *injCorrupt,
				RestartFailProb:       *injRestart,
				CascadeProb:           *injCascade,
				RestartRetries:        *injRetries,
				RestartBackoffSeconds: *injBackoff,
			},
		},
	}
	exitOn(cfg.Validate())

	fmt.Printf("%s on %s under %s (%s tier, %d runs, seed %d)\n", model, app, sys.Name, tier.Name, *runs, *seed)
	fmt.Printf("θ = %.2f s, σ = %.3f, per-node checkpoint = %.2f GB\n\n", cfg.Theta(), cfg.Sigma(), app.PerNodeGB())

	var snap *metrics.Snapshot
	var agg *stats.Agg
	if *meter {
		agg, snap = crmodel.SimulateNMetered(cfg, *runs, *seed, runtime.GOMAXPROCS(0))
	} else {
		// All tiers route through the shared tier runner: identical seed
		// sequences, so switching -tier changes the engine, not the
		// experiment (and for -tier step, not even the bits).
		agg = experiments.SimulateTierN(tier, model, cfg.Config, *runs, *seed, runtime.GOMAXPROCS(0))
	}
	mo := agg.MeanOverheads()

	if *showTrace {
		var buf trace.Buffer
		switch tier.Name {
		case "app":
			tcfg := cfg
			tcfg.Trace = &buf
			crmodel.Simulate(tcfg, *seed)
		case "step":
			stepsim.Simulate(stepsim.Config{Model: model, Config: cfg.Config, Trace: &buf}, *seed)
		default:
			exitOn(fmt.Errorf("pckpt-sim: -trace supports the app and step tiers, not %s", tier.Name))
		}
		fmt.Println("single-run timeline (seed", *seed, "):")
		fmt.Println(buf.Gantt(100))
		fmt.Println()
		fmt.Print(buf.Summary())
		fmt.Println()
	}

	t := tablefmt.NewTable("metric", "value")
	t.AddRow("checkpoint overhead", tablefmt.Hours(mo.Checkpoint))
	t.AddRow("recomputation overhead", tablefmt.Hours(mo.Recompute))
	t.AddRow("recovery overhead", tablefmt.Hours(mo.Recovery))
	t.AddRow("total overhead", tablefmt.Hours(mo.Total()))
	t.AddRow("mean wall time", tablefmt.Hours(agg.MeanWallSeconds()))
	t.AddRow("FT ratio", fmt.Sprintf("%.3f", agg.MeanFTRatio()))
	if cfg.Faults.Enabled() {
		fc := agg.FaultTotals()
		t.AddRow("injected write failures", fmt.Sprint(fc.BBWriteFailures+fc.PFSWriteFailures))
		t.AddRow("corrupt-generation fallbacks", fmt.Sprint(fc.CorruptRestarts))
		t.AddRow("restart retries", fmt.Sprint(fc.RestartRetries))
		t.AddRow("recovery cascades", fmt.Sprint(fc.Cascades))
	}
	s := agg.TotalSummary()
	t.AddRow("total overhead 95% CI", fmt.Sprintf("[%s, %s]", tablefmt.Hours(s.CI95Lo), tablefmt.Hours(s.CI95Hi)))
	fmt.Println(t.String())
	for _, f := range agg.Failed() {
		fmt.Fprintf(os.Stderr, "warning: run with seed %d failed (%s): %s\n", f.Seed, f.Config, f.Err)
	}

	if *baseline && model != crmodel.ModelB {
		// Every tier implements model B, so the reduction is computed
		// within the selected tier.
		base := experiments.SimulateTierN(tier, crmodel.ModelB, cfg.Config, *runs, *seed, runtime.GOMAXPROCS(0)).MeanOverheads()
		ck, rc, rv, tot := stats.ReductionBreakdown(base, mo)
		fmt.Printf("vs base model B: checkpoint %s, recomputation %s, recovery %s, TOTAL %s\n",
			tablefmt.Percent(ck), tablefmt.Percent(rc), tablefmt.Percent(rv), tablefmt.Percent(tot))
	}

	if snap != nil {
		fmt.Printf("\nsimulation metrics (%d runs merged):\n\n%s", *runs, metrics.Render(snap))
		exitOn(snap.WriteJSON(*metricsOut))
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
}

// writeMemProfile dumps the post-GC heap; deferred so it sees the whole
// invocation's live set.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	exitOn(err)
	defer f.Close()
	runtime.GC()
	exitOn(pprof.WriteHeapProfile(f))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
