// Command pckpt-sim runs one C/R-model simulation configuration and
// prints its averaged overhead breakdown — the basic unit of every
// experiment in the paper.
//
// Usage:
//
//	pckpt-sim -app CHIMERA -model P2 -runs 500
//	pckpt-sim -app XGC -model M2 -system "LANL System 18" -lead-scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/lm"
	"pckpt/internal/stats"
	"pckpt/internal/tablefmt"
	"pckpt/internal/trace"
	"pckpt/internal/workload"
)

func main() {
	var (
		appName   = flag.String("app", "CHIMERA", "application from the Table I catalogue")
		modelName = flag.String("model", "P2", "C/R model: B, M1, M2, P1, P2")
		sysName   = flag.String("system", "OLCF Titan", "failure distribution from the Table III catalogue")
		runs      = flag.Int("runs", 200, "simulation runs to average")
		seed      = flag.Uint64("seed", 42, "base RNG seed")
		leadScale = flag.Float64("lead-scale", 1.0, "lead-time scale factor (1.1 = +10%)")
		fnRate    = flag.Float64("fn", failure.DefaultFNRate, "predictor false-negative rate")
		fpRate    = flag.Float64("fp", failure.DefaultFPRate, "predictor false-positive share")
		alpha     = flag.Float64("alpha", lm.DefaultAlpha, "LM transfer to checkpoint size ratio")
		baseline  = flag.Bool("baseline", true, "also run model B and print reductions")
		showTrace = flag.Bool("trace", false, "trace one run (the base seed) and print its timeline summary")
	)
	flag.Parse()

	app, err := workload.ByName(*appName)
	exitOn(err)
	model, err := crmodel.ModelByName(*modelName)
	exitOn(err)
	sys, err := failure.SystemByName(*sysName)
	exitOn(err)

	cfg := crmodel.Config{
		Model:     model,
		App:       app,
		System:    sys,
		LM:        lm.Default().WithAlpha(*alpha),
		LeadScale: *leadScale,
		FNRate:    *fnRate,
		FPRate:    *fpRate,
	}
	exitOn(cfg.Validate())

	fmt.Printf("%s on %s under %s (%d runs, seed %d)\n", model, app, sys.Name, *runs, *seed)
	fmt.Printf("θ = %.2f s, σ = %.3f, per-node checkpoint = %.2f GB\n\n", cfg.Theta(), cfg.Sigma(), app.PerNodeGB())

	agg := crmodel.SimulateN(cfg, *runs, *seed)
	mo := agg.MeanOverheads()

	if *showTrace {
		var buf trace.Buffer
		tcfg := cfg
		tcfg.Trace = &buf
		crmodel.Simulate(tcfg, *seed)
		fmt.Println("single-run timeline (seed", *seed, "):")
		fmt.Println(buf.Gantt(100))
		fmt.Println()
		fmt.Print(buf.Summary())
		fmt.Println()
	}

	t := tablefmt.NewTable("metric", "value")
	t.AddRow("checkpoint overhead", tablefmt.Hours(mo.Checkpoint))
	t.AddRow("recomputation overhead", tablefmt.Hours(mo.Recompute))
	t.AddRow("recovery overhead", tablefmt.Hours(mo.Recovery))
	t.AddRow("total overhead", tablefmt.Hours(mo.Total()))
	t.AddRow("mean wall time", tablefmt.Hours(agg.MeanWallSeconds()))
	t.AddRow("FT ratio", fmt.Sprintf("%.3f", agg.MeanFTRatio()))
	s := agg.TotalSummary()
	t.AddRow("total overhead 95% CI", fmt.Sprintf("[%s, %s]", tablefmt.Hours(s.CI95Lo), tablefmt.Hours(s.CI95Hi)))
	fmt.Println(t.String())

	if *baseline && model != crmodel.ModelB {
		bcfg := cfg
		bcfg.Model = crmodel.ModelB
		base := crmodel.SimulateN(bcfg, *runs, *seed).MeanOverheads()
		ck, rc, rv, tot := stats.ReductionBreakdown(base, mo)
		fmt.Printf("vs base model B: checkpoint %s, recomputation %s, recovery %s, TOTAL %s\n",
			tablefmt.Percent(ck), tablefmt.Percent(rc), tablefmt.Percent(rv), tablefmt.Percent(tot))
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
