package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain doubles the test binary as the pckpt-sim CLI: when re-exec'd
// with PCKPT_SIM_RUN_MAIN=1 it parses PCKPT_SIM_ARGS (0x1f-separated)
// and runs main() instead of the test suite, so the CLI tests below
// exercise the real flag parsing, guards, and exit codes end to end
// without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("PCKPT_SIM_RUN_MAIN") == "1" {
		os.Args = append([]string{"pckpt-sim"}, strings.Split(os.Getenv("PCKPT_SIM_ARGS"), "\x1f")...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI re-execs the test binary as the CLI and captures its output
// and exit code.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"PCKPT_SIM_RUN_MAIN=1",
		"PCKPT_SIM_ARGS="+strings.Join(args, "\x1f"))
	var out, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errBuf
	err = cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("re-exec failed: %v", err)
	}
	return out.String(), errBuf.String(), code
}

const specPath = "../../examples/scenarios/chimera-titan.json"

// TestCLIDefaultTierIsStep: with no -tier, a p-ckpt model runs on the
// step tier — the default sweep path since the episode port.
func TestCLIDefaultTierIsStep(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-model", "P1", "-runs", "2", "-baseline=false")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "(step tier") {
		t.Errorf("default run not on the step tier:\n%s", stdout)
	}
}

// TestCLIStepTraceEpisodeModel: -trace works on the step tier for an
// episode model (the path Validate used to reject).
func TestCLIStepTraceEpisodeModel(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-tier", "step", "-model", "P2", "-runs", "1", "-baseline=false", "-trace")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "single-run timeline") {
		t.Errorf("-trace printed no timeline:\n%s", stdout)
	}
}

// TestCLIMetricsImpliesAppTier: -metrics without an explicit -tier must
// bend the step-tier default to the app tier (the only metered engine)
// instead of erroring.
func TestCLIMetricsImpliesAppTier(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.json")
	stdout, stderr, code := runCLI(t, "-model", "P1", "-runs", "2", "-baseline=false", "-metrics", "-metrics-out", out)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "(app tier") {
		t.Errorf("-metrics did not imply the app tier:\n%s", stdout)
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("metrics snapshot not written: %v", err)
	}
}

// TestCLIMetricsExplicitStepTierErrors: an explicit non-app tier with
// -metrics is a contradiction the CLI must refuse, not silently bend.
func TestCLIMetricsExplicitStepTierErrors(t *testing.T) {
	_, stderr, code := runCLI(t, "-tier", "step", "-model", "P1", "-runs", "2", "-metrics")
	if code != 2 || !strings.Contains(stderr, "app-tier only") {
		t.Errorf("exit %d, stderr %q; want exit 2 with app-tier-only error", code, stderr)
	}
}

// TestCLITierGuards: unsupported model × tier combinations and unknown
// tier names exit with context.
func TestCLITierGuards(t *testing.T) {
	_, stderr, code := runCLI(t, "-tier", "node", "-model", "M1", "-runs", "1")
	if code != 2 || !strings.Contains(stderr, "does not implement") {
		t.Errorf("node×M1: exit %d, stderr %q; want unsupported-model error", code, stderr)
	}
	_, stderr, code = runCLI(t, "-tier", "bogus", "-model", "B", "-runs", "1")
	if code != 2 || !strings.Contains(stderr, "unknown tier") {
		t.Errorf("bogus tier: exit %d, stderr %q; want unknown-tier error", code, stderr)
	}
}

// TestCLISpecRunsOnStepTier: spec mode under the step-tier default runs
// the full grid; the node tier is refused (spec cache entries are
// tier-agnostic, so only bit-identical tiers may fill them).
func TestCLISpecRunsOnStepTier(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-spec", specPath, "-runs", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "2 configurations (2 runs each") {
		t.Errorf("spec grid header missing:\n%s", stdout)
	}
	_, stderr, code = runCLI(t, "-spec", specPath, "-tier", "node", "-runs", "2")
	if code != 2 || !strings.Contains(stderr, "bit-identical") {
		t.Errorf("node-tier spec: exit %d, stderr %q; want bit-identity refusal", code, stderr)
	}
}

// TestCLISpecFlagPrecedence pins the PR 6 precedence contract at the
// CLI level: a conflicting selector errors, while an explicitly set
// numeric flag narrows the spec's plan.
func TestCLISpecFlagPrecedence(t *testing.T) {
	_, stderr, code := runCLI(t, "-spec", specPath, "-app", "CHIMERA")
	if code != 2 || !strings.Contains(stderr, "conflicts with -spec") {
		t.Errorf("-app with -spec: exit %d, stderr %q; want conflict error", code, stderr)
	}
	stdout, stderr, code := runCLI(t, "-spec", specPath, "-model", "M2", "-runs", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "1 configurations (2 runs each") || !strings.Contains(stdout, "M2") {
		t.Errorf("-model override did not narrow the grid:\n%s", stdout)
	}
}
