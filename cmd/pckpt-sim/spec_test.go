package main

import (
	"reflect"
	"strings"
	"testing"

	"pckpt/internal/crmodel"
	"pckpt/internal/experiments"
	"pckpt/internal/failure"
	"pckpt/internal/lm"
	"pckpt/internal/platform"
	"pckpt/internal/scenario"
	"pckpt/internal/workload"
)

// The committed chimera-titan example must be bit-identical to the flag
// invocation it documents: `pckpt-sim -app CHIMERA -model P2` builds
// exactly this platform config and simulates with the same base seed for
// the model and its B baseline.
func TestChimeraTitanSpecMatchesFlagRun(t *testing.T) {
	s, err := scenario.Load("../../examples/scenarios/chimera-titan.json")
	if err != nil {
		t.Fatal(err)
	}
	s.Runs = 3 // keep the test fast; the seed plan is what is under test
	cfgs, err := s.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || cfgs[0].Policy.String() != "B" || cfgs[1].Policy.String() != "P2" {
		t.Fatalf("unexpected grid: %+v", cfgs)
	}

	// The exact construction in main(): default flags, Table I CHIMERA,
	// Titan catalogue entry, default LM alpha and predictor rates.
	app, err := workload.ByName("CHIMERA")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := failure.SystemByName("OLCF Titan")
	if err != nil {
		t.Fatal(err)
	}
	flagCfg := platform.Config{
		App:       app,
		System:    sys,
		LM:        lm.Default().WithAlpha(lm.DefaultAlpha),
		LeadScale: 1.0,
		FNRate:    failure.DefaultFNRate,
		FPRate:    failure.DefaultFPRate,
	}

	n := s.Normalize()
	for i, model := range []crmodel.Model{crmodel.ModelB, crmodel.ModelP2} {
		if got, want := cfgs[i].Platform.CanonicalString(), flagCfg.CanonicalString(); got != want {
			t.Fatalf("spec platform renders differently from the flag twin:\n%s\nvs\n%s", got, want)
		}
		specAgg := crmodel.SimulateN(crmodel.Config{Model: cfgs[i].Policy, Config: cfgs[i].Platform}, n.Runs, n.Seed)
		flagAgg := crmodel.SimulateN(crmodel.Config{Model: model, Config: flagCfg}, 3, 42)
		if !reflect.DeepEqual(specAgg.Runs(), flagAgg.Runs()) {
			t.Fatalf("%s: spec runs diverge from flag runs", model)
		}
	}
}

// Explicitly set flags override spec fields; conflicting selectors error.
func TestSpecOverridesAndConflicts(t *testing.T) {
	s, err := scenario.Load("../../examples/scenarios/chimera-titan.json")
	if err != nil {
		t.Fatal(err)
	}
	ov := specOverrides{
		set:        map[string]bool{"model": true, "runs": true, "seed": true, "lead-scale": true, "inject-pfs": true},
		model:      "M2",
		runs:       7,
		seed:       5,
		leadScale:  1.3,
		injPFS:     0.04,
		injRetries: 9, // NOT in set: must not apply
	}
	out := applyOverrides(s, ov)
	if got := out.Policies; len(got) != 1 || got[0] != "M2" {
		t.Fatalf("-model did not restrict the policy list: %v", got)
	}
	if out.Runs != 7 || out.Seed != 5 {
		t.Fatalf("run plan not overridden: runs=%d seed=%d", out.Runs, out.Seed)
	}
	if out.Platform.LeadScale != 1.3 {
		t.Fatalf("lead scale not overridden: %v", out.Platform.LeadScale)
	}
	if out.Platform.Faults == nil || out.Platform.Faults.PFSWriteFailProb != 0.04 {
		t.Fatalf("fault injection not overridden: %+v", out.Platform.Faults)
	}
	if out.Platform.Faults.RestartRetries != 0 {
		t.Fatal("unset flag leaked into the spec")
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("overridden spec invalid: %v", err)
	}

	// An explicit zero override must survive: `-seed 0` means seed 0
	// (as in flag mode), not the spec default.
	s2, err := scenario.Load("../../examples/scenarios/chimera-titan.json")
	if err != nil {
		t.Fatal(err)
	}
	z := applyOverrides(s2, specOverrides{set: map[string]bool{"seed": true}, seed: 0})
	if z.Seed != 0 {
		t.Fatalf("explicit -seed 0 renormalized to %d", z.Seed)
	}

	for _, name := range specConflicts {
		err := runSpec("../../examples/scenarios/chimera-titan.json", "", experiments.StepTier(), specOverrides{set: map[string]bool{name: true}})
		if err == nil || !strings.Contains(err.Error(), "conflicts with -spec") {
			t.Errorf("-%s with -spec: got %v, want conflict error", name, err)
		}
	}

	// The node tier only agrees statistically with the reference, so spec
	// cells — whose cache entries are tier-agnostic — must refuse it.
	err = runSpec("../../examples/scenarios/chimera-titan.json", "", experiments.NodeTier(), specOverrides{set: map[string]bool{}})
	if err == nil || !strings.Contains(err.Error(), "bit-identical") {
		t.Errorf("node-tier spec run: got %v, want bit-identity refusal", err)
	}
}

// Every committed example spec must load and validate.
func TestExampleSpecsLoad(t *testing.T) {
	for _, p := range []string{
		"../../examples/scenarios/chimera-titan.json",
		"../../examples/scenarios/degraded-xgc.json",
		"../../examples/scenarios/cohort-scaled.json",
		"../../examples/scenarios/mined-replay.json",
		"../../examples/scenarios/machine-contended.json",
	} {
		s, err := scenario.Load(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if _, err := s.Configs(); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

// A spec with a machine block routes to the shared-machine runner and
// completes; the node-pool math and admission plumbing come from the
// machine package's own tests — here we check the CLI wiring end-to-end.
func TestMachineSpecRuns(t *testing.T) {
	s, err := scenario.Load("../../examples/scenarios/machine-contended.json")
	if err != nil {
		t.Fatal(err)
	}
	s.Runs = 2 // keep the test fast
	if s.Machine == nil {
		t.Fatal("machine-contended.json lost its machine block")
	}
	if err := runMachineSpec(s, ""); err != nil {
		t.Fatal(err)
	}
}
