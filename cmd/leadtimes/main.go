// Command leadtimes exercises the Desh-style failure-analysis pipeline:
// generate a synthetic HPC system log with planted failure chains, mine
// the chains back out, and print the per-sequence lead-time statistics of
// the paper's Fig. 2a. With -emit the raw log lines stream to stdout
// instead (pipe to a file to inspect, then mine with -parse).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pckpt/internal/deshlog"
	"pckpt/internal/rng"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 1024, "cluster size")
		months   = flag.Float64("months", 6, "log span in months (the paper mined six)")
		failures = flag.Int("failures", 5000, "failure chains to plant")
		noise    = flag.Int("noise", 10, "benign lines per chain")
		partial  = flag.Int("partial", 500, "chain prefixes that never complete")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		emit     = flag.Bool("emit", false, "print raw log lines instead of mining")
		parse    = flag.String("parse", "", "mine an existing log file instead of generating")
	)
	flag.Parse()

	var entries []deshlog.Entry
	if *parse != "" {
		f, err := os.Open(*parse)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			e, err := deshlog.ParseEntry(sc.Text())
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			entries = append(entries, e)
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		var planted []deshlog.Planted
		entries, planted = deshlog.Generate(deshlog.GenConfig{
			Nodes:         *nodes,
			Duration:      *months * 30 * 24 * 3600,
			Failures:      *failures,
			NoisePerChain: *noise,
			PartialChains: *partial,
		}, rng.New(*seed))
		if !*emit {
			fmt.Printf("generated %d log entries with %d planted chains\n\n", len(entries), len(planted))
		}
	}

	if *emit {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, e := range entries {
			fmt.Fprintln(w, e.Format())
		}
		return
	}

	chains := deshlog.Mine(entries)
	st := deshlog.Stats(chains)
	fmt.Printf("mined %d failure chains\n\n", len(chains))
	fmt.Println(deshlog.RenderStats(st))
	if model, err := deshlog.ToLeadModel(chains); err == nil {
		fmt.Printf("reconstructed lead-time model: mean %.2f s, P(lead ≥ 41 s) = %.3f\n",
			model.Mean(), model.TailProb(41))
	}
}
