// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig6a -runs 1000
//	experiments -run all -runs 200 -apps CHIMERA,XGC,POP
//	experiments -run fig6a -metrics -metrics-out fig6a-metrics.json
//	experiments -run all -runs 1000 -cache /var/tmp/pckpt-cache -cache-stats
//
// Each experiment prints the same rows/series the paper reports; -values
// appends the machine-readable headline numbers used by the test suite.
// -metrics additionally meters every simulation run (checkpoint block
// times, episode latencies, drain queue depth, effective PFS bandwidth,
// lead-time consumption), prints the merged summary, and writes the JSON
// snapshot. -cpuprofile/-memprofile capture pprof profiles of the whole
// invocation.
//
// Unmetered sweeps run on the step tier — bit-identical to the
// app-level reference and an order of magnitude faster — with every
// 16th seed re-run on the app tier as a continuous bit-identity
// cross-check; -sweep-tier and -crosscheck-every control both (metered
// sweeps stay on the app tier, whose metric series the snapshots
// report).
//
// Sweeps are resumable: every completed configuration is flushed to the
// content-addressed result cache (-cache DIR, on by default) the moment
// it finishes, so SIGINT/SIGTERM aborts at the next configuration
// boundary with the completed prefix preserved — rerunning the same
// command skips straight to the unfinished tail. -no-cache disables the
// cache, -cache-stats prints per-experiment hit/miss accounting.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"

	"pckpt/internal/experiments"
	"pckpt/internal/faultinject"
	"pckpt/internal/metrics"
	"pckpt/internal/runcache"
)

func main() {
	var (
		run        = flag.String("run", "all", "experiment ID to run, or 'all'")
		list       = flag.Bool("list", false, "list available experiments and exit")
		runs       = flag.Int("runs", 200, "simulation runs per configuration (paper: 1000)")
		seed       = flag.Uint64("seed", 42, "base RNG seed")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		apps       = flag.String("apps", "", "comma-separated application filter (default: experiment-specific)")
		tiers      = flag.String("tiers", "", "comma-separated tier filter for cross-validating experiments: "+strings.Join(experiments.TierNames(), ", ")+" (default: all registered tiers)")
		sweepTier  = flag.String("sweep-tier", "step", "simulation tier unmetered sweeps run on (must be bit-identical to the app tier)")
		crossEvery = flag.Int("crosscheck-every", experiments.DefaultCrossCheckStride, "re-run every Nth sweep seed on the app tier as a bit-identity cross-check (0 disables)")
		values     = flag.Bool("values", false, "also print machine-readable headline values")
		meter      = flag.Bool("metrics", false, "meter simulation runs and print the merged metrics summary")
		metricsOut = flag.String("metrics-out", "pckpt-metrics.json", "metrics snapshot JSON path (with -metrics)")
		cacheDir   = flag.String("cache", ".pckpt-cache", "result cache directory (makes sweeps resumable)")
		noCache    = flag.Bool("no-cache", false, "disable the result cache")
		cacheStats = flag.Bool("cache-stats", false, "print per-experiment cache hit/miss accounting on exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		injBB      = flag.Float64("inject-bb", 0, "degraded platform: BB checkpoint-write failure probability")
		injPFS     = flag.Float64("inject-pfs", 0, "degraded platform: PFS write failure probability")
		injCorrupt = flag.Float64("inject-corrupt", 0, "degraded platform: silent checkpoint-corruption probability per commit")
		injRestart = flag.Float64("inject-restart", 0, "degraded platform: restart-attempt failure probability")
		injCascade = flag.Float64("inject-cascade", 0, "degraded platform: secondary-failure probability per recovery window")
		injRetries = flag.Int("inject-retries", 0, "degraded platform: restart retry bound (0 = default)")
		injBackoff = flag.Float64("inject-backoff", 0, "degraded platform: base restart backoff seconds, doubling per attempt (0 = default)")

		mBrownRate  = flag.Float64("machine-brownout-rate", 0, "machine faults: PFS brownout windows per hour (shared-machine experiments)")
		mBrownMean  = flag.Float64("machine-brownout-mean", 0, "machine faults: mean brownout window seconds (0 = default)")
		mBlackout   = flag.Float64("machine-blackout-prob", 0, "machine faults: probability a brownout is a full blackout (ceiling zero)")
		mDrainRate  = flag.Float64("machine-drain-outage-rate", 0, "machine faults: drain-slot outages per hour")
		mDrainSlots = flag.Int("machine-drain-outage-slots", 0, "machine faults: drain slots removed per outage (0 = default)")
		mCrashRate  = flag.Float64("machine-crash-rate", 0, "machine faults: rack crashes per hour (tenants crash and requeue)")
		mCrashRetry = flag.Int("machine-crash-retries", 0, "machine faults: crash readmissions per job before the run truncates (0 = default)")
		mCrashBack  = flag.Float64("machine-crash-backoff", 0, "machine faults: base requeue backoff seconds, doubling per crash (0 = default)")
		mEscalate   = flag.Float64("machine-starve-escalation", 0, "machine faults: starvation-watchdog bound seconds (0 = watchdog off)")
	)
	flag.Parse()

	if *list {
		for _, d := range experiments.All() {
			fmt.Printf("%-10s %s\n", d.ID, d.Title)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		exitOn(err)
		exitOn(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer writeMemProfile(*memProfile)

	p := experiments.Params{Runs: *runs, Seed: *seed, SeedSet: true, Workers: *workers}
	if t, ok := experiments.TierByName(*sweepTier); !ok {
		exitOn(fmt.Errorf("experiments: unknown sweep tier %q (have %s)", *sweepTier, strings.Join(experiments.TierNames(), ", ")))
	} else if !t.BitIdentical {
		exitOn(fmt.Errorf("experiments: tier %q is not bit-identical to the reference and cannot run sweeps", *sweepTier))
	}
	p.SweepTier = *sweepTier
	// Flag semantics: 0 disables the cross-check; Params uses negative
	// for "disabled" and 0 for "default".
	if *crossEvery <= 0 {
		p.CrossCheckStride = -1
	} else {
		p.CrossCheckStride = *crossEvery
	}
	p.Faults = faultinject.Config{
		BBWriteFailProb:       *injBB,
		PFSWriteFailProb:      *injPFS,
		CorruptProb:           *injCorrupt,
		RestartFailProb:       *injRestart,
		CascadeProb:           *injCascade,
		RestartRetries:        *injRetries,
		RestartBackoffSeconds: *injBackoff,
	}
	exitOn(p.Faults.Validate())
	p.MachineFaults = faultinject.MachineConfig{
		BrownoutRatePerHour:         *mBrownRate,
		BrownoutMeanSeconds:         *mBrownMean,
		BlackoutProb:                *mBlackout,
		DrainOutageRatePerHour:      *mDrainRate,
		DrainOutageSlots:            *mDrainSlots,
		CrashRatePerHour:            *mCrashRate,
		CrashMaxRetries:             *mCrashRetry,
		CrashBackoffSeconds:         *mCrashBack,
		StarvationEscalationSeconds: *mEscalate,
	}
	exitOn(p.MachineFaults.Validate())
	if *apps != "" {
		p.Apps = strings.Split(*apps, ",")
	}
	if *tiers != "" {
		for _, name := range strings.Split(*tiers, ",") {
			name = strings.TrimSpace(name)
			if _, ok := experiments.TierByName(name); !ok {
				exitOn(fmt.Errorf("experiments: unknown tier %q (have %s)", name, strings.Join(experiments.TierNames(), ", ")))
			}
			p.Tiers = append(p.Tiers, name)
		}
	}
	if *meter {
		p.Metrics = metrics.NewCollector()
	}
	if !*noCache && *cacheDir != "" {
		store, err := runcache.Open(*cacheDir)
		exitOn(err)
		p.Cache = store
	}

	// SIGINT/SIGTERM abort the sweep at the next configuration boundary;
	// the completed prefix is already flushed to the cache. A second
	// signal kills the process outright (default disposition restored).
	interrupt := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		signal.Stop(sigCh)
		close(interrupt)
	}()
	p.Interrupt = interrupt

	var defs []experiments.Def
	if *run == "all" {
		defs = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			d, err := experiments.ByID(strings.TrimSpace(id))
			exitOn(err)
			defs = append(defs, d)
		}
	}

	for _, d := range defs {
		r, err := experiments.Run(d, p)
		if errors.Is(err, experiments.ErrInterrupted) {
			if *cacheStats {
				printCacheStats(p.Cache)
			}
			if p.Cache != nil {
				fmt.Fprintf(os.Stderr, "interrupted during %s: %d completed configuration(s) cached in %s; rerun the same command to resume\n",
					d.ID, p.Cache.Entries(), p.Cache.Dir())
			} else {
				fmt.Fprintf(os.Stderr, "interrupted during %s (cache disabled; completed work discarded)\n", d.ID)
			}
			os.Exit(130)
		}
		exitOn(err)
		fmt.Printf("=== %s (%s)\n\n%s\n", r.Title, r.ID, r.Text)
		if *values {
			fmt.Println(experiments.RenderResultValues(r))
		}
	}

	if p.Metrics != nil {
		snap := p.Metrics.Snapshot()
		fmt.Printf("=== simulation metrics (all runs merged)\n\n%s\n", metrics.Render(snap))
		exitOn(snap.WriteJSON(*metricsOut))
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
	if *cacheStats {
		printCacheStats(p.Cache)
	}
}

// printCacheStats renders the per-experiment hit/miss table.
func printCacheStats(store *runcache.Store) {
	if store == nil {
		fmt.Println("=== cache: disabled")
		return
	}
	per := store.PerExperiment()
	ids := make([]string, 0, len(per))
	for id := range per {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Printf("=== cache %s (%d entries on disk)\n\n", store.Dir(), store.Entries())
	fmt.Printf("%-12s %6s %6s %6s %6s\n", "experiment", "hits", "misses", "puts", "evict")
	for _, id := range ids {
		s := per[id]
		fmt.Printf("%-12s %6d %6d %6d %6d\n", id, s.Hits, s.Misses, s.Puts, s.Evictions)
	}
	t := store.Totals()
	fmt.Printf("%-12s %6d %6d %6d %6d\n", "total", t.Hits, t.Misses, t.Puts, t.Evictions)
}

// writeMemProfile dumps the post-GC heap; deferred so it sees the whole
// invocation's live set.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	exitOn(err)
	defer f.Close()
	runtime.GC()
	exitOn(pprof.WriteHeapProfile(f))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
