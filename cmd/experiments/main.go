// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig6a -runs 1000
//	experiments -run all -runs 200 -apps CHIMERA,XGC,POP
//
// Each experiment prints the same rows/series the paper reports; -values
// appends the machine-readable headline numbers used by the test suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pckpt/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment ID to run, or 'all'")
		list    = flag.Bool("list", false, "list available experiments and exit")
		runs    = flag.Int("runs", 200, "simulation runs per configuration (paper: 1000)")
		seed    = flag.Uint64("seed", 42, "base RNG seed")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		apps    = flag.String("apps", "", "comma-separated application filter (default: experiment-specific)")
		values  = flag.Bool("values", false, "also print machine-readable headline values")
	)
	flag.Parse()

	if *list {
		for _, d := range experiments.All() {
			fmt.Printf("%-10s %s\n", d.ID, d.Title)
		}
		return
	}

	p := experiments.Params{Runs: *runs, Seed: *seed, Workers: *workers}
	if *apps != "" {
		p.Apps = strings.Split(*apps, ",")
	}

	var defs []experiments.Def
	if *run == "all" {
		defs = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			d, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defs = append(defs, d)
		}
	}

	for _, d := range defs {
		r := d.Run(p)
		fmt.Printf("=== %s (%s)\n\n%s\n", r.Title, r.ID, r.Text)
		if *values {
			fmt.Println(experiments.RenderResultValues(r))
		}
	}
}
