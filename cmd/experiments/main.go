// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig6a -runs 1000
//	experiments -run all -runs 200 -apps CHIMERA,XGC,POP
//	experiments -run fig6a -metrics -metrics-out fig6a-metrics.json
//
// Each experiment prints the same rows/series the paper reports; -values
// appends the machine-readable headline numbers used by the test suite.
// -metrics additionally meters every simulation run (checkpoint block
// times, episode latencies, drain queue depth, effective PFS bandwidth,
// lead-time consumption), prints the merged summary, and writes the JSON
// snapshot. -cpuprofile/-memprofile capture pprof profiles of the whole
// invocation.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"pckpt/internal/experiments"
	"pckpt/internal/metrics"
)

func main() {
	var (
		run        = flag.String("run", "all", "experiment ID to run, or 'all'")
		list       = flag.Bool("list", false, "list available experiments and exit")
		runs       = flag.Int("runs", 200, "simulation runs per configuration (paper: 1000)")
		seed       = flag.Uint64("seed", 42, "base RNG seed")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		apps       = flag.String("apps", "", "comma-separated application filter (default: experiment-specific)")
		values     = flag.Bool("values", false, "also print machine-readable headline values")
		meter      = flag.Bool("metrics", false, "meter simulation runs and print the merged metrics summary")
		metricsOut = flag.String("metrics-out", "pckpt-metrics.json", "metrics snapshot JSON path (with -metrics)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, d := range experiments.All() {
			fmt.Printf("%-10s %s\n", d.ID, d.Title)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		exitOn(err)
		exitOn(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer writeMemProfile(*memProfile)

	p := experiments.Params{Runs: *runs, Seed: *seed, SeedSet: true, Workers: *workers}
	if *apps != "" {
		p.Apps = strings.Split(*apps, ",")
	}
	if *meter {
		p.Metrics = metrics.NewCollector()
	}

	var defs []experiments.Def
	if *run == "all" {
		defs = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			d, err := experiments.ByID(strings.TrimSpace(id))
			exitOn(err)
			defs = append(defs, d)
		}
	}

	for _, d := range defs {
		r := d.Run(p)
		fmt.Printf("=== %s (%s)\n\n%s\n", r.Title, r.ID, r.Text)
		if *values {
			fmt.Println(experiments.RenderResultValues(r))
		}
	}

	if p.Metrics != nil {
		snap := p.Metrics.Snapshot()
		fmt.Printf("=== simulation metrics (all runs merged)\n\n%s\n", metrics.Render(snap))
		exitOn(snap.WriteJSON(*metricsOut))
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
}

// writeMemProfile dumps the post-GC heap; deferred so it sees the whole
// invocation's live set.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	exitOn(err)
	defer f.Close()
	runtime.GC()
	exitOn(pprof.WriteHeapProfile(f))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
