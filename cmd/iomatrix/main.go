// Command iomatrix prints the I/O performance model: the weak-scaling
// aggregate-bandwidth matrix (the paper's Fig. 2c) and, with -single, the
// single-node task-count curves (Fig. 2b).
package main

import (
	"flag"
	"fmt"

	"pckpt/internal/iomodel"
	"pckpt/internal/tablefmt"
)

func main() {
	var (
		single = flag.Bool("single", false, "print single-node task-count curves instead of the matrix")
		query  = flag.Bool("query", false, "print example checkpoint-time queries for the Table I workloads")
	)
	flag.Parse()

	io := iomodel.New(iomodel.DefaultSummit())
	switch {
	case *single:
		sizes := []float64{0.016, 0.064, 0.25, 1, 4, 16, 64}
		header := []string{"tasks\\GB"}
		for _, s := range sizes {
			header = append(header, fmt.Sprintf("%.3g", s))
		}
		t := tablefmt.NewTable(header...)
		for _, tasks := range []int{1, 2, 4, 8, 16, 32, 42} {
			row := []string{fmt.Sprint(tasks)}
			for _, s := range sizes {
				row = append(row, fmt.Sprintf("%.2f", io.SingleNodeBandwidth(tasks, s)))
			}
			t.AddRow(row...)
		}
		fmt.Println("single-node PFS bandwidth (GB/s) by MPI task count and transfer size:")
		fmt.Println(t.String())
	case *query:
		t := tablefmt.NewTable("nodes", "per-node GB", "BB write", "PFS write (all)", "PFS write (1 node)", "drain")
		for _, c := range []struct {
			nodes int
			gb    float64
		}{{2272, 284.5}, {1515, 98.8}, {505, 40.0}, {126, 0.81}, {64, 0.05}} {
			t.AddRow(fmt.Sprint(c.nodes), fmt.Sprintf("%.2f", c.gb),
				fmt.Sprintf("%.1fs", io.BBWriteTime(c.gb)),
				fmt.Sprintf("%.1fs", io.PFSWriteTime(c.nodes, c.gb)),
				fmt.Sprintf("%.1fs", io.SingleNodePFSWriteTime(c.gb)),
				fmt.Sprintf("%.1fs", io.DrainTime(c.nodes, c.gb)))
		}
		fmt.Println("checkpoint-path timings for Table I-scale workloads:")
		fmt.Println(t.String())
	default:
		fmt.Println("aggregate PFS bandwidth (GB/s) by node count and per-node transfer size:")
		fmt.Println(io.Matrix().Render())
	}
}
