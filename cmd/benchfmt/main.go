// Command benchfmt turns `go test -bench` output into the machine-readable
// benchmark artefact committed as BENCH_*.json. It reads benchmark output on
// stdin, echoes every line through to stdout unchanged (so `make bench`
// still shows the familiar text), and writes the parsed results as JSON to
// the -out path.
//
// The JSON schema (versioned as "pckpt-bench/v1") is documented in
// EXPERIMENTS.md; the intent is a committed perf trajectory: every PR runs
// the same harness and compares its numbers against the previous PR's
// artefact with `benchfmt -compare`.
//
// Usage:
//
//	go test -bench=. -benchmem -run '^$' ./... | benchfmt -label PR4 -out BENCH_PR4.json
//	benchfmt -compare BENCH_PR4_BASELINE.json,BENCH_PR4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Pkg is the import path the benchmark ran in (from the "pkg:" header).
	Pkg string `json:"pkg"`
	// Name is the full benchmark name including sub-benchmark path, with
	// the trailing -P GOMAXPROCS suffix stripped into Procs.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran under.
	Procs int `json:"procs"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp mirror -benchmem output.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every custom b.ReportMetric unit (events/sec, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the committed artefact.
type File struct {
	Schema string `json:"schema"`
	// Label names the measurement point in the trajectory (e.g. "PR4").
	Label  string      `json:"label,omitempty"`
	Goos   string      `json:"goos,omitempty"`
	Goarch string      `json:"goarch,omitempty"`
	CPU    string      `json:"cpu,omitempty"`
	Benchs []Benchmark `json:"benchmarks"`
}

const schema = "pckpt-bench/v1"

func main() {
	out := flag.String("out", "", "write parsed results as JSON to this path")
	label := flag.String("label", "", "trajectory label stored in the artefact")
	compare := flag.String("compare", "", "compare two artefacts: old.json,new.json (no stdin)")
	flag.Parse()

	if *compare != "" {
		if err := runCompare(*compare); err != nil {
			fmt.Fprintf(os.Stderr, "benchfmt: %v\n", err)
			os.Exit(1)
		}
		return
	}

	f, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfmt: %v\n", err)
		os.Exit(1)
	}
	f.Label = *label
	if len(f.Benchs) == 0 {
		fmt.Fprintln(os.Stderr, "benchfmt: no benchmark lines found on stdin")
		os.Exit(1)
	}
	if *out != "" {
		blob, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfmt: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchfmt: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchfmt: wrote %d benchmarks to %s\n", len(f.Benchs), *out)
	}
}

// parse consumes benchmark output from r, echoing every line to echo.
func parse(r *os.File, echo *os.File) (*File, error) {
	f := &File{Schema: schema}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				b.Pkg = pkg
				f.Benchs = append(f.Benchs, b)
			}
		}
	}
	return f, sc.Err()
}

// parseLine parses one result line:
//
//	BenchmarkName-8   1000000   1234 ns/op   120 B/op   3 allocs/op   5.6 events/sec
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = n
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// runCompare prints a per-benchmark delta table for "old.json,new.json".
func runCompare(spec string) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-compare wants old.json,new.json, got %q", spec)
	}
	oldF, err := load(parts[0])
	if err != nil {
		return err
	}
	newF, err := load(parts[1])
	if err != nil {
		return err
	}
	olds := map[string]Benchmark{}
	for _, b := range oldF.Benchs {
		olds[b.Pkg+"."+b.Name] = b
	}
	fmt.Printf("%-64s %14s %14s %9s %9s\n", "benchmark", "ns/op old→new", "Δns/op", "allocs", "Δallocs")
	for _, nb := range newF.Benchs {
		key := nb.Pkg + "." + nb.Name
		ob, ok := olds[key]
		if !ok {
			fmt.Printf("%-64s %14s (new)\n", key, fmtNs(nb.NsPerOp))
			continue
		}
		fmt.Printf("%-64s %6s→%-7s %14s %9.0f %9s\n",
			key, fmtNs(ob.NsPerOp), fmtNs(nb.NsPerOp), delta(ob.NsPerOp, nb.NsPerOp),
			nb.AllocsPerOp, delta(ob.AllocsPerOp, nb.AllocsPerOp))
	}
	return nil
}

func fmtNs(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}

func delta(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

func load(path string) (*File, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &f, nil
}
