package main

import "testing"

// TestPR7StepRateHeadroom holds the committed tier-0 baseline to the
// step engine's headline claim: the step engine's hot path must process
// at least 10× the events/sec of the process engine's equivalent
// micro-bench (in practice the ratio is ~40-50×; 10× is the floor the
// claim is committed at). The artefact is regenerated with `make bench`
// on an intentional perf change.
func TestPR7StepRateHeadroom(t *testing.T) {
	f, err := load("../../BENCH_PR7.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	if f.Schema != schema {
		t.Fatalf("baseline schema %q, want %q", f.Schema, schema)
	}
	rate := func(pkg, name string) float64 {
		for _, b := range f.Benchs {
			if b.Pkg == pkg && b.Name == name {
				if v, ok := b.Metrics["events/sec"]; ok {
					return v
				}
				t.Fatalf("%s.%s has no events/sec metric", pkg, name)
			}
		}
		t.Fatalf("%s.%s not in baseline", pkg, name)
		return 0
	}
	step := rate("pckpt/internal/stepsim", "BenchmarkStepHotPath")
	proc := rate("pckpt/internal/sim", "BenchmarkWaitHotPath")
	if ratio := step / proc; ratio < 10 {
		t.Errorf("step-engine headroom %.1f× (%.0f vs %.0f events/sec), want >= 10×", ratio, step, proc)
	}
}

// TestPR8EpisodeStepHeadroom extends the headroom gate to the episode
// machinery behind the step-tier default for P1/P2: one full priority-
// queue drain on the step engine must commit at least 10× the
// commits/sec of the same drain on the process-per-node engine (in
// practice ~40×; 10× is the committed floor). Regenerate BENCH_PR8.json
// with `make bench` on an intentional perf change.
func TestPR8EpisodeStepHeadroom(t *testing.T) {
	f, err := load("../../BENCH_PR8.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	if f.Schema != schema {
		t.Fatalf("baseline schema %q, want %q", f.Schema, schema)
	}
	rate := func(pkg, name string) float64 {
		for _, b := range f.Benchs {
			if b.Pkg == pkg && b.Name == name {
				if v, ok := b.Metrics["commits/sec"]; ok {
					return v
				}
				t.Fatalf("%s.%s has no commits/sec metric", pkg, name)
			}
		}
		t.Fatalf("%s.%s not in baseline", pkg, name)
		return 0
	}
	step := rate("pckpt/internal/stepsim", "BenchmarkStepEpisodeDrain")
	proc := rate("pckpt/internal/pckpt", "BenchmarkEpisodeProcess")
	if ratio := step / proc; ratio < 10 {
		t.Errorf("episode headroom %.1f× (%.0f vs %.0f commits/sec), want >= 10×", ratio, step, proc)
	}
}
