module pckpt

go 1.22
