// Package failure implements the failure generation and prediction stack
// of the paper: Weibull inter-arrival sampling with the published Table
// III parameters, the ten-sequence lead-time distribution mined from real
// HPC logs (Fig. 2a), a predictor with configurable false-positive and
// false-negative rates (Desh/Aarohi stand-in), lead-time variability
// scaling, and the σ estimator used by the hybrid model's extended OCI
// formula, Eq. (2).
package failure

import (
	"fmt"
	"math"
)

// System describes one HPC system's failure record: a Weibull fit of
// system-wide failure inter-arrival times. These are the three rows of
// the paper's Table III.
type System struct {
	// Name identifies the system ("OLCF Titan", ...).
	Name string
	// Shape and ScaleHours are the fitted Weibull parameters; ScaleHours
	// is in hours of system-wide inter-arrival time.
	Shape      float64
	ScaleHours float64
	// Nodes is the system's node count, used to scale the distribution to
	// a job occupying a subset of nodes.
	Nodes int
}

// Table III of the paper.
var (
	// LANLSystem8 is LANL System 8 (164 nodes).
	LANLSystem8 = System{Name: "LANL System 8", Shape: 0.7111, ScaleHours: 67.375, Nodes: 164}
	// LANLSystem18 is LANL System 18 (1024 nodes).
	LANLSystem18 = System{Name: "LANL System 18", Shape: 0.8170, ScaleHours: 6.6293, Nodes: 1024}
	// Titan is OLCF Titan (18688 nodes); the paper applies its
	// distribution to Summit for the headline results.
	Titan = System{Name: "OLCF Titan", Shape: 0.6885, ScaleHours: 5.4527, Nodes: 18868}
)

// Systems returns the Table III catalogue in presentation order.
func Systems() []System {
	return []System{Titan, LANLSystem18, LANLSystem8}
}

// SystemByName looks a system up by its Table III name.
func SystemByName(name string) (System, error) {
	for _, s := range Systems() {
		if s.Name == name {
			return s, nil
		}
	}
	return System{}, fmt.Errorf("failure: unknown system %q", name)
}

// MeanInterarrivalHours returns the analytical mean of the system-wide
// Weibull inter-arrival time: scale × Γ(1 + 1/shape).
func (s System) MeanInterarrivalHours() float64 {
	return s.ScaleHours * math.Gamma(1+1/s.Shape)
}

// JobScaleSeconds converts the system-wide Weibull scale to a job that
// occupies jobNodes of the system's nodes: failures land on a uniformly
// random node, so a job holding a fraction c/N of nodes sees failures at
// c/N the rate, which stretches the inter-arrival time axis by N/c and
// multiplies the Weibull scale by the same factor (shape unchanged).
// Jobs larger than the original system extrapolate the same rule.
func (s System) JobScaleSeconds(jobNodes int) float64 {
	if jobNodes <= 0 {
		panic("failure: JobScaleSeconds with non-positive job size")
	}
	return s.ScaleHours * 3600 * float64(s.Nodes) / float64(jobNodes)
}

// JobFailureRate returns the job-wide failure rate in failures/second for
// a job on jobNodes nodes: the λ·c product of Young's formula, Eq. (1).
func (s System) JobFailureRate(jobNodes int) float64 {
	scale := s.JobScaleSeconds(jobNodes)
	return 1 / (scale * math.Gamma(1+1/s.Shape))
}

// PerNodeRate returns the per-node failure rate λ in failures/second.
func (s System) PerNodeRate() float64 {
	return s.JobFailureRate(s.Nodes) / float64(s.Nodes)
}

// Validate reports a parameter error, or nil.
func (s System) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("failure: system with empty name")
	case s.Shape <= 0 || s.ScaleHours <= 0:
		return fmt.Errorf("failure: system %s has non-positive Weibull parameters", s.Name)
	case s.Nodes <= 0:
		return fmt.Errorf("failure: system %s has non-positive node count", s.Name)
	}
	return nil
}
