package failure

import (
	"fmt"
	"math"

	"pckpt/internal/metrics"
	"pckpt/internal/queue"
	"pckpt/internal/rng"
)

// Kind discriminates the events a failure stream produces.
type Kind uint8

const (
	// KindPrediction announces a coming failure: the predictor fired with
	// Lead seconds to go. The matching KindFailure event follows at
	// FailTime unless the run ends first.
	KindPrediction Kind = iota
	// KindFailure is a failure striking Node. Lead carries the lead time
	// it was announced with (zero when the predictor missed it).
	KindFailure
	// KindSpurious is a false-positive prediction: the predictor fired
	// but no failure follows.
	KindSpurious
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPrediction:
		return "prediction"
	case KindFailure:
		return "failure"
	case KindSpurious:
		return "spurious"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one entry of the merged failure/prediction stream, ordered by
// Time. A predicted failure produces two events sharing an ID: the
// prediction first, then the failure.
type Event struct {
	Kind Kind
	// Time is when the event occurs in job-relative seconds.
	Time float64
	// Node is the job-local index of the affected node.
	Node int
	// Lead is the prediction lead time in seconds (zero for unpredicted
	// failures).
	Lead float64
	// FailTime is when the (possibly predicted) failure strikes. For
	// spurious predictions it is the time the bogus failure was predicted
	// for. For unpredicted failures it equals Time.
	FailTime float64
	// Seq is the failure-sequence ID (Fig. 2a) that generated the lead.
	Seq int
	// ID links a prediction to its failure. Spurious events have unique
	// IDs never shared with a failure.
	ID int64
}

// LeadCap bounds lead times at two hours. The mined distributions place
// vanishing mass beyond it, and a finite cap lets the stream emit events
// in time order with bounded lookahead.
const LeadCap = 7200

// EventSource is the failure-stream interface both simulation tiers
// consume: an infinite, time-ordered sequence of failure / prediction /
// spurious-prediction events. The parametric Stream and the
// trace-replaying ReplayStream both implement it, so a tier written
// against EventSource simulates either failure source unchanged.
type EventSource interface {
	Next() Event
}

// Config parameterises a failure stream.
type Config struct {
	// System supplies the Weibull inter-arrival distribution (Table III).
	System System
	// JobNodes is the number of nodes the simulated job occupies; the
	// system-wide distribution is rescaled to the job (see
	// System.JobScaleSeconds).
	JobNodes int
	// Leads is the lead-time model. Nil selects DefaultLeadTimes.
	Leads *LeadTimeModel
	// LeadScale stretches every lead time (the variability axis of the
	// paper's Figs. 4 and 7); zero means 1.0.
	LeadScale float64
	// FNRate is the predictor's false-negative rate: the fraction of
	// failures that arrive unannounced. The default 0.125 caps the FT
	// ratio near the ≈0.85–0.88 the paper reports.
	FNRate float64
	// FPRate is the fraction of predictions that are false positives
	// (the paper holds it at 0.18).
	FPRate float64
	// Metrics, when non-nil, receives the predictor's delivered
	// accounting as the stream is consumed: the lead-time distribution
	// actually handed to the simulator plus true/false positive and
	// false negative counts (see internal/metrics). Nil costs nothing.
	Metrics *metrics.Registry
	// Replay, when non-nil, replaces the parametric Weibull source with
	// a recorded failure trace: NewSource returns a ReplayStream over it
	// and every other stochastic knob of this Config is ignored (the
	// trace fixes times, nodes, and leads). See Replay.
	Replay *Replay
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Leads == nil {
		c.Leads = DefaultLeadTimes()
	}
	if c.LeadScale == 0 {
		c.LeadScale = 1
	}
	return c
}

// Validate reports a configuration error, or nil. FNRate of exactly zero
// is valid (a perfect-recall predictor). In replay mode only the job
// size and the trace itself matter — the parametric knobs are unused.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Replay != nil {
		if c.JobNodes <= 0 {
			return fmt.Errorf("failure: non-positive job size")
		}
		return c.Replay.Validate()
	}
	if err := c.System.Validate(); err != nil {
		return err
	}
	switch {
	case c.JobNodes <= 0:
		return fmt.Errorf("failure: non-positive job size")
	case c.LeadScale <= 0:
		return fmt.Errorf("failure: non-positive lead scale")
	case c.FNRate < 0 || c.FNRate > 1:
		return fmt.Errorf("failure: FN rate %g outside [0, 1]", c.FNRate)
	case c.FPRate < 0 || c.FPRate >= 1:
		return fmt.Errorf("failure: FP rate %g outside [0, 1)", c.FPRate)
	}
	return nil
}

// NewSource builds the event source this configuration describes: a
// ReplayStream when a recorded trace is configured, the parametric
// Stream otherwise. Panics on invalid configuration, like NewStream.
func NewSource(cfg Config, src *rng.Source) EventSource {
	if cfg.Replay != nil {
		if err := cfg.Validate(); err != nil {
			panic(err)
		}
		return NewReplayStream(cfg.Replay, cfg.JobNodes, cfg.Metrics)
	}
	return NewStream(cfg, src)
}

// DefaultFNRate is the baseline false-negative rate of the predictor.
const DefaultFNRate = 0.125

// DefaultFPRate is the baseline false-positive share of predictions,
// constant at 18 % throughout the paper (its Observation 9 setup).
const DefaultFPRate = 0.18

// Stream produces the merged, time-ordered event sequence for one
// simulation run. It is deterministic given its Source.
type Stream struct {
	cfg       Config
	leads     *LeadTimeModel
	src       *rng.Source
	buf       queue.PQ[Event]
	nextFail  float64 // arrival time of the next not-yet-expanded failure
	nextSpur  float64 // arrival time of the next spurious prediction
	spurRate  float64 // spurious predictions per second (0 = none)
	jobScale  float64 // Weibull scale for job inter-arrivals, seconds
	nextID    int64
	emittedTo float64
	met       streamMeters
}

// streamMeters is the delivered-event accounting shared by every
// EventSource implementation (nil-registry handles cost nothing).
type streamMeters struct {
	leadDelivered *metrics.Histogram
	predictions   *metrics.Counter
	spurious      *metrics.Counter
	unpredicted   *metrics.Counter
	failures      *metrics.Counter
}

func newStreamMeters(reg *metrics.Registry) streamMeters {
	return streamMeters{
		leadDelivered: reg.Histogram("failure.lead_delivered_seconds"),
		predictions:   reg.Counter("failure.true_predictions"),
		spurious:      reg.Counter("failure.false_positives"),
		unpredicted:   reg.Counter("failure.false_negatives"),
		failures:      reg.Counter("failure.failures"),
	}
}

// account records one delivered event: what reaches the consumer is what
// the simulator actually experienced.
func (m *streamMeters) account(ev Event) {
	switch ev.Kind {
	case KindPrediction:
		m.predictions.Inc()
		m.leadDelivered.Observe(ev.Lead)
	case KindSpurious:
		m.spurious.Inc()
	case KindFailure:
		m.failures.Inc()
		if ev.Lead == 0 {
			m.unpredicted.Inc()
		}
	}
}

// NewStream builds a parametric stream. It panics on invalid
// configuration, and on a replay configuration — NewSource dispatches
// between the two source kinds.
func NewStream(cfg Config, src *rng.Source) *Stream {
	if cfg.Replay != nil {
		panic("failure: NewStream on a replay configuration (use NewSource)")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	leads := cfg.Leads
	if cfg.LeadScale != 1 {
		leads = leads.Scaled(cfg.LeadScale)
	}
	s := &Stream{
		cfg:      cfg,
		leads:    leads,
		src:      src,
		jobScale: cfg.System.JobScaleSeconds(cfg.JobNodes),
		met:      newStreamMeters(cfg.Metrics),
	}
	// Spurious predictions arrive so that FPRate of all predictions are
	// false: rate_fp = rate_true_pred × FP/(1−FP).
	truePredRate := (1 - cfg.FNRate) * cfg.System.JobFailureRate(cfg.JobNodes)
	if cfg.FPRate > 0 && truePredRate > 0 {
		s.spurRate = truePredRate * cfg.FPRate / (1 - cfg.FPRate)
	}
	s.nextFail = s.src.Weibull(cfg.System.Shape, s.jobScale)
	s.nextSpur = s.sampleSpur(0)
	return s
}

// Config returns the stream's (defaulted) configuration.
func (s *Stream) Config() Config { return s.cfg }

// Leads returns the (possibly scaled) lead-time model in effect.
func (s *Stream) Leads() *LeadTimeModel { return s.leads }

func (s *Stream) sampleSpur(from float64) float64 {
	if s.spurRate <= 0 {
		return math.Inf(1)
	}
	return from + s.src.Exponential(s.spurRate)
}

// expandFailure turns the pending failure arrival into buffered events
// and samples the next arrival.
func (s *Stream) expandFailure() {
	t := s.nextFail
	s.nextFail = t + s.src.Weibull(s.cfg.System.Shape, s.jobScale)
	s.nextID++
	node := s.src.Intn(s.cfg.JobNodes)
	if s.src.Bool(s.cfg.FNRate) {
		// Missed by the predictor: failure arrives unannounced.
		s.buf.Push(t, Event{Kind: KindFailure, Time: t, Node: node, FailTime: t, ID: s.nextID})
		return
	}
	lead, seq := s.leads.Sample(s.src)
	if lead > LeadCap {
		lead = LeadCap
	}
	if lead > t {
		lead = t // cannot predict before the job started
	}
	predAt := t - lead
	lead = t - predAt // re-derive so Lead == FailTime − Time exactly
	s.buf.Push(predAt, Event{Kind: KindPrediction, Time: predAt, Node: node, Lead: lead, FailTime: t, Seq: seq, ID: s.nextID})
	s.buf.Push(t, Event{Kind: KindFailure, Time: t, Node: node, Lead: lead, FailTime: t, Seq: seq, ID: s.nextID})
}

// expandSpur buffers the pending spurious prediction and samples the next.
func (s *Stream) expandSpur() {
	t := s.nextSpur
	s.nextSpur = s.sampleSpur(t)
	s.nextID++
	lead, seq := s.leads.Sample(s.src)
	if lead > LeadCap {
		lead = LeadCap
	}
	s.buf.Push(t, Event{Kind: KindSpurious, Time: t, Node: s.src.Intn(s.cfg.JobNodes), Lead: lead, FailTime: t + lead, Seq: seq, ID: s.nextID})
}

// Next returns the next event in time order. The stream is infinite; the
// caller stops consuming when its simulation ends.
func (s *Stream) Next() Event {
	for {
		frontier := math.Min(s.nextFail, s.nextSpur) - LeadCap
		if t, _, ok := s.buf.Peek(); ok && t <= frontier {
			break
		}
		if s.nextFail <= s.nextSpur {
			s.expandFailure()
		} else {
			s.expandSpur()
		}
	}
	_, ev := s.buf.Pop()
	if ev.Time < s.emittedTo {
		// Ordering is structurally guaranteed; a violation means the
		// lookahead frontier logic broke. Fail loudly.
		panic(fmt.Sprintf("failure: stream emitted out of order (%g after %g)", ev.Time, s.emittedTo))
	}
	s.emittedTo = ev.Time
	s.met.account(ev)
	return ev
}

// RateEstimator tracks the observed job failure rate so the simulator can
// refresh the OCI as the run progresses (the paper recomputes the OCI
// periodically from the dynamically changing system failure rate). The
// estimate blends the analytic prior with the observed count, which keeps
// early-run estimates stable and converges to the empirical rate.
type RateEstimator struct {
	prior float64 // failures/second, analytic
	count int
	// priorWeight is the pseudo-observation time the prior is worth.
	priorWeight float64
}

// NewRateEstimator builds an estimator around an analytic prior rate
// (failures/second, job-wide).
func NewRateEstimator(prior float64) *RateEstimator {
	if prior <= 0 {
		panic("failure: non-positive prior rate")
	}
	return &RateEstimator{prior: prior, priorWeight: 3 / prior}
}

// Observe records one failure.
func (e *RateEstimator) Observe() { e.count++ }

// Rate returns the blended failures/second estimate after elapsed seconds
// of observation.
func (e *RateEstimator) Rate(elapsed float64) float64 {
	if elapsed < 0 {
		panic("failure: negative elapsed time")
	}
	return (float64(e.count) + e.prior*e.priorWeight) / (elapsed + e.priorWeight)
}
