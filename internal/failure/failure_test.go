package failure

import (
	"math"
	"testing"
	"testing/quick"

	"pckpt/internal/rng"
)

func TestSystemsCatalogue(t *testing.T) {
	systems := Systems()
	if len(systems) != 3 {
		t.Fatalf("%d systems, want 3 (Table III)", len(systems))
	}
	for _, s := range systems {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestSystemByName(t *testing.T) {
	s, err := SystemByName("OLCF Titan")
	if err != nil || s.Shape != 0.6885 {
		t.Fatalf("SystemByName(Titan) = %+v, %v", s, err)
	}
	if _, err := SystemByName("nope"); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestTitanMeanInterarrival(t *testing.T) {
	// 5.4527 × Γ(1 + 1/0.6885) ≈ 7.0 hours system-wide MTBF.
	mean := Titan.MeanInterarrivalHours()
	if mean < 6.5 || mean > 7.5 {
		t.Fatalf("Titan mean inter-arrival %.2f h, want ≈7", mean)
	}
}

func TestJobScaleInverseInNodes(t *testing.T) {
	// Half the nodes → half the failure rate → double the scale.
	full := Titan.JobScaleSeconds(Titan.Nodes)
	half := Titan.JobScaleSeconds(Titan.Nodes / 2)
	if math.Abs(half-2*full)/full > 1e-9 {
		t.Fatalf("scale did not double: %.1f vs 2×%.1f", half, full)
	}
}

func TestJobFailureRateConsistency(t *testing.T) {
	// rate × mean-interarrival must be 1 for the whole system.
	rate := Titan.JobFailureRate(Titan.Nodes)
	mean := Titan.MeanInterarrivalHours() * 3600
	if prod := rate * mean; math.Abs(prod-1) > 1e-9 {
		t.Fatalf("rate × mean = %g, want 1", prod)
	}
	// Per-node rate times node count recovers the system rate.
	if got := Titan.PerNodeRate() * float64(Titan.Nodes); math.Abs(got-rate)/rate > 1e-9 {
		t.Fatalf("per-node rate inconsistent: %g vs %g", got, rate)
	}
}

func TestLeadTimeModelTailProbs(t *testing.T) {
	m := DefaultLeadTimes()
	// The calibration targets derived from the paper's Tables II and IV
	// (see the LeadTimeModel doc comment).
	checks := []struct {
		x      float64
		lo, hi float64
	}{
		{7.4, 0.95, 1.0},    // p-ckpt latency of XGC: nearly always covered
		{21, 0.72, 0.92},    // p-ckpt latency of CHIMERA
		{41, 0.45, 0.62},    // LM θ of CHIMERA
		{45.6, 0.02, 0.09},  // θ_CHIMERA at −10 % lead: the Table II cliff
		{62, 0.015, 0.08},   // safeguard latency of XGC
		{258, 0.001, 0.012}, // safeguard latency of CHIMERA
	}
	for _, c := range checks {
		p := m.TailProb(c.x)
		if p < c.lo || p > c.hi {
			t.Errorf("P(lead ≥ %.1f) = %.4f, want in [%.3f, %.3f]", c.x, p, c.lo, c.hi)
		}
	}
}

func TestTailProbMonotone(t *testing.T) {
	m := DefaultLeadTimes()
	prev := 1.0
	for x := 0.0; x < 1000; x += 5 {
		p := m.TailProb(x)
		if p > prev+1e-12 {
			t.Fatalf("tail probability increased at x=%g", x)
		}
		prev = p
	}
	if m.TailProb(0) != 1 {
		t.Fatal("P(lead ≥ 0) must be 1")
	}
}

func TestTailProbMatchesSampling(t *testing.T) {
	m := DefaultLeadTimes()
	r := rng.New(100)
	const n = 200000
	for _, x := range []float64{10, 30, 50, 100} {
		hits := 0
		for i := 0; i < n; i++ {
			lead, _ := m.Sample(r)
			if lead >= x {
				hits++
			}
		}
		emp := float64(hits) / n
		ana := m.TailProb(x)
		if math.Abs(emp-ana) > 0.01 {
			t.Errorf("x=%g: empirical %.4f vs analytic %.4f", x, emp, ana)
		}
	}
}

func TestQuantileInvertsTail(t *testing.T) {
	m := DefaultLeadTimes()
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		q := m.Quantile(p)
		if got := 1 - m.TailProb(q); math.Abs(got-p) > 1e-6 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
	if m.Quantile(0) != 0 {
		t.Fatal("Quantile(0) must be 0")
	}
}

func TestScaledModel(t *testing.T) {
	m := DefaultLeadTimes()
	s := m.Scaled(1.5)
	if math.Abs(s.Mean()-1.5*m.Mean())/m.Mean() > 1e-9 {
		t.Fatalf("scaled mean %.3f, want %.3f", s.Mean(), 1.5*m.Mean())
	}
	// Tail at 1.5x must equal original tail at x.
	for _, x := range []float64{10, 40, 100} {
		if a, b := s.TailProb(1.5*x), m.TailProb(x); math.Abs(a-b) > 1e-9 {
			t.Errorf("scaled tail mismatch at x=%g: %g vs %g", x, a, b)
		}
	}
}

func TestSigma(t *testing.T) {
	m := DefaultLeadTimes()
	// σ with perfect recall equals the raw tail probability.
	if a, b := m.Sigma(41, 0), m.TailProb(41); a != b {
		t.Fatalf("Sigma(θ, 0) = %g, want %g", a, b)
	}
	// Recall scales σ linearly.
	if a, b := m.Sigma(41, 0.5), 0.5*m.TailProb(41); math.Abs(a-b) > 1e-12 {
		t.Fatalf("Sigma with FN=0.5 = %g, want %g", a, b)
	}
	// σ must stay below the paper's analytic bound region in practice.
	if s := m.Sigma(0, DefaultFNRate); s >= 1 {
		t.Fatalf("sigma at θ=0 is %g, want < 1", s)
	}
}

func TestStreamOrdering(t *testing.T) {
	s := NewStream(Config{System: Titan, JobNodes: 2272, FNRate: DefaultFNRate, FPRate: DefaultFPRate}, rng.New(7))
	prev := 0.0
	for i := 0; i < 5000; i++ {
		ev := s.Next()
		if ev.Time < prev {
			t.Fatalf("event %d out of order: %.2f after %.2f", i, ev.Time, prev)
		}
		prev = ev.Time
	}
}

func TestStreamPredictionPrecedesFailure(t *testing.T) {
	s := NewStream(Config{System: Titan, JobNodes: 1000, FNRate: 0.1, FPRate: 0.1}, rng.New(8))
	pred := map[int64]Event{}
	for i := 0; i < 5000; i++ {
		ev := s.Next()
		switch ev.Kind {
		case KindPrediction:
			if _, dup := pred[ev.ID]; dup {
				t.Fatalf("duplicate prediction for failure %d", ev.ID)
			}
			pred[ev.ID] = ev
			if ev.FailTime < ev.Time {
				t.Fatalf("prediction %d has FailTime %.2f before prediction time %.2f", ev.ID, ev.FailTime, ev.Time)
			}
			if math.Abs((ev.FailTime-ev.Time)-ev.Lead) > 1e-9 {
				t.Fatalf("prediction %d lead inconsistent", ev.ID)
			}
		case KindFailure:
			if p, ok := pred[ev.ID]; ok {
				if p.Node != ev.Node || p.FailTime != ev.Time {
					t.Fatalf("failure %d does not match its prediction", ev.ID)
				}
				delete(pred, ev.ID)
			} else if ev.Lead != 0 {
				t.Fatalf("failure %d carries lead %.2f but no prediction was seen", ev.ID, ev.Lead)
			}
		}
	}
}

func TestStreamRecall(t *testing.T) {
	const fn = 0.3
	s := NewStream(Config{System: Titan, JobNodes: 2272, FNRate: fn, FPRate: 0}, rng.New(9))
	predicted, total := 0, 0
	for total < 20000 {
		ev := s.Next()
		if ev.Kind == KindFailure {
			total++
			if ev.Lead > 0 {
				predicted++
			}
		}
	}
	got := float64(predicted) / float64(total)
	if math.Abs(got-(1-fn)) > 0.02 {
		t.Fatalf("recall %.3f, want ≈%.3f", got, 1-fn)
	}
}

func TestStreamFalsePositiveShare(t *testing.T) {
	s := NewStream(Config{System: Titan, JobNodes: 2272, FNRate: DefaultFNRate, FPRate: DefaultFPRate}, rng.New(10))
	spurious, preds := 0, 0
	for preds+spurious < 30000 {
		switch s.Next().Kind {
		case KindPrediction:
			preds++
		case KindSpurious:
			spurious++
		}
	}
	share := float64(spurious) / float64(spurious+preds)
	if math.Abs(share-DefaultFPRate) > 0.02 {
		t.Fatalf("false-positive share %.3f, want ≈%.2f", share, DefaultFPRate)
	}
}

func TestStreamMeanInterarrival(t *testing.T) {
	jobNodes := 2272
	s := NewStream(Config{System: Titan, JobNodes: jobNodes, FNRate: 0, FPRate: 0}, rng.New(11))
	const n = 30000
	var last float64
	count := 0
	for count < n {
		ev := s.Next()
		if ev.Kind == KindFailure {
			count++
			last = ev.Time
		}
	}
	want := 1 / Titan.JobFailureRate(jobNodes)
	got := last / float64(n)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("mean job inter-arrival %.0f s, want ≈%.0f s", got, want)
	}
}

func TestStreamNodesInRange(t *testing.T) {
	const nodes = 37
	s := NewStream(Config{System: LANLSystem18, JobNodes: nodes, FNRate: 0.2, FPRate: 0.2}, rng.New(12))
	for i := 0; i < 3000; i++ {
		ev := s.Next()
		if ev.Node < 0 || ev.Node >= nodes {
			t.Fatalf("event node %d outside [0, %d)", ev.Node, nodes)
		}
	}
}

func TestStreamLeadCapRespected(t *testing.T) {
	s := NewStream(Config{System: Titan, JobNodes: 2272}, rng.New(13))
	for i := 0; i < 20000; i++ {
		ev := s.Next()
		if ev.Lead > LeadCap {
			t.Fatalf("lead %.1f exceeds cap %d", ev.Lead, LeadCap)
		}
		if ev.Kind == KindPrediction && ev.Time < 0 {
			t.Fatalf("prediction before job start: %.2f", ev.Time)
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	mk := func() []Event {
		s := NewStream(Config{System: Titan, JobNodes: 500, FNRate: 0.1, FPRate: 0.1}, rng.New(42))
		out := make([]Event, 200)
		for i := range out {
			out[i] = s.Next()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverged at event %d", i)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	ok := Config{System: Titan, JobNodes: 10}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{System: Titan, JobNodes: 0},
		{System: Titan, JobNodes: 10, FNRate: 1.5},
		{System: Titan, JobNodes: 10, FPRate: 1},
		{System: Titan, JobNodes: 10, LeadScale: -1},
		{System: System{}, JobNodes: 10},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRateEstimatorConvergesToObserved(t *testing.T) {
	e := NewRateEstimator(1e-5)
	// Observe failures at 10x the prior rate for a long time.
	elapsed := 0.0
	for i := 0; i < 1000; i++ {
		elapsed += 1e4 // one failure per 1e4 s → rate 1e-4
		e.Observe()
	}
	got := e.Rate(elapsed)
	if math.Abs(got-1e-4)/1e-4 > 0.05 {
		t.Fatalf("estimator rate %.3g, want ≈1e-4", got)
	}
}

func TestRateEstimatorPriorDominatesEarly(t *testing.T) {
	e := NewRateEstimator(1e-5)
	got := e.Rate(10)
	if math.Abs(got-1e-5)/1e-5 > 0.01 {
		t.Fatalf("early estimate %.3g strayed from prior 1e-5", got)
	}
}

func TestSequencesQuickValidLeads(t *testing.T) {
	m := DefaultLeadTimes()
	r := rng.New(50)
	f := func(_ uint8) bool {
		lead, seq := m.Sample(r)
		return lead > 0 && seq >= 1 && seq <= 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewLeadTimeModelPanics(t *testing.T) {
	cases := [][]Sequence{
		nil,
		{{ID: 1, Weight: 0, MeanLeadSec: 1, CV: 1}},
		{{ID: 1, Weight: 1, MeanLeadSec: 0, CV: 1}},
		{{ID: 1, Weight: 1, MeanLeadSec: 1, CV: 0}},
	}
	for i, seqs := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid sequences accepted", i)
				}
			}()
			NewLeadTimeModel(seqs)
		}()
	}
}
