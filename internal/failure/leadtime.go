package failure

import (
	"fmt"
	"math"

	"pckpt/internal/rng"
)

// Sequence is one mined failure chain: a recurring sequence of log
// phrases that precedes a failure. Weight is the number of occurrences
// observed in the logs; the lead time (first phrase → failure) follows a
// log-normal with the given mean and coefficient of variation.
type Sequence struct {
	// ID is the 1-based failure sequence number of the paper's Fig. 2a.
	ID int
	// Weight is the occurrence count in the mined logs.
	Weight float64
	// MeanLeadSec is the mean lead time in seconds.
	MeanLeadSec float64
	// CV is the coefficient of variation (stddev/mean) of the lead time;
	// sequences 3 and 4 are heavy-tailed (the outliers the paper notes).
	CV float64
}

// LeadTimeModel is the ten-sequence lead-time mixture of Fig. 2a. Lead
// times drawn from it drive every prediction in the simulation.
//
// The published figure reports per-sequence boxplots without a numeric
// table, so the constants in DefaultLeadTimes are synthesized to
// reproduce the paper's *measurable consequences* — the FT-ratio
// structure of its Tables II and IV:
//
//   - P(lead ≥ θ_LM^CHIMERA ≈ 41 s) ≈ 0.54 (M2 FT 0.47 at recall 0.875)
//     yet P(lead ≥ 45.6 s) ≈ 0.05 (M2 FT collapses to 0.04 at −10 %
//     lead variation), which pins roughly half the probability mass
//     into a narrow band just above 41 s;
//   - P(lead ≥ t_safeguard^XGC ≈ 62 s) ≈ 0.045 (M1 FT 0.04);
//   - P(lead ≥ t_safeguard^CHIMERA ≈ 258 s) ≈ 0.005 (M1 FT 0.006);
//   - P(lead ≥ t_pckpt^CHIMERA ≈ 21 s) ≈ 0.82 (P1 FT 0.70);
//   - near-certain coverage of XGC's ≈7 s p-ckpt latency (P1 FT 0.84).
type LeadTimeModel struct {
	seqs    []Sequence
	mix     *rng.Mixture
	weights float64
}

// DefaultLeadTimes returns the lead-time model calibrated to the paper's
// FT-ratio structure (see the type comment).
func DefaultLeadTimes() *LeadTimeModel {
	return NewLeadTimeModel([]Sequence{
		{ID: 1, Weight: 4900, MeanLeadSec: 43.3, CV: 0.026},
		{ID: 2, Weight: 1300, MeanLeadSec: 32, CV: 0.12},
		{ID: 3, Weight: 550, MeanLeadSec: 95, CV: 0.80},
		{ID: 4, Weight: 70, MeanLeadSec: 320, CV: 1.00},
		{ID: 5, Weight: 1100, MeanLeadSec: 25, CV: 0.05},
		{ID: 6, Weight: 450, MeanLeadSec: 22, CV: 0.05},
		{ID: 7, Weight: 1250, MeanLeadSec: 18.5, CV: 0.08},
		{ID: 8, Weight: 250, MeanLeadSec: 12, CV: 0.25},
		{ID: 9, Weight: 80, MeanLeadSec: 6, CV: 0.40},
		{ID: 10, Weight: 50, MeanLeadSec: 9, CV: 0.30},
	})
}

// NewLeadTimeModel builds a model from explicit sequences. It panics on
// invalid parameters (model construction is configuration-time).
func NewLeadTimeModel(seqs []Sequence) *LeadTimeModel {
	if len(seqs) == 0 {
		panic("failure: lead-time model with no sequences")
	}
	m := &LeadTimeModel{seqs: seqs}
	comps := make([]rng.MixtureComponent, len(seqs))
	for i, s := range seqs {
		if s.Weight <= 0 || s.MeanLeadSec <= 0 || s.CV <= 0 {
			panic(fmt.Sprintf("failure: sequence %d has non-positive parameters", s.ID))
		}
		comps[i] = rng.MixtureComponent{
			Weight: s.Weight,
			Dist:   rng.LogNormalFromMeanCV(s.MeanLeadSec, s.CV),
		}
		m.weights += s.Weight
	}
	m.mix = rng.NewMixture(comps...)
	return m
}

// Sequences returns the model's sequences.
func (m *LeadTimeModel) Sequences() []Sequence { return m.seqs }

// Sample draws a lead time in seconds and reports which failure sequence
// produced it (the sequence's ID).
func (m *LeadTimeModel) Sample(r *rng.Source) (lead float64, seqID int) {
	v, i := m.mix.SampleComponent(r)
	return v, m.seqs[i].ID
}

// Mean returns the weight-averaged mean lead time in seconds.
func (m *LeadTimeModel) Mean() float64 { return m.mix.Mean() }

// lognormalParams converts (mean, cv) to the underlying normal's (mu,
// sigma), mirroring rng.LogNormalFromMeanCV.
func lognormalParams(mean, cv float64) (mu, sigma float64) {
	sigma2 := math.Log(1 + cv*cv)
	return math.Log(mean) - sigma2/2, math.Sqrt(sigma2)
}

// TailProb returns P(lead ≥ x) analytically from the mixture of
// log-normal tails. The σ estimator of Eq. (2) and the analytical model
// of Eqs. (4)–(8) both consume this.
func (m *LeadTimeModel) TailProb(x float64) float64 {
	if x <= 0 {
		return 1
	}
	var p float64
	for _, s := range m.seqs {
		mu, sigma := lognormalParams(s.MeanLeadSec, s.CV)
		z := (math.Log(x) - mu) / sigma
		p += s.Weight * 0.5 * math.Erfc(z/math.Sqrt2)
	}
	return p / m.weights
}

// Quantile returns the lead time q such that P(lead ≤ q) = p, found by
// bisection on the analytic CDF. Used by display tools and tests.
func (m *LeadTimeModel) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		p = 1 - 1e-12
	}
	lo, hi := 0.0, 1.0
	for m.TailProb(hi) > 1-p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		if 1-m.TailProb(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Scaled returns a copy of the model with every lead time multiplied by
// factor — the paper's lead-time variability axis (a +50 % variation is
// factor 1.5). Means and tail probabilities scale consistently.
func (m *LeadTimeModel) Scaled(factor float64) *LeadTimeModel {
	if factor <= 0 {
		panic("failure: lead-time scale factor must be positive")
	}
	seqs := make([]Sequence, len(m.seqs))
	copy(seqs, m.seqs)
	for i := range seqs {
		seqs[i].MeanLeadSec *= factor
	}
	return NewLeadTimeModel(seqs)
}

// Sigma returns σ of Eq. (2): the fraction of failures predictable with a
// lead time of at least theta seconds AND actually predicted (predictions
// miss with rate fnRate). Failures avoided by live migration reduce the
// effective failure rate by σ.
func (m *LeadTimeModel) Sigma(theta float64, fnRate float64) float64 {
	if fnRate < 0 || fnRate > 1 {
		panic("failure: fnRate outside [0, 1]")
	}
	return (1 - fnRate) * m.TailProb(theta)
}
