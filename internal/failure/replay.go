package failure

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"pckpt/internal/metrics"
)

// ReplayEvent is one recorded entry of a failure trace. For a failure, T
// is the strike time and Lead the announcement margin (zero =
// unpredicted); for a spurious prediction, T is when the bogus
// prediction fires and Lead how far ahead the non-failure was predicted.
type ReplayEvent struct {
	// T is seconds since the trace window's start.
	T float64
	// Node is the trace-local node index (folded onto the job's nodes
	// modulo the job size when the trace was recorded on a different
	// cluster span).
	Node int
	// Lead is the prediction lead time in seconds.
	Lead float64
	// Seq is the failure-sequence ID the event was mined from (0 when
	// unknown).
	Seq int
	// Spurious marks a false-positive prediction with no failure behind
	// it.
	Spurious bool
}

// Replay is a recorded failure trace the simulation replays instead of
// drawing parametric Weibull arrivals — mined from system logs by
// internal/deshlog, or hand-written. The trace covers HorizonSeconds and
// wraps around: a run longer than the window sees the same failure
// pattern again, shifted by one horizon, which keeps the stream infinite
// and every run deterministic with no random draws at all.
//
// A Replay is immutable once built: streams over it share it freely
// across concurrent runs.
type Replay struct {
	// Name labels the trace (provenance; participates in the digest).
	Name string
	// Nodes is the node span the trace was recorded over.
	Nodes int
	// HorizonSeconds is the trace window length; events wrap modulo it.
	HorizonSeconds float64
	// Events is the recorded sequence, ordered by T.
	Events []ReplayEvent
}

// Validate reports a malformed trace, or nil. Beyond field ranges it
// requires time order (canonical form, and what lets the stream emit
// cycles without sorting the shared slice) and at least one real failure
// (a failure-free trace would loop the simulation forever and admits no
// rate estimate).
func (r *Replay) Validate() error {
	if r == nil {
		return fmt.Errorf("failure: nil replay trace")
	}
	if r.Nodes <= 0 {
		return fmt.Errorf("failure: replay trace with non-positive node span")
	}
	if !(r.HorizonSeconds > 0) || math.IsInf(r.HorizonSeconds, 0) {
		return fmt.Errorf("failure: replay horizon %v not a positive finite duration", r.HorizonSeconds)
	}
	if len(r.Events) == 0 {
		return fmt.Errorf("failure: replay trace with no events")
	}
	failures := 0
	last := math.Inf(-1)
	for i, ev := range r.Events {
		switch {
		case math.IsNaN(ev.T) || ev.T < 0 || ev.T > r.HorizonSeconds:
			return fmt.Errorf("failure: replay event %d at t=%v outside [0, %v]", i, ev.T, r.HorizonSeconds)
		case ev.T < last:
			return fmt.Errorf("failure: replay event %d out of time order (t=%v after %v)", i, ev.T, last)
		case ev.Node < 0 || ev.Node >= r.Nodes:
			return fmt.Errorf("failure: replay event %d on node %d outside the trace's %d-node span", i, ev.Node, r.Nodes)
		case math.IsNaN(ev.Lead) || ev.Lead < 0 || math.IsInf(ev.Lead, 0):
			return fmt.Errorf("failure: replay event %d with lead %v not a finite non-negative duration", i, ev.Lead)
		case !ev.Spurious && ev.Lead > ev.T:
			return fmt.Errorf("failure: replay event %d predicted %vs ahead of t=%v, before the trace window", i, ev.Lead, ev.T)
		case ev.Seq < 0:
			return fmt.Errorf("failure: replay event %d with negative sequence ID", i)
		}
		last = ev.T
		if !ev.Spurious {
			failures++
		}
	}
	if failures == 0 {
		return fmt.Errorf("failure: replay trace has no failures (only spurious predictions)")
	}
	return nil
}

// FailureCount returns the number of real failures per trace cycle.
func (r *Replay) FailureCount() int {
	n := 0
	for _, ev := range r.Events {
		if !ev.Spurious {
			n++
		}
	}
	return n
}

// SyntheticSystem derives the failure.System a replayed job should report
// as its platform distribution: an exponential (shape 1) fit whose
// job-wide rate on jobNodes nodes equals the trace's empirical failure
// rate. The OCI refresh and Eq. (1)/(2) priors then track the replayed
// reality instead of an unrelated Table III row.
func (r *Replay) SyntheticSystem(jobNodes int) System {
	if jobNodes <= 0 {
		panic("failure: SyntheticSystem with non-positive job size")
	}
	name := r.Name
	if name == "" {
		name = "trace"
	}
	return System{
		Name:       "replay:" + name,
		Shape:      1,
		ScaleHours: r.HorizonSeconds / (3600 * float64(r.FailureCount())),
		Nodes:      jobNodes,
	}
}

// LeadModel fits a lead-time mixture to the trace's predicted failures,
// grouped by mined sequence ID — the same construction
// internal/deshlog applies to freshly mined chains, so σ and θ reflect
// the replayed leads rather than the paper's parametric Fig. 2a model.
// Returns nil when the trace carries no predicted failures.
func (r *Replay) LeadModel() *LeadTimeModel {
	bySeq := make(map[int][]float64)
	for _, ev := range r.Events {
		if !ev.Spurious && ev.Lead > 0 {
			bySeq[ev.Seq] = append(bySeq[ev.Seq], ev.Lead)
		}
	}
	if len(bySeq) == 0 {
		return nil
	}
	ids := make([]int, 0, len(bySeq))
	for id := range bySeq {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	seqs := make([]Sequence, 0, len(ids))
	for _, id := range ids {
		leads := bySeq[id]
		var sum float64
		for _, l := range leads {
			sum += l
		}
		mean := sum / float64(len(leads))
		// Floor the CV so single-sample sequences still yield a
		// well-defined log-normal (mirrors deshlog.ToLeadModel).
		cv := 0.05
		if len(leads) > 1 {
			var ss float64
			for _, l := range leads {
				d := l - mean
				ss += d * d
			}
			if got := math.Sqrt(ss/float64(len(leads)-1)) / mean; got > cv {
				cv = got
			}
		}
		seqs = append(seqs, Sequence{ID: id, Weight: float64(len(leads)), MeanLeadSec: mean, CV: cv})
	}
	return NewLeadTimeModel(seqs)
}

// Digest returns a stable content address of the trace: a versioned
// SHA-256 over the canonical event rendering. Two traces that replay
// identically digest identically, so the digest is what represents the
// trace inside platform.Config.CanonicalString (and therefore inside
// every runcache key).
func (r *Replay) Digest() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replay/v1\n%s|%d|%s\n", r.Name, r.Nodes, strconv.FormatFloat(r.HorizonSeconds, 'g', -1, 64))
	for _, ev := range r.Events {
		fmt.Fprintf(&b, "%s|%d|%s|%d|%t\n",
			strconv.FormatFloat(ev.T, 'g', -1, 64), ev.Node,
			strconv.FormatFloat(ev.Lead, 'g', -1, 64), ev.Seq, ev.Spurious)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// ReplayStream replays a Replay as an infinite EventSource: each trace
// event expands into the same prediction/failure pairs the parametric
// Stream emits, cycle after cycle, with nothing random — a replayed run
// is a pure function of the trace and is bit-identical across worker
// counts by construction.
type ReplayStream struct {
	re       *Replay
	jobNodes int
	cycle    int
	idx      int
	buf      []Event
	nextID   int64
	met      streamMeters
}

// NewReplayStream builds a stream over re for a job on jobNodes nodes.
// It panics on an invalid trace (construction is configuration-time).
func NewReplayStream(re *Replay, jobNodes int, reg *metrics.Registry) *ReplayStream {
	if err := re.Validate(); err != nil {
		panic(err)
	}
	if jobNodes <= 0 {
		panic("failure: replay stream with non-positive job size")
	}
	return &ReplayStream{re: re, jobNodes: jobNodes, met: newStreamMeters(reg)}
}

// expandCycle materialises the next trace cycle into the emission buffer.
// Every event time of cycle k lies in [k·H, (k+1)·H] (Validate bounds T
// and forces Lead ≤ T), so cycles emit in order with no cross-cycle
// lookahead.
func (s *ReplayStream) expandCycle() {
	offset := float64(s.cycle) * s.re.HorizonSeconds
	s.cycle++
	s.buf = s.buf[:0]
	s.idx = 0
	for _, ev := range s.re.Events {
		s.nextID++
		node := ev.Node % s.jobNodes
		lead := ev.Lead
		if lead > LeadCap {
			lead = LeadCap // the parametric stream caps leads identically
		}
		t := offset + ev.T
		switch {
		case ev.Spurious:
			s.buf = append(s.buf, Event{Kind: KindSpurious, Time: t, Node: node, Lead: lead, FailTime: t + lead, Seq: ev.Seq, ID: s.nextID})
		case lead > 0:
			s.buf = append(s.buf,
				Event{Kind: KindPrediction, Time: t - lead, Node: node, Lead: lead, FailTime: t, Seq: ev.Seq, ID: s.nextID},
				Event{Kind: KindFailure, Time: t, Node: node, Lead: lead, FailTime: t, Seq: ev.Seq, ID: s.nextID})
		default:
			s.buf = append(s.buf, Event{Kind: KindFailure, Time: t, Node: node, FailTime: t, ID: s.nextID})
		}
	}
	// Stable sort: ties keep trace order, then prediction before failure
	// (each pair was appended in that order), so the interleave is
	// deterministic with no dependence on sort internals.
	sort.SliceStable(s.buf, func(i, j int) bool { return s.buf[i].Time < s.buf[j].Time })
}

// Next returns the next event in time order. The stream is infinite; the
// caller stops consuming when its simulation ends.
func (s *ReplayStream) Next() Event {
	if s.idx >= len(s.buf) {
		s.expandCycle()
	}
	ev := s.buf[s.idx]
	s.idx++
	s.met.account(ev)
	return ev
}

var _ EventSource = (*ReplayStream)(nil)
var _ EventSource = (*Stream)(nil)
