package failure

import (
	"math"
	"testing"
)

func testReplay() *Replay {
	return &Replay{
		Name:           "unit",
		Nodes:          8,
		HorizonSeconds: 1000,
		Events: []ReplayEvent{
			{T: 100, Node: 3, Lead: 40, Seq: 1},
			{T: 250, Node: 7, Lead: 30, Seq: 2, Spurious: true},
			{T: 400, Node: 5},
			{T: 990, Node: 1, Lead: 25, Seq: 1},
		},
	}
}

func TestReplayValidate(t *testing.T) {
	if err := testReplay().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	cases := map[string]func(*Replay){
		"nil-events":    func(r *Replay) { r.Events = nil },
		"zero-nodes":    func(r *Replay) { r.Nodes = 0 },
		"zero-horizon":  func(r *Replay) { r.HorizonSeconds = 0 },
		"nan-horizon":   func(r *Replay) { r.HorizonSeconds = math.NaN() },
		"inf-horizon":   func(r *Replay) { r.HorizonSeconds = math.Inf(1) },
		"t-negative":    func(r *Replay) { r.Events[0].T = -1 },
		"t-nan":         func(r *Replay) { r.Events[0].T = math.NaN() },
		"t-past-end":    func(r *Replay) { r.Events[3].T = 1001 },
		"out-of-order":  func(r *Replay) { r.Events[0].T = 500 },
		"node-negative": func(r *Replay) { r.Events[2].Node = -1 },
		"node-beyond":   func(r *Replay) { r.Events[2].Node = 8 },
		"lead-negative": func(r *Replay) { r.Events[0].Lead = -1 },
		"lead-nan":      func(r *Replay) { r.Events[0].Lead = math.NaN() },
		"lead-inf":      func(r *Replay) { r.Events[0].Lead = math.Inf(1) },
		"lead-before-0": func(r *Replay) { r.Events[0].Lead = 200 },
		"seq-negative":  func(r *Replay) { r.Events[0].Seq = -1 },
		"spurious-only": func(r *Replay) {
			for i := range r.Events {
				r.Events[i].Spurious = true
			}
		},
	}
	for name, mutate := range cases {
		r := testReplay()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: invalid trace accepted", name)
		}
	}
	var nilTrace *Replay
	if err := nilTrace.Validate(); err == nil {
		t.Error("nil trace accepted")
	}
}

// The stream must emit strictly time-ordered events, cycle after cycle,
// expanding each predicted failure into a linked prediction/failure pair
// exactly like the parametric stream.
func TestReplayStreamCycles(t *testing.T) {
	re := testReplay()
	s := NewReplayStream(re, re.Nodes, nil)
	perCycle := 6 // 2 pred/fail pairs + 1 unpredicted failure + 1 spurious
	var evs []Event
	for i := 0; i < 3*perCycle; i++ {
		evs = append(evs, s.Next())
	}
	last := math.Inf(-1)
	preds := map[int64]Event{}
	failures := 0
	for _, ev := range evs {
		if ev.Time < last {
			t.Fatalf("out of order: %v after %v", ev.Time, last)
		}
		last = ev.Time
		switch ev.Kind {
		case KindPrediction:
			preds[ev.ID] = ev
		case KindFailure:
			failures++
			if ev.Lead > 0 {
				p, ok := preds[ev.ID]
				if !ok {
					t.Fatalf("failure %d announced (lead %v) but no prediction preceded it", ev.ID, ev.Lead)
				}
				if p.FailTime != ev.Time || p.Time != ev.Time-ev.Lead {
					t.Fatalf("pair mismatch: pred %+v vs fail %+v", p, ev)
				}
			}
		}
	}
	if failures != 9 {
		t.Fatalf("got %d failures over 3 cycles, want 9", failures)
	}
	// Cycle 2 must be cycle 1 shifted by exactly one horizon.
	for i := 0; i < perCycle; i++ {
		a, b := evs[i], evs[i+perCycle]
		if a.Kind != b.Kind || a.Node != b.Node || a.Lead != b.Lead ||
			b.Time != a.Time+re.HorizonSeconds {
			t.Fatalf("cycle drift at %d: %+v vs %+v", i, a, b)
		}
	}
}

// A trace recorded over a wider node span than the job folds onto the
// job's nodes.
func TestReplayStreamNodeFold(t *testing.T) {
	re := testReplay()
	s := NewReplayStream(re, 2, nil)
	for i := 0; i < 10; i++ {
		if ev := s.Next(); ev.Node < 0 || ev.Node >= 2 {
			t.Fatalf("node %d outside the 2-node job", ev.Node)
		}
	}
}

// Replayed leads are capped like parametric ones.
func TestReplayStreamLeadCap(t *testing.T) {
	re := &Replay{
		Name: "cap", Nodes: 1, HorizonSeconds: 100000,
		Events: []ReplayEvent{{T: 90000, Node: 0, Lead: 80000, Seq: 1}},
	}
	s := NewReplayStream(re, 1, nil)
	if ev := s.Next(); ev.Kind != KindPrediction || ev.Lead != LeadCap {
		t.Fatalf("lead not capped: %+v", ev)
	}
}

func TestSyntheticSystem(t *testing.T) {
	re := testReplay()
	sys := re.SyntheticSystem(64)
	if err := sys.Validate(); err != nil {
		t.Fatalf("synthetic system invalid: %v", err)
	}
	// Empirical rate: 3 failures per 1000 s.
	if got, want := sys.JobFailureRate(64), 3.0/1000; math.Abs(got-want) > 1e-12 {
		t.Fatalf("job rate %v, want %v", got, want)
	}
}

func TestReplayLeadModel(t *testing.T) {
	lm := testReplay().LeadModel()
	if lm == nil {
		t.Fatal("no lead model from a trace with predicted failures")
	}
	seqs := lm.Sequences()
	if len(seqs) != 1 || seqs[0].ID != 1 || seqs[0].Weight != 2 {
		t.Fatalf("unexpected sequences: %+v", seqs)
	}
	if got, want := seqs[0].MeanLeadSec, (40.0+25.0)/2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean lead %v, want %v", got, want)
	}
	unpredicted := &Replay{Name: "u", Nodes: 1, HorizonSeconds: 10, Events: []ReplayEvent{{T: 5, Node: 0}}}
	if unpredicted.LeadModel() != nil {
		t.Fatal("lead model from a trace with no predicted failures")
	}
}

func TestReplayDigest(t *testing.T) {
	a, b := testReplay(), testReplay()
	if a.Digest() != b.Digest() {
		t.Fatal("identical traces digest differently")
	}
	b.Events[0].Lead++
	if a.Digest() == b.Digest() {
		t.Fatal("perturbed trace digests identically")
	}
}

// NewSource must dispatch on the replay field, and the replay path must
// consume no RNG draws at all: two sources over different seeds are
// bit-identical.
func TestNewSourceDispatch(t *testing.T) {
	re := testReplay()
	cfg := Config{System: re.SyntheticSystem(8), JobNodes: 8, Replay: re}
	s1 := NewSource(cfg, nil)
	s2 := NewSource(cfg, nil)
	for i := 0; i < 20; i++ {
		if e1, e2 := s1.Next(), s2.Next(); e1 != e2 {
			t.Fatalf("replay sources diverge at %d: %+v vs %+v", i, e1, e2)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewStream accepted a replay configuration")
		}
	}()
	NewStream(cfg, nil)
}
