package stats

import "encoding/json"

// Agg is persisted by internal/runcache, which makes its JSON encoding a
// storage format: the full run list is serialized (not just the derived
// means), so a decoded aggregate answers every query — MeanOverheads,
// MeanFTRatio, TotalSummary, per-run inspection — exactly as the
// original did. encoding/json renders float64s shortest-round-trip, so
// the encode/decode cycle is lossless bit-for-bit.

// aggJSON is the wire form of an Agg. The failed-run ledger is omitted
// when empty, so aggregates from healthy sweeps encode exactly as they
// did before the ledger existed.
type aggJSON struct {
	Runs   []RunResult `json:"runs"`
	Failed []FailedRun `json:"failed,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (a *Agg) MarshalJSON() ([]byte, error) {
	return json.Marshal(aggJSON{Runs: a.runs, Failed: a.failed})
}

// UnmarshalJSON implements json.Unmarshaler, replacing any previously
// recorded runs.
func (a *Agg) UnmarshalJSON(data []byte) error {
	var w aggJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	a.runs = w.Runs
	a.failed = w.Failed
	return nil
}

// Merge appends o's runs to a (shard aggregation). Derived statistics of
// the merged aggregate are independent of how runs were sharded:
// associativity is exact, and commutativity holds up to float64
// summation order (the property test in codec_test.go pins both).
func (a *Agg) Merge(o *Agg) {
	if o == nil {
		return
	}
	a.runs = append(a.runs, o.runs...)
	a.failed = append(a.failed, o.failed...)
}
