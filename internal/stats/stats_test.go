package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOverheadsTotalAddScale(t *testing.T) {
	a := Overheads{Checkpoint: 1, Recompute: 2, Recovery: 3}
	if a.Total() != 6 {
		t.Fatalf("Total = %g", a.Total())
	}
	b := a.Add(Overheads{Checkpoint: 10, Recompute: 20, Recovery: 30})
	if b.Checkpoint != 11 || b.Recompute != 22 || b.Recovery != 33 {
		t.Fatalf("Add = %+v", b)
	}
	c := a.Scale(2)
	if c.Total() != 12 {
		t.Fatalf("Scale = %+v", c)
	}
}

func TestOverheadsHoursAndString(t *testing.T) {
	o := Overheads{Checkpoint: 3600, Recompute: 7200, Recovery: 0}
	h := o.Hours()
	if h.Checkpoint != 1 || h.Recompute != 2 {
		t.Fatalf("Hours = %+v", h)
	}
	if !strings.Contains(o.String(), "ckpt=1.00h") {
		t.Fatalf("String = %q", o.String())
	}
}

func TestFTRatio(t *testing.T) {
	r := RunResult{Failures: 6, Mitigated: 3, Avoided: 4}
	// total = 6 struck + 4 avoided = 10; handled = 7.
	if got := r.FTRatio(); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("FTRatio = %g, want 0.7", got)
	}
	if (RunResult{}).FTRatio() != 0 {
		t.Fatal("no-failure run must have FT ratio 0")
	}
	if r.TotalFailures() != 10 {
		t.Fatalf("TotalFailures = %d", r.TotalFailures())
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7); math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("Std = %g, want %g", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
	if s.CI95Lo >= s.Mean || s.CI95Hi <= s.Mean {
		t.Fatalf("CI does not bracket mean: %+v", s)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty sample not zero")
	}
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Std != 0 || s.CI95Lo != 42 || s.CI95Hi != 42 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestSummarizeQuickBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// Restrict to magnitudes where the sums cannot overflow.
			if !math.IsNaN(x) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAggMeans(t *testing.T) {
	var a Agg
	a.Add(RunResult{Overheads: Overheads{Checkpoint: 10, Recompute: 20, Recovery: 2}, WallSeconds: 100, Failures: 2, Mitigated: 1})
	a.Add(RunResult{Overheads: Overheads{Checkpoint: 30, Recompute: 0, Recovery: 0}, WallSeconds: 200, Failures: 2, Mitigated: 2})
	if a.N() != 2 {
		t.Fatalf("N = %d", a.N())
	}
	mo := a.MeanOverheads()
	if mo.Checkpoint != 20 || mo.Recompute != 10 || mo.Recovery != 1 {
		t.Fatalf("MeanOverheads = %+v", mo)
	}
	if a.MeanWallSeconds() != 150 {
		t.Fatalf("MeanWallSeconds = %g", a.MeanWallSeconds())
	}
	// Pooled FT ratio: 3 handled / 4 failures.
	if got := a.MeanFTRatio(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("MeanFTRatio = %g", got)
	}
}

func TestAggEmpty(t *testing.T) {
	var a Agg
	if a.MeanOverheads().Total() != 0 || a.MeanFTRatio() != 0 || a.MeanWallSeconds() != 0 {
		t.Fatal("empty Agg must return zeros")
	}
}

func TestAggTotalSummary(t *testing.T) {
	var a Agg
	a.Add(RunResult{Overheads: Overheads{Checkpoint: 10}})
	a.Add(RunResult{Overheads: Overheads{Checkpoint: 20}})
	s := a.TotalSummary()
	if s.N != 2 || s.Mean != 15 {
		t.Fatalf("TotalSummary = %+v", s)
	}
}

func TestPercentReduction(t *testing.T) {
	if got := PercentReduction(100, 47); got != 53 {
		t.Fatalf("PercentReduction = %g", got)
	}
	if got := PercentReduction(100, 130); got != -30 {
		t.Fatalf("negative reduction = %g", got)
	}
	if PercentReduction(0, 5) != 0 {
		t.Fatal("zero base must yield 0")
	}
}

func TestReductionBreakdown(t *testing.T) {
	base := Overheads{Checkpoint: 100, Recompute: 200, Recovery: 50}
	m := Overheads{Checkpoint: 50, Recompute: 100, Recovery: 50}
	ck, rc, rv, tot := ReductionBreakdown(base, m)
	if ck != 50 || rc != 50 || rv != 0 {
		t.Fatalf("breakdown = %g %g %g", ck, rc, rv)
	}
	wantTot := 100 * (350.0 - 200) / 350
	if math.Abs(tot-wantTot) > 1e-12 {
		t.Fatalf("total reduction = %g, want %g", tot, wantTot)
	}
}
