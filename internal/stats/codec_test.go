package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randAgg builds an aggregate of n random runs.
func randAgg(r *rand.Rand, n int) *Agg {
	a := &Agg{}
	for i := 0; i < n; i++ {
		a.Add(RunResult{
			Overheads: Overheads{
				Checkpoint: r.Float64() * 1e4,
				Recompute:  r.Float64() * 1e4,
				Recovery:   r.Float64() * 1e3,
			},
			WallSeconds:       1e5 + r.Float64()*1e5,
			Failures:          r.Intn(20),
			Predicted:         r.Intn(20),
			Mitigated:         r.Intn(10),
			Avoided:           r.Intn(10),
			Checkpoints:       r.Intn(400),
			ProactiveCkpts:    r.Intn(40),
			Migrations:        r.Intn(10),
			AbortedMigrations: r.Intn(5),
		})
	}
	return a
}

// Serialization makes Agg a persistence format: the encode/decode cycle
// must be lossless, including every float64 bit pattern.
func TestAggJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a := randAgg(r, r.Intn(40))
		data, err := json.Marshal(a)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		b := &Agg{}
		if err := json.Unmarshal(data, b); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if a.N() != b.N() {
			t.Fatalf("trial %d: N %d != %d", trial, a.N(), b.N())
		}
		for i, ar := range a.Runs() {
			if !reflect.DeepEqual(ar, b.Runs()[i]) {
				t.Fatalf("trial %d run %d: %+v != %+v", trial, i, ar, b.Runs()[i])
			}
		}
	}
}

// A decoded aggregate must answer derived queries exactly as the
// original (bitwise — same runs in the same order).
func TestAggJSONRoundTripDerived(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randAgg(r, 64)
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	b := &Agg{}
	if err := json.Unmarshal(data, b); err != nil {
		t.Fatal(err)
	}
	if a.MeanOverheads() != b.MeanOverheads() {
		t.Errorf("MeanOverheads: %v != %v", a.MeanOverheads(), b.MeanOverheads())
	}
	if a.MeanFTRatio() != b.MeanFTRatio() {
		t.Errorf("MeanFTRatio: %v != %v", a.MeanFTRatio(), b.MeanFTRatio())
	}
	if a.MeanWallSeconds() != b.MeanWallSeconds() {
		t.Errorf("MeanWallSeconds: %v != %v", a.MeanWallSeconds(), b.MeanWallSeconds())
	}
	if a.TotalSummary() != b.TotalSummary() {
		t.Errorf("TotalSummary: %v != %v", a.TotalSummary(), b.TotalSummary())
	}
}

// mergeAll folds shards left to right into a fresh aggregate.
func mergeAll(shards ...*Agg) *Agg {
	out := &Agg{}
	for _, s := range shards {
		out.Merge(s)
	}
	return out
}

// relClose compares within relative tolerance (summation order may
// differ between merge orders, so bitwise equality is not guaranteed).
func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}

// Merge associativity is exact: (s1+s2)+s3 and s1+(s2+s3) concatenate
// runs identically.
func TestAggMergeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		s1, s2, s3 := randAgg(r, r.Intn(20)), randAgg(r, r.Intn(20)), randAgg(r, r.Intn(20))
		left := mergeAll(mergeAll(s1, s2), s3)
		right := mergeAll(s1, mergeAll(s2, s3))
		if !reflect.DeepEqual(left.Runs(), right.Runs()) {
			t.Fatalf("trial %d: associativity violated", trial)
		}
	}
}

// Merge commutativity holds for every derived statistic (up to float64
// summation order): shard order must not change what the sweep reports.
func TestAggMergeCommutativeDerived(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		shards := []*Agg{randAgg(r, 1+r.Intn(20)), randAgg(r, 1+r.Intn(20)), randAgg(r, 1+r.Intn(20)), randAgg(r, 1+r.Intn(20))}
		fwd := mergeAll(shards...)
		rev := mergeAll(shards[3], shards[1], shards[2], shards[0])
		if fwd.N() != rev.N() {
			t.Fatalf("trial %d: N %d != %d", trial, fwd.N(), rev.N())
		}
		// Pooled integer accounting is order-independent and exact.
		if fwd.MeanFTRatio() != rev.MeanFTRatio() {
			t.Errorf("trial %d: MeanFTRatio %v != %v", trial, fwd.MeanFTRatio(), rev.MeanFTRatio())
		}
		fo, ro := fwd.MeanOverheads(), rev.MeanOverheads()
		if !relClose(fo.Checkpoint, ro.Checkpoint) || !relClose(fo.Recompute, ro.Recompute) || !relClose(fo.Recovery, ro.Recovery) {
			t.Errorf("trial %d: MeanOverheads %v != %v", trial, fo, ro)
		}
		if !relClose(fwd.MeanWallSeconds(), rev.MeanWallSeconds()) {
			t.Errorf("trial %d: MeanWallSeconds %v != %v", trial, fwd.MeanWallSeconds(), rev.MeanWallSeconds())
		}
		fs, rs := fwd.TotalSummary(), rev.TotalSummary()
		if fs.N != rs.N || fs.Min != rs.Min || fs.Max != rs.Max || !relClose(fs.Mean, rs.Mean) || !relClose(fs.Std, rs.Std) {
			t.Errorf("trial %d: TotalSummary %+v != %+v", trial, fs, rs)
		}
	}
}

// Merging a nil or empty shard is a no-op.
func TestAggMergeEdgeCases(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	a := randAgg(r, 8)
	want := a.N()
	a.Merge(nil)
	a.Merge(&Agg{})
	if a.N() != want {
		t.Fatalf("nil/empty merge changed N: %d != %d", a.N(), want)
	}
}
