// Package stats defines the overhead accounting shared by every C/R
// model simulation and the aggregation used to average the paper's 1000
// simulation runs: per-run overhead breakdowns (checkpoint, recomputation,
// recovery — the stacked bars of Fig. 6), fault-tolerance ratios (Tables
// II and IV), and percent-reduction series versus the base model (the
// y-axes of Figs. 4 and 7).
package stats

import (
	"fmt"
	"math"
)

// Overheads is the per-run overhead breakdown in seconds, following the
// paper's definitions: checkpoint overhead is time the application is
// blocked for checkpointing (periodic BB writes, proactive PFS commits,
// p-ckpt waiting, LM dilation); recomputation overhead is execution redone
// after failures; recovery overhead is time restoring checkpoints.
type Overheads struct {
	Checkpoint float64
	Recompute  float64
	Recovery   float64
}

// Total returns the summed overhead in seconds.
func (o Overheads) Total() float64 { return o.Checkpoint + o.Recompute + o.Recovery }

// Add returns the element-wise sum.
func (o Overheads) Add(p Overheads) Overheads {
	return Overheads{o.Checkpoint + p.Checkpoint, o.Recompute + p.Recompute, o.Recovery + p.Recovery}
}

// Scale returns the element-wise product with f.
func (o Overheads) Scale(f float64) Overheads {
	return Overheads{o.Checkpoint * f, o.Recompute * f, o.Recovery * f}
}

// Hours returns the breakdown converted to hours.
func (o Overheads) Hours() Overheads { return o.Scale(1.0 / 3600) }

// String implements fmt.Stringer, printing hours.
func (o Overheads) String() string {
	h := o.Hours()
	return fmt.Sprintf("ckpt=%.2fh recompute=%.2fh recovery=%.2fh total=%.2fh", h.Checkpoint, h.Recompute, h.Recovery, h.Total())
}

// RunResult is one simulation run's outcome.
type RunResult struct {
	Overheads
	// WallSeconds is the job's total wall time including overheads.
	WallSeconds float64
	// Failures counts failures that struck the job (excluding failures
	// avoided by live migration, which never strike).
	Failures int
	// Predicted counts failures the predictor announced in time.
	Predicted int
	// Mitigated counts failures neutralised by a proactive checkpoint
	// (safeguard or p-ckpt) committed before the failure.
	Mitigated int
	// Avoided counts failures avoided entirely by live migration.
	Avoided int
	// Checkpoints counts completed periodic checkpoints.
	Checkpoints int
	// ProactiveCkpts counts proactive (safeguard or p-ckpt) episodes.
	ProactiveCkpts int
	// Migrations counts completed live migrations.
	Migrations int
	// AbortedMigrations counts migrations superseded by p-ckpt.
	AbortedMigrations int

	// Degraded-platform accounting (all zero on a perfect platform; see
	// internal/faultinject).

	// BBWriteFailures counts injected burst-buffer checkpoint-write
	// failures.
	BBWriteFailures int `json:",omitempty"`
	// PFSWriteFailures counts injected PFS write failures (drains,
	// safeguards, prioritized writes, phase-2 collectives).
	PFSWriteFailures int `json:",omitempty"`
	// CorruptRestarts counts checkpoint generations discovered corrupt
	// while resolving restarts.
	CorruptRestarts int `json:",omitempty"`
	// RestartRetries counts failed restart attempts that were retried
	// after backoff.
	RestartRetries int `json:",omitempty"`
	// Cascades counts secondary failures that landed inside recovery
	// windows.
	Cascades int `json:",omitempty"`

	// Truncated marks a run the platform ended early: a node failure
	// struck after the spare pool was exhausted, so the resource manager
	// could not re-host the failed rank and the job died. WallSeconds and
	// the overhead buckets cover the truncated span only; ComputeSeconds
	// of progress was NOT reached.
	Truncated bool `json:",omitempty"`
}

// TotalFailures returns all failure events, including avoided ones.
func (r RunResult) TotalFailures() int { return r.Failures + r.Avoided }

// FTRatio returns the fault-tolerance ratio of the paper's Tables II/IV:
// successfully handled (mitigated or avoided) failures over all failures.
// It returns 0 for a run with no failures.
func (r RunResult) FTRatio() float64 {
	total := r.TotalFailures()
	if total == 0 {
		return 0
	}
	return float64(r.Mitigated+r.Avoided) / float64(total)
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	CI95Lo, CI95Hi float64
}

// Summarize computes descriptive statistics. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	half := 1.96 * s.Std / math.Sqrt(float64(len(xs)))
	s.CI95Lo, s.CI95Hi = s.Mean-half, s.Mean+half
	return s
}

// FailedRun records a simulation run that panicked instead of
// completing: the per-worker recover in the run pools converts the panic
// into this record so one bad run reports its seed and configuration
// without killing the rest of the sweep.
type FailedRun struct {
	// Seed is the derived per-run seed that reproduces the panic.
	Seed uint64 `json:"seed"`
	// Config describes the failing configuration (model, app, tier).
	Config string `json:"config"`
	// Err is the recovered panic value's rendering.
	Err string `json:"err"`
}

// Agg accumulates RunResults across repeated seeds, plus the ledger of
// runs that failed to complete.
type Agg struct {
	runs   []RunResult
	failed []FailedRun
}

// Add records one run.
func (a *Agg) Add(r RunResult) { a.runs = append(a.runs, r) }

// AddFailed records a run that panicked. Failed runs are excluded from
// every derived statistic; they exist so the sweep can finish and still
// report exactly what broke.
func (a *Agg) AddFailed(f FailedRun) { a.failed = append(a.failed, f) }

// N returns the number of recorded (completed) runs.
func (a *Agg) N() int { return len(a.runs) }

// Runs returns the recorded results.
func (a *Agg) Runs() []RunResult { return a.runs }

// Failed returns the ledger of runs that panicked instead of completing.
func (a *Agg) Failed() []FailedRun { return a.failed }

// MeanOverheads returns the run-averaged overhead breakdown.
func (a *Agg) MeanOverheads() Overheads {
	if len(a.runs) == 0 {
		return Overheads{}
	}
	var sum Overheads
	for _, r := range a.runs {
		sum = sum.Add(r.Overheads)
	}
	return sum.Scale(1 / float64(len(a.runs)))
}

// MeanFTRatio returns the pooled fault-tolerance ratio: total handled
// over total failures across runs (more stable than averaging per-run
// ratios when failure counts are small).
func (a *Agg) MeanFTRatio() float64 {
	var handled, total int
	for _, r := range a.runs {
		handled += r.Mitigated + r.Avoided
		total += r.TotalFailures()
	}
	if total == 0 {
		return 0
	}
	return float64(handled) / float64(total)
}

// TruncatedRuns counts recorded runs the platform ended early (spare
// pool exhausted before the application completed).
func (a *Agg) TruncatedRuns() int {
	n := 0
	for _, r := range a.runs {
		if r.Truncated {
			n++
		}
	}
	return n
}

// MeanWallSeconds returns the run-averaged wall time.
func (a *Agg) MeanWallSeconds() float64 {
	if len(a.runs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range a.runs {
		sum += r.WallSeconds
	}
	return sum / float64(len(a.runs))
}

// FaultCounts aggregates the degraded-platform fault counters over a
// sweep.
type FaultCounts struct {
	BBWriteFailures  int
	PFSWriteFailures int
	CorruptRestarts  int
	RestartRetries   int
	Cascades         int
}

// FaultTotals sums the injected-fault counters across completed runs.
func (a *Agg) FaultTotals() FaultCounts {
	var f FaultCounts
	for _, r := range a.runs {
		f.BBWriteFailures += r.BBWriteFailures
		f.PFSWriteFailures += r.PFSWriteFailures
		f.CorruptRestarts += r.CorruptRestarts
		f.RestartRetries += r.RestartRetries
		f.Cascades += r.Cascades
	}
	return f
}

// TotalSummary returns descriptive statistics of the total overhead.
func (a *Agg) TotalSummary() Summary {
	xs := make([]float64, len(a.runs))
	for i, r := range a.runs {
		xs[i] = r.Total()
	}
	return Summarize(xs)
}

// PercentReduction returns 100·(base−value)/base: the paper's
// "% change of overhead relative to the base model" axis, where 0 means
// unchanged and 100 means the overhead was eliminated. A non-positive
// base yields 0.
func PercentReduction(base, value float64) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (base - value) / base
}

// ReductionBreakdown returns per-component percent reductions of m
// relative to base, plus the total reduction.
func ReductionBreakdown(base, m Overheads) (ckpt, recompute, recovery, total float64) {
	return PercentReduction(base.Checkpoint, m.Checkpoint),
		PercentReduction(base.Recompute, m.Recompute),
		PercentReduction(base.Recovery, m.Recovery),
		PercentReduction(base.Total(), m.Total())
}
