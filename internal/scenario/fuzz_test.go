package scenario

import (
	"strings"
	"testing"
)

// FuzzSpecParse hammers the strict parser + validator with arbitrary
// bytes: whatever comes in, Parse and Validate must never panic, and a
// spec that validates must compile (Configs errors exactly when Validate
// does) and canonical-render as a fixed point. The committed corpus under
// testdata/fuzz/FuzzSpecParse seeds the interesting shapes: malformed
// JSON, negative and out-of-range fields, unknown app names, empty
// cohorts, truncated documents.
func FuzzSpecParse(f *testing.F) {
	f.Add([]byte(minimalSpec))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version": 1, "name": "x", "apps": []}`))
	f.Add([]byte(`{"version": 1, "name": "x", "apps": [{"name": "NOPE"}]}`))
	f.Add([]byte(`{"version": 1, "name": "x", "apps": [{"name": "VULCAN"}], "runs": -4}`))
	f.Add([]byte(`{"version": 1, "name": "x", "apps": [{"name": "VULCAN"}], "platform": {"fn_rate": -0.5}}`))
	f.Add([]byte(`{"version": 1, "name": "x", "apps": [{"name": "VULCAN"}], "failures": {"trace": {"version": 1, "name": "t", "nodes": 2, "horizon_seconds": 100, "events": [{"t": 50, "node": 1}]}}}`))
	f.Add([]byte(`{"version": 1, "name"`))
	f.Add([]byte(`[1, 2, 3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		verr := s.Validate()
		cfgs, cerr := s.Configs()
		if (verr == nil) != (cerr == nil) {
			t.Fatalf("Validate (%v) and Configs (%v) disagree", verr, cerr)
		}
		if verr != nil {
			return
		}
		if len(cfgs) == 0 {
			t.Fatal("valid spec compiled to an empty grid")
		}
		r1, err := s.Render()
		if err != nil {
			t.Fatalf("valid spec fails to render: %v", err)
		}
		s2, err := Parse(r1)
		if err != nil {
			t.Fatalf("rendering does not reparse: %v\n%s", err, r1)
		}
		r2, err := s2.Render()
		if err != nil {
			t.Fatalf("re-render: %v", err)
		}
		if string(r1) != string(r2) {
			t.Fatalf("rendering not a fixed point:\n%s\nvs\n%s", r1, r2)
		}
		c1, err := s.CanonicalString()
		if err != nil {
			t.Fatalf("canonical string: %v", err)
		}
		if !strings.HasPrefix(c1, "scenario/v1\n") {
			t.Fatalf("canonical string unversioned: %q", c1)
		}
	})
}
