package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pckpt/internal/faultinject"
	"pckpt/internal/policy"
)

const machineSpec = `{
  "version": 1,
  "name": "machine-min",
  "apps": [{"name": "VULCAN"}],
  "policies": ["M1", "P2"],
  "machine": {
    "pfs_ceiling_gbs": 5,
    "arrival_seconds": [0, 600]
  },
  "runs": 2
}`

func TestMachineSpecCompiles(t *testing.T) {
	s := mustParse(t, machineSpec)
	if err := s.Validate(); err != nil {
		t.Fatalf("machine spec rejected: %v", err)
	}
	cfg, err := s.MachineConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Jobs) != 2 {
		t.Fatalf("%d tenants, want 2 (1 app × 2 policies)", len(cfg.Jobs))
	}
	if cfg.Jobs[0].Model != policy.M1 || cfg.Jobs[1].Model != policy.P2 {
		t.Fatalf("tenant models %v/%v, want M1/P2", cfg.Jobs[0].Model, cfg.Jobs[1].Model)
	}
	if cfg.Jobs[1].ArrivalSeconds != 600 {
		t.Fatalf("tenant 1 arrives at %g, want 600", cfg.Jobs[1].ArrivalSeconds)
	}
	if cfg.PFSCeilingGBs != 5 {
		t.Fatalf("ceiling %g, want 5", cfg.PFSCeilingGBs)
	}
	// The normalized block names FIFO explicitly.
	if adm := s.Normalize().Machine.Admission; adm != "fifo" {
		t.Fatalf("normalized admission %q, want fifo", adm)
	}
}

func TestMachineSpecRejects(t *testing.T) {
	cases := map[string]func(*Spec){
		"arrivals-mismatch": func(s *Spec) { s.Machine.ArrivalSeconds = []float64{0} },
		"negative-arrival":  func(s *Spec) { s.Machine.ArrivalSeconds = []float64{0, -5} },
		"nan-arrival":       func(s *Spec) { s.Machine.ArrivalSeconds = []float64{0, math.NaN()} },
		"bad-admission":     func(s *Spec) { s.Machine.Admission = "lottery" },
		"negative-nodes":    func(s *Spec) { s.Machine.Nodes = -1 },
		"tiny-machine":      func(s *Spec) { s.Machine.Nodes = 2 }, // smaller than any tenant
		"nan-ceiling":       func(s *Spec) { s.Machine.PFSCeilingGBs = math.NaN() },
		"negative-drains":   func(s *Spec) { s.Machine.MaxConcurrentDrains = -2 },
	}
	for name, mutate := range cases {
		s := mustParse(t, machineSpec)
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid machine spec accepted", name)
		}
	}
	// A spec without the block cannot compile a machine.
	if _, err := mustParse(t, minimalSpec).MachineConfig(); err == nil {
		t.Error("MachineConfig succeeded without a machine block")
	}
}

// The machine block round-trips through the canonical rendering and
// shows up in the canonical string; its absence leaves pre-machine specs
// byte-identical.
func TestMachineSpecCanonical(t *testing.T) {
	s := mustParse(t, machineSpec)
	r1, err := s.Render()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(r1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, r2) {
		t.Errorf("machine rendering is not a fixed point:\n%s\nvs\n%s", r1, r2)
	}
	cs, err := s.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	want := "machine=nodes:0|ceiling:5|drains:0|admission:fifo|arrive:0|arrive:600\n"
	if !strings.Contains(cs, want) {
		t.Errorf("canonical string lacks machine line %q:\n%s", want, cs)
	}
	plain, err := mustParse(t, minimalSpec).CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain, "machine=") {
		t.Errorf("machine-less spec renders a machine line:\n%s", plain)
	}
}

const machineFaultSpec = `{
  "version": 1,
  "name": "machine-faulted",
  "apps": [{"name": "VULCAN"}],
  "policies": ["M1", "P2"],
  "machine": {
    "pfs_ceiling_gbs": 5,
    "arrival_seconds": [0, 600],
    "racks": [0, 0],
    "faults": {
      "brownout_rate_per_hour": 0.5,
      "blackout_prob": 0.25,
      "crash_rate_per_hour": 0.1
    }
  },
  "runs": 2
}`

// The faults block lowers to the faultinject plan with defaults applied
// exactly as the simulator will, and racks ride into the machine config.
func TestMachineFaultSpecCompiles(t *testing.T) {
	s := mustParse(t, machineFaultSpec)
	if err := s.Validate(); err != nil {
		t.Fatalf("faulted machine spec rejected: %v", err)
	}
	cfg, err := s.MachineConfig()
	if err != nil {
		t.Fatal(err)
	}
	f := cfg.Faults
	if f.BrownoutRatePerHour != 0.5 || f.BlackoutProb != 0.25 || f.CrashRatePerHour != 0.1 {
		t.Fatalf("explicit fault fields lost: %+v", f)
	}
	if len(cfg.Racks) != 2 || cfg.Racks[0] != 0 || cfg.Racks[1] != 0 {
		t.Fatalf("racks %v, want [0 0]", cfg.Racks)
	}
	// Normalize makes the per-process defaults explicit, idempotently.
	n := s.Normalize()
	nf := n.Machine.Faults
	if nf == nil {
		t.Fatal("normalized spec dropped the faults block")
	}
	if nf.BrownoutMeanSeconds != faultinject.DefaultBrownoutMeanSeconds ||
		nf.CrashMaxRetries != faultinject.DefaultCrashMaxRetries ||
		nf.CrashBackoffSeconds != faultinject.DefaultCrashBackoffSeconds {
		t.Fatalf("normalized faults lack explicit defaults: %+v", nf)
	}
	if nn := n.Normalize(); *nn.Machine.Faults != *nf {
		t.Fatalf("Normalize not idempotent on the faults block:\n%+v\nvs\n%+v", nf, nn.Machine.Faults)
	}
}

func TestMachineFaultSpecRejects(t *testing.T) {
	cases := map[string]func(*Spec){
		"negative-rate":   func(s *Spec) { s.Machine.Faults.BrownoutRatePerHour = -1 },
		"blackout-prob":   func(s *Spec) { s.Machine.Faults.BlackoutProb = 1.5 },
		"factors-flipped": func(s *Spec) { s.Machine.Faults.BrownoutMinFactor = 0.9; s.Machine.Faults.BrownoutMaxFactor = 0.1 },
		"nan-escalation":  func(s *Spec) { s.Machine.Faults.StarvationEscalationSeconds = math.NaN() },
		"negative-rack":   func(s *Spec) { s.Machine.Racks = []int{0, -1} },
	}
	for name, mutate := range cases {
		s := mustParse(t, machineFaultSpec)
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid faulted machine spec accepted", name)
		}
	}
	// Rack count must match the compiled tenant grid (checked at
	// compilation, where the grid size is known).
	s := mustParse(t, machineFaultSpec)
	s.Machine.Racks = []int{0}
	if _, err := s.MachineConfig(); err == nil {
		t.Error("MachineConfig accepted 1 rack assignment for 2 tenants")
	}
}

// The faults line appears in the canonical string only when the block is
// present — pre-fault machine specs keep their exact cache identity —
// and equal effective plans render equal canonical forms.
func TestMachineFaultSpecCanonical(t *testing.T) {
	s := mustParse(t, machineFaultSpec)
	cs, err := s.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	wantMachine := "machine=nodes:0|ceiling:5|drains:0|admission:fifo|arrive:0|arrive:600|rack:0|rack:0\n"
	if !strings.Contains(cs, wantMachine) {
		t.Errorf("canonical string lacks the racked machine line %q:\n%s", wantMachine, cs)
	}
	wantFaults := "machine.faults=brownout:0.5|brownout-mean:600|factors:0.25-0.75|blackout:0.25|drain-outage:0|drain-mean:0|slots:0|crash:0.1|retries:2|backoff:300|escalate:0\n"
	if !strings.Contains(cs, wantFaults) {
		t.Errorf("canonical string lacks the faults line %q:\n%s", wantFaults, cs)
	}

	// A fault-less machine spec renders no faults line, byte-identical to
	// its pre-fault canonical form.
	plain, err := mustParse(t, machineSpec).CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain, "machine.faults=") || strings.Contains(plain, "rack:") {
		t.Errorf("fault-less machine spec renders fault/rack segments:\n%s", plain)
	}

	// Spelling out the defaults changes nothing: same effective plan,
	// same canonical identity.
	explicit := mustParse(t, machineFaultSpec)
	explicit.Machine.Faults.BrownoutMeanSeconds = faultinject.DefaultBrownoutMeanSeconds
	explicit.Machine.Faults.BrownoutMinFactor = faultinject.DefaultBrownoutMinFactor
	explicit.Machine.Faults.BrownoutMaxFactor = faultinject.DefaultBrownoutMaxFactor
	explicit.Machine.Faults.CrashMaxRetries = faultinject.DefaultCrashMaxRetries
	explicit.Machine.Faults.CrashBackoffSeconds = faultinject.DefaultCrashBackoffSeconds
	cs2, err := explicit.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	if cs != cs2 {
		t.Errorf("equal effective plans render different canonical forms:\n%s\nvs\n%s", cs, cs2)
	}

	// Round-trip fixed point with the faults block present.
	r1, err := s.Render()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(r1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, r2) {
		t.Errorf("faulted machine rendering is not a fixed point:\n%s\nvs\n%s", r1, r2)
	}
}
