package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pckpt/internal/policy"
)

const machineSpec = `{
  "version": 1,
  "name": "machine-min",
  "apps": [{"name": "VULCAN"}],
  "policies": ["M1", "P2"],
  "machine": {
    "pfs_ceiling_gbs": 5,
    "arrival_seconds": [0, 600]
  },
  "runs": 2
}`

func TestMachineSpecCompiles(t *testing.T) {
	s := mustParse(t, machineSpec)
	if err := s.Validate(); err != nil {
		t.Fatalf("machine spec rejected: %v", err)
	}
	cfg, err := s.MachineConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Jobs) != 2 {
		t.Fatalf("%d tenants, want 2 (1 app × 2 policies)", len(cfg.Jobs))
	}
	if cfg.Jobs[0].Model != policy.M1 || cfg.Jobs[1].Model != policy.P2 {
		t.Fatalf("tenant models %v/%v, want M1/P2", cfg.Jobs[0].Model, cfg.Jobs[1].Model)
	}
	if cfg.Jobs[1].ArrivalSeconds != 600 {
		t.Fatalf("tenant 1 arrives at %g, want 600", cfg.Jobs[1].ArrivalSeconds)
	}
	if cfg.PFSCeilingGBs != 5 {
		t.Fatalf("ceiling %g, want 5", cfg.PFSCeilingGBs)
	}
	// The normalized block names FIFO explicitly.
	if adm := s.Normalize().Machine.Admission; adm != "fifo" {
		t.Fatalf("normalized admission %q, want fifo", adm)
	}
}

func TestMachineSpecRejects(t *testing.T) {
	cases := map[string]func(*Spec){
		"arrivals-mismatch": func(s *Spec) { s.Machine.ArrivalSeconds = []float64{0} },
		"negative-arrival":  func(s *Spec) { s.Machine.ArrivalSeconds = []float64{0, -5} },
		"nan-arrival":       func(s *Spec) { s.Machine.ArrivalSeconds = []float64{0, math.NaN()} },
		"bad-admission":     func(s *Spec) { s.Machine.Admission = "lottery" },
		"negative-nodes":    func(s *Spec) { s.Machine.Nodes = -1 },
		"tiny-machine":      func(s *Spec) { s.Machine.Nodes = 2 }, // smaller than any tenant
		"nan-ceiling":       func(s *Spec) { s.Machine.PFSCeilingGBs = math.NaN() },
		"negative-drains":   func(s *Spec) { s.Machine.MaxConcurrentDrains = -2 },
	}
	for name, mutate := range cases {
		s := mustParse(t, machineSpec)
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid machine spec accepted", name)
		}
	}
	// A spec without the block cannot compile a machine.
	if _, err := mustParse(t, minimalSpec).MachineConfig(); err == nil {
		t.Error("MachineConfig succeeded without a machine block")
	}
}

// The machine block round-trips through the canonical rendering and
// shows up in the canonical string; its absence leaves pre-machine specs
// byte-identical.
func TestMachineSpecCanonical(t *testing.T) {
	s := mustParse(t, machineSpec)
	r1, err := s.Render()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(r1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, r2) {
		t.Errorf("machine rendering is not a fixed point:\n%s\nvs\n%s", r1, r2)
	}
	cs, err := s.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	want := "machine=nodes:0|ceiling:5|drains:0|admission:fifo|arrive:0|arrive:600\n"
	if !strings.Contains(cs, want) {
		t.Errorf("canonical string lacks machine line %q:\n%s", want, cs)
	}
	plain, err := mustParse(t, minimalSpec).CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain, "machine=") {
		t.Errorf("machine-less spec renders a machine line:\n%s", plain)
	}
}
