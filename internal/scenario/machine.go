package scenario

import (
	"fmt"
	"strings"

	"pckpt/internal/machine"
)

// MachineSpec is the optional shared-machine block: with it present, the
// spec's cohort × policy cells become tenants of ONE machine — contending
// for a node pool, an aggregate PFS bandwidth ceiling, and BB drain slots
// — instead of independent solo runs. Zero fields take the machine
// package's defaults (node pool sized to the cohort, I/O-model ceiling
// and drain concurrency, FIFO admission).
type MachineSpec struct {
	// Nodes is the machine's node pool (0 = every tenant fits at once).
	Nodes int `json:"nodes,omitempty"`
	// PFSCeilingGBs is the shared file-system bandwidth ceiling
	// (0 = the I/O model's aggregate ceiling).
	PFSCeilingGBs float64 `json:"pfs_ceiling_gbs,omitempty"`
	// MaxConcurrentDrains bounds machine-wide concurrent BB→PFS drains
	// (0 = the I/O model's drain concurrency).
	MaxConcurrentDrains int `json:"max_concurrent_drains,omitempty"`
	// Admission names the admission policy: "fifo" or "smallest-fit"
	// ("" = fifo).
	Admission string `json:"admission,omitempty"`
	// ArrivalSeconds gives each tenant's submission time, parallel to the
	// compiled cohort × policy grid; absent means everyone arrives at 0.
	ArrivalSeconds []float64 `json:"arrival_seconds,omitempty"`
}

// MachineConfig compiles the spec's machine block plus cohort into one
// machine.Config: tenant i is the i-th cell of the cohort × policy grid
// (cohort order, then policy order) with its arrival from
// ArrivalSeconds. A nil error means the config passes machine validation
// and is safe to simulate.
func (s *Spec) MachineConfig() (machine.Config, error) {
	if s == nil || s.Machine == nil {
		return machine.Config{}, fmt.Errorf("scenario: spec has no machine block")
	}
	cfgs, err := s.Configs()
	if err != nil {
		return machine.Config{}, err
	}
	n := s.Normalize()
	m := n.Machine
	adm, err := machine.AdmissionFor(m.Admission)
	if err != nil {
		return machine.Config{}, fmt.Errorf("scenario: machine: %w", err)
	}
	if len(m.ArrivalSeconds) != 0 && len(m.ArrivalSeconds) != len(cfgs) {
		return machine.Config{}, fmt.Errorf(
			"scenario: machine: %d arrival_seconds for %d tenants (cohort × policies)",
			len(m.ArrivalSeconds), len(cfgs))
	}
	if err := finite(arrivalFields(m.ArrivalSeconds)); err != nil {
		return machine.Config{}, fmt.Errorf("scenario: machine: %w", err)
	}
	jobs := make([]machine.JobSpec, len(cfgs))
	for i, rc := range cfgs {
		var at float64
		if len(m.ArrivalSeconds) > 0 {
			at = m.ArrivalSeconds[i]
		}
		jobs[i] = machine.JobSpec{Model: rc.Policy, Platform: rc.Platform, ArrivalSeconds: at}
	}
	cfg := machine.Config{
		Jobs:                jobs,
		Nodes:               m.Nodes,
		PFSCeilingGBs:       m.PFSCeilingGBs,
		MaxConcurrentDrains: m.MaxConcurrentDrains,
		Admission:           adm,
	}
	if err := cfg.WithDefaults().Validate(); err != nil {
		return machine.Config{}, fmt.Errorf("scenario: %w", err)
	}
	return cfg, nil
}

// arrivalFields adapts an arrival slice to the finite() checker.
func arrivalFields(arrivals []float64) map[string]float64 {
	fields := make(map[string]float64, len(arrivals))
	for i, v := range arrivals {
		fields[fmt.Sprintf("arrival_seconds[%d]", i)] = v
	}
	return fields
}

// normalizeMachine returns the machine block's normal form: a deep copy
// with the admission default made explicit. Nil stays nil — the block is
// optional, and an absent block must render absent (omitempty) so specs
// written before the machine block existed keep their canonical form.
func normalizeMachine(m *MachineSpec) *MachineSpec {
	if m == nil {
		return nil
	}
	n := *m
	n.ArrivalSeconds = append([]float64(nil), m.ArrivalSeconds...)
	if n.Admission == "" {
		n.Admission = "fifo"
	}
	return &n
}

// checkMachine verifies the machine block's skeleton (the full
// compilation check lives in MachineConfig).
func checkMachine(m *MachineSpec) error {
	if m == nil {
		return nil
	}
	if m.Nodes < 0 {
		return fmt.Errorf("scenario: machine: negative node pool %d", m.Nodes)
	}
	if m.MaxConcurrentDrains < 0 {
		return fmt.Errorf("scenario: machine: negative drain concurrency %d", m.MaxConcurrentDrains)
	}
	fields := arrivalFields(m.ArrivalSeconds)
	fields["pfs_ceiling_gbs"] = m.PFSCeilingGBs
	if err := finite(fields); err != nil {
		return fmt.Errorf("scenario: machine: %w", err)
	}
	for i, at := range m.ArrivalSeconds {
		if at < 0 {
			return fmt.Errorf("scenario: machine: arrival_seconds[%d] is negative (%g)", i, at)
		}
	}
	return nil
}

// canonicalMachine appends the machine block's canonical lines; absent
// blocks contribute nothing, keeping pre-machine renderings stable.
func canonicalMachine(b *strings.Builder, m *MachineSpec) {
	if m == nil {
		return
	}
	fmt.Fprintf(b, "machine=nodes:%d|ceiling:%g|drains:%d|admission:%s", m.Nodes, m.PFSCeilingGBs, m.MaxConcurrentDrains, m.Admission)
	for _, at := range m.ArrivalSeconds {
		fmt.Fprintf(b, "|arrive:%g", at)
	}
	b.WriteString("\n")
}
