package scenario

import (
	"fmt"
	"strings"

	"pckpt/internal/faultinject"
	"pckpt/internal/machine"
)

// MachineSpec is the optional shared-machine block: with it present, the
// spec's cohort × policy cells become tenants of ONE machine — contending
// for a node pool, an aggregate PFS bandwidth ceiling, and BB drain slots
// — instead of independent solo runs. Zero fields take the machine
// package's defaults (node pool sized to the cohort, I/O-model ceiling
// and drain concurrency, FIFO admission).
type MachineSpec struct {
	// Nodes is the machine's node pool (0 = every tenant fits at once).
	Nodes int `json:"nodes,omitempty"`
	// PFSCeilingGBs is the shared file-system bandwidth ceiling
	// (0 = the I/O model's aggregate ceiling).
	PFSCeilingGBs float64 `json:"pfs_ceiling_gbs,omitempty"`
	// MaxConcurrentDrains bounds machine-wide concurrent BB→PFS drains
	// (0 = the I/O model's drain concurrency).
	MaxConcurrentDrains int `json:"max_concurrent_drains,omitempty"`
	// Admission names the admission policy: "fifo" or "smallest-fit"
	// ("" = fifo).
	Admission string `json:"admission,omitempty"`
	// ArrivalSeconds gives each tenant's submission time, parallel to the
	// compiled cohort × policy grid; absent means everyone arrives at 0.
	ArrivalSeconds []float64 `json:"arrival_seconds,omitempty"`
	// Racks groups tenants into fault domains, parallel to the grid: one
	// crash draw strikes every running tenant of the struck rack. Absent
	// means each tenant is its own rack (uncorrelated crashes).
	Racks []int `json:"racks,omitempty"`
	// Faults is the machine-scope fault plan (PFS brownouts, drain-slot
	// outages, tenant crashes, starvation watchdog). Absent means a
	// healthy machine — and, like the block itself, contributes nothing
	// to the canonical rendering, so pre-fault specs keep their cache
	// identity.
	Faults *MachineFaultSpec `json:"faults,omitempty"`
}

// MachineFaultSpec is the JSON shape of faultinject.MachineConfig —
// the declarative machine-scope fault plan. Zero fields take the
// faultinject defaults for whichever processes are enabled.
type MachineFaultSpec struct {
	BrownoutRatePerHour         float64 `json:"brownout_rate_per_hour,omitempty"`
	BrownoutMeanSeconds         float64 `json:"brownout_mean_seconds,omitempty"`
	BrownoutMinFactor           float64 `json:"brownout_min_factor,omitempty"`
	BrownoutMaxFactor           float64 `json:"brownout_max_factor,omitempty"`
	BlackoutProb                float64 `json:"blackout_prob,omitempty"`
	DrainOutageRatePerHour      float64 `json:"drain_outage_rate_per_hour,omitempty"`
	DrainOutageMeanSeconds      float64 `json:"drain_outage_mean_seconds,omitempty"`
	DrainOutageSlots            int     `json:"drain_outage_slots,omitempty"`
	CrashRatePerHour            float64 `json:"crash_rate_per_hour,omitempty"`
	CrashMaxRetries             int     `json:"crash_max_retries,omitempty"`
	CrashBackoffSeconds         float64 `json:"crash_backoff_seconds,omitempty"`
	StarvationEscalationSeconds float64 `json:"starvation_escalation_seconds,omitempty"`
}

// config lowers the spec block to the faultinject plan; nil is the
// healthy machine.
func (f *MachineFaultSpec) config() faultinject.MachineConfig {
	if f == nil {
		return faultinject.MachineConfig{}
	}
	return faultinject.MachineConfig{
		BrownoutRatePerHour:         f.BrownoutRatePerHour,
		BrownoutMeanSeconds:         f.BrownoutMeanSeconds,
		BrownoutMinFactor:           f.BrownoutMinFactor,
		BrownoutMaxFactor:           f.BrownoutMaxFactor,
		BlackoutProb:                f.BlackoutProb,
		DrainOutageRatePerHour:      f.DrainOutageRatePerHour,
		DrainOutageMeanSeconds:      f.DrainOutageMeanSeconds,
		DrainOutageSlots:            f.DrainOutageSlots,
		CrashRatePerHour:            f.CrashRatePerHour,
		CrashMaxRetries:             f.CrashMaxRetries,
		CrashBackoffSeconds:         f.CrashBackoffSeconds,
		StarvationEscalationSeconds: f.StarvationEscalationSeconds,
	}
}

// fromMachineConfig lifts a faultinject plan back to the spec block
// (nil when the plan is zero) — the flag-override path's constructor.
func fromMachineConfig(c faultinject.MachineConfig) *MachineFaultSpec {
	if c == (faultinject.MachineConfig{}) {
		return nil
	}
	return &MachineFaultSpec{
		BrownoutRatePerHour:         c.BrownoutRatePerHour,
		BrownoutMeanSeconds:         c.BrownoutMeanSeconds,
		BrownoutMinFactor:           c.BrownoutMinFactor,
		BrownoutMaxFactor:           c.BrownoutMaxFactor,
		BlackoutProb:                c.BlackoutProb,
		DrainOutageRatePerHour:      c.DrainOutageRatePerHour,
		DrainOutageMeanSeconds:      c.DrainOutageMeanSeconds,
		DrainOutageSlots:            c.DrainOutageSlots,
		CrashRatePerHour:            c.CrashRatePerHour,
		CrashMaxRetries:             c.CrashMaxRetries,
		CrashBackoffSeconds:         c.CrashBackoffSeconds,
		StarvationEscalationSeconds: c.StarvationEscalationSeconds,
	}
}

// MachineConfig compiles the spec's machine block plus cohort into one
// machine.Config: tenant i is the i-th cell of the cohort × policy grid
// (cohort order, then policy order) with its arrival from
// ArrivalSeconds. A nil error means the config passes machine validation
// and is safe to simulate.
func (s *Spec) MachineConfig() (machine.Config, error) {
	if s == nil || s.Machine == nil {
		return machine.Config{}, fmt.Errorf("scenario: spec has no machine block")
	}
	cfgs, err := s.Configs()
	if err != nil {
		return machine.Config{}, err
	}
	n := s.Normalize()
	m := n.Machine
	adm, err := machine.AdmissionFor(m.Admission)
	if err != nil {
		return machine.Config{}, fmt.Errorf("scenario: machine: %w", err)
	}
	if len(m.ArrivalSeconds) != 0 && len(m.ArrivalSeconds) != len(cfgs) {
		return machine.Config{}, fmt.Errorf(
			"scenario: machine: %d arrival_seconds for %d tenants (cohort × policies)",
			len(m.ArrivalSeconds), len(cfgs))
	}
	if err := finite(arrivalFields(m.ArrivalSeconds)); err != nil {
		return machine.Config{}, fmt.Errorf("scenario: machine: %w", err)
	}
	jobs := make([]machine.JobSpec, len(cfgs))
	for i, rc := range cfgs {
		var at float64
		if len(m.ArrivalSeconds) > 0 {
			at = m.ArrivalSeconds[i]
		}
		jobs[i] = machine.JobSpec{Model: rc.Policy, Platform: rc.Platform, ArrivalSeconds: at}
	}
	cfg := machine.Config{
		Jobs:                jobs,
		Nodes:               m.Nodes,
		PFSCeilingGBs:       m.PFSCeilingGBs,
		MaxConcurrentDrains: m.MaxConcurrentDrains,
		Admission:           adm,
		Racks:               append([]int(nil), m.Racks...),
		Faults:              m.Faults.config(),
	}
	if err := cfg.WithDefaults().Validate(); err != nil {
		return machine.Config{}, fmt.Errorf("scenario: %w", err)
	}
	return cfg, nil
}

// arrivalFields adapts an arrival slice to the finite() checker.
func arrivalFields(arrivals []float64) map[string]float64 {
	fields := make(map[string]float64, len(arrivals))
	for i, v := range arrivals {
		fields[fmt.Sprintf("arrival_seconds[%d]", i)] = v
	}
	return fields
}

// normalizeMachine returns the machine block's normal form: a deep copy
// with the admission default made explicit. Nil stays nil — the block is
// optional, and an absent block must render absent (omitempty) so specs
// written before the machine block existed keep their canonical form.
func normalizeMachine(m *MachineSpec) *MachineSpec {
	if m == nil {
		return nil
	}
	n := *m
	n.ArrivalSeconds = append([]float64(nil), m.ArrivalSeconds...)
	if n.Admission == "" {
		n.Admission = "fifo"
	}
	n.Racks = append([]int(nil), m.Racks...)
	if m.Faults != nil {
		// Defaults made explicit, exactly as the simulator will apply
		// them, so equal effective plans render equal canonical forms.
		// WithDefaults is idempotent, keeping Normalize idempotent.
		n.Faults = fromMachineConfig(m.Faults.config().WithDefaults())
		if n.Faults == nil {
			n.Faults = &MachineFaultSpec{}
		}
	}
	return &n
}

// checkMachine verifies the machine block's skeleton (the full
// compilation check lives in MachineConfig).
func checkMachine(m *MachineSpec) error {
	if m == nil {
		return nil
	}
	if m.Nodes < 0 {
		return fmt.Errorf("scenario: machine: negative node pool %d", m.Nodes)
	}
	if m.MaxConcurrentDrains < 0 {
		return fmt.Errorf("scenario: machine: negative drain concurrency %d", m.MaxConcurrentDrains)
	}
	fields := arrivalFields(m.ArrivalSeconds)
	fields["pfs_ceiling_gbs"] = m.PFSCeilingGBs
	if err := finite(fields); err != nil {
		return fmt.Errorf("scenario: machine: %w", err)
	}
	for i, at := range m.ArrivalSeconds {
		if at < 0 {
			return fmt.Errorf("scenario: machine: arrival_seconds[%d] is negative (%g)", i, at)
		}
	}
	for i, r := range m.Racks {
		if r < 0 {
			return fmt.Errorf("scenario: machine: racks[%d] is negative (%d)", i, r)
		}
	}
	if err := m.Faults.config().Validate(); err != nil {
		return fmt.Errorf("scenario: machine: %w", err)
	}
	return nil
}

// canonicalMachine appends the machine block's canonical lines; absent
// blocks contribute nothing, keeping pre-machine renderings stable.
func canonicalMachine(b *strings.Builder, m *MachineSpec) {
	if m == nil {
		return
	}
	fmt.Fprintf(b, "machine=nodes:%d|ceiling:%g|drains:%d|admission:%s", m.Nodes, m.PFSCeilingGBs, m.MaxConcurrentDrains, m.Admission)
	for _, at := range m.ArrivalSeconds {
		fmt.Fprintf(b, "|arrive:%g", at)
	}
	for _, r := range m.Racks {
		fmt.Fprintf(b, "|rack:%d", r)
	}
	b.WriteString("\n")
	if m.Faults != nil {
		f := m.Faults
		fmt.Fprintf(b, "machine.faults=brownout:%g|brownout-mean:%g|factors:%g-%g|blackout:%g|drain-outage:%g|drain-mean:%g|slots:%d|crash:%g|retries:%d|backoff:%g|escalate:%g\n",
			f.BrownoutRatePerHour, f.BrownoutMeanSeconds, f.BrownoutMinFactor, f.BrownoutMaxFactor, f.BlackoutProb,
			f.DrainOutageRatePerHour, f.DrainOutageMeanSeconds, f.DrainOutageSlots,
			f.CrashRatePerHour, f.CrashMaxRetries, f.CrashBackoffSeconds, f.StarvationEscalationSeconds)
	}
}
