// Package scenario is the declarative experiment layer: a JSON spec
// names an application cohort (Table I entries, custom apps, Eq. (3)
// rescalings), a platform block, a failure source (parametric Table III
// catalogue or a replayed trace), a policy list, and a run/seed plan —
// and compiles to the exact platform.Config values the flag-driven tools
// build, so a spec-configured run is bit-identical to its flag-configured
// twin. Specs have a strict parser (unknown fields are errors), a
// validator that never panics on malformed input, and a versioned
// canonical rendering that participates in runcache keys the same way
// platform.Config.CanonicalString does.
package scenario

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/iomodel"
	"pckpt/internal/lm"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/workload"
)

// ScaleSpec rescales an application to a target system via Eq. (3):
// checkpoint footprint scales with both node count and per-node DRAM.
type ScaleSpec struct {
	// Nodes is the target node count.
	Nodes int `json:"nodes"`
	// OldDRAMGB is the per-node DRAM of the system the footprint was
	// measured on; zero selects Summit's 512 GB.
	OldDRAMGB float64 `json:"old_dram_gb,omitempty"`
	// NewDRAMGB is the target per-node DRAM; zero selects the source DRAM
	// (pure node-count scaling).
	NewDRAMGB float64 `json:"new_dram_gb,omitempty"`
}

// AppSpec names one cohort member: a Table I catalogue entry ("name"
// alone), a custom application (all of nodes / total_ckpt_gb /
// compute_hours), either optionally rescaled via "scale".
type AppSpec struct {
	// Name is the catalogue name, or the custom application's label.
	Name string `json:"name"`
	// Nodes, TotalCkptGB, ComputeHours define a custom application; give
	// all three or none.
	Nodes        int     `json:"nodes,omitempty"`
	TotalCkptGB  float64 `json:"total_ckpt_gb,omitempty"`
	ComputeHours float64 `json:"compute_hours,omitempty"`
	// Scale optionally rescales the application via Eq. (3).
	Scale *ScaleSpec `json:"scale,omitempty"`
}

// custom reports whether the entry defines its own characteristics
// (vs naming a catalogue row).
func (a AppSpec) custom() bool {
	return a.Nodes != 0 || a.TotalCkptGB != 0 || a.ComputeHours != 0
}

// Resolve materialises the entry as a concrete application.
func (a AppSpec) Resolve() (workload.App, error) {
	var app workload.App
	if a.custom() {
		app = workload.App{Name: a.Name, Nodes: a.Nodes, TotalCkptGB: a.TotalCkptGB, ComputeHours: a.ComputeHours}
		if err := finite(map[string]float64{"total_ckpt_gb": a.TotalCkptGB, "compute_hours": a.ComputeHours}); err != nil {
			return workload.App{}, fmt.Errorf("scenario: app %q: %w", a.Name, err)
		}
		if err := app.Validate(); err != nil {
			return workload.App{}, fmt.Errorf("scenario: %w", err)
		}
	} else {
		var err error
		if app, err = workload.ByName(a.Name); err != nil {
			return workload.App{}, fmt.Errorf("scenario: %w", err)
		}
	}
	if s := a.Scale; s != nil {
		oldDRAM := s.OldDRAMGB
		if oldDRAM == 0 {
			oldDRAM = iomodel.DefaultSummit().DRAMSizeGB
		}
		newDRAM := s.NewDRAMGB
		if newDRAM == 0 {
			newDRAM = oldDRAM
		}
		// Pre-check what ScaleEq3 would panic on: Validate must reject,
		// never crash.
		if s.Nodes <= 0 || !(oldDRAM > 0) || !(newDRAM > 0) ||
			math.IsInf(oldDRAM, 0) || math.IsInf(newDRAM, 0) {
			return workload.App{}, fmt.Errorf("scenario: app %q: non-positive Eq. (3) scale parameter", a.Name)
		}
		app = workload.ScaleApp(app, s.Nodes, oldDRAM, newDRAM)
	}
	return app, nil
}

// FaultSpec is the degraded-platform fault plan, mirroring
// faultinject.Config field-for-field (zero = perfect platform).
type FaultSpec struct {
	BBWriteFailProb       float64 `json:"bb_write_fail_prob,omitempty"`
	PFSWriteFailProb      float64 `json:"pfs_write_fail_prob,omitempty"`
	CorruptProb           float64 `json:"corrupt_prob,omitempty"`
	RestartFailProb       float64 `json:"restart_fail_prob,omitempty"`
	CascadeProb           float64 `json:"cascade_prob,omitempty"`
	RestartRetries        int     `json:"restart_retries,omitempty"`
	RestartBackoffSeconds float64 `json:"restart_backoff_seconds,omitempty"`
}

// config converts to the runtime fault plan.
func (f *FaultSpec) config() faultinject.Config {
	if f == nil {
		return faultinject.Config{}
	}
	return faultinject.Config{
		BBWriteFailProb:       f.BBWriteFailProb,
		PFSWriteFailProb:      f.PFSWriteFailProb,
		CorruptProb:           f.CorruptProb,
		RestartFailProb:       f.RestartFailProb,
		CascadeProb:           f.CascadeProb,
		RestartRetries:        f.RestartRetries,
		RestartBackoffSeconds: f.RestartBackoffSeconds,
	}
}

// PlatformSpec is the platform block: predictor, lead-time scaling,
// migration model, and fault plan. Zero fields select the same defaults
// the flag-driven tools use.
type PlatformSpec struct {
	// LeadScale stretches lead times (0 = 1.0).
	LeadScale float64 `json:"lead_scale,omitempty"`
	// FNRate / FPRate configure the predictor (0 = the defaults 0.125 /
	// 0.18; for a zero-error predictor set perfect_predictor).
	FNRate float64 `json:"fn_rate,omitempty"`
	FPRate float64 `json:"fp_rate,omitempty"`
	// PerfectPredictor forces FN = FP = 0.
	PerfectPredictor bool `json:"perfect_predictor,omitempty"`
	// OCIRefreshSeconds re-derives the OCI this often (0 = hourly).
	OCIRefreshSeconds float64 `json:"oci_refresh_seconds,omitempty"`
	// AccuracyAwareSigma enables the Observation 9 extension.
	AccuracyAwareSigma bool `json:"accuracy_aware_sigma,omitempty"`
	// LMAlpha is the live-migration transfer/checkpoint ratio (0 = 3.0).
	LMAlpha float64 `json:"lm_alpha,omitempty"`
	// Faults is the degraded-platform fault plan.
	Faults *FaultSpec `json:"faults,omitempty"`
}

// FailureSpec selects the failure source: a Table III catalogue entry
// ("system"), or a replayed trace (inline "trace", or an external file
// via "trace_file" — resolved by Load relative to the spec). Exactly one
// of the three; an absent block selects the default catalogue entry.
type FailureSpec struct {
	// System names a Table III failure distribution.
	System string `json:"system,omitempty"`
	// Trace is an inline failure trace to replay.
	Trace *Trace `json:"trace,omitempty"`
	// TraceFile references a trace JSON file, relative to the spec file.
	// Load resolves it into Trace; a spec parsed from bytes must carry
	// its trace inline.
	TraceFile string `json:"trace_file,omitempty"`
}

// DefaultSystem is the parametric failure source a spec (like the flag
// tools) selects when its failures block names none.
const DefaultSystem = "OLCF Titan"

// Spec is one declarative scenario: what to run (cohort × policies), on
// what platform, against which failure reality, how many runs, from which
// seed.
type Spec struct {
	// Version is the spec format version; 1 is the only version.
	Version int `json:"version"`
	// Name identifies the scenario (cache keys, output labels).
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Apps is the application cohort; at least one entry.
	Apps []AppSpec `json:"apps"`
	// Platform is the platform block; absent selects all defaults.
	Platform *PlatformSpec `json:"platform,omitempty"`
	// Failures selects the failure source; absent selects DefaultSystem.
	Failures *FailureSpec `json:"failures,omitempty"`
	// Policies lists the C/R policies to simulate; absent selects the
	// full catalogue (B, M1, M2, P1, P2).
	Policies []string `json:"policies,omitempty"`
	// Machine, when present, runs the cohort × policy cells as tenants of
	// one shared machine (node pool, PFS bandwidth ceiling, drain slots)
	// instead of independent solo sweeps.
	Machine *MachineSpec `json:"machine,omitempty"`
	// Runs is the per-configuration run count (0 = 200, the pckpt-sim
	// default).
	Runs int `json:"runs,omitempty"`
	// Seed is the base RNG seed (0 = 42, the pckpt-sim default).
	Seed uint64 `json:"seed,omitempty"`
}

// Parse strictly decodes one JSON spec: unknown fields and trailing data
// are errors. The result is not yet normalized or validated, and any
// trace_file reference is left unresolved (use Load for that).
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := strictDecode(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: spec: %w", err)
	}
	return &s, nil
}

// Load reads, parses, trace-resolves, normalizes, and validates a spec
// file. A trace_file reference is read relative to the spec's directory.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f := s.Failures; f != nil && f.TraceFile != "" {
		if f.Trace != nil {
			return nil, fmt.Errorf("%s: scenario: both trace and trace_file given", path)
		}
		t, err := LoadTrace(filepath.Join(filepath.Dir(path), f.TraceFile))
		if err != nil {
			return nil, err
		}
		f.Trace = t
	}
	s = s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Normalize returns a copy with every zero field replaced by its
// effective default, so two specs that simulate identically normalize
// identically (the canonical rendering and CanonicalString apply it
// first). Idempotent. A resolved inline trace supersedes its trace_file
// reference, so the rendering is independent of file layout.
func (s *Spec) Normalize() *Spec {
	n := *s
	if n.Version == 0 {
		n.Version = 1
	}
	n.Apps = append([]AppSpec(nil), s.Apps...)
	if n.Platform == nil {
		n.Platform = &PlatformSpec{}
	} else {
		p := *n.Platform
		n.Platform = &p
	}
	p := n.Platform
	if p.LeadScale == 0 {
		p.LeadScale = 1
	}
	if p.PerfectPredictor {
		p.FNRate, p.FPRate = 0, 0
	} else {
		if p.FNRate == 0 {
			p.FNRate = failure.DefaultFNRate
		}
		if p.FPRate == 0 {
			p.FPRate = failure.DefaultFPRate
		}
	}
	if p.OCIRefreshSeconds == 0 {
		p.OCIRefreshSeconds = 3600
	}
	if p.LMAlpha == 0 {
		p.LMAlpha = lm.DefaultAlpha
	}
	if n.Failures == nil {
		n.Failures = &FailureSpec{}
	} else {
		f := *n.Failures
		n.Failures = &f
	}
	f := n.Failures
	if f.Trace != nil {
		f.TraceFile = "" // content is authoritative once resolved
	}
	if f.System == "" && f.Trace == nil && f.TraceFile == "" {
		f.System = DefaultSystem
	}
	if len(n.Policies) == 0 {
		for _, id := range policy.All() {
			n.Policies = append(n.Policies, id.String())
		}
	} else {
		n.Policies = append([]string(nil), s.Policies...)
	}
	n.Machine = normalizeMachine(s.Machine)
	if n.Runs == 0 {
		n.Runs = 200
	}
	if n.Seed == 0 {
		n.Seed = 42
	}
	return &n
}

// RunConfig is one compiled (application, policy) cell of a scenario:
// exactly what one pckpt-sim invocation simulates.
type RunConfig struct {
	// Label identifies the cohort member within the spec (the resolved
	// application name, index-suffixed on duplicates).
	Label string
	// Policy is the C/R policy to simulate.
	Policy policy.ID
	// Platform is the fully-compiled platform configuration.
	Platform platform.Config
}

// Configs compiles the spec into its cohort × policy grid, validating
// everything on the way: a nil error means every returned configuration
// passes platform validation and is safe to simulate. Order is
// deterministic: cohort order, then policy order, both as written.
func (s *Spec) Configs() ([]RunConfig, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	n := s.Normalize()
	pols := make([]policy.ID, len(n.Policies))
	seenPol := map[policy.ID]bool{}
	for i, name := range n.Policies {
		id, err := policy.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		if seenPol[id] {
			return nil, fmt.Errorf("scenario: duplicate policy %s", id)
		}
		seenPol[id] = true
		pols[i] = id
	}

	var sys failure.System
	var replay *failure.Replay
	f := n.Failures
	switch {
	case f.Trace != nil && f.System != "":
		return nil, fmt.Errorf("scenario: failures block gives both a system and a trace")
	case f.TraceFile != "":
		return nil, fmt.Errorf("scenario: trace_file %q unresolved (Load resolves it relative to the spec)", f.TraceFile)
	case f.Trace != nil:
		if err := f.Trace.Validate(); err != nil {
			return nil, err
		}
		replay = f.Trace.ToReplay()
	default:
		var err error
		if sys, err = failure.SystemByName(f.System); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}

	labels := map[string]int{}
	var out []RunConfig
	for _, as := range n.Apps {
		app, err := as.Resolve()
		if err != nil {
			return nil, err
		}
		label := app.Name
		labels[label]++
		if k := labels[label]; k > 1 {
			label = fmt.Sprintf("%s#%d", label, k)
		}
		pc := platform.Config{
			App:                app,
			System:             sys,
			LM:                 lm.Default().WithAlpha(n.Platform.LMAlpha),
			LeadScale:          n.Platform.LeadScale,
			FNRate:             n.Platform.FNRate,
			FPRate:             n.Platform.FPRate,
			PerfectPredictor:   n.Platform.PerfectPredictor,
			OCIRefreshSeconds:  n.Platform.OCIRefreshSeconds,
			AccuracyAwareSigma: n.Platform.AccuracyAwareSigma,
			Faults:             n.Platform.Faults.config(),
			Replay:             replay,
		}
		if err := pc.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: app %q: %w", app.Name, err)
		}
		for _, id := range pols {
			out = append(out, RunConfig{Label: label, Policy: id, Platform: pc})
		}
	}
	return out, nil
}

// Validate reports the first problem that would keep the spec from
// simulating, or nil. It never panics, whatever the input. Purely
// in-memory: an unresolved trace_file is an error here (Load resolves).
func (s *Spec) Validate() error {
	if _, err := s.Configs(); err != nil {
		return err
	}
	if s.Machine != nil {
		if _, err := s.MachineConfig(); err != nil {
			return err
		}
	}
	return nil
}

// check verifies the spec skeleton before compilation.
func (s *Spec) check() error {
	if s == nil {
		return fmt.Errorf("scenario: nil spec")
	}
	if v := s.Version; v != 0 && v != 1 {
		return fmt.Errorf("scenario: unsupported spec version %d (want 1)", v)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	for _, r := range s.Name {
		if r == '\n' || r == '\r' {
			return fmt.Errorf("scenario: spec name contains a line break")
		}
	}
	if len(s.Apps) == 0 {
		return fmt.Errorf("scenario: empty application cohort")
	}
	if s.Runs < 0 {
		return fmt.Errorf("scenario: negative run count")
	}
	if err := checkMachine(s.Machine); err != nil {
		return err
	}
	if p := s.Platform; p != nil {
		fields := map[string]float64{
			"lead_scale":          p.LeadScale,
			"fn_rate":             p.FNRate,
			"fp_rate":             p.FPRate,
			"oci_refresh_seconds": p.OCIRefreshSeconds,
			"lm_alpha":            p.LMAlpha,
		}
		if err := finite(fields); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if f := p.Faults; f != nil {
			fields = map[string]float64{
				"bb_write_fail_prob":      f.BBWriteFailProb,
				"pfs_write_fail_prob":     f.PFSWriteFailProb,
				"corrupt_prob":            f.CorruptProb,
				"restart_fail_prob":       f.RestartFailProb,
				"cascade_prob":            f.CascadeProb,
				"restart_backoff_seconds": f.RestartBackoffSeconds,
			}
			if err := finite(fields); err != nil {
				return fmt.Errorf("scenario: faults: %w", err)
			}
		}
	}
	return nil
}

// finite rejects NaN and ±Inf field values: JSON cannot encode them, but
// specs are also built programmatically, and a NaN rate would slip
// through range checks (every comparison on it is false).
func finite(fields map[string]float64) error {
	for name, v := range fields {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("field %s is %v", name, v)
		}
	}
	return nil
}
