package scenario

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/lm"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/workload"
)

const minimalSpec = `{
  "version": 1,
  "name": "minimal",
  "apps": [{"name": "VULCAN"}],
  "policies": ["B", "P2"],
  "runs": 3
}`

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return s
}

func TestParseStrict(t *testing.T) {
	if _, err := Parse([]byte(`{"version": 1, "nmae": "typo"}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Parse([]byte(minimalSpec + `{"more": 1}`)); err == nil {
		t.Error("trailing data accepted")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestValidateMinimal(t *testing.T) {
	s := mustParse(t, minimalSpec)
	if err := s.Validate(); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
	cfgs, err := s.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 {
		t.Fatalf("got %d configs, want 2 (1 app × 2 policies)", len(cfgs))
	}
	if cfgs[0].Label != "VULCAN" || cfgs[0].Policy != policy.B || cfgs[1].Policy != policy.P2 {
		t.Fatalf("unexpected grid: %+v", cfgs)
	}
	if got := cfgs[0].Platform.System.Name; got != DefaultSystem {
		t.Fatalf("default system %q, want %q", got, DefaultSystem)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Spec){
		"no-name":       func(s *Spec) { s.Name = "" },
		"newline-name":  func(s *Spec) { s.Name = "a\nb" },
		"bad-version":   func(s *Spec) { s.Version = 2 },
		"empty-cohort":  func(s *Spec) { s.Apps = nil },
		"unknown-app":   func(s *Spec) { s.Apps = []AppSpec{{Name: "NOPE"}} },
		"half-custom":   func(s *Spec) { s.Apps = []AppSpec{{Name: "X", Nodes: 4}} },
		"negative-ckpt": func(s *Spec) { s.Apps = []AppSpec{{Name: "X", Nodes: 4, TotalCkptGB: -1, ComputeHours: 1}} },
		"nan-ckpt": func(s *Spec) {
			s.Apps = []AppSpec{{Name: "X", Nodes: 4, TotalCkptGB: math.NaN(), ComputeHours: 1}}
		},
		"bad-scale":      func(s *Spec) { s.Apps[0].Scale = &ScaleSpec{Nodes: -3} },
		"nan-scale-dram": func(s *Spec) { s.Apps[0].Scale = &ScaleSpec{Nodes: 3, NewDRAMGB: math.NaN()} },
		"unknown-policy": func(s *Spec) { s.Policies = []string{"B", "Z9"} },
		"dup-policy":     func(s *Spec) { s.Policies = []string{"B", "B"} },
		"unknown-system": func(s *Spec) { s.Failures = &FailureSpec{System: "nope"} },
		"system-and-trace": func(s *Spec) {
			s.Failures = &FailureSpec{System: DefaultSystem, Trace: testTrace()}
		},
		"unresolved-trace-file": func(s *Spec) { s.Failures = &FailureSpec{TraceFile: "x.json"} },
		"invalid-trace": func(s *Spec) {
			tr := testTrace()
			tr.Events[0].T = -5
			s.Failures = &FailureSpec{Trace: tr}
		},
		"negative-runs":  func(s *Spec) { s.Runs = -1 },
		"nan-lead-scale": func(s *Spec) { s.Platform = &PlatformSpec{LeadScale: math.NaN()} },
		"inf-alpha":      func(s *Spec) { s.Platform = &PlatformSpec{LMAlpha: math.Inf(1)} },
		"bad-fn":         func(s *Spec) { s.Platform = &PlatformSpec{FNRate: 1.5} },
		"nan-fault": func(s *Spec) {
			s.Platform = &PlatformSpec{Faults: &FaultSpec{CorruptProb: math.NaN()}}
		},
		"bad-fault": func(s *Spec) {
			s.Platform = &PlatformSpec{Faults: &FaultSpec{CorruptProb: 1.5}}
		},
	}
	for name, mutate := range cases {
		s := mustParse(t, minimalSpec)
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(); err == nil {
		t.Error("nil spec accepted")
	}
}

// A spec compiled with all defaults must be bit-identical to the config
// cmd/pckpt-sim builds from its flags: same canonical platform rendering,
// same simulated results.
func TestFlagEquivalence(t *testing.T) {
	s := mustParse(t, `{
	  "version": 1,
	  "name": "flag-twin",
	  "apps": [{"name": "GYRO"}],
	  "platform": {"lead_scale": 1.1, "lm_alpha": 2.5, "faults": {"pfs_write_fail_prob": 0.02}},
	  "policies": ["P2"],
	  "runs": 2,
	  "seed": 7
	}`)
	cfgs, err := s.Configs()
	if err != nil {
		t.Fatal(err)
	}
	app, _ := workload.ByName("GYRO")
	sys, _ := failure.SystemByName("OLCF Titan")
	// Exactly the construction in cmd/pckpt-sim/main.go.
	want := platform.Config{
		App:       app,
		System:    sys,
		LM:        lm.Default().WithAlpha(2.5),
		LeadScale: 1.1,
		FNRate:    failure.DefaultFNRate,
		FPRate:    failure.DefaultFPRate,
		Faults:    faultinject.Config{PFSWriteFailProb: 0.02},
	}
	if got := cfgs[0].Platform.CanonicalString(); got != want.CanonicalString() {
		t.Fatalf("spec and flag configs render differently:\n%s\nvs\n%s", got, want.CanonicalString())
	}
	specRes := crmodel.Simulate(crmodel.Config{Model: cfgs[0].Policy, Config: cfgs[0].Platform}, s.Normalize().Seed)
	flagRes := crmodel.Simulate(crmodel.Config{Model: crmodel.ModelP2, Config: want}, 7)
	if specRes != flagRes {
		t.Fatalf("spec run diverges from flag run:\n%+v\nvs\n%+v", specRes, flagRes)
	}
}

func testTrace() *Trace {
	return &Trace{
		Version: 1, Name: "unit", Nodes: 16, HorizonSeconds: 4000,
		Events: []TraceEvent{
			{T: 300, Node: 2, Lead: 120, Seq: 1},
			{T: 900, Node: 9, Lead: 60, Seq: 2, Spurious: true},
			{T: 2500, Node: 7},
			{T: 3900, Node: 11, Lead: 200, Seq: 1},
		},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := testTrace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	re := tr.ToReplay()
	back := TraceFromReplay(re)
	if re.Digest() != back.ToReplay().Digest() {
		t.Fatal("ToReplay/TraceFromReplay round trip changes the trace")
	}
	data, err := tr.Render()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.ToReplay().Digest() != re.Digest() {
		t.Fatal("JSON round trip changes the trace")
	}
	if _, err := ParseTrace([]byte(`{"version": 1, "nodez": 3}`)); err == nil {
		t.Error("unknown trace field accepted")
	}
}

// A replay spec compiles: the trace becomes the platform's Replay, the
// synthetic system is derived from it, and the compiled config validates.
func TestReplaySpecCompiles(t *testing.T) {
	s := mustParse(t, minimalSpec)
	s.Failures = &FailureSpec{Trace: testTrace()}
	cfgs, err := s.Configs()
	if err != nil {
		t.Fatal(err)
	}
	pc := cfgs[0].Platform
	if pc.Replay == nil {
		t.Fatal("compiled config has no replay")
	}
	if pc.Replay.Digest() != testTrace().ToReplay().Digest() {
		t.Fatal("compiled replay differs from the spec's trace")
	}
	d := pc.WithDefaults()
	if !strings.HasPrefix(d.System.Name, "replay:") {
		t.Fatalf("system %q not synthesized from the trace", d.System.Name)
	}
}

// Load resolves trace_file relative to the spec's directory and inlines
// the trace; rendering afterwards is file-layout independent.
func TestLoadTraceFile(t *testing.T) {
	dir := t.TempDir()
	tr := testTrace()
	data, err := tr.Render()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "trace.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	spec := `{
	  "version": 1,
	  "name": "replayed",
	  "apps": [{"name": "VULCAN"}],
	  "failures": {"trace_file": "trace.json"},
	  "policies": ["B"],
	  "runs": 2
	}`
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Failures.Trace == nil || s.Failures.TraceFile != "" {
		t.Fatalf("trace_file not inlined: %+v", s.Failures)
	}
	if s.Failures.Trace.ToReplay().Digest() != tr.ToReplay().Digest() {
		t.Fatal("loaded trace differs from the file")
	}
	// A dangling reference must fail at load time.
	bad := strings.Replace(spec, "trace.json", "missing.json", 1)
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("dangling trace_file accepted")
	}
}

// Cohort features: custom apps, Eq. (3) rescaling, duplicate-label
// disambiguation.
func TestCohortCompilation(t *testing.T) {
	s := mustParse(t, `{
	  "version": 1,
	  "name": "cohort",
	  "apps": [
	    {"name": "GYRO"},
	    {"name": "GYRO", "scale": {"nodes": 252, "new_dram_gb": 1024}},
	    {"name": "TOY", "nodes": 8, "total_ckpt_gb": 4.5, "compute_hours": 12}
	  ],
	  "policies": ["B"],
	  "runs": 1
	}`)
	cfgs, err := s.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 3 {
		t.Fatalf("got %d configs, want 3", len(cfgs))
	}
	if cfgs[0].Label != "GYRO" || cfgs[1].Label != "GYRO#2" || cfgs[2].Label != "TOY" {
		t.Fatalf("labels: %q %q %q", cfgs[0].Label, cfgs[1].Label, cfgs[2].Label)
	}
	gyro, _ := workload.ByName("GYRO")
	scaled := cfgs[1].Platform.App
	want := workload.ScaleEq3(gyro.TotalCkptGB, gyro.Nodes, 252, 512, 1024)
	if scaled.Nodes != 252 || scaled.TotalCkptGB != want {
		t.Fatalf("Eq. (3) scaling wrong: %+v (want ckpt %v)", scaled, want)
	}
	if custom := cfgs[2].Platform.App; custom.TotalCkptGB != 4.5 || custom.ComputeHours != 12 {
		t.Fatalf("custom app wrong: %+v", custom)
	}
}

// Canonical rendering: parse → render → parse is a fixed point, and the
// canonical key text distinguishes simulation-relevant changes while
// ignoring default spelling.
func TestCanonicalFixedPoint(t *testing.T) {
	for name, src := range map[string]string{
		"minimal": minimalSpec,
		"full": `{
		  "version": 1,
		  "name": "full",
		  "description": "everything set",
		  "apps": [{"name": "POP"}, {"name": "T", "nodes": 3, "total_ckpt_gb": 1.5, "compute_hours": 2}],
		  "platform": {"lead_scale": 0.5, "fn_rate": 0.3, "fp_rate": 0.1, "oci_refresh_seconds": 600,
		               "lm_alpha": 2, "faults": {"bb_write_fail_prob": 0.01, "restart_retries": 2}},
		  "failures": {"system": "LANL System 18"},
		  "policies": ["M2", "P1"],
		  "runs": 10,
		  "seed": 9
		}`,
	} {
		s := mustParse(t, src)
		r1, err := s.Render()
		if err != nil {
			t.Fatalf("%s: render: %v", name, err)
		}
		s2, err := Parse(r1)
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		r2, err := s2.Render()
		if err != nil {
			t.Fatalf("%s: re-render: %v", name, err)
		}
		if !bytes.Equal(r1, r2) {
			t.Errorf("%s: rendering is not a fixed point:\n%s\nvs\n%s", name, r1, r2)
		}
	}
}

func TestCanonicalStringStability(t *testing.T) {
	zero := mustParse(t, minimalSpec)
	explicit := mustParse(t, `{
	  "version": 1,
	  "name": "minimal",
	  "apps": [{"name": "VULCAN"}],
	  "platform": {"lead_scale": 1, "fn_rate": 0.125, "fp_rate": 0.18, "oci_refresh_seconds": 3600, "lm_alpha": 3},
	  "failures": {"system": "OLCF Titan"},
	  "policies": ["B", "P2"],
	  "runs": 3,
	  "seed": 42
	}`)
	cz, err := zero.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	ce, err := explicit.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	if cz != ce {
		t.Fatalf("defaulted and explicit specs render differently:\n%s\nvs\n%s", cz, ce)
	}
	if !strings.HasPrefix(cz, "scenario/v1\n") {
		t.Fatalf("missing version header: %q", cz[:min(len(cz), 40)])
	}
	perturbed := mustParse(t, minimalSpec)
	perturbed.Platform = &PlatformSpec{LeadScale: 1.2}
	cp, err := perturbed.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	if cp == cz {
		t.Fatal("lead-scale change does not perturb the canonical rendering")
	}
}
