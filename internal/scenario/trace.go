package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pckpt/internal/failure"
)

// TraceEvent is one recorded failure-trace entry in interchange form; the
// fields mirror failure.ReplayEvent one-to-one.
type TraceEvent struct {
	// T is seconds since the trace window's start.
	T float64 `json:"t"`
	// Node is the trace-local node index.
	Node int `json:"node"`
	// Lead is the prediction lead time in seconds (0 = unpredicted).
	Lead float64 `json:"lead,omitempty"`
	// Seq is the mined failure-sequence ID (0 = unknown).
	Seq int `json:"seq,omitempty"`
	// Spurious marks a false-positive prediction with no failure behind it.
	Spurious bool `json:"spurious,omitempty"`
}

// Trace is the JSON interchange form of a failure trace: what
// internal/deshlog exports from mined log chains and what a scenario spec
// replays (inline, or referenced through "trace_file"). It is a versioned
// rendering of failure.Replay — the runtime type both simulation tiers
// consume through the failure-stream interface.
type Trace struct {
	// Version is the trace format version; 1 is the only version.
	Version int `json:"version"`
	// Name labels the trace (provenance; participates in cache keys).
	Name string `json:"name"`
	// Nodes is the node span the trace was recorded over.
	Nodes int `json:"nodes"`
	// HorizonSeconds is the trace window length; replay wraps modulo it.
	HorizonSeconds float64 `json:"horizon_seconds"`
	// Events is the recorded sequence, ordered by T.
	Events []TraceEvent `json:"events"`
}

// ToReplay converts the trace to its runtime replay form. Purely
// structural: call Validate (or failure.Replay.Validate) to check it.
func (t *Trace) ToReplay() *failure.Replay {
	if t == nil {
		return nil
	}
	re := &failure.Replay{
		Name:           t.Name,
		Nodes:          t.Nodes,
		HorizonSeconds: t.HorizonSeconds,
		Events:         make([]failure.ReplayEvent, len(t.Events)),
	}
	for i, ev := range t.Events {
		re.Events[i] = failure.ReplayEvent{T: ev.T, Node: ev.Node, Lead: ev.Lead, Seq: ev.Seq, Spurious: ev.Spurious}
	}
	return re
}

// TraceFromReplay converts a runtime replay back to interchange form —
// the inverse of ToReplay, used by exporters.
func TraceFromReplay(re *failure.Replay) *Trace {
	if re == nil {
		return nil
	}
	t := &Trace{
		Version:        1,
		Name:           re.Name,
		Nodes:          re.Nodes,
		HorizonSeconds: re.HorizonSeconds,
		Events:         make([]TraceEvent, len(re.Events)),
	}
	for i, ev := range re.Events {
		t.Events[i] = TraceEvent{T: ev.T, Node: ev.Node, Lead: ev.Lead, Seq: ev.Seq, Spurious: ev.Spurious}
	}
	return t
}

// Validate reports a malformed trace, or nil. Field semantics are checked
// by the runtime type's validator, so a trace is valid exactly when its
// replay is.
func (t *Trace) Validate() error {
	if t == nil {
		return fmt.Errorf("scenario: nil trace")
	}
	if t.Version != 1 {
		return fmt.Errorf("scenario: unsupported trace version %d (want 1)", t.Version)
	}
	return t.ToReplay().Validate()
}

// Render returns the canonical JSON rendering of a valid trace — what
// exporters write and what a spec's trace_file references.
func (t *Trace) Render() ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return append(data, '\n'), nil
}

// ParseTrace strictly decodes one JSON trace: unknown fields and trailing
// data are errors. The result is not yet validated.
func ParseTrace(data []byte) (*Trace, error) {
	var t Trace
	if err := strictDecode(data, &t); err != nil {
		return nil, fmt.Errorf("scenario: trace: %w", err)
	}
	return &t, nil
}

// LoadTrace reads and strictly parses a trace file.
func LoadTrace(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	t, err := ParseTrace(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// strictDecode unmarshals JSON rejecting unknown fields and trailing
// content — a typo in a spec must fail loudly, never silently default.
func strictDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("trailing data after JSON document")
	}
	return nil
}
