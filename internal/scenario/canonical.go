package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Render returns the canonical JSON rendering of the spec: normalized
// (zero fields replaced by their effective defaults, trace inlined over
// its file reference) and deterministically formatted. Rendering is a
// fixed point — parsing a rendering and rendering again reproduces it
// byte-for-byte — so a committed spec file in canonical form diffs
// cleanly against any re-export.
func (s *Spec) Render() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(s.Normalize(), "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return append(data, '\n'), nil
}

// CanonicalString renders the spec as stable, versioned, newline-
// delimited key text — the scenario analogue of
// platform.Config.CanonicalString, and the spec's identity in cache keys
// and reports. Two specs that compile to the same simulations render
// identically: the rendering is built from the compiled cohort × policy
// grid (each cell carrying its platform's own canonical text), not from
// the spec's surface syntax, so e.g. an inline trace and a trace_file
// reference to the same content agree.
func (s *Spec) CanonicalString() (string, error) {
	cfgs, err := s.Configs()
	if err != nil {
		return "", err
	}
	n := s.Normalize()
	var b strings.Builder
	b.WriteString("scenario/v1\n")
	fmt.Fprintf(&b, "name=%s\n", n.Name)
	fmt.Fprintf(&b, "runs=%d\n", n.Runs)
	fmt.Fprintf(&b, "seed=%d\n", n.Seed)
	canonicalMachine(&b, n.Machine)
	for _, c := range cfgs {
		fmt.Fprintf(&b, "config=%s|%s\n", c.Label, c.Policy)
		for _, line := range strings.SplitAfter(c.Platform.CanonicalString(), "\n") {
			if line == "" {
				continue
			}
			b.WriteString("  ")
			b.WriteString(line)
		}
	}
	return b.String(), nil
}
