package policy

import (
	"sort"

	"pckpt/internal/failure"
	"pckpt/internal/queue"
)

// Event aliases the failure-stream event type: the policy hooks consume
// the same events the tiers inject, without re-modelling them.
type Event = failure.Event

// Prediction is one outstanding true prediction as the lifecycle state
// tracks it.
type Prediction struct {
	Node   int
	FailAt float64
	Lead   float64
}

// Migration is one in-flight live migration. The tier schedules its
// completion callback; the state machine owns the abort flag so a p-ckpt
// episode or a failure can void it (Fig. 5).
type Migration struct {
	Ev      failure.Event
	Aborted bool
}

// Episode is a live p-ckpt episode: the lead-time priority queue of
// vulnerable nodes (used by the application-level tier; the node tier
// realises the ordering as a priority resource instead), the progress the
// episode snapshots, and its commit/abandon bookkeeping.
type Episode struct {
	Q             queue.PQ[failure.Event]
	StartProgress float64
	Committed     int
	Abandoned     bool
}

// FailureOutcome reports what FailureStruck did, for the tier's
// accounting.
type FailureOutcome struct {
	// MigrationAborted is true when the failed node died mid-migration.
	MigrationAborted bool
	// Mitigated is true when a proactive checkpoint covered this failure;
	// MitigatedAt is the PFS-recoverable progress it committed.
	Mitigated   bool
	MitigatedAt float64
}

// State is the C/R lifecycle state machine both simulation tiers share:
// fail-epoch voiding of blocked activities, BB→PFS drain generations,
// checkpoint placement, episodes, migrations, and the prediction /
// mitigation / avoidance ledgers. The tiers keep only genuinely
// tier-specific state (simulated processes, cluster membership, banked
// compute) next to it.
type State struct {
	// epoch increments on every failure. A blocking activity (BB write,
	// safeguard, episode write, recovery) that observes the epoch change
	// mid-wait is void: the state it was saving rolled back. A counter
	// (not a flag) so that nested handling — a recovery running inside
	// the interrupted activity's wait — cannot mask the abort.
	epoch int
	// rescheduled is raised when a proactive action committed a full
	// checkpoint, so the compute loop re-bases its next periodic one.
	rescheduled bool
	// bbProgress / pfsProgress are the newest BB-staged and fully
	// PFS-resident coordinated checkpoints (-1 = none yet).
	bbProgress  float64
	pfsProgress float64
	// drainGen / drainsInFlight: each BB write restarts the drain of the
	// newest data; superseded drains count as in flight until their
	// completion callback runs (the drain queue depth metrics track).
	drainGen       int
	drainsInFlight int

	// pfsGens retains the progress values of superseded PFS-resident
	// generations (ascending, newest last, capped at maxPFSGens), so a
	// restart on a degraded platform can fall back past a corrupt newest
	// generation instead of losing everything.
	pfsGens []float64
	// corruptGens marks committed checkpoint generations (keyed by their
	// progress value) that the platform silently tore at commit time. The
	// marks are invisible to the running job — they are consulted, and the
	// damage discovered, only inside ResolveRestart. Nil unless fault
	// injection marks something.
	corruptGens map[float64]bool

	predicted   map[int64]Prediction // outstanding true predictions
	mitigatedAt map[int64]float64    // failure ID → PFS-recoverable progress
	avoided     map[int64]bool       // failure IDs neutralised by LM
	migrations  map[int]*Migration   // node → in-flight migration
	episode     *Episode             // non-nil while a p-ckpt episode runs
}

// maxPFSGens caps the retained superseded-generation history. Eight
// generations of fallback is far beyond any plausible corruption streak;
// the cap keeps State allocation bounded on long runs.
const maxPFSGens = 8

// NewState returns the start-of-run lifecycle state.
func NewState() *State {
	return &State{
		bbProgress:  -1,
		pfsProgress: -1,
		predicted:   make(map[int64]Prediction),
		mitigatedAt: make(map[int64]float64),
		avoided:     make(map[int64]bool),
		migrations:  make(map[int]*Migration),
	}
}

// Epoch returns the current fail epoch. Blocking activities snapshot it
// before waiting and treat a change as "this activity is void".
func (s *State) Epoch() int { return s.epoch }

// RecordPrediction records an outstanding true prediction.
func (s *State) RecordPrediction(id int64, p Prediction) { s.predicted[id] = p }

// ForgetPrediction drops a prediction (failure struck, or LM avoided it).
func (s *State) ForgetPrediction(id int64) { delete(s.predicted, id) }

// EachPrediction visits every outstanding prediction (M1's safeguard
// marks all those whose failure has not struck yet as mitigated).
func (s *State) EachPrediction(fn func(id int64, p Prediction)) {
	for id, p := range s.predicted {
		fn(id, p)
	}
}

// Migrating reports whether node has a migration in flight.
func (s *State) Migrating(node int) bool { return s.migrations[node] != nil }

// StartMigration registers an in-flight migration for ev's node and
// returns its handle (the tier schedules the completion callback).
func (s *State) StartMigration(ev failure.Event) *Migration {
	m := &Migration{Ev: ev}
	s.migrations[ev.Node] = m
	return m
}

// FinishMigration completes a migration at its scheduled time: it
// reports false if the migration was aborted meanwhile, otherwise it
// deregisters it and reports true (the tier then credits the avoidance).
func (s *State) FinishMigration(m *Migration) bool {
	if m.Aborted {
		return false
	}
	delete(s.migrations, m.Ev.Node)
	return true
}

// AbortMigrations cancels every in-flight migration (a p-ckpt request
// supersedes them per the Fig. 5 state diagram), invoking each for every
// cancelled migration's originating event so the tier can account the
// abort and requeue the node as vulnerable. Visits are in ascending node
// order — not map order — so the requeue order (and with it trace
// timelines and deadline-tie resolution) is identical on every tier and
// every run.
func (s *State) AbortMigrations(each func(ev failure.Event)) {
	nodes := make([]int, 0, len(s.migrations))
	for node := range s.migrations {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	for _, node := range nodes {
		m := s.migrations[node]
		m.Aborted = true
		delete(s.migrations, node)
		each(m.Ev)
	}
}

// BeginEpisode opens a p-ckpt episode snapshotting the given progress.
func (s *State) BeginEpisode(progress float64) *Episode {
	s.episode = &Episode{StartProgress: progress}
	return s.episode
}

// Episode returns the live episode, or nil.
func (s *State) Episode() *Episode { return s.episode }

// EndEpisode closes the live episode (deferred by the tier's episode
// runner, completed or abandoned alike).
func (s *State) EndEpisode() { s.episode = nil }

// MarkAvoided records that a completed live migration neutralised the
// failure with this ID; the injector will swallow it.
func (s *State) MarkAvoided(id int64) { s.avoided[id] = true }

// ConsumeAvoided reports and clears the avoidance mark for a failure.
func (s *State) ConsumeAvoided(id int64) bool {
	if !s.avoided[id] {
		return false
	}
	delete(s.avoided, id)
	return true
}

// Mitigate records that a proactive checkpoint committed the state at
// progress before the predicted failure with this ID struck.
func (s *State) Mitigate(id int64, progress float64) { s.mitigatedAt[id] = progress }

// FailureStruck applies the model-independent failure transition: the
// prediction ledger forgets the failure, the node's in-flight migration
// (if any) aborts, the live episode (if any) is abandoned, the fail
// epoch advances (voiding every blocked activity), and the mitigation —
// if one covered this failure — is taken exactly once.
func (s *State) FailureStruck(ev failure.Event) FailureOutcome {
	var out FailureOutcome
	delete(s.predicted, ev.ID)
	if m := s.migrations[ev.Node]; m != nil {
		// The node died mid-migration (only possible for a second,
		// unpredicted failure, or an under-lead race): the migration is
		// void.
		m.Aborted = true
		delete(s.migrations, ev.Node)
		out.MigrationAborted = true
	}
	if s.episode != nil {
		s.episode.Abandoned = true
	}
	s.epoch++
	if q, ok := s.mitigatedAt[ev.ID]; ok {
		delete(s.mitigatedAt, ev.ID)
		out.Mitigated, out.MitigatedAt = true, q
	}
	return out
}

// BeginDrain starts the asynchronous BB→PFS drain of the newest
// coordinated checkpoint, superseding any drain still in flight. It
// returns the new drain generation and the updated in-flight depth.
func (s *State) BeginDrain() (gen, depth int) {
	s.drainGen++
	s.drainsInFlight++
	return s.drainGen, s.drainsInFlight
}

// FinishDrain completes a drain at its scheduled time, returning the
// updated depth and whether the drain is still current (a newer BB write
// supersedes older drains; each write restarts the drain of the newest
// data).
func (s *State) FinishDrain(gen int) (depth int, current bool) {
	s.drainsInFlight--
	return s.drainsInFlight, gen == s.drainGen
}

// DrainsInFlight returns the current drain queue depth.
func (s *State) DrainsInFlight() int { return s.drainsInFlight }

// CommitBB records a coordinated checkpoint at progress as staged on the
// burst buffers.
func (s *State) CommitBB(progress float64) { s.bbProgress = progress }

// CommitPFS records a full-application checkpoint at progress as
// PFS-resident, if it is newer than the one already there; it reports
// whether the placement advanced. The superseded generation is retained
// (capped) so ResolveRestart can fall back to it if the newer one turns
// out corrupt.
func (s *State) CommitPFS(progress float64) bool {
	if progress > s.pfsProgress {
		if s.pfsProgress >= 0 {
			s.pfsGens = append(s.pfsGens, s.pfsProgress)
			if len(s.pfsGens) > maxPFSGens {
				s.pfsGens = s.pfsGens[1:]
			}
		}
		s.pfsProgress = progress
		return true
	}
	return false
}

// BBProgress returns the newest BB-staged progress (-1 = none).
func (s *State) BBProgress() float64 { return s.bbProgress }

// PFSProgress returns the newest PFS-resident progress (-1 = none).
func (s *State) PFSProgress() float64 { return s.pfsProgress }

// MarkRescheduled raises the adaptive-schedule flag after a proactive
// full-PFS commit.
func (s *State) MarkRescheduled() { s.rescheduled = true }

// TakeRescheduled reports and clears the adaptive-schedule flag.
func (s *State) TakeRescheduled() bool {
	r := s.rescheduled
	s.rescheduled = false
	return r
}

// MarkCorrupt records that the committed checkpoint generation at
// progress was silently torn by the platform (fault injection draws this
// at commit time). The running job cannot see the mark; only
// ResolveRestart consults it.
func (s *State) MarkCorrupt(progress float64) {
	if s.corruptGens == nil {
		s.corruptGens = make(map[float64]bool)
	}
	s.corruptGens[progress] = true
}

// RetainedPFSGenerations returns how many superseded PFS generations are
// retained as fallback candidates.
func (s *State) RetainedPFSGenerations() int { return len(s.pfsGens) }

// dropGeneration discards a checkpoint generation discovered corrupt: if
// it was the newest PFS placement, the newest retained older generation
// takes its place (or none remains); otherwise it is removed from the
// retained history. The corruption mark is consumed with it.
func (s *State) dropGeneration(progress float64) {
	delete(s.corruptGens, progress)
	if progress == s.pfsProgress {
		if n := len(s.pfsGens); n > 0 {
			s.pfsProgress = s.pfsGens[n-1]
			s.pfsGens = s.pfsGens[:n-1]
		} else {
			s.pfsProgress = -1
		}
		return
	}
	for i := len(s.pfsGens) - 1; i >= 0; i-- {
		if s.pfsGens[i] == progress {
			s.pfsGens = append(s.pfsGens[:i], s.pfsGens[i+1:]...)
			return
		}
	}
}

// newestGenBelow returns the newest PFS-resident generation strictly
// older than progress — the current placement or a retained one — or -1
// if none remains. (The tier's candidate q can be a newer BB-resident
// generation, in which case the newest PFS placement is itself a
// fallback candidate.)
func (s *State) newestGenBelow(progress float64) float64 {
	best := -1.0
	if s.pfsProgress < progress {
		best = s.pfsProgress
	}
	for _, g := range s.pfsGens {
		if g < progress && g > best {
			best = g
		}
	}
	return best
}

// BestRestart resolves the restart point after a failure: the proactive
// commit that mitigated it, or the tier's newest consistent checkpoint
// progress q — whichever is fresher. It returns the restart progress
// (clamped to 0: no checkpoint yet restarts from the beginning) and
// whether recovery restores every node from the PFS (the mitigated path,
// Sec. II) rather than the BB-assisted path.
func BestRestart(q float64, out FailureOutcome) (progress float64, fromPFS bool) {
	if out.Mitigated && out.MitigatedAt >= q {
		q = out.MitigatedAt
		fromPFS = true
	}
	if q < 0 {
		q = 0
	}
	return q, fromPFS
}

// ResolveRestart is BestRestart on a possibly-degraded platform: it
// walks the restart candidates newest-first — the mitigated proactive
// commit when it covers q, then the tier's checkpoint at q, then the
// retained older PFS generations — discarding every candidate whose
// generation carries a silent-corruption mark. Each discarded candidate
// is a restore attempt that read a torn checkpoint (the tier charges it
// as recovery time); discovered-corrupt generations are dropped from the
// state so no later restart tries them again. Restarting from the
// beginning needs no checkpoint and always succeeds. With no corruption
// marks the result is exactly BestRestart's.
func (s *State) ResolveRestart(q float64, out FailureOutcome) (progress float64, fromPFS bool, corrupted int) {
	if out.Mitigated && out.MitigatedAt >= q {
		if !s.corruptGens[out.MitigatedAt] {
			p := out.MitigatedAt
			if p < 0 {
				p = 0
			}
			return p, true, corrupted
		}
		corrupted++
		s.dropGeneration(out.MitigatedAt)
	}
	if q >= 0 {
		if !s.corruptGens[q] {
			return q, false, corrupted
		}
		corrupted++
		s.dropGeneration(q)
		for {
			g := s.newestGenBelow(q)
			if g < 0 {
				break
			}
			if !s.corruptGens[g] {
				return g, true, corrupted
			}
			corrupted++
			s.dropGeneration(g)
		}
	}
	return 0, false, corrupted
}
