package policy

import (
	"testing"

	"pckpt/internal/failure"
)

func TestCatalogue(t *testing.T) {
	if got := len(All()); got != 5 {
		t.Fatalf("catalogue has %d entries, want 5", got)
	}
	names := map[ID]string{B: "B", M1: "M1", M2: "M2", P1: "P1", P2: "P2"}
	for id, want := range names {
		if id.String() != want {
			t.Errorf("%d.String() = %q, want %q", uint8(id), id.String(), want)
		}
		back, err := ByName(want)
		if err != nil || back != id {
			t.Errorf("ByName(%q) = %v, %v", want, back, err)
		}
		if !id.Valid() {
			t.Errorf("%v not Valid", id)
		}
	}
	if _, err := ByName("X9"); err == nil {
		t.Error("ByName accepted an unknown model")
	}
	if ID(9).Valid() {
		t.Error("out-of-range ID reported Valid")
	}
	labels := map[ID]string{B: "base", M1: "", M2: "", P1: "p-ckpt", P2: "hybrid"}
	for id, want := range labels {
		if id.NodeLabel() != want {
			t.Errorf("%v.NodeLabel() = %q, want %q", id, id.NodeLabel(), want)
		}
	}
}

func TestCapabilityPredicates(t *testing.T) {
	type caps struct{ pred, lm, pckpt, safeguard bool }
	want := map[ID]caps{
		B:  {false, false, false, false},
		M1: {true, false, false, true},
		M2: {true, true, false, false},
		P1: {true, false, true, false},
		P2: {true, true, true, false},
	}
	for id, w := range want {
		got := caps{id.UsesPrediction(), id.UsesLM(), id.UsesPckpt(), id.UsesSafeguard()}
		if got != w {
			t.Errorf("%v capabilities = %+v, want %+v", id, got, w)
		}
	}
}

func TestStateFailureStrikesVoidEpoch(t *testing.T) {
	s := NewState()
	epoch := s.Epoch()
	s.RecordPrediction(7, Prediction{Node: 3, FailAt: 100, Lead: 50})
	var outstanding int
	s.EachPrediction(func(id int64, p Prediction) { outstanding++ })
	if outstanding != 1 {
		t.Fatal("prediction not recorded")
	}
	out := For(P2).OnFailure(s, Event{ID: 7, Node: 3, Kind: failure.KindFailure})
	if s.Epoch() == epoch {
		t.Error("failure did not advance the fail epoch")
	}
	outstanding = 0
	s.EachPrediction(func(id int64, p Prediction) { outstanding++ })
	if outstanding != 0 {
		t.Error("struck failure's prediction still outstanding")
	}
	q, fromPFS := BestRestart(40, out)
	if q != 40 || fromPFS {
		t.Errorf("BestRestart(40, unmitigated) = %v, %v", q, fromPFS)
	}
	s.Mitigate(8, 75)
	out = For(P2).OnFailure(s, Event{ID: 8, Node: 4, Kind: failure.KindFailure})
	if q, fromPFS = BestRestart(40, out); q != 75 || !fromPFS {
		t.Errorf("BestRestart(40, mitigated@75) = %v, %v, want 75 from PFS", q, fromPFS)
	}
}

func TestForPanicsOnUnknownID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("For(9) did not panic")
		}
	}()
	For(ID(9))
}
