// Package policy is the single source of truth for the paper's C/R model
// catalogue (B, M1, M2, P1, P2) and the proactive strategy each model
// applies. Both simulation tiers — the application-level model in
// internal/crmodel and the node-granular simulator in internal/nodesim —
// consume this package, so a model's identity, labels, capabilities, and
// prediction-time decisions exist exactly once.
//
// The package has three parts:
//
//   - ID: the catalogue (names, labels, capability predicates, parsing);
//   - Policy: the strategy interface with prediction/failure hooks, with
//     one implementation per model (For);
//   - State: the shared C/R lifecycle state machine (fail-epoch voiding,
//     drain generations, episodes, migrations, predictions) that the
//     tiers previously duplicated as ad-hoc counters (see state.go).
package policy

import "fmt"

// ID identifies a C/R model in the catalogue.
type ID uint8

const (
	// B is the base model: periodic BB checkpointing with asynchronous
	// PFS drain, no failure prediction.
	B ID = iota
	// M1 adds safeguard checkpointing on prediction (Bouguerra et al.).
	M1
	// M2 adds live migration on prediction (Behera et al.).
	M2
	// P1 adds coordinated prioritized checkpointing (p-ckpt).
	P1
	// P2 is the hybrid: LM preferred, p-ckpt fallback with LM abort.
	P2
)

// All lists the catalogue in the paper's presentation order.
func All() []ID { return []ID{B, M1, M2, P1, P2} }

// String implements fmt.Stringer with the paper's model names.
func (id ID) String() string {
	switch id {
	case B:
		return "B"
	case M1:
		return "M1"
	case M2:
		return "M2"
	case P1:
		return "P1"
	case P2:
		return "P2"
	default:
		return fmt.Sprintf("Model(%d)", uint8(id))
	}
}

// NodeLabel returns the label the node-granular tier uses for the models
// it implements ("base", "p-ckpt", "hybrid"), or "" for models outside
// that tier's subset. Metrics series and table rows of internal/nodesim
// key on these labels.
func (id ID) NodeLabel() string {
	switch id {
	case B:
		return "base"
	case P1:
		return "p-ckpt"
	case P2:
		return "hybrid"
	default:
		return ""
	}
}

// ByName parses a model name ("B", "M1", ...).
func ByName(name string) (ID, error) {
	for _, id := range All() {
		if id.String() == name {
			return id, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown model %q", name)
}

// Valid reports whether id is in the catalogue.
func (id ID) Valid() bool { return id <= P2 }

// UsesPrediction reports whether the model reacts to predictions.
func (id ID) UsesPrediction() bool { return id != B }

// UsesLM reports whether the model can live-migrate.
func (id ID) UsesLM() bool { return id == M2 || id == P2 }

// UsesPckpt reports whether the model can run the p-ckpt protocol.
func (id ID) UsesPckpt() bool { return id == P1 || id == P2 }

// UsesSafeguard reports whether the model takes safeguard checkpoints.
func (id ID) UsesSafeguard() bool { return id == M1 }

// Action is a strategy's prediction-time decision. The tier executes it
// with its own machinery (blocking episode vs priority lane, cluster
// bookkeeping, tracing); the decision itself is tier-independent.
type Action uint8

const (
	// ActNone takes no proactive action (model B; M2 under-lead; any
	// pckpt model while its episode is abandoned mid-recovery).
	ActNone Action = iota
	// ActMigrate starts a background live migration of the vulnerable
	// node (lead ≥ θ guarantees completion unless p-ckpt aborts it).
	ActMigrate
	// ActStartEpisode begins a p-ckpt episode with this prediction as the
	// first vulnerable node.
	ActStartEpisode
	// ActJoinEpisode adds the vulnerable node to the episode already in
	// progress (phase-1 priority queue / lane).
	ActJoinEpisode
	// ActSafeguard runs M1's all-node synchronous PFS checkpoint.
	ActSafeguard
)

// Policy is one C/R model's strategy: the prediction hook decides the
// proactive reaction against the shared lifecycle state, and the failure
// hook applies the (model-independent) failure transition. Obtain
// implementations with For.
type Policy interface {
	// ID returns the catalogue identity.
	ID() ID
	// OnPrediction decides the reaction to a prediction for node with the
	// given lead time, given the LM threshold theta.
	OnPrediction(s *State, node int, lead, theta float64) Action
	// OnFailure applies the shared failure transition (void in-flight
	// activities, abandon the episode, take the mitigation) and reports
	// what happened for the tier's accounting.
	OnFailure(s *State, ev Event) FailureOutcome
}

// common supplies the catalogue identity and the shared failure hook.
type common struct{ id ID }

func (c common) ID() ID                                      { return c.id }
func (c common) OnFailure(s *State, ev Event) FailureOutcome { return s.FailureStruck(ev) }

// baseline is model B: no proactive action, ever.
type baseline struct{ common }

func (baseline) OnPrediction(*State, int, float64, float64) Action { return ActNone }

// safeguard is model M1: every prediction triggers the all-node
// synchronous PFS checkpoint (the tier coalesces overlapping ones).
type safeguard struct{ common }

func (safeguard) OnPrediction(*State, int, float64, float64) Action { return ActSafeguard }

// migrate is model M2: live-migrate when the lead time covers θ and the
// node is not already migrating; otherwise the failure will strike.
type migrate struct{ common }

func (migrate) OnPrediction(s *State, node int, lead, theta float64) Action {
	if lead >= theta && !s.Migrating(node) {
		return ActMigrate
	}
	return ActNone
}

// pckpt is models P1 and P2: join a live episode when one is accepting
// work, otherwise (for the hybrid) prefer live migration when the lead
// covers θ, otherwise start an episode. Abandoned episodes accept no
// work — the prediction goes unserved, as on a real system mid-recovery.
type pckpt struct {
	common
	hybrid bool
}

func (p pckpt) OnPrediction(s *State, node int, lead, theta float64) Action {
	if ep := s.Episode(); ep != nil {
		if ep.Abandoned {
			return ActNone
		}
		return ActJoinEpisode
	}
	if p.hybrid && lead >= theta && !s.Migrating(node) {
		return ActMigrate
	}
	return ActStartEpisode
}

// For returns the strategy implementation for a catalogue ID. It panics
// on an ID outside the catalogue (configs are validated before use).
func For(id ID) Policy {
	switch id {
	case B:
		return baseline{common{B}}
	case M1:
		return safeguard{common{M1}}
	case M2:
		return migrate{common{M2}}
	case P1:
		return pckpt{common{P1}, false}
	case P2:
		return pckpt{common{P2}, true}
	default:
		panic(fmt.Sprintf("policy: no strategy for %v", id))
	}
}
