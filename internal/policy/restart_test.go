package policy

import "testing"

func TestBestRestartNoCheckpoint(t *testing.T) {
	// No checkpoint anywhere: restart from the beginning off the PFS-less
	// path.
	p, fromPFS := BestRestart(-1, FailureOutcome{})
	if p != 0 || fromPFS {
		t.Fatalf("BestRestart(-1, none) = (%g, %v), want (0, false)", p, fromPFS)
	}
}

func TestBestRestartMitigatedWins(t *testing.T) {
	p, fromPFS := BestRestart(100, FailureOutcome{Mitigated: true, MitigatedAt: 250})
	if p != 250 || !fromPFS {
		t.Fatalf("mitigated restart = (%g, %v), want (250, true)", p, fromPFS)
	}
	// A stale mitigation (older than the coordinated checkpoint) loses.
	p, fromPFS = BestRestart(300, FailureOutcome{Mitigated: true, MitigatedAt: 250})
	if p != 300 || fromPFS {
		t.Fatalf("stale mitigation = (%g, %v), want (300, false)", p, fromPFS)
	}
}

func TestResolveRestartMatchesBestRestartWithoutCorruption(t *testing.T) {
	cases := []struct {
		q   float64
		out FailureOutcome
	}{
		{-1, FailureOutcome{}},
		{0, FailureOutcome{}},
		{120, FailureOutcome{}},
		{100, FailureOutcome{Mitigated: true, MitigatedAt: 250}},
		{300, FailureOutcome{Mitigated: true, MitigatedAt: 250}},
		{-1, FailureOutcome{Mitigated: true, MitigatedAt: -1}},
	}
	for _, tc := range cases {
		s := NewState()
		wantP, wantPFS := BestRestart(tc.q, tc.out)
		p, fromPFS, corrupted := s.ResolveRestart(tc.q, tc.out)
		if p != wantP || fromPFS != wantPFS || corrupted != 0 {
			t.Errorf("ResolveRestart(%g, %+v) = (%g, %v, %d), want BestRestart's (%g, %v, 0)",
				tc.q, tc.out, p, fromPFS, corrupted, wantP, wantPFS)
		}
	}
}

func TestResolveRestartCorruptNewestFallsBackToOlder(t *testing.T) {
	s := NewState()
	s.CommitPFS(100)
	s.CommitPFS(200)
	if got := s.RetainedPFSGenerations(); got != 1 {
		t.Fatalf("retained generations = %d, want 1", got)
	}
	s.MarkCorrupt(200)
	p, fromPFS, corrupted := s.ResolveRestart(200, FailureOutcome{})
	if p != 100 || !fromPFS || corrupted != 1 {
		t.Fatalf("corrupt-newest restart = (%g, %v, %d), want (100, true, 1)", p, fromPFS, corrupted)
	}
	// The corrupt generation is gone for good: a second failure resolves
	// against the survivor without re-discovering anything.
	p, fromPFS, corrupted = s.ResolveRestart(s.PFSProgress(), FailureOutcome{})
	if p != 100 || fromPFS || corrupted != 0 {
		t.Fatalf("post-drop restart = (%g, %v, %d), want (100, false, 0)", p, fromPFS, corrupted)
	}
}

func TestResolveRestartAllCorruptRestartsFromZero(t *testing.T) {
	s := NewState()
	s.CommitPFS(100)
	s.CommitPFS(200)
	s.MarkCorrupt(100)
	s.MarkCorrupt(200)
	p, fromPFS, corrupted := s.ResolveRestart(200, FailureOutcome{})
	if p != 0 || fromPFS || corrupted != 2 {
		t.Fatalf("all-corrupt restart = (%g, %v, %d), want (0, false, 2)", p, fromPFS, corrupted)
	}
	if s.PFSProgress() != -1 || s.RetainedPFSGenerations() != 0 {
		t.Fatalf("corrupt generations not dropped: pfs=%g retained=%d", s.PFSProgress(), s.RetainedPFSGenerations())
	}
}

func TestResolveRestartCorruptMitigationFallsToCheckpoint(t *testing.T) {
	s := NewState()
	s.CommitPFS(150)
	s.CommitPFS(250)
	s.MarkCorrupt(250)
	// The proactive commit at 250 mitigated the failure but tore; the
	// restart falls back to the coordinated checkpoint at q.
	p, fromPFS, corrupted := s.ResolveRestart(150, FailureOutcome{Mitigated: true, MitigatedAt: 250})
	if p != 150 || fromPFS || corrupted != 1 {
		t.Fatalf("corrupt-mitigation restart = (%g, %v, %d), want (150, false, 1)", p, fromPFS, corrupted)
	}
}

// TestResolveRestartUndrainedBBGeneration is the paper's Fig. 1 case B on
// a degraded platform: the newest coordinated checkpoint is BB-resident
// but not yet drained, so the tier's consistent restart point q is the
// BB generation — newer than anything PFS-resident. If that generation
// reads corrupt, the fallback is the newest PFS placement itself.
func TestResolveRestartUndrainedBBGeneration(t *testing.T) {
	s := NewState()
	s.CommitPFS(100)
	s.CommitBB(300) // staged, drain still in flight
	s.MarkCorrupt(300)
	p, fromPFS, corrupted := s.ResolveRestart(300, FailureOutcome{})
	if p != 100 || !fromPFS || corrupted != 1 {
		t.Fatalf("undrained-BB fallback = (%g, %v, %d), want (100, true, 1)", p, fromPFS, corrupted)
	}
}

func TestCommitPFSRetentionCap(t *testing.T) {
	s := NewState()
	for i := 0; i <= maxPFSGens+3; i++ {
		s.CommitPFS(float64((i + 1) * 10))
	}
	if got := s.RetainedPFSGenerations(); got != maxPFSGens {
		t.Fatalf("retained %d generations, want cap %d", got, maxPFSGens)
	}
	// A non-advancing commit neither replaces nor retains.
	if s.CommitPFS(5) {
		t.Fatal("older commit advanced the placement")
	}
}
