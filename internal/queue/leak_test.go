package queue

import "testing"

// staleTail counts non-nil pointers lingering in the backing array beyond
// the queue's logical length — entries the queue no longer owns but whose
// references it would be keeping alive.
func staleTail(q *PQ[*int]) int {
	stale := 0
	for _, it := range q.items[len(q.items):cap(q.items)] {
		if it.val != nil {
			stale++
		}
	}
	return stale
}

// TestPopReleasesSlot guards against the stale-reference leak this PR
// fixed: Pop shrank the slice but left the vacated tail slot populated,
// pinning the popped element for as long as the queue lived. With a
// pointer element type every vacated slot must be zero.
func TestPopReleasesSlot(t *testing.T) {
	var q PQ[*int]
	for i := 0; i < 16; i++ {
		v := i
		q.Push(float64(i), &v)
	}
	for i := 0; i < 16; i++ {
		q.Pop()
		if n := staleTail(&q); n != 0 {
			t.Fatalf("after pop %d: %d stale pointer(s) in the backing array", i, n)
		}
	}
}

func TestRemoveFuncReleasesTail(t *testing.T) {
	var q PQ[*int]
	for i := 0; i < 32; i++ {
		v := i
		q.Push(float64(i%7), &v)
	}
	removed := q.RemoveFunc(func(v *int) bool { return *v%2 == 0 })
	if removed != 16 {
		t.Fatalf("removed %d, want 16", removed)
	}
	if n := staleTail(&q); n != 0 {
		t.Fatalf("%d stale pointer(s) behind the filtered queue", n)
	}
	// The survivors still drain in key order.
	prev := -1.0
	for q.Len() > 0 {
		k, v := q.Pop()
		if k < prev {
			t.Fatalf("heap order broken after RemoveFunc: %g after %g", k, prev)
		}
		if *v%2 == 0 {
			t.Fatalf("removed value %d still queued", *v)
		}
		prev = k
	}
}

func TestClearReleasesSlots(t *testing.T) {
	var q PQ[*int]
	for i := 0; i < 8; i++ {
		v := i
		q.Push(float64(i), &v)
	}
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Len after Clear = %d", q.Len())
	}
	if n := staleTail(&q); n != 0 {
		t.Fatalf("%d stale pointer(s) survive Clear", n)
	}
}
