// Package queue provides the priority-queue machinery shared by the
// discrete-event simulator (its event heap) and the p-ckpt protocol (the
// node-local lead-time priority queue of Sec. VI of the paper).
//
// Both queues need stable behaviour under equal keys: simultaneous
// simulation events must fire in schedule order for determinism, and two
// vulnerable nodes predicted to fail at the same instant must drain in
// arrival order. PQ therefore breaks ties by an internal monotonically
// increasing sequence number.
package queue

// PQ is a stable binary-heap priority queue. Items with smaller keys are
// popped first; equal keys pop in insertion order. The zero value is an
// empty, ready-to-use queue.
type PQ[T any] struct {
	items []pqItem[T]
	seq   uint64
}

type pqItem[T any] struct {
	key float64
	seq uint64
	val T
}

// Len returns the number of queued items.
func (q *PQ[T]) Len() int { return len(q.items) }

// Push inserts val with the given key.
func (q *PQ[T]) Push(key float64, val T) {
	q.seq++
	q.items = append(q.items, pqItem[T]{key: key, seq: q.seq, val: val})
	q.up(len(q.items) - 1)
}

// Pop removes and returns the item with the smallest key (ties broken by
// insertion order) along with its key. It panics on an empty queue.
func (q *PQ[T]) Pop() (key float64, val T) {
	if len(q.items) == 0 {
		panic("queue: Pop from empty PQ")
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	// Zero the vacated tail slot: the backing array outlives the pop, and a
	// stale value there would pin the popped element for the GC (pointer
	// element types) for as long as the queue lives.
	q.items[last] = pqItem[T]{}
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top.key, top.val
}

// Peek returns the smallest-key item without removing it. The boolean is
// false when the queue is empty.
func (q *PQ[T]) Peek() (key float64, val T, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return 0, zero, false
	}
	return q.items[0].key, q.items[0].val, true
}

// Clear removes all items but keeps the backing storage for reuse. The
// vacated slots are zeroed so cleared values do not linger in the backing
// array.
func (q *PQ[T]) Clear() {
	for i := range q.items {
		q.items[i] = pqItem[T]{}
	}
	q.items = q.items[:0]
}

// RemoveFunc removes every queued item for which match returns true and
// returns how many were removed. The p-ckpt protocol uses it to retract a
// node's pending entry when its prediction is superseded. The operation
// re-establishes the heap invariant afterwards.
func (q *PQ[T]) RemoveFunc(match func(val T) bool) int {
	kept := q.items[:0]
	removed := 0
	for _, it := range q.items {
		if match(it.val) {
			removed++
		} else {
			kept = append(kept, it)
		}
	}
	// kept aliases the head of the same backing array; zero the tail it no
	// longer covers so removed values are not retained.
	for i := len(kept); i < len(q.items); i++ {
		q.items[i] = pqItem[T]{}
	}
	q.items = kept
	if removed > 0 {
		q.heapify()
	}
	return removed
}

// Items returns the queued values in heap (not sorted) order. Callers that
// need sorted order should Pop. Intended for diagnostics.
func (q *PQ[T]) Items() []T {
	out := make([]T, len(q.items))
	for i, it := range q.items {
		out[i] = it.val
	}
	return out
}

func (q *PQ[T]) less(i, j int) bool {
	if q.items[i].key != q.items[j].key {
		return q.items[i].key < q.items[j].key
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *PQ[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *PQ[T]) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}

func (q *PQ[T]) heapify() {
	for i := len(q.items)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}
