package queue

import "testing"

// BenchmarkHeapChurn exercises the simulator's steady state: a mid-size
// heap with interleaved pushes and pops (every simulated event is one of
// each).
func BenchmarkHeapChurn(b *testing.B) {
	var q PQ[int]
	for i := 0; i < 256; i++ {
		q.Push(float64(i*37%1024), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(float64(i*31%1024), i)
		q.Pop()
	}
}

// BenchmarkRemoveFuncSweep measures the compaction primitive: filtering a
// large heap and re-establishing the invariant, the cost model behind the
// engine's lazy-cancellation compaction threshold.
func BenchmarkRemoveFuncSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var q PQ[int]
		for k := 0; k < 4096; k++ {
			q.Push(float64(k*17%8192), k)
		}
		b.StartTimer()
		q.RemoveFunc(func(v int) bool { return v%2 == 0 })
	}
}

// BenchmarkPushPopPointer mirrors the event heap's actual element type
// (a pointer), so stale-slot retention and zeroing costs are visible.
func BenchmarkPushPopPointer(b *testing.B) {
	type entry struct{ at float64 }
	var q PQ[*entry]
	e := &entry{}
	for i := 0; i < 256; i++ {
		q.Push(float64(i*37%1024), e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(float64(i*31%1024), e)
		q.Pop()
	}
}
