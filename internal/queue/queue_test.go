package queue

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPopOrdersByKey(t *testing.T) {
	var q PQ[string]
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if _, v := q.Pop(); v != w {
			t.Fatalf("pop %d = %q, want %q", i, v, w)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after draining: len=%d", q.Len())
	}
}

func TestEqualKeysPopInInsertionOrder(t *testing.T) {
	var q PQ[int]
	for i := 0; i < 50; i++ {
		q.Push(7, i)
	}
	for i := 0; i < 50; i++ {
		if _, v := q.Pop(); v != i {
			t.Fatalf("tie-break violated: pop %d returned %d", i, v)
		}
	}
}

func TestPeek(t *testing.T) {
	var q PQ[string]
	if _, _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported ok")
	}
	q.Push(5, "x")
	q.Push(2, "y")
	k, v, ok := q.Peek()
	if !ok || k != 2 || v != "y" {
		t.Fatalf("Peek = (%v, %q, %v), want (2, y, true)", k, v, ok)
	}
	if q.Len() != 2 {
		t.Fatal("Peek must not remove items")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty queue did not panic")
		}
	}()
	var q PQ[int]
	q.Pop()
}

func TestRemoveFunc(t *testing.T) {
	var q PQ[int]
	for i := 0; i < 10; i++ {
		q.Push(float64(i), i)
	}
	removed := q.RemoveFunc(func(v int) bool { return v%2 == 0 })
	if removed != 5 {
		t.Fatalf("removed %d items, want 5", removed)
	}
	var got []int
	for q.Len() > 0 {
		_, v := q.Pop()
		got = append(got, v)
	}
	want := []int{1, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRemoveFuncNoMatch(t *testing.T) {
	var q PQ[int]
	q.Push(1, 1)
	if n := q.RemoveFunc(func(int) bool { return false }); n != 0 {
		t.Fatalf("removed %d, want 0", n)
	}
	if q.Len() != 1 {
		t.Fatal("queue mutated by no-op RemoveFunc")
	}
}

func TestClear(t *testing.T) {
	var q PQ[int]
	q.Push(1, 1)
	q.Push(2, 2)
	q.Clear()
	if q.Len() != 0 {
		t.Fatal("Clear left items behind")
	}
	// Tie-break sequencing must survive Clear.
	q.Push(5, 10)
	q.Push(5, 11)
	if _, v := q.Pop(); v != 10 {
		t.Fatal("tie-break broken after Clear")
	}
}

// TestHeapPropertyQuick drains random inputs and checks global sortedness,
// which is equivalent to the heap invariant holding at every step.
func TestHeapPropertyQuick(t *testing.T) {
	f := func(keys []float64) bool {
		var q PQ[float64]
		cleaned := make([]float64, 0, len(keys))
		for _, k := range keys {
			if math.IsNaN(k) {
				continue
			}
			q.Push(k, k)
			cleaned = append(cleaned, k)
		}
		sort.Float64s(cleaned)
		for _, want := range cleaned {
			k, v := q.Pop()
			if k != want || v != want {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRemoveFuncPreservesHeapQuick removes a random subset and verifies
// the survivors still drain in sorted order.
func TestRemoveFuncPreservesHeapQuick(t *testing.T) {
	f := func(keys []float64, mask uint64) bool {
		var q PQ[int]
		var keep []float64
		for i, k := range keys {
			if math.IsNaN(k) {
				continue
			}
			q.Push(k, i)
			if mask>>(uint(i)%64)&1 == 0 {
				keep = append(keep, k)
			}
		}
		q.RemoveFunc(func(v int) bool { return mask>>(uint(v)%64)&1 == 1 })
		sort.Float64s(keep)
		if q.Len() != len(keep) {
			return false
		}
		for _, want := range keep {
			k, _ := q.Pop()
			if k != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestItems(t *testing.T) {
	var q PQ[int]
	q.Push(2, 20)
	q.Push(1, 10)
	items := q.Items()
	if len(items) != 2 {
		t.Fatalf("Items returned %d entries, want 2", len(items))
	}
	sum := items[0] + items[1]
	if sum != 30 {
		t.Fatalf("Items content wrong: %v", items)
	}
	if q.Len() != 2 {
		t.Fatal("Items must not consume the queue")
	}
}

func BenchmarkPushPop(b *testing.B) {
	var q PQ[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(float64(i%1024), i)
		if q.Len() > 512 {
			q.Pop()
		}
	}
}
