package platform

import (
	"strings"
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/iomodel"
	"pckpt/internal/lm"
	"pckpt/internal/workload"
)

func testConfig() Config {
	return Config{App: workload.Summit()[0], System: failure.Titan}
}

// The canonical rendering must not distinguish a zero field from its
// explicit default — otherwise the same simulation would hash to two
// cache entries.
func TestCanonicalStringDefaultInsensitive(t *testing.T) {
	zero := testConfig()
	explicit := testConfig()
	explicit.IO = iomodel.New(iomodel.DefaultSummit())
	explicit.LM = lm.Default()
	explicit.Leads = failure.DefaultLeadTimes()
	explicit.LeadScale = 1
	explicit.FNRate = failure.DefaultFNRate
	explicit.FPRate = failure.DefaultFPRate
	explicit.OCIRefreshSeconds = 3600
	if zero.CanonicalString() != explicit.CanonicalString() {
		t.Fatalf("zero-valued and explicitly defaulted configs render differently:\n%s\nvs\n%s",
			zero.CanonicalString(), explicit.CanonicalString())
	}
}

// Every simulation-relevant field must perturb the rendering.
func TestCanonicalStringSensitivity(t *testing.T) {
	base := testConfig().CanonicalString()
	mutations := map[string]func(*Config){
		"app":            func(c *Config) { c.App = workload.Summit()[1] },
		"app-nodes":      func(c *Config) { c.App.Nodes++ },
		"system":         func(c *Config) { c.System = failure.LANLSystem18 },
		"system-shape":   func(c *Config) { c.System.Shape += 0.001 },
		"spare-nodes":    func(c *Config) { c.SpareNodes = 3 },
		"lm-alpha":       func(c *Config) { c.LM = lm.Default().WithAlpha(2.5) },
		"lead-scale":     func(c *Config) { c.LeadScale = 1.1 },
		"fn-rate":        func(c *Config) { c.FNRate = 0.3 },
		"fp-rate":        func(c *Config) { c.FPRate = 0.01 },
		"perfect":        func(c *Config) { c.PerfectPredictor = true },
		"oci-refresh":    func(c *Config) { c.OCIRefreshSeconds = 60 },
		"accuracy-aware": func(c *Config) { c.AccuracyAwareSigma = true },
		"io": func(c *Config) {
			io := iomodel.DefaultSummit()
			io.BBWriteGBs *= 2
			c.IO = iomodel.New(io)
		},
		"leads": func(c *Config) { c.Leads = failure.DefaultLeadTimes().Scaled(2) },
		"faults": func(c *Config) {
			c.Faults = faultinject.Config{PFSWriteFailProb: 0.05}
		},
		"replay": func(c *Config) {
			c.Replay = &failure.Replay{
				Name: "t", Nodes: 1, HorizonSeconds: 10,
				Events: []failure.ReplayEvent{{T: 5}},
			}
		},
	}
	for name, mutate := range mutations {
		c := testConfig()
		mutate(&c)
		if got := c.CanonicalString(); got == base {
			t.Errorf("mutation %q does not change the canonical rendering", name)
		}
	}
}

// The rendering is versioned and stable across calls.
func TestCanonicalStringVersionedAndStable(t *testing.T) {
	c := testConfig()
	s := c.CanonicalString()
	if !strings.HasPrefix(s, "platform/v4\n") {
		t.Fatalf("missing version header: %q", s[:min(len(s), 40)])
	}
	if s != c.CanonicalString() {
		t.Fatal("rendering not stable across calls")
	}
}
