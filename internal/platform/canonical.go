package platform

import (
	"fmt"
	"strconv"
	"strings"
)

// CanonicalString renders the fully-defaulted configuration as a stable,
// newline-delimited key text. Two configurations that simulate
// identically render identically (WithDefaults is applied first, so a
// zero field and its explicit default agree), and every field that can
// change a simulation outcome is included — the rendering is the
// platform component of internal/runcache's content address. Floats are
// formatted shortest-round-trip, so distinct float64 values never
// collide. The layout is versioned: any change to the field set or
// formatting must bump the header line, which safely invalidates every
// previously stored cache entry.
func (c Config) CanonicalString() string {
	c = c.WithDefaults()
	var b strings.Builder
	io := c.IO.Config()
	b.WriteString("platform/v4\n")
	fmt.Fprintf(&b, "app=%s|%d|%s|%s\n", c.App.Name, c.App.Nodes, cf(c.App.TotalCkptGB), cf(c.App.ComputeHours))
	fmt.Fprintf(&b, "system=%s|%s|%s|%d\n", c.System.Name, cf(c.System.Shape), cf(c.System.ScaleHours), c.System.Nodes)
	fmt.Fprintf(&b, "spares=%d\n", c.SpareNodes)
	fmt.Fprintf(&b, "io=%s|%s|%s|%s|%s|%d|%d|%s|%s|%s|%d\n",
		cf(io.BBWriteGBs), cf(io.BBReadGBs), cf(io.NodePFSPeakGBs), cf(io.AggregatePFSCeilingGBs),
		cf(io.NetworkGBs), io.OptimalTasks, io.MaxTasks, cf(io.HalfSaturationGB),
		cf(io.DRAMSizeGB), cf(io.BBSizeGB), io.DrainConcurrency)
	fmt.Fprintf(&b, "lm=%s|%s|%s|%s\n", cf(c.LM.Alpha), cf(c.LM.RAMCapGB), cf(c.LM.NetworkGBs), cf(c.LM.Dilation))
	b.WriteString("leads=")
	for i, s := range c.Leads.Sequences() {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d:%s:%s:%s", s.ID, cf(s.Weight), cf(s.MeanLeadSec), cf(s.CV))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "leadscale=%s\n", cf(c.LeadScale))
	fmt.Fprintf(&b, "predictor=%s|%s|%t\n", cf(c.FNRate), cf(c.FPRate), c.PerfectPredictor)
	fmt.Fprintf(&b, "oci-refresh=%s\n", cf(c.OCIRefreshSeconds))
	fmt.Fprintf(&b, "accuracy-aware-sigma=%t\n", c.AccuracyAwareSigma)
	fmt.Fprintf(&b, "faults=%s|%s|%s|%s|%d|%s|%s\n",
		cf(c.Faults.BBWriteFailProb), cf(c.Faults.PFSWriteFailProb), cf(c.Faults.CorruptProb),
		cf(c.Faults.RestartFailProb), c.Faults.RestartRetries, cf(c.Faults.RestartBackoffSeconds),
		cf(c.Faults.CascadeProb))
	// A replayed trace is identified by its content digest: a replay run
	// can never collide with a parametric run, nor with a replay of any
	// other trace (the system/leads lines above alone would not
	// guarantee that — an explicit System override makes them equal).
	if c.Replay == nil {
		b.WriteString("replay=none\n")
	} else {
		fmt.Fprintf(&b, "replay=%s\n", c.Replay.Digest())
	}
	return b.String()
}

// cf formats a float64 with the smallest digit count that round-trips.
func cf(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
