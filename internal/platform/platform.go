// Package platform computes the paper's platform quantities — Eq. (2)'s
// σ, the LM threshold θ, BB/PFS write times, the asynchronous drain
// duration, and the two recovery paths — exactly once, from one unified
// configuration. Both simulation tiers (internal/crmodel at application
// granularity, internal/nodesim at node granularity) embed Config and
// consume Derived, so the quantities cannot drift between tiers: a
// matched pair of configurations yields byte-identical numbers by
// construction.
package platform

import (
	"fmt"
	"math"

	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/iomodel"
	"pckpt/internal/lm"
	"pckpt/internal/metrics"
	"pckpt/internal/workload"
)

// Config is the tier-independent platform configuration: application,
// failure system, I/O pricing, migration model, and predictor. The tiers
// embed it (adding only their model/policy selector and observers), so
// "defaults exactly like the other tier" is enforced by the type system.
type Config struct {
	// App is the application under test (Table I entry or custom).
	App workload.App
	// System supplies the failure distribution (Table III entry).
	System failure.System
	// SpareNodes is the reserve pool the resource manager backs the job
	// with: each node failure consumes one spare, and a failure arriving
	// after the pool is exhausted is job-fatal (the run ends truncated,
	// stats.RunResult.Truncated). Zero means effectively unbounded — the
	// paper's assumption that node recovery keeps spares available.
	SpareNodes int
	// IO prices every transfer; nil selects the default Summit model.
	IO *iomodel.Model
	// LM is the migration model; the zero value selects lm.Default().
	LM lm.Config
	// Leads is the lead-time model; nil selects the default mixture.
	Leads *failure.LeadTimeModel
	// LeadScale stretches lead times (1.0 if zero) — the variability
	// axis of Figs. 4 and 7.
	LeadScale float64
	// FNRate and FPRate configure the predictor. NOTE: the zero value
	// selects the defaults (0.125 / 0.18); to simulate a perfect
	// predictor set PerfectPredictor.
	FNRate, FPRate float64
	// PerfectPredictor forces FN = FP = 0.
	PerfectPredictor bool
	// OCIRefreshSeconds is how often the optimal checkpoint interval is
	// re-derived from the observed failure rate; zero selects hourly.
	OCIRefreshSeconds float64
	// AccuracyAwareSigma enables the extension the paper's Observation 9
	// proposes as future work: include the predictor's actual accuracy in
	// Eq. (2)'s σ, so the LM-assisted models stop overestimating their
	// coverage when the false-negative rate climbs. Off by default to
	// match the published models.
	AccuracyAwareSigma bool
	// Faults is the degraded-platform fault plan (checkpoint-write
	// failures, silent corruption, restart retries, recovery cascades).
	// The zero value is a perfect platform. See internal/faultinject.
	Faults faultinject.Config
	// Replay, when non-nil, replaces the parametric Weibull failure
	// source with a recorded failure trace (mined by internal/deshlog,
	// declared by an internal/scenario spec): both simulation tiers then
	// consume the trace through the same failure-stream interface. When
	// System is left zero it defaults to the trace's empirical rate, and
	// when Leads is left nil it defaults to the trace's mined lead-time
	// mixture, so σ, θ, and the OCI all track the replayed reality.
	Replay *failure.Replay
}

// WithDefaults returns a copy with zero fields defaulted. Idempotent.
func (c Config) WithDefaults() Config {
	if c.IO == nil {
		c.IO = iomodel.New(iomodel.DefaultSummit())
	}
	if c.LM == (lm.Config{}) {
		c.LM = lm.Default()
	}
	if c.Replay != nil && c.Replay.Validate() == nil {
		// Trace replay: the empirical trace, not a Table III row, is the
		// platform's failure reality — default the rate prior and the
		// lead-time mixture from it.
		if c.System == (failure.System{}) && c.App.Nodes > 0 {
			c.System = c.Replay.SyntheticSystem(c.App.Nodes)
		}
		if c.Leads == nil {
			c.Leads = c.Replay.LeadModel()
		}
	}
	if c.Leads == nil {
		c.Leads = failure.DefaultLeadTimes()
	}
	if c.LeadScale == 0 {
		c.LeadScale = 1
	}
	if c.PerfectPredictor {
		c.FNRate, c.FPRate = 0, 0
	} else {
		if c.FNRate == 0 {
			c.FNRate = failure.DefaultFNRate
		}
		if c.FPRate == 0 {
			c.FPRate = failure.DefaultFPRate
		}
	}
	if c.OCIRefreshSeconds == 0 {
		c.OCIRefreshSeconds = 3600
	}
	c.Faults = c.Faults.WithDefaults()
	return c
}

// Validate reports a configuration error, or nil. The tiers call it
// after checking their own model/policy selector.
func (c Config) Validate() error {
	c = c.WithDefaults()
	if err := c.App.Validate(); err != nil {
		return err
	}
	if err := c.System.Validate(); err != nil {
		return err
	}
	if err := c.LM.Validate(); err != nil {
		return err
	}
	switch {
	case c.LeadScale <= 0:
		return fmt.Errorf("platform: non-positive lead scale")
	case c.FNRate < 0 || c.FNRate > 1:
		return fmt.Errorf("platform: FN rate outside [0, 1]")
	case c.FPRate < 0 || c.FPRate >= 1:
		return fmt.Errorf("platform: FP rate outside [0, 1)")
	case c.OCIRefreshSeconds < 0:
		return fmt.Errorf("platform: negative OCI refresh period")
	case c.SpareNodes < 0:
		return fmt.Errorf("platform: negative spare-node count")
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.Replay != nil {
		if err := c.Replay.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// SpareLimit returns the spare-pool size to back the cluster with:
// SpareNodes, or effectively unbounded when the field is zero.
func (c Config) SpareLimit() int {
	if c.SpareNodes <= 0 {
		return math.MaxInt32
	}
	return c.SpareNodes
}

// Theta returns the live-migration lead-time threshold for this
// configuration's application.
func (c Config) Theta() float64 {
	c = c.WithDefaults()
	return c.LM.Theta(c.App.PerNodeGB())
}

// SigmaLM returns the σ of Eq. (2) for a model that live-migrates: the
// fraction of failures avoidable by LM given the (scaled) lead-time
// distribution. Models without LM use σ = 0 — the tiers gate on their
// catalogue capability before calling this.
//
// Deliberately, σ uses the baseline false-negative rate rather than the
// configured one: the paper's Eq. (2) does not include the prediction
// accuracy factor (its Observation 9 calls adding it future work), which
// is exactly why the LM-assisted models overestimate their coverage and
// degrade faster as the false-negative rate climbs.
func (c Config) SigmaLM() float64 {
	c = c.WithDefaults()
	leads := c.Leads
	if c.LeadScale != 1 {
		leads = leads.Scaled(c.LeadScale)
	}
	fn := failure.DefaultFNRate
	if c.AccuracyAwareSigma {
		fn = c.FNRate
	}
	return leads.Sigma(c.Theta(), fn)
}

// StreamConfig builds the failure/prediction stream configuration both
// tiers inject, wired to an optional metrics registry.
func (c Config) StreamConfig(reg *metrics.Registry) failure.Config {
	c = c.WithDefaults()
	return failure.Config{
		System:    c.System,
		JobNodes:  c.App.Nodes,
		Leads:     c.Leads,
		LeadScale: c.LeadScale,
		FNRate:    c.FNRate,
		FPRate:    c.FPRate,
		Metrics:   reg,
		Replay:    c.Replay,
	}
}

// Derived is the full set of precomputed platform quantities (seconds /
// GB) a tier needs to price the simulation. It is a comparable struct:
// two configurations agree on the platform exactly when their Derived
// values compare equal (byte-identical float64s, no tolerance).
type Derived struct {
	// Nodes is the application's node count.
	Nodes int
	// ComputeSeconds is the required failure-free compute time.
	ComputeSeconds float64
	// PerNodeGB is the per-node checkpoint footprint.
	PerNodeGB float64
	// BBWrite is the synchronous burst-buffer write (t_BB).
	BBWrite float64
	// Drain is the asynchronous BB→PFS drain duration.
	Drain float64
	// Theta is the LM lead-time threshold θ.
	Theta float64
	// SigmaLM is Eq. (2)'s σ for LM-capable models (callers gate on the
	// catalogue capability and use 0 otherwise).
	SigmaLM float64
	// SingleNodePFSWrite is one node's uncontended PFS write (p-ckpt
	// phase 1).
	SingleNodePFSWrite float64
	// FullPFSWrite is the all-node contended PFS write (safeguard /
	// p-ckpt phase 2).
	FullPFSWrite float64
	// RecoveryBB is the unhandled-failure recovery path: surviving nodes
	// restore from BB while the replacement reads the PFS.
	RecoveryBB float64
	// RecoveryPFS is the mitigated-failure recovery path: all nodes
	// restore from the PFS.
	RecoveryPFS float64
	// Faults is the (defaulted) fault plan the tiers inject from.
	Faults faultinject.Config
}

// Derive computes every platform quantity from the configuration.
func (c Config) Derive() Derived {
	c = c.WithDefaults()
	perNode := c.App.PerNodeGB()
	nodes := c.App.Nodes
	return Derived{
		Nodes:              nodes,
		ComputeSeconds:     c.App.ComputeSeconds(),
		PerNodeGB:          perNode,
		BBWrite:            c.IO.BBWriteTime(perNode),
		Drain:              c.IO.DrainTime(nodes, perNode),
		Theta:              c.LM.Theta(perNode),
		SigmaLM:            c.SigmaLM(),
		SingleNodePFSWrite: c.IO.SingleNodePFSWriteTime(perNode),
		FullPFSWrite:       c.IO.PFSWriteTime(nodes, perNode),
		RecoveryBB:         math.Max(c.IO.BBReadTime(perNode), c.IO.SingleNodePFSReadTime(perNode)),
		RecoveryPFS:        c.IO.PFSReadTime(nodes, perNode),
		Faults:             c.Faults,
	}
}
