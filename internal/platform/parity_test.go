package platform_test

import (
	"testing"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/iomodel"
	"pckpt/internal/nodesim"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/stepsim"
	"pckpt/internal/workload"
)

// TestDerivedParity asserts that every simulation tier, handed matched
// configurations, derives byte-identical platform quantities — and that
// all equal the platform package's own derivation. Derived is a
// comparable struct of float64s, so == is bitwise equality; any second
// implementation of a derived quantity sneaking back into a tier shows
// up here as a mismatch.
func TestDerivedParity(t *testing.T) {
	summit := iomodel.New(iomodel.DefaultSummit())
	cases := []struct {
		name string
		cfg  platform.Config
	}{
		{"small-busy", platform.Config{
			App:    workload.App{Name: "small", Nodes: 48, TotalCkptGB: 960, ComputeHours: 24},
			System: failure.System{Name: "busy", Shape: 0.75, ScaleHours: 40, Nodes: 48},
		}},
		{"xgc-titan", func() platform.Config {
			app, err := workload.ByName("XGC")
			if err != nil {
				t.Fatal(err)
			}
			return platform.Config{App: app, System: failure.Titan}
		}()},
		{"chimera-titan-scaled-leads", func() platform.Config {
			app, err := workload.ByName("CHIMERA")
			if err != nil {
				t.Fatal(err)
			}
			return platform.Config{App: app, System: failure.Titan, LeadScale: 0.25}
		}()},
		{"explicit-io-and-rates", platform.Config{
			App:       workload.App{Name: "mid", Nodes: 512, TotalCkptGB: 512 * 64, ComputeHours: 120},
			System:    failure.System{Name: "flaky", Shape: 0.7, ScaleHours: 12, Nodes: 4096},
			IO:        summit,
			FNRate:    0.35,
			FPRate:    0.10,
			LeadScale: 2,
		}},
		{"accuracy-aware-sigma", platform.Config{
			App:                workload.App{Name: "aa", Nodes: 256, TotalCkptGB: 256 * 32, ComputeHours: 48},
			System:             failure.Titan,
			FNRate:             0.5,
			AccuracyAwareSigma: true,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.cfg.Derive()
			appDerived := crmodel.Config{Model: crmodel.ModelP2, Config: tc.cfg}.Derive()
			nodeDerived := nodesim.Config{Policy: nodesim.PolicyHybrid, Config: tc.cfg}.Derive()
			stepDerived := stepsim.Config{Model: policy.M2, Config: tc.cfg}.Derive()
			if appDerived != want {
				t.Errorf("crmodel derivation diverges:\napp  %+v\nwant %+v", appDerived, want)
			}
			if nodeDerived != want {
				t.Errorf("nodesim derivation diverges:\nnode %+v\nwant %+v", nodeDerived, want)
			}
			if stepDerived != want {
				t.Errorf("stepsim derivation diverges:\nstep %+v\nwant %+v", stepDerived, want)
			}
			// σ(LM) parity for the hybrid entry both tiers run: the tiers
			// must price migration mitigation off the same sigma, and it
			// must be the platform package's number, not a local recompute.
			appSigma := crmodel.Config{Model: crmodel.ModelP2, Config: tc.cfg}.Sigma()
			nodeSigma := nodesim.Config{Policy: nodesim.PolicyHybrid, Config: tc.cfg}.Sigma()
			stepSigma := stepsim.Config{Model: policy.M2, Config: tc.cfg}.Sigma()
			if appSigma != nodeSigma {
				t.Errorf("sigma diverges: app %v vs node %v", appSigma, nodeSigma)
			}
			if stepSigma != appSigma {
				t.Errorf("sigma diverges: step %v vs app %v", stepSigma, appSigma)
			}
			if appSigma != tc.cfg.SigmaLM() {
				t.Errorf("sigma %v != platform SigmaLM %v", appSigma, tc.cfg.SigmaLM())
			}
			// Non-LM entries must gate sigma to zero in every tier.
			if s := (crmodel.Config{Model: crmodel.ModelP1, Config: tc.cfg}).Sigma(); s != 0 {
				t.Errorf("P1 sigma %v, want 0 (no live migration)", s)
			}
			if s := (nodesim.Config{Policy: nodesim.PolicyPckpt, Config: tc.cfg}).Sigma(); s != 0 {
				t.Errorf("p-ckpt policy sigma %v, want 0 (no live migration)", s)
			}
			if s := (stepsim.Config{Model: policy.M1, Config: tc.cfg}).Sigma(); s != 0 {
				t.Errorf("step M1 sigma %v, want 0 (no live migration)", s)
			}
		})
	}
}
