package experiments

import (
	"errors"

	"pckpt/internal/metrics"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/runcache"
	"pckpt/internal/stats"
)

// ErrInterrupted is returned by Run when the sweep was aborted at a
// configuration boundary via Params.Interrupt. Every configuration
// completed before the abort has already been flushed to the cache, so
// rerunning the same sweep against the same cache directory resumes at
// the unfinished tail.
var ErrInterrupted = errors.New("experiments: sweep interrupted")

// Run executes one registry entry with cache bookkeeping: the registry
// ID is stamped into Params as the cache-key namespace, and an
// interrupt (Params.Interrupt closed before an un-cached configuration)
// surfaces as ErrInterrupted instead of a panic. Calling a Def's Run
// function directly remains supported — it simply skips both services.
func Run(d Def, p Params) (res Result, err error) {
	p.Experiment = d.ID
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, ErrInterrupted) {
				err = ErrInterrupted
				return
			}
			panic(r)
		}
	}()
	return d.Run(p), nil
}

// cacheKey assembles the content-address for one configuration. Workers
// is deliberately excluded (TestWorkersDeterminism guards that results
// are worker-count independent); runs is a parameter because crossval
// scales its run count down from p.Runs.
func (p Params) cacheKey(label string, id policy.ID, plat platform.Config, runs int) runcache.Key {
	return runcache.Key{
		Experiment:  p.Experiment,
		Label:       label,
		Policy:      id.String(),
		Platform:    plat.CanonicalString(),
		Runs:        runs,
		Seed:        p.Seed,
		Fingerprint: runcache.Fingerprint(),
	}
}

// cacheGet resolves a key against the cache, folding a stored metrics
// snapshot into the collector on a hit. needMetrics demands a snapshot:
// a metered sweep must not silently lose metrics to an entry cached by
// an un-metered one (the recompute's Put upgrades the entry instead).
func (p Params) cacheGet(key runcache.Key, needMetrics bool) (*stats.Agg, bool) {
	if p.Cache == nil {
		return nil, false
	}
	agg, snap, ok := p.Cache.Get(key, needMetrics)
	if !ok {
		return nil, false
	}
	p.Metrics.Add(snap)
	return agg, true
}

// cachePut flushes a freshly simulated aggregate. Write errors are
// deliberately fatal: a half-functional cache that silently drops
// entries would break the resume contract.
func (p Params) cachePut(key runcache.Key, agg *stats.Agg, snap *metrics.Snapshot) {
	if p.Cache == nil {
		return
	}
	if err := p.Cache.Put(key, agg, snap); err != nil {
		panic(err)
	}
}

// checkInterrupt aborts the sweep (via ErrInterrupted, recovered in Run)
// when Params.Interrupt has been closed. Called only in front of actual
// simulation work, so cached configurations keep resolving after the
// signal — exactly what lets an interrupted rerun fast-forward through
// its completed prefix.
func (p Params) checkInterrupt() {
	if p.Interrupt == nil {
		return
	}
	select {
	case <-p.Interrupt:
		panic(ErrInterrupted)
	default:
	}
}
