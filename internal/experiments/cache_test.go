package experiments

import (
	"errors"
	"flag"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pckpt/internal/metrics"
	"pckpt/internal/runcache"
)

// cacheDirFlag lets `make ci` drive the cross-process cold-then-warm
// pass: the same test binary runs twice against one shared directory —
// the first invocation populates it, the second must be all hits.
var cacheDirFlag = flag.String("cachedir", "", "shared cache dir for the cross-process cold/warm pass")

// fig4Chimera is the cache-test workload: Fig. 4 restricted to CHIMERA
// resolves exactly 15 configurations (1 base + 7 lead scales × 2
// models).
const fig4Configs = 15

func fig4Params(store *runcache.Store) Params {
	return Params{Runs: 25, Seed: 42, Apps: []string{"CHIMERA"}, Cache: store}
}

func mustRun(t *testing.T, id string, p Params) Result {
	t.Helper()
	d, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(d, p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func sameResult(t *testing.T, a, b Result) {
	t.Helper()
	if a.Text != b.Text {
		t.Errorf("rendered text differs:\n--- a\n%s\n--- b\n%s", a.Text, b.Text)
	}
	if !reflect.DeepEqual(a.Values, b.Values) {
		t.Error("machine-readable values differ")
	}
}

// A cold run then a warm run of the same experiment must render
// identically, and the warm run must execute zero simulations (every
// configuration a hit, none missed).
func TestCacheEquivalence(t *testing.T) {
	dir := t.TempDir()
	cold, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := mustRun(t, "fig4", fig4Params(cold))
	if st := cold.Totals(); st.Misses != fig4Configs || st.Puts != fig4Configs || st.Hits != 0 {
		t.Fatalf("cold run traffic %+v, want %d misses/puts", st, fig4Configs)
	}

	warm, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := mustRun(t, "fig4", fig4Params(warm))
	sameResult(t, r1, r2)
	if st := warm.Totals(); st.Hits != fig4Configs || st.Misses != 0 || st.Puts != 0 {
		t.Fatalf("warm run executed simulations: %+v, want %d hits and zero misses", st, fig4Configs)
	}
}

// blobFiles lists the store's blob paths.
func blobFiles(t *testing.T, dir string) []string {
	t.Helper()
	var paths []string
	filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			paths = append(paths, path)
		}
		return nil
	})
	return paths
}

// A truncated blob must be detected, evicted, and recomputed — never
// trusted — and the recomputed sweep must still render identically.
func TestCacheCorruptionRecovery(t *testing.T) {
	dir := t.TempDir()
	cold, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := mustRun(t, "fig4", fig4Params(cold))

	paths := blobFiles(t, dir)
	if len(paths) != fig4Configs {
		t.Fatalf("store holds %d blobs, want %d", len(paths), fig4Configs)
	}
	data, err := os.ReadFile(paths[3])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[3], data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	warm, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := mustRun(t, "fig4", fig4Params(warm))
	sameResult(t, r1, r2)
	st := warm.Totals()
	if st.Evictions != 1 || st.Misses != 1 || st.Hits != fig4Configs-1 || st.Puts != 1 {
		t.Fatalf("corruption traffic %+v, want 1 evict + 1 miss + 1 put + %d hits", st, fig4Configs-1)
	}
}

// Interrupts abort at the next un-cached configuration, and the cached
// prefix keeps resolving after the signal — so a fully warmed cache
// completes even under a pre-closed interrupt, and a partially warmed
// one stops exactly at its first hole.
func TestCacheInterruptResume(t *testing.T) {
	dir := t.TempDir()
	cold, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := mustRun(t, "fig4", fig4Params(cold))

	closed := make(chan struct{})
	close(closed)
	d, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}

	// Fully warm + interrupt: completes entirely from cache.
	warm, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := fig4Params(warm)
	p.Interrupt = closed
	r2, err := Run(d, p)
	if err != nil {
		t.Fatalf("fully cached sweep aborted: %v", err)
	}
	sameResult(t, r1, r2)

	// Punch holes in the tail (as a mid-sweep SIGINT would leave them):
	// the interrupted rerun must fast-forward through the prefix and
	// abort at the first hole.
	paths := blobFiles(t, dir)
	for _, path := range paths[len(paths)-3:] {
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}
	partial, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p = fig4Params(partial)
	p.Interrupt = closed
	if _, err := Run(d, p); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("partially cached sweep under interrupt returned %v, want ErrInterrupted", err)
	}
	if st := partial.Totals(); st.Puts != 0 || st.Misses != 1 {
		t.Fatalf("interrupted run traffic %+v, want exactly one miss and no puts", st)
	}

	// Without the interrupt the rerun refills only the holes.
	resume, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r3 := mustRun(t, "fig4", fig4Params(resume))
	sameResult(t, r1, r3)
	if st := resume.Totals(); st.Misses != 3 || st.Puts != 3 || st.Hits != fig4Configs-3 {
		t.Fatalf("resume traffic %+v, want exactly the 3 holes recomputed", st)
	}
}

// A metered sweep must not lose metrics to entries cached by an
// un-metered one: those entries miss, are recomputed with metering, and
// upgraded in place.
func TestCacheMetricsUpgrade(t *testing.T) {
	dir := t.TempDir()
	plain, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := mustRun(t, "fig4", fig4Params(plain))

	metered, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := fig4Params(metered)
	p.Metrics = metrics.NewCollector()
	r2 := mustRun(t, "fig4", p)
	sameResult(t, r1, r2)
	if st := metered.Totals(); st.Misses != fig4Configs || st.Puts != fig4Configs {
		t.Fatalf("metered traffic %+v, want all entries upgraded", st)
	}
	if p.Metrics.Snapshot().Empty() {
		t.Fatal("metered sweep collected no metrics")
	}

	// A second metered sweep rides the upgraded entries — all hits, and
	// the collector is fed from stored snapshots.
	again, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	q := fig4Params(again)
	q.Metrics = metrics.NewCollector()
	mustRun(t, "fig4", q)
	if st := again.Totals(); st.Hits != fig4Configs || st.Misses != 0 {
		t.Fatalf("upgraded-entry traffic %+v, want all hits", st)
	}
	want := p.Metrics.Snapshot()
	got := q.Metrics.Snapshot()
	if !reflect.DeepEqual(want.Counters, got.Counters) {
		t.Error("stored metrics snapshots feed the collector differently than live metering")
	}
}

// TestCacheColdWarm is the cross-process pass `make ci` runs twice
// against one shared -cachedir: whichever process runs first simulates
// everything, the second must resolve everything from disk, and both
// must match an uncached in-process reference run. Without the flag it
// self-contains in a temp dir (one cold pass against the reference).
func TestCacheColdWarm(t *testing.T) {
	dir := *cacheDirFlag
	if dir == "" {
		dir = t.TempDir()
	}
	store, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ref := mustRun(t, "fig4", Params{Runs: 25, Seed: 42, Apps: []string{"CHIMERA"}})
	r := mustRun(t, "fig4", fig4Params(store))
	sameResult(t, ref, r)
	st := store.Totals()
	if st.Hits+st.Misses != fig4Configs {
		t.Fatalf("traffic %+v does not cover the %d configurations", st, fig4Configs)
	}
	if st.Hits != 0 && st.Misses != 0 {
		t.Fatalf("mixed traffic %+v: a shared dir must be fully cold or fully warm", st)
	}
}
