package experiments

import (
	"fmt"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/lm"
	"pckpt/internal/platform"
	"pckpt/internal/stats"
	"pckpt/internal/tablefmt"
)

// Fig6a reproduces the headline overhead comparison under the Titan
// failure distribution.
func Fig6a(p Params) Result {
	return fig6(p, failure.Titan, "fig6a", "Fig. 6a: overhead by model, OLCF Titan distribution")
}

// Fig6b is the same experiment under the LANL System 18 distribution.
func Fig6b(p Params) Result {
	return fig6(p, failure.LANLSystem18, "fig6b", "Fig. 6b: overhead by model, LANL System 18 distribution")
}

// Fig6System8 covers the System 8 numbers quoted in the paper's text
// (the figure itself was omitted there for space).
func Fig6System8(p Params) Result {
	return fig6(p, failure.LANLSystem8, "fig6sys8", "Fig. 6 (text): overhead by model, LANL System 8 distribution")
}

// fig6 runs all five models over the application set for one failure
// distribution and renders the stacked-overhead comparison.
func fig6(p Params, sys failure.System, id, title string) Result {
	p = p.withDefaults()
	apps := p.apps()
	t := tablefmt.NewTable("App", "Model", "Ckpt(h)", "Recomp(h)", "Recov(h)", "Total(h)", "vs B", "FT", "Bar (vs base total)")
	values := map[string]float64{}
	for _, app := range apps {
		aggs := modelSet(p, app, sys, 1, failure.DefaultFNRate, crmodel.Models())
		base := aggs[crmodel.ModelB].MeanOverheads()
		for _, m := range crmodel.Models() {
			mo := aggs[m].MeanOverheads()
			h := mo.Hours()
			_, _, _, tot := stats.ReductionBreakdown(base, mo)
			t.AddRow(app.Name, m.String(),
				fmt.Sprintf("%.2f", h.Checkpoint),
				fmt.Sprintf("%.2f", h.Recompute),
				fmt.Sprintf("%.2f", h.Recovery),
				fmt.Sprintf("%.2f", h.Total()),
				tablefmt.Percent(tot),
				fmt.Sprintf("%.2f", aggs[m].MeanFTRatio()),
				tablefmt.StackedBar([]float64{mo.Checkpoint, mo.Recompute, mo.Recovery}, base.Total(), 30))
			values[fmt.Sprintf("%s/%s/reduction-pct", app.Name, m)] = tot
			values[fmt.Sprintf("%s/%s/ft", app.Name, m)] = aggs[m].MeanFTRatio()
		}
	}
	text := t.String() + "\nbar fills: █ checkpoint  ▒ recomputation  ░ recovery\n"
	return Result{ID: id, Title: title, Text: text, Values: values}
}

// fig6cAlphas is the LM-transfer-ratio sweep of Fig. 6c (the paper's
// M2-* models: transfer = α × checkpoint size).
var fig6cAlphas = []float64{1, 2, 2.5, 3, 4}

// Fig6c compares P1 against M2 at varying LM transfer sizes.
func Fig6c(p Params) Result {
	p = p.withDefaults()
	apps := p.apps("CHIMERA", "XGC", "POP")
	t := tablefmt.NewTable("App", "Model", "Total(h)", "vs B", "Recomp red.", "Ckpt red.")
	values := map[string]float64{}
	for _, app := range apps {
		label := fmt.Sprintf("fig6c|%s|base", app.Name)
		baseAgg := runConfig(p, crmodel.Config{Model: crmodel.ModelB, Config: platform.Config{App: app, System: failure.Titan}}, label)
		base := baseAgg.MeanOverheads()
		p1Agg := runConfig(p, crmodel.Config{Model: crmodel.ModelP1, Config: platform.Config{App: app, System: failure.Titan}}, fmt.Sprintf("fig6c|%s|P1", app.Name))
		addRow := func(name string, agg *stats.Agg) float64 {
			mo := agg.MeanOverheads()
			ck, rc, _, tot := stats.ReductionBreakdown(base, mo)
			t.AddRow(app.Name, name,
				fmt.Sprintf("%.2f", mo.Total()/3600),
				tablefmt.Percent(tot), tablefmt.Percent(rc), tablefmt.Percent(ck))
			return tot
		}
		addRow("B", baseAgg)
		values[app.Name+"/P1/reduction-pct"] = addRow("P1", p1Agg)
		for _, alpha := range fig6cAlphas {
			cfg := crmodel.Config{Model: crmodel.ModelM2, Config: platform.Config{App: app, System: failure.Titan, LM: lm.Default().WithAlpha(alpha)}}
			agg := runConfig(p, cfg, fmt.Sprintf("fig6c|%s|M2-%.1f", app.Name, alpha))
			name := fmt.Sprintf("M2-%gx", alpha)
			values[fmt.Sprintf("%s/M2-%g/reduction-pct", app.Name, alpha)] = addRow(name, agg)
		}
	}
	text := t.String() + "\n(P1 beats M2 for large apps until the LM transfer ratio α drops near 1, per Observation 8)\n"
	return Result{ID: "fig6c", Title: "Fig. 6c: LM transfer size sweep (M2-α vs P1)", Text: text, Values: values}
}
