package experiments

import (
	"testing"

	"pckpt/internal/crmodel"
	"pckpt/internal/nodesim"
	"pckpt/internal/runcache"
	"pckpt/internal/scenario"
)

// The embedded specs are part of the build: they must parse, validate,
// and include both failure-source shapes (parametric and trace replay).
func TestBuiltinSpecs(t *testing.T) {
	specs := BuiltinSpecs()
	if len(specs) < 2 {
		t.Fatalf("got %d builtin specs, want at least a parametric and a replay one", len(specs))
	}
	var replay, parametric bool
	for _, s := range specs {
		cfgs, err := s.Configs()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if cfgs[0].Platform.Replay != nil {
			replay = true
		} else {
			parametric = true
		}
	}
	if !replay || !parametric {
		t.Fatalf("builtin specs cover replay=%t parametric=%t, want both", replay, parametric)
	}
}

// scenarioConfigs is the cell count of the scenario experiment: the
// parametric spec's 3 apps × 3 policies plus the replay spec's 1 × 2.
const scenarioConfigs = 11

// A second run of the scenario experiment against a warm cache must
// execute zero simulations — re-running any spec is a runcache hit, for
// the replayed trace exactly like for the parametric catalogue (the
// trace digest is part of the platform canonical string).
func TestScenarioCacheWarmHit(t *testing.T) {
	dir := t.TempDir()
	p := Params{Runs: 5, Seed: 42}
	cold, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p.Cache = cold
	r1 := mustRun(t, "scenario", p)
	if st := cold.Totals(); st.Misses != scenarioConfigs || st.Puts != scenarioConfigs || st.Hits != 0 {
		t.Fatalf("cold run traffic %+v, want %d misses/puts", st, scenarioConfigs)
	}
	warm, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p.Cache = warm
	r2 := mustRun(t, "scenario", p)
	sameResult(t, r1, r2)
	if st := warm.Totals(); st.Hits != scenarioConfigs || st.Misses != 0 {
		t.Fatalf("warm run executed simulations: %+v, want %d hits", st, scenarioConfigs)
	}
}

// replaySpec returns the embedded trace-replay spec.
func replaySpec(t *testing.T) *scenario.Spec {
	t.Helper()
	for _, s := range BuiltinSpecs() {
		if cfgs, err := s.Configs(); err == nil && cfgs[0].Platform.Replay != nil {
			return s
		}
	}
	t.Fatal("no replay spec embedded")
	return nil
}

// A replayed trace draws nothing from the RNG, so a replay configuration
// must be bit-identical not only across worker counts (TestWorkers-
// Determinism covers the whole experiment) but across *seeds* too.
func TestReplaySpecSeedInvariant(t *testing.T) {
	s := replaySpec(t)
	cfgs, err := s.Configs()
	if err != nil {
		t.Fatal(err)
	}
	rc := cfgs[len(cfgs)-1]
	cfg := crmodel.Config{Model: rc.Policy, Config: rc.Platform}
	// Different seeds, identical results: the failure path consumes no
	// randomness. (The fault-injection substream is idle too: the replay
	// spec configures a perfect platform.)
	a := crmodel.Simulate(cfg, 1)
	b := crmodel.Simulate(cfg, 99)
	if a != b {
		t.Fatalf("replay run depends on the seed:\n%+v\nvs\n%+v", a, b)
	}
}

// Both simulation tiers consume a replayed trace through the same
// failure-stream interface: the node-granular tier must run a replay
// configuration and see exactly the trace's failure pattern (same
// deterministic result on every seed).
func TestNodesimConsumesReplay(t *testing.T) {
	s := replaySpec(t)
	cfgs, err := s.Configs()
	if err != nil {
		t.Fatal(err)
	}
	rc := cfgs[0]
	cfg := nodesim.Config{Policy: nodesim.Policy(rc.Policy), Config: rc.Platform}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	a := nodesim.Simulate(cfg, 7)
	b := nodesim.Simulate(cfg, 1234)
	if a != b {
		t.Fatalf("node-tier replay run depends on the seed:\n%+v\nvs\n%+v", a, b)
	}
	if a.Failures == 0 {
		t.Fatal("node-tier replay run saw no failures from the trace")
	}
}
