package experiments

import (
	"fmt"
	"strings"

	"pckpt/internal/analytic"
	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/lm"
	"pckpt/internal/platform"
	"pckpt/internal/stats"
	"pckpt/internal/tablefmt"
)

// obs9FNRates sweeps the false-negative rate while the false-positive
// rate stays at the paper's constant 18 %.
var obs9FNRates = []float64{failure.DefaultFNRate, 0.2, 0.3, 0.4}

// Obs9 reproduces the false-negative sensitivity study: all
// prediction-assisted models decline as FN rises, but the LM-assisted
// models (M2/P2) decline faster in recomputation because Eq. (2) keeps
// crediting them with avoidance they no longer deliver.
func Obs9(p Params) Result {
	p = p.withDefaults()
	apps := p.apps("CHIMERA", "XGC", "POP")
	models := []crmodel.Model{crmodel.ModelM1, crmodel.ModelM2, crmodel.ModelP1, crmodel.ModelP2}
	t := tablefmt.NewTable("App", "FN rate", "Model", "Recomp red.", "Total red.", "FT")
	values := map[string]float64{}
	for _, app := range apps {
		baseAgg := modelSet(p, app, failure.Titan, 1, failure.DefaultFNRate, []crmodel.Model{crmodel.ModelB})
		base := baseAgg[crmodel.ModelB].MeanOverheads()
		for _, fn := range obs9FNRates {
			aggs := modelSet(p, app, failure.Titan, 1, fn, models)
			for _, m := range models {
				mo := aggs[m].MeanOverheads()
				_, rc, _, tot := stats.ReductionBreakdown(base, mo)
				t.AddRow(app.Name, fmt.Sprintf("%.3f", fn), m.String(),
					tablefmt.Percent(rc), tablefmt.Percent(tot),
					fmt.Sprintf("%.3f", aggs[m].MeanFTRatio()))
				values[fmt.Sprintf("%s/fn=%.3f/%s/recomp-red", app.Name, fn, m)] = rc
				values[fmt.Sprintf("%s/fn=%.3f/%s/total-red", app.Name, fn, m)] = tot
			}
		}
	}
	text := t.String() + "\n(FP rate fixed at 18%; rising FN hits M2/P2 recomputation hardest, per Observation 9)\n"
	return Result{ID: "obs9", Title: "Observation 9: false-negative-rate sensitivity", Text: text, Values: values}
}

// Obs9Fix evaluates the extension the paper proposes as future work:
// folding the predictor's actual accuracy into Eq. (2)'s σ. The published
// P2 keeps crediting live migration with avoidance it no longer delivers
// as the false-negative rate climbs, stretching the checkpoint interval
// too far; the accuracy-aware variant shortens the interval back and
// recovers most of the lost recomputation benefit.
func Obs9Fix(p Params) Result {
	p = p.withDefaults()
	apps := p.apps("CHIMERA", "XGC")
	t := tablefmt.NewTable("App", "FN rate", "Variant", "σ used", "Recomp red.", "Total red.")
	values := map[string]float64{}
	for _, app := range apps {
		baseAgg := modelSet(p, app, failure.Titan, 1, failure.DefaultFNRate, []crmodel.Model{crmodel.ModelB})
		base := baseAgg[crmodel.ModelB].MeanOverheads()
		for _, fn := range obs9FNRates {
			for _, aware := range []bool{false, true} {
				cfg := crmodel.Config{
					Model: crmodel.ModelP2,
					Config: platform.Config{
						App:                app,
						System:             failure.Titan,
						FNRate:             fn,
						AccuracyAwareSigma: aware,
					},
				}
				variant := "published"
				if aware {
					variant = "accuracy-aware"
				}
				label := fmt.Sprintf("obs9fix|%s|fn=%.3f|%s", app.Name, fn, variant)
				agg := runConfig(p, cfg, label)
				mo := agg.MeanOverheads()
				_, rc, _, tot := stats.ReductionBreakdown(base, mo)
				t.AddRow(app.Name, fmt.Sprintf("%.3f", fn), variant,
					fmt.Sprintf("%.3f", cfg.Sigma()),
					tablefmt.Percent(rc), tablefmt.Percent(tot))
				values[fmt.Sprintf("%s/fn=%.3f/%s/recomp-red", app.Name, fn, variant)] = rc
				values[fmt.Sprintf("%s/fn=%.3f/%s/total-red", app.Name, fn, variant)] = tot
			}
		}
	}
	text := t.String() + "\n(extension of the paper's future work: σ adjusted by actual recall)\n"
	return Result{ID: "obs9fix", Title: "Extension: accuracy-aware σ in Eq. (2) (paper's future work)", Text: text, Values: values}
}

// Analytic renders the Eqs. (4)–(8) model: break-even α per σ, plus each
// application's σ, θ, and the predicted LM-vs-p-ckpt winner at the
// paper's default α=3.
func Analytic(p Params) Result {
	p = p.withDefaults()
	var b strings.Builder
	t := tablefmt.NewTable("σ", "β(α=3)", "α threshold (Eq.8)", "α threshold (exact)")
	values := map[string]float64{}
	for _, s := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6} {
		t.AddRow(fmt.Sprintf("%.1f", s),
			fmt.Sprintf("%.3f", analytic.Beta(3, s)),
			fmt.Sprintf("%.3f", analytic.AlphaThreshold(s)),
			fmt.Sprintf("%.3f", analytic.AlphaThresholdExact(s)))
	}
	b.WriteString(t.String())
	lo, hi := analytic.AlphaRange()
	values["alpha-at-sigma-0.1"] = lo
	values["alpha-at-sigma-max"] = hi
	fmt.Fprintf(&b, "\nEq. (8) break-even α over σ ∈ [0.1, %.3f): %.3f … %.3f (paper: 1.04 ≤ α < 1.30)\n\n",
		analytic.SigmaMax, lo, hi)

	// Per-application σ and θ at the default configuration, with the
	// model's verdict at α = 3.
	at := tablefmt.NewTable("App", "θ (s)", "σ", "β(α=3)", "p-ckpt wins at 50/50?")
	for _, app := range p.apps() {
		cfg := crmodel.Config{Model: crmodel.ModelP2, Config: platform.Config{App: app, System: failure.Titan, LM: lm.Default()}}
		sigma := cfg.Sigma()
		theta := cfg.Theta()
		if sigma >= analytic.SigmaMax {
			sigma = analytic.SigmaMax - 1e-9 // model validity bound
		}
		wins := analytic.PckptWins(lm.DefaultAlpha, sigma, 1, 1)
		at.AddRow(app.Name, fmt.Sprintf("%.2f", theta), fmt.Sprintf("%.3f", sigma),
			fmt.Sprintf("%.3f", analytic.Beta(lm.DefaultAlpha, sigma)), fmt.Sprint(wins))
		values[app.Name+"/theta-s"] = theta
		values[app.Name+"/sigma"] = sigma
	}
	b.WriteString(at.String())
	return Result{ID: "analytic", Title: "Observation 8: analytical LM vs p-ckpt model (Eqs. 4-8)", Text: b.String(), Values: values}
}
