package experiments

import (
	"fmt"
	"strings"
	"testing"

	"pckpt/internal/crmodel"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/stats"
	"pckpt/internal/workload"
)

// TestSimulateTierNRecoversPanickingRun plants a crashing fake tier in a
// sweep: the sweep must complete, the surviving seeds must aggregate, and
// the crash must be ledgered against its exact seed and configuration.
func TestSimulateTierNRecoversPanickingRun(t *testing.T) {
	badSeed := crmodel.RunSeed(11, 2)
	fake := Tier{
		Name:     "fake",
		Supports: func(policy.ID) bool { return true },
		Simulate: func(id policy.ID, plat platform.Config, seed uint64) stats.RunResult {
			if seed == badSeed {
				panic("planted tier crash")
			}
			return stats.RunResult{WallSeconds: float64(seed % 97)}
		},
	}
	plat := platform.Config{App: workload.App{Name: "fakeapp", Nodes: 4, TotalCkptGB: 4, ComputeHours: 1}}
	agg := SimulateTierN(fake, policy.P2, plat, 6, 11, 3)
	if agg.N() != 5 {
		t.Fatalf("completed runs = %d, want 5", agg.N())
	}
	failed := agg.Failed()
	if len(failed) != 1 {
		t.Fatalf("failed ledger has %d entries, want 1", len(failed))
	}
	f := failed[0]
	if f.Seed != badSeed || !strings.Contains(f.Err, "planted tier crash") {
		t.Fatalf("failure misattributed: %+v", f)
	}
	for _, want := range []string{"tier=fake", "model=P2", "app=fakeapp"} {
		if !strings.Contains(f.Config, want) {
			t.Errorf("ledger config %q missing %q", f.Config, want)
		}
	}
}

// TestBadAppFilterPanicsWithContext pins the harness-hardening change to
// the app-filter resolution: an unknown application must surface a
// contextualised error, not a bare workload lookup failure.
func TestBadAppFilterPanicsWithContext(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unknown app filter did not panic")
		}
		if !strings.Contains(strings.ToLower(fmt.Sprint(r)), "bad app filter") {
			t.Fatalf("panic %v lacks app-filter context", r)
		}
	}()
	Params{Apps: []string{"NOT-AN-APP"}}.apps()
}
