package experiments

import (
	"fmt"
	"strings"
	"testing"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/runcache"
	"pckpt/internal/stats"
	"pckpt/internal/stepsim"
	"pckpt/internal/workload"
)

// TestSimulateTierNRecoversPanickingRun plants a crashing fake tier in a
// sweep: the sweep must complete, the surviving seeds must aggregate, and
// the crash must be ledgered against its exact seed and configuration.
func TestSimulateTierNRecoversPanickingRun(t *testing.T) {
	badSeed := crmodel.RunSeed(11, 2)
	fake := Tier{
		Name:     "fake",
		Supports: func(policy.ID) bool { return true },
		Simulate: func(id policy.ID, plat platform.Config, seed uint64) stats.RunResult {
			if seed == badSeed {
				panic("planted tier crash")
			}
			return stats.RunResult{WallSeconds: float64(seed % 97)}
		},
	}
	plat := platform.Config{App: workload.App{Name: "fakeapp", Nodes: 4, TotalCkptGB: 4, ComputeHours: 1}}
	agg := SimulateTierN(fake, policy.P2, plat, 6, 11, 3)
	if agg.N() != 5 {
		t.Fatalf("completed runs = %d, want 5", agg.N())
	}
	failed := agg.Failed()
	if len(failed) != 1 {
		t.Fatalf("failed ledger has %d entries, want 1", len(failed))
	}
	f := failed[0]
	if f.Seed != badSeed || !strings.Contains(f.Err, "planted tier crash") {
		t.Fatalf("failure misattributed: %+v", f)
	}
	for _, want := range []string{"tier=fake", "model=P2", "app=fakeapp"} {
		if !strings.Contains(f.Config, want) {
			t.Errorf("ledger config %q missing %q", f.Config, want)
		}
	}
}

// TestSimulateTierNEdgeCases pins the pool plumbing around the sweep:
// zero runs yield an empty aggregate without deadlock, a worker count
// above n clamps instead of idling goroutines on a closed channel, and a
// panic in the LAST seed still lands in the ledger (the final channel
// send must not race the drain).
func TestSimulateTierNEdgeCases(t *testing.T) {
	plat := platform.Config{App: workload.App{Name: "fakeapp", Nodes: 4, TotalCkptGB: 4, ComputeHours: 1}}
	ok := Tier{
		Name:     "fake",
		Supports: func(policy.ID) bool { return true },
		Simulate: func(id policy.ID, plat platform.Config, seed uint64) stats.RunResult {
			return stats.RunResult{WallSeconds: float64(seed % 97)}
		},
	}

	if agg := SimulateTierN(ok, policy.B, plat, 0, 7, 4); agg.N() != 0 || len(agg.Failed()) != 0 {
		t.Fatalf("n=0: got %d runs, %d failures, want an empty aggregate", agg.N(), len(agg.Failed()))
	}

	if agg := SimulateTierN(ok, policy.B, plat, 2, 7, 16); agg.N() != 2 {
		t.Fatalf("workers>n: got %d runs, want 2", agg.N())
	}

	lastSeed := crmodel.RunSeed(7, 5)
	crashLast := ok
	crashLast.Simulate = func(id policy.ID, plat platform.Config, seed uint64) stats.RunResult {
		if seed == lastSeed {
			panic("last-seed crash")
		}
		return stats.RunResult{}
	}
	agg := SimulateTierN(crashLast, policy.B, plat, 6, 7, 2)
	if agg.N() != 5 || len(agg.Failed()) != 1 {
		t.Fatalf("last-seed crash: %d runs + %d failures, want 5 + 1", agg.N(), len(agg.Failed()))
	}
	if f := agg.Failed()[0]; f.Seed != lastSeed || !strings.Contains(f.Err, "last-seed crash") {
		t.Fatalf("last-seed crash misattributed: %+v", f)
	}
}

// TestRunTierCacheKeysDistinct plants three same-named-everything-else
// tiers against one cache directory: each tier's aggregate must resolve
// from its own entry, so registering a third tier cannot silently serve
// another tier's cached results.
func TestRunTierCacheKeysDistinct(t *testing.T) {
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.Config{App: workload.App{Name: "fakeapp", Nodes: 4, TotalCkptGB: 4, ComputeHours: 1}}
	p := Params{Runs: 3, Seed: 9, SeedSet: true, Workers: 1, Experiment: "cachetest", Cache: store}

	calls := map[string]int{}
	mk := func(name string, wall float64) Tier {
		return Tier{
			Name:     name,
			Supports: func(policy.ID) bool { return true },
			Simulate: func(id policy.ID, plat platform.Config, seed uint64) stats.RunResult {
				calls[name]++
				return stats.RunResult{WallSeconds: wall}
			},
		}
	}
	tiers := []Tier{mk("alpha", 100), mk("beta", 200), mk("gamma", 300)}
	for pass := 0; pass < 2; pass++ {
		for i, tr := range tiers {
			agg := runTier(p, tr, policy.B, plat, 3, p.Seed)
			if want := float64((i + 1) * 100); agg.MeanWallSeconds() != want {
				t.Fatalf("pass %d tier %s: mean wall %.0f, want %.0f (cache key collision)",
					pass, tr.Name, agg.MeanWallSeconds(), want)
			}
		}
	}
	for name, n := range calls {
		if n != 3 {
			t.Errorf("tier %s simulated %d seeds, want 3 (second pass must be a cache hit)", name, n)
		}
	}
}

// TestTierRegistry pins the registry shape consumers rely on: the
// reference tier leads, names are unique, and TierByName round-trips
// every entry.
func TestTierRegistry(t *testing.T) {
	ts := Tiers()
	if len(ts) != 3 || ts[0].Name != "app" {
		t.Fatalf("Tiers() = %v, want app-led registry of 3", TierNames())
	}
	seen := map[string]bool{}
	for _, tr := range ts {
		if seen[tr.Name] {
			t.Fatalf("duplicate tier name %q", tr.Name)
		}
		seen[tr.Name] = true
		got, ok := TierByName(tr.Name)
		if !ok || got.Name != tr.Name {
			t.Fatalf("TierByName(%q) = (%v, %t)", tr.Name, got.Name, ok)
		}
	}
	if _, ok := TierByName("bogus"); ok {
		t.Fatal("TierByName resolved an unknown name")
	}
	want := map[string][]bool{
		// per policy.All() order: B, M1, M2, P1, P2
		"app":  {true, true, true, true, true},
		"node": {true, false, false, true, true},
		"step": {true, true, true, true, true},
	}
	for _, tr := range ts {
		for i, id := range policy.All() {
			if got := tr.Supports(id); got != want[tr.Name][i] {
				t.Errorf("%s.Supports(%v) = %t, want %t", tr.Name, id, got, want[tr.Name][i])
			}
		}
	}
	bitID := map[string]bool{"app": true, "node": false, "step": true}
	for _, tr := range ts {
		if tr.BitIdentical != bitID[tr.Name] {
			t.Errorf("%s.BitIdentical = %t, want %t", tr.Name, tr.BitIdentical, bitID[tr.Name])
		}
	}
}

// TestSweepTierDefaults pins the sweep-path routing: sweeps default to
// the step tier, an explicit tier resolves by registry name, unknown
// names and non-bit-identical tiers refuse with context.
func TestSweepTierDefaults(t *testing.T) {
	if got := (Params{}).sweepTier(); got.Name != "step" {
		t.Errorf("default sweep tier = %q, want step", got.Name)
	}
	if got := (Params{SweepTier: "app"}).sweepTier(); got.Name != "app" {
		t.Errorf("explicit sweep tier = %q, want app", got.Name)
	}
	mustPanic := func(p Params, frag string) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("SweepTier=%q did not panic", p.SweepTier)
				return
			}
			if !strings.Contains(fmt.Sprint(r), frag) {
				t.Errorf("SweepTier=%q panic %v lacks %q", p.SweepTier, r, frag)
			}
		}()
		p.sweepTier()
	}
	mustPanic(Params{SweepTier: "bogus"}, "unknown sweep tier")
	mustPanic(Params{SweepTier: "node"}, "not bit-identical")

	if got := (Params{}).crossCheckStride(); got != DefaultCrossCheckStride {
		t.Errorf("default cross-check stride = %d, want %d", got, DefaultCrossCheckStride)
	}
	if got := (Params{CrossCheckStride: 5}).crossCheckStride(); got != 5 {
		t.Errorf("explicit cross-check stride = %d, want 5", got)
	}
	if got := (Params{CrossCheckStride: -1}).crossCheckStride(); got != 0 {
		t.Errorf("negative cross-check stride = %d, want 0 (disabled)", got)
	}
}

// TestSimulateSweepNCrossCheck plants a fake tier that silently drifts
// from the reference on one sampled seed: the sweep must panic with a
// diagnostic naming both tiers, not return the drifted aggregate. A
// matching result on every sampled seed must pass, and stride <= 0 must
// skip the cross-check entirely.
func TestSimulateSweepNCrossCheck(t *testing.T) {
	plat := platform.Config{
		App:    workload.App{Name: "crossval-48", Nodes: 48, TotalCkptGB: 960, ComputeHours: 24},
		System: failure.System{Name: "busy", Shape: 0.75, ScaleHours: 40, Nodes: 48},
	}
	honest := StepTier()
	honest.Name = "fake-honest"
	if agg := SimulateSweepN(honest, policy.P1, plat, 4, 3, 2, 2); agg.N() != 4 {
		t.Fatalf("honest tier: %d runs, want 4", agg.N())
	}

	driftSeed := crmodel.RunSeed(3, 2)
	drift := StepTier()
	drift.Name = "fake-drift"
	drift.Simulate = func(id policy.ID, plat platform.Config, seed uint64) stats.RunResult {
		r := stepsim.Simulate(stepsim.Config{Model: id, Config: plat}, seed)
		if seed == driftSeed {
			r.WallSeconds++
		}
		return r
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("drifted tier passed the cross-check")
			}
			msg := fmt.Sprint(r)
			for _, frag := range []string{"fake-drift", "diverged", "app"} {
				if !strings.Contains(msg, frag) {
					t.Errorf("divergence panic %q lacks %q", msg, frag)
				}
			}
		}()
		SimulateSweepN(drift, policy.P1, plat, 4, 3, 2, 2)
	}()

	// stride 3 samples indices 0 and 3 only — the drift at index 2 is
	// never compared, so the sweep completes; stride 0 skips outright.
	if agg := SimulateSweepN(drift, policy.P1, plat, 4, 3, 2, 3); agg.N() != 4 {
		t.Fatalf("unsampled drift: %d runs, want 4", agg.N())
	}
	if agg := SimulateSweepN(drift, policy.P1, plat, 4, 3, 2, 0); agg.N() != 4 {
		t.Fatalf("stride 0: %d runs, want 4", agg.N())
	}
}

// TestBadAppFilterPanicsWithContext pins the harness-hardening change to
// the app-filter resolution: an unknown application must surface a
// contextualised error, not a bare workload lookup failure.
func TestBadAppFilterPanicsWithContext(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unknown app filter did not panic")
		}
		if !strings.Contains(strings.ToLower(fmt.Sprint(r)), "bad app filter") {
			t.Fatalf("panic %v lacks app-filter context", r)
		}
	}()
	Params{Apps: []string{"NOT-AN-APP"}}.apps()
}
