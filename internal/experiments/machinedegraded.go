package experiments

import (
	"fmt"

	"pckpt/internal/faultinject"
	"pckpt/internal/machine"
	"pckpt/internal/tablefmt"
)

// machineDegradedConfig is the contention cohort under machine-scope
// fault domains: the M1 and P2 tenants share one rack (one crash draw
// strikes both), the late B tenant sits alone, and the machine itself
// degrades — PFS brownout/blackout windows move the arbiter ceiling,
// drain-slot outages requeue in-flight drains, rack crashes throw
// running tenants back through admission with bounded retries, and the
// starvation watchdog escalates any flow starved past its bound into
// the priority lane.
func machineDegradedConfig(faults faultinject.MachineConfig) machine.Config {
	cfg := contentionCohort()
	cfg.MaxConcurrentDrains = 2
	cfg.Racks = []int{0, 0, 1}
	cfg.Faults = faults
	return cfg
}

// machineDegradedFaults is the experiment's default armed plan — every
// fault process on at a moderate rate, so one golden pins the brownout
// repricing, the drain requeue, the crash lifecycle (requeues and
// retry-exhausted truncations both occur at these rates), and the
// watchdog escalations at once.
func machineDegradedFaults() faultinject.MachineConfig {
	return faultinject.MachineConfig{
		BrownoutRatePerHour:         0.5,
		BrownoutMeanSeconds:         600,
		BrownoutMinFactor:           0.2,
		BrownoutMaxFactor:           0.6,
		BlackoutProb:                0.25,
		DrainOutageRatePerHour:      0.4,
		DrainOutageMeanSeconds:      300,
		DrainOutageSlots:            2,
		CrashRatePerHour:            0.12,
		CrashMaxRetries:             2,
		CrashBackoffSeconds:         600,
		StarvationEscalationSeconds: 900,
	}
}

// MachineDegraded runs the shared-machine cohort with the machine-scope
// fault plan armed: per-tenant slowdown, crash and truncation counts,
// and starvation stretches under PFS brownouts, drain outages, and
// correlated rack crashes. A -machine-* flag set replaces the default
// plan wholesale.
func MachineDegraded(p Params) Result {
	p = p.withDefaults()
	faults := machineDegradedFaults()
	if p.MachineFaults.Enabled() {
		faults = p.MachineFaults
	}
	cfg := machineDegradedConfig(faults)
	seed := configSeed(p.Seed, "machine-degraded")
	results := machine.SimulateN(cfg, p.Runs, seed, p.Workers)

	n := float64(len(results))
	type agg struct {
		slow, wait, starve, stretch, wall float64
		crashes, trunc                    int
	}
	jobs := make([]agg, len(cfg.Jobs))
	makespan, peak, brownS := 0.0, 0.0, 0.0
	brown, outages, crashes, requeues, escal := 0, 0, 0, 0, 0
	for _, res := range results {
		for i, jr := range res.Jobs {
			jobs[i].slow += jr.SlowdownX
			jobs[i].wait += jr.QueueWaitSeconds
			jobs[i].starve += jr.StarvationSeconds
			jobs[i].stretch += jr.MaxStarvationStretchSeconds
			jobs[i].wall += jr.Run.WallSeconds
			jobs[i].crashes += jr.Crashes
			if jr.Run.Truncated {
				jobs[i].trunc++
			}
		}
		makespan += res.MakespanSeconds
		if res.PeakAllocGBs > peak {
			peak = res.PeakAllocGBs
		}
		brown += res.Brownouts
		brownS += res.BrownoutSeconds
		outages += res.DrainOutages
		crashes += res.TenantCrashes
		requeues += res.CrashRequeues
		escal += res.Escalations
	}

	t := tablefmt.NewTable("Job", "Model", "Rack", "Wall(h)", "Slowdown(x)", "QueueWait(s)", "Starve(s)", "MaxStretch(s)", "Crashes", "Trunc(frac)")
	values := map[string]float64{}
	for i, a := range jobs {
		j := cfg.Jobs[i]
		t.AddRow(
			fmt.Sprintf("%d", i),
			j.Model.String(),
			fmt.Sprintf("%d", cfg.Racks[i]),
			fmt.Sprintf("%.2f", a.wall/n/3600),
			fmt.Sprintf("%.3f", a.slow/n),
			fmt.Sprintf("%.1f", a.wait/n),
			fmt.Sprintf("%.1f", a.starve/n),
			fmt.Sprintf("%.1f", a.stretch/n),
			fmt.Sprintf("%.2f", float64(a.crashes)/n),
			fmt.Sprintf("%.2f", float64(a.trunc)/n),
		)
		key := fmt.Sprintf("job%d/%s", i, j.Model)
		values[key+"/slowdown-x"] = a.slow / n
		values[key+"/queue-wait-s"] = a.wait / n
		values[key+"/starve-s"] = a.starve / n
		values[key+"/max-stretch-s"] = a.stretch / n
		values[key+"/crashes"] = float64(a.crashes) / n
		values[key+"/truncated-frac"] = float64(a.trunc) / n
	}
	values["makespan-h"] = makespan / n / 3600
	values["peak-alloc-gbs"] = peak
	values["brownouts"] = float64(brown) / n
	values["brownout-s"] = brownS / n
	values["drain-outages"] = float64(outages) / n
	values["tenant-crashes"] = float64(crashes) / n
	values["crash-requeues"] = float64(requeues) / n
	values["escalations"] = float64(escal) / n

	text := t.String() + fmt.Sprintf(
		"\n(machine-scope fault domains over the contention cohort: %.2f brownout windows/run\n"+
			" (%.0fs mean total, blackout prob %.2f), %.2f drain outages/run, %.2f tenant crashes/run\n"+
			" with %.2f requeues; watchdog bound %.0fs fired %.2f escalations/run;\n"+
			" mean makespan %.2fh, peak aggregate allocation %.2f GB/s never exceeds the live ceiling)\n",
		float64(brown)/n, brownS/n, faults.BlackoutProb, float64(outages)/n,
		float64(crashes)/n, float64(requeues)/n,
		faults.StarvationEscalationSeconds, float64(escal)/n,
		makespan/n/3600, peak)
	return Result{
		ID:     "machine-degraded",
		Title:  "Extension: machine-scope fault domains — PFS brownouts, tenant crashes with requeue, bounded-starvation degradation",
		Text:   text,
		Values: values,
	}
}
