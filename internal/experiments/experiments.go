// Package experiments defines one runnable experiment per table and
// figure of the paper's evaluation, wiring the workload catalogue, the
// failure stack, and the C/R models together and rendering the same rows
// and series the paper reports. The cmd/experiments binary and the
// repository's benchmark suite are thin wrappers over this package.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/metrics"
	"pckpt/internal/platform"
	"pckpt/internal/runcache"
	"pckpt/internal/stats"
	"pckpt/internal/workload"
)

// Params controls experiment execution.
type Params struct {
	// Runs is the number of simulation runs averaged per configuration
	// (the paper uses 1000; the default here is 200, which reproduces
	// every qualitative result in a fraction of the time).
	Runs int
	// Seed is the base seed; every configuration derives its own. The
	// zero value selects 42 unless SeedSet says zero was meant.
	Seed uint64
	// SeedSet marks Seed as explicitly chosen, so Seed == 0 simulates
	// with base seed 0 instead of the default 42.
	SeedSet bool
	// Workers bounds the worker pool (default: GOMAXPROCS).
	Workers int
	// Apps restricts the applications simulated (names from the Table I
	// catalogue); empty means the experiment's own default set.
	Apps []string
	// Tiers restricts the non-reference simulation tiers cross-validated
	// against the app-level model (names from the Tiers() registry);
	// empty means every registered tier. Experiments that run a single
	// tier ignore it.
	Tiers []string
	// Metrics, when non-nil, collects merged simulation-metric snapshots
	// across every configuration the experiment runs (see
	// internal/metrics). Metering adds per-run registries but keeps the
	// simulation hot path allocation-free.
	Metrics *metrics.Collector
	// Cache, when non-nil, is consulted before every configuration is
	// simulated and receives every freshly simulated aggregate, making
	// sweeps resumable (see internal/runcache). Cache keys exclude
	// Workers (results are worker-count independent) and the Apps/Tiers
	// filters (a filter selects configurations, it does not change any
	// one configuration's identity).
	Cache *runcache.Store
	// Experiment namespaces cache keys with the registry ID. Run stamps
	// it; leave empty when calling a Def's Run function directly and the
	// cache will key under the experiment-agnostic "" namespace.
	Experiment string
	// Faults, when enabled, injects degraded-platform faults into every
	// configuration an experiment runs (cmd/experiments -inject-* flags).
	// The injection rates participate in the platform cache key, so
	// degraded sweeps never collide with clean ones; the zero value
	// leaves every experiment bit-identical to an injection-free build.
	Faults faultinject.Config
	// MachineFaults, when enabled, arms the machine-scope fault plan
	// (PFS brownouts, drain-slot outages, tenant crashes, starvation
	// watchdog) for the shared-machine experiments (cmd/experiments
	// -machine-* flags). Only contention and machine-degraded honour it;
	// neither is cached, so the plan needs no cache-key plumbing.
	MachineFaults faultinject.MachineConfig
	// SweepTier names the registry tier experiment sweeps simulate on;
	// empty selects the step tier. The tier must be bit-identical to the
	// reference (cache keys are tier-agnostic, so a cached aggregate must
	// not depend on which tier produced it) — the node tier is therefore
	// not a valid sweep tier. Distinct from Tiers, which filters the
	// tiers the crossval experiment compares.
	SweepTier string
	// CrossCheckStride re-runs every Nth seed of a sweep configuration on
	// the reference tier and compares bit for bit (see SimulateSweepN).
	// Zero selects DefaultCrossCheckStride; negative disables the
	// cross-check.
	CrossCheckStride int
	// Interrupt, when non-nil, aborts the sweep at the next
	// configuration boundary once closed: already-cached configurations
	// still resolve, the first un-cached one panics with ErrInterrupted
	// (recovered by Run). Completed configurations are already flushed
	// to Cache, so a rerun resumes at the unfinished tail.
	Interrupt <-chan struct{}
}

func (p Params) withDefaults() Params {
	if p.Runs <= 0 {
		p.Runs = 200
	}
	if p.Seed == 0 && !p.SeedSet {
		p.Seed = 42
	}
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	return p
}

// Result is one experiment's rendered output.
type Result struct {
	// ID is the registry key ("fig6a", "table2", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Text is the rendered table/figure.
	Text string
	// Values holds machine-readable headline numbers keyed by a short
	// label, letting tests assert the paper's qualitative claims without
	// parsing Text.
	Values map[string]float64
}

// Def is a registry entry.
type Def struct {
	ID    string
	Title string
	Run   func(Params) Result
}

// All returns the experiment registry in the paper's presentation order.
func All() []Def {
	return []Def{
		{"table1", "Table I: HPC workload characteristics", Table1},
		{"table3", "Table III: Weibull distributions for failure generation", Table3},
		{"fig2a", "Fig. 2a: failure prediction lead time distribution (mined)", Fig2a},
		{"fig2b", "Fig. 2b: single-node I/O bandwidth vs task count", Fig2b},
		{"fig2c", "Fig. 2c: weak-scaling I/O performance matrix", Fig2c},
		{"fig4", "Fig. 4: lead-time variability impact on M1/M2", Fig4},
		{"table2", "Table II: FT ratio for applications under M1 and M2", Table2},
		{"fig6a", "Fig. 6a: overhead by model, OLCF Titan distribution", Fig6a},
		{"fig6b", "Fig. 6b: overhead by model, LANL System 18 distribution", Fig6b},
		{"fig6sys8", "Fig. 6 (text): overhead by model, LANL System 8 distribution", Fig6System8},
		{"fig6c", "Fig. 6c: LM transfer size sweep (M2-α vs P1)", Fig6c},
		{"fig7", "Fig. 7: lead-time variability impact on P1/P2", Fig7},
		{"table4", "Table IV: FT ratio for applications under P1 and P2", Table4},
		{"fig8", "Fig. 8: FT-ratio difference, LM vs p-ckpt in P2", Fig8},
		{"obs9", "Observation 9: false-negative-rate sensitivity", Obs9},
		{"obs9fix", "Extension: accuracy-aware σ in Eq. (2) (paper's future work)", Obs9Fix},
		{"globalview", "Extension: p-ckpt with a global system view (paper's out-of-scope item)", GlobalView},
		{"analytic", "Observation 8: analytical LM vs p-ckpt model (Eqs. 4-8)", Analytic},
		{"crossval", "Cross-validation: app-level reference vs node-granular and step tiers on matched seeds", CrossValidation},
		{"degraded", "Extension: degraded platform — injected write failures, corruption, restart retries", Degraded},
		{"scenario", "Extension: declarative scenario specs — cohorts, platforms, failure-trace replay", Scenario},
		{"contention", "Extension: multi-tenant contention — shared PFS bandwidth arbitration and admission", Contention},
		{"machine-degraded", "Extension: machine-scope fault domains — PFS brownouts, tenant crashes with requeue, bounded-starvation degradation", MachineDegraded},
	}
}

// ByID looks an experiment up.
func ByID(id string) (Def, error) {
	for _, d := range All() {
		if d.ID == id {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// apps resolves the Params app filter against a default set.
func (p Params) apps(defaults ...string) []workload.App {
	names := p.Apps
	if len(names) == 0 {
		names = defaults
	}
	if len(names) == 0 {
		names = workload.Names()
	}
	out := make([]workload.App, 0, len(names))
	for _, n := range names {
		a, err := workload.ByName(n)
		if err != nil {
			panic(fmt.Errorf("experiments: bad app filter: %w", err))
		}
		out = append(out, a)
	}
	return out
}

// sweepTier resolves the Params sweep tier: the step tier by default,
// and never a tier that is not bit-identical to the reference.
func (p Params) sweepTier() Tier {
	name := p.SweepTier
	if name == "" {
		name = StepTier().Name
	}
	t, ok := TierByName(name)
	if !ok {
		panic(fmt.Errorf("experiments: unknown sweep tier %q (have %s)", name, strings.Join(TierNames(), ", ")))
	}
	if !t.BitIdentical {
		panic(fmt.Errorf("experiments: tier %q is not bit-identical to the reference and cannot run sweeps (cache keys are tier-agnostic)", name))
	}
	return t
}

// crossCheckStride resolves the Params cross-check density: the default
// stride when unset, disabled when negative.
func (p Params) crossCheckStride() int {
	switch {
	case p.CrossCheckStride == 0:
		return DefaultCrossCheckStride
	case p.CrossCheckStride < 0:
		return 0
	}
	return p.CrossCheckStride
}

// configSeed derives a deterministic per-configuration seed from the base
// seed and a label, so adding configurations never perturbs others.
func configSeed(base uint64, label string) uint64 {
	h := base ^ 0xcbf29ce484222325
	for _, c := range label {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// runConfig resolves one (model, app, …) configuration: from the cache
// when possible, by simulation otherwise (metering into p.Metrics when
// collection is on, and flushing the fresh aggregate back to the cache).
// Unmetered sweeps run on p's sweep tier — the step tier by default —
// with the app tier sampled as a bit-identity cross-check; metered
// sweeps stay on the app tier, whose metric series the collectors and
// snapshot goldens expect.
func runConfig(p Params, cfg crmodel.Config, label string) *stats.Agg {
	if p.Faults.Enabled() && !cfg.Faults.Enabled() {
		cfg.Faults = p.Faults
	}
	key := p.cacheKey(label, cfg.Model, cfg.Config, p.Runs)
	if agg, ok := p.cacheGet(key, p.Metrics != nil); ok {
		return agg
	}
	p.checkInterrupt()
	seed := configSeed(p.Seed, label)
	if p.Metrics == nil {
		agg := SimulateSweepN(p.sweepTier(), cfg.Model, cfg.Config, p.Runs, seed, p.Workers, p.crossCheckStride())
		p.cachePut(key, agg, nil)
		return agg
	}
	agg, snap := crmodel.SimulateNMetered(cfg, p.Runs, seed, p.Workers)
	p.Metrics.Add(snap)
	p.cachePut(key, agg, snap)
	return agg
}

// modelSet runs several models on one app/system/lead-scale and returns
// the aggregates keyed by model.
func modelSet(p Params, app workload.App, sys failure.System, leadScale float64, fnRate float64, models []crmodel.Model) map[crmodel.Model]*stats.Agg {
	out := make(map[crmodel.Model]*stats.Agg, len(models))
	for _, m := range models {
		label := fmt.Sprintf("%s|%s|%s|ls=%.3f|fn=%.3f", app.Name, sys.Name, m, leadScale, fnRate)
		cfg := crmodel.Config{
			Model: m,
			Config: platform.Config{
				App:       app,
				System:    sys,
				LeadScale: leadScale,
				FNRate:    fnRate,
			},
		}
		out[m] = runConfig(p, cfg, label)
	}
	return out
}

// leadScales is the ±50 % variability axis of Figs. 4 and 7 / Tables II
// and IV.
var leadScales = []float64{1.5, 1.1, 1.0, 0.9, 0.5}

// leadScaleLabel renders a scale as the paper's percent-change notation.
func leadScaleLabel(s float64) string {
	pct := (s - 1) * 100
	switch {
	case pct > 0:
		return fmt.Sprintf("+%.0f%%", pct)
	case pct < 0:
		return fmt.Sprintf("%.0f%%", pct)
	default:
		return "0%"
	}
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RenderResultValues renders a Result's machine-readable values as an
// aligned key/value listing (used by cmd/experiments -values).
func RenderResultValues(r Result) string {
	var b strings.Builder
	for _, k := range sortedKeys(r.Values) {
		fmt.Fprintf(&b, "  %-48s %12.4g\n", k, r.Values[k])
	}
	return b.String()
}
