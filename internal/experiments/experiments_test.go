package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// fastParams keeps experiment tests quick; the qualitative claims they
// assert are robust at this run count.
var fastParams = Params{Runs: 80, Seed: 42}

func TestRegistryComplete(t *testing.T) {
	defs := All()
	if len(defs) != 23 {
		t.Fatalf("registry has %d experiments, want 23", len(defs))
	}
	seen := map[string]bool{}
	for _, d := range defs {
		if d.ID == "" || d.Title == "" || d.Run == nil {
			t.Errorf("incomplete definition: %+v", d)
		}
		if seen[d.ID] {
			t.Errorf("duplicate experiment ID %q", d.ID)
		}
		seen[d.ID] = true
	}
}

func TestByID(t *testing.T) {
	d, err := ByID("fig6a")
	if err != nil || d.ID != "fig6a" {
		t.Fatalf("ByID(fig6a) = %+v, %v", d, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestTable1(t *testing.T) {
	r := Table1(fastParams)
	if !strings.Contains(r.Text, "CHIMERA") || !strings.Contains(r.Text, "VULCAN") {
		t.Fatalf("Table I missing applications:\n%s", r.Text)
	}
	if v := r.Values["CHIMERA/per-node-GB"]; v < 280 || v > 290 {
		t.Fatalf("CHIMERA per-node footprint %.1f, want ≈284.5", v)
	}
}

func TestTable3(t *testing.T) {
	r := Table3(fastParams)
	if v := r.Values["OLCF Titan/mtbf-h"]; v < 6.5 || v > 7.5 {
		t.Fatalf("Titan MTBF %.2f h, want ≈7", v)
	}
}

func TestFig2a(t *testing.T) {
	r := Fig2a(Params{Runs: 30, Seed: 42})
	if r.Values["mined"] < 0.9*r.Values["planted"] {
		t.Fatalf("mining recovered %v of %v chains", r.Values["mined"], r.Values["planted"])
	}
	gen := r.Values["generator-mean-lead-s"]
	mined := r.Values["mined-mean-lead-s"]
	if gen <= 0 || mined <= 0 || mined/gen < 0.85 || mined/gen > 1.15 {
		t.Fatalf("mined mean %v vs generator %v", mined, gen)
	}
}

func TestFig2b(t *testing.T) {
	r := Fig2b(fastParams)
	if !(r.Values["peak-8task-GBs"] > r.Values["peak-1task-GBs"] &&
		r.Values["peak-8task-GBs"] > r.Values["peak-42task-GBs"]) {
		t.Fatalf("8-task curve is not the optimum: %v", r.Values)
	}
}

func TestFig2c(t *testing.T) {
	r := Fig2c(fastParams)
	if r.Values["corner-max-GBs"] <= r.Values["corner-min-GBs"] {
		t.Fatalf("matrix not increasing: %v", r.Values)
	}
	if !strings.Contains(r.Text, "heat map") {
		t.Fatal("heat map missing")
	}
}

func TestFig6aPaperClaims(t *testing.T) {
	r := Fig6a(Params{Runs: 150, Seed: 42, Apps: []string{"CHIMERA", "XGC", "POP"}})
	// Observation 2: P1 and P2 reduce total overhead substantially; P2
	// beats P1 for long-running apps; M1 does nothing for large apps.
	for _, app := range []string{"CHIMERA", "XGC", "POP"} {
		p1 := r.Values[app+"/P1/reduction-pct"]
		p2 := r.Values[app+"/P2/reduction-pct"]
		if p1 < 25 {
			t.Errorf("%s P1 reduction %.1f%%, want ≥25%%", app, p1)
		}
		if p2 < 40 {
			t.Errorf("%s P2 reduction %.1f%%, want ≥40%%", app, p2)
		}
	}
	for _, app := range []string{"CHIMERA", "XGC"} {
		if m1 := r.Values[app+"/M1/reduction-pct"]; m1 > 10 || m1 < -10 {
			t.Errorf("%s M1 reduction %.1f%%, want ≈0 (safeguard useless at scale)", app, m1)
		}
		// P1 must beat M2 for large applications (Observation 2).
		if r.Values[app+"/P1/reduction-pct"] <= r.Values[app+"/M2/reduction-pct"]-3 {
			t.Errorf("%s: P1 (%.1f%%) not ≳ M2 (%.1f%%)", app,
				r.Values[app+"/P1/reduction-pct"], r.Values[app+"/M2/reduction-pct"])
		}
	}
	// FT ratio anchors from Tables II/IV.
	if ft := r.Values["CHIMERA/M1/ft"]; ft > 0.05 {
		t.Errorf("CHIMERA M1 FT %.3f, want ≈0", ft)
	}
	if ft := r.Values["CHIMERA/P1/ft"]; ft < 0.6 || ft > 0.8 {
		t.Errorf("CHIMERA P1 FT %.3f, want ≈0.70", ft)
	}
}

func TestFig6RobustAcrossDistributions(t *testing.T) {
	// Observation 7: reductions persist across the Weibull catalogues.
	p := Params{Runs: 80, Seed: 42, Apps: []string{"XGC"}}
	for _, run := range []func(Params) Result{Fig6b, Fig6System8} {
		r := run(p)
		if red := r.Values["XGC/P2/reduction-pct"]; red < 35 {
			t.Errorf("%s: XGC P2 reduction %.1f%%, want ≥35%%", r.ID, red)
		}
	}
}

func TestFig6cCrossover(t *testing.T) {
	r := Fig6c(Params{Runs: 120, Seed: 42, Apps: []string{"CHIMERA", "POP"}})
	// Observation 8: for the largest application, P1 beats M2 at the
	// default α=3 but loses when α approaches 1.
	if r.Values["CHIMERA/P1/reduction-pct"] <= r.Values["CHIMERA/M2-3/reduction-pct"] {
		t.Errorf("CHIMERA: P1 (%.1f%%) should beat M2-3x (%.1f%%)",
			r.Values["CHIMERA/P1/reduction-pct"], r.Values["CHIMERA/M2-3/reduction-pct"])
	}
	if r.Values["CHIMERA/M2-1/reduction-pct"] <= r.Values["CHIMERA/P1/reduction-pct"] {
		t.Errorf("CHIMERA: M2-1x (%.1f%%) should beat P1 (%.1f%%)",
			r.Values["CHIMERA/M2-1/reduction-pct"], r.Values["CHIMERA/P1/reduction-pct"])
	}
	// For small applications LM always wins.
	if r.Values["POP/M2-3/reduction-pct"] <= r.Values["POP/P1/reduction-pct"] {
		t.Errorf("POP: M2 (%.1f%%) should beat P1 (%.1f%%)",
			r.Values["POP/M2-3/reduction-pct"], r.Values["POP/P1/reduction-pct"])
	}
}

func TestTable2Cliff(t *testing.T) {
	r := Table2(Params{Runs: 100, Seed: 42, Apps: []string{"CHIMERA"}})
	// The Table II signature: CHIMERA M2 collapses between 0% and −10%.
	at0 := r.Values["CHIMERA/0%/M2/ft"]
	atMinus10 := r.Values["CHIMERA/-10%/M2/ft"]
	if at0 < 0.35 || at0 > 0.6 {
		t.Errorf("CHIMERA M2 FT at 0%% = %.3f, want ≈0.47", at0)
	}
	if atMinus10 > 0.15 {
		t.Errorf("CHIMERA M2 FT at −10%% = %.3f, want ≈0.04 (the cliff)", atMinus10)
	}
	if m1 := r.Values["CHIMERA/0%/M1/ft"]; m1 > 0.05 {
		t.Errorf("CHIMERA M1 FT = %.3f, want ≈0", m1)
	}
}

func TestTable4Resilience(t *testing.T) {
	r := Table4(Params{Runs: 100, Seed: 42, Apps: []string{"CHIMERA", "XGC"}})
	// P1 keeps a usable FT ratio even at −50% lead (paper: 0.36).
	if v := r.Values["CHIMERA/-50%/P1/ft"]; v < 0.25 || v > 0.55 {
		t.Errorf("CHIMERA P1 FT at −50%% = %.3f, want ≈0.36", v)
	}
	// XGC's p-ckpt latency is so small its FT ratio barely moves.
	if hi, lo := r.Values["XGC/+50%/P1/ft"], r.Values["XGC/-50%/P1/ft"]; hi-lo > 0.15 {
		t.Errorf("XGC P1 FT swings %.3f→%.3f; paper holds it ≈0.84 throughout", lo, hi)
	}
}

func TestFig7PckptHoldsUnderShortLeads(t *testing.T) {
	r := Fig7(Params{Runs: 100, Seed: 42, Apps: []string{"CHIMERA"}})
	// Observation 3: at −50% lead, P1 still saves recomputation.
	if v := r.Values["CHIMERA/-50%/P1/recomp-red"]; v < 15 {
		t.Errorf("CHIMERA P1 recomputation reduction at −50%% = %.1f%%, want noticeably positive", v)
	}
	// At reference leads P1 nearly... saves most recomputation.
	if v := r.Values["CHIMERA/0%/P1/recomp-red"]; v < 50 {
		t.Errorf("CHIMERA P1 recomputation reduction at 0%% = %.1f%%, want ≥50%%", v)
	}
}

func TestFig4M2Cliff(t *testing.T) {
	r := Fig4(Params{Runs: 100, Seed: 42, Apps: []string{"CHIMERA"}})
	at0 := r.Values["CHIMERA/0%/M2/total-red"]
	atMinus10 := r.Values["CHIMERA/-10%/M2/total-red"]
	// A mere 10% lead decrease wipes out most of M2's benefit.
	if at0 < 15 {
		t.Errorf("CHIMERA M2 total reduction at 0%% = %.1f%%, want ≥15%%", at0)
	}
	if atMinus10 > at0/2 {
		t.Errorf("CHIMERA M2 at −10%% (%.1f%%) did not collapse from %.1f%%", atMinus10, at0)
	}
}

func TestFig8Shape(t *testing.T) {
	r := Fig8(Params{Runs: 80, Seed: 42, Apps: []string{"CHIMERA", "VULCAN"}})
	// Small applications: LM dominates across the whole range.
	for _, s := range []string{"-50%", "0%", "+50%"} {
		if v := r.Values["VULCAN/"+s+"/lm-minus-pckpt-pct"]; v < 50 {
			t.Errorf("VULCAN at %s: LM share %.1f, want strongly positive", s, v)
		}
	}
	// The largest application flips to p-ckpt as leads shrink.
	if v := r.Values["CHIMERA/-50%/lm-minus-pckpt-pct"]; v > 0 {
		t.Errorf("CHIMERA at −50%%: %.1f, want negative (p-ckpt dominant)", v)
	}
	if v := r.Values["CHIMERA/+90%/lm-minus-pckpt-pct"]; v < 0 {
		t.Errorf("CHIMERA at +90%%: %.1f, want positive (LM dominant)", v)
	}
}

func TestObs9Decline(t *testing.T) {
	r := Obs9(Params{Runs: 100, Seed: 42, Apps: []string{"XGC"}})
	// Rising FN degrades every model's total reduction...
	for _, m := range []string{"M2", "P1", "P2"} {
		base := r.Values["XGC/fn=0.125/"+m+"/total-red"]
		worst := r.Values["XGC/fn=0.400/"+m+"/total-red"]
		if worst >= base {
			t.Errorf("XGC %s: total reduction did not decline with FN (%.1f → %.1f)", m, base, worst)
		}
	}
	// ...and the LM-assisted models lose more recomputation benefit than
	// the p-ckpt model (Observation 9).
	dropP1 := r.Values["XGC/fn=0.125/P1/recomp-red"] - r.Values["XGC/fn=0.400/P1/recomp-red"]
	dropP2 := r.Values["XGC/fn=0.125/P2/recomp-red"] - r.Values["XGC/fn=0.400/P2/recomp-red"]
	if dropP2 <= dropP1 {
		t.Errorf("P2 recomputation drop (%.1f) not larger than P1's (%.1f)", dropP2, dropP1)
	}
}

func TestAnalyticExperiment(t *testing.T) {
	r := Analytic(Params{Apps: []string{"CHIMERA", "POP"}})
	if v := r.Values["alpha-at-sigma-max"]; v < 1.28 || v > 1.32 {
		t.Errorf("Eq. (8) upper break-even α = %.3f, want ≈1.30", v)
	}
	if v := r.Values["CHIMERA/theta-s"]; v < 40 || v > 42 {
		t.Errorf("CHIMERA θ = %.2f, want ≈41", v)
	}
	if !strings.Contains(r.Text, "p-ckpt wins") {
		t.Fatal("verdict column missing")
	}
}

func TestParamsAppsFilter(t *testing.T) {
	p := Params{Apps: []string{"POP"}}
	apps := p.apps("CHIMERA", "XGC")
	if len(apps) != 1 || apps[0].Name != "POP" {
		t.Fatalf("filter not applied: %v", apps)
	}
	apps = Params{}.apps("CHIMERA")
	if len(apps) != 1 || apps[0].Name != "CHIMERA" {
		t.Fatalf("defaults not applied: %v", apps)
	}
}

func TestConfigSeedStable(t *testing.T) {
	if configSeed(1, "a") == configSeed(1, "b") {
		t.Fatal("different labels must derive different seeds")
	}
	if configSeed(1, "a") != configSeed(1, "a") {
		t.Fatal("seed derivation must be stable")
	}
}

func TestLeadScaleLabel(t *testing.T) {
	cases := map[float64]string{1.5: "+50%", 1.0: "0%", 0.9: "-10%", 0.5: "-50%"}
	for s, want := range cases {
		if got := leadScaleLabel(s); got != want {
			t.Errorf("leadScaleLabel(%g) = %q, want %q", s, got, want)
		}
	}
}

func TestObs9FixRestoresRobustness(t *testing.T) {
	r := Obs9Fix(Params{Runs: 120, Seed: 42, Apps: []string{"XGC"}})
	// At high FN, the accuracy-aware variant must recover recomputation
	// benefit relative to the published model.
	pub := r.Values["XGC/fn=0.400/published/recomp-red"]
	fix := r.Values["XGC/fn=0.400/accuracy-aware/recomp-red"]
	if fix <= pub {
		t.Errorf("accuracy-aware recomp reduction %.1f%% not above published %.1f%% at FN=0.4", fix, pub)
	}
	// At baseline FN the variants use the same σ, so they agree up to
	// seed noise (each configuration derives its own seed).
	pub0 := r.Values["XGC/fn=0.125/published/total-red"]
	fix0 := r.Values["XGC/fn=0.125/accuracy-aware/total-red"]
	if pub0-fix0 > 5 || fix0-pub0 > 5 {
		t.Errorf("variants diverge at baseline FN: %.2f vs %.2f", pub0, fix0)
	}
}

func TestGlobalViewExtension(t *testing.T) {
	r := GlobalView(Params{Seed: 42})
	// With a single episode per window there is little overlap; by eight
	// the per-job mode must be visibly degraded while global holds.
	if g := r.Values["burst=8/ft-global"]; g < 0.7 {
		t.Errorf("global FT at burst=8 is %.3f, want mostly preserved", g)
	}
	if pj, g := r.Values["burst=8/ft-per-job"], r.Values["burst=8/ft-global"]; g-pj < 0.2 {
		t.Errorf("global advantage at burst=8 is only %.3f (per-job %.3f, global %.3f)", g-pj, pj, g)
	}
	for _, b := range []int{1, 2, 4, 8} {
		g := r.Values[fmt.Sprintf("burst=%d/ft-global", b)]
		pj := r.Values[fmt.Sprintf("burst=%d/ft-per-job", b)]
		if g < pj {
			t.Errorf("burst=%d: global FT %.3f below per-job %.3f", b, g, pj)
		}
	}
}

// TestObservation5And6 asserts the paper's Observations 5 and 6 on the
// Fig. 6a data: P2 cuts checkpoint overhead substantially (the σ-driven
// interval elongation), while paying more recomputation than P1.
func TestObservation5And6(t *testing.T) {
	p := Params{Runs: 150, Seed: 42, Apps: []string{"CHIMERA", "XGC"}}
	r := Fig6a(p)
	f7 := Fig7(Params{Runs: 150, Seed: 42, Apps: []string{"CHIMERA", "XGC"}})
	for _, app := range []string{"CHIMERA", "XGC"} {
		// Observation 5: P2 checkpoint-overhead reduction is large; the
		// paper reports ≈42–70 % (CHIMERA lands slightly below here, see
		// EXPERIMENTS.md).
		ck := f7.Values[app+"/0%/P2/ckpt-red"]
		if ck < 30 {
			t.Errorf("%s: P2 checkpoint reduction %.1f%%, want ≥30%%", app, ck)
		}
		// P1's checkpoint overhead is essentially unchanged.
		if p1ck := f7.Values[app+"/0%/P1/ckpt-red"]; p1ck > 10 || p1ck < -10 {
			t.Errorf("%s: P1 checkpoint reduction %.1f%%, want ≈0", app, p1ck)
		}
		// Observation 6: P1 recomputes less than P2 (more frequent
		// checkpoints), by a visible margin.
		p1rc := f7.Values[app+"/0%/P1/recomp-red"]
		p2rc := f7.Values[app+"/0%/P2/recomp-red"]
		if p1rc-p2rc < 5 {
			t.Errorf("%s: P1 recomputation advantage only %.1f pts (P1 %.1f, P2 %.1f)", app, p1rc-p2rc, p1rc, p2rc)
		}
		// Yet P2 wins on total overhead (the checkpoint savings dominate
		// for these long-running applications — the paper's
		// Recommendation).
		if r.Values[app+"/P2/reduction-pct"] <= r.Values[app+"/P1/reduction-pct"] {
			t.Errorf("%s: P2 total reduction %.1f%% not above P1's %.1f%%", app,
				r.Values[app+"/P2/reduction-pct"], r.Values[app+"/P1/reduction-pct"])
		}
	}
}
