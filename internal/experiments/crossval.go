package experiments

import (
	"fmt"

	"pckpt/internal/failure"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/tablefmt"
	"pckpt/internal/workload"
)

// CrossValidation runs every catalogue entry the node-granular tier
// implements through BOTH simulation tiers on a matched platform
// configuration and identical seed sequences, and reports how closely
// the tiers agree — the repo's standing check that the node-granular
// simulator tells the same story as the paper-style application-level
// model. Event counts (failures, predicted) must agree exactly; wall
// time and overhead accounting within a few percent.
func CrossValidation(p Params) Result {
	p = p.withDefaults()
	// A small busy configuration: big enough to exercise episodes,
	// migrations, and recoveries across seeds, small enough that the
	// node-granular tier (one process per node) stays fast.
	app := workload.App{Name: "crossval-48", Nodes: 48, TotalCkptGB: 960, ComputeHours: 24}
	sys := failure.System{Name: "busy", Shape: 0.75, ScaleHours: 40, Nodes: 48}
	plat := platform.Config{App: app, System: sys}
	runs := p.Runs / 16
	if runs < 6 {
		runs = 6
	}

	t := tablefmt.NewTable("Model", "Tier", "Failures", "Mitigated", "Avoided", "Wall(h)", "Total ovh(h)")
	values := map[string]float64{}
	appT, nodeT := AppTier(), NodeTier()
	for _, id := range policy.All() {
		if !nodeT.Supports(id) {
			continue
		}
		aAgg := runTier(p, appT, id, plat, runs, p.Seed)
		nAgg := runTier(p, nodeT, id, plat, runs, p.Seed)
		var aF, nF, aM, nM, aA, nA int
		for i, ar := range aAgg.Runs() {
			nr := nAgg.Runs()[i]
			aF += ar.Failures
			nF += nr.Failures
			aM += ar.Mitigated
			nM += nr.Mitigated
			aA += ar.Avoided
			nA += nr.Avoided
		}
		for _, row := range []struct {
			tier      string
			f, m, av  int
			wall, tot float64
		}{
			{appT.Name, aF, aM, aA, aAgg.MeanWallSeconds(), aAgg.MeanOverheads().Total()},
			{nodeT.Name, nF, nM, nA, nAgg.MeanWallSeconds(), nAgg.MeanOverheads().Total()},
		} {
			t.AddRow(id.String(), row.tier,
				fmt.Sprint(row.f), fmt.Sprint(row.m), fmt.Sprint(row.av),
				fmt.Sprintf("%.2f", row.wall/3600), fmt.Sprintf("%.2f", row.tot/3600))
		}
		values[id.String()+"/failures-diff"] = float64(aF - nF)
		values[id.String()+"/mitigated-diff"] = float64(aM - nM)
		values[id.String()+"/avoided-diff"] = float64(aA - nA)
		wallDiv := 0.0
		if aw := aAgg.MeanWallSeconds(); aw > 0 {
			wallDiv = (nAgg.MeanWallSeconds() - aw) / aw
		}
		values[id.String()+"/wall-divergence"] = wallDiv
	}
	text := t.String() + fmt.Sprintf("\n(%d matched seeds per model; both tiers share internal/platform quantities and the internal/policy catalogue)\n", runs)
	return Result{ID: "crossval", Title: "Cross-validation: app-level vs node-granular tier on matched seeds", Text: text, Values: values}
}
