package experiments

import (
	"fmt"

	"pckpt/internal/failure"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/stats"
	"pckpt/internal/tablefmt"
	"pckpt/internal/workload"
)

// CrossValidation runs every catalogue entry through the app-level
// reference tier and every other registered tier that implements it, on
// a matched platform configuration and identical seed sequences, and
// reports how closely the tiers agree — the repo's standing check that
// each granularity tells the same story as the paper-style
// application-level model. Event counts (failures, predicted) must
// agree exactly on every tier; wall time and overhead accounting within
// a few percent for the node tier; and the step tier must be
// bit-identical (the exact-mismatch cell counts seeds whose full
// RunResult differs from the reference — it must be zero).
//
// Values keys are tier-qualified: "<model>/<tier>/failures-diff",
// "/mitigated-diff", "/avoided-diff", "/wall-divergence", and for the
// step tier "/exact-mismatch".
func CrossValidation(p Params) Result {
	p = p.withDefaults()
	// A small busy configuration: big enough to exercise episodes,
	// migrations, and recoveries across seeds, small enough that the
	// node-granular tier (one process per node) stays fast.
	app := workload.App{Name: "crossval-48", Nodes: 48, TotalCkptGB: 960, ComputeHours: 24}
	sys := failure.System{Name: "busy", Shape: 0.75, ScaleHours: 40, Nodes: 48}
	plat := platform.Config{App: app, System: sys}
	runs := p.Runs / 16
	if runs < 6 {
		runs = 6
	}

	t := tablefmt.NewTable("Model", "Tier", "Failures", "Mitigated", "Avoided", "Wall(h)", "Total ovh(h)")
	values := map[string]float64{}
	ref := Tiers()[0]
	addRow := func(id policy.ID, tier string, agg *stats.Agg) (f, m, av int) {
		for _, r := range agg.Runs() {
			f += r.Failures
			m += r.Mitigated
			av += r.Avoided
		}
		t.AddRow(id.String(), tier,
			fmt.Sprint(f), fmt.Sprint(m), fmt.Sprint(av),
			fmt.Sprintf("%.2f", agg.MeanWallSeconds()/3600),
			fmt.Sprintf("%.2f", agg.MeanOverheads().Total()/3600))
		return
	}
	wanted := func(name string) bool {
		if len(p.Tiers) == 0 {
			return true
		}
		for _, w := range p.Tiers {
			if w == name {
				return true
			}
		}
		return false
	}
	for _, id := range policy.All() {
		var others []Tier
		for _, ot := range Tiers()[1:] {
			if ot.Supports(id) && wanted(ot.Name) {
				others = append(others, ot)
			}
		}
		if len(others) == 0 {
			continue
		}
		aAgg := runTier(p, ref, id, plat, runs, p.Seed)
		aF, aM, aA := addRow(id, ref.Name, aAgg)
		for _, ot := range others {
			oAgg := runTier(p, ot, id, plat, runs, p.Seed)
			oF, oM, oA := addRow(id, ot.Name, oAgg)
			pre := id.String() + "/" + ot.Name
			values[pre+"/failures-diff"] = float64(aF - oF)
			values[pre+"/mitigated-diff"] = float64(aM - oM)
			values[pre+"/avoided-diff"] = float64(aA - oA)
			wallDiv := 0.0
			if aw := aAgg.MeanWallSeconds(); aw > 0 {
				wallDiv = (oAgg.MeanWallSeconds() - aw) / aw
			}
			values[pre+"/wall-divergence"] = wallDiv
			if ot.Name == StepTier().Name {
				mismatch := 0
				for i, ar := range aAgg.Runs() {
					if ar != oAgg.Runs()[i] {
						mismatch++
					}
				}
				values[pre+"/exact-mismatch"] = float64(mismatch)
			}
		}
	}
	text := t.String() + fmt.Sprintf("\n(%d matched seeds per model; all tiers share internal/platform quantities and the internal/policy catalogue; the step tier must match the app tier bit for bit)\n", runs)
	return Result{ID: "crossval", Title: "Cross-validation: app-level reference vs node-granular and step tiers on matched seeds", Text: text, Values: values}
}
