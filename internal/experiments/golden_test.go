package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// updateGolden rewrites the committed goldens from the current code:
//
//	go test ./internal/experiments -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden from current results")

// goldenParams pins the regression configuration: small enough that the
// whole registry replays in seconds, large enough that every table has
// failures, migrations, and episodes in it.
var goldenParams = Params{Runs: 25, Seed: 42, SeedSet: true}

// golden is the committed form of one experiment's machine-readable
// cells. Text is deliberately not compared byte-for-byte — the cells are
// the contract, rendering is free to evolve — but its goldens keep it
// for human diffing.
type golden struct {
	ID     string             `json:"id"`
	Title  string             `json:"title"`
	Values map[string]float64 `json:"values"`
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".json")
}

// cellClose compares one golden cell within per-cell relative tolerance,
// with an absolute floor for near-zero cells (percent reductions cross
// zero, where relative error is meaningless).
func cellClose(want, got float64) bool {
	if want == got {
		return true
	}
	return math.Abs(want-got) <= 1e-7+1e-6*math.Max(math.Abs(want), math.Abs(got))
}

// TestGolden replays every registered experiment at the pinned
// parameters and compares each machine-readable cell against the
// committed golden. Any intentional behaviour change regenerates the
// goldens with -update and reviews the diff — that diff IS the review
// artifact for "did my change move the paper's numbers".
func TestGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replay of the full registry is not -short")
	}
	for _, d := range All() {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			r := d.Run(goldenParams)
			if r.Text == "" {
				t.Fatal("experiment rendered no text")
			}
			if *updateGolden {
				writeGolden(t, r)
				return
			}
			data, err := os.ReadFile(goldenPath(d.ID))
			if err != nil {
				t.Fatalf("no golden for %s (run with -update to create): %v", d.ID, err)
			}
			var want golden
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("golden unparsable: %v", err)
			}
			if want.ID != r.ID || want.Title != r.Title {
				t.Errorf("identity drifted: golden (%s, %q) vs result (%s, %q)", want.ID, want.Title, r.ID, r.Title)
			}
			compareCells(t, want.Values, r.Values)
		})
	}
}

// compareCells diffs two cell maps, reporting missing, extra, and
// out-of-tolerance cells by name.
func compareCells(t *testing.T, want, got map[string]float64) {
	t.Helper()
	keys := make(map[string]bool, len(want)+len(got))
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var failures int
	for _, k := range sorted {
		w, inWant := want[k]
		g, inGot := got[k]
		switch {
		case !inWant:
			t.Errorf("new cell %q = %g not in golden (regenerate with -update)", k, g)
		case !inGot:
			t.Errorf("golden cell %q = %g no longer produced", k, w)
		case !cellClose(w, g):
			t.Errorf("cell %q: golden %g, got %g (Δ %g)", k, w, g, g-w)
		default:
			continue
		}
		if failures++; failures >= 20 {
			t.Fatalf("stopping after %d cell failures", failures)
		}
	}
}

// writeGolden rewrites one experiment's golden file.
func writeGolden(t *testing.T, r Result) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenPath(r.ID)), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(golden{ID: r.ID, Title: r.Title, Values: r.Values}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath(r.ID), append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("golden: wrote %s (%d cells)\n", goldenPath(r.ID), len(r.Values))
}
