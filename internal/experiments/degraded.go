package experiments

import (
	"fmt"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/platform"
	"pckpt/internal/tablefmt"
)

// degradedRates is the injection-severity axis: one knob r scales every
// fault class together (write failures and restart failures at r, silent
// corruption and recovery cascades at r/2).
var degradedRates = []float64{0, 0.02, 0.05, 0.10}

// degradedFaults builds the fault plan for severity r.
func degradedFaults(r float64) faultinject.Config {
	return faultinject.Config{
		BBWriteFailProb:  r,
		PFSWriteFailProb: r,
		CorruptProb:      r / 2,
		RestartFailProb:  r,
		CascadeProb:      r / 2,
	}
}

// Degraded sweeps the degraded-platform severity axis across the full
// policy catalogue: every model re-run with injected checkpoint-write
// failures, silent corruption (forcing multi-generation restart
// fallback), restart retries with backoff, and recovery cascades. The
// interesting question is ordering stability — whether the paper's
// P2 > P1 > M2 > M1 > B ranking survives a platform that fights back.
func Degraded(p Params) Result {
	p = p.withDefaults()
	// The experiment owns its injection axis; a global -inject-* flag
	// would double-degrade the sweep and desync the rate-0 baseline.
	p.Faults = faultinject.Config{}
	apps := p.apps("CHIMERA", "XGC")
	sys := failure.Titan
	t := tablefmt.NewTable("App", "Inject", "Model", "Total(h)", "vs clean", "FT", "WrFail", "Corrupt", "Retry", "Casc")
	values := map[string]float64{}
	for _, app := range apps {
		clean := map[crmodel.Model]float64{}
		for _, rate := range degradedRates {
			for _, m := range crmodel.Models() {
				label := fmt.Sprintf("%s|%s|%s|inject=%.3f", app.Name, sys.Name, m, rate)
				cfg := crmodel.Config{
					Model:  m,
					Config: platform.Config{App: app, System: sys, Faults: degradedFaults(rate)},
				}
				agg := runConfig(p, cfg, label)
				mo := agg.MeanOverheads()
				if rate == 0 {
					clean[m] = mo.Total()
				}
				delta := 0.0
				if base := clean[m]; base > 0 {
					delta = 100 * (mo.Total() - base) / base
				}
				f := agg.FaultTotals()
				t.AddRow(app.Name, fmt.Sprintf("%.0f%%", rate*100), m.String(),
					fmt.Sprintf("%.2f", mo.Total()/3600),
					fmt.Sprintf("%+.1f%%", delta),
					fmt.Sprintf("%.2f", agg.MeanFTRatio()),
					fmt.Sprint(f.BBWriteFailures+f.PFSWriteFailures),
					fmt.Sprint(f.CorruptRestarts),
					fmt.Sprint(f.RestartRetries),
					fmt.Sprint(f.Cascades))
				key := fmt.Sprintf("%s/%s/%.3f", app.Name, m, rate)
				values[key+"/total-ovh-h"] = mo.Total() / 3600
				values[key+"/ft"] = agg.MeanFTRatio()
				values[key+"/write-failures"] = float64(f.BBWriteFailures + f.PFSWriteFailures)
				values[key+"/corrupt-restarts"] = float64(f.CorruptRestarts)
				values[key+"/restart-retries"] = float64(f.RestartRetries)
				values[key+"/cascades"] = float64(f.Cascades)
			}
		}
	}
	text := t.String() + "\n(vs clean: overhead change relative to the same policy on a perfect platform;\n" +
		" WrFail/Corrupt/Retry/Casc: injected-fault totals across all runs of the configuration)\n"
	return Result{
		ID:     "degraded",
		Title:  "Extension: degraded platform — injected write failures, corruption, restart retries",
		Text:   text,
		Values: values,
	}
}
