package experiments

import (
	"fmt"

	"pckpt/internal/globalview"
	"pckpt/internal/iomodel"
	"pckpt/internal/rng"
	"pckpt/internal/tablefmt"
)

// GlobalView evaluates the extension the paper marks out of scope:
// machine-wide p-ckpt coordination across co-resident applications. A
// bursty prediction workload is replayed under per-job and global
// coordination; the global view's vulnerable-first scheduling must win
// increasingly as episode overlap grows.
func GlobalView(p Params) Result {
	p = p.withDefaults()
	io := iomodel.New(iomodel.DefaultSummit())
	cfg := globalview.Config{
		Jobs: []globalview.Job{
			{Name: "S3D-A", Nodes: 505, PerNodeGB: 40},
			{Name: "S3D-B", Nodes: 505, PerNodeGB: 40},
			{Name: "XGC-C", Nodes: 1515, PerNodeGB: 98.76},
		},
		IO: io,
	}
	// Burst intensity: episodes per job over a fixed ten-minute horizon.
	// Leads give an uncontended vulnerable commit a 2.5× margin, so only
	// cross-job contention (bulk floods, queueing) breaks deadlines.
	const horizon = 600.0
	t := tablefmt.NewTable("episodes/job", "FT per-job", "FT global", "Δ", "peak sharers per-job")
	values := map[string]float64{}
	src := rng.New(p.Seed)
	for _, burst := range []int{1, 2, 4, 8} {
		var preds []globalview.Prediction
		for e := 0; e < burst*len(cfg.Jobs); e++ {
			job := e % len(cfg.Jobs)
			lead := io.SingleNodePFSWriteTime(cfg.Jobs[job].PerNodeGB) * 2.5
			preds = append(preds, globalview.Prediction{
				Job:  job,
				Node: e,
				At:   src.Uniform(0, horizon),
				Lead: lead,
			})
		}
		perJob, global := cfg, cfg
		perJob.Mode = globalview.PerJob
		global.Mode = globalview.Global
		rPer := globalview.Run(perJob, preds)
		rGlob := globalview.Run(global, preds)
		t.AddRow(fmt.Sprint(burst),
			fmt.Sprintf("%.3f", rPer.FTRatio()),
			fmt.Sprintf("%.3f", rGlob.FTRatio()),
			fmt.Sprintf("%+.3f", rGlob.FTRatio()-rPer.FTRatio()),
			fmt.Sprint(rPer.PeakLaneSharers))
		values[fmt.Sprintf("burst=%d/ft-per-job", burst)] = rPer.FTRatio()
		values[fmt.Sprintf("burst=%d/ft-global", burst)] = rGlob.FTRatio()
	}
	text := t.String() + "\n(three co-resident jobs; tight leads sized for uncontended commits —\n" +
		"the global vulnerable-first view preserves them as bursts overlap)\n"
	return Result{ID: "globalview", Title: "Extension: p-ckpt with a global system view (paper's out-of-scope item)", Text: text, Values: values}
}
