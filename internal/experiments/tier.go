package experiments

import (
	"fmt"
	"sync"

	"pckpt/internal/crmodel"
	"pckpt/internal/nodesim"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/stats"
	"pckpt/internal/stepsim"
)

// Tier is one simulation granularity the experiment runner can drive: the
// application-level model (internal/crmodel), the node-granular
// simulator (internal/nodesim), or the step-based tier-0 engine
// (internal/stepsim). All consume the shared platform configuration and
// the policy catalogue, so a sweep is written once and runs at any
// granularity. Adding a tier is one registry entry in Tiers(); the
// runner, cache, and cross-validation machinery key on Name.
type Tier struct {
	// Name labels the tier in tables and cache keys ("app" / "node" /
	// "step"); it must be unique across the Tiers() registry.
	Name string
	// Supports reports whether the tier implements the catalogue entry
	// (the node tier implements the subset with a NodeLabel; the app and
	// step tiers implement the full catalogue).
	Supports func(id policy.ID) bool
	// Simulate runs one seed of the model on the shared platform config.
	Simulate func(id policy.ID, plat platform.Config, seed uint64) stats.RunResult
	// BitIdentical marks tiers whose RunResults equal the reference
	// tier's bit for bit on shared seeds. Only such tiers may serve as
	// the sweep tier: experiment cache keys are tier-agnostic, so a
	// cached aggregate must be valid no matter which bit-identical tier
	// produced it. The node tier models at finer granularity and only
	// agrees statistically, so it stays false.
	BitIdentical bool
}

// AppTier is the application-granularity tier; it implements the full
// catalogue.
func AppTier() Tier {
	return Tier{
		Name:     "app",
		Supports: func(policy.ID) bool { return true },
		Simulate: func(id policy.ID, plat platform.Config, seed uint64) stats.RunResult {
			return crmodel.Simulate(crmodel.Config{Model: id, Config: plat}, seed)
		},
		BitIdentical: true,
	}
}

// NodeTier is the node-granularity tier; it implements the catalogue
// subset with node labels (B, P1, P2).
func NodeTier() Tier {
	return Tier{
		Name:     "node",
		Supports: func(id policy.ID) bool { return id.NodeLabel() != "" },
		Simulate: func(id policy.ID, plat platform.Config, seed uint64) stats.RunResult {
			return nodesim.Simulate(nodesim.Config{Policy: id, Config: plat}, seed)
		},
	}
}

// StepTier is the tier-0 step-based engine; it implements the full
// five-model catalogue — p-ckpt episodes included — and is bit-identical
// to the app tier on shared failure streams — same RunResult, not just
// agreeing statistics (crossval enforces this). It is the default sweep
// tier; the app tier rides along as a sampled cross-check (see
// SimulateSweepN).
func StepTier() Tier {
	return Tier{
		Name:     "step",
		Supports: stepsim.Supports,
		Simulate: func(id policy.ID, plat platform.Config, seed uint64) stats.RunResult {
			return stepsim.Simulate(stepsim.Config{Model: id, Config: plat}, seed)
		},
		BitIdentical: true,
	}
}

// Tiers is the tier registry, reference tier first. Every consumer that
// enumerates granularities (cross-validation, CLI tier flags, parity
// tests) ranges over this list, so registering a tier here is the only
// required change.
func Tiers() []Tier { return []Tier{AppTier(), NodeTier(), StepTier()} }

// TierByName resolves a registry entry for CLI flags; ok is false for an
// unknown name.
func TierByName(name string) (Tier, bool) {
	for _, t := range Tiers() {
		if t.Name == name {
			return t, true
		}
	}
	return Tier{}, false
}

// TierNames lists the registry names in order, for flag help text.
func TierNames() []string {
	ts := Tiers()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return names
}

// runTier is SimulateTierN behind the result cache: the tier name joins
// the per-configuration label so the two granularities of one catalogue
// entry never collide, and a fresh aggregate is flushed back to the
// cache (tier runs are never metered, so no snapshot is stored or
// required).
func runTier(p Params, t Tier, id policy.ID, plat platform.Config, n int, baseSeed uint64) *stats.Agg {
	if p.Faults.Enabled() && !plat.Faults.Enabled() {
		plat.Faults = p.Faults
	}
	key := p.cacheKey("tier="+t.Name, id, plat, n)
	key.Seed = baseSeed
	if agg, ok := p.cacheGet(key, false); ok {
		return agg
	}
	p.checkInterrupt()
	agg := SimulateTierN(t, id, plat, n, baseSeed, p.Workers)
	p.cachePut(key, agg, nil)
	return agg
}

// SimulateTierN runs n seeds of one catalogue entry on a tier, drawing
// the identical crmodel.RunSeed sequence either tier's native runner
// would use, so per-seed results are comparable across tiers. Results
// aggregate in seed order regardless of worker interleaving. A run that
// panics — a model bug, or the sim watchdog killing a livelock — lands
// in the aggregate's failed-run ledger instead of aborting the sweep.
func SimulateTierN(t Tier, id policy.ID, plat platform.Config, n int, baseSeed uint64, workers int) *stats.Agg {
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	simulateSafe := func(seed uint64) (r stats.RunResult, failure string) {
		defer func() {
			if p := recover(); p != nil {
				failure = fmt.Sprint(p)
			}
		}()
		return t.Simulate(id, plat, seed), ""
	}
	results := make([]stats.RunResult, n)
	fails := make([]string, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], fails[i] = simulateSafe(crmodel.RunSeed(baseSeed, i))
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	agg := &stats.Agg{}
	desc := fmt.Sprintf("tier=%s model=%s app=%s", t.Name, id, plat.App.Name)
	for i, r := range results {
		if fails[i] != "" {
			agg.AddFailed(stats.FailedRun{Seed: crmodel.RunSeed(baseSeed, i), Config: desc, Err: fails[i]})
			continue
		}
		agg.Add(r)
	}
	return agg
}

// DefaultCrossCheckStride is the sampled cross-check density sweeps use
// unless overridden: one in every 16 seeds is re-run on the reference
// tier and compared bit for bit.
const DefaultCrossCheckStride = 16

// SimulateSweepN is SimulateTierN plus a sampled cross-check: every
// stride-th seed index is re-simulated on the reference (app) tier and
// the two RunResults compared bit for bit. It is the sweep path's
// runner — sweeps default to the step tier for speed, and the sampled
// reference runs keep the bit-identity contract continuously audited
// instead of trusted. A divergence panics with a full diagnostic: a
// tier that has drifted invalidates every cached aggregate it produced,
// so the sweep must not quietly continue. stride <= 0 disables the
// cross-check, as does running on the reference tier itself.
func SimulateSweepN(t Tier, id policy.ID, plat platform.Config, n int, baseSeed uint64, workers, stride int) *stats.Agg {
	agg := SimulateTierN(t, id, plat, n, baseSeed, workers)
	if ref := AppTier(); stride > 0 && t.Name != ref.Name {
		crossCheckSampled(t, ref, id, plat, n, baseSeed, stride)
	}
	return agg
}

// crossCheckSampled compares t against ref on seed indices 0, stride,
// 2·stride, … and panics on the first bit difference. A run that panics
// identically on both tiers is tolerated — the sweep aggregate already
// ledgers it as a failed run — but a panic on only one tier is itself a
// divergence.
func crossCheckSampled(t, ref Tier, id policy.ID, plat platform.Config, n int, baseSeed uint64, stride int) {
	safe := func(tier Tier, seed uint64) (r stats.RunResult, failure string) {
		defer func() {
			if p := recover(); p != nil {
				failure = fmt.Sprint(p)
			}
		}()
		return tier.Simulate(id, plat, seed), ""
	}
	for i := 0; i < n; i += stride {
		seed := crmodel.RunSeed(baseSeed, i)
		got, gotFail := safe(t, seed)
		want, wantFail := safe(ref, seed)
		if gotFail != "" || wantFail != "" {
			if gotFail != "" && wantFail != "" {
				continue
			}
			panic(fmt.Sprintf("experiments: tier %q diverged from %q at run %d (seed %#x) model=%s app=%s: %q panic=%q, %q panic=%q",
				t.Name, ref.Name, i, seed, id, plat.App.Name, t.Name, gotFail, ref.Name, wantFail))
		}
		if got != want {
			panic(fmt.Sprintf("experiments: tier %q diverged from %q at run %d (seed %#x) model=%s app=%s\n%s: %+v\n%s: %+v",
				t.Name, ref.Name, i, seed, id, plat.App.Name, t.Name, got, ref.Name, want))
		}
	}
}
