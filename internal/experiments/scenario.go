package experiments

import (
	"embed"
	"fmt"
	"sort"

	"pckpt/internal/crmodel"
	"pckpt/internal/scenario"
	"pckpt/internal/stats"
	"pckpt/internal/tablefmt"
)

// specFS carries the builtin scenario specs: one parametric cohort (Table
// I entries plus an Eq. (3) rescaling on a degraded platform) and one
// failure-trace replay. They double as living documentation of the spec
// format — `make spec-validate` checks them alongside examples/.
//
//go:embed specs/*.json
var specFS embed.FS

// BuiltinSpecs parses and validates the embedded scenario specs, sorted
// by spec name. Panics on an invalid embedded spec: that is a build
// defect, not an input error.
func BuiltinSpecs() []*scenario.Spec {
	entries, err := specFS.ReadDir("specs")
	if err != nil {
		panic(fmt.Errorf("experiments: embedded specs: %w", err))
	}
	var specs []*scenario.Spec
	for _, e := range entries {
		data, err := specFS.ReadFile("specs/" + e.Name())
		if err != nil {
			panic(fmt.Errorf("experiments: embedded spec %s: %w", e.Name(), err))
		}
		s, err := scenario.Parse(data)
		if err != nil {
			panic(fmt.Errorf("experiments: embedded spec %s: %w", e.Name(), err))
		}
		if err := s.Validate(); err != nil {
			panic(fmt.Errorf("experiments: embedded spec %s: %w", e.Name(), err))
		}
		specs = append(specs, s)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}

// Scenario runs the builtin declarative scenarios through the standard
// experiment machinery: every cohort × policy cell of every embedded spec
// simulates under the sweep's Params (the spec's own run/seed plan
// applies when a spec is run directly via pckpt-sim -spec; here the
// experiment's Runs/Seed govern, like every other registry entry, so the
// golden stays comparable across the suite). The replay spec exercises
// the full trace path: synthetic system, mined lead mixture, and a
// failure stream with no random draws at all.
func Scenario(p Params) Result {
	p = p.withDefaults()
	t := tablefmt.NewTable("Spec", "Config", "Model", "Total(h)", "FT", "Fail", "Mitig", "Avoid")
	values := map[string]float64{}
	for _, s := range BuiltinSpecs() {
		cfgs, err := s.Configs()
		if err != nil {
			panic(fmt.Errorf("experiments: scenario %s: %w", s.Name, err))
		}
		for _, rc := range cfgs {
			label := fmt.Sprintf("scenario=%s|%s|%s", s.Name, rc.Label, rc.Policy)
			cfg := crmodel.Config{Model: rc.Policy, Config: rc.Platform}
			agg := runConfig(p, cfg, label)
			mo := agg.MeanOverheads()
			fails, mitig, avoid := meanCounts(agg)
			t.AddRow(s.Name, rc.Label, rc.Policy.String(),
				fmt.Sprintf("%.2f", mo.Total()/3600),
				fmt.Sprintf("%.2f", agg.MeanFTRatio()),
				fmt.Sprintf("%.1f", fails),
				fmt.Sprintf("%.1f", mitig),
				fmt.Sprintf("%.1f", avoid))
			key := fmt.Sprintf("%s/%s/%s", s.Name, rc.Label, rc.Policy)
			values[key+"/total-ovh-h"] = mo.Total() / 3600
			values[key+"/ft"] = agg.MeanFTRatio()
		}
	}
	text := t.String() + "\n(each row is one cohort × policy cell of an embedded scenario spec;\n" +
		" the replayed-month spec consumes a recorded failure trace instead of Weibull draws)\n"
	return Result{
		ID:     "scenario",
		Title:  "Extension: declarative scenario specs — cohorts, platforms, failure-trace replay",
		Text:   text,
		Values: values,
	}
}

// meanCounts averages the per-run failure / mitigation / avoidance
// counters.
func meanCounts(agg *stats.Agg) (fails, mitig, avoid float64) {
	runs := agg.Runs()
	if len(runs) == 0 {
		return 0, 0, 0
	}
	for _, r := range runs {
		fails += float64(r.Failures)
		mitig += float64(r.Mitigated)
		avoid += float64(r.Avoided)
	}
	n := float64(len(runs))
	return fails / n, mitig / n, avoid / n
}
