package experiments

import (
	"fmt"

	"pckpt/internal/failure"
	"pckpt/internal/machine"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/tablefmt"
	"pckpt/internal/workload"
)

// contentionCohort is the fixed multi-tenant cohort the contention
// experiment simulates: three 16-node tenants — an M1 safeguarder, a
// P2 p-ckpt tenant, and a plain-B tenant arriving mid-run — on a
// machine whose PFS ceiling is far below their combined solo demand.
// Unbounded spares keep every run to completion (a truncated wall is
// pinned by the failure stream, which would mask the contention
// stretch under study).
func contentionCohort() machine.Config {
	app := workload.App{Name: "tenant", Nodes: 16, TotalCkptGB: 320, ComputeHours: 4}
	sys := failure.System{Name: "busy", Shape: 0.75, ScaleHours: 2, Nodes: 16}
	job := func(m policy.ID, arrival float64) machine.JobSpec {
		return machine.JobSpec{
			Model:          m,
			Platform:       platform.Config{App: app, System: sys},
			ArrivalSeconds: arrival,
		}
	}
	return machine.Config{
		Jobs: []machine.JobSpec{
			job(policy.M1, 0),
			job(policy.P2, 0),
			job(policy.B, 1800),
		},
		PFSCeilingGBs: 3,
	}
}

// Contention runs the shared-machine cohort: per-tenant slowdown versus
// an uncontended solo run, admission queue wait, and bandwidth
// starvation, averaged over the sweep's runs. The bandwidth arbiter
// serves p-ckpt's vulnerable-node writes in a machine-wide priority
// lane, so P2's phase-1 commits hold their solo price even on a
// saturated PFS.
func Contention(p Params) Result {
	p = p.withDefaults()
	cfg := contentionCohort()
	// -machine-* flags degrade this cohort too; the zero plan keeps the
	// experiment bit-identical to the pre-fault build.
	cfg.Faults = p.MachineFaults
	seed := configSeed(p.Seed, "contention")
	results := machine.SimulateN(cfg, p.Runs, seed, p.Workers)

	n := float64(len(results))
	type agg struct {
		slow, wait, starve, wall float64
		trunc                    int
	}
	jobs := make([]agg, len(cfg.Jobs))
	makespan, peak := 0.0, 0.0
	for _, res := range results {
		for i, jr := range res.Jobs {
			jobs[i].slow += jr.SlowdownX
			jobs[i].wait += jr.QueueWaitSeconds
			jobs[i].starve += jr.StarvationSeconds
			jobs[i].wall += jr.Run.WallSeconds
			if jr.Run.Truncated {
				jobs[i].trunc++
			}
		}
		makespan += res.MakespanSeconds
		if res.PeakAllocGBs > peak {
			peak = res.PeakAllocGBs
		}
	}

	t := tablefmt.NewTable("Job", "Model", "Arrive(s)", "Wall(h)", "Slowdown(x)", "QueueWait(s)", "Starve(s)")
	values := map[string]float64{}
	for i, a := range jobs {
		j := cfg.Jobs[i]
		t.AddRow(
			fmt.Sprintf("%d", i),
			j.Model.String(),
			fmt.Sprintf("%.0f", j.ArrivalSeconds),
			fmt.Sprintf("%.2f", a.wall/n/3600),
			fmt.Sprintf("%.3f", a.slow/n),
			fmt.Sprintf("%.1f", a.wait/n),
			fmt.Sprintf("%.1f", a.starve/n),
		)
		key := fmt.Sprintf("job%d/%s", i, j.Model)
		values[key+"/slowdown-x"] = a.slow / n
		values[key+"/queue-wait-s"] = a.wait / n
		values[key+"/starve-s"] = a.starve / n
		values[key+"/truncated-frac"] = float64(a.trunc) / n
	}
	values["makespan-h"] = makespan / n / 3600
	values["peak-alloc-gbs"] = peak

	text := t.String() + fmt.Sprintf(
		"\n(three tenants share one %.0f GB/s PFS ceiling under %s admission;\n"+
			" slowdown is contended wall over the same job, platform, and seed run solo —\n"+
			" the arbiter's priority lane keeps p-ckpt phase-1 writes at their solo price;\n"+
			" mean makespan %.2fh, peak aggregate allocation %.2f GB/s)\n",
		cfg.PFSCeilingGBs, machine.FIFO{}.Name(), makespan/n/3600, peak)
	return Result{
		ID:     "contention",
		Title:  "Extension: multi-tenant contention — shared PFS bandwidth arbitration and admission",
		Text:   text,
		Values: values,
	}
}
