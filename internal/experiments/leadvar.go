package experiments

import (
	"fmt"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/stats"
	"pckpt/internal/tablefmt"
)

// fig4Scales is the variability axis of Figs. 4 and 7 (percent change in
// prediction lead time).
var fig4Scales = []float64{0.5, 0.7, 0.9, 1.0, 1.1, 1.3, 1.5}

// Fig4 reproduces the lead-time variability study for the prior-work
// models M1 (safeguard) and M2 (LM), relative to base model B.
func Fig4(p Params) Result {
	return leadVariability(p, []crmodel.Model{crmodel.ModelM1, crmodel.ModelM2},
		"fig4", "Fig. 4: lead-time variability impact on M1/M2")
}

// Fig7 is the same study for this paper's models P1 and P2.
func Fig7(p Params) Result {
	return leadVariability(p, []crmodel.Model{crmodel.ModelP1, crmodel.ModelP2},
		"fig7", "Fig. 7: lead-time variability impact on P1/P2")
}

// leadVariability sweeps the lead-time scale and reports per-component
// percent overhead reductions versus B (the y-axis of Figs. 4 and 7; 0 %
// means unchanged, 100 % means eliminated).
func leadVariability(p Params, models []crmodel.Model, id, title string) Result {
	p = p.withDefaults()
	apps := p.apps("CHIMERA", "XGC", "POP")
	t := tablefmt.NewTable("App", "Lead Δ", "Model", "Ckpt red.", "Recomp red.", "Recov red.", "Total red.")
	values := map[string]float64{}
	for _, app := range apps {
		// B ignores predictions, so its overheads are lead-scale
		// independent: compute once.
		baseAgg := modelSet(p, app, failure.Titan, 1, failure.DefaultFNRate, []crmodel.Model{crmodel.ModelB})
		base := baseAgg[crmodel.ModelB].MeanOverheads()
		for _, scale := range fig4Scales {
			aggs := modelSet(p, app, failure.Titan, scale, failure.DefaultFNRate, models)
			for _, m := range models {
				mo := aggs[m].MeanOverheads()
				ck, rc, rv, tot := stats.ReductionBreakdown(base, mo)
				t.AddRow(app.Name, leadScaleLabel(scale), m.String(),
					tablefmt.Percent(ck), tablefmt.Percent(rc), tablefmt.Percent(rv), tablefmt.Percent(tot))
				values[fmt.Sprintf("%s/%s/%s/recomp-red", app.Name, leadScaleLabel(scale), m)] = rc
				values[fmt.Sprintf("%s/%s/%s/ckpt-red", app.Name, leadScaleLabel(scale), m)] = ck
				values[fmt.Sprintf("%s/%s/%s/total-red", app.Name, leadScaleLabel(scale), m)] = tot
			}
		}
	}
	return Result{ID: id, Title: title, Text: t.String(), Values: values}
}

// Table2 reproduces the FT-ratio table for M1 and M2 under varied lead
// times.
func Table2(p Params) Result {
	return ftRatioTable(p, []crmodel.Model{crmodel.ModelM1, crmodel.ModelM2},
		"table2", "Table II: FT ratio for applications under M1 and M2")
}

// Table4 is the FT-ratio table for P1 and P2.
func Table4(p Params) Result {
	return ftRatioTable(p, []crmodel.Model{crmodel.ModelP1, crmodel.ModelP2},
		"table4", "Table IV: FT ratio for applications under P1 and P2")
}

func ftRatioTable(p Params, models []crmodel.Model, id, title string) Result {
	p = p.withDefaults()
	apps := p.apps("CHIMERA", "XGC", "POP")
	header := []string{"Lead Δ"}
	for _, app := range apps {
		for _, m := range models {
			header = append(header, fmt.Sprintf("%s %s", app.Name, m))
		}
	}
	t := tablefmt.NewTable(header...)
	values := map[string]float64{}
	for _, scale := range leadScales {
		row := []string{leadScaleLabel(scale)}
		for _, app := range apps {
			aggs := modelSet(p, app, failure.Titan, scale, failure.DefaultFNRate, models)
			for _, m := range models {
				ft := aggs[m].MeanFTRatio()
				row = append(row, fmt.Sprintf("%.3f", ft))
				values[fmt.Sprintf("%s/%s/%s/ft", app.Name, leadScaleLabel(scale), m)] = ft
			}
		}
		t.AddRow(row...)
	}
	return Result{ID: id, Title: title, Text: t.String(), Values: values}
}

// fig8Scales expands the variability axis to ±90 % as in Fig. 8.
var fig8Scales = []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.1, 1.3, 1.5, 1.7, 1.9}

// Fig8 measures, inside the hybrid model P2, which proactive mechanism
// handles failures: positive values mean LM dominates, negative mean
// p-ckpt dominates. The paper's Observation 4.
func Fig8(p Params) Result {
	p = p.withDefaults()
	apps := p.apps()
	header := []string{"Lead Δ"}
	for _, app := range apps {
		header = append(header, app.Name)
	}
	t := tablefmt.NewTable(header...)
	values := map[string]float64{}
	for _, scale := range fig8Scales {
		row := []string{leadScaleLabel(scale)}
		for _, app := range apps {
			aggs := modelSet(p, app, failure.Titan, scale, failure.DefaultFNRate, []crmodel.Model{crmodel.ModelP2})
			var avoided, mitigated, total int
			for _, r := range aggs[crmodel.ModelP2].Runs() {
				avoided += r.Avoided
				mitigated += r.Mitigated
				total += r.TotalFailures()
			}
			diff := 0.0
			if total > 0 {
				diff = 100 * float64(avoided-mitigated) / float64(total)
			}
			row = append(row, fmt.Sprintf("%+.1f", diff))
			values[fmt.Sprintf("%s/%s/lm-minus-pckpt-pct", app.Name, leadScaleLabel(scale))] = diff
		}
		t.AddRow(row...)
	}
	text := t.String() + "\n(positive: LM is the dominant proactive choice; negative: p-ckpt dominates)\n"
	return Result{ID: "fig8", Title: "Fig. 8: FT-ratio difference, LM vs p-ckpt in P2", Text: text, Values: values}
}
