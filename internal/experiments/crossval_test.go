package experiments

import (
	"math"
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/workload"
)

// TestCrossValidation drives every registered tier through the shared
// tier runner against the app-level reference on a matched platform
// configuration and identical seed sequences, asserting the agreement
// the CrossValidation experiment reports: exact failure-stream
// bookkeeping per seed on every tier, wall-clock divergence within a
// minute on a day-long job for the node tier, and full bit-identity —
// the entire RunResult — for the step tier. The Makefile's ci target
// runs this test under the race detector.
func TestCrossValidation(t *testing.T) {
	app := workload.App{Name: "crossval-48", Nodes: 48, TotalCkptGB: 960, ComputeHours: 24}
	sys := failure.System{Name: "busy", Shape: 0.75, ScaleHours: 40, Nodes: 48}
	plat := platform.Config{App: app, System: sys}
	const runs = 6
	ref := Tiers()[0]
	for _, tier := range Tiers()[1:] {
		tier := tier
		t.Run(tier.Name, func(t *testing.T) {
			for _, id := range policy.All() {
				if !tier.Supports(id) {
					continue
				}
				aAgg := SimulateTierN(ref, id, plat, runs, 42, 2)
				oAgg := SimulateTierN(tier, id, plat, runs, 42, 2)
				if aAgg.N() != runs || oAgg.N() != runs {
					t.Fatalf("%v: run counts %d/%d, want %d", id, aAgg.N(), oAgg.N(), runs)
				}
				var wallDiff float64
				for i, ar := range aAgg.Runs() {
					or := oAgg.Runs()[i]
					if ar.Failures != or.Failures || ar.Predicted != or.Predicted {
						t.Fatalf("%v seed %d: stream divergence (%s %d/%d vs %s %d/%d)",
							id, i, ref.Name, ar.Failures, ar.Predicted, tier.Name, or.Failures, or.Predicted)
					}
					if tier.Name == "step" && ar != or {
						t.Fatalf("%v seed %d: step tier not bit-identical\n%s:  %+v\n%s: %+v",
							id, i, ref.Name, ar, tier.Name, or)
					}
					wallDiff += math.Abs(ar.WallSeconds - or.WallSeconds)
				}
				if mean := wallDiff / runs; mean > 60 {
					t.Errorf("%v: mean wall divergence %.1fs across tiers", id, mean)
				}
			}
		})
	}
}

// TestCrossValidationExperiment checks the registry entry renders the
// agreement table and reports zero event-count divergence under the
// tier-qualified value keys — including the step tier's exact-mismatch
// cells, which must be zero.
func TestCrossValidationExperiment(t *testing.T) {
	r := CrossValidation(Params{Runs: 96, Seed: 42})
	if r.ID != "crossval" {
		t.Fatalf("ID = %q", r.ID)
	}
	for _, lbl := range []string{"B", "P1", "P2"} {
		if d, ok := r.Values[lbl+"/node/failures-diff"]; !ok || d != 0 {
			t.Errorf("%s: failure-count divergence %v across app/node tiers", lbl, d)
		}
		if d := r.Values[lbl+"/node/wall-divergence"]; math.Abs(d) > 0.02 {
			t.Errorf("%s: node wall-clock divergence %.3f, want within 2%%", lbl, d)
		}
	}
	for _, lbl := range []string{"B", "M1", "M2", "P1", "P2"} {
		if d, ok := r.Values[lbl+"/step/exact-mismatch"]; !ok || d != 0 {
			t.Errorf("%s: %v seeds diverge bit-wise between app and step tiers", lbl, d)
		}
		if d := r.Values[lbl+"/step/wall-divergence"]; d != 0 {
			t.Errorf("%s: step wall-clock divergence %v, want exactly 0", lbl, d)
		}
	}
}
