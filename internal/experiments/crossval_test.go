package experiments

import (
	"math"
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/workload"
)

// TestCrossValidation drives both simulation tiers through the shared
// tier runner on a matched platform configuration and identical seed
// sequences, asserting the agreement the CrossValidation experiment
// reports: exact failure-stream bookkeeping per seed, and wall-clock
// divergence within a minute on a day-long job. The Makefile's ci
// target runs this test under the race detector.
func TestCrossValidation(t *testing.T) {
	app := workload.App{Name: "crossval-48", Nodes: 48, TotalCkptGB: 960, ComputeHours: 24}
	sys := failure.System{Name: "busy", Shape: 0.75, ScaleHours: 40, Nodes: 48}
	plat := platform.Config{App: app, System: sys}
	const runs = 6
	appT, nodeT := AppTier(), NodeTier()
	for _, id := range policy.All() {
		if !nodeT.Supports(id) {
			continue
		}
		aAgg := SimulateTierN(appT, id, plat, runs, 42, 2)
		nAgg := SimulateTierN(nodeT, id, plat, runs, 42, 2)
		if aAgg.N() != runs || nAgg.N() != runs {
			t.Fatalf("%v: run counts %d/%d, want %d", id, aAgg.N(), nAgg.N(), runs)
		}
		var wallDiff float64
		for i, ar := range aAgg.Runs() {
			nr := nAgg.Runs()[i]
			if ar.Failures != nr.Failures || ar.Predicted != nr.Predicted {
				t.Fatalf("%v seed %d: stream divergence (app %d/%d vs node %d/%d)",
					id, i, ar.Failures, ar.Predicted, nr.Failures, nr.Predicted)
			}
			wallDiff += math.Abs(ar.WallSeconds - nr.WallSeconds)
		}
		if mean := wallDiff / runs; mean > 60 {
			t.Errorf("%v: mean wall divergence %.1fs across tiers", id, mean)
		}
	}
}

// TestCrossValidationExperiment checks the registry entry renders the
// agreement table and reports zero event-count divergence.
func TestCrossValidationExperiment(t *testing.T) {
	r := CrossValidation(Params{Runs: 96, Seed: 42})
	if r.ID != "crossval" {
		t.Fatalf("ID = %q", r.ID)
	}
	for _, lbl := range []string{"B", "P1", "P2"} {
		if d, ok := r.Values[lbl+"/failures-diff"]; !ok || d != 0 {
			t.Errorf("%s: failure-count divergence %v across tiers", lbl, d)
		}
		if d := r.Values[lbl+"/wall-divergence"]; math.Abs(d) > 0.02 {
			t.Errorf("%s: wall-clock divergence %.3f, want within 2%%", lbl, d)
		}
	}
}
