package experiments

import (
	"reflect"
	"testing"
)

// The result cache keys configurations WITHOUT the worker count: the
// whole design rests on Workers=1 and Workers=N producing identical
// results for the same seed. This test pins that invariant on a
// representative experiment subset — an app-granularity sweep over
// every model (fig6a), a lead-scale sweep (fig4), and the dual-tier
// runner (crossval, which exercises SimulateTierN on both tiers), and
// the degraded-platform sweep (fault-plan draws must replay identically
// regardless of scheduling).
func TestWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism replay is not -short")
	}
	cases := []struct {
		id string
		p  Params
	}{
		{"fig6a", Params{Runs: 30, Seed: 42, Apps: []string{"CHIMERA"}}},
		{"fig4", Params{Runs: 30, Seed: 42, Apps: []string{"XGC"}}},
		{"crossval", Params{Runs: 48, Seed: 42}},
		{"degraded", Params{Runs: 30, Seed: 42, Apps: []string{"XGC"}}},
		// scenario includes the trace-replay spec: a replayed failure
		// stream must be bit-identical across worker counts too.
		{"scenario", Params{Runs: 20, Seed: 42}},
		// contention runs whole machines (several apps on one shared
		// clock) per run; the machine driver must parallelize across
		// runs without perturbing any of them.
		{"contention", Params{Runs: 20, Seed: 42}},
		// machine-degraded arms the machine-scope fault plan on top:
		// brownout repricings, drain-slot outages, and crash/requeue
		// lifecycles must all replay bit-identically per run seed no
		// matter which worker runs them.
		{"machine-degraded", Params{Runs: 20, Seed: 42}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			d, err := ByID(tc.id)
			if err != nil {
				t.Fatal(err)
			}
			serial := tc.p
			serial.Workers = 1
			parallel := tc.p
			parallel.Workers = 8
			r1 := d.Run(serial)
			r2 := d.Run(parallel)
			if r1.Text != r2.Text {
				t.Errorf("rendered text differs between Workers=1 and Workers=8:\n--- serial\n%s\n--- parallel\n%s", r1.Text, r2.Text)
			}
			if !reflect.DeepEqual(r1.Values, r2.Values) {
				t.Error("machine-readable values differ between Workers=1 and Workers=8")
			}
		})
	}
}
