package experiments

import (
	"runtime"
	"testing"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/metrics"
	"pckpt/internal/platform"
	"pckpt/internal/workload"
)

func TestParamsWithDefaults(t *testing.T) {
	d := Params{}.withDefaults()
	if d.Runs != 200 || d.Seed != 42 || d.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("zero Params defaulted to %+v", d)
	}
	// An explicitly chosen zero seed must survive (the old sentinel
	// silently replaced it with 42).
	if z := (Params{Seed: 0, SeedSet: true}).withDefaults(); z.Seed != 0 {
		t.Fatalf("explicit seed 0 replaced with %d", z.Seed)
	}
	// Negative counts clamp to the defaults rather than panicking later.
	if n := (Params{Runs: -5, Workers: -3}).withDefaults(); n.Runs != 200 || n.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative counts defaulted to %+v", n)
	}
	// Explicit values pass through untouched.
	if k := (Params{Runs: 7, Seed: 9, Workers: 2}).withDefaults(); k.Runs != 7 || k.Seed != 9 || k.Workers != 2 {
		t.Fatalf("explicit Params rewritten to %+v", k)
	}
}

func TestRunConfigMetersIntoCollector(t *testing.T) {
	app := workload.App{Name: "tiny", Nodes: 16, TotalCkptGB: 160, ComputeHours: 10}
	p := Params{Runs: 4, Seed: 1, SeedSet: true, Workers: 2, Metrics: metrics.NewCollector()}
	cfg := crmodel.Config{Model: crmodel.ModelB, Config: platform.Config{App: app, System: failure.Titan}}
	if agg := runConfig(p, cfg, "meter-test"); agg.N() != 4 {
		t.Fatalf("metered runConfig aggregated %d runs, want 4", agg.N())
	}
	snap := p.Metrics.Snapshot()
	if snap.Empty() {
		t.Fatal("collector stayed empty after a metered runConfig")
	}
	if snap.Histograms["sim.B.bb_write_seconds"].Count == 0 {
		t.Fatal("no BB write spans collected")
	}
}
