package experiments

import (
	"fmt"
	"strings"

	"pckpt/internal/deshlog"
	"pckpt/internal/failure"
	"pckpt/internal/iomodel"
	"pckpt/internal/rng"
	"pckpt/internal/tablefmt"
	"pckpt/internal/workload"
)

// Table1 renders the Table I workload catalogue.
func Table1(p Params) Result {
	t := tablefmt.NewTable("Application", "Nodes", "Ckpt Size (GB)", "Per-node (GB)", "Compute (h)")
	values := map[string]float64{}
	for _, a := range workload.Summit() {
		t.AddRow(a.Name,
			fmt.Sprint(a.Nodes),
			fmt.Sprintf("%.4g", a.TotalCkptGB),
			fmt.Sprintf("%.4g", a.PerNodeGB()),
			fmt.Sprintf("%g", a.ComputeHours))
		values[a.Name+"/per-node-GB"] = a.PerNodeGB()
	}
	return Result{ID: "table1", Title: "Table I: HPC workload characteristics", Text: t.String(), Values: values}
}

// Table3 renders the Table III failure distribution catalogue.
func Table3(p Params) Result {
	t := tablefmt.NewTable("HPC System", "Shape", "Scale", "Nodes", "System MTBF (h)")
	values := map[string]float64{}
	for _, s := range failure.Systems() {
		t.AddRow(s.Name,
			fmt.Sprintf("%.4f", s.Shape),
			fmt.Sprintf("%.4f", s.ScaleHours),
			fmt.Sprint(s.Nodes),
			fmt.Sprintf("%.2f", s.MeanInterarrivalHours()))
		values[s.Name+"/mtbf-h"] = s.MeanInterarrivalHours()
	}
	return Result{ID: "table3", Title: "Table III: Weibull distributions for failure generation", Text: t.String(), Values: values}
}

// Fig2a generates a six-month synthetic log, mines it Desh-style, and
// renders the per-sequence lead-time statistics (the paper's boxplot
// figure as a table), then validates the mined model against the
// generating one.
func Fig2a(p Params) Result {
	p = p.withDefaults()
	src := rng.New(p.Seed)
	failures := 40 * p.Runs // scale mining effort with requested runs
	entries, planted := deshlog.Generate(deshlog.GenConfig{
		Nodes:         1024,
		Duration:      6 * 30 * 24 * 3600,
		Failures:      failures,
		NoisePerChain: 10,
		PartialChains: failures / 10,
	}, src)
	chains := deshlog.Mine(entries)
	st := deshlog.Stats(chains)
	var b strings.Builder
	fmt.Fprintf(&b, "synthetic log: %d entries, %d planted chains, %d mined\n\n", len(entries), len(planted), len(chains))
	b.WriteString(deshlog.RenderStats(st))
	values := map[string]float64{
		"planted": float64(len(planted)),
		"mined":   float64(len(chains)),
	}
	if model, err := deshlog.ToLeadModel(chains); err == nil {
		values["mined-mean-lead-s"] = model.Mean()
		values["generator-mean-lead-s"] = failure.DefaultLeadTimes().Mean()
		fmt.Fprintf(&b, "\nmined model mean lead: %.2f s (generator: %.2f s)\n", model.Mean(), failure.DefaultLeadTimes().Mean())
	}
	return Result{ID: "fig2a", Title: "Fig. 2a: lead-time distribution of mined failure sequences", Text: b.String(), Values: values}
}

// Fig2b renders the single-node bandwidth-vs-task-count curves.
func Fig2b(p Params) Result {
	io := iomodel.New(iomodel.DefaultSummit())
	sizes := []float64{0.016, 0.064, 0.25, 1, 4, 16, 64}
	tasks := []int{1, 2, 4, 8, 16, 32, 42}
	header := []string{"tasks\\GB"}
	for _, s := range sizes {
		header = append(header, fmt.Sprintf("%.3g", s))
	}
	t := tablefmt.NewTable(header...)
	values := map[string]float64{}
	for _, k := range tasks {
		row := []string{fmt.Sprint(k)}
		for _, s := range sizes {
			row = append(row, fmt.Sprintf("%.2f", io.SingleNodeBandwidth(k, s)))
		}
		t.AddRow(row...)
	}
	values["peak-8task-GBs"] = io.SingleNodeBandwidth(8, 64)
	values["peak-1task-GBs"] = io.SingleNodeBandwidth(1, 64)
	values["peak-42task-GBs"] = io.SingleNodeBandwidth(42, 64)
	text := t.String() + "\n(bandwidth in GB/s; the 8-task row dominates, matching the paper)\n"
	return Result{ID: "fig2b", Title: "Fig. 2b: single-node I/O bandwidth vs task count", Text: text, Values: values}
}

// Fig2c renders the weak-scaling performance matrix with a heat map.
func Fig2c(p Params) Result {
	io := iomodel.New(iomodel.DefaultSummit())
	mx := io.Matrix()
	var b strings.Builder
	b.WriteString(mx.Render())
	b.WriteString("\nheat map (darker = higher aggregate GB/s):\n")
	nodes := mx.Nodes()
	sizes := mx.Sizes()
	lo, hi := mx.At(0, 0), io.Config().AggregatePFSCeilingGBs
	for i := range nodes {
		fmt.Fprintf(&b, "%6d |", nodes[i])
		for j := range sizes {
			b.WriteString(tablefmt.HeatCell(mx.At(i, j), lo, hi))
		}
		b.WriteByte('\n')
	}
	values := map[string]float64{
		"corner-min-GBs": mx.At(0, 0),
		"corner-max-GBs": mx.At(len(nodes)-1, len(sizes)-1),
	}
	return Result{ID: "fig2c", Title: "Fig. 2c: weak-scaling I/O performance matrix", Text: b.String(), Values: values}
}
