package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSigmaMax(t *testing.T) {
	// (√5−1)/2: the golden-ratio conjugate, ≈0.618, the paper's "σ < 0.61".
	if SigmaMax < 0.617 || SigmaMax > 0.619 {
		t.Fatalf("SigmaMax = %g", SigmaMax)
	}
	// At σ = SigmaMax, LM's combined savings equal the base recomputation
	// overhead exactly (the binding constraint): σ + (1−√(1−σ)) = 1.
	if got := SigmaMax + 1 - math.Sqrt(1-SigmaMax); math.Abs(got-1) > 1e-12 {
		t.Fatalf("constraint at SigmaMax = %g, want 1", got)
	}
}

func TestCkptReductionLM(t *testing.T) {
	if got := CkptReductionLM(100, 0); got != 0 {
		t.Fatalf("σ=0 must reduce nothing, got %g", got)
	}
	// σ = 0.75 → 1−√0.25 = 0.5.
	if got := CkptReductionLM(100, 0.75); math.Abs(got-50) > 1e-12 {
		t.Fatalf("CkptReductionLM = %g, want 50", got)
	}
}

func TestBetaKnownValues(t *testing.T) {
	// α=3, σ=0.5 → (3−1+0.5)/3 = 5/6.
	if got := Beta(3, 0.5); math.Abs(got-5.0/6) > 1e-12 {
		t.Fatalf("Beta(3, 0.5) = %g", got)
	}
	// α=1 → β=σ: same footprint means p-ckpt and LM cover equal leads.
	if got := Beta(1, 0.3); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("Beta(1, 0.3) = %g", got)
	}
	// Tiny α with σ=0 would be negative: clamps to 0.
	if got := Beta(0.5, 0); got != 0 {
		t.Fatalf("Beta(0.5, 0) = %g", got)
	}
}

func TestBetaMonotoneQuick(t *testing.T) {
	f := func(aRaw, sRaw uint16) bool {
		alpha := 1 + float64(aRaw%400)/100 // [1, 5)
		sigma := float64(sRaw%61) / 100    // [0, 0.61)
		b1 := Beta(alpha, sigma)
		b2 := Beta(alpha+0.1, sigma)
		b3 := Beta(alpha, math.Min(sigma+0.01, 0.6))
		// β grows with α (larger LM footprint leaves p-ckpt more wins)
		// and with σ.
		return b2 >= b1-1e-12 && b3 >= b1-1e-12 && b1 >= sigma-1e-12 && b1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlphaThresholdEndpoints(t *testing.T) {
	// The paper: 1.04 ≤ α < 1.30 over 0 ≤ σ < 0.61.
	lo, hi := AlphaRange()
	if lo < 1.03 || lo > 1.06 {
		t.Fatalf("α at σ=0.1 is %.3f, want ≈1.05", lo)
	}
	if hi < 1.28 || hi > 1.32 {
		t.Fatalf("α at σ=SigmaMax is %.3f, want ≈1.30", hi)
	}
	if got := AlphaThreshold(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("α threshold at σ=0 is %g, want 1", got)
	}
}

func TestAlphaThresholdMonotone(t *testing.T) {
	prev := 0.0
	for s := 0.0; s < SigmaMax; s += 0.01 {
		a := AlphaThreshold(s)
		if a < prev {
			t.Fatalf("threshold not monotone at σ=%.2f", s)
		}
		prev = a
	}
}

func TestPckptWinsConsistentWithExactThreshold(t *testing.T) {
	// With a 50/50 overhead split, Eq. (7) must flip exactly at the
	// self-consistent threshold.
	for s := 0.0; s < 0.55; s += 0.05 {
		threshold := AlphaThresholdExact(s)
		for _, da := range []float64{-0.01, 0.01} {
			alpha := threshold + da
			if alpha <= 0 {
				continue
			}
			want := da > 0
			if got := PckptWins(alpha, s, 100, 100); got != want {
				t.Errorf("σ=%.2f α=%.3f: PckptWins=%v, exact threshold says %v", s, alpha, got, want)
			}
		}
	}
}

func TestPublishedEq8IsLowerBound(t *testing.T) {
	// The paper's simplified Eq. (8) under-estimates the break-even α
	// relative to the bound implied by its own Eq. (7); it coincides only
	// at σ=0. Document that relationship.
	if a, b := AlphaThreshold(0), AlphaThresholdExact(0); math.Abs(a-b) > 1e-12 {
		t.Fatalf("thresholds differ at σ=0: %g vs %g", a, b)
	}
	for s := 0.05; s < 0.55; s += 0.05 {
		if AlphaThreshold(s) >= AlphaThresholdExact(s) {
			t.Errorf("σ=%.2f: published %.3f not below exact %.3f", s, AlphaThreshold(s), AlphaThresholdExact(s))
		}
	}
}

func TestAlphaThresholdExactDiverges(t *testing.T) {
	if !math.IsInf(AlphaThresholdExact(SigmaMax), 1) {
		t.Fatal("exact threshold must diverge at SigmaMax")
	}
}

func TestPckptWinsRecomputeHeavy(t *testing.T) {
	// Recompute-dominated overhead favours p-ckpt even at modest α.
	if !PckptWins(1.2, 0.1, 1000, 10) {
		t.Fatal("recompute-heavy workload should favour p-ckpt")
	}
	// Checkpoint-dominated overhead favours LM.
	if PckptWins(1.2, 0.5, 10, 1000) {
		t.Fatal("checkpoint-heavy workload should favour LM")
	}
}

func TestPckptWinsLargeAlpha(t *testing.T) {
	// Observation 8: the larger the checkpoint (hence LM transfer), the
	// bigger p-ckpt's advantage. α=3 (the paper's default) with any
	// balanced overhead favours p-ckpt.
	if !PckptWins(3, 0.3, 100, 100) {
		t.Fatal("α=3 must favour p-ckpt at balanced overheads")
	}
}

func TestPckptWinsDegenerate(t *testing.T) {
	// β ≤ σ: LM covers everything p-ckpt covers; p-ckpt cannot win.
	if PckptWins(0.9, 0.3, 1000, 100) {
		t.Fatal("β<σ must not win")
	}
	// Zero checkpoint overhead: decided purely on recomputation.
	if !PckptWins(2, 0.3, 100, 0) {
		t.Fatal("zero ckpt overhead with β>σ must favour p-ckpt")
	}
}

func TestRecompReductions(t *testing.T) {
	if got := RecompReductionLM(200, 0.25); got != 50 {
		t.Fatalf("RecompReductionLM = %g", got)
	}
	want := 200 * Beta(3, 0.25)
	if got := RecompReductionPckpt(200, 3, 0.25); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RecompReductionPckpt = %g, want %g", got, want)
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { CkptReductionLM(1, -0.1) },
		func() { CkptReductionLM(1, 1) },
		func() { CkptReductionLM(-1, 0.5) },
		func() { Beta(0, 0.5) },
		func() { AlphaThreshold(-0.01) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}
