// Package analytic implements the closed-form LM-versus-p-ckpt comparison
// the paper derives in Observation 8 (its Eqs. (4)–(8)): when does the
// prioritized checkpoint beat live migration?
//
// The model's quantities, for a base model with checkpoint overhead C and
// recomputation overhead R:
//
//   - LM reduces checkpoint overhead by C·(1−√(1−σ)) — Eq. (5) — via the
//     σ-elongated checkpoint interval of Eq. (2);
//   - LM reduces recomputation by R·σ, p-ckpt by R·β, where β, the
//     fraction of failures p-ckpt can handle, follows from a uniform
//     lead-time distribution and equal network/PFS single-node
//     bandwidth: β = (α−1+σ)/α — Eq. (6) — with α the LM-transfer to
//     checkpoint-size ratio;
//   - p-ckpt wins when its extra recomputation savings exceed LM's
//     checkpoint savings — Eq. (4), rearranged into Eq. (7);
//   - assuming overhead splits evenly between checkpointing and
//     recomputation, Eq. (7) simplifies to the paper's Eq. (8):
//     α > (σ+1)/(σ+√(1−σ)), which for 0 ≤ σ < 0.61 places the
//     break-even α in [1.04, 1.30).
package analytic

import "math"

// SigmaMax is the largest σ for which the model is self-consistent: LM's
// combined checkpoint and recomputation savings must not exceed the base
// recomputation overhead, which bounds σ below (√5−1)/2 ≈ 0.618 (the
// paper rounds to 0.61).
var SigmaMax = (math.Sqrt(5) - 1) / 2

// CkptReductionLM returns Eq. (5): the checkpoint-overhead reduction LM
// achieves on a base model with checkpoint overhead ckptB, through the
// 1/√(1−σ) interval elongation of Eq. (2).
func CkptReductionLM(ckptB, sigma float64) float64 {
	checkSigma(sigma)
	if ckptB < 0 {
		panic("analytic: negative checkpoint overhead")
	}
	return ckptB * (1 - math.Sqrt(1-sigma))
}

// Beta returns Eq. (6): the fraction of failures p-ckpt handles, given
// the LM transfer ratio alpha and the LM-handleable fraction sigma, under
// a uniform lead-time distribution and matched network / single-node PFS
// bandwidths (≈12.5 vs 13–13.5 GB/s on Summit).
func Beta(alpha, sigma float64) float64 {
	checkSigma(sigma)
	checkAlpha(alpha)
	beta := (alpha - 1 + sigma) / alpha
	return math.Min(math.Max(beta, 0), 1)
}

// RecompReductionLM returns LM's recomputation saving on base overhead
// recompB: R·σ.
func RecompReductionLM(recompB, sigma float64) float64 {
	checkSigma(sigma)
	return recompB * sigma
}

// RecompReductionPckpt returns p-ckpt's recomputation saving: R·β.
func RecompReductionPckpt(recompB, alpha, sigma float64) float64 {
	return recompB * Beta(alpha, sigma)
}

// PckptWins evaluates Eq. (7): true when p-ckpt's recomputation advantage
// over LM exceeds LM's checkpoint-overhead advantage, for a base model
// with the given recomputation and checkpoint overheads.
func PckptWins(alpha, sigma, recompB, ckptB float64) bool {
	if ckptB <= 0 {
		// No checkpoint overhead to reduce: p-ckpt wins whenever it
		// handles more failures, which Eq. (6) guarantees for α > 1−σ.
		return RecompReductionPckpt(recompB, alpha, sigma) > RecompReductionLM(recompB, sigma)
	}
	lhs := (1 - math.Sqrt(1-sigma)) / (Beta(alpha, sigma) - sigma)
	if Beta(alpha, sigma)-sigma <= 0 {
		return false // LM handles at least as many failures as p-ckpt
	}
	return lhs < recompB/ckptB
}

// AlphaThreshold returns Eq. (8) exactly as the paper prints it: the
// minimum LM-transfer ratio α above which p-ckpt outperforms LM, assuming
// application overhead splits evenly between recomputation and
// checkpointing: α > (σ+1)/(σ+√(1−σ)).
//
// Note: the published Eq. (8) is a simplification that does not follow
// algebraically from Eq. (7) — solving Eq. (7) at a 50/50 split yields
// AlphaThresholdExact below, which is strictly larger for σ > 0. We ship
// both: AlphaThreshold reproduces the paper's stated 1.04 ≤ α < 1.30
// region; AlphaThresholdExact is the self-consistent bound.
func AlphaThreshold(sigma float64) float64 {
	checkSigma(sigma)
	return (sigma + 1) / (sigma + math.Sqrt(1-sigma))
}

// AlphaThresholdExact solves Eq. (7) exactly at a 50/50 overhead split:
// α > (1−σ)/(√(1−σ)−σ). It diverges as σ approaches SigmaMax, where LM's
// interval elongation alone consumes the whole recomputation budget.
func AlphaThresholdExact(sigma float64) float64 {
	checkSigma(sigma)
	den := math.Sqrt(1-sigma) - sigma
	if den <= 0 {
		return math.Inf(1)
	}
	return (1 - sigma) / den
}

// AlphaRange sweeps σ over [0, SigmaMax) and returns the break-even α at
// the endpoints — the paper's "1.04 ≤ α < 1.30" statement (its lower
// endpoint is quoted at σ≈0.1 rather than σ=0, where the threshold is
// exactly 1).
func AlphaRange() (atSigmaLow, atSigmaMax float64) {
	return AlphaThreshold(0.1), AlphaThreshold(SigmaMax)
}

func checkSigma(sigma float64) {
	if sigma < 0 || sigma >= 1 {
		panic("analytic: sigma outside [0, 1)")
	}
}

func checkAlpha(alpha float64) {
	if alpha <= 0 {
		panic("analytic: non-positive alpha")
	}
}
