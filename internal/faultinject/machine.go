// Machine-scope fault plan: degradation that strikes the shared-machine
// substrate itself rather than any one tenant's writes — PFS brownout
// and blackout windows that move the arbiter's aggregate ceiling,
// drain-slot outages that shrink the machine-wide drain budget, and
// whole-tenant crashes (correlated across a rack) that throw running
// jobs back into the admission queue.
//
// Like the per-run Injector, the plan is seeded and deterministic:
// every draw comes from a dedicated substream (Split(MachineStreamKey)
// of the machine's root source), and each fault process owns its own
// sub-substream, so the brownout timeline is independent of the crash
// timeline and both are independent of every tenant's failure and
// injection streams. A zero MachineConfig builds a nil *MachineInjector
// whose hooks are no-ops — machine.Simulate with the plan disabled is
// bit-identical to the plan not existing.
package faultinject

import (
	"fmt"
	"math"

	"pckpt/internal/rng"
)

// MachineStreamKey is the rng.Split key reserved for the machine-scope
// fault plan. Tenant failure streams derive from per-job run seeds and
// the per-run injector owns StreamKey (2); the machine plan owns key 3
// of the machine's root source, so arming it consumes no tenant draws.
const MachineStreamKey = 3

// Defaults applied by MachineConfig.WithDefaults when the matching
// fault process is enabled and the field is unset.
const (
	DefaultBrownoutMeanSeconds    = 600
	DefaultBrownoutMinFactor      = 0.25
	DefaultBrownoutMaxFactor      = 0.75
	DefaultDrainOutageMeanSeconds = 600
	DefaultDrainOutageSlots       = 1
	DefaultCrashMaxRetries        = 2
	DefaultCrashBackoffSeconds    = 300
)

// MachineConfig is the declarative machine-scope fault plan. The zero
// value is a perfectly healthy machine. Rates are Poisson arrival rates
// per hour of machine time; window durations are exponential around
// their mean.
type MachineConfig struct {
	// BrownoutRatePerHour is the arrival rate of PFS brownout windows.
	// During a window the arbiter's aggregate ceiling is scaled by a
	// factor drawn uniformly from [BrownoutMinFactor, BrownoutMaxFactor)
	// — or to zero (a blackout) with probability BlackoutProb. Windows
	// are sequential: the next gap is drawn when the current window ends.
	BrownoutRatePerHour float64
	// BrownoutMeanSeconds is the mean brownout window duration
	// (default DefaultBrownoutMeanSeconds when the rate is set).
	BrownoutMeanSeconds float64
	// BrownoutMinFactor and BrownoutMaxFactor bound the ceiling scale
	// factor (defaults DefaultBrownoutMinFactor/MaxFactor when the rate
	// is set and both are zero).
	BrownoutMinFactor float64
	BrownoutMaxFactor float64
	// BlackoutProb is the probability a brownout window is a full
	// blackout: ceiling zero, every flow priced to zero until it lifts.
	BlackoutProb float64

	// DrainOutageRatePerHour is the arrival rate of drain-slot outages.
	// During an outage the machine-wide drain budget shrinks by
	// DrainOutageSlots (floored at zero) and the most recently admitted
	// in-flight drains requeue FIFO.
	DrainOutageRatePerHour float64
	// DrainOutageMeanSeconds is the mean outage duration (default
	// DefaultDrainOutageMeanSeconds when the rate is set).
	DrainOutageMeanSeconds float64
	// DrainOutageSlots is how many slots an outage removes (default
	// DefaultDrainOutageSlots when the rate is set).
	DrainOutageSlots int

	// CrashRatePerHour is the arrival rate of whole-rack crashes: every
	// running tenant in the struck fault-domain group loses its flows
	// and re-enters the admission queue after an exponential backoff.
	CrashRatePerHour float64
	// CrashMaxRetries bounds readmissions per job (default
	// DefaultCrashMaxRetries when the rate is set); a job crashing
	// beyond the bound ends as a truncated run instead of requeueing.
	CrashMaxRetries int
	// CrashBackoffSeconds is the base requeue delay after a crash,
	// doubling per prior crash of the same job (default
	// DefaultCrashBackoffSeconds when the rate is set).
	CrashBackoffSeconds float64

	// StarvationEscalationSeconds arms the arbiter's starvation
	// watchdog: a flow starved longer than this escalates into the
	// priority lane. Zero leaves the watchdog off.
	StarvationEscalationSeconds float64
}

// WithDefaults fills the per-process defaults for every enabled fault
// process. A zero MachineConfig stays zero.
func (c MachineConfig) WithDefaults() MachineConfig {
	if c.BrownoutRatePerHour > 0 {
		if c.BrownoutMeanSeconds == 0 {
			c.BrownoutMeanSeconds = DefaultBrownoutMeanSeconds
		}
		if c.BrownoutMinFactor == 0 && c.BrownoutMaxFactor == 0 {
			c.BrownoutMinFactor = DefaultBrownoutMinFactor
			c.BrownoutMaxFactor = DefaultBrownoutMaxFactor
		}
	}
	if c.DrainOutageRatePerHour > 0 {
		if c.DrainOutageMeanSeconds == 0 {
			c.DrainOutageMeanSeconds = DefaultDrainOutageMeanSeconds
		}
		if c.DrainOutageSlots == 0 {
			c.DrainOutageSlots = DefaultDrainOutageSlots
		}
	}
	if c.CrashRatePerHour > 0 {
		if c.CrashMaxRetries == 0 {
			c.CrashMaxRetries = DefaultCrashMaxRetries
		}
		if c.CrashBackoffSeconds == 0 {
			c.CrashBackoffSeconds = DefaultCrashBackoffSeconds
		}
	}
	return c
}

// Enabled reports whether any machine-scope fault process (or the
// starvation watchdog) is armed.
func (c MachineConfig) Enabled() bool {
	return c.BrownoutRatePerHour > 0 || c.DrainOutageRatePerHour > 0 ||
		c.CrashRatePerHour > 0 || c.StarvationEscalationSeconds > 0
}

// Validate rejects rates, durations, and bounds outside their domains.
func (c MachineConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"BrownoutRatePerHour", c.BrownoutRatePerHour},
		{"BrownoutMeanSeconds", c.BrownoutMeanSeconds},
		{"DrainOutageRatePerHour", c.DrainOutageRatePerHour},
		{"DrainOutageMeanSeconds", c.DrainOutageMeanSeconds},
		{"CrashRatePerHour", c.CrashRatePerHour},
		{"CrashBackoffSeconds", c.CrashBackoffSeconds},
		{"StarvationEscalationSeconds", c.StarvationEscalationSeconds},
	} {
		if p.v < 0 || math.IsNaN(p.v) || math.IsInf(p.v, 0) {
			return fmt.Errorf("faultinject: %s = %v invalid", p.name, p.v)
		}
	}
	if c.BrownoutMinFactor < 0 || c.BrownoutMaxFactor > 1 ||
		c.BrownoutMinFactor > c.BrownoutMaxFactor ||
		c.BrownoutMinFactor != c.BrownoutMinFactor || c.BrownoutMaxFactor != c.BrownoutMaxFactor {
		return fmt.Errorf("faultinject: brownout factors [%v, %v] outside 0 <= min <= max <= 1",
			c.BrownoutMinFactor, c.BrownoutMaxFactor)
	}
	if c.BlackoutProb < 0 || c.BlackoutProb > 1 || c.BlackoutProb != c.BlackoutProb {
		return fmt.Errorf("faultinject: BlackoutProb = %v outside [0, 1]", c.BlackoutProb)
	}
	if c.DrainOutageSlots < 0 {
		return fmt.Errorf("faultinject: DrainOutageSlots = %d negative", c.DrainOutageSlots)
	}
	if c.CrashMaxRetries < 0 {
		return fmt.Errorf("faultinject: CrashMaxRetries = %d negative", c.CrashMaxRetries)
	}
	return nil
}

// MachineInjector draws the machine-scope fault plan for one machine
// run. A nil *MachineInjector is the disabled plan. Each fault process
// draws from its own substream, so the processes' timelines are
// mutually independent no matter how their events interleave.
type MachineInjector struct {
	cfg      MachineConfig
	brownout *rng.Source
	drain    *rng.Source
	crash    *rng.Source
}

// NewMachine builds the machine-fault injector from the plan's
// substream (src must be the machine root source's
// Split(MachineStreamKey)). A zero cfg returns nil — the disabled plan.
func NewMachine(cfg MachineConfig, src *rng.Source) *MachineInjector {
	cfg = cfg.WithDefaults()
	if cfg == (MachineConfig{}) {
		return nil
	}
	return &MachineInjector{
		cfg:      cfg,
		brownout: src.Split(0),
		drain:    src.Split(1),
		crash:    src.Split(2),
	}
}

// MachineConfig returns the (defaulted) plan. The nil injector reports
// the zero MachineConfig.
func (in *MachineInjector) MachineConfig() MachineConfig {
	if in == nil {
		return MachineConfig{}
	}
	return in.cfg
}

// NextBrownoutGap draws the seconds until the next brownout window
// opens (infinite when the process is disabled). The result must not be
// ignored: dropping it desynchronizes the plan (cmd/vet-ignored
// enforces this, as for every draw below).
func (in *MachineInjector) NextBrownoutGap() float64 {
	if in == nil || in.cfg.BrownoutRatePerHour <= 0 {
		return math.Inf(1)
	}
	return in.brownout.Exponential(in.cfg.BrownoutRatePerHour / 3600)
}

// BrownoutWindow draws one brownout window: its duration and the
// ceiling scale factor (zero = blackout).
func (in *MachineInjector) BrownoutWindow() (durSeconds, factor float64) {
	if in == nil || in.cfg.BrownoutRatePerHour <= 0 {
		return 0, 1
	}
	durSeconds = in.brownout.Exponential(1 / in.cfg.BrownoutMeanSeconds)
	if in.brownout.Bool(in.cfg.BlackoutProb) {
		return durSeconds, 0
	}
	if in.cfg.BrownoutMinFactor == in.cfg.BrownoutMaxFactor {
		return durSeconds, in.cfg.BrownoutMinFactor
	}
	return durSeconds, in.brownout.Uniform(in.cfg.BrownoutMinFactor, in.cfg.BrownoutMaxFactor)
}

// NextDrainOutageGap draws the seconds until the next drain-slot outage
// (infinite when the process is disabled).
func (in *MachineInjector) NextDrainOutageGap() float64 {
	if in == nil || in.cfg.DrainOutageRatePerHour <= 0 {
		return math.Inf(1)
	}
	return in.drain.Exponential(in.cfg.DrainOutageRatePerHour / 3600)
}

// DrainOutageWindow draws one outage window: its duration and how many
// drain slots it removes.
func (in *MachineInjector) DrainOutageWindow() (durSeconds float64, slots int) {
	if in == nil || in.cfg.DrainOutageRatePerHour <= 0 {
		return 0, 0
	}
	return in.drain.Exponential(1 / in.cfg.DrainOutageMeanSeconds), in.cfg.DrainOutageSlots
}

// NextCrashGap draws the seconds until the next rack crash (infinite
// when the process is disabled).
func (in *MachineInjector) NextCrashGap() float64 {
	if in == nil || in.cfg.CrashRatePerHour <= 0 {
		return math.Inf(1)
	}
	return in.crash.Exponential(in.cfg.CrashRatePerHour / 3600)
}

// CrashRack draws which of numRacks fault-domain groups the crash
// strikes. The draw happens unconditionally at the planned crash time —
// whether any tenant of the rack is running — so the plan's timeline is
// independent of machine state.
func (in *MachineInjector) CrashRack(numRacks int) int {
	if in == nil || in.cfg.CrashRatePerHour <= 0 || numRacks <= 0 {
		return 0
	}
	return in.crash.Intn(numRacks)
}

// CrashBackoffSeconds returns the requeue delay after a job's crash
// number crashes (1-based): base backoff doubled per prior crash.
func (in *MachineInjector) CrashBackoffSeconds(crashes int) float64 {
	if in == nil || crashes <= 0 {
		return 0
	}
	return in.cfg.CrashBackoffSeconds * float64(uint64(1)<<uint(crashes-1))
}
