package faultinject

import (
	"math"
	"testing"

	"pckpt/internal/rng"
)

func TestValidate(t *testing.T) {
	ok := Config{BBWriteFailProb: 0.1, PFSWriteFailProb: 0.5, CorruptProb: 0.99, RestartFailProb: 0.2, CascadeProb: 0}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{BBWriteFailProb: -0.1},
		{PFSWriteFailProb: 1}, // certain failure can never terminate
		{CorruptProb: 1.5},
		{RestartFailProb: math.NaN()},
		{CascadeProb: math.Inf(1)},
		{RestartRetries: -1},
		{RestartBackoffSeconds: -5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	var zero Config
	if got := zero.WithDefaults(); got != zero {
		t.Fatalf("zero config gained defaults: %+v", got)
	}
	c := Config{RestartFailProb: 0.3}.WithDefaults()
	if c.RestartRetries != DefaultRestartRetries || c.RestartBackoffSeconds != DefaultRestartBackoffSeconds {
		t.Fatalf("defaults not applied: %+v", c)
	}
	// Explicit settings survive.
	c = Config{RestartFailProb: 0.3, RestartRetries: 9, RestartBackoffSeconds: 1}.WithDefaults()
	if c.RestartRetries != 9 || c.RestartBackoffSeconds != 1 {
		t.Fatalf("explicit settings overwritten: %+v", c)
	}
}

func TestNilInjectorIsDisabledPlan(t *testing.T) {
	if in := New(Config{}, rng.New(1).Split(StreamKey), nil); in != nil {
		t.Fatal("zero config built a live injector")
	}
	var in *Injector
	if in.BBWriteFails() || in.PFSWriteFails() || in.CorruptCommit() {
		t.Fatal("nil injector injected a fault")
	}
	if fail, backoff := in.RestartAttemptFails(0); fail || backoff != 0 {
		t.Fatal("nil injector failed a restart")
	}
	if strike, frac := in.CascadeRecovery(); strike || frac != 0 {
		t.Fatal("nil injector cascaded")
	}
	in.ObserveCorruptRestarts(3)
	in.ObserveCascadeDepth(2)
	if in.Config() != (Config{}) {
		t.Fatal("nil injector reports a non-zero plan")
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{BBWriteFailProb: 0.3, PFSWriteFailProb: 0.3, CorruptProb: 0.3, RestartFailProb: 0.3, CascadeProb: 0.3}
	draw := func() []bool {
		in := New(cfg, rng.New(99).Split(StreamKey), nil)
		var out []bool
		for i := 0; i < 200; i++ {
			switch i % 4 {
			case 0:
				out = append(out, in.BBWriteFails())
			case 1:
				out = append(out, in.PFSWriteFails())
			case 2:
				out = append(out, in.CorruptCommit())
			case 3:
				fail, _ := in.RestartAttemptFails(0)
				out = append(out, fail)
			}
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identically seeded plans", i)
		}
	}
}

// TestZeroRateHooksConsumeNoDraws pins the bit-identity contract: a hook
// whose probability is zero must not touch the stream, so enabling the
// injector with some rates at zero leaves every other draw sequence
// exactly where it would have been.
func TestZeroRateHooksConsumeNoDraws(t *testing.T) {
	in := New(Config{CorruptProb: 0.5}, rng.New(7).Split(StreamKey), nil)
	// These are all rate-zero: no draws.
	for i := 0; i < 50; i++ {
		in.BBWriteFails()
		in.PFSWriteFails()
		in.RestartAttemptFails(i)
		in.CascadeRecovery()
	}
	want := rng.New(7).Split(StreamKey).Bool(0.5)
	if got := in.CorruptCommit(); got != want {
		t.Fatal("zero-rate hooks consumed draws from the fault stream")
	}
}

func TestRestartBackoffDoublesAndRetriesBound(t *testing.T) {
	cfg := Config{RestartFailProb: 0.999, RestartRetries: 3, RestartBackoffSeconds: 10}
	in := New(cfg, rng.New(5).Split(StreamKey), nil)
	for attempt := 0; attempt < 3; attempt++ {
		fail, backoff := in.RestartAttemptFails(attempt)
		if !fail {
			t.Fatalf("attempt %d succeeded at p=0.999 (unlucky seed; pick another)", attempt)
		}
		if want := 10 * float64(uint64(1)<<uint(attempt)); backoff != want {
			t.Fatalf("attempt %d backoff %g, want %g", attempt, backoff, want)
		}
	}
	// At the retry bound the platform is assumed recovered: guaranteed
	// success keeps every recovery finite.
	if fail, backoff := in.RestartAttemptFails(3); fail || backoff != 0 {
		t.Fatal("attempt at the retry bound did not succeed")
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config enabled")
	}
	if (Config{RestartRetries: 5, RestartBackoffSeconds: 60}).Enabled() {
		t.Fatal("rate-free config enabled")
	}
	if !(Config{CascadeProb: 0.01}).Enabled() {
		t.Fatal("nonzero rate not enabled")
	}
}
