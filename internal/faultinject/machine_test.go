package faultinject

import (
	"math"
	"testing"

	"pckpt/internal/rng"
)

func TestMachineConfigValidate(t *testing.T) {
	ok := MachineConfig{
		BrownoutRatePerHour: 0.5, BrownoutMeanSeconds: 600,
		BrownoutMinFactor: 0.2, BrownoutMaxFactor: 0.6, BlackoutProb: 0.25,
		DrainOutageRatePerHour: 0.4, DrainOutageSlots: 2,
		CrashRatePerHour: 0.1, CrashMaxRetries: 3, CrashBackoffSeconds: 300,
		StarvationEscalationSeconds: 900,
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid machine plan rejected: %v", err)
	}
	if err := (MachineConfig{}).Validate(); err != nil {
		t.Fatalf("zero (healthy) plan rejected: %v", err)
	}
	bad := []MachineConfig{
		{BrownoutRatePerHour: -1},
		{BrownoutMeanSeconds: math.NaN()},
		{BrownoutMinFactor: 0.8, BrownoutMaxFactor: 0.2}, // min > max
		{BrownoutMaxFactor: 1.5},
		{BrownoutMinFactor: -0.1, BrownoutMaxFactor: 0},
		{BlackoutProb: 1.1},
		{BlackoutProb: math.NaN()},
		{DrainOutageRatePerHour: math.Inf(1)},
		{DrainOutageSlots: -1},
		{CrashRatePerHour: -2},
		{CrashMaxRetries: -1},
		{CrashBackoffSeconds: -5},
		{StarvationEscalationSeconds: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid machine plan accepted: %+v", c)
		}
	}
}

// WithDefaults fills only the processes that are enabled, is idempotent,
// and leaves the zero plan zero.
func TestMachineConfigWithDefaults(t *testing.T) {
	if got := (MachineConfig{}).WithDefaults(); got != (MachineConfig{}) {
		t.Fatalf("zero plan gained defaults: %+v", got)
	}
	c := MachineConfig{BrownoutRatePerHour: 1, DrainOutageRatePerHour: 1, CrashRatePerHour: 1}.WithDefaults()
	if c.BrownoutMeanSeconds != DefaultBrownoutMeanSeconds ||
		c.BrownoutMinFactor != DefaultBrownoutMinFactor ||
		c.BrownoutMaxFactor != DefaultBrownoutMaxFactor {
		t.Fatalf("brownout defaults not applied: %+v", c)
	}
	if c.DrainOutageMeanSeconds != DefaultDrainOutageMeanSeconds || c.DrainOutageSlots != DefaultDrainOutageSlots {
		t.Fatalf("drain-outage defaults not applied: %+v", c)
	}
	if c.CrashMaxRetries != DefaultCrashMaxRetries || c.CrashBackoffSeconds != DefaultCrashBackoffSeconds {
		t.Fatalf("crash defaults not applied: %+v", c)
	}
	if c2 := c.WithDefaults(); c2 != c {
		t.Fatalf("WithDefaults is not idempotent:\n%+v\nvs\n%+v", c, c2)
	}
	// An explicit min factor alone must not drag in the default max
	// (min==max pins the factor).
	pinned := MachineConfig{BrownoutRatePerHour: 1, BrownoutMinFactor: 0.5, BrownoutMaxFactor: 0.5}.WithDefaults()
	if pinned.BrownoutMinFactor != 0.5 || pinned.BrownoutMaxFactor != 0.5 {
		t.Fatalf("pinned factor overwritten: %+v", pinned)
	}
	// Disabled processes stay unfilled.
	if got := (MachineConfig{StarvationEscalationSeconds: 900}).WithDefaults(); got.CrashBackoffSeconds != 0 || got.BrownoutMeanSeconds != 0 {
		t.Fatalf("watchdog-only plan gained process defaults: %+v", got)
	}
}

func TestMachineConfigEnabled(t *testing.T) {
	if (MachineConfig{}).Enabled() {
		t.Error("zero plan reports enabled")
	}
	for _, c := range []MachineConfig{
		{BrownoutRatePerHour: 0.1},
		{DrainOutageRatePerHour: 0.1},
		{CrashRatePerHour: 0.1},
		{StarvationEscalationSeconds: 1},
	} {
		if !c.Enabled() {
			t.Errorf("armed plan reports disabled: %+v", c)
		}
	}
}

// A zero plan builds the nil injector, and every nil draw is a safe
// no-op: infinite gaps, identity windows, zero backoff.
func TestMachineInjectorNilSafe(t *testing.T) {
	in := NewMachine(MachineConfig{}, rng.New(1).Split(MachineStreamKey))
	if in != nil {
		t.Fatal("zero plan built a live injector")
	}
	if g := in.NextBrownoutGap(); !math.IsInf(g, 1) {
		t.Errorf("nil NextBrownoutGap = %g, want +Inf", g)
	}
	if d, f := in.BrownoutWindow(); d != 0 || f != 1 {
		t.Errorf("nil BrownoutWindow = (%g, %g), want (0, 1)", d, f)
	}
	if g := in.NextDrainOutageGap(); !math.IsInf(g, 1) {
		t.Errorf("nil NextDrainOutageGap = %g, want +Inf", g)
	}
	if d, s := in.DrainOutageWindow(); d != 0 || s != 0 {
		t.Errorf("nil DrainOutageWindow = (%g, %d), want (0, 0)", d, s)
	}
	if g := in.NextCrashGap(); !math.IsInf(g, 1) {
		t.Errorf("nil NextCrashGap = %g, want +Inf", g)
	}
	if r := in.CrashRack(4); r != 0 {
		t.Errorf("nil CrashRack = %d, want 0", r)
	}
	if b := in.CrashBackoffSeconds(3); b != 0 {
		t.Errorf("nil CrashBackoffSeconds = %g, want 0", b)
	}
	if got := in.MachineConfig(); got != (MachineConfig{}) {
		t.Errorf("nil MachineConfig = %+v, want zero", got)
	}
}

// A disabled process on a live injector draws nothing from its
// substream: the gap is infinite and the window is the identity.
func TestMachineInjectorDisabledProcessDrawsNothing(t *testing.T) {
	in := NewMachine(MachineConfig{CrashRatePerHour: 1}, rng.New(1).Split(MachineStreamKey))
	if in == nil {
		t.Fatal("crash-armed plan built no injector")
	}
	if g := in.NextBrownoutGap(); !math.IsInf(g, 1) {
		t.Errorf("disabled brownout gap = %g, want +Inf", g)
	}
	if d, f := in.BrownoutWindow(); d != 0 || f != 1 {
		t.Errorf("disabled BrownoutWindow = (%g, %g), want (0, 1)", d, f)
	}
	if g := in.NextDrainOutageGap(); !math.IsInf(g, 1) {
		t.Errorf("disabled drain gap = %g, want +Inf", g)
	}
}

// The plan is deterministic in its seed, and each fault process owns an
// independent substream: drawing crashes never perturbs brownouts.
func TestMachineInjectorSubstreamIndependence(t *testing.T) {
	full := MachineConfig{
		BrownoutRatePerHour:    1,
		DrainOutageRatePerHour: 1,
		CrashRatePerHour:       1,
	}
	a := NewMachine(full, rng.New(42).Split(MachineStreamKey))
	b := NewMachine(full, rng.New(42).Split(MachineStreamKey))
	// b interleaves crash draws between its brownout draws; a does not.
	// The brownout sequences must match anyway.
	for i := 0; i < 16; i++ {
		want := a.NextBrownoutGap()
		_ = b.NextCrashGap()
		if got := b.NextBrownoutGap(); got != want {
			t.Fatalf("draw %d: brownout gap %g after crash interleaving, want %g", i, got, want)
		}
	}
	// Same seed, same sequence.
	c := NewMachine(full, rng.New(42).Split(MachineStreamKey))
	d := NewMachine(full, rng.New(42).Split(MachineStreamKey))
	for i := 0; i < 16; i++ {
		if c.NextCrashGap() != d.NextCrashGap() {
			t.Fatalf("draw %d: same-seed crash gaps differ", i)
		}
	}
}

// Window draws respect their configured domains.
func TestMachineInjectorWindowDomains(t *testing.T) {
	cfg := MachineConfig{
		BrownoutRatePerHour: 1,
		BrownoutMinFactor:   0.2, BrownoutMaxFactor: 0.6,
		BlackoutProb:           0.3,
		DrainOutageRatePerHour: 1, DrainOutageSlots: 2,
	}
	in := NewMachine(cfg, rng.New(9).Split(MachineStreamKey))
	blackouts := 0
	for i := 0; i < 500; i++ {
		dur, f := in.BrownoutWindow()
		if dur < 0 {
			t.Fatalf("negative window duration %g", dur)
		}
		if f == 0 {
			blackouts++
			continue
		}
		if f < 0.2 || f >= 0.6 {
			t.Fatalf("brownout factor %g outside [0.2, 0.6)", f)
		}
	}
	if blackouts == 0 || blackouts == 500 {
		t.Fatalf("%d/500 blackouts at prob 0.3 — the blackout draw is stuck", blackouts)
	}
	if _, slots := in.DrainOutageWindow(); slots != 2 {
		t.Fatalf("DrainOutageWindow slots = %d, want 2", slots)
	}
}

// CrashBackoffSeconds doubles per prior crash of the same job.
func TestMachineInjectorCrashBackoffDoubles(t *testing.T) {
	in := NewMachine(MachineConfig{CrashRatePerHour: 1, CrashBackoffSeconds: 100}, rng.New(1).Split(MachineStreamKey))
	for crashes, want := range map[int]float64{1: 100, 2: 200, 3: 400, 4: 800} {
		if got := in.CrashBackoffSeconds(crashes); got != want {
			t.Errorf("CrashBackoffSeconds(%d) = %g, want %g", crashes, got, want)
		}
	}
	if got := in.CrashBackoffSeconds(0); got != 0 {
		t.Errorf("CrashBackoffSeconds(0) = %g, want 0", got)
	}
}
