// Package faultinject degrades the simulated platform: checkpoint writes
// that fail, checkpoints that commit torn and are discovered corrupt only
// when a restart tries to read them, restarts that need several attempts
// with backoff, and secondary failures cascading into recovery windows.
//
// The fault plan is seeded and deterministic. Every draw comes from a
// dedicated rng substream (Split(StreamKey) of the run's root source), so
// the plan is independent of the failure stream and of every other
// stochastic input: enabling injection with all probabilities at zero
// consumes no draws at all and is bit-identical to injection disabled.
// The Config participates in platform.CanonicalString, so degraded and
// perfect platforms can never collide in the result cache.
//
// The zero Injector (a nil pointer) is valid and injects nothing; every
// hook on it is a cheap no-op, so the tiers thread the injector through
// their hot paths unconditionally.
package faultinject

import (
	"fmt"

	"pckpt/internal/metrics"
	"pckpt/internal/rng"
)

// StreamKey is the rng.Split key reserved for the fault plan. The failure
// stream owns key 1 in both tiers; the injector owns key 2. Keeping the
// keys distinct is what makes rate-0 injection bit-identical to disabled.
const StreamKey = 2

// MaxCascadeDepth bounds how many secondary failures may pile onto one
// recovery window, and how many times a torn collective write is retried:
// a safety rail so a pathological configuration degrades the run instead
// of livelocking it.
const MaxCascadeDepth = 16

// Defaults for the bounded-retry restart policy, applied when
// RestartFailProb is positive and the field is unset.
const (
	DefaultRestartRetries        = 4
	DefaultRestartBackoffSeconds = 30
)

// Config is the declarative fault plan. The zero value is a perfect
// platform. All probabilities are per-event (per checkpoint write, per
// restart attempt, per recovery window) and must lie in [0, 1).
type Config struct {
	// BBWriteFailProb is the probability that a coordinated burst-buffer
	// checkpoint write fails after occupying the BBs for its full duration
	// (nothing commits; the tier retries at the next periodic slot).
	BBWriteFailProb float64
	// PFSWriteFailProb is the probability that a PFS write — a drain, a
	// safeguard, a prioritized vulnerable-node write, or an episode's
	// phase-2 collective — fails after its full transfer time.
	PFSWriteFailProb float64
	// CorruptProb is the probability that a committed checkpoint
	// generation is silently torn: the commit looks fine, and the damage
	// is discovered only when a restart tries to restore from it, forcing
	// policy.ResolveRestart to fall back to an older generation.
	CorruptProb float64
	// RestartFailProb is the probability that a restart attempt fails
	// after its recovery read, costing a deterministic backoff before the
	// next attempt. After RestartRetries failed attempts the platform is
	// assumed recovered and the final attempt succeeds.
	RestartFailProb float64
	// RestartRetries bounds the failed restart attempts per failure
	// (default DefaultRestartRetries when RestartFailProb > 0).
	RestartRetries int
	// RestartBackoffSeconds is the base backoff charged as downtime after
	// a failed restart attempt; it doubles per attempt (default
	// DefaultRestartBackoffSeconds when RestartFailProb > 0).
	RestartBackoffSeconds float64
	// CascadeProb is the probability that a secondary failure lands
	// inside a recovery window, voiding the partial restore: the elapsed
	// fraction of the window is wasted and the restore begins again.
	// Successive cascades on one window are drawn independently, bounded
	// by MaxCascadeDepth.
	CascadeProb float64
}

// WithDefaults fills the retry/backoff fields when restart failures are
// enabled. A zero Config stays zero.
func (c Config) WithDefaults() Config {
	if c.RestartFailProb > 0 {
		if c.RestartRetries == 0 {
			c.RestartRetries = DefaultRestartRetries
		}
		if c.RestartBackoffSeconds == 0 {
			c.RestartBackoffSeconds = DefaultRestartBackoffSeconds
		}
	}
	return c
}

// Enabled reports whether any fault has a nonzero probability.
func (c Config) Enabled() bool {
	return c.BBWriteFailProb > 0 || c.PFSWriteFailProb > 0 || c.CorruptProb > 0 ||
		c.RestartFailProb > 0 || c.CascadeProb > 0
}

// Validate rejects probabilities outside [0, 1) and negative retry or
// backoff settings. Probability 1 is rejected deliberately: a platform
// where every write fails or every restart attempt fails can never make
// progress, and the simulation would not terminate.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"BBWriteFailProb", c.BBWriteFailProb},
		{"PFSWriteFailProb", c.PFSWriteFailProb},
		{"CorruptProb", c.CorruptProb},
		{"RestartFailProb", c.RestartFailProb},
		{"CascadeProb", c.CascadeProb},
	} {
		if p.v < 0 || p.v >= 1 || p.v != p.v {
			return fmt.Errorf("faultinject: %s = %v outside [0, 1)", p.name, p.v)
		}
	}
	if c.RestartRetries < 0 {
		return fmt.Errorf("faultinject: RestartRetries = %d negative", c.RestartRetries)
	}
	if c.RestartBackoffSeconds < 0 {
		return fmt.Errorf("faultinject: RestartBackoffSeconds = %v negative", c.RestartBackoffSeconds)
	}
	return nil
}

// Injector draws the fault plan for one simulation run. A nil *Injector
// is the disabled plan: every hook returns the no-fault answer without
// touching any stream.
type Injector struct {
	cfg Config
	src *rng.Source

	bbWriteFailures  *metrics.Counter
	pfsWriteFailures *metrics.Counter
	corruptRestarts  *metrics.Counter
	restartRetries   *metrics.Counter
	cascades         *metrics.Counter
	cascadeDepth     *metrics.Histogram
}

// New builds the injector for one run from the run's fault substream
// (src must be the root source's Split(StreamKey)). A zero cfg returns
// nil — the disabled plan — so callers construct unconditionally.
func New(cfg Config, src *rng.Source, reg *metrics.Registry) *Injector {
	cfg = cfg.WithDefaults()
	if cfg == (Config{}) {
		return nil
	}
	return &Injector{
		cfg:              cfg,
		src:              src,
		bbWriteFailures:  reg.Counter("faultinject.bb_write_failures"),
		pfsWriteFailures: reg.Counter("faultinject.pfs_write_failures"),
		corruptRestarts:  reg.Counter("faultinject.corrupt_restarts"),
		restartRetries:   reg.Counter("faultinject.restart_retries"),
		cascades:         reg.Counter("faultinject.cascades"),
		cascadeDepth:     reg.Histogram("faultinject.cascade_depth"),
	}
}

// Config returns the (defaulted) plan this injector draws from. The nil
// injector reports the zero Config.
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// BBWriteFails draws whether the BB checkpoint write that just finished
// its transfer failed. The result must not be ignored: dropping it
// un-degrades the platform (cmd/vet-ignored enforces this).
func (in *Injector) BBWriteFails() bool {
	if in == nil || in.cfg.BBWriteFailProb <= 0 {
		return false
	}
	if !in.src.Bool(in.cfg.BBWriteFailProb) {
		return false
	}
	in.bbWriteFailures.Inc()
	return true
}

// PFSWriteFails draws whether the PFS write that just finished its
// transfer failed. Applies to drains, safeguards, prioritized
// vulnerable-node writes, and episode phase-2 collectives alike.
func (in *Injector) PFSWriteFails() bool {
	if in == nil || in.cfg.PFSWriteFailProb <= 0 {
		return false
	}
	if !in.src.Bool(in.cfg.PFSWriteFailProb) {
		return false
	}
	in.pfsWriteFailures.Inc()
	return true
}

// CorruptCommit draws whether the checkpoint generation that just
// committed is silently torn. The draw happens at commit time — the
// corruption is a property of the written bytes — but nothing is counted
// here: silent means silent, and the tier discovers (and accounts) it
// only through policy.ResolveRestart.
func (in *Injector) CorruptCommit() bool {
	if in == nil || in.cfg.CorruptProb <= 0 {
		return false
	}
	return in.src.Bool(in.cfg.CorruptProb)
}

// RestartAttemptFails draws whether restart attempt number attempt
// (0-based) fails, and if so the backoff to charge as downtime before
// the next attempt: base backoff doubled per prior attempt. Attempts at
// or beyond the retry bound always succeed — the platform is assumed to
// have recovered by then — which keeps every recovery finite.
func (in *Injector) RestartAttemptFails(attempt int) (fail bool, backoffSeconds float64) {
	if in == nil || in.cfg.RestartFailProb <= 0 {
		return false, 0
	}
	if attempt >= in.cfg.RestartRetries {
		return false, 0
	}
	if !in.src.Bool(in.cfg.RestartFailProb) {
		return false, 0
	}
	in.restartRetries.Inc()
	return true, in.cfg.RestartBackoffSeconds * float64(uint64(1)<<uint(attempt))
}

// CascadeRecovery draws whether a secondary failure lands inside the
// recovery window about to run and, if so, the fraction of the window
// that elapses before it strikes (that fraction of restore work is
// wasted). The caller bounds consecutive strikes by MaxCascadeDepth.
func (in *Injector) CascadeRecovery() (strike bool, elapsedFrac float64) {
	if in == nil || in.cfg.CascadeProb <= 0 {
		return false, 0
	}
	if !in.src.Bool(in.cfg.CascadeProb) {
		return false, 0
	}
	in.cascades.Inc()
	return true, in.src.Float64()
}

// ObserveCorruptRestarts accounts n checkpoint generations discovered
// corrupt while resolving one restart.
func (in *Injector) ObserveCorruptRestarts(n int) {
	if in == nil || n <= 0 {
		return
	}
	in.corruptRestarts.Add(float64(n))
}

// ObserveCascadeDepth records how many secondary failures piled onto one
// recovery window (called once per window that cascaded at all).
func (in *Injector) ObserveCascadeDepth(depth int) {
	if in == nil || depth <= 0 {
		return
	}
	in.cascadeDepth.Observe(float64(depth))
}
