package nodesim

import (
	"testing"

	"pckpt/internal/metrics"
	"pckpt/internal/platform"
)

func TestSimulateMetersNodeGranularRun(t *testing.T) {
	reg := metrics.New()
	cfg := Config{Policy: PolicyHybrid, Config: platform.Config{App: smallApp, System: busySystem}, Metrics: reg}
	r := Simulate(cfg, 5)
	snap := reg.Snapshot(r.WallSeconds)
	// Every completed BB phase observes exactly one blocked span.
	if bw := snap.Histograms["nodesim.hybrid.bb_write_seconds"]; int(bw.Count) != r.Checkpoints {
		t.Fatalf("bb_write_seconds count %d != %d checkpoints", int(bw.Count), r.Checkpoints)
	}
	if g, ok := snap.Gauges["nodesim.hybrid.drain_queue_depth"]; !ok || g.Max < 1 {
		t.Fatalf("drain queue depth gauge missing or flat: %+v", g)
	}
	// Metering must not perturb the simulation.
	if plain := Simulate(Config{Policy: PolicyHybrid, Config: platform.Config{App: smallApp, System: busySystem}}, 5); r != plain {
		t.Fatalf("metering changed the run:\n%+v\n%+v", r, plain)
	}
}
