package nodesim

import (
	"testing"

	"pckpt/internal/sim"
)

// TestNodeAbortMidPhaseStillReports pins the nodeLoop contract this PR
// made explicit: a node interrupted mid-command must take the abort
// branch — count the abort, report immediately so the phase can drain,
// and go back to idle — rather than silently treating the cut-short wait
// as completed work. The driver plays coordinator against a single node:
// post a 100 s compute, abort it at t = 5, and require the phase to drain
// at t = 5 with the node reusable afterwards.
func TestNodeAbortMidPhaseStillReports(t *testing.T) {
	env := sim.NewEnv()
	c := &cluster{env: env, allDone: sim.NewEvent(env)}
	n := &node{id: 0, ready: sim.NewEvent(env)}
	c.nodes = []*node{n}
	n.proc = env.Spawn("node-0", func(p *sim.Proc) { c.nodeLoop(p, n) })

	drainedAt := -1.0
	redoneAt := -1.0
	env.Spawn("driver", func(p *sim.Proc) {
		c.post(n, command{kind: cmdCompute, dur: 100})
		if err := p.Wait(5); err != nil {
			t.Errorf("driver interrupted: %v", err)
		}
		c.abortBusy()
		for c.outstanding > 0 {
			if err := p.WaitEvent(c.allDone); err != nil {
				t.Errorf("drain wait interrupted: %v", err)
			}
		}
		drainedAt = env.Now()
		// The aborted node must be idle and immediately reusable.
		c.post(n, command{kind: cmdCompute, dur: 2})
		for c.outstanding > 0 {
			if err := p.WaitEvent(c.allDone); err != nil {
				t.Errorf("redo wait interrupted: %v", err)
			}
		}
		redoneAt = env.Now()
		c.post(n, command{kind: cmdExit})
	})
	env.RunAll()

	if drainedAt != 5 {
		t.Errorf("aborted phase drained at %g, want 5 (the abort instant)", drainedAt)
	}
	if redoneAt != 7 {
		t.Errorf("follow-up command finished at %g, want 7", redoneAt)
	}
	if c.phaseAborts != 1 {
		t.Errorf("phaseAborts = %d, want exactly the one aborted command", c.phaseAborts)
	}
	if n.busy {
		t.Error("node still marked busy after exit")
	}
	if env.ProcCount() != 0 {
		t.Errorf("%d processes leaked past RunAll", env.ProcCount())
	}
}
