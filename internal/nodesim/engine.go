package nodesim

import (
	"fmt"

	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/pckpt"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/sim"
	"pckpt/internal/stats"
)

// This file is the coordinator↔node machinery: the command/report
// protocol, the node execution loop, phase drain/abort, and the failure
// injector. The phases that ride on it live in phases.go.

// command kinds issued by the coordinator.
type cmdKind uint8

const (
	cmdCompute cmdKind = iota
	cmdBBWrite
	cmdVulnWrite
	cmdBulkWrite
	cmdRecover
	cmdExit
)

type command struct {
	kind cmdKind
	// dur is the work duration for timed commands; vulnWrite derives its
	// own duration and uses deadline for lane priority.
	dur      float64
	deadline float64
	// ev ties a vulnWrite back to the prediction that caused it.
	ev failure.Event
}

// node is one compute node's process-side state.
type node struct {
	id   int
	proc *sim.Proc
	// cmd is the pending command; ready is pulsed (not latched) when one
	// is posted, so one event serves the node for the whole run.
	cmd   command
	ready *sim.Event
	busy  bool
}

// cluster is the shared state, mutated lock-step.
type cluster struct {
	cfg Config
	pol policy.Policy
	env *sim.Env
	// pricing derives the episode's phase-1/phase-2 transfer prices from
	// the shared pckpt.EpisodePricing (identical float operations across
	// tiers).
	pricing pckpt.EpisodePricing
	nodes   []*node
	coord   *sim.Proc
	est     *failure.RateEstimator
	// inj is the degraded-platform fault plan (nil = perfect platform;
	// every hook on nil is a no-op).
	inj *faultinject.Injector

	// plat holds the precomputed platform quantities, derived once by
	// internal/platform; sigma is Eq. (2)'s σ gated on the policy's LM
	// capability (0 for base and p-ckpt).
	plat  platform.Derived
	sigma float64

	// progress is the BSP global progress; checkpoint placement and the
	// rest of the C/R lifecycle (fail epochs, drains, episodes,
	// migrations, ledgers) live in st.
	progress float64
	st       *policy.State

	// Lane is the prioritized PFS path of phase 1.
	lane *sim.Resource

	// Coordinator bookkeeping. allDone is a single pulsed event for every
	// phase drain of the run; the coordinator is its only possible waiter.
	outstanding int
	allDone     *sim.Event
	// phaseAborts counts node commands cut short by a phase abort — the
	// explicit other half of a timed command's Wait, kept as engine-side
	// accounting (deliberately not part of stats.RunResult).
	phaseAborts int
	pending     []failure.Event
	// computing/computeStart bank partial compute progress: pausing
	// handlers (episodes, failures) call bankCompute so rollbacks and
	// pauses never miscount computation.
	computing    bool
	computeStart float64
	// pausedInPhase accumulates handler pauses inside the current
	// coordinator phase, so the BB phase can compute its true remaining
	// write time after an episode interleaved with it.
	pausedInPhase float64

	met nodeMetrics
	res stats.RunResult
}

// nodeLoop executes commands until told to exit.
func (c *cluster) nodeLoop(p *sim.Proc, n *node) {
	for {
		for !n.busy {
			if err := p.WaitEvent(n.ready); err != nil {
				panic(fmt.Sprintf("nodesim: idle node interrupted: %v", err))
			}
		}
		cmd := n.cmd
		switch cmd.kind {
		case cmdExit:
			n.busy = false
			return
		case cmdVulnWrite:
			c.vulnWrite(p, n, cmd)
		default:
			// Timed work, abortable: an interrupt means the coordinator
			// voided the phase. The abort still reports — the coordinator
			// is waiting for the phase to drain — but takes the explicit
			// branch so an expired wait and a voided one are never
			// conflated.
			if cmd.dur > 0 {
				if err := p.Wait(cmd.dur); err != nil {
					c.phaseAborts++
					c.report(n)
					continue
				}
			}
		}
		c.report(n)
	}
}

// post issues a command to a node and counts it outstanding.
func (c *cluster) post(n *node, cmd command) {
	if n.busy {
		panic(fmt.Sprintf("nodesim: node %d already busy", n.id))
	}
	n.cmd = cmd
	n.busy = true
	c.outstanding++
	n.ready.Pulse()
}

// report marks a node's command finished and wakes the coordinator when
// the phase drains.
func (c *cluster) report(n *node) {
	n.busy = false
	c.outstanding--
	// Wake the coordinator only if it is actually parked on the drain
	// event; with zero waiters it is off handling an injected failure and
	// will re-check outstanding itself.
	if c.outstanding == 0 && c.allDone.Waiters() > 0 {
		c.allDone.Pulse()
	}
}

// abortBusy interrupts every node still executing a command.
func (c *cluster) abortBusy() {
	for _, n := range c.nodes {
		if n.busy {
			n.proc.Interrupt("phase aborted")
		}
	}
}

// awaitPhase blocks the coordinator until every outstanding command has
// reported, handling injected events as they arrive. It returns false if
// a failure voided the phase (the caller decides what that means).
func (c *cluster) awaitPhase(p *sim.Proc) bool {
	epoch := c.st.Epoch()
	for c.outstanding > 0 {
		if err := p.WaitEvent(c.allDone); err != nil {
			c.handleEvents(p)
			if c.st.Epoch() != epoch {
				return false
			}
		}
	}
	return c.st.Epoch() == epoch
}

// bankCompute folds the in-flight compute segment into progress; pausing
// handlers call it before they stop the world.
func (c *cluster) bankCompute() {
	if !c.computing {
		return
	}
	c.progress += c.env.Now() - c.computeStart
	c.computing = false
}

// inject delivers the failure stream to the coordinator.
func (c *cluster) inject(p *sim.Proc, stream failure.EventSource) {
	for {
		ev := stream.Next()
		if !c.coord.Alive() {
			return
		}
		if dt := ev.Time - c.env.Now(); dt > 0 {
			if err := p.Wait(dt); err != nil {
				panic(fmt.Sprintf("nodesim: injector interrupted: %v", err))
			}
		}
		if !c.coord.Alive() {
			return
		}
		switch ev.Kind {
		case failure.KindFailure:
			if c.st.ConsumeAvoided(ev.ID) {
				continue
			}
			c.est.Observe()
		default:
			if !c.cfg.Policy.UsesPrediction() {
				continue
			}
		}
		c.pending = append(c.pending, ev)
		c.coord.Interrupt("failure-stream")
	}
}
