package nodesim

import (
	"math"
	"testing"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/platform"
	"pckpt/internal/workload"
)

// smallApp keeps node-granular runs fast (one process per node).
var smallApp = workload.App{Name: "small", Nodes: 48, TotalCkptGB: 48 * 20, ComputeHours: 24}

// busySystem fails the small job every ≈40 h, so a 24 h run sees some
// failures across seeds without storming.
var busySystem = failure.System{Name: "busy", Shape: 0.75, ScaleHours: 40, Nodes: 48}

func TestPolicyString(t *testing.T) {
	if PolicyBase.NodeLabel() != "base" || PolicyPckpt.NodeLabel() != "p-ckpt" || PolicyHybrid.NodeLabel() != "hybrid" {
		t.Fatal("policy node labels wrong")
	}
	if PolicyBase.String() != "B" || PolicyPckpt.String() != "P1" || PolicyHybrid.String() != "P2" {
		t.Fatal("policy catalogue names wrong")
	}
}

func TestValidate(t *testing.T) {
	ok := Config{Policy: PolicyHybrid, Config: platform.Config{App: smallApp, System: busySystem}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Policy: PolicyHybrid, Config: platform.Config{App: workload.App{}, System: busySystem}},
		{Policy: PolicyHybrid, Config: platform.Config{App: smallApp, System: failure.System{}}},
		{Policy: 9, Config: platform.Config{App: smallApp, System: busySystem}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{Policy: PolicyHybrid, Config: platform.Config{App: smallApp, System: busySystem}}
	a := Simulate(cfg, 5)
	b := Simulate(cfg, 5)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestFailureFreeBaseRun(t *testing.T) {
	quiet := failure.System{Name: "quiet", Shape: 1, ScaleHours: 4000, Nodes: 48}
	cfg := Config{Policy: PolicyBase, Config: platform.Config{App: smallApp, System: quiet}}
	r := Simulate(cfg, 1)
	if r.Failures != 0 || r.Recompute != 0 || r.Recovery != 0 {
		t.Fatalf("quiet run saw failure work: %+v", r)
	}
	if r.Checkpoints == 0 {
		t.Fatal("no periodic checkpoints")
	}
	want := smallApp.ComputeSeconds() + r.Overheads.Checkpoint
	if math.Abs(r.WallSeconds-want) > 1e-6 {
		t.Fatalf("wall %.3f != compute + ckpt %.3f", r.WallSeconds, want)
	}
}

// TestCrossValidatesAgainstCrmodel is the promise of this package: the
// node-granular tier and the application-level tier consume identical
// failure streams (same stream config, same seed) and must agree on what
// happened — event counts exactly, overhead accounting closely.
func TestCrossValidatesAgainstCrmodel(t *testing.T) {
	policies := map[Policy]crmodel.Model{
		PolicyBase:   crmodel.ModelB,
		PolicyPckpt:  crmodel.ModelP1,
		PolicyHybrid: crmodel.ModelP2,
	}
	for pol, model := range policies {
		var wallDiff, totalNode, totalApp float64
		var fails, mitig, avoid, failsC, mitigC, avoidC int
		for seed := uint64(0); seed < 12; seed++ {
			nr := Simulate(Config{Policy: pol, Config: platform.Config{App: smallApp, System: busySystem}}, seed)
			cr := crmodel.Simulate(crmodel.Config{Model: model, Config: platform.Config{App: smallApp, System: busySystem}}, seed)
			// Exact agreement on the failure stream's bookkeeping.
			if nr.Failures != cr.Failures || nr.Predicted != cr.Predicted {
				t.Fatalf("%v seed %d: stream divergence (node %d/%d vs app %d/%d)",
					pol, seed, nr.Failures, nr.Predicted, cr.Failures, cr.Predicted)
			}
			fails += nr.Failures
			mitig += nr.Mitigated
			avoid += nr.Avoided
			failsC += cr.Failures
			mitigC += cr.Mitigated
			avoidC += cr.Avoided
			wallDiff += math.Abs(nr.WallSeconds - cr.WallSeconds)
			totalNode += nr.Total()
			totalApp += cr.Total()
		}
		// Aggregate mitigation/avoidance must match closely (corner-case
		// ordering may differ by a single event across 12 runs).
		if d := math.Abs(float64(mitig - mitigC)); d > 2 {
			t.Errorf("%v: mitigated counts diverge: node %d vs app %d", pol, mitig, mitigC)
		}
		if avoid != avoidC {
			t.Errorf("%v: avoided counts diverge: node %d vs app %d", pol, avoid, avoidC)
		}
		// Total overheads within 10 % (both tiers implement the same
		// pricing; differences come only from rare corner orderings).
		if totalApp > 0 {
			if rel := math.Abs(totalNode-totalApp) / totalApp; rel > 0.10 {
				t.Errorf("%v: total overhead diverges %.1f%% (node %.0fs vs app %.0fs)",
					pol, rel*100, totalNode, totalApp)
			}
		}
		// Mean wall-clock difference within a minute on a day-long job.
		if wallDiff/12 > 60 {
			t.Errorf("%v: mean wall divergence %.1fs", pol, wallDiff/12)
		}
		_ = fails
	}
}

func TestPckptMitigatesAtNodeGranularity(t *testing.T) {
	cfg := Config{Policy: PolicyPckpt, Config: platform.Config{App: smallApp, System: busySystem}}
	var failures, mitigated, proactive int
	for seed := uint64(0); seed < 30; seed++ {
		r := Simulate(cfg, seed)
		failures += r.Failures
		mitigated += r.Mitigated
		proactive += r.ProactiveCkpts
	}
	if failures == 0 || proactive == 0 {
		t.Fatalf("test vacuous: failures=%d proactive=%d", failures, proactive)
	}
	// The small footprint means nearly every predicted failure commits in
	// time: expect a healthy mitigation fraction.
	if frac := float64(mitigated) / float64(failures); frac < 0.5 {
		t.Fatalf("mitigated only %.2f of struck failures", frac)
	}
}

func TestHybridUsesMigrationAtNodeGranularity(t *testing.T) {
	cfg := Config{Policy: PolicyHybrid, Config: platform.Config{App: smallApp, System: busySystem}}
	var avoided, migrations int
	for seed := uint64(0); seed < 30; seed++ {
		r := Simulate(cfg, seed)
		avoided += r.Avoided
		migrations += r.Migrations
	}
	if migrations == 0 || avoided == 0 {
		t.Fatalf("hybrid never migrated: migrations=%d avoided=%d", migrations, avoided)
	}
}

func TestBasePolicyTakesNoProactiveAction(t *testing.T) {
	cfg := Config{Policy: PolicyBase, Config: platform.Config{App: smallApp, System: busySystem}}
	for seed := uint64(0); seed < 10; seed++ {
		r := Simulate(cfg, seed)
		if r.ProactiveCkpts != 0 || r.Migrations != 0 || r.Mitigated != 0 || r.Avoided != 0 {
			t.Fatalf("seed %d: base policy acted: %+v", seed, r)
		}
	}
}

func TestLaneSerializesVulnerableWrites(t *testing.T) {
	// A failure storm forces concurrent vulnerable nodes; the priority
	// lane must keep the run consistent (no deadlock, all failures
	// accounted, wall time finite).
	storm := failure.System{Name: "storm", Shape: 0.7, ScaleHours: 1.5, Nodes: 32}
	app := workload.App{Name: "stormy", Nodes: 32, TotalCkptGB: 32 * 30, ComputeHours: 3}
	cfg := Config{Policy: PolicyPckpt, Config: platform.Config{App: app, System: storm}}
	for seed := uint64(0); seed < 5; seed++ {
		r := Simulate(cfg, seed)
		if r.WallSeconds < app.ComputeSeconds() {
			t.Fatalf("seed %d: wall %.0f below compute", seed, r.WallSeconds)
		}
		if r.Failures == 0 {
			t.Fatalf("seed %d: storm produced no failures", seed)
		}
	}
}
