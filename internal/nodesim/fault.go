package nodesim

import (
	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/sim"
)

// This file is the failure path: rollback, restart-point resolution, and
// the (possibly cascading, retried) recovery phase.

// onFailure handles a node failure: void the current phase, roll back,
// run the recovery phase, replace the node (implicitly — the rank keeps
// its process).
func (c *cluster) onFailure(p *sim.Proc, ev failure.Event) {
	c.res.Failures++
	if ev.Lead > 0 {
		c.res.Predicted++
	}
	out := c.pol.OnFailure(c.st, ev)
	if out.MigrationAborted {
		c.res.AbortedMigrations++
	}
	c.bankCompute()
	c.abortBusy()
	if out.Mitigated {
		c.res.Mitigated++
	}

	// The failed node's BB died with it: if the newest coordinated
	// checkpoint has not finished draining, the consistent restart point
	// is the older PFS-resident one (Fig. 1 case B) — so the restart
	// candidate is always the PFS placement, possibly improved by the
	// proactive commit that mitigated this failure. On a degraded
	// platform, candidates discovered corrupt at restore time are
	// discarded in favour of older retained generations.
	q, fromPFS, corrupted := c.st.ResolveRestart(c.st.PFSProgress(), out)
	if corrupted > 0 {
		c.res.CorruptRestarts += corrupted
		c.inj.ObserveCorruptRestarts(corrupted)
	}
	recovery := c.plat.RecoveryBB
	if fromPFS {
		recovery = c.plat.RecoveryPFS
	}
	if c.progress > q {
		c.met.recomputeLoss.Observe(c.progress - q)
		c.res.Recompute += c.progress - q
		c.progress = q
	}
	// Drain the aborted phase, then run recovery on every node: the
	// replacement reads the PFS, the healthy ranks their burst buffers —
	// modeled as one phase of the longer duration (they run in parallel).
	pauseStart := c.env.Now()
	pausedBefore := c.pausedInPhase
	for !c.awaitPhase(p) {
	}
	// restore runs one restore phase of the given duration on every node.
	restore := func(dur float64) {
		start := c.env.Now()
		post := func() {
			for _, n := range c.nodes {
				if !n.busy {
					c.post(n, command{kind: cmdRecover, dur: dur})
				}
			}
		}
		post()
		for !c.awaitPhase(p) {
			// Another failure during recovery: the nested handler
			// recovered already; redo this one's restore on whatever is
			// idle.
			start = c.env.Now()
			post()
		}
		c.met.recoveryDur.Observe(c.env.Now() - start)
		c.res.Overheads.Recovery += c.env.Now() - start
	}
	// Each corrupt candidate cost a torn read of full restore length
	// before the clean generation was found.
	for i := 0; i < corrupted; i++ {
		restore(recovery)
	}
	// The restore itself, stretched by cascades (a secondary failure
	// inside the window voids the partial restore) and by failed restart
	// attempts (deterministic doubling backoff, charged as downtime).
	attempt, cascades := 0, 0
	for {
		if strike, frac := c.inj.CascadeRecovery(); strike && cascades < faultinject.MaxCascadeDepth {
			cascades++
			c.res.Cascades++
			restore(frac * recovery)
			continue
		}
		restore(recovery)
		fail, backoff := c.inj.RestartAttemptFails(attempt)
		if !fail {
			break
		}
		attempt++
		c.res.RestartRetries++
		if backoff > 0 {
			c.coordWait(p, backoff)
		}
	}
	if cascades > 0 {
		c.inj.ObserveCascadeDepth(cascades)
	}
	nested := c.pausedInPhase - pausedBefore
	c.pausedInPhase = pausedBefore + nested + ((c.env.Now() - pauseStart) - nested)
}

// coordWait blocks the coordinator for dur seconds of restart backoff,
// charging the waited spans as recovery downtime and handling injected
// events that interrupt it (a secondary failure during backoff recovers
// recursively, then the remaining backoff elapses).
func (c *cluster) coordWait(p *sim.Proc, dur float64) {
	target := c.env.Now() + dur
	for c.env.Now() < target {
		start := c.env.Now()
		err := p.Wait(target - c.env.Now())
		c.res.Overheads.Recovery += c.env.Now() - start
		if err != nil {
			c.handleEvents(p)
		}
	}
}
