package nodesim

import (
	"math"

	"pckpt/internal/failure"
	"pckpt/internal/oci"
	"pckpt/internal/policy"
	"pckpt/internal/sim"
)

// This file is the coordinator's phase logic: the BSP main loop, the
// compute and BB-write phases, and the proactive handshakes (predictions,
// migrations, p-ckpt episodes, the prioritized phase-1 commit). The
// failure path is in fault.go.

// coordinate is the coordinator process: the BSP main loop.
func (c *cluster) coordinate(p *sim.Proc) {
	for c.progress < c.plat.ComputeSeconds {
		c.computePhase(p)
		if c.progress >= c.plat.ComputeSeconds {
			break
		}
		c.bbPhase(p)
	}
	c.res.WallSeconds = c.env.Now()
	for _, n := range c.nodes {
		c.post(n, command{kind: cmdExit})
	}
}

// computePhase advances all nodes by one checkpoint interval. Progress
// accounting runs through bankCompute: the segment in flight is banked
// either here (normal completion) or by a pausing handler (episode,
// failure) before it mutates progress.
func (c *cluster) computePhase(p *sim.Proc) {
	rate := c.est.Rate(c.env.Now())
	interval := oci.FromJobRate(c.plat.BBWrite, rate, c.sigma)
	target := math.Min(c.progress+interval, c.plat.ComputeSeconds)
	// The banked float sums can stall a hair short of the target while
	// simulated time can no longer resolve the residual; treat anything
	// below a microsecond as done and snap.
	for target-c.progress > 1e-6 {
		c.computing = true
		c.computeStart = c.env.Now()
		c.pausedInPhase = 0
		for _, n := range c.nodes {
			if !n.busy {
				c.post(n, command{kind: cmdCompute, dur: target - c.progress})
			}
		}
		c.awaitPhase(p)
		c.bankCompute()
		if c.st.TakeRescheduled() {
			// A proactive action committed a full checkpoint: re-base the
			// periodic schedule on a fresh interval from here.
			rate = c.est.Rate(c.env.Now())
			interval = oci.FromJobRate(c.plat.BBWrite, rate, c.sigma)
			target = math.Min(c.progress+interval, c.plat.ComputeSeconds)
		}
	}
	c.progress = target
}

// bbPhase stages the periodic checkpoint on every burst buffer. Episodes
// interleaving with the write pause it; the remaining write time resumes
// afterwards (handler pauses are excluded via pausedInPhase). A failure
// voids the write entirely.
func (c *cluster) bbPhase(p *sim.Proc) {
	began := c.env.Now()
	remaining := c.plat.BBWrite
	for remaining > 1e-9 {
		start := c.env.Now()
		c.pausedInPhase = 0
		for _, n := range c.nodes {
			if !n.busy {
				c.post(n, command{kind: cmdBBWrite, dur: remaining})
			}
		}
		ok := c.awaitPhase(p)
		worked := (c.env.Now() - start) - c.pausedInPhase
		c.res.Overheads.Checkpoint += worked
		if !ok {
			return // failure voided the write; partial time stays charged
		}
		remaining -= worked
	}
	c.met.bbWrite.Observe(c.env.Now() - began)
	if c.inj.BBWriteFails() {
		// The write occupied every BB for its full duration and then
		// failed: nothing committed, no drain; the next periodic cycle
		// checkpoints the (re)computed state.
		c.res.BBWriteFailures++
		return
	}
	c.res.Checkpoints++
	c.st.CommitBB(c.progress)
	if c.inj.CorruptCommit() {
		// Silently torn; discovered only when a restart reads it.
		c.st.MarkCorrupt(c.progress)
	}
	captured := c.progress
	gen, depth := c.st.BeginDrain()
	c.met.drainDepth.Set(c.env.Now(), float64(depth))
	c.env.At(c.plat.Drain, func() {
		depth, current := c.st.FinishDrain(gen)
		c.met.drainDepth.Set(c.env.Now(), float64(depth))
		if current {
			if c.inj.PFSWriteFails() {
				// The drain's PFS write failed: the BB copy stands, but
				// the generation never lands on the PFS.
				c.res.PFSWriteFailures++
				return
			}
			_ = c.st.CommitPFS(captured) // statistical tier: no branch on placement advance
		}
	})
}

// handleEvents drains injected events (the coordinator holds the token).
func (c *cluster) handleEvents(p *sim.Proc) {
	for len(c.pending) > 0 {
		ev := c.pending[0]
		c.pending = c.pending[1:]
		switch ev.Kind {
		case failure.KindPrediction, failure.KindSpurious:
			c.onPrediction(p, ev)
		case failure.KindFailure:
			c.onFailure(p, ev)
		}
	}
}

// onPrediction records the prediction and executes whatever proactive
// action the policy's strategy decides.
func (c *cluster) onPrediction(p *sim.Proc, ev failure.Event) {
	if ev.Kind == failure.KindPrediction {
		c.st.RecordPrediction(ev.ID, policy.Prediction{Node: ev.Node, FailAt: ev.FailTime, Lead: ev.Lead})
	}
	switch c.pol.OnPrediction(c.st, ev.Node, ev.Lead, c.plat.Theta) {
	case policy.ActJoinEpisode:
		if n := c.nodes[ev.Node]; !n.busy {
			// Joins phase 1: the node heads straight for the lane.
			c.post(n, command{kind: cmdVulnWrite, deadline: ev.FailTime, ev: ev})
		}
	case policy.ActMigrate:
		c.startMigration(ev)
	case policy.ActStartEpisode:
		c.runEpisode(p, ev)
	}
}

// startMigration begins a background live migration.
func (c *cluster) startMigration(ev failure.Event) {
	m := c.st.StartMigration(ev)
	c.env.At(c.plat.Theta, func() {
		if !c.st.FinishMigration(m) {
			return
		}
		c.res.Migrations++
		c.res.Overheads.Checkpoint += c.cfg.LM.DilationSeconds(c.plat.PerNodeGB)
		if ev.Kind == failure.KindPrediction {
			c.st.MarkAvoided(ev.ID)
			c.res.Avoided++
			c.st.ForgetPrediction(ev.ID)
		}
	})
}

// vulnWrite is the phase-1 prioritized commit: acquire the PFS lane in
// lead-time order, write uncontended, record mitigation. Entry time is
// the post time (posting triggers the node in the same sim instant), so
// the lane-acquire span is the protocol's coordination wait and the full
// span is the per-node commit latency.
func (c *cluster) vulnWrite(p *sim.Proc, n *node, cmd command) {
	posted := c.env.Now()
	for {
		if err := c.lane.Acquire(p, cmd.deadline); err != nil {
			return // episode abandoned while queued
		}
		c.met.laneWait.Observe(c.env.Now() - posted)
		err := p.Wait(c.pricing.VulnerableWrite)
		c.lane.Release()
		if err != nil {
			return // aborted mid-write
		}
		if c.inj.PFSWriteFails() {
			// The prioritized write tore. If the remaining lead time
			// covers another attempt, re-enter the lane queue (same
			// deadline, so the same lead-time priority); otherwise the
			// prediction goes unserved.
			c.res.PFSWriteFailures++
			if c.env.Now()+c.pricing.VulnerableWrite <= cmd.deadline {
				continue
			}
			return
		}
		break
	}
	c.met.commitLat.Observe(c.env.Now() - posted)
	ep := c.st.Episode()
	if ep != nil {
		ep.Committed++
	}
	if cmd.ev.Kind == failure.KindPrediction && c.env.Now() <= cmd.ev.FailTime {
		startProgress := c.progress
		if ep != nil {
			startProgress = ep.StartProgress
		}
		c.st.Mitigate(cmd.ev.ID, startProgress)
	}
}

// runEpisode executes a p-ckpt episode at node granularity: the
// vulnerable nodes race to the priority lane while every other node
// waits; then the healthy nodes bulk-commit.
//
// The coordinator reaches here from inside awaitPhase of a voided outer
// phase — the outer phase's nodes were NOT aborted, so first abort them
// (healthy nodes enter the waiting state, per the protocol).
func (c *cluster) runEpisode(p *sim.Proc, first failure.Event) {
	c.res.ProactiveCkpts++
	// Pause the world: bank the compute in flight, then abort whatever
	// the nodes were doing. Their reports drain into the current
	// outstanding count, which the episode waits out.
	c.bankCompute()
	c.abortBusy()
	ep := c.st.BeginEpisode(c.progress)
	defer c.st.EndEpisode()
	// Abort in-flight migrations; their nodes join phase 1 (Fig. 5).
	epochStart := c.st.Epoch()
	pendingVuln := []failure.Event{first}
	c.st.AbortMigrations(func(ev failure.Event) {
		c.res.AbortedMigrations++
		pendingVuln = append(pendingVuln, ev)
	})
	start := c.env.Now()
	pausedBefore := c.pausedInPhase
	// selfSpan charges the episode's own blocked time, excluding nested
	// handler pauses (a recovery inside the episode charges Recovery).
	charge := func() {
		nested := c.pausedInPhase - pausedBefore
		selfSpan := (c.env.Now() - start) - nested
		c.res.Overheads.Checkpoint += selfSpan
		c.pausedInPhase = pausedBefore + nested + selfSpan
	}
	// Wait for the aborted outer phase to drain before reusing nodes.
	if !c.awaitPhase(p) {
		charge()
		c.met.episodesAbandoned.Inc()
		return // a failure landed even before phase 1 began
	}
	for _, ev := range pendingVuln {
		if c.nodes[ev.Node].busy {
			continue // already queued via a duplicate prediction
		}
		c.post(c.nodes[ev.Node], command{kind: cmdVulnWrite, deadline: ev.FailTime, ev: ev})
	}
	if !c.awaitPhase(p) || ep.Abandoned {
		charge()
		c.met.episodesAbandoned.Inc()
		return
	}
	// Phase 2: pfs-commit broadcast; every remaining node writes.
	healthy := len(c.nodes) - ep.Committed
	if healthy > 0 {
		tr := c.pricing.Phase2Transfer(healthy)
		for _, n := range c.nodes {
			if !n.busy {
				c.post(n, command{kind: cmdBulkWrite, dur: tr.Seconds})
			}
		}
		if !c.awaitPhase(p) {
			charge()
			c.met.episodesAbandoned.Inc()
			return
		}
		c.met.pfsGBs.Observe(tr.GBs)
	}
	charge()
	c.met.episodeDur.Observe(c.env.Now() - start)
	if c.st.Epoch() == epochStart {
		if c.inj.PFSWriteFails() {
			// The phase-2 collective write failed: the episode's full
			// checkpoint never commits (phase-1 mitigations stand —
			// those nodes' states did reach the PFS).
			c.res.PFSWriteFailures++
		} else {
			_ = c.st.CommitPFS(ep.StartProgress) // statistical tier: no branch on placement advance
			if c.inj.CorruptCommit() {
				c.st.MarkCorrupt(ep.StartProgress)
			}
			c.st.MarkRescheduled()
		}
	}
}
