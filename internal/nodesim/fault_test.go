package nodesim

import (
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/platform"
)

// stormySystem fails the small job every ≈3 h: frequent enough that the
// injected-fault costs dominate per-seed recompute luck (with only a
// handful of failures per run, where a failure lands relative to the
// last checkpoint swings recompute more than the injection does).
var stormySystem = failure.System{Name: "stormy", Shape: 0.75, ScaleHours: 3, Nodes: 48}

// TestZeroRateInjectionBitIdentical is the node-granular twin of the
// crmodel hygiene test: rate-0 injection must be bit-identical to
// injection disabled, for every policy, because the fault plan lives on
// its own rng substream and rate-zero hooks never draw.
func TestZeroRateInjectionBitIdentical(t *testing.T) {
	for _, pol := range []Policy{PolicyBase, PolicyPckpt, PolicyHybrid} {
		for seed := uint64(1); seed <= 20; seed++ {
			clean := Config{Policy: pol, Config: platform.Config{App: smallApp, System: busySystem}}
			armed := clean
			armed.Faults = faultinject.Config{RestartRetries: 5, RestartBackoffSeconds: 60}
			a := Simulate(clean, seed)
			b := Simulate(armed, seed)
			if a != b {
				t.Fatalf("%s seed %d: rate-0 injection diverged from disabled:\n%+v\n%+v", pol, seed, a, b)
			}
		}
	}
}

// TestInjectionDegradesDeterministically checks the degraded node tier is
// reproducible, injects, and costs more than the clean run.
func TestInjectionDegradesDeterministically(t *testing.T) {
	faults := faultinject.Config{
		BBWriteFailProb:  0.2,
		PFSWriteFailProb: 0.2,
		CorruptProb:      0.1,
		RestartFailProb:  0.2,
		CascadeProb:      0.1,
	}
	for _, pol := range []Policy{PolicyBase, PolicyPckpt, PolicyHybrid} {
		cfg := Config{Policy: pol, Config: platform.Config{App: smallApp, System: stormySystem, Faults: faults}}
		a := Simulate(cfg, 777)
		if b := Simulate(cfg, 777); a != b {
			t.Fatalf("%s: degraded run not reproducible", pol)
		}
		if a.BBWriteFailures+a.PFSWriteFailures == 0 {
			t.Errorf("%s: no write failures injected at 20%%", pol)
		}
		// A single seed can go either way (a failed write also skips its
		// commit's cost); the mean over seeds must not.
		clean := cfg
		clean.Faults = faultinject.Config{}
		var degradedSum, cleanSum float64
		for seed := uint64(1); seed <= 10; seed++ {
			degradedSum += Simulate(cfg, seed).Total()
			cleanSum += Simulate(clean, seed).Total()
		}
		if degradedSum <= cleanSum {
			t.Errorf("%s: mean degraded overhead %.0f not above clean %.0f", pol, degradedSum/10, cleanSum/10)
		}
	}
}

// TestCorruptionForcesFallback drives corruption hard enough that some
// node-tier restart discovers a torn generation.
func TestCorruptionForcesFallback(t *testing.T) {
	faults := faultinject.Config{CorruptProb: 0.5}
	found := false
	for seed := uint64(1); seed <= 30 && !found; seed++ {
		cfg := Config{Policy: PolicyHybrid, Config: platform.Config{App: smallApp, System: stormySystem, Faults: faults}}
		r := Simulate(cfg, seed)
		found = r.CorruptRestarts > 0
	}
	if !found {
		t.Fatal("no restart ever discovered a corrupt generation at CorruptProb=0.5")
	}
}
