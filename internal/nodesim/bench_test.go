package nodesim

import (
	"testing"

	"pckpt/internal/platform"
	"pckpt/internal/workload"

	"pckpt/internal/failure"
)

// BenchmarkSimulateHybrid is the acceptance benchmark for the engine hot
// path: one full node-granular hybrid run — 48 node processes, the
// coordinator, the priority lane, a day of simulated compute. Allocations
// here are dominated by the DES engine (heap items, wake events, process
// plumbing), not the model.
func BenchmarkSimulateHybrid(b *testing.B) {
	cfg := Config{Policy: PolicyHybrid, Config: platform.Config{App: smallApp, System: busySystem}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simulate(cfg, uint64(i))
	}
}

// BenchmarkSimulateBase is the same run under the base policy: no
// predictions, no episodes — pure BSP compute/checkpoint phases. Isolates
// the phase-handshake cost from the protocol cost.
func BenchmarkSimulateBase(b *testing.B) {
	cfg := Config{Policy: PolicyBase, Config: platform.Config{App: smallApp, System: busySystem}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simulate(cfg, uint64(i))
	}
}

// BenchmarkSimulateStorm runs p-ckpt under a failure storm: dense
// prediction traffic means constant interrupts, aborted phases, and
// cancelled wake entries — the workload that accumulates dead heap entries
// and exercises the engine's lazy-cancellation path.
func BenchmarkSimulateStorm(b *testing.B) {
	storm := failure.System{Name: "storm", Shape: 0.7, ScaleHours: 1.5, Nodes: 32}
	app := workload.App{Name: "stormy", Nodes: 32, TotalCkptGB: 32 * 30, ComputeHours: 3}
	cfg := Config{Policy: PolicyPckpt, Config: platform.Config{App: app, System: storm}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simulate(cfg, uint64(i))
	}
}

// BenchmarkSimulateSweep mirrors how experiments consume this tier: many
// seeds of one configuration back to back, which is where cross-run reuse
// of engine buffers pays off.
func BenchmarkSimulateSweep(b *testing.B) {
	cfg := Config{Policy: PolicyPckpt, Config: platform.Config{App: smallApp, System: busySystem}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 8; s++ {
			Simulate(cfg, uint64(s))
		}
	}
}
