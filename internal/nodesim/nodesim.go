// Package nodesim runs the p-ckpt C/R system at node granularity: every
// compute node is its own simulated process, coordinated bulk-synchronously
// (the paper mandates coordinated checkpoints), with the p-ckpt protocol's
// prioritized PFS lane realised as an actual priority resource that
// vulnerable-node processes acquire in lead-time order.
//
// The paper's own evaluation is application-level (its Sec. VII notes a
// complete implementation of the whole system is out of scope); this
// package is that missing tier for simulation purposes, and a
// cross-validation test checks that its aggregate accounting agrees with
// the application-level model in internal/crmodel on matched
// configurations — the two tiers consume identical failure streams and
// must tell the same story. Both tiers share the model catalogue and
// strategies of internal/policy and the derived quantities of
// internal/platform, so agreement on the platform math holds by
// construction.
//
// Structure: a coordinator process drives phases (compute → BB write →
// async drain; p-ckpt episodes and recoveries on demand) by issuing
// commands to node processes and awaiting their reports; the failure
// injector interrupts only the coordinator. Node processes execute timed
// work and can be aborted mid-phase when a failure voids it.
//
// The package splits along those lines: this file holds the public
// configuration surface and Simulate; engine.go the command/report
// machinery between coordinator and nodes; phases.go the BSP phases and
// proactive handshakes; fault.go the failure path.
package nodesim

import (
	"fmt"

	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/metrics"
	"pckpt/internal/pckpt"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/rng"
	"pckpt/internal/sim"
	"pckpt/internal/stats"
)

// Policy selects the proactive strategy. It is the policy catalogue's ID
// type; the node-granular tier implements the subset below (it exists
// for the paper's contribution, not for re-running every baseline), and
// Validate rejects catalogue entries outside it.
type Policy = policy.ID

const (
	// PolicyBase: periodic checkpointing only (model B).
	PolicyBase Policy = policy.B
	// PolicyPckpt: coordinated prioritized checkpointing (model P1).
	PolicyPckpt Policy = policy.P1
	// PolicyHybrid: LM preferred, p-ckpt fallback (model P2).
	PolicyHybrid Policy = policy.P2
)

// Config parameterises a node-granular run: the policy under test, the
// shared platform configuration, and this tier's observers. Embedding
// platform.Config is what keeps the two tiers comparable: their defaults
// and derived quantities come from the same code by construction.
type Config struct {
	// Policy is the proactive strategy to simulate.
	Policy Policy
	// Config is the tier-independent platform: application, failure
	// system, I/O pricing, migration model, predictor. Its fields are
	// promoted (cfg.App, cfg.System, ...).
	platform.Config
	// Metrics, when non-nil, receives the run's simulation-time metrics
	// (see internal/metrics): episode spans, per-node commit latency,
	// coordination (lane) wait, drain queue depth. Nil costs nothing on
	// the hot path. A Registry is single-run state — do not share one
	// across concurrent Simulate calls.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	c.Config = c.Config.WithDefaults()
	return c
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	if c.Policy.NodeLabel() == "" {
		return fmt.Errorf("nodesim: invalid policy %d", uint8(c.Policy))
	}
	return c.Config.Validate()
}

// Sigma mirrors crmodel.Config.Sigma: Eq. (2)'s σ at the baseline recall
// (accuracy-blind, per the paper). Policies without LM use σ = 0.
func (c Config) Sigma() float64 {
	if !c.Policy.UsesLM() {
		return 0
	}
	return c.Config.SigmaLM()
}

// nodeMetrics is the node-granular tier's instrument handle set; all nil
// (free no-ops) when metering is off. Names are prefixed
// "nodesim.<policy>." to keep the tier's distributions apart from the
// application-level model's "sim.<model>." series.
type nodeMetrics struct {
	bbWrite    *metrics.Histogram // blocked span per completed BB phase
	episodeDur *metrics.Histogram // blocked span per completed episode
	commitLat  *metrics.Histogram // vulnWrite post → PFS commit, per node
	laneWait   *metrics.Histogram // coordination wait for the priority lane
	recoveryDur,
	recomputeLoss *metrics.Histogram
	pfsGBs            *metrics.Histogram // effective aggregate GB/s per phase-2 write
	drainDepth        *metrics.Gauge
	episodesAbandoned *metrics.Counter
}

func newNodeMetrics(r *metrics.Registry, pol Policy) nodeMetrics {
	if r == nil {
		return nodeMetrics{}
	}
	p := "nodesim." + pol.NodeLabel() + "."
	return nodeMetrics{
		bbWrite:           r.Histogram(p + "bb_write_seconds"),
		episodeDur:        r.Histogram(p + "episode_seconds"),
		commitLat:         r.Histogram(p + "episode_commit_latency_seconds"),
		laneWait:          r.Histogram(p + "lane_wait_seconds"),
		recoveryDur:       r.Histogram(p + "recovery_seconds"),
		recomputeLoss:     r.Histogram(p + "recompute_loss_seconds"),
		pfsGBs:            r.Histogram(p + "pfs_effective_gbps"),
		drainDepth:        r.Gauge(p + "drain_queue_depth"),
		episodesAbandoned: r.Counter(p + "episodes_abandoned"),
	}
}

// maxRunEvents is the per-run watchdog ceiling, mirroring crmodel's: far
// above any real run, low enough that a livelock dies fast.
const maxRunEvents = 100_000_000

// Simulate executes one node-granular run. Deterministic in (cfg, seed);
// with the same seed it consumes the identical failure stream as
// crmodel.Simulate on the matching configuration.
func Simulate(cfg Config, seed uint64) stats.RunResult {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	env := sim.NewEnv()
	c := &cluster{
		cfg:   cfg,
		pol:   policy.For(cfg.Policy),
		env:   env,
		est:   failure.NewRateEstimator(cfg.System.JobFailureRate(cfg.App.Nodes)),
		plat:  cfg.Derive(),
		sigma: cfg.Sigma(),
		st:    policy.NewState(),
		lane:  sim.NewResource(env, 1),
	}
	c.allDone = sim.NewEvent(env)
	c.pricing = pckpt.NewEpisodePricing(cfg.IO, c.plat.PerNodeGB)

	c.met = newNodeMetrics(cfg.Metrics, cfg.Policy)
	src := rng.New(seed)
	stream := failure.NewSource(cfg.StreamConfig(cfg.Metrics), src.Split(1))
	// The fault plan draws from its own named substream (key 2; the
	// failure stream owns key 1): rate-0 injection consumes no draws and
	// is bit-identical to injection disabled.
	c.inj = faultinject.New(cfg.Faults, src.Split(faultinject.StreamKey), cfg.Metrics)
	// Fail fast with a diagnostic if a run ever stops making progress;
	// real runs dispatch orders of magnitude fewer events.
	env.SetWatchdog(maxRunEvents, 0)

	for i := 0; i < cfg.App.Nodes; i++ {
		n := &node{id: i, ready: sim.NewEvent(env)}
		c.nodes = append(c.nodes, n)
		n.proc = env.Spawn(fmt.Sprintf("node-%d", i), func(p *sim.Proc) { c.nodeLoop(p, n) })
	}
	c.coord = env.Spawn("coordinator", c.coordinate)
	env.Spawn("injector", func(p *sim.Proc) { c.inject(p, stream) })
	env.RunAll()
	env.Release()
	return c.res
}
