// Package nodesim runs the p-ckpt C/R system at node granularity: every
// compute node is its own simulated process, coordinated bulk-synchronously
// (the paper mandates coordinated checkpoints), with the p-ckpt protocol's
// prioritized PFS lane realised as an actual priority resource that
// vulnerable-node processes acquire in lead-time order.
//
// The paper's own evaluation is application-level (its Sec. VII notes a
// complete implementation of the whole system is out of scope); this
// package is that missing tier for simulation purposes, and a
// cross-validation test checks that its aggregate accounting agrees with
// the application-level model in internal/crmodel on matched
// configurations — the two tiers consume identical failure streams and
// must tell the same story.
//
// Structure: a coordinator process drives phases (compute → BB write →
// async drain; p-ckpt episodes and recoveries on demand) by issuing
// commands to node processes and awaiting their reports; the failure
// injector interrupts only the coordinator. Node processes execute timed
// work and can be aborted mid-phase when a failure voids it.
package nodesim

import (
	"fmt"
	"math"

	"pckpt/internal/failure"
	"pckpt/internal/iomodel"
	"pckpt/internal/lm"
	"pckpt/internal/metrics"
	"pckpt/internal/oci"
	"pckpt/internal/rng"
	"pckpt/internal/sim"
	"pckpt/internal/stats"
	"pckpt/internal/workload"
)

// Policy selects the proactive strategy (a subset of the crmodel
// catalogue: the node-granular tier exists for the paper's contribution,
// not for re-running every baseline).
type Policy uint8

const (
	// PolicyBase: periodic checkpointing only.
	PolicyBase Policy = iota
	// PolicyPckpt: coordinated prioritized checkpointing (model P1).
	PolicyPckpt
	// PolicyHybrid: LM preferred, p-ckpt fallback (model P2).
	PolicyHybrid
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyBase:
		return "base"
	case PolicyPckpt:
		return "p-ckpt"
	case PolicyHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Config parameterises a node-granular run. Zero-valued optional fields
// default exactly like crmodel.Config so the two tiers stay comparable.
type Config struct {
	Policy Policy
	App    workload.App
	System failure.System
	IO     *iomodel.Model
	LM     lm.Config
	Leads  *failure.LeadTimeModel
	// LeadScale stretches lead times (1.0 if zero).
	LeadScale float64
	// FNRate / FPRate configure the predictor (zero selects defaults).
	FNRate, FPRate float64
	// Metrics, when non-nil, receives the run's simulation-time metrics
	// (see internal/metrics): episode spans, per-node commit latency,
	// coordination (lane) wait, drain queue depth. Nil costs nothing on
	// the hot path. A Registry is single-run state — do not share one
	// across concurrent Simulate calls.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.IO == nil {
		c.IO = iomodel.New(iomodel.DefaultSummit())
	}
	if c.LM == (lm.Config{}) {
		c.LM = lm.Default()
	}
	if c.Leads == nil {
		c.Leads = failure.DefaultLeadTimes()
	}
	if c.LeadScale == 0 {
		c.LeadScale = 1
	}
	if c.FNRate == 0 {
		c.FNRate = failure.DefaultFNRate
	}
	if c.FPRate == 0 {
		c.FPRate = failure.DefaultFPRate
	}
	return c
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	c = c.withDefaults()
	if err := c.App.Validate(); err != nil {
		return err
	}
	if err := c.System.Validate(); err != nil {
		return err
	}
	if err := c.LM.Validate(); err != nil {
		return err
	}
	if c.Policy > PolicyHybrid {
		return fmt.Errorf("nodesim: invalid policy %d", c.Policy)
	}
	return nil
}

// sigma mirrors crmodel.Config.Sigma: Eq. (2)'s σ at the baseline recall
// (accuracy-blind, per the paper).
func (c Config) sigma() float64 {
	if c.Policy != PolicyHybrid {
		return 0
	}
	leads := c.Leads
	if c.LeadScale != 1 {
		leads = leads.Scaled(c.LeadScale)
	}
	return leads.Sigma(c.LM.Theta(c.App.PerNodeGB()), failure.DefaultFNRate)
}

// command kinds issued by the coordinator.
type cmdKind uint8

const (
	cmdCompute cmdKind = iota
	cmdBBWrite
	cmdVulnWrite
	cmdBulkWrite
	cmdRecover
	cmdExit
)

type command struct {
	kind cmdKind
	// dur is the work duration for timed commands; vulnWrite derives its
	// own duration and uses deadline for lane priority.
	dur      float64
	deadline float64
	// ev ties a vulnWrite back to the prediction that caused it.
	ev failure.Event
}

// node is one compute node's process-side state.
type node struct {
	id   int
	proc *sim.Proc
	// cmd is the pending command; ready fires when one is posted.
	cmd   command
	ready *sim.Event
	busy  bool
}

// cluster is the shared state, mutated lock-step.
type cluster struct {
	cfg   Config
	env   *sim.Env
	io    *iomodel.Model
	nodes []*node
	coord *sim.Proc
	est   *failure.RateEstimator

	// Platform constants.
	total, perNode, tBB, drainDur, theta, sigmaV float64
	singleWrite, recoveryBB, recoveryPFS         float64

	// Progress and checkpoint placement (BSP: one global progress).
	progress, bbProgress, pfsProgress float64
	drainGen                          int

	// Lane is the prioritized PFS path of phase 1.
	lane *sim.Resource

	// Coordinator bookkeeping.
	outstanding int
	allDone     *sim.Event
	pending     []failure.Event
	failEpoch   int
	// computing/computeStart bank partial compute progress: pausing
	// handlers (episodes, failures) call bankCompute so rollbacks and
	// pauses never miscount computation.
	computing    bool
	computeStart float64
	// pausedInPhase accumulates handler pauses inside the current
	// coordinator phase, so the BB phase can compute its true remaining
	// write time after an episode interleaved with it.
	pausedInPhase float64
	// rescheduled mirrors crmodel: a successful proactive full-PFS commit
	// re-bases the periodic checkpoint schedule (the paper's adaptive
	// checkpointing).
	rescheduled bool

	predicted   map[int64]float64 // failure ID → failAt
	mitigatedAt map[int64]float64
	avoided     map[int64]bool
	migrations  map[int]*migration
	episode     *episodeState

	// drainsInFlight counts scheduled BB→PFS drain completions not yet
	// fired, mirrored into the drain-depth gauge.
	drainsInFlight int

	met nodeMetrics
	res stats.RunResult
}

// nodeMetrics is the node-granular tier's instrument handle set; all nil
// (free no-ops) when metering is off. Names are prefixed
// "nodesim.<policy>." to keep the tier's distributions apart from the
// application-level model's "sim.<model>." series.
type nodeMetrics struct {
	bbWrite    *metrics.Histogram // blocked span per completed BB phase
	episodeDur *metrics.Histogram // blocked span per completed episode
	commitLat  *metrics.Histogram // vulnWrite post → PFS commit, per node
	laneWait   *metrics.Histogram // coordination wait for the priority lane
	recoveryDur,
	recomputeLoss *metrics.Histogram
	pfsGBs            *metrics.Histogram // effective aggregate GB/s per phase-2 write
	drainDepth        *metrics.Gauge
	episodesAbandoned *metrics.Counter
}

func newNodeMetrics(r *metrics.Registry, pol Policy) nodeMetrics {
	if r == nil {
		return nodeMetrics{}
	}
	p := "nodesim." + pol.String() + "."
	return nodeMetrics{
		bbWrite:           r.Histogram(p + "bb_write_seconds"),
		episodeDur:        r.Histogram(p + "episode_seconds"),
		commitLat:         r.Histogram(p + "episode_commit_latency_seconds"),
		laneWait:          r.Histogram(p + "lane_wait_seconds"),
		recoveryDur:       r.Histogram(p + "recovery_seconds"),
		recomputeLoss:     r.Histogram(p + "recompute_loss_seconds"),
		pfsGBs:            r.Histogram(p + "pfs_effective_gbps"),
		drainDepth:        r.Gauge(p + "drain_queue_depth"),
		episodesAbandoned: r.Counter(p + "episodes_abandoned"),
	}
}

type migration struct {
	ev      failure.Event
	aborted bool
}

type episodeState struct {
	startProgress float64
	committed     int
	abandoned     bool
}

// Simulate executes one node-granular run. Deterministic in (cfg, seed);
// with the same seed it consumes the identical failure stream as
// crmodel.Simulate on the matching configuration.
func Simulate(cfg Config, seed uint64) stats.RunResult {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	env := sim.NewEnv()
	c := &cluster{
		cfg:         cfg,
		env:         env,
		io:          cfg.IO,
		est:         failure.NewRateEstimator(cfg.System.JobFailureRate(cfg.App.Nodes)),
		total:       cfg.App.ComputeSeconds(),
		perNode:     cfg.App.PerNodeGB(),
		bbProgress:  -1,
		pfsProgress: -1,
		lane:        sim.NewResource(env, 1),
		predicted:   make(map[int64]float64),
		mitigatedAt: make(map[int64]float64),
		avoided:     make(map[int64]bool),
		migrations:  make(map[int]*migration),
	}
	c.tBB = c.io.BBWriteTime(c.perNode)
	c.drainDur = c.io.DrainTime(cfg.App.Nodes, c.perNode)
	c.theta = cfg.LM.Theta(c.perNode)
	c.sigmaV = cfg.sigma()
	c.singleWrite = c.io.SingleNodePFSWriteTime(c.perNode)
	c.recoveryBB = math.Max(c.io.BBReadTime(c.perNode), c.io.SingleNodePFSReadTime(c.perNode))
	c.recoveryPFS = c.io.PFSReadTime(cfg.App.Nodes, c.perNode)

	c.met = newNodeMetrics(cfg.Metrics, cfg.Policy)
	src := rng.New(seed)
	stream := failure.NewStream(failure.Config{
		System:    cfg.System,
		JobNodes:  cfg.App.Nodes,
		Leads:     cfg.Leads,
		LeadScale: cfg.LeadScale,
		FNRate:    cfg.FNRate,
		FPRate:    cfg.FPRate,
		Metrics:   cfg.Metrics,
	}, src.Split(1))

	for i := 0; i < cfg.App.Nodes; i++ {
		n := &node{id: i, ready: sim.NewEvent(env)}
		c.nodes = append(c.nodes, n)
		n.proc = env.Spawn(fmt.Sprintf("node-%d", i), func(p *sim.Proc) { c.nodeLoop(p, n) })
	}
	c.coord = env.Spawn("coordinator", c.coordinate)
	env.Spawn("injector", func(p *sim.Proc) { c.inject(p, stream) })
	env.RunAll()
	return c.res
}

// nodeLoop executes commands until told to exit.
func (c *cluster) nodeLoop(p *sim.Proc, n *node) {
	for {
		for !n.busy {
			ev := n.ready
			if err := p.WaitEvent(ev); err != nil {
				panic(fmt.Sprintf("nodesim: idle node interrupted: %v", err))
			}
		}
		cmd := n.cmd
		switch cmd.kind {
		case cmdExit:
			n.busy = false
			return
		case cmdVulnWrite:
			c.vulnWrite(p, n, cmd)
		default:
			// Timed work, abortable: an interrupt means the coordinator
			// voided the phase.
			if cmd.dur > 0 {
				p.Wait(cmd.dur)
			}
		}
		c.report(n)
	}
}

// vulnWrite is the phase-1 prioritized commit: acquire the PFS lane in
// lead-time order, write uncontended, record mitigation. Entry time is
// the post time (posting triggers the node in the same sim instant), so
// the lane-acquire span is the protocol's coordination wait and the full
// span is the per-node commit latency.
func (c *cluster) vulnWrite(p *sim.Proc, n *node, cmd command) {
	posted := c.env.Now()
	if err := c.lane.Acquire(p, cmd.deadline); err != nil {
		return // episode abandoned while queued
	}
	c.met.laneWait.Observe(c.env.Now() - posted)
	err := p.Wait(c.singleWrite)
	c.lane.Release()
	if err != nil {
		return // aborted mid-write
	}
	c.met.commitLat.Observe(c.env.Now() - posted)
	if c.episode != nil {
		c.episode.committed++
	}
	if cmd.ev.Kind == failure.KindPrediction && c.env.Now() <= cmd.ev.FailTime {
		startProgress := c.progress
		if c.episode != nil {
			startProgress = c.episode.startProgress
		}
		c.mitigatedAt[cmd.ev.ID] = startProgress
	}
}

// post issues a command to a node and counts it outstanding.
func (c *cluster) post(n *node, cmd command) {
	if n.busy {
		panic(fmt.Sprintf("nodesim: node %d already busy", n.id))
	}
	n.cmd = cmd
	n.busy = true
	c.outstanding++
	ev := n.ready
	n.ready = sim.NewEvent(c.env)
	ev.Trigger()
}

// report marks a node's command finished and wakes the coordinator when
// the phase drains.
func (c *cluster) report(n *node) {
	n.busy = false
	c.outstanding--
	if c.outstanding == 0 && c.allDone != nil {
		c.allDone.Trigger()
		c.allDone = nil
	}
}

// abortBusy interrupts every node still executing a command.
func (c *cluster) abortBusy() {
	for _, n := range c.nodes {
		if n.busy {
			n.proc.Interrupt("phase aborted")
		}
	}
}

// awaitPhase blocks the coordinator until every outstanding command has
// reported, handling injected events as they arrive. It returns false if
// a failure voided the phase (the caller decides what that means).
func (c *cluster) awaitPhase(p *sim.Proc) bool {
	epoch := c.failEpoch
	for c.outstanding > 0 {
		c.allDone = sim.NewEvent(c.env)
		if err := p.WaitEvent(c.allDone); err != nil {
			c.allDone = nil
			c.handleEvents(p)
			if c.failEpoch != epoch {
				return false
			}
		}
	}
	return c.failEpoch == epoch
}

// coordinate is the coordinator process: the BSP main loop.
func (c *cluster) coordinate(p *sim.Proc) {
	for c.progress < c.total {
		c.computePhase(p)
		if c.progress >= c.total {
			break
		}
		c.bbPhase(p)
	}
	c.res.WallSeconds = c.env.Now()
	for _, n := range c.nodes {
		c.post(n, command{kind: cmdExit})
	}
}

// computePhase advances all nodes by one checkpoint interval. Progress
// accounting runs through bankCompute: the segment in flight is banked
// either here (normal completion) or by a pausing handler (episode,
// failure) before it mutates progress.
func (c *cluster) computePhase(p *sim.Proc) {
	rate := c.est.Rate(c.env.Now())
	interval := oci.FromJobRate(c.tBB, rate, c.sigmaV)
	target := math.Min(c.progress+interval, c.total)
	// The banked float sums can stall a hair short of the target while
	// simulated time can no longer resolve the residual; treat anything
	// below a microsecond as done and snap.
	for target-c.progress > 1e-6 {
		c.computing = true
		c.computeStart = c.env.Now()
		c.pausedInPhase = 0
		for _, n := range c.nodes {
			if !n.busy {
				c.post(n, command{kind: cmdCompute, dur: target - c.progress})
			}
		}
		c.awaitPhase(p)
		c.bankCompute()
		if c.rescheduled {
			// A proactive action committed a full checkpoint: re-base the
			// periodic schedule on a fresh interval from here.
			c.rescheduled = false
			rate = c.est.Rate(c.env.Now())
			interval = oci.FromJobRate(c.tBB, rate, c.sigmaV)
			target = math.Min(c.progress+interval, c.total)
		}
	}
	c.progress = target
}

// bbPhase stages the periodic checkpoint on every burst buffer. Episodes
// interleaving with the write pause it; the remaining write time resumes
// afterwards (handler pauses are excluded via pausedInPhase). A failure
// voids the write entirely.
func (c *cluster) bbPhase(p *sim.Proc) {
	began := c.env.Now()
	remaining := c.tBB
	for remaining > 1e-9 {
		start := c.env.Now()
		c.pausedInPhase = 0
		for _, n := range c.nodes {
			if !n.busy {
				c.post(n, command{kind: cmdBBWrite, dur: remaining})
			}
		}
		ok := c.awaitPhase(p)
		worked := (c.env.Now() - start) - c.pausedInPhase
		c.res.Overheads.Checkpoint += worked
		if !ok {
			return // failure voided the write; partial time stays charged
		}
		remaining -= worked
	}
	c.met.bbWrite.Observe(c.env.Now() - began)
	c.res.Checkpoints++
	c.bbProgress = c.progress
	c.drainGen++
	gen := c.drainGen
	captured := c.progress
	c.drainsInFlight++
	c.met.drainDepth.Set(c.env.Now(), float64(c.drainsInFlight))
	c.env.At(c.drainDur, func() {
		c.drainsInFlight--
		c.met.drainDepth.Set(c.env.Now(), float64(c.drainsInFlight))
		if gen == c.drainGen && captured > c.pfsProgress {
			c.pfsProgress = captured
		}
	})
}

// handleEvents drains injected events (the coordinator holds the token).
func (c *cluster) handleEvents(p *sim.Proc) {
	for len(c.pending) > 0 {
		ev := c.pending[0]
		c.pending = c.pending[1:]
		switch ev.Kind {
		case failure.KindPrediction, failure.KindSpurious:
			c.onPrediction(p, ev)
		case failure.KindFailure:
			c.onFailure(p, ev)
		}
	}
}

// onPrediction applies the policy.
func (c *cluster) onPrediction(p *sim.Proc, ev failure.Event) {
	if ev.Kind == failure.KindPrediction {
		c.predicted[ev.ID] = ev.FailTime
	}
	switch c.cfg.Policy {
	case PolicyBase:
		return
	case PolicyHybrid:
		if c.episode == nil && ev.Lead >= c.theta && c.migrations[ev.Node] == nil {
			c.startMigration(ev)
			return
		}
		fallthrough
	case PolicyPckpt:
		if c.episode != nil {
			if n := c.nodes[ev.Node]; !c.episode.abandoned && !n.busy {
				// Joins phase 1: the node heads straight for the lane.
				c.post(n, command{kind: cmdVulnWrite, deadline: ev.FailTime, ev: ev})
			}
			return
		}
		c.runEpisode(p, ev)
	}
}

// startMigration begins a background live migration.
func (c *cluster) startMigration(ev failure.Event) {
	m := &migration{ev: ev}
	c.migrations[ev.Node] = m
	c.env.At(c.theta, func() {
		if m.aborted {
			return
		}
		delete(c.migrations, ev.Node)
		c.res.Migrations++
		c.res.Overheads.Checkpoint += c.cfg.LM.DilationSeconds(c.perNode)
		if ev.Kind == failure.KindPrediction {
			c.avoided[ev.ID] = true
			c.res.Avoided++
			delete(c.predicted, ev.ID)
		}
	})
}

// runEpisode executes a p-ckpt episode at node granularity: the
// vulnerable nodes race to the priority lane while every other node
// waits; then the healthy nodes bulk-commit.
//
// The coordinator reaches here from inside awaitPhase of a voided outer
// phase — the outer phase's nodes were NOT aborted, so first abort them
// (healthy nodes enter the waiting state, per the protocol).
func (c *cluster) runEpisode(p *sim.Proc, first failure.Event) {
	c.res.ProactiveCkpts++
	// Pause the world: bank the compute in flight, then abort whatever
	// the nodes were doing. Their reports drain into the current
	// outstanding count, which the episode waits out.
	c.bankCompute()
	c.abortBusy()
	ep := &episodeState{startProgress: c.progress}
	c.episode = ep
	defer func() { c.episode = nil }()
	// Abort in-flight migrations; their nodes join phase 1 (Fig. 5).
	epochStart := c.failEpoch
	pendingVuln := []failure.Event{first}
	for nodeID, m := range c.migrations {
		m.aborted = true
		delete(c.migrations, nodeID)
		c.res.AbortedMigrations++
		pendingVuln = append(pendingVuln, m.ev)
	}
	start := c.env.Now()
	pausedBefore := c.pausedInPhase
	// selfSpan charges the episode's own blocked time, excluding nested
	// handler pauses (a recovery inside the episode charges Recovery).
	charge := func() {
		nested := c.pausedInPhase - pausedBefore
		selfSpan := (c.env.Now() - start) - nested
		c.res.Overheads.Checkpoint += selfSpan
		c.pausedInPhase = pausedBefore + nested + selfSpan
	}
	// Wait for the aborted outer phase to drain before reusing nodes.
	if !c.awaitPhase(p) {
		charge()
		c.met.episodesAbandoned.Inc()
		return // a failure landed even before phase 1 began
	}
	for _, ev := range pendingVuln {
		if c.nodes[ev.Node].busy {
			continue // already queued via a duplicate prediction
		}
		c.post(c.nodes[ev.Node], command{kind: cmdVulnWrite, deadline: ev.FailTime, ev: ev})
	}
	if !c.awaitPhase(p) || ep.abandoned {
		charge()
		c.met.episodesAbandoned.Inc()
		return
	}
	// Phase 2: pfs-commit broadcast; every remaining node writes.
	healthy := len(c.nodes) - ep.committed
	if healthy > 0 {
		tr := c.io.PFSWriteTransfer(healthy, c.perNode)
		for _, n := range c.nodes {
			if !n.busy {
				c.post(n, command{kind: cmdBulkWrite, dur: tr.Seconds})
			}
		}
		if !c.awaitPhase(p) {
			charge()
			c.met.episodesAbandoned.Inc()
			return
		}
		c.met.pfsGBs.Observe(tr.GBs)
	}
	charge()
	c.met.episodeDur.Observe(c.env.Now() - start)
	if c.failEpoch == epochStart {
		if ep.startProgress > c.pfsProgress {
			c.pfsProgress = ep.startProgress
		}
		c.rescheduled = true
	}
}

// onFailure handles a node failure: void the current phase, roll back,
// run the recovery phase, replace the node (implicitly — the rank keeps
// its process).
func (c *cluster) onFailure(p *sim.Proc, ev failure.Event) {
	c.res.Failures++
	if ev.Lead > 0 {
		c.res.Predicted++
	}
	delete(c.predicted, ev.ID)
	if m := c.migrations[ev.Node]; m != nil {
		m.aborted = true
		delete(c.migrations, ev.Node)
		c.res.AbortedMigrations++
	}
	if c.episode != nil {
		c.episode.abandoned = true
	}
	c.failEpoch++
	c.bankCompute()
	c.abortBusy()

	mitQ, mitigated := c.mitigatedAt[ev.ID]
	if mitigated {
		delete(c.mitigatedAt, ev.ID)
		c.res.Mitigated++
	}
	q := math.Max(c.bbProgress, c.pfsProgress)
	if c.bbProgress > c.pfsProgress {
		// The failed node's BB died with it: if the newest coordinated
		// checkpoint has not finished draining, the consistent restart
		// point is the older PFS-resident one (Fig. 1 case B).
		q = c.pfsProgress
	}
	recovery := c.recoveryBB
	if mitigated && mitQ >= q {
		q = mitQ
		recovery = c.recoveryPFS
	}
	if q < 0 {
		q = 0
	}
	if c.progress > q {
		c.met.recomputeLoss.Observe(c.progress - q)
		c.res.Recompute += c.progress - q
		c.progress = q
	}
	// Drain the aborted phase, then run recovery on every node: the
	// replacement reads the PFS, the healthy ranks their burst buffers —
	// modeled as one phase of the longer duration (they run in parallel).
	pauseStart := c.env.Now()
	pausedBefore := c.pausedInPhase
	for !c.awaitPhase(p) {
	}
	start := c.env.Now()
	post := func() {
		for _, n := range c.nodes {
			if !n.busy {
				c.post(n, command{kind: cmdRecover, dur: recovery})
			}
		}
	}
	post()
	for !c.awaitPhase(p) {
		// Another failure during recovery: the nested handler recovered
		// already; redo this one's restore on whatever is idle.
		start = c.env.Now()
		post()
	}
	c.met.recoveryDur.Observe(c.env.Now() - start)
	c.res.Overheads.Recovery += c.env.Now() - start
	nested := c.pausedInPhase - pausedBefore
	c.pausedInPhase = pausedBefore + nested + ((c.env.Now() - pauseStart) - nested)
}

// bankCompute folds the in-flight compute segment into progress; pausing
// handlers call it before they stop the world.
func (c *cluster) bankCompute() {
	if !c.computing {
		return
	}
	c.progress += c.env.Now() - c.computeStart
	c.computing = false
}

// inject delivers the failure stream to the coordinator.
func (c *cluster) inject(p *sim.Proc, stream *failure.Stream) {
	for {
		ev := stream.Next()
		if !c.coord.Alive() {
			return
		}
		if dt := ev.Time - c.env.Now(); dt > 0 {
			if err := p.Wait(dt); err != nil {
				panic(fmt.Sprintf("nodesim: injector interrupted: %v", err))
			}
		}
		if !c.coord.Alive() {
			return
		}
		switch ev.Kind {
		case failure.KindFailure:
			if c.avoided[ev.ID] {
				delete(c.avoided, ev.ID)
				continue
			}
			c.est.Observe()
		default:
			if c.cfg.Policy == PolicyBase {
				continue
			}
		}
		c.pending = append(c.pending, ev)
		c.coord.Interrupt("failure-stream")
	}
}
