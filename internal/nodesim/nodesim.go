// Package nodesim runs the p-ckpt C/R system at node granularity: every
// compute node is its own simulated process, coordinated bulk-synchronously
// (the paper mandates coordinated checkpoints), with the p-ckpt protocol's
// prioritized PFS lane realised as an actual priority resource that
// vulnerable-node processes acquire in lead-time order.
//
// The paper's own evaluation is application-level (its Sec. VII notes a
// complete implementation of the whole system is out of scope); this
// package is that missing tier for simulation purposes, and a
// cross-validation test checks that its aggregate accounting agrees with
// the application-level model in internal/crmodel on matched
// configurations — the two tiers consume identical failure streams and
// must tell the same story. Both tiers share the model catalogue and
// strategies of internal/policy and the derived quantities of
// internal/platform, so agreement on the platform math holds by
// construction.
//
// Structure: a coordinator process drives phases (compute → BB write →
// async drain; p-ckpt episodes and recoveries on demand) by issuing
// commands to node processes and awaiting their reports; the failure
// injector interrupts only the coordinator. Node processes execute timed
// work and can be aborted mid-phase when a failure voids it.
package nodesim

import (
	"fmt"
	"math"

	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/iomodel"
	"pckpt/internal/metrics"
	"pckpt/internal/oci"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/rng"
	"pckpt/internal/sim"
	"pckpt/internal/stats"
)

// Policy selects the proactive strategy. It is the policy catalogue's ID
// type; the node-granular tier implements the subset below (it exists
// for the paper's contribution, not for re-running every baseline), and
// Validate rejects catalogue entries outside it.
type Policy = policy.ID

const (
	// PolicyBase: periodic checkpointing only (model B).
	PolicyBase Policy = policy.B
	// PolicyPckpt: coordinated prioritized checkpointing (model P1).
	PolicyPckpt Policy = policy.P1
	// PolicyHybrid: LM preferred, p-ckpt fallback (model P2).
	PolicyHybrid Policy = policy.P2
)

// Config parameterises a node-granular run: the policy under test, the
// shared platform configuration, and this tier's observers. Embedding
// platform.Config is what keeps the two tiers comparable: their defaults
// and derived quantities come from the same code by construction.
type Config struct {
	// Policy is the proactive strategy to simulate.
	Policy Policy
	// Config is the tier-independent platform: application, failure
	// system, I/O pricing, migration model, predictor. Its fields are
	// promoted (cfg.App, cfg.System, ...).
	platform.Config
	// Metrics, when non-nil, receives the run's simulation-time metrics
	// (see internal/metrics): episode spans, per-node commit latency,
	// coordination (lane) wait, drain queue depth. Nil costs nothing on
	// the hot path. A Registry is single-run state — do not share one
	// across concurrent Simulate calls.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	c.Config = c.Config.WithDefaults()
	return c
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	if c.Policy.NodeLabel() == "" {
		return fmt.Errorf("nodesim: invalid policy %d", uint8(c.Policy))
	}
	return c.Config.Validate()
}

// Sigma mirrors crmodel.Config.Sigma: Eq. (2)'s σ at the baseline recall
// (accuracy-blind, per the paper). Policies without LM use σ = 0.
func (c Config) Sigma() float64 {
	if !c.Policy.UsesLM() {
		return 0
	}
	return c.Config.SigmaLM()
}

// command kinds issued by the coordinator.
type cmdKind uint8

const (
	cmdCompute cmdKind = iota
	cmdBBWrite
	cmdVulnWrite
	cmdBulkWrite
	cmdRecover
	cmdExit
)

type command struct {
	kind cmdKind
	// dur is the work duration for timed commands; vulnWrite derives its
	// own duration and uses deadline for lane priority.
	dur      float64
	deadline float64
	// ev ties a vulnWrite back to the prediction that caused it.
	ev failure.Event
}

// node is one compute node's process-side state.
type node struct {
	id   int
	proc *sim.Proc
	// cmd is the pending command; ready is pulsed (not latched) when one
	// is posted, so one event serves the node for the whole run.
	cmd   command
	ready *sim.Event
	busy  bool
}

// cluster is the shared state, mutated lock-step.
type cluster struct {
	cfg   Config
	pol   policy.Policy
	env   *sim.Env
	io    *iomodel.Model
	nodes []*node
	coord *sim.Proc
	est   *failure.RateEstimator
	// inj is the degraded-platform fault plan (nil = perfect platform;
	// every hook on nil is a no-op).
	inj *faultinject.Injector

	// plat holds the precomputed platform quantities, derived once by
	// internal/platform; sigma is Eq. (2)'s σ gated on the policy's LM
	// capability (0 for base and p-ckpt).
	plat  platform.Derived
	sigma float64

	// progress is the BSP global progress; checkpoint placement and the
	// rest of the C/R lifecycle (fail epochs, drains, episodes,
	// migrations, ledgers) live in st.
	progress float64
	st       *policy.State

	// Lane is the prioritized PFS path of phase 1.
	lane *sim.Resource

	// Coordinator bookkeeping. allDone is a single pulsed event for every
	// phase drain of the run; the coordinator is its only possible waiter.
	outstanding int
	allDone     *sim.Event
	// phaseAborts counts node commands cut short by a phase abort — the
	// explicit other half of a timed command's Wait, kept as engine-side
	// accounting (deliberately not part of stats.RunResult).
	phaseAborts int
	pending     []failure.Event
	// computing/computeStart bank partial compute progress: pausing
	// handlers (episodes, failures) call bankCompute so rollbacks and
	// pauses never miscount computation.
	computing    bool
	computeStart float64
	// pausedInPhase accumulates handler pauses inside the current
	// coordinator phase, so the BB phase can compute its true remaining
	// write time after an episode interleaved with it.
	pausedInPhase float64

	met nodeMetrics
	res stats.RunResult
}

// nodeMetrics is the node-granular tier's instrument handle set; all nil
// (free no-ops) when metering is off. Names are prefixed
// "nodesim.<policy>." to keep the tier's distributions apart from the
// application-level model's "sim.<model>." series.
type nodeMetrics struct {
	bbWrite    *metrics.Histogram // blocked span per completed BB phase
	episodeDur *metrics.Histogram // blocked span per completed episode
	commitLat  *metrics.Histogram // vulnWrite post → PFS commit, per node
	laneWait   *metrics.Histogram // coordination wait for the priority lane
	recoveryDur,
	recomputeLoss *metrics.Histogram
	pfsGBs            *metrics.Histogram // effective aggregate GB/s per phase-2 write
	drainDepth        *metrics.Gauge
	episodesAbandoned *metrics.Counter
}

func newNodeMetrics(r *metrics.Registry, pol Policy) nodeMetrics {
	if r == nil {
		return nodeMetrics{}
	}
	p := "nodesim." + pol.NodeLabel() + "."
	return nodeMetrics{
		bbWrite:           r.Histogram(p + "bb_write_seconds"),
		episodeDur:        r.Histogram(p + "episode_seconds"),
		commitLat:         r.Histogram(p + "episode_commit_latency_seconds"),
		laneWait:          r.Histogram(p + "lane_wait_seconds"),
		recoveryDur:       r.Histogram(p + "recovery_seconds"),
		recomputeLoss:     r.Histogram(p + "recompute_loss_seconds"),
		pfsGBs:            r.Histogram(p + "pfs_effective_gbps"),
		drainDepth:        r.Gauge(p + "drain_queue_depth"),
		episodesAbandoned: r.Counter(p + "episodes_abandoned"),
	}
}

// maxRunEvents is the per-run watchdog ceiling, mirroring crmodel's: far
// above any real run, low enough that a livelock dies fast.
const maxRunEvents = 100_000_000

// Simulate executes one node-granular run. Deterministic in (cfg, seed);
// with the same seed it consumes the identical failure stream as
// crmodel.Simulate on the matching configuration.
func Simulate(cfg Config, seed uint64) stats.RunResult {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	env := sim.NewEnv()
	c := &cluster{
		cfg:   cfg,
		pol:   policy.For(cfg.Policy),
		env:   env,
		io:    cfg.IO,
		est:   failure.NewRateEstimator(cfg.System.JobFailureRate(cfg.App.Nodes)),
		plat:  cfg.Derive(),
		sigma: cfg.Sigma(),
		st:    policy.NewState(),
		lane:  sim.NewResource(env, 1),
	}
	c.allDone = sim.NewEvent(env)

	c.met = newNodeMetrics(cfg.Metrics, cfg.Policy)
	src := rng.New(seed)
	stream := failure.NewSource(cfg.StreamConfig(cfg.Metrics), src.Split(1))
	// The fault plan draws from its own named substream (key 2; the
	// failure stream owns key 1): rate-0 injection consumes no draws and
	// is bit-identical to injection disabled.
	c.inj = faultinject.New(cfg.Faults, src.Split(faultinject.StreamKey), cfg.Metrics)
	// Fail fast with a diagnostic if a run ever stops making progress;
	// real runs dispatch orders of magnitude fewer events.
	env.SetWatchdog(maxRunEvents, 0)

	for i := 0; i < cfg.App.Nodes; i++ {
		n := &node{id: i, ready: sim.NewEvent(env)}
		c.nodes = append(c.nodes, n)
		n.proc = env.Spawn(fmt.Sprintf("node-%d", i), func(p *sim.Proc) { c.nodeLoop(p, n) })
	}
	c.coord = env.Spawn("coordinator", c.coordinate)
	env.Spawn("injector", func(p *sim.Proc) { c.inject(p, stream) })
	env.RunAll()
	env.Release()
	return c.res
}

// nodeLoop executes commands until told to exit.
func (c *cluster) nodeLoop(p *sim.Proc, n *node) {
	for {
		for !n.busy {
			if err := p.WaitEvent(n.ready); err != nil {
				panic(fmt.Sprintf("nodesim: idle node interrupted: %v", err))
			}
		}
		cmd := n.cmd
		switch cmd.kind {
		case cmdExit:
			n.busy = false
			return
		case cmdVulnWrite:
			c.vulnWrite(p, n, cmd)
		default:
			// Timed work, abortable: an interrupt means the coordinator
			// voided the phase. The abort still reports — the coordinator
			// is waiting for the phase to drain — but takes the explicit
			// branch so an expired wait and a voided one are never
			// conflated.
			if cmd.dur > 0 {
				if err := p.Wait(cmd.dur); err != nil {
					c.phaseAborts++
					c.report(n)
					continue
				}
			}
		}
		c.report(n)
	}
}

// vulnWrite is the phase-1 prioritized commit: acquire the PFS lane in
// lead-time order, write uncontended, record mitigation. Entry time is
// the post time (posting triggers the node in the same sim instant), so
// the lane-acquire span is the protocol's coordination wait and the full
// span is the per-node commit latency.
func (c *cluster) vulnWrite(p *sim.Proc, n *node, cmd command) {
	posted := c.env.Now()
	for {
		if err := c.lane.Acquire(p, cmd.deadline); err != nil {
			return // episode abandoned while queued
		}
		c.met.laneWait.Observe(c.env.Now() - posted)
		err := p.Wait(c.plat.SingleNodePFSWrite)
		c.lane.Release()
		if err != nil {
			return // aborted mid-write
		}
		if c.inj.PFSWriteFails() {
			// The prioritized write tore. If the remaining lead time
			// covers another attempt, re-enter the lane queue (same
			// deadline, so the same lead-time priority); otherwise the
			// prediction goes unserved.
			c.res.PFSWriteFailures++
			if c.env.Now()+c.plat.SingleNodePFSWrite <= cmd.deadline {
				continue
			}
			return
		}
		break
	}
	c.met.commitLat.Observe(c.env.Now() - posted)
	ep := c.st.Episode()
	if ep != nil {
		ep.Committed++
	}
	if cmd.ev.Kind == failure.KindPrediction && c.env.Now() <= cmd.ev.FailTime {
		startProgress := c.progress
		if ep != nil {
			startProgress = ep.StartProgress
		}
		c.st.Mitigate(cmd.ev.ID, startProgress)
	}
}

// post issues a command to a node and counts it outstanding.
func (c *cluster) post(n *node, cmd command) {
	if n.busy {
		panic(fmt.Sprintf("nodesim: node %d already busy", n.id))
	}
	n.cmd = cmd
	n.busy = true
	c.outstanding++
	n.ready.Pulse()
}

// report marks a node's command finished and wakes the coordinator when
// the phase drains.
func (c *cluster) report(n *node) {
	n.busy = false
	c.outstanding--
	// Wake the coordinator only if it is actually parked on the drain
	// event; with zero waiters it is off handling an injected failure and
	// will re-check outstanding itself.
	if c.outstanding == 0 && c.allDone.Waiters() > 0 {
		c.allDone.Pulse()
	}
}

// abortBusy interrupts every node still executing a command.
func (c *cluster) abortBusy() {
	for _, n := range c.nodes {
		if n.busy {
			n.proc.Interrupt("phase aborted")
		}
	}
}

// awaitPhase blocks the coordinator until every outstanding command has
// reported, handling injected events as they arrive. It returns false if
// a failure voided the phase (the caller decides what that means).
func (c *cluster) awaitPhase(p *sim.Proc) bool {
	epoch := c.st.Epoch()
	for c.outstanding > 0 {
		if err := p.WaitEvent(c.allDone); err != nil {
			c.handleEvents(p)
			if c.st.Epoch() != epoch {
				return false
			}
		}
	}
	return c.st.Epoch() == epoch
}

// coordinate is the coordinator process: the BSP main loop.
func (c *cluster) coordinate(p *sim.Proc) {
	for c.progress < c.plat.ComputeSeconds {
		c.computePhase(p)
		if c.progress >= c.plat.ComputeSeconds {
			break
		}
		c.bbPhase(p)
	}
	c.res.WallSeconds = c.env.Now()
	for _, n := range c.nodes {
		c.post(n, command{kind: cmdExit})
	}
}

// computePhase advances all nodes by one checkpoint interval. Progress
// accounting runs through bankCompute: the segment in flight is banked
// either here (normal completion) or by a pausing handler (episode,
// failure) before it mutates progress.
func (c *cluster) computePhase(p *sim.Proc) {
	rate := c.est.Rate(c.env.Now())
	interval := oci.FromJobRate(c.plat.BBWrite, rate, c.sigma)
	target := math.Min(c.progress+interval, c.plat.ComputeSeconds)
	// The banked float sums can stall a hair short of the target while
	// simulated time can no longer resolve the residual; treat anything
	// below a microsecond as done and snap.
	for target-c.progress > 1e-6 {
		c.computing = true
		c.computeStart = c.env.Now()
		c.pausedInPhase = 0
		for _, n := range c.nodes {
			if !n.busy {
				c.post(n, command{kind: cmdCompute, dur: target - c.progress})
			}
		}
		c.awaitPhase(p)
		c.bankCompute()
		if c.st.TakeRescheduled() {
			// A proactive action committed a full checkpoint: re-base the
			// periodic schedule on a fresh interval from here.
			rate = c.est.Rate(c.env.Now())
			interval = oci.FromJobRate(c.plat.BBWrite, rate, c.sigma)
			target = math.Min(c.progress+interval, c.plat.ComputeSeconds)
		}
	}
	c.progress = target
}

// bbPhase stages the periodic checkpoint on every burst buffer. Episodes
// interleaving with the write pause it; the remaining write time resumes
// afterwards (handler pauses are excluded via pausedInPhase). A failure
// voids the write entirely.
func (c *cluster) bbPhase(p *sim.Proc) {
	began := c.env.Now()
	remaining := c.plat.BBWrite
	for remaining > 1e-9 {
		start := c.env.Now()
		c.pausedInPhase = 0
		for _, n := range c.nodes {
			if !n.busy {
				c.post(n, command{kind: cmdBBWrite, dur: remaining})
			}
		}
		ok := c.awaitPhase(p)
		worked := (c.env.Now() - start) - c.pausedInPhase
		c.res.Overheads.Checkpoint += worked
		if !ok {
			return // failure voided the write; partial time stays charged
		}
		remaining -= worked
	}
	c.met.bbWrite.Observe(c.env.Now() - began)
	if c.inj.BBWriteFails() {
		// The write occupied every BB for its full duration and then
		// failed: nothing committed, no drain; the next periodic cycle
		// checkpoints the (re)computed state.
		c.res.BBWriteFailures++
		return
	}
	c.res.Checkpoints++
	c.st.CommitBB(c.progress)
	if c.inj.CorruptCommit() {
		// Silently torn; discovered only when a restart reads it.
		c.st.MarkCorrupt(c.progress)
	}
	captured := c.progress
	gen, depth := c.st.BeginDrain()
	c.met.drainDepth.Set(c.env.Now(), float64(depth))
	c.env.At(c.plat.Drain, func() {
		depth, current := c.st.FinishDrain(gen)
		c.met.drainDepth.Set(c.env.Now(), float64(depth))
		if current {
			if c.inj.PFSWriteFails() {
				// The drain's PFS write failed: the BB copy stands, but
				// the generation never lands on the PFS.
				c.res.PFSWriteFailures++
				return
			}
			c.st.CommitPFS(captured)
		}
	})
}

// handleEvents drains injected events (the coordinator holds the token).
func (c *cluster) handleEvents(p *sim.Proc) {
	for len(c.pending) > 0 {
		ev := c.pending[0]
		c.pending = c.pending[1:]
		switch ev.Kind {
		case failure.KindPrediction, failure.KindSpurious:
			c.onPrediction(p, ev)
		case failure.KindFailure:
			c.onFailure(p, ev)
		}
	}
}

// onPrediction records the prediction and executes whatever proactive
// action the policy's strategy decides.
func (c *cluster) onPrediction(p *sim.Proc, ev failure.Event) {
	if ev.Kind == failure.KindPrediction {
		c.st.RecordPrediction(ev.ID, policy.Prediction{Node: ev.Node, FailAt: ev.FailTime, Lead: ev.Lead})
	}
	switch c.pol.OnPrediction(c.st, ev.Node, ev.Lead, c.plat.Theta) {
	case policy.ActJoinEpisode:
		if n := c.nodes[ev.Node]; !n.busy {
			// Joins phase 1: the node heads straight for the lane.
			c.post(n, command{kind: cmdVulnWrite, deadline: ev.FailTime, ev: ev})
		}
	case policy.ActMigrate:
		c.startMigration(ev)
	case policy.ActStartEpisode:
		c.runEpisode(p, ev)
	}
}

// startMigration begins a background live migration.
func (c *cluster) startMigration(ev failure.Event) {
	m := c.st.StartMigration(ev)
	c.env.At(c.plat.Theta, func() {
		if !c.st.FinishMigration(m) {
			return
		}
		c.res.Migrations++
		c.res.Overheads.Checkpoint += c.cfg.LM.DilationSeconds(c.plat.PerNodeGB)
		if ev.Kind == failure.KindPrediction {
			c.st.MarkAvoided(ev.ID)
			c.res.Avoided++
			c.st.ForgetPrediction(ev.ID)
		}
	})
}

// runEpisode executes a p-ckpt episode at node granularity: the
// vulnerable nodes race to the priority lane while every other node
// waits; then the healthy nodes bulk-commit.
//
// The coordinator reaches here from inside awaitPhase of a voided outer
// phase — the outer phase's nodes were NOT aborted, so first abort them
// (healthy nodes enter the waiting state, per the protocol).
func (c *cluster) runEpisode(p *sim.Proc, first failure.Event) {
	c.res.ProactiveCkpts++
	// Pause the world: bank the compute in flight, then abort whatever
	// the nodes were doing. Their reports drain into the current
	// outstanding count, which the episode waits out.
	c.bankCompute()
	c.abortBusy()
	ep := c.st.BeginEpisode(c.progress)
	defer c.st.EndEpisode()
	// Abort in-flight migrations; their nodes join phase 1 (Fig. 5).
	epochStart := c.st.Epoch()
	pendingVuln := []failure.Event{first}
	c.st.AbortMigrations(func(ev failure.Event) {
		c.res.AbortedMigrations++
		pendingVuln = append(pendingVuln, ev)
	})
	start := c.env.Now()
	pausedBefore := c.pausedInPhase
	// selfSpan charges the episode's own blocked time, excluding nested
	// handler pauses (a recovery inside the episode charges Recovery).
	charge := func() {
		nested := c.pausedInPhase - pausedBefore
		selfSpan := (c.env.Now() - start) - nested
		c.res.Overheads.Checkpoint += selfSpan
		c.pausedInPhase = pausedBefore + nested + selfSpan
	}
	// Wait for the aborted outer phase to drain before reusing nodes.
	if !c.awaitPhase(p) {
		charge()
		c.met.episodesAbandoned.Inc()
		return // a failure landed even before phase 1 began
	}
	for _, ev := range pendingVuln {
		if c.nodes[ev.Node].busy {
			continue // already queued via a duplicate prediction
		}
		c.post(c.nodes[ev.Node], command{kind: cmdVulnWrite, deadline: ev.FailTime, ev: ev})
	}
	if !c.awaitPhase(p) || ep.Abandoned {
		charge()
		c.met.episodesAbandoned.Inc()
		return
	}
	// Phase 2: pfs-commit broadcast; every remaining node writes.
	healthy := len(c.nodes) - ep.Committed
	if healthy > 0 {
		tr := c.io.PFSWriteTransfer(healthy, c.plat.PerNodeGB)
		for _, n := range c.nodes {
			if !n.busy {
				c.post(n, command{kind: cmdBulkWrite, dur: tr.Seconds})
			}
		}
		if !c.awaitPhase(p) {
			charge()
			c.met.episodesAbandoned.Inc()
			return
		}
		c.met.pfsGBs.Observe(tr.GBs)
	}
	charge()
	c.met.episodeDur.Observe(c.env.Now() - start)
	if c.st.Epoch() == epochStart {
		if c.inj.PFSWriteFails() {
			// The phase-2 collective write failed: the episode's full
			// checkpoint never commits (phase-1 mitigations stand —
			// those nodes' states did reach the PFS).
			c.res.PFSWriteFailures++
		} else {
			c.st.CommitPFS(ep.StartProgress)
			if c.inj.CorruptCommit() {
				c.st.MarkCorrupt(ep.StartProgress)
			}
			c.st.MarkRescheduled()
		}
	}
}

// onFailure handles a node failure: void the current phase, roll back,
// run the recovery phase, replace the node (implicitly — the rank keeps
// its process).
func (c *cluster) onFailure(p *sim.Proc, ev failure.Event) {
	c.res.Failures++
	if ev.Lead > 0 {
		c.res.Predicted++
	}
	out := c.pol.OnFailure(c.st, ev)
	if out.MigrationAborted {
		c.res.AbortedMigrations++
	}
	c.bankCompute()
	c.abortBusy()
	if out.Mitigated {
		c.res.Mitigated++
	}

	// The failed node's BB died with it: if the newest coordinated
	// checkpoint has not finished draining, the consistent restart point
	// is the older PFS-resident one (Fig. 1 case B) — so the restart
	// candidate is always the PFS placement, possibly improved by the
	// proactive commit that mitigated this failure. On a degraded
	// platform, candidates discovered corrupt at restore time are
	// discarded in favour of older retained generations.
	q, fromPFS, corrupted := c.st.ResolveRestart(c.st.PFSProgress(), out)
	if corrupted > 0 {
		c.res.CorruptRestarts += corrupted
		c.inj.ObserveCorruptRestarts(corrupted)
	}
	recovery := c.plat.RecoveryBB
	if fromPFS {
		recovery = c.plat.RecoveryPFS
	}
	if c.progress > q {
		c.met.recomputeLoss.Observe(c.progress - q)
		c.res.Recompute += c.progress - q
		c.progress = q
	}
	// Drain the aborted phase, then run recovery on every node: the
	// replacement reads the PFS, the healthy ranks their burst buffers —
	// modeled as one phase of the longer duration (they run in parallel).
	pauseStart := c.env.Now()
	pausedBefore := c.pausedInPhase
	for !c.awaitPhase(p) {
	}
	// restore runs one restore phase of the given duration on every node.
	restore := func(dur float64) {
		start := c.env.Now()
		post := func() {
			for _, n := range c.nodes {
				if !n.busy {
					c.post(n, command{kind: cmdRecover, dur: dur})
				}
			}
		}
		post()
		for !c.awaitPhase(p) {
			// Another failure during recovery: the nested handler
			// recovered already; redo this one's restore on whatever is
			// idle.
			start = c.env.Now()
			post()
		}
		c.met.recoveryDur.Observe(c.env.Now() - start)
		c.res.Overheads.Recovery += c.env.Now() - start
	}
	// Each corrupt candidate cost a torn read of full restore length
	// before the clean generation was found.
	for i := 0; i < corrupted; i++ {
		restore(recovery)
	}
	// The restore itself, stretched by cascades (a secondary failure
	// inside the window voids the partial restore) and by failed restart
	// attempts (deterministic doubling backoff, charged as downtime).
	attempt, cascades := 0, 0
	for {
		if strike, frac := c.inj.CascadeRecovery(); strike && cascades < faultinject.MaxCascadeDepth {
			cascades++
			c.res.Cascades++
			restore(frac * recovery)
			continue
		}
		restore(recovery)
		fail, backoff := c.inj.RestartAttemptFails(attempt)
		if !fail {
			break
		}
		attempt++
		c.res.RestartRetries++
		if backoff > 0 {
			c.coordWait(p, backoff)
		}
	}
	if cascades > 0 {
		c.inj.ObserveCascadeDepth(cascades)
	}
	nested := c.pausedInPhase - pausedBefore
	c.pausedInPhase = pausedBefore + nested + ((c.env.Now() - pauseStart) - nested)
}

// coordWait blocks the coordinator for dur seconds of restart backoff,
// charging the waited spans as recovery downtime and handling injected
// events that interrupt it (a secondary failure during backoff recovers
// recursively, then the remaining backoff elapses).
func (c *cluster) coordWait(p *sim.Proc, dur float64) {
	target := c.env.Now() + dur
	for c.env.Now() < target {
		start := c.env.Now()
		err := p.Wait(target - c.env.Now())
		c.res.Overheads.Recovery += c.env.Now() - start
		if err != nil {
			c.handleEvents(p)
		}
	}
}

// bankCompute folds the in-flight compute segment into progress; pausing
// handlers call it before they stop the world.
func (c *cluster) bankCompute() {
	if !c.computing {
		return
	}
	c.progress += c.env.Now() - c.computeStart
	c.computing = false
}

// inject delivers the failure stream to the coordinator.
func (c *cluster) inject(p *sim.Proc, stream failure.EventSource) {
	for {
		ev := stream.Next()
		if !c.coord.Alive() {
			return
		}
		if dt := ev.Time - c.env.Now(); dt > 0 {
			if err := p.Wait(dt); err != nil {
				panic(fmt.Sprintf("nodesim: injector interrupted: %v", err))
			}
		}
		if !c.coord.Alive() {
			return
		}
		switch ev.Kind {
		case failure.KindFailure:
			if c.st.ConsumeAvoided(ev.ID) {
				continue
			}
			c.est.Observe()
		default:
			if !c.cfg.Policy.UsesPrediction() {
				continue
			}
		}
		c.pending = append(c.pending, ev)
		c.coord.Interrupt("failure-stream")
	}
}
