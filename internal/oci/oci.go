// Package oci computes the Optimal Checkpoint Interval used by the C/R
// models: Young's first-order formula, Eq. (1) of the paper, and the
// σ-extended variant, Eq. (2), that credits live migration with avoiding
// a σ fraction of failures and therefore lengthens the interval. It also
// provides the asynchronous-drain loss-window analysis of the paper's
// Fig. 1 (computation lost when a failure strikes during checkpointing
// to the burst buffer, during the asynchronous bleed-off to the PFS, or
// during post-checkpoint computation).
package oci

import (
	"fmt"
	"math"
)

// Young returns the optimal compute interval between checkpoints per
// Eq. (1): sqrt(2·t_bb / (λ·c)), where tCkptBB is the seconds to write
// one checkpoint to the burst buffers, lambda the per-node failure rate
// (failures/second), and nodes the job's node count.
func Young(tCkptBB, lambda float64, nodes int) float64 {
	return YoungSigma(tCkptBB, lambda, nodes, 0)
}

// YoungSigma returns the σ-extended interval per Eq. (2):
// sqrt(2·t_bb / (λ·c·(1−σ))). σ is the fraction of failures avoided
// proactively by live migration; σ=0 reduces to Eq. (1). The p-ckpt-only
// model keeps σ=0 because p-ckpt mitigates failures by checkpointing (a
// recovery still happens) rather than avoiding them.
func YoungSigma(tCkptBB, lambda float64, nodes int, sigma float64) float64 {
	switch {
	case tCkptBB <= 0:
		panic(fmt.Sprintf("oci: non-positive checkpoint time %g", tCkptBB))
	case lambda <= 0:
		panic(fmt.Sprintf("oci: non-positive failure rate %g", lambda))
	case nodes <= 0:
		panic(fmt.Sprintf("oci: non-positive node count %d", nodes))
	case sigma < 0 || sigma >= 1:
		panic(fmt.Sprintf("oci: sigma %g outside [0, 1)", sigma))
	}
	return math.Sqrt(2 * tCkptBB / (lambda * float64(nodes) * (1 - sigma)))
}

// FromJobRate is YoungSigma expressed with the job-wide rate λ·c directly
// (the quantity the failure package exposes as System.JobFailureRate).
func FromJobRate(tCkptBB, jobRate, sigma float64) float64 {
	if jobRate <= 0 {
		panic(fmt.Sprintf("oci: non-positive job rate %g", jobRate))
	}
	return YoungSigma(tCkptBB, jobRate, 1, sigma)
}

// LossCase classifies where in the checkpoint cycle a failure struck,
// which determines how much computation is lost (the paper's Fig. 1).
type LossCase uint8

const (
	// LossCompute: failure during computation after the previous
	// checkpoint fully committed — lose the compute since then (case A).
	LossCompute LossCase = iota
	// LossAsyncDrain: failure while the previous checkpoint was still
	// bleeding from BB to PFS — the in-flight checkpoint is unusable, so
	// the loss reaches back through the previous interval (case B).
	LossAsyncDrain
	// LossBBWrite: failure during the synchronous BB write — the
	// checkpoint being written is lost along with the interval that
	// produced it (case C).
	LossBBWrite
)

// String implements fmt.Stringer.
func (c LossCase) String() string {
	switch c {
	case LossCompute:
		return "compute"
	case LossAsyncDrain:
		return "async-drain"
	case LossBBWrite:
		return "bb-write"
	default:
		return fmt.Sprintf("LossCase(%d)", uint8(c))
	}
}

// CycleLoss returns the computation lost when a failure strikes offset
// seconds into a checkpoint cycle, following Fig. 1. A cycle is: compute
// for interval seconds, write BB for tBB seconds, while the previous
// checkpoint drains asynchronously for tDrain seconds measured from the
// cycle start. Returned loss is in seconds of computation to redo.
func CycleLoss(offset, interval, tBB, tDrain float64) (float64, LossCase) {
	switch {
	case offset < 0:
		panic("oci: negative offset")
	case interval <= 0:
		panic("oci: non-positive interval")
	case tBB < 0 || tDrain < 0:
		panic("oci: negative checkpoint durations")
	}
	if offset < tDrain {
		// Case B: the drain of the previous checkpoint has not finished;
		// that checkpoint is unusable, so the loss spans the previous
		// interval plus the compute performed this cycle.
		return interval + offset, LossAsyncDrain
	}
	if offset < interval {
		// Case A: plain computation loss since the last good checkpoint.
		return offset, LossCompute
	}
	// Case C: failure during the synchronous BB write; the interval that
	// produced the in-progress checkpoint is lost (the write is void).
	return interval, LossBBWrite
}

// ExpectedWaste returns the first-order expected overhead fraction of a
// periodic checkpoint schedule: checkpoint time per cycle plus expected
// recompute loss, divided by the interval. Used by tests to confirm the
// Young interval minimises waste.
func ExpectedWaste(interval, tBB, jobRate float64) float64 {
	if interval <= 0 {
		panic("oci: non-positive interval")
	}
	// Per unit time: tBB/interval spent checkpointing; a failure occurs
	// at rate jobRate and loses interval/2 on average.
	return tBB/interval + jobRate*interval/2
}
