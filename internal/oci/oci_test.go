package oci

import (
	"math"
	"testing"
	"testing/quick"
)

func TestYoungKnownValue(t *testing.T) {
	// sqrt(2·100 / (1e-8 · 1000)) = sqrt(2e10/1000)… compute directly.
	got := Young(100, 1e-8, 1000)
	want := math.Sqrt(2 * 100 / (1e-8 * 1000))
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Young = %g, want %g", got, want)
	}
}

func TestYoungSigmaZeroMatchesYoung(t *testing.T) {
	f := func(a, b uint16) bool {
		tBB := float64(a%1000) + 1
		lam := (float64(b%1000) + 1) * 1e-9
		return YoungSigma(tBB, lam, 500, 0) == Young(tBB, lam, 500)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestYoungSigmaLengthensInterval(t *testing.T) {
	base := YoungSigma(100, 1e-8, 1000, 0)
	for _, sigma := range []float64{0.1, 0.3, 0.6, 0.9} {
		got := YoungSigma(100, 1e-8, 1000, sigma)
		want := base / math.Sqrt(1-sigma)
		if math.Abs(got-want)/want > 1e-12 {
			t.Errorf("sigma=%.1f: got %g, want %g", sigma, got, want)
		}
		if got <= base {
			t.Errorf("sigma=%.1f did not lengthen the interval", sigma)
		}
	}
}

func TestPaperSigmaElongationRange(t *testing.T) {
	// Observation 6: the reduced failure rate increases the OCI by
	// ≈54–340 %. Those factors correspond to σ ≈ 0.58–0.95 via
	// 1/sqrt(1−σ); verify the formula reproduces the endpoints.
	lo := YoungSigma(100, 1e-8, 100, 0.578) / Young(100, 1e-8, 100)
	hi := YoungSigma(100, 1e-8, 100, 0.948) / Young(100, 1e-8, 100)
	if lo < 1.5 || lo > 1.6 {
		t.Errorf("σ=0.578 elongation %.2f, want ≈1.54", lo)
	}
	if hi < 4.2 || hi > 4.6 {
		t.Errorf("σ=0.948 elongation %.2f, want ≈4.4", hi)
	}
}

func TestFromJobRate(t *testing.T) {
	if a, b := FromJobRate(50, 1e-5, 0.2), YoungSigma(50, 1e-5, 1, 0.2); a != b {
		t.Fatalf("FromJobRate inconsistent: %g vs %g", a, b)
	}
}

func TestYoungPanics(t *testing.T) {
	cases := []func(){
		func() { Young(0, 1e-8, 10) },
		func() { Young(10, 0, 10) },
		func() { Young(10, 1e-8, 0) },
		func() { YoungSigma(10, 1e-8, 10, -0.1) },
		func() { YoungSigma(10, 1e-8, 10, 1) },
		func() { FromJobRate(10, 0, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestYoungMinimisesWaste(t *testing.T) {
	const tBB, jobRate = 135.0, 1e-5
	opt := FromJobRate(tBB, jobRate, 0)
	wOpt := ExpectedWaste(opt, tBB, jobRate)
	for _, f := range []float64{0.25, 0.5, 0.8, 1.25, 2, 4} {
		if w := ExpectedWaste(opt*f, tBB, jobRate); w < wOpt-1e-12 {
			t.Errorf("interval %.0f×%.2f has lower waste %.6f than optimum %.6f", opt, f, w, wOpt)
		}
	}
}

func TestCycleLossCaseA(t *testing.T) {
	loss, c := CycleLoss(500, 1000, 50, 200)
	if c != LossCompute || loss != 500 {
		t.Fatalf("got (%g, %v), want (500, compute)", loss, c)
	}
}

func TestCycleLossCaseB(t *testing.T) {
	loss, c := CycleLoss(100, 1000, 50, 200)
	if c != LossAsyncDrain || loss != 1100 {
		t.Fatalf("got (%g, %v), want (1100, async-drain)", loss, c)
	}
}

func TestCycleLossCaseC(t *testing.T) {
	loss, c := CycleLoss(1020, 1000, 50, 200)
	if c != LossBBWrite || loss != 1000 {
		t.Fatalf("got (%g, %v), want (1000, bb-write)", loss, c)
	}
}

func TestCycleLossBoundaries(t *testing.T) {
	// Exactly at the drain end: counts as plain compute loss.
	if loss, c := CycleLoss(200, 1000, 50, 200); c != LossCompute || loss != 200 {
		t.Fatalf("drain boundary: (%g, %v)", loss, c)
	}
	// Exactly at the interval end: the BB write has begun.
	if _, c := CycleLoss(1000, 1000, 50, 200); c != LossBBWrite {
		t.Fatalf("interval boundary: %v", c)
	}
	// Zero drain time disables case B entirely.
	if _, c := CycleLoss(0, 1000, 50, 0); c != LossCompute {
		t.Fatalf("zero drain: %v", c)
	}
}

func TestCycleLossQuickNonNegative(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		interval := float64(a%10000) + 1
		tBB := float64(b % 500)
		tDrain := float64(c % 2000)
		offset := float64(d) / 65535 * (interval + tBB)
		loss, _ := CycleLoss(offset, interval, tBB, tDrain)
		return loss >= 0 && loss <= 2*interval+tBB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCycleLossPanics(t *testing.T) {
	cases := []func(){
		func() { CycleLoss(-1, 10, 1, 1) },
		func() { CycleLoss(1, 0, 1, 1) },
		func() { CycleLoss(1, 10, -1, 1) },
		func() { CycleLoss(1, 10, 1, -1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestLossCaseString(t *testing.T) {
	if LossCompute.String() != "compute" || LossAsyncDrain.String() != "async-drain" || LossBBWrite.String() != "bb-write" {
		t.Fatal("LossCase strings wrong")
	}
}
