package sim

import (
	"fmt"
	"testing"
)

func TestBarrierTripsTogether(t *testing.T) {
	env := NewEnv()
	b := NewBarrier(env, 3)
	var released []float64
	for i := 0; i < 3; i++ {
		delay := float64(i + 1)
		env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Wait(delay)
			if err := b.Await(p); err != nil {
				t.Errorf("Await: %v", err)
			}
			released = append(released, env.Now())
		})
	}
	env.RunAll()
	if len(released) != 3 {
		t.Fatalf("%d parties released", len(released))
	}
	for _, at := range released {
		if at != 3 {
			t.Fatalf("release at %g, want 3 (last arrival)", at)
		}
	}
	if b.Generation() != 1 || b.Waiting() != 0 {
		t.Fatalf("barrier state gen=%d waiting=%d", b.Generation(), b.Waiting())
	}
}

func TestBarrierReusable(t *testing.T) {
	env := NewEnv()
	b := NewBarrier(env, 2)
	rounds := 0
	for i := 0; i < 2; i++ {
		env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for r := 0; r < 5; r++ {
				p.Wait(1)
				if err := b.Await(p); err != nil {
					t.Errorf("round %d: %v", r, err)
				}
			}
			rounds++
		})
	}
	env.RunAll()
	if rounds != 2 || b.Generation() != 5 {
		t.Fatalf("rounds=%d generation=%d", rounds, b.Generation())
	}
}

func TestBarrierInterruptWithdraws(t *testing.T) {
	env := NewEnv()
	b := NewBarrier(env, 2)
	var interrupted bool
	victim := env.Spawn("victim", func(p *Proc) {
		if err := b.Await(p); err != nil {
			interrupted = true
		}
	})
	env.Spawn("injector", func(p *Proc) {
		p.Wait(1)
		victim.Interrupt("die")
		p.Wait(0) // let the interrupt deliver and the victim withdraw
		if b.Waiting() != 0 {
			t.Errorf("barrier still counts the interrupted party: %d", b.Waiting())
		}
		// A fresh pair must still trip the barrier.
		env.Spawn("a", func(a *Proc) { b.Await(a) })
		env.Spawn("c", func(c *Proc) { c.Wait(1); b.Await(c) })
	})
	env.RunAll()
	if !interrupted {
		t.Fatal("victim not interrupted")
	}
	if b.Generation() != 1 {
		t.Fatalf("barrier generation %d, want 1", b.Generation())
	}
}

func TestBarrierResizeTripsWaiters(t *testing.T) {
	env := NewEnv()
	b := NewBarrier(env, 3)
	done := 0
	for i := 0; i < 2; i++ {
		env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			if err := b.Await(p); err != nil {
				t.Errorf("Await: %v", err)
			}
			done++
		})
	}
	env.At(5, func() { b.Resize(2) }) // a node died: only 2 parties remain
	env.RunAll()
	if done != 2 {
		t.Fatalf("%d parties released after resize, want 2", done)
	}
}

func TestBarrierPanics(t *testing.T) {
	env := NewEnv()
	for i, fn := range []func(){
		func() { NewBarrier(env, 0) },
		func() { NewBarrier(env, 2).Resize(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestResourceCapacity(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 2)
	var order []string
	hold := func(name string, dur float64) {
		env.Spawn(name, func(p *Proc) {
			if err := r.Acquire(p, 0); err != nil {
				t.Errorf("%s: %v", name, err)
			}
			order = append(order, fmt.Sprintf("%s@%g", name, env.Now()))
			p.Wait(dur)
			r.Release()
		})
	}
	hold("a", 10)
	hold("b", 10)
	hold("c", 10) // must wait until t=10
	env.RunAll()
	want := []string{"a@0", "b@0", "c@10"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestResourcePriorityOrdering(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	var served []string
	env.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 0)
		p.Wait(10)
		r.Release()
	})
	// Three waiters queue with different priorities; lower keys first.
	for _, w := range []struct {
		name string
		prio float64
	}{{"low", 30}, {"high", 5}, {"mid", 20}} {
		w := w
		env.SpawnAt(1, w.name, func(p *Proc) {
			if err := r.Acquire(p, w.prio); err != nil {
				t.Errorf("%s: %v", w.name, err)
			}
			served = append(served, w.name)
			p.Wait(1)
			r.Release()
		})
	}
	env.RunAll()
	want := []string{"high", "mid", "low"}
	if len(served) != 3 {
		t.Fatalf("served %v", served)
	}
	for i := range want {
		if served[i] != want[i] {
			t.Fatalf("served %v, want %v", served, want)
		}
	}
}

func TestResourceEqualPriorityFIFO(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	var served []int
	env.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 0)
		p.Wait(5)
		r.Release()
	})
	for i := 0; i < 4; i++ {
		i := i
		env.SpawnAt(float64(i)*0.1+1, fmt.Sprintf("w%d", i), func(p *Proc) {
			r.Acquire(p, 7)
			served = append(served, i)
			r.Release()
		})
	}
	env.RunAll()
	for i := range served {
		if served[i] != i {
			t.Fatalf("FIFO violated: %v", served)
		}
	}
}

func TestResourceInterruptWithdraws(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	env.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 0)
		p.Wait(10)
		r.Release()
	})
	var gotInterrupt bool
	victim := env.SpawnAt(1, "victim", func(p *Proc) {
		if err := r.Acquire(p, 0); err != nil {
			gotInterrupt = true
			return
		}
		r.Release()
	})
	acquired := false
	env.SpawnAt(2, "injector", func(p *Proc) {
		victim.Interrupt("cancel")
		p.Wait(0) // let the interrupt deliver and the victim withdraw
		if r.Queued() != 0 {
			t.Errorf("withdrawn request still queued: %d", r.Queued())
		}
		// The unit must still flow to a later acquirer.
		if err := r.Acquire(p, 0); err != nil {
			t.Errorf("late acquire: %v", err)
		}
		acquired = true
		r.Release()
	})
	env.RunAll()
	if !gotInterrupt || !acquired {
		t.Fatalf("interrupt=%v acquired=%v", gotInterrupt, acquired)
	}
}

func TestResourceReleasePanicsWhenIdle(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.Release()
}

func TestResourceAccounting(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 3)
	env.Spawn("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			if err := r.Acquire(p, 0); err != nil {
				t.Errorf("acquire %d: %v", i, err)
			}
		}
		if r.InUse() != 3 {
			t.Errorf("InUse = %d, want 3", r.InUse())
		}
		r.Release()
		if r.InUse() != 2 {
			t.Errorf("InUse = %d, want 2", r.InUse())
		}
		r.Release()
		r.Release()
	})
	env.RunAll()
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d after drain", r.InUse())
	}
}
