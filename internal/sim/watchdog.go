package sim

import "fmt"

// WatchdogError is the panic value Run/RunAll raise when an armed
// watchdog limit trips: a livelocked process (two processes handing an
// event back and forth at the same timestamp, a Wait(0) loop) would
// otherwise spin the dispatch loop forever with the simulated clock
// frozen. The error names the process whose event tripped the limit —
// in a livelock that is the stuck process (or one of the pair) — which
// is the first thing needed to debug it.
type WatchdogError struct {
	// Reason says which limit tripped ("event limit" or "sim-time limit").
	Reason string
	// Events is how many events had been dispatched when the limit tripped.
	Events uint64
	// Now is the simulated time at the trip.
	Now float64
	// Proc names the process whose event tripped the limit; a scheduler
	// callback (Env.At) reports as "(scheduler callback)".
	Proc string
}

func (w *WatchdogError) Error() string {
	return fmt.Sprintf("sim: watchdog %s exceeded after %d events at t=%gs (next event: %s)",
		w.Reason, w.Events, w.Now, w.Proc)
}

// SetWatchdog arms (or, with two zeros, disarms) the environment's
// watchdog: Run/RunAll panic with a *WatchdogError once more than
// maxEvents events have been dispatched since arming, or once the clock
// reaches an event past maxSimSeconds. Zero disables the respective
// limit. The event counter restarts at every SetWatchdog call, and a
// Release resets both limits — a pooled environment never inherits a
// previous run's watchdog.
//
// The panic propagates out of Run like a process panic, so a harness
// with a per-worker recover reports the stuck run and moves on instead
// of hanging a whole sweep on one livelocked process.
func (e *Env) SetWatchdog(maxEvents uint64, maxSimSeconds float64) {
	e.wdMaxEvents = maxEvents
	e.wdMaxSim = maxSimSeconds
	e.wdEvents = 0
}

// watch enforces the armed limits against the live entry about to
// dispatch. Hot path: one predictable branch per event when disarmed.
func (e *Env) watch(it *item) {
	if e.wdMaxEvents == 0 && e.wdMaxSim == 0 {
		return
	}
	e.wdEvents++
	if e.wdMaxEvents > 0 && e.wdEvents > e.wdMaxEvents {
		panic(&WatchdogError{Reason: "event limit", Events: e.wdEvents, Now: e.now, Proc: e.procName(it)})
	}
	if e.wdMaxSim > 0 && e.now > e.wdMaxSim {
		panic(&WatchdogError{Reason: "sim-time limit", Events: e.wdEvents, Now: e.now, Proc: e.procName(it)})
	}
}

// procName renders the owner of a heap entry for diagnostics.
func (e *Env) procName(it *item) string {
	if it.proc != nil {
		return fmt.Sprintf("%q (proc %d)", it.proc.name, it.proc.id)
	}
	return "(scheduler callback)"
}
