package sim

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSingleProcessWait(t *testing.T) {
	env := NewEnv()
	var at []float64
	env.Spawn("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			if err := p.Wait(2.5); err != nil {
				t.Errorf("unexpected interrupt: %v", err)
			}
			at = append(at, env.Now())
		}
	})
	end := env.RunAll()
	want := []float64{2.5, 5, 7.5}
	if len(at) != 3 {
		t.Fatalf("process woke %d times, want 3", len(at))
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("wake %d at %g, want %g", i, at[i], want[i])
		}
	}
	if end != 7.5 {
		t.Fatalf("final time %g, want 7.5", end)
	}
}

func TestZeroDelayWait(t *testing.T) {
	env := NewEnv()
	ran := false
	env.Spawn("p", func(p *Proc) {
		if err := p.Wait(0); err != nil {
			t.Errorf("Wait(0) err: %v", err)
		}
		ran = true
	})
	env.RunAll()
	if !ran {
		t.Fatal("process never completed")
	}
}

func TestNegativeWaitPanics(t *testing.T) {
	env := NewEnv()
	env.Spawn("p", func(p *Proc) { p.Wait(-1) })
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("negative Wait did not propagate a panic")
		}
	}()
	env.RunAll()
}

func TestTwoProcessesInterleave(t *testing.T) {
	env := NewEnv()
	var log []string
	mk := func(name string, step float64) {
		env.Spawn(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Wait(step)
				log = append(log, fmt.Sprintf("%s@%g", name, env.Now()))
			}
		})
	}
	mk("a", 2) // wakes at 2, 4, 6
	mk("b", 3) // wakes at 3, 6, 9
	env.RunAll()
	got := strings.Join(log, " ")
	// At t=6 both are due; a was scheduled earlier in that round... each
	// reschedules after waking, so order at 6 is a (scheduled at 4) then b
	// (scheduled at 3). b's wake at 6 was scheduled at t=3, a's at t=4,
	// so b fires first by insertion order.
	want := "a@2 b@3 a@4 b@6 a@6 b@9"
	if got != want {
		t.Fatalf("interleaving = %q, want %q", got, want)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() string {
		env := NewEnv()
		var log []string
		for i := 0; i < 5; i++ {
			i := i
			env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 4; j++ {
					p.Wait(1) // all five procs tie at every integer time
					log = append(log, fmt.Sprintf("%d@%g", i, env.Now()))
				}
			})
		}
		env.RunAll()
		return strings.Join(log, " ")
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i, got, first)
		}
	}
}

func TestAtCallback(t *testing.T) {
	env := NewEnv()
	var times []float64
	env.At(5, func() { times = append(times, env.Now()) })
	env.At(1, func() { times = append(times, env.Now()) })
	env.RunAll()
	if len(times) != 2 || times[0] != 1 || times[1] != 5 {
		t.Fatalf("callbacks at %v, want [1 5]", times)
	}
}

func TestRunHorizon(t *testing.T) {
	env := NewEnv()
	fired := 0
	env.At(1, func() { fired++ })
	env.At(10, func() { fired++ })
	end := env.Run(5)
	if fired != 1 {
		t.Fatalf("fired %d callbacks before horizon, want 1", fired)
	}
	// SimPy parity: run(until) leaves the clock AT the horizon, not at the
	// last event before it. The engine used to return 1 here.
	if end != 5 {
		t.Fatalf("clock at %g, want 5 (the horizon)", end)
	}
	env.RunAll()
	if fired != 2 {
		t.Fatalf("fired %d callbacks total, want 2", fired)
	}
}

// TestRunHorizonAnchorsRelativeTime is the regression the old horizon
// semantics would fail: work scheduled relative to "now" after a bounded
// run must be anchored at the horizon. Under the old behaviour the clock
// stuck at the last processed event, so a follow-up At(d) landed early.
func TestRunHorizonAnchorsRelativeTime(t *testing.T) {
	env := NewEnv()
	env.At(1, func() {})
	env.At(100, func() {})
	if end := env.Run(7); end != 7 || env.Now() != 7 {
		t.Fatalf("Run(7) = %g, Now() = %g, want both 7", end, env.Now())
	}
	var at float64
	env.At(2, func() { at = env.Now() })
	env.RunAll()
	if at != 9 {
		t.Fatalf("post-horizon callback fired at %g, want 9 (= 7 + 2)", at)
	}
	// A horizon before the first event still advances the clock.
	env2 := NewEnv()
	env2.At(50, func() {})
	if end := env2.Run(3); end != 3 {
		t.Fatalf("Run(3) with no due events = %g, want 3", end)
	}
	env2.RunAll()
}

func TestInterruptWait(t *testing.T) {
	env := NewEnv()
	var gotReason any
	var wokeAt float64
	victim := env.Spawn("victim", func(p *Proc) {
		err := p.Wait(100)
		wokeAt = env.Now()
		if iv, ok := err.(*Interrupt); ok {
			gotReason = iv.Reason
		}
	})
	env.Spawn("injector", func(p *Proc) {
		p.Wait(3)
		if !victim.Interrupt("node-failure") {
			t.Error("Interrupt reported no delivery")
		}
	})
	env.RunAll()
	if gotReason != "node-failure" {
		t.Fatalf("reason = %v, want node-failure", gotReason)
	}
	if wokeAt != 3 {
		t.Fatalf("victim woke at %g, want 3", wokeAt)
	}
}

func TestInterruptCancelsTimeout(t *testing.T) {
	env := NewEnv()
	wakes := 0
	victim := env.Spawn("victim", func(p *Proc) {
		p.Wait(10)
		wakes++
		p.Wait(50) // second wait must NOT be woken by the stale timeout
		wakes++
	})
	env.Spawn("injector", func(p *Proc) {
		p.Wait(1)
		victim.Interrupt("x")
	})
	end := env.RunAll()
	if wakes != 2 {
		t.Fatalf("victim woke %d times, want 2", wakes)
	}
	// First wait interrupted at 1, second wait runs full 50 → ends at 51.
	// If the cancelled wake at t=10 leaked, the run would end at 10+50=60
	// or the second wait would end early.
	if end != 51 {
		t.Fatalf("end time %g, want 51", end)
	}
}

func TestDoubleInterruptDeliveredOnce(t *testing.T) {
	env := NewEnv()
	interrupts := 0
	victim := env.Spawn("victim", func(p *Proc) {
		if err := p.Wait(100); err != nil {
			interrupts++
		}
		if err := p.Wait(100); err != nil {
			interrupts++
		}
	})
	env.Spawn("injector", func(p *Proc) {
		p.Wait(1)
		victim.Interrupt("first")
		victim.Interrupt("second") // same instant: must be swallowed
	})
	env.RunAll()
	if interrupts != 1 {
		t.Fatalf("%d interrupts delivered, want 1", interrupts)
	}
}

func TestInterruptFinishedProcIsNoop(t *testing.T) {
	env := NewEnv()
	victim := env.Spawn("victim", func(p *Proc) {})
	env.Spawn("late", func(p *Proc) {
		p.Wait(5)
		if victim.Interrupt("too late") {
			t.Error("Interrupt on finished process reported delivery")
		}
	})
	env.RunAll()
}

func TestEventBroadcast(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	var woke []string
	for _, name := range []string{"h1", "h2", "h3"} {
		name := name
		env.Spawn(name, func(p *Proc) {
			if err := p.WaitEvent(ev); err != nil {
				t.Errorf("%s: %v", name, err)
			}
			woke = append(woke, fmt.Sprintf("%s@%g", name, env.Now()))
		})
	}
	env.Spawn("committer", func(p *Proc) {
		p.Wait(7)
		ev.Trigger()
	})
	env.RunAll()
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, w := range woke {
		if !strings.HasSuffix(w, "@7") {
			t.Fatalf("waiter %s woke at wrong time", w)
		}
	}
}

func TestEventAlreadyTriggered(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	var at float64
	env.Spawn("early", func(p *Proc) { ev.Trigger() })
	env.Spawn("late", func(p *Proc) {
		p.Wait(4)
		if err := p.WaitEvent(ev); err != nil {
			t.Errorf("WaitEvent: %v", err)
		}
		at = env.Now()
	})
	env.RunAll()
	if at != 4 {
		t.Fatalf("late waiter resumed at %g, want 4 (immediate)", at)
	}
}

func TestEventReset(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	count := 0
	env.Spawn("waiter", func(p *Proc) {
		for i := 0; i < 2; i++ {
			if err := p.WaitEvent(ev); err != nil {
				t.Errorf("WaitEvent: %v", err)
			}
			count++
			ev.Reset()
		}
	})
	env.Spawn("trigger", func(p *Proc) {
		p.Wait(1)
		ev.Trigger()
		p.Wait(1)
		ev.Trigger()
	})
	env.RunAll()
	if count != 2 {
		t.Fatalf("waiter passed %d times, want 2", count)
	}
}

func TestInterruptWhileWaitingOnEvent(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	var err error
	victim := env.Spawn("victim", func(p *Proc) {
		err = p.WaitEvent(ev)
	})
	env.Spawn("injector", func(p *Proc) {
		p.Wait(2)
		victim.Interrupt("failure")
	})
	env.RunAll()
	iv, ok := err.(*Interrupt)
	if !ok || iv.Reason != "failure" {
		t.Fatalf("err = %v, want interrupt(failure)", err)
	}
	if ev.Waiters() != 0 {
		t.Fatalf("event still holds %d waiters after interrupt", ev.Waiters())
	}
}

func TestJoin(t *testing.T) {
	env := NewEnv()
	var joinedAt float64
	worker := env.Spawn("worker", func(p *Proc) { p.Wait(9) })
	env.Spawn("joiner", func(p *Proc) {
		if err := p.Join(worker); err != nil {
			t.Errorf("Join: %v", err)
		}
		joinedAt = env.Now()
	})
	env.RunAll()
	if joinedAt != 9 {
		t.Fatalf("joined at %g, want 9", joinedAt)
	}
}

func TestJoinFinished(t *testing.T) {
	env := NewEnv()
	worker := env.Spawn("worker", func(p *Proc) {})
	ok := false
	env.Spawn("joiner", func(p *Proc) {
		p.Wait(3)
		if err := p.Join(worker); err != nil {
			t.Errorf("Join: %v", err)
		}
		ok = env.Now() == 3
	})
	env.RunAll()
	if !ok {
		t.Fatal("Join on finished process did not return immediately")
	}
}

func TestSpawnFromProcess(t *testing.T) {
	env := NewEnv()
	var childAt float64
	env.Spawn("parent", func(p *Proc) {
		p.Wait(2)
		child := env.Spawn("child", func(c *Proc) {
			c.Wait(3)
			childAt = env.Now()
		})
		p.Join(child)
		if env.Now() != 5 {
			t.Errorf("parent resumed at %g, want 5", env.Now())
		}
	})
	env.RunAll()
	if childAt != 5 {
		t.Fatalf("child finished at %g, want 5", childAt)
	}
}

func TestSpawnAt(t *testing.T) {
	env := NewEnv()
	var startedAt float64
	env.SpawnAt(11, "late", func(p *Proc) { startedAt = env.Now() })
	env.RunAll()
	if startedAt != 11 {
		t.Fatalf("process started at %g, want 11", startedAt)
	}
}

func TestProcCountTracksLiveProcesses(t *testing.T) {
	env := NewEnv()
	env.Spawn("a", func(p *Proc) { p.Wait(10) })
	env.Spawn("b", func(p *Proc) { p.Wait(5) })
	env.Run(6)
	if env.ProcCount() != 1 {
		t.Fatalf("ProcCount = %d at t=6, want 1", env.ProcCount())
	}
	env.RunAll()
	if env.ProcCount() != 0 {
		t.Fatalf("ProcCount = %d after RunAll, want 0", env.ProcCount())
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	env := NewEnv()
	env.Spawn("bad", func(p *Proc) {
		p.Wait(1)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("process panic not propagated")
		}
		if !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("panic value %v does not mention boom", r)
		}
	}()
	env.RunAll()
}

func TestAliveAndDone(t *testing.T) {
	env := NewEnv()
	w := env.Spawn("w", func(p *Proc) { p.Wait(4) })
	env.At(2, func() {
		if !w.Alive() {
			t.Error("process reported dead at t=2")
		}
	})
	env.At(5, func() {
		if w.Alive() {
			t.Error("process reported alive at t=5")
		}
		if !w.Done().Triggered() {
			t.Error("done event not triggered")
		}
	})
	env.RunAll()
}

// TestManyProcessesQuick spawns a random batch of processes with random
// wait ladders and checks the clock finishes at the maximum total.
func TestManyProcessesQuick(t *testing.T) {
	f := func(steps []uint8) bool {
		if len(steps) == 0 {
			return true
		}
		if len(steps) > 32 {
			steps = steps[:32]
		}
		env := NewEnv()
		var max float64
		for i, s := range steps {
			total := float64(s%16) + 1
			if total > max {
				max = total
			}
			env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Wait(total)
			})
		}
		return env.RunAll() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestWakeOrderMatchesScheduleOrder verifies the documented tie-breaking:
// events at identical times fire in the order they were scheduled.
func TestWakeOrderMatchesScheduleOrder(t *testing.T) {
	env := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		env.At(5, func() { order = append(order, i) })
	}
	env.RunAll()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("tie-broken order %v is not schedule order", order)
	}
}

func TestWaitOutsideProcessPanics(t *testing.T) {
	env := NewEnv()
	p := env.Spawn("p", func(p *Proc) { p.Wait(1) })
	defer func() {
		if recover() == nil {
			t.Fatal("Wait from outside the process goroutine did not panic")
		}
	}()
	p.Wait(1) // called from the test goroutine: must panic
}
