package sim

import "sync"

// A slot is a reusable process carrier: one goroutine plus the pair of
// unbuffered channels the lock-step handshake runs over. Spawning a
// process costs a goroutine launch and two channel allocations; with
// slots, a finished process's carrier is parked and the next spawn —
// in this environment or any other — reuses it, so sweeps that simulate
// thousands of short-lived processes recycle a small working set.
//
// Only the carrier is pooled. Proc structs are NOT reused: callers hold
// *Proc handles (Alive, Done, Interrupt) with no defined lifetime, and a
// recycled struct would let a stale handle observe an unrelated process.
type slot struct {
	// start hands the next process to the parked goroutine; closing it
	// retires the goroutine when the pool is full.
	start chan *Proc
	// resume is the wake channel the process parks on; it becomes the
	// Proc's resume channel for the duration of its run.
	resume chan *Interrupt
}

// slotPool is process-global: slots hold no environment state, and runs
// executed back to back (or in parallel workers) share one working set.
var slotPool struct {
	sync.Mutex
	free []*slot
}

// maxIdleSlots bounds the parked-goroutine population. Beyond it, a
// retiring slot's goroutine exits instead of parking; the bound therefore
// caps idle memory without limiting how many processes may be live at
// once (live processes each occupy their own slot regardless).
const maxIdleSlots = 1024

// getSlot returns a parked slot or builds a fresh one.
func getSlot() *slot {
	slotPool.Lock()
	if n := len(slotPool.free); n > 0 {
		s := slotPool.free[n-1]
		slotPool.free[n-1] = nil
		slotPool.free = slotPool.free[:n-1]
		slotPool.Unlock()
		return s
	}
	slotPool.Unlock()
	s := &slot{start: make(chan *Proc), resume: make(chan *Interrupt)}
	go s.loop()
	return s
}

// putSlot parks a slot for reuse, or retires it when the pool is full.
func putSlot(s *slot) {
	slotPool.Lock()
	if len(slotPool.free) >= maxIdleSlots {
		slotPool.Unlock()
		close(s.start)
		return
	}
	slotPool.free = append(slotPool.free, s)
	slotPool.Unlock()
}

// loop is the carrier goroutine: run one process to completion, park the
// slot, wait for the next. A send on start can only come from a getSlot
// caller after putSlot has published the slot, so the handoff is ordered
// even though the goroutine re-enters the receive asynchronously.
func (s *slot) loop() {
	for p := range s.start {
		p.run()
		putSlot(s)
	}
}
