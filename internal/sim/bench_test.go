package sim

import (
	"fmt"
	"testing"
)

// BenchmarkWaitHotPath is the engine's single most important number: one
// process waiting in a tight ladder, i.e. one heap item + two channel
// handoffs per simulated event. events/sec here bounds every tier's
// throughput.
func BenchmarkWaitHotPath(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	env.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if err := p.Wait(1); err != nil {
				b.Errorf("unexpected interrupt: %v", err)
				return
			}
		}
	})
	b.ResetTimer()
	env.RunAll()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkTriggerPingPong measures the broadcast-event path: a waiter and
// a trigger process handing an event back and forth (WaitEvent + Trigger +
// Reset per round), the shape of nodesim's post/ready handshake.
func BenchmarkTriggerPingPong(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	ev := NewEvent(env)
	env.Spawn("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if err := p.WaitEvent(ev); err != nil {
				b.Errorf("unexpected interrupt: %v", err)
				return
			}
			ev.Reset()
		}
	})
	env.Spawn("trigger", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(1)
			ev.Trigger()
		}
	})
	b.ResetTimer()
	env.RunAll()
}

// BenchmarkInterruptHeavy measures the interrupt delivery path, which both
// cancels a pending wake (leaving a dead heap entry behind) and schedules
// a fresh one — the dense-prediction-stream shape that makes models P1/P2
// engine-bound.
func BenchmarkInterruptHeavy(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	victim := env.Spawn("victim", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(1e12) // always cut short by the injector
		}
	})
	env.Spawn("injector", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(1)
			victim.Interrupt("bench")
		}
	})
	b.ResetTimer()
	env.RunAll()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "interrupts/sec")
}

// BenchmarkSpawnChurn measures process startup/teardown: b.N short-lived
// processes spawned back to back, the per-run cost every tier pays for its
// node/coordinator/injector population.
func BenchmarkSpawnChurn(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	done := 0
	env.Spawn("spawner", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			child := env.Spawn("child", func(c *Proc) {
				c.Wait(1)
				done++
			})
			if err := p.Join(child); err != nil {
				b.Errorf("join: %v", err)
				return
			}
		}
	})
	b.ResetTimer()
	env.RunAll()
	if done != b.N {
		b.Fatalf("only %d of %d children ran", done, b.N)
	}
}

// BenchmarkRunLifecycle measures a complete small run end to end — env
// construction, a handful of processes exchanging events, teardown — the
// unit of work a parameter sweep repeats thousands of times.
func BenchmarkRunLifecycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := NewEnv()
		for w := 0; w < 8; w++ {
			env.Spawn(fmt.Sprintf("w%d", w), func(p *Proc) {
				for k := 0; k < 32; k++ {
					p.Wait(1)
				}
			})
		}
		env.RunAll()
		releaseForBench(env)
	}
}

// releaseForBench hands the environment back for reuse. It is a seam: the
// baseline harness ran it as a no-op, the pooled engine releases buffers.
func releaseForBench(e *Env) { e.Release() }
