// Package sim is a process-based discrete-event simulation engine with the
// semantics the paper's SimPy framework relies on: processes that wait for
// simulated time to pass, broadcast condition events, and asynchronous
// interruption of a blocked process (used to inject failures into a
// computing application and to abort an in-flight live migration when a
// shorter-lead prediction arrives).
//
// Each process runs on its own goroutine, but execution is strictly
// lock-step: exactly one goroutine — either the scheduler or the single
// currently-running process — is active at any instant, handing control
// back and forth over unbuffered channels. Simulation state therefore
// needs no locking, and runs are deterministic: simultaneous events fire
// in schedule order (the event heap breaks time ties by sequence number).
//
// Time is a float64 in seconds. There is no wall-clock component anywhere;
// a run is a pure function of its inputs.
package sim

import (
	"fmt"

	"pckpt/internal/queue"
)

// Env is a simulation environment: a virtual clock plus the pending-event
// heap. Create one with NewEnv, spawn processes, then call Run.
type Env struct {
	now     float64
	events  queue.PQ[*item]
	current *Proc
	// sched is the handshake channel processes use to hand control back
	// to the scheduler after parking or terminating.
	sched chan struct{}
	// failure carries a panic value out of a process goroutine so the
	// scheduler can re-panic with it on the caller's stack.
	failure  any
	failed   bool
	nprocs   int
	nstarted uint64
}

type itemKind uint8

const (
	itemStart itemKind = iota // start a freshly spawned process
	itemWake                  // resume a parked process
	itemCall                  // run a callback while holding the token
)

// item is one heap entry. Cancelled items stay in the heap and are skipped
// when popped; this makes timeout cancellation O(1).
type item struct {
	kind      itemKind
	at        float64 // absolute fire time, mirrored from the heap key
	proc      *Proc
	fn        func()
	cancelled bool
	interrupt *Interrupt // non-nil when the wake is an interrupt delivery
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{sched: make(chan struct{})}
}

// Now returns the current simulation time in seconds.
func (e *Env) Now() float64 { return e.now }

// ProcCount returns the number of live (spawned, not yet finished)
// processes. Useful for leak assertions in tests.
func (e *Env) ProcCount() int { return e.nprocs }

// schedule pushes an item at the given absolute time.
func (e *Env) schedule(at float64, it *item) *item {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (at=%g, now=%g)", at, e.now))
	}
	it.at = at
	e.events.Push(at, it)
	return it
}

// At runs fn at the given delay from now. fn executes while holding the
// scheduler token, so it may inspect and mutate simulation state and may
// spawn processes or trigger events, but must not block.
func (e *Env) At(delay float64, fn func()) {
	e.schedule(e.now+delay, &item{kind: itemCall, fn: fn})
}

// Spawn creates a process executing fn and schedules it to start at the
// current simulation time (after already-scheduled events at this time).
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(0, name, fn)
}

// SpawnAt creates a process that starts after the given delay.
func (e *Env) SpawnAt(delay float64, name string, fn func(p *Proc)) *Proc {
	e.nstarted++
	p := &Proc{
		env:    e,
		name:   name,
		id:     e.nstarted,
		fn:     fn,
		resume: make(chan *Interrupt),
		done:   NewEvent(e),
	}
	e.nprocs++
	e.schedule(e.now+delay, &item{kind: itemStart, proc: p})
	return p
}

// Run processes events until the heap is empty or the clock would pass
// until (use RunAll for no horizon). It returns the final simulation time.
// A panic inside any process is re-raised here.
func (e *Env) Run(until float64) float64 {
	for e.events.Len() > 0 {
		at, it, _ := e.events.Peek()
		if at > until {
			break
		}
		e.events.Pop()
		if it.cancelled {
			continue
		}
		e.now = at
		e.dispatch(it)
		if e.failed {
			panic(e.failure)
		}
	}
	return e.now
}

// RunAll processes events until none remain.
func (e *Env) RunAll() float64 {
	for e.events.Len() > 0 {
		_, it := e.events.Pop()
		if it.cancelled {
			continue
		}
		e.now = it.at
		e.dispatch(it)
		if e.failed {
			panic(e.failure)
		}
	}
	return e.now
}

func (e *Env) dispatch(it *item) {
	switch it.kind {
	case itemCall:
		it.fn()
	case itemStart:
		p := it.proc
		e.current = p
		go p.run()
		<-e.sched
		e.current = nil
	case itemWake:
		p := it.proc
		e.current = p
		p.resume <- it.interrupt
		<-e.sched
		e.current = nil
	}
}

// Current returns the process currently holding the execution token, or
// nil when the scheduler itself (an At callback) is running.
func (e *Env) Current() *Proc { return e.current }
