// Package sim is a process-based discrete-event simulation engine with the
// semantics the paper's SimPy framework relies on: processes that wait for
// simulated time to pass, broadcast condition events, and asynchronous
// interruption of a blocked process (used to inject failures into a
// computing application and to abort an in-flight live migration when a
// shorter-lead prediction arrives).
//
// Each process runs on its own goroutine, but execution is strictly
// lock-step: exactly one goroutine — either the scheduler or the single
// currently-running process — is active at any instant, handing control
// back and forth over unbuffered channels. Simulation state therefore
// needs no locking, and runs are deterministic: simultaneous events fire
// in schedule order (the event heap breaks time ties by sequence number).
//
// Time is a float64 in seconds. There is no wall-clock component anywhere;
// a run is a pure function of its inputs.
//
// The engine recycles its hot-path allocations: heap entries come from a
// per-environment free list, process goroutines and their channels come
// from a process-global slot pool (see slot.go), and whole environments
// can be handed back with Release for the next NewEnv to reuse. See
// DESIGN.md ("Engine performance") for the safety arguments.
package sim

import (
	"fmt"
	"sync"

	"pckpt/internal/queue"
)

// Env is a simulation environment: a virtual clock plus the pending-event
// heap. Create one with NewEnv, spawn processes, then call Run.
type Env struct {
	now     float64
	events  queue.PQ[*item]
	current *Proc
	// sched is the handshake channel processes use to hand control back
	// to the scheduler after parking or terminating.
	sched chan struct{}
	// failure carries a panic value out of a process goroutine so the
	// scheduler can re-panic with it on the caller's stack.
	failure  any
	failed   bool
	nprocs   int
	nstarted uint64
	// free is the item free list: every entry popped from the heap is
	// recycled here instead of left to the GC, so a steady-state run
	// reuses a small working set of items no matter how many events fire.
	free []*item
	// ncancelled counts cancelled entries still sitting in the heap.
	// Cancellation is lazy (O(1)); when dead entries dominate, the heap is
	// compacted in one pass so storms of retracted timeouts cannot grow
	// the heap without bound.
	ncancelled int
	// Watchdog limits (see SetWatchdog): wdMaxEvents / wdMaxSim of zero
	// disable the respective check; wdEvents counts dispatched events
	// since the watchdog was armed.
	wdMaxEvents uint64
	wdMaxSim    float64
	wdEvents    uint64
}

type itemKind uint8

const (
	itemStart itemKind = iota // start a freshly spawned process
	itemWake                  // resume a parked process
	itemCall                  // run a callback while holding the token
)

// item is one heap entry. Cancelled items stay in the heap and are skipped
// when popped; this makes timeout cancellation O(1).
type item struct {
	kind      itemKind
	at        float64 // absolute fire time, mirrored from the heap key
	proc      *Proc
	fn        func()
	cancelled bool
	interrupt *Interrupt // non-nil when the wake is an interrupt delivery
}

// envPool recycles released environments — principally their event-heap
// backing array and item free list — across runs of a sweep.
var envPool = sync.Pool{New: func() any { return new(Env) }}

// NewEnv returns an empty environment with the clock at zero. It may reuse
// the buffers of a previously Released environment.
func NewEnv() *Env {
	e := envPool.Get().(*Env)
	if e.sched == nil {
		e.sched = make(chan struct{})
	}
	return e
}

// Release hands the environment back for reuse by a later NewEnv. Call it
// only when the run is over: if processes are still live, events are still
// pending, or a process panicked, Release is a no-op and the environment
// is simply dropped — a poisoned or half-run environment never re-enters
// circulation. Using an environment after releasing it is a bug.
func (e *Env) Release() {
	if e.nprocs != 0 || e.events.Len() != 0 || e.failed || e.current != nil {
		return
	}
	e.now = 0
	e.nstarted = 0
	e.ncancelled = 0
	e.failure = nil
	e.wdMaxEvents = 0
	e.wdMaxSim = 0
	e.wdEvents = 0
	envPool.Put(e)
}

// newItem takes an entry off the free list, or allocates one.
func (e *Env) newItem() *item {
	if n := len(e.free); n > 0 {
		it := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return it
	}
	return &item{}
}

// freeItem zeroes an entry and returns it to the free list. The caller
// must guarantee no reference to it survives (see DESIGN.md for why the
// engine's reference discipline makes every call site safe).
func (e *Env) freeItem(it *item) {
	*it = item{}
	e.free = append(e.free, it)
}

// Now returns the current simulation time in seconds.
func (e *Env) Now() float64 { return e.now }

// ProcCount returns the number of live (spawned, not yet finished)
// processes. Useful for leak assertions in tests.
func (e *Env) ProcCount() int { return e.nprocs }

// schedule pushes an item at the given absolute time.
func (e *Env) schedule(at float64, it *item) *item {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (at=%g, now=%g)", at, e.now))
	}
	it.at = at
	e.events.Push(at, it)
	return it
}

// cancel lazily invalidates a scheduled entry, compacting the heap when
// dead entries reach both an absolute floor and half the heap.
func (e *Env) cancel(it *item) {
	it.cancelled = true
	e.ncancelled++
	if e.ncancelled >= 64 && e.ncancelled*2 >= e.events.Len() {
		e.compact()
	}
}

// compact removes every cancelled entry in one pass. Pop order is a pure
// function of each entry's (key, seq) pair, which compaction preserves, so
// the schedule the survivors fire in is unchanged.
func (e *Env) compact() {
	e.events.RemoveFunc(func(it *item) bool {
		if it.cancelled {
			e.freeItem(it)
			return true
		}
		return false
	})
	e.ncancelled = 0
}

// At runs fn at the given delay from now. fn executes while holding the
// scheduler token, so it may inspect and mutate simulation state and may
// spawn processes or trigger events, but must not block.
func (e *Env) At(delay float64, fn func()) {
	it := e.newItem()
	it.kind = itemCall
	it.fn = fn
	e.schedule(e.now+delay, it)
}

// Spawn creates a process executing fn and schedules it to start at the
// current simulation time (after already-scheduled events at this time).
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(0, name, fn)
}

// SpawnAt creates a process that starts after the given delay.
func (e *Env) SpawnAt(delay float64, name string, fn func(p *Proc)) *Proc {
	e.nstarted++
	p := &Proc{
		env:  e,
		name: name,
		id:   e.nstarted,
		fn:   fn,
	}
	e.nprocs++
	it := e.newItem()
	it.kind = itemStart
	it.proc = p
	e.schedule(e.now+delay, it)
	return p
}

// Run processes events until the heap is empty or the clock would pass
// until (use RunAll for no horizon). When events remain beyond the
// horizon, the clock still advances to until — mirroring SimPy's
// run(until=...), whose horizon is itself an event — so Now() afterwards
// is the horizon, not the last event processed before it. It returns the
// final simulation time. A panic inside any process is re-raised here.
func (e *Env) Run(until float64) float64 {
	for e.events.Len() > 0 {
		at, it, _ := e.events.Peek()
		if at > until {
			e.now = until
			return e.now
		}
		e.events.Pop()
		if it.cancelled {
			e.ncancelled--
			e.freeItem(it)
			continue
		}
		e.now = at
		e.watch(it)
		e.dispatch(it)
		if e.failed {
			panic(e.failure)
		}
	}
	return e.now
}

// RunAll processes events until none remain.
func (e *Env) RunAll() float64 {
	for e.events.Len() > 0 {
		_, it := e.events.Pop()
		if it.cancelled {
			e.ncancelled--
			e.freeItem(it)
			continue
		}
		e.now = it.at
		e.watch(it)
		e.dispatch(it)
		if e.failed {
			panic(e.failure)
		}
	}
	return e.now
}

// dispatch fires one live entry. The entry is recycled up front — after
// copying its payload — which is safe because no reference to a dispatched
// item survives: a wake being delivered is the only item a process can
// still point to (pendingWake), and park clears that pointer before the
// process runs any further code.
func (e *Env) dispatch(it *item) {
	kind, proc, fn, iv := it.kind, it.proc, it.fn, it.interrupt
	e.freeItem(it)
	switch kind {
	case itemCall:
		fn()
	case itemStart:
		e.current = proc
		proc.start()
		<-e.sched
		e.current = nil
	case itemWake:
		e.current = proc
		proc.resume <- iv
		<-e.sched
		e.current = nil
	}
}

// Current returns the process currently holding the execution token, or
// nil when the scheduler itself (an At callback) is running.
func (e *Env) Current() *Proc { return e.current }
