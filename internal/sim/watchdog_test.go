package sim

import (
	"errors"
	"strings"
	"testing"
)

// runExpectingWatchdog runs the env and returns the recovered
// *WatchdogError, failing the test if the run finished or panicked with
// anything else.
func runExpectingWatchdog(t *testing.T, env *Env) *WatchdogError {
	t.Helper()
	var wd *WatchdogError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("livelocked run finished without tripping the watchdog")
			}
			err, ok := r.(error)
			if !ok || !errors.As(err, &wd) {
				t.Fatalf("recovered %v (%T), want *WatchdogError", r, r)
			}
		}()
		env.RunAll()
	}()
	return wd
}

func TestWatchdogEventLimitCatchesLivelock(t *testing.T) {
	env := NewEnv()
	env.SetWatchdog(10000, 0)
	// A Wait(0) loop never advances the clock: without the watchdog,
	// RunAll would spin forever.
	env.Spawn("livelocked", func(p *Proc) {
		for {
			p.Wait(0)
		}
	})
	wd := runExpectingWatchdog(t, env)
	if wd.Reason != "event limit" {
		t.Errorf("Reason = %q, want %q", wd.Reason, "event limit")
	}
	if wd.Events <= 10000 {
		t.Errorf("Events = %d, want > 10000", wd.Events)
	}
	if !strings.Contains(wd.Proc, "livelocked") {
		t.Errorf("diagnostic %q does not name the stuck process", wd.Error())
	}
}

func TestWatchdogSimTimeLimit(t *testing.T) {
	env := NewEnv()
	env.SetWatchdog(0, 100)
	env.Spawn("runaway", func(p *Proc) {
		for {
			p.Wait(1)
		}
	})
	wd := runExpectingWatchdog(t, env)
	if wd.Reason != "sim-time limit" {
		t.Errorf("Reason = %q, want %q", wd.Reason, "sim-time limit")
	}
	if wd.Now <= 100 {
		t.Errorf("tripped at t=%g, want past the 100s limit", wd.Now)
	}
}

func TestWatchdogDisarmedByRelease(t *testing.T) {
	env := NewEnv()
	env.SetWatchdog(3, 0)
	env.Release()
	env = NewEnv()
	done := false
	env.Spawn("p", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Wait(1)
		}
		done = true
	})
	env.RunAll()
	if !done {
		t.Fatal("fresh env inherited a stale watchdog")
	}
}

func TestWatchdogOffByDefault(t *testing.T) {
	env := NewEnv()
	count := 0
	env.Spawn("p", func(p *Proc) {
		for i := 0; i < 50000; i++ {
			p.Wait(0)
			count++
		}
	})
	env.RunAll()
	if count != 50000 {
		t.Fatalf("unarmed env stopped after %d events", count)
	}
}
