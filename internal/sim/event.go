package sim

// Event is a broadcast condition, the synchronization primitive behind the
// p-ckpt protocol notifications (the p-ckpt request and the pfs-commit
// broadcast of Sec. VI). Processes block on it with Proc.WaitEvent; a
// single Trigger wakes every waiter. Once triggered, later WaitEvent calls
// return immediately until Reset.
type Event struct {
	env       *Env
	triggered bool
	waiters   []*Proc
}

// NewEvent returns an untriggered event bound to env.
func NewEvent(env *Env) *Event {
	return &Event{env: env}
}

// Triggered reports whether the event has fired and not been Reset.
func (e *Event) Triggered() bool { return e.triggered }

// Waiters returns the number of processes currently blocked on the event.
func (e *Event) Waiters() int { return len(e.waiters) }

// wakeAll schedules a resume for every waiter at the current time and
// empties the waiter list, keeping its capacity for the next round.
func (e *Event) wakeAll() {
	for i, p := range e.waiters {
		wake := e.env.newItem()
		wake.kind = itemWake
		wake.proc = p
		e.env.schedule(e.env.now, wake)
		// Hand the wake over to the process so a racing Interrupt at the
		// same timestamp can cancel it and take precedence.
		p.pendingWake = wake
		p.waitingOn = nil
		e.waiters[i] = nil
	}
	e.waiters = e.waiters[:0]
}

// Trigger fires the event: every waiting process is scheduled to resume at
// the current simulation time, and the event latches so subsequent waits
// return immediately. Triggering an already-triggered event is a no-op.
func (e *Event) Trigger() {
	if e.triggered {
		return
	}
	e.triggered = true
	e.wakeAll()
}

// Pulse wakes every process currently waiting without latching: the event
// stays untriggered, so it can be waited on and pulsed again with no Reset
// and no reallocation. It is the primitive for long-lived request/response
// handshakes (post-a-command, phase-drained) that under Trigger semantics
// would need a fresh Event per round. Pulsing a latched event is a no-op —
// a latched event already admits every waiter immediately.
func (e *Event) Pulse() {
	if e.triggered {
		return
	}
	e.wakeAll()
}

// Reset re-arms a triggered event so it can be waited on and triggered
// again. It panics if processes are still queued (they would be stranded).
func (e *Event) Reset() {
	if len(e.waiters) != 0 {
		panic("sim: Reset on event with waiters")
	}
	e.triggered = false
}

// removeWaiter drops p from the waiter list (used by Interrupt).
func (e *Event) removeWaiter(p *Proc) {
	for i, w := range e.waiters {
		if w == p {
			n := len(e.waiters) - 1
			copy(e.waiters[i:], e.waiters[i+1:])
			// Zero the vacated tail slot so the slice does not pin p.
			e.waiters[n] = nil
			e.waiters = e.waiters[:n]
			return
		}
	}
}
