package sim

// Event is a broadcast condition, the synchronization primitive behind the
// p-ckpt protocol notifications (the p-ckpt request and the pfs-commit
// broadcast of Sec. VI). Processes block on it with Proc.WaitEvent; a
// single Trigger wakes every waiter. Once triggered, later WaitEvent calls
// return immediately until Reset.
type Event struct {
	env       *Env
	triggered bool
	waiters   []*Proc
}

// NewEvent returns an untriggered event bound to env.
func NewEvent(env *Env) *Event {
	return &Event{env: env}
}

// Triggered reports whether the event has fired and not been Reset.
func (e *Event) Triggered() bool { return e.triggered }

// Waiters returns the number of processes currently blocked on the event.
func (e *Event) Waiters() int { return len(e.waiters) }

// Trigger fires the event: every waiting process is scheduled to resume at
// the current simulation time, and the event latches so subsequent waits
// return immediately. Triggering an already-triggered event is a no-op.
func (e *Event) Trigger() {
	if e.triggered {
		return
	}
	e.triggered = true
	for _, p := range e.waiters {
		wake := &item{kind: itemWake, proc: p}
		e.env.schedule(e.env.now, wake)
		// Hand the wake over to the process so a racing Interrupt at the
		// same timestamp can cancel it and take precedence.
		p.pendingWake = wake
		p.waitingOn = nil
	}
	e.waiters = nil
}

// Reset re-arms a triggered event so it can be waited on and triggered
// again. It panics if processes are still queued (they would be stranded).
func (e *Event) Reset() {
	if len(e.waiters) != 0 {
		panic("sim: Reset on event with waiters")
	}
	e.triggered = false
}

// removeWaiter drops p from the waiter list (used by Interrupt).
func (e *Event) removeWaiter(p *Proc) {
	for i, w := range e.waiters {
		if w == p {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			return
		}
	}
}
