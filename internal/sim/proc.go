package sim

import "fmt"

// Interrupt is the error delivered to a process whose blocking operation
// was cut short by Proc.Interrupt. Reason carries caller context (for the
// C/R models: the injected failure or the superseding prediction).
type Interrupt struct {
	Reason any
}

// Error implements the error interface.
func (i *Interrupt) Error() string {
	return fmt.Sprintf("sim: interrupted (%v)", i.Reason)
}

type procState uint8

const (
	stateCreated procState = iota
	stateRunning
	stateBlocked
	stateDone
)

// Proc is a simulation process. All of its methods except Interrupt,
// Alive, and Name must be called from the process's own goroutine (they
// block the caller in simulated time); Interrupt is called by whichever
// goroutine currently holds the execution token.
type Proc struct {
	env  *Env
	name string
	id   uint64
	fn   func(p *Proc)
	// resume is borrowed from the carrier slot for the duration of the
	// run; it is assigned when the process starts.
	resume chan *Interrupt
	state  procState
	// pendingWake is the heap item that will resume this process, when it
	// is blocked in Wait. Interrupt cancels it.
	pendingWake *item
	// waitingOn is the event this process is queued on, when blocked in
	// WaitEvent. Interrupt removes the process from its waiter list.
	waitingOn *Event
	// interruptPending guards against double delivery: a second Interrupt
	// between the first one and the process actually resuming is dropped
	// (the first reason wins, matching SimPy's behaviour).
	interruptPending bool
	// done is the completion event, allocated lazily on the first Done
	// call — most processes (every per-node worker) are never joined.
	done *Event
}

// Name returns the diagnostic name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment this process runs in.
func (p *Proc) Env() *Env { return p.env }

// Alive reports whether the process has not yet finished.
func (p *Proc) Alive() bool { return p.state != stateDone }

// Done returns the completion event, triggered when the process function
// returns. Other processes can WaitEvent on it to join. The event is
// created on first use; asking a finished process returns it already
// triggered.
func (p *Proc) Done() *Event {
	if p.done == nil {
		p.done = NewEvent(p.env)
		if p.state == stateDone {
			p.done.triggered = true
		}
	}
	return p.done
}

// start hands the process to a carrier slot (dispatch of its itemStart).
func (p *Proc) start() {
	s := getSlot()
	p.resume = s.resume
	s.start <- p
}

// run is the carrier-goroutine body: execute fn, then hand the token back.
func (p *Proc) run() {
	defer func() {
		if r := recover(); r != nil {
			p.env.failed = true
			p.env.failure = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
		}
		p.state = stateDone
		p.env.nprocs--
		if !p.env.failed && p.done != nil {
			p.done.Trigger()
		}
		p.env.sched <- struct{}{}
	}()
	p.state = stateRunning
	p.fn(p)
}

// park hands the token to the scheduler and blocks until resumed. It
// returns the interrupt that caused the resume, or nil for a normal wake.
func (p *Proc) park() *Interrupt {
	p.state = stateBlocked
	p.env.sched <- struct{}{}
	iv := <-p.resume
	p.state = stateRunning
	p.interruptPending = false
	p.pendingWake = nil
	p.waitingOn = nil
	return iv
}

// Wait blocks the process for d seconds of simulated time. It returns nil
// on normal expiry, or the *Interrupt if another process interrupted the
// wait (in which case less than d may have elapsed).
func (p *Proc) Wait(d float64) error {
	if d < 0 {
		panic(fmt.Sprintf("sim: Wait with negative duration %g", d))
	}
	if p.env.current != p {
		panic("sim: Wait called from outside the process goroutine")
	}
	wake := p.env.newItem()
	wake.kind = itemWake
	wake.proc = p
	p.env.schedule(p.env.now+d, wake)
	p.pendingWake = wake
	if iv := p.park(); iv != nil {
		return iv
	}
	return nil
}

// WaitEvent blocks until ev is triggered. If ev was already triggered it
// returns immediately. It returns the *Interrupt if interrupted first.
func (p *Proc) WaitEvent(ev *Event) error {
	if p.env.current != p {
		panic("sim: WaitEvent called from outside the process goroutine")
	}
	if ev.triggered {
		return nil
	}
	ev.waiters = append(ev.waiters, p)
	p.waitingOn = ev
	if iv := p.park(); iv != nil {
		return iv
	}
	return nil
}

// Join blocks until other has finished. Interruptible like WaitEvent.
func (p *Proc) Join(other *Proc) error {
	if !other.Alive() {
		return nil
	}
	return p.WaitEvent(other.Done())
}

// Interrupt delivers an interrupt to a blocked process: its current Wait
// or WaitEvent returns an *Interrupt carrying reason. Interrupting a
// finished process is a no-op and returns false. Interrupting a process
// that is not currently blocked (created-but-not-started, or the caller
// itself) panics, because the C/R models never need it and silently
// queueing interrupts would hide bugs.
func (p *Proc) Interrupt(reason any) bool {
	switch p.state {
	case stateDone:
		return false
	case stateBlocked:
		if p.interruptPending {
			return true
		}
		p.interruptPending = true
		iv := &Interrupt{Reason: reason}
		if p.pendingWake != nil {
			p.env.cancel(p.pendingWake)
			p.pendingWake = nil
		}
		if p.waitingOn != nil {
			p.waitingOn.removeWaiter(p)
			p.waitingOn = nil
		}
		wake := p.env.newItem()
		wake.kind = itemWake
		wake.proc = p
		wake.interrupt = iv
		p.env.schedule(p.env.now, wake)
		return true
	default:
		panic(fmt.Sprintf("sim: Interrupt on process %q in state %d", p.name, p.state))
	}
}
