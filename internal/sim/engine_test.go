package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestInterruptBeatsSimultaneousTrigger pins the tie-breaking rule the
// C/R models depend on: when an event trigger and an interrupt land on
// the same blocked process at the same timestamp, the interrupt wins —
// in either arrival order. Trigger hands each waiter its wake item
// precisely so a same-instant Interrupt can cancel it; and an interrupt
// that arrives first removes the process from the waiter list so the
// trigger never wakes it. Either way the process must resume exactly
// once, with the interrupt.
func TestInterruptBeatsSimultaneousTrigger(t *testing.T) {
	for _, tc := range []struct {
		name         string
		triggerFirst bool
	}{
		{"trigger-then-interrupt", true},
		{"interrupt-then-trigger", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env := NewEnv()
			ev := NewEvent(env)
			var wokeAt []float64
			var got []error
			victim := env.Spawn("victim", func(p *Proc) {
				err := p.WaitEvent(ev)
				wokeAt = append(wokeAt, env.Now())
				got = append(got, err)
				// A second wait must complete normally: the cancelled
				// trigger wake must not deliver a spurious resume.
				if err := p.Wait(3); err != nil {
					t.Errorf("follow-up Wait interrupted: %v", err)
				}
				wokeAt = append(wokeAt, env.Now())
			})
			env.SpawnAt(0, "controller", func(p *Proc) {
				_ = p.Wait(5)
				if tc.triggerFirst {
					ev.Trigger()
					victim.Interrupt("tie")
				} else {
					victim.Interrupt("tie")
					ev.Trigger()
				}
			})
			env.RunAll()
			if len(got) != 1 {
				t.Fatalf("victim resumed %d times from WaitEvent, want 1", len(got))
			}
			iv, ok := got[0].(*Interrupt)
			if !ok || iv.Reason != "tie" {
				t.Fatalf("WaitEvent returned %v, want *Interrupt(tie)", got[0])
			}
			if len(wokeAt) != 2 || wokeAt[0] != 5 || wokeAt[1] != 8 {
				t.Fatalf("wake times %v, want [5 8]", wokeAt)
			}
		})
	}
}

// TestEventPulse covers the non-latching trigger: waiters wake, the event
// stays re-waitable with no Reset, and pulsing with nobody queued (or
// after a latching Trigger) is a no-op.
func TestEventPulse(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	var log []string
	env.Spawn("waiter", func(p *Proc) {
		for i := 0; i < 3; i++ {
			if err := p.WaitEvent(ev); err != nil {
				t.Errorf("wait %d interrupted: %v", i, err)
			}
			log = append(log, fmt.Sprintf("woke@%g", env.Now()))
		}
	})
	env.Spawn("pulser", func(p *Proc) {
		for i := 0; i < 3; i++ {
			_ = p.Wait(2)
			if ev.Triggered() {
				t.Error("Pulse latched the event")
			}
			ev.Pulse()
		}
	})
	env.RunAll()
	if got := strings.Join(log, " "); got != "woke@2 woke@4 woke@6" {
		t.Fatalf("pulse log %q, want three wakes at 2, 4, 6", got)
	}

	// Pulse with no waiters must not latch or wake anyone later.
	env2 := NewEnv()
	ev2 := NewEvent(env2)
	ev2.Pulse()
	if ev2.Triggered() {
		t.Fatal("Pulse on empty event latched it")
	}
	// After a latching Trigger, Pulse is a no-op and waits fall through.
	ev2.Trigger()
	ev2.Pulse()
	ran := false
	env2.Spawn("late", func(p *Proc) {
		if err := p.WaitEvent(ev2); err != nil {
			t.Errorf("wait on triggered event: %v", err)
		}
		ran = true
	})
	env2.RunAll()
	if !ran {
		t.Fatal("late waiter never ran")
	}
}

// TestEnvRelease checks the reuse lifecycle: a released environment comes
// back through NewEnv with a zeroed clock and empty state, and Release
// refuses half-run or poisoned environments instead of recycling them.
func TestEnvRelease(t *testing.T) {
	run := func() string {
		env := NewEnv()
		defer env.Release()
		if env.Now() != 0 || env.ProcCount() != 0 {
			t.Fatalf("reused env dirty: now=%g procs=%d", env.Now(), env.ProcCount())
		}
		var log []string
		for i := 0; i < 4; i++ {
			i := i
			env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				_ = p.Wait(float64(i + 1))
				log = append(log, fmt.Sprintf("%d@%g", i, env.Now()))
			})
		}
		env.RunAll()
		return strings.Join(log, " ")
	}
	first := run()
	for i := 0; i < 8; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d through the pool diverged: %q vs %q", i, got, first)
		}
	}

	// Release with events still pending is refused: the env stays usable.
	env := NewEnv()
	env.At(10, func() {})
	env.Release()
	if env.events.Len() != 1 {
		t.Fatal("Release with pending events must be a no-op")
	}
	env.RunAll()
	env.Release()
}

// TestInterruptStormCompacts drives enough same-pattern interrupts that
// cancelled entries repeatedly cross the compaction threshold, and checks
// the surviving schedule is untouched: every process observes its
// interrupts and final wake at the right times, twice over, identically.
func TestInterruptStormCompacts(t *testing.T) {
	run := func() string {
		env := NewEnv()
		defer env.Release()
		var log []string
		const n = 100
		procs := make([]*Proc, n)
		for i := 0; i < n; i++ {
			i := i
			procs[i] = env.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				// Long waits that almost always get interrupted: each
				// abort leaves a cancelled entry deep in the heap.
				for {
					if err := p.Wait(1e6); err == nil {
						break
					}
					log = append(log, fmt.Sprintf("i%d@%g", i, env.Now()))
					if env.Now() >= 50 {
						_ = p.Wait(0.5)
						break
					}
				}
			})
		}
		env.Spawn("stormer", func(p *Proc) {
			for tick := 1; tick <= 60; tick++ {
				_ = p.Wait(1)
				for i := 0; i < n; i++ {
					if procs[i].Alive() {
						procs[i].Interrupt(tick)
					}
				}
			}
		})
		env.RunAll()
		if env.ProcCount() != 0 {
			t.Fatalf("%d processes leaked", env.ProcCount())
		}
		return strings.Join(log, " ")
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("storm run %d diverged under compaction", i)
		}
	}
}

// TestSlotReuseIsInvisible spawns far more short-lived processes than the
// engine keeps carrier goroutines for and checks every one runs with its
// own identity — recycled channels must never leak a wake across process
// lifetimes.
func TestSlotReuseIsInvisible(t *testing.T) {
	env := NewEnv()
	defer env.Release()
	const n = 5000
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		i := i
		env.SpawnAt(float64(i)*1e-3, fmt.Sprintf("g%d", i), func(p *Proc) {
			_ = p.Wait(1e-4)
			if seen[p.Name()] {
				t.Errorf("process %s ran twice", p.Name())
			}
			seen[p.Name()] = true
		})
	}
	env.RunAll()
	if len(seen) != n {
		t.Fatalf("%d distinct processes ran, want %d", len(seen), n)
	}
	if env.ProcCount() != 0 {
		t.Fatalf("%d processes leaked", env.ProcCount())
	}
}
