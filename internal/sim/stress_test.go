package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestInterruptStormQuick hammers the engine with randomized interrupt
// patterns against workers running wait ladders, then checks the global
// invariants: every worker terminates, observed time never regresses,
// every interrupt reason is either delivered or provably swallowed by
// coalescing, and the environment ends with zero live processes.
func TestInterruptStormQuick(t *testing.T) {
	f := func(seedBytes []byte) bool {
		env := NewEnv()
		const workers = 6
		delivered := make([]int, workers)
		finished := 0
		var procs []*Proc
		for w := 0; w < workers; w++ {
			w := w
			procs = append(procs, env.Spawn(fmt.Sprintf("w%d", w), func(p *Proc) {
				last := env.Now()
				for i := 0; i < 40; i++ {
					if err := p.Wait(1.5); err != nil {
						delivered[w]++
					}
					if env.Now() < last {
						t.Errorf("time regressed for worker %d", w)
					}
					last = env.Now()
				}
				finished++
			}))
		}
		// The storm: each byte schedules one interrupt at a derived time
		// against a derived worker.
		for i, b := range seedBytes {
			if i > 120 {
				break
			}
			target := procs[int(b)%workers]
			at := float64(int(b)/7%60) + float64(i)*0.01
			env.At(at, func() {
				if target.Alive() {
					target.Interrupt("storm")
				}
			})
		}
		env.RunAll()
		if finished != workers {
			return false
		}
		if env.ProcCount() != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestBarrierUnderInterrupts runs BSP rounds while an injector randomly
// interrupts parties; interrupted parties retry the barrier, and every
// round must still complete with all parties.
func TestBarrierUnderInterrupts(t *testing.T) {
	env := NewEnv()
	const parties, rounds = 4, 25
	b := NewBarrier(env, parties)
	completions := make([]int, parties)
	var procs []*Proc
	for i := 0; i < parties; i++ {
		i := i
		procs = append(procs, env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Wait(float64(i) + 1)
				for b.Await(p) != nil {
					// Interrupted while waiting: retry (we still owe the
					// round).
				}
				completions[i]++
			}
		}))
	}
	env.Spawn("injector", func(p *Proc) {
		for k := 0; k < 60; k++ {
			p.Wait(1.7)
			target := procs[k%parties]
			if target.Alive() {
				target.Interrupt("poke")
			}
		}
	})
	env.RunAll()
	for i, c := range completions {
		if c != rounds {
			t.Fatalf("party %d completed %d rounds, want %d", i, c, rounds)
		}
	}
	if b.Generation() != rounds {
		t.Fatalf("barrier generation %d, want %d", b.Generation(), rounds)
	}
}

// TestResourceUnderChurnConservesUnits randomly acquires/releases with
// interrupts and verifies unit conservation at every step.
func TestResourceUnderChurnConservesUnits(t *testing.T) {
	env := NewEnv()
	const capacity = 3
	r := NewResource(env, capacity)
	var procs []*Proc
	for i := 0; i < 8; i++ {
		i := i
		procs = append(procs, env.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			for k := 0; k < 20; k++ {
				if err := r.Acquire(p, float64((i*7+k)%5)); err != nil {
					continue // withdrawn; try next round
				}
				if r.InUse() > capacity {
					t.Errorf("capacity exceeded: %d", r.InUse())
				}
				p.Wait(float64(k%3) + 0.5)
				r.Release()
				p.Wait(0.3)
			}
		}))
	}
	env.Spawn("chaos", func(p *Proc) {
		for k := 0; k < 80; k++ {
			p.Wait(0.9)
			target := procs[k%len(procs)]
			if target.Alive() {
				target.Interrupt("churn")
			}
		}
	})
	env.RunAll()
	if r.InUse() != 0 || r.Queued() != 0 {
		t.Fatalf("resource leaked: inUse=%d queued=%d", r.InUse(), r.Queued())
	}
}
