package sim

import "fmt"

// Barrier is a reusable n-party synchronization barrier: the bulk-
// synchronous coordination point of a node-granular application
// simulation (all ranks meet between compute and checkpoint phases).
// The last arriving process releases the others; the barrier then resets
// for the next round automatically.
type Barrier struct {
	env     *Env
	parties int
	waiting int
	round   *Event
	// generation counts completed rounds, for diagnostics and tests.
	generation int
}

// NewBarrier creates a barrier for the given number of parties.
func NewBarrier(env *Env, parties int) *Barrier {
	if parties <= 0 {
		panic("sim: barrier with non-positive party count")
	}
	return &Barrier{env: env, parties: parties, round: NewEvent(env)}
}

// Parties returns the configured party count.
func (b *Barrier) Parties() int { return b.parties }

// Generation returns the number of completed rounds.
func (b *Barrier) Generation() int { return b.generation }

// Waiting returns how many parties are currently blocked at the barrier.
func (b *Barrier) Waiting() int { return b.waiting }

// Await blocks until all parties have arrived. It returns nil when the
// barrier trips, or the *Interrupt if the caller was interrupted while
// waiting (the caller is then no longer counted as arrived).
func (b *Barrier) Await(p *Proc) error {
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.generation++
		ev := b.round
		b.round = NewEvent(b.env)
		ev.Trigger()
		return nil
	}
	ev := b.round
	if err := p.WaitEvent(ev); err != nil {
		b.waiting--
		return err
	}
	return nil
}

// Resize changes the party count (a node died and was dropped from the
// job, or a replacement joined). If the new count is already satisfied by
// the currently waiting parties, the barrier trips immediately.
func (b *Barrier) Resize(parties int) {
	if parties <= 0 {
		panic("sim: barrier resize to non-positive party count")
	}
	b.parties = parties
	if b.waiting >= b.parties {
		b.waiting = 0
		b.generation++
		ev := b.round
		b.round = NewEvent(b.env)
		ev.Trigger()
	}
}

// Resource is a counting semaphore with FIFO (or priority) granting — the
// PFS-lane token of the node-level p-ckpt protocol. Acquire with a
// priority key; lower keys are served first, ties in request order.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waiters  waiterQueue
}

// waiterQueue is a small stable priority queue of grant events.
type waiterQueue struct {
	items []resWaiter
	seq   uint64
}

type resWaiter struct {
	key   float64
	seq   uint64
	grant *Event
}

func (q *waiterQueue) push(key float64, grant *Event) {
	q.seq++
	q.items = append(q.items, resWaiter{key: key, seq: q.seq, grant: grant})
}

func (q *waiterQueue) pop() *Event {
	best := 0
	for i := 1; i < len(q.items); i++ {
		if q.items[i].key < q.items[best].key ||
			(q.items[i].key == q.items[best].key && q.items[i].seq < q.items[best].seq) {
			best = i
		}
	}
	ev := q.items[best].grant
	q.items = append(q.items[:best], q.items[best+1:]...)
	return ev
}

func (q *waiterQueue) remove(grant *Event) bool {
	for i := range q.items {
		if q.items[i].grant == grant {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// NewResource creates a resource with the given concurrent capacity.
func NewResource(env *Env, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource with non-positive capacity")
	}
	return &Resource{env: env, capacity: capacity}
}

// InUse returns the number of held units.
func (r *Resource) InUse() int { return r.inUse }

// Queued returns the number of blocked acquirers.
func (r *Resource) Queued() int { return len(r.waiters.items) }

// Acquire blocks until a unit is granted. priority orders the wait queue
// (lower first — the p-ckpt lead-time rule). It returns the *Interrupt
// if interrupted while queued; the request is then withdrawn.
func (r *Resource) Acquire(p *Proc, priority float64) error {
	if r.inUse < r.capacity {
		r.inUse++
		return nil
	}
	grant := NewEvent(r.env)
	r.waiters.push(priority, grant)
	if err := p.WaitEvent(grant); err != nil {
		if !r.waiters.remove(grant) && grant.Triggered() {
			// The grant raced the interrupt: the unit was already
			// transferred to us, so return it.
			r.release()
		}
		return err
	}
	return nil
}

// Release returns a unit, granting the best-priority waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: Release on idle resource (in use %d)", r.inUse))
	}
	r.release()
}

func (r *Resource) release() {
	if len(r.waiters.items) > 0 {
		// Hand the unit directly to the next waiter; inUse stays put.
		r.waiters.pop().Trigger()
		return
	}
	r.inUse--
}
