package pckpt

import (
	"testing"

	"pckpt/internal/metrics"
)

func TestEpisodeMetrics(t *testing.T) {
	reg := metrics.New()
	cfg := testConfig(8, 20, false)
	cfg.Metrics = reg
	preds := []Prediction{
		{Node: 1, At: 0, Lead: 500},
		{Node: 2, At: 5, Lead: 300},
	}
	res := Run(cfg, preds)
	snap := reg.Snapshot(res.Phase2End)
	// Both vulnerable nodes waited for the lane and committed through it.
	if n := int(snap.Histograms["pckpt.lane_wait_seconds"].Count); n != 2 {
		t.Fatalf("lane_wait_seconds count %d, want 2", n)
	}
	if n := int(snap.Histograms["pckpt.commit_latency_seconds"].Count); n != 2 {
		t.Fatalf("commit_latency_seconds count %d, want 2", n)
	}
	// The second prediction queued while the first held the lane.
	if g := snap.Gauges["pckpt.queue_depth"]; g.Max < 1 {
		t.Fatalf("queue depth never rose: %+v", g)
	}
	// One phase-2 collective write for the 6 healthy nodes.
	if ph2 := snap.Histograms["pckpt.pfs_effective_gbps"]; ph2.Count != 1 {
		t.Fatalf("pfs_effective_gbps count %d, want 1", ph2.Count)
	}
	// A nil registry must leave the episode unchanged.
	plain := Run(testConfig(8, 20, false), preds)
	if plain.Phase2End != res.Phase2End || len(plain.Outcomes) != len(res.Outcomes) {
		t.Fatal("metering changed the episode outcome")
	}
}
