// Package pckpt implements the paper's core contribution at node
// granularity: the coordinated prioritized checkpoint protocol of
// Sec. VI, including the hybrid variant that prefers live migration and
// falls back to p-ckpt (aborting in-flight migrations) when a prediction
// arrives with too little lead time.
//
// Protocol recap (Fig. 5 of the paper):
//
//   - A node receiving a failure prediction becomes vulnerable. With
//     enough lead time (and the hybrid model enabled) it live-migrates;
//     otherwise it initiates p-ckpt by notifying every node.
//   - Phase 1: vulnerable nodes commit their state to the PFS with
//     prioritized, contention-free access, ordered by lead time to
//     failure (lower lead → higher priority) through a priority queue.
//     Healthy nodes enter the waiting state. Nodes predicted to fail
//     during this phase join the queue.
//   - When every vulnerable node has committed, a pfs-commit broadcast
//     releases the healthy nodes, which then checkpoint to the PFS
//     together (phase 2, contended aggregate bandwidth).
//   - An in-flight live migration is aborted if a new prediction forces
//     the p-ckpt path; the aborted node joins the priority queue.
//
// The package simulates one protocol episode on the discrete-event
// engine with a process per involved node, and reports per-node commit
// times, the phase structure, and a human-readable trace. The
// application-level C/R models (internal/crmodel) price the same
// protocol in closed form; an integration test cross-checks the two.
package pckpt

import (
	"fmt"
	"sort"

	"pckpt/internal/faultinject"
	"pckpt/internal/iomodel"
	"pckpt/internal/lm"
	"pckpt/internal/metrics"
	"pckpt/internal/queue"
	"pckpt/internal/rng"
	"pckpt/internal/sim"
)

// Action is the proactive path a vulnerable node ended up taking.
type Action uint8

const (
	// ActionPckpt: the node committed through the prioritized queue.
	ActionPckpt Action = iota
	// ActionLM: the node live-migrated successfully.
	ActionLM
	// ActionLMAborted: the node's migration was aborted by a p-ckpt
	// request and it committed through the queue instead.
	ActionLMAborted
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionPckpt:
		return "p-ckpt"
	case ActionLM:
		return "live-migration"
	case ActionLMAborted:
		return "lm-aborted→p-ckpt"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// Config parameterises a protocol episode.
type Config struct {
	// Nodes is the job's node count.
	Nodes int
	// PerNodeGB is each node's checkpoint footprint.
	PerNodeGB float64
	// IO prices every transfer.
	IO *iomodel.Model
	// LM is the migration model (used only when Hybrid).
	LM lm.Config
	// Hybrid enables the LM-preferred policy of the hybrid p-ckpt model;
	// false forces every prediction onto the p-ckpt path (model P1).
	Hybrid bool
	// Metrics, when non-nil, receives the episode's protocol metrics
	// ("pckpt."-prefixed: priority-queue depth over episode time, lane
	// wait, per-node commit latency, phase-2 effective bandwidth). Nil
	// costs nothing.
	Metrics *metrics.Registry
	// Faults is the degraded-platform fault plan: a prioritized write
	// that fails re-enters the lead-time priority queue if the remaining
	// lead covers another attempt, or its prediction goes unserved. The
	// zero value is a perfect platform.
	Faults faultinject.Config
	// FaultSeed seeds the fault plan's rng substream (only consulted when
	// Faults is non-zero; the episode is deterministic in it).
	FaultSeed uint64
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("pckpt: non-positive node count")
	case c.PerNodeGB <= 0:
		return fmt.Errorf("pckpt: non-positive per-node footprint")
	case c.IO == nil:
		return fmt.Errorf("pckpt: nil I/O model")
	}
	if c.Hybrid {
		if err := c.LM.Validate(); err != nil {
			return err
		}
	}
	return c.Faults.Validate()
}

// Prediction is one failure prediction injected into the episode.
type Prediction struct {
	// Node is the vulnerable node.
	Node int
	// At is the episode-relative time the prediction arrives.
	At float64
	// Lead is the predicted lead time to failure, so the failure is due
	// at At+Lead.
	Lead float64
}

// Outcome records what one vulnerable node did.
type Outcome struct {
	// Node is the vulnerable node.
	Node int
	// Action is the path taken.
	Action Action
	// Deadline is the predicted failure time (episode-relative).
	Deadline float64
	// DoneAt is when the node's state was safe: PFS commit time for
	// p-ckpt, migration completion for LM.
	DoneAt float64
	// Mitigated reports whether the node finished before its deadline.
	Mitigated bool
}

// Result is the outcome of one protocol episode.
type Result struct {
	// PckptTriggered reports whether any node initiated p-ckpt (pure-LM
	// episodes never pause the healthy nodes).
	PckptTriggered bool
	// Phase1End is when the last phase-1 vulnerable commit finished and
	// the pfs-commit broadcast fired (zero if p-ckpt never triggered).
	Phase1End float64
	// Phase2End is when the healthy nodes' collective PFS write
	// finished; the application resumes here.
	Phase2End float64
	// Outcomes lists every vulnerable node's path, in completion order.
	Outcomes []Outcome
	// CommitOrder is the order nodes were granted prioritized PFS
	// access in phase 1 (a node whose write tore and was requeued
	// appears once per grant).
	CommitOrder []int
	// Trace is a human-readable protocol event log.
	Trace []string
	// WriteFailures counts injected PFS write failures (phase 1 and
	// phase 2); zero on a perfect platform.
	WriteFailures int
	// Requeues counts vulnerable nodes that re-entered the priority
	// queue after a torn prioritized write.
	Requeues int
}

// Mitigated returns how many vulnerable nodes finished before their
// deadlines.
func (r *Result) Mitigated() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Mitigated {
			n++
		}
	}
	return n
}

// episode is the shared protocol state. All mutation happens under the
// simulator's lock-step execution, so no synchronization is needed.
type episode struct {
	cfg Config
	env *sim.Env

	pckptActive bool
	// pricing derives the phase-1 and phase-2 transfer prices (shared
	// with every other episode implementation; see EpisodePricing).
	pricing EpisodePricing
	// vulnQ holds nodes awaiting prioritized PFS access, keyed by
	// predicted failure deadline (lower deadline = less lead = higher
	// priority).
	vulnQ queue.PQ[*vulnNode]
	// queued signals the arbiter that the queue became non-empty (or
	// that a prediction process finished, so the arbiter should recheck
	// whether the episode is over).
	queued *sim.Event
	// writeDone is re-armed per grant: the writing node triggers it when
	// its prioritized PFS commit finishes.
	writeDone *sim.Event
	// pckptStart releases... notifies healthy nodes to pause; pfsCommit
	// releases them into phase 2.
	pfsCommit *sim.Event
	// pending counts vulnerable nodes on the p-ckpt path that have not
	// committed yet (queued or writing).
	pending int
	// migrations tracks in-flight migrations for the abort broadcast.
	migrations map[int]*sim.Proc
	// inj is the degraded-platform fault plan (nil = perfect platform).
	inj *faultinject.Injector

	met epMetrics

	result Result
}

// epMetrics is the episode's instrument handle set; all nil (and every
// call a free no-op) when Config.Metrics is nil.
type epMetrics struct {
	// laneWait is each vulnerable node's span from enqueue to the
	// arbiter's grant; commitLat extends it through the prioritized write.
	laneWait  *metrics.Histogram
	commitLat *metrics.Histogram
	// pfsGBs is the effective aggregate bandwidth of the phase-2 write.
	pfsGBs *metrics.Histogram
	// queueDepth tracks the priority queue's population over episode time.
	queueDepth *metrics.Gauge
}

func newEpMetrics(r *metrics.Registry) epMetrics {
	if r == nil {
		return epMetrics{}
	}
	return epMetrics{
		laneWait:   r.Histogram("pckpt.lane_wait_seconds"),
		commitLat:  r.Histogram("pckpt.commit_latency_seconds"),
		pfsGBs:     r.Histogram("pckpt.pfs_effective_gbps"),
		queueDepth: r.Gauge("pckpt.queue_depth"),
	}
}

type vulnNode struct {
	node     int
	deadline float64
	turn     *sim.Event
}

func (e *episode) tracef(format string, args ...any) {
	e.result.Trace = append(e.result.Trace, fmt.Sprintf("t=%8.2f  %s", e.env.Now(), fmt.Sprintf(format, args...)))
}

// Run simulates one protocol episode: the predictions arrive as given,
// nodes act per the (hybrid) p-ckpt policy, and the episode ends when
// every triggered action has completed. Episode time starts at zero.
func Run(cfg Config, preds []Prediction) *Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	for _, p := range preds {
		if p.Node < 0 || p.Node >= cfg.Nodes {
			panic(fmt.Sprintf("pckpt: prediction for node %d outside [0, %d)", p.Node, cfg.Nodes))
		}
		if p.At < 0 || p.Lead < 0 {
			panic("pckpt: negative prediction time or lead")
		}
	}
	env := sim.NewEnv()
	e := &episode{
		cfg:        cfg,
		env:        env,
		pricing:    NewEpisodePricing(cfg.IO, cfg.PerNodeGB),
		queued:     sim.NewEvent(env),
		pfsCommit:  sim.NewEvent(env),
		migrations: make(map[int]*sim.Proc),
	}
	e.met = newEpMetrics(cfg.Metrics)
	// The fault plan draws from the dedicated injection substream of
	// FaultSeed's source; a zero Faults config yields the nil (no-op)
	// injector and consumes nothing.
	e.inj = faultinject.New(cfg.Faults, rng.New(cfg.FaultSeed).Split(faultinject.StreamKey), cfg.Metrics)
	env.Spawn("arbiter", e.arbiter)
	for i, p := range preds {
		p := p
		env.SpawnAt(p.At, fmt.Sprintf("pred-%d-node-%d", i, p.Node), func(proc *sim.Proc) {
			e.onPrediction(proc, p)
		})
	}
	env.RunAll()
	env.Release()
	sort.SliceStable(e.result.Outcomes, func(i, j int) bool {
		return e.result.Outcomes[i].DoneAt < e.result.Outcomes[j].DoneAt
	})
	return &e.result
}

// onPrediction is the vulnerable node's process: choose LM or p-ckpt,
// execute it, record the outcome.
func (e *episode) onPrediction(proc *sim.Proc, p Prediction) {
	// After this process finishes (its node is safe), poke the arbiter so
	// it can notice the episode may be over. The callback runs after the
	// process has been reaped, so the arbiter's idle check sees the
	// up-to-date process count.
	defer e.env.At(0, func() { e.queued.Trigger() })
	deadline := e.env.Now() + p.Lead
	theta := e.cfg.LM.Theta(e.cfg.PerNodeGB)
	if e.cfg.Hybrid && !e.pckptActive && p.Lead >= theta {
		e.tracef("node %d vulnerable (lead %.2fs): live migration (θ=%.2fs)", p.Node, p.Lead, theta)
		e.migrations[p.Node] = proc
		err := proc.Wait(theta)
		delete(e.migrations, p.Node)
		if err == nil {
			e.tracef("node %d migration complete", p.Node)
			e.record(Outcome{Node: p.Node, Action: ActionLM, Deadline: deadline, DoneAt: e.env.Now(), Mitigated: e.env.Now() <= deadline})
			return
		}
		// Aborted by a p-ckpt request: fall through to the queue.
		e.tracef("node %d migration ABORTED: %v", p.Node, err.(*sim.Interrupt).Reason)
		e.joinQueue(proc, p.Node, deadline, ActionLMAborted)
		return
	}
	if e.cfg.Hybrid {
		e.tracef("node %d vulnerable (lead %.2fs < θ=%.2fs or p-ckpt active): p-ckpt", p.Node, p.Lead, theta)
	} else {
		e.tracef("node %d vulnerable (lead %.2fs): p-ckpt", p.Node, p.Lead)
	}
	e.startPckpt()
	e.joinQueue(proc, p.Node, deadline, ActionPckpt)
}

// startPckpt broadcasts the p-ckpt request (idempotent) and aborts every
// in-flight migration, per the Fig. 5 state diagram.
func (e *episode) startPckpt() {
	if e.pckptActive {
		return
	}
	e.pckptActive = true
	e.result.PckptTriggered = true
	e.tracef("p-ckpt request broadcast: healthy nodes enter waiting state")
	for node, proc := range e.migrations {
		e.tracef("aborting in-flight migration of node %d", node)
		proc.Interrupt("p-ckpt supersedes migration")
	}
}

// joinQueue enqueues the node by deadline priority and blocks until its
// prioritized write completes. On a degraded platform a torn write
// re-enters the queue — same deadline, so the same lead-time priority —
// as long as the remaining lead covers another attempt; once it cannot,
// the prediction goes unserved.
func (e *episode) joinQueue(proc *sim.Proc, node int, deadline float64, action Action) {
	write := e.pricing.VulnerableWrite
	enqueued := e.env.Now()
	e.pending++
	for {
		vn := &vulnNode{node: node, deadline: deadline, turn: sim.NewEvent(e.env)}
		e.vulnQ.Push(deadline, vn)
		e.met.queueDepth.Set(e.env.Now(), float64(e.vulnQ.Len()))
		e.tracef("node %d queued (deadline %.2fs, queue depth %d)", node, deadline, e.vulnQ.Len())
		e.queued.Trigger()
		if err := proc.WaitEvent(vn.turn); err != nil {
			panic(fmt.Sprintf("pckpt: queue turn interrupted: %v", err))
		}
		e.met.laneWait.Observe(e.env.Now() - enqueued)
		// The arbiter granted exclusive PFS access; write uncontended.
		if err := proc.Wait(write); err != nil {
			panic(fmt.Sprintf("pckpt: prioritized write interrupted: %v", err))
		}
		if e.inj.PFSWriteFails() {
			e.result.WriteFailures++
			if e.env.Now()+write <= deadline {
				e.tracef("node %d prioritized write FAILED (injected): re-enters the queue", node)
				e.result.Requeues++
				e.writeDone.Trigger()
				continue
			}
			e.tracef("node %d prioritized write FAILED (injected): lead exhausted, commit abandoned", node)
			e.record(Outcome{Node: node, Action: action, Deadline: deadline, DoneAt: e.env.Now(), Mitigated: false})
			e.pending--
			e.writeDone.Trigger()
			return
		}
		break
	}
	done := e.env.Now()
	e.met.commitLat.Observe(done - enqueued)
	e.tracef("node %d committed to PFS (%s)", node, map[bool]string{true: "in time", false: "LATE"}[done <= deadline])
	e.record(Outcome{Node: node, Action: action, Deadline: deadline, DoneAt: done, Mitigated: done <= deadline})
	e.pending--
	e.writeDone.Trigger()
}

func (e *episode) record(o Outcome) {
	e.result.Outcomes = append(e.result.Outcomes, o)
}

// arbiter grants prioritized PFS access in deadline order and fires the
// two-phase transitions.
func (e *episode) arbiter(proc *sim.Proc) {
	for {
		// Wait for work. When no predictions remain the episode's other
		// processes finish and this wait would hang forever — so bail
		// out when the environment holds no other live processes.
		for e.vulnQ.Len() == 0 {
			if e.pending == 0 && e.idle() {
				e.finish(proc)
				return
			}
			e.queued.Reset()
			if err := proc.WaitEvent(e.queued); err != nil {
				panic(fmt.Sprintf("pckpt: arbiter interrupted: %v", err))
			}
		}
		_, vn := e.vulnQ.Pop()
		e.met.queueDepth.Set(e.env.Now(), float64(e.vulnQ.Len()))
		e.result.CommitOrder = append(e.result.CommitOrder, vn.node)
		e.tracef("arbiter grants PFS to node %d", vn.node)
		e.writeDone = sim.NewEvent(e.env)
		wd := e.writeDone
		vn.turn.Trigger()
		if err := proc.WaitEvent(wd); err != nil {
			panic(fmt.Sprintf("pckpt: arbiter wait interrupted: %v", err))
		}
	}
}

// idle reports whether only the arbiter itself remains alive, meaning no
// prediction process can enqueue more work.
func (e *episode) idle() bool {
	return e.env.ProcCount() <= 1
}

// finish runs the phase transition when the queue drained for good: if
// p-ckpt was triggered, broadcast pfs-commit and perform the healthy
// nodes' collective phase-2 write.
func (e *episode) finish(proc *sim.Proc) {
	if !e.result.PckptTriggered {
		return
	}
	e.result.Phase1End = e.env.Now()
	healthy := e.cfg.Nodes - len(e.result.CommitOrder)
	e.tracef("all vulnerable nodes committed: pfs-commit broadcast, %d healthy nodes begin phase 2", healthy)
	e.pfsCommit.Trigger()
	if healthy > 0 {
		tr := e.pricing.Phase2Transfer(healthy)
		for attempt := 0; ; attempt++ {
			if err := proc.Wait(tr.Seconds); err != nil {
				panic(fmt.Sprintf("pckpt: phase-2 write interrupted: %v", err))
			}
			if attempt < faultinject.MaxCascadeDepth && e.inj.PFSWriteFails() {
				// The collective write failed after its full duration;
				// the healthy nodes redo it (bounded, so a pathological
				// plan cannot spin the episode forever).
				e.result.WriteFailures++
				e.tracef("phase-2 collective write FAILED (injected): retrying")
				continue
			}
			break
		}
		e.met.pfsGBs.Observe(tr.GBs)
	}
	e.result.Phase2End = e.env.Now()
	e.tracef("phase 2 complete: application checkpoint fully on PFS")
}
