package pckpt_test

import (
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/pckpt"
	"pckpt/internal/platform"
	"pckpt/internal/workload"
)

// benchPreds builds one k-node drain scenario on the crossval platform:
// arrivals land while earlier writes are still in flight (so the whole
// set drains in a single episode) and every deadline clears the episode
// end (so no failure strikes mid-drain). The same scenario shape the
// drain-invariant property tests replay, minus the randomness.
func benchPreds(k int, w, phase2 float64) []pckpt.Prediction {
	episodeEnd := float64(k)*w + phase2
	preds := make([]pckpt.Prediction, k)
	at := 0.0
	for i := range preds {
		if i > 0 {
			at += 0.5 * w
		}
		// Scatter deadlines so the queue actually reorders.
		lead := episodeEnd + float64((i*7)%k+2)*w
		preds[i] = pckpt.Prediction{Node: 1 + i*3, At: at, Lead: lead}
	}
	return preds
}

// BenchmarkEpisodeProcess prices one full p-ckpt episode on the
// process-per-node engine: Run spawns a goroutine per prediction plus
// the arbiter, and every grant is a park/unpark handoff. Its
// commits/sec against BenchmarkStepEpisodeDrain in internal/stepsim is
// the episode-machinery headroom claim benchfmt gates on.
func BenchmarkEpisodeProcess(b *testing.B) {
	plat := platform.Config{
		App:    workload.App{Name: "bench-48", Nodes: 48, TotalCkptGB: 960, ComputeHours: 24},
		System: failure.System{Name: "busy", Shape: 0.75, ScaleHours: 40, Nodes: 48},
	}.WithDefaults()
	d := plat.Derive()
	const k = 16
	w := d.SingleNodePFSWrite
	phase2 := pckpt.NewEpisodePricing(plat.IO, d.PerNodeGB).Phase2Transfer(plat.App.Nodes - k).Seconds
	preds := benchPreds(k, w, phase2)
	cfg := pckpt.Config{Nodes: plat.App.Nodes, PerNodeGB: d.PerNodeGB, IO: plat.IO}
	b.ResetTimer()
	commits := 0
	for i := 0; i < b.N; i++ {
		res := pckpt.Run(cfg, preds)
		commits += len(res.CommitOrder)
	}
	b.StopTimer()
	if commits != k*b.N {
		b.Fatalf("committed %d nodes, want %d", commits, k*b.N)
	}
	b.ReportMetric(float64(commits)/b.Elapsed().Seconds(), "commits/sec")
}
