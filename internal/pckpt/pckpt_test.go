package pckpt

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"pckpt/internal/iomodel"
	"pckpt/internal/lm"
)

func testConfig(nodes int, perNodeGB float64, hybrid bool) Config {
	return Config{
		Nodes:     nodes,
		PerNodeGB: perNodeGB,
		IO:        iomodel.New(iomodel.DefaultSummit()),
		LM:        lm.Default(),
		Hybrid:    hybrid,
	}
}

func TestValidate(t *testing.T) {
	if err := testConfig(4, 10, true).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Nodes: 0, PerNodeGB: 1, IO: iomodel.New(iomodel.DefaultSummit())},
		{Nodes: 4, PerNodeGB: 0, IO: iomodel.New(iomodel.DefaultSummit())},
		{Nodes: 4, PerNodeGB: 1},
		{Nodes: 4, PerNodeGB: 1, IO: iomodel.New(iomodel.DefaultSummit()), Hybrid: true}, // zero LM config
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEmptyEpisode(t *testing.T) {
	r := Run(testConfig(8, 10, false), nil)
	if r.PckptTriggered || len(r.Outcomes) != 0 {
		t.Fatalf("empty episode produced activity: %+v", r)
	}
}

func TestSingleVulnerableNode(t *testing.T) {
	cfg := testConfig(16, 10, false)
	write := cfg.IO.SingleNodePFSWriteTime(10)
	r := Run(cfg, []Prediction{{Node: 3, At: 0, Lead: write + 5}})
	if !r.PckptTriggered {
		t.Fatal("p-ckpt not triggered")
	}
	if len(r.Outcomes) != 1 {
		t.Fatalf("%d outcomes, want 1", len(r.Outcomes))
	}
	o := r.Outcomes[0]
	if o.Node != 3 || o.Action != ActionPckpt || !o.Mitigated {
		t.Fatalf("outcome wrong: %+v", o)
	}
	if math.Abs(o.DoneAt-write) > 1e-9 {
		t.Fatalf("commit at %.3f, want %.3f", o.DoneAt, write)
	}
	if math.Abs(r.Phase1End-write) > 1e-9 {
		t.Fatalf("phase 1 ended at %.3f, want %.3f", r.Phase1End, write)
	}
	wantPhase2 := write + cfg.IO.PFSWriteTime(15, 10)
	if math.Abs(r.Phase2End-wantPhase2) > 1e-9 {
		t.Fatalf("phase 2 ended at %.3f, want %.3f", r.Phase2End, wantPhase2)
	}
}

func TestShortLeadMissesDeadline(t *testing.T) {
	cfg := testConfig(16, 10, false)
	write := cfg.IO.SingleNodePFSWriteTime(10)
	r := Run(cfg, []Prediction{{Node: 0, At: 0, Lead: write / 2}})
	if r.Outcomes[0].Mitigated {
		t.Fatal("node with insufficient lead reported mitigated")
	}
	if r.Mitigated() != 0 {
		t.Fatal("Mitigated() wrong")
	}
}

func TestPriorityOrderByLead(t *testing.T) {
	cfg := testConfig(32, 10, false)
	// Three simultaneous predictions; lower lead must commit first.
	r := Run(cfg, []Prediction{
		{Node: 5, At: 0, Lead: 300},
		{Node: 9, At: 0, Lead: 100},
		{Node: 2, At: 0, Lead: 200},
	})
	want := []int{9, 2, 5}
	if len(r.CommitOrder) != 3 {
		t.Fatalf("commit order %v", r.CommitOrder)
	}
	for i := range want {
		if r.CommitOrder[i] != want[i] {
			t.Fatalf("commit order %v, want %v", r.CommitOrder, want)
		}
	}
}

func TestSerializedPhase1(t *testing.T) {
	cfg := testConfig(8, 20, false)
	write := cfg.IO.SingleNodePFSWriteTime(20)
	r := Run(cfg, []Prediction{
		{Node: 0, At: 0, Lead: 1000},
		{Node: 1, At: 0, Lead: 2000},
		{Node: 2, At: 0, Lead: 3000},
	})
	// Prioritized access is exclusive: phase 1 is the serial sum.
	if math.Abs(r.Phase1End-3*write) > 1e-9 {
		t.Fatalf("phase 1 end %.3f, want %.3f", r.Phase1End, 3*write)
	}
	// Commit times are staggered by one write each.
	for i, o := range r.Outcomes {
		if want := float64(i+1) * write; math.Abs(o.DoneAt-want) > 1e-9 {
			t.Fatalf("outcome %d at %.3f, want %.3f", i, o.DoneAt, want)
		}
	}
}

func TestLatePredictionJoinsPhase1(t *testing.T) {
	cfg := testConfig(8, 20, false)
	write := cfg.IO.SingleNodePFSWriteTime(20)
	// Node 1's prediction arrives while node 0 writes; it must still get
	// prioritized access before phase 2 begins.
	r := Run(cfg, []Prediction{
		{Node: 0, At: 0, Lead: 500},
		{Node: 1, At: write / 2, Lead: 500},
	})
	if len(r.CommitOrder) != 2 {
		t.Fatalf("commit order %v", r.CommitOrder)
	}
	if math.Abs(r.Phase1End-2*write) > 1e-9 {
		t.Fatalf("phase 1 end %.3f, want %.3f", r.Phase1End, 2*write)
	}
}

func TestHybridPrefersLM(t *testing.T) {
	cfg := testConfig(16, 10, true)
	theta := cfg.LM.Theta(10)
	r := Run(cfg, []Prediction{{Node: 4, At: 0, Lead: theta * 2}})
	if r.PckptTriggered {
		t.Fatal("LM-feasible prediction triggered p-ckpt")
	}
	o := r.Outcomes[0]
	if o.Action != ActionLM || !o.Mitigated {
		t.Fatalf("outcome %+v, want successful LM", o)
	}
	if math.Abs(o.DoneAt-theta) > 1e-9 {
		t.Fatalf("migration done at %.3f, want θ=%.3f", o.DoneAt, theta)
	}
}

func TestHybridShortLeadUsesPckpt(t *testing.T) {
	cfg := testConfig(16, 10, true)
	theta := cfg.LM.Theta(10)
	r := Run(cfg, []Prediction{{Node: 4, At: 0, Lead: theta * 0.9}})
	if !r.PckptTriggered {
		t.Fatal("short-lead prediction did not trigger p-ckpt")
	}
	if r.Outcomes[0].Action != ActionPckpt {
		t.Fatalf("action %v, want p-ckpt", r.Outcomes[0].Action)
	}
}

func TestLMAbortedByPckpt(t *testing.T) {
	cfg := testConfig(16, 10, true)
	theta := cfg.LM.Theta(10)
	// Node 0 starts migrating; node 1's short-lead prediction arrives
	// mid-migration and forces the p-ckpt path, aborting node 0's LM.
	r := Run(cfg, []Prediction{
		{Node: 0, At: 0, Lead: theta * 3},
		{Node: 1, At: theta / 2, Lead: theta * 0.5},
	})
	if !r.PckptTriggered {
		t.Fatal("p-ckpt not triggered")
	}
	byNode := map[int]Outcome{}
	for _, o := range r.Outcomes {
		byNode[o.Node] = o
	}
	if byNode[0].Action != ActionLMAborted {
		t.Fatalf("node 0 action %v, want lm-aborted", byNode[0].Action)
	}
	if byNode[1].Action != ActionPckpt {
		t.Fatalf("node 1 action %v, want p-ckpt", byNode[1].Action)
	}
	// Node 1 has the earlier deadline, so it writes first.
	if len(r.CommitOrder) != 2 || r.CommitOrder[0] != 1 || r.CommitOrder[1] != 0 {
		t.Fatalf("commit order %v, want [1 0]", r.CommitOrder)
	}
	// The trace records the abort.
	joined := strings.Join(r.Trace, "\n")
	if !strings.Contains(joined, "ABORTED") {
		t.Fatalf("trace missing abort:\n%s", joined)
	}
}

func TestLMCompletedBeforePckptNotAborted(t *testing.T) {
	cfg := testConfig(16, 10, true)
	theta := cfg.LM.Theta(10)
	// Node 0's migration finishes before node 1's p-ckpt request.
	r := Run(cfg, []Prediction{
		{Node: 0, At: 0, Lead: theta * 3},
		{Node: 1, At: theta + 1, Lead: 0.1},
	})
	byNode := map[int]Outcome{}
	for _, o := range r.Outcomes {
		byNode[o.Node] = o
	}
	if byNode[0].Action != ActionLM || !byNode[0].Mitigated {
		t.Fatalf("node 0 outcome %+v, want completed LM", byNode[0])
	}
}

func TestPckptActiveForcesQueueEvenWithLongLead(t *testing.T) {
	cfg := testConfig(16, 10, true)
	theta := cfg.LM.Theta(10)
	write := cfg.IO.SingleNodePFSWriteTime(10)
	// Node 0 triggers p-ckpt; node 1's prediction arrives during phase 1
	// with a long lead. Because p-ckpt is active, it queues rather than
	// migrating (the paper's state diagram: waiting state nodes move to
	// checkpointing, not to migration).
	r := Run(cfg, []Prediction{
		{Node: 0, At: 0, Lead: theta * 0.5},
		{Node: 1, At: write / 2, Lead: theta * 10},
	})
	byNode := map[int]Outcome{}
	for _, o := range r.Outcomes {
		byNode[o.Node] = o
	}
	if byNode[1].Action != ActionPckpt {
		t.Fatalf("node 1 action %v, want p-ckpt (p-ckpt active)", byNode[1].Action)
	}
}

func TestVulnerableAlwaysCommitBeforePhase2(t *testing.T) {
	cfg := testConfig(64, 5, false)
	preds := []Prediction{
		{Node: 1, At: 0, Lead: 50},
		{Node: 7, At: 0.2, Lead: 10},
		{Node: 13, At: 0.5, Lead: 400},
		{Node: 20, At: 1.0, Lead: 30},
	}
	r := Run(cfg, preds)
	for _, o := range r.Outcomes {
		if o.DoneAt > r.Phase1End+1e-9 {
			t.Fatalf("vulnerable node %d committed at %.2f after phase-1 end %.2f", o.Node, o.DoneAt, r.Phase1End)
		}
	}
	if r.Phase2End <= r.Phase1End {
		t.Fatal("phase 2 did not run after phase 1")
	}
}

// TestProtocolInvariantsQuick drives random episodes and checks the
// protocol's core invariants:
//  1. every prediction produces exactly one outcome;
//  2. the commit order respects deadline priority among nodes present in
//     the queue together (verified via the serialized grant sequence:
//     when node A is granted before node B and both were queued at A's
//     grant time, A's deadline ≤ B's deadline);
//  3. no vulnerable commit happens after phase-1 end;
//  4. the episode terminates (Run returns).
func TestProtocolInvariantsQuick(t *testing.T) {
	cfg := testConfig(32, 8, true)
	f := func(raw []uint16) bool {
		if len(raw) > 12 {
			raw = raw[:12]
		}
		var preds []Prediction
		for i, v := range raw {
			preds = append(preds, Prediction{
				Node: (i*7 + int(v)) % cfg.Nodes,
				At:   float64(v%97) / 10,
				Lead: float64(v%311) / 4,
			})
		}
		r := Run(cfg, preds)
		if len(r.Outcomes) != len(preds) {
			return false
		}
		if r.PckptTriggered {
			for _, o := range r.Outcomes {
				if o.Action != ActionLM && o.DoneAt > r.Phase1End+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOutcomesSortedByCompletion(t *testing.T) {
	cfg := testConfig(16, 10, false)
	r := Run(cfg, []Prediction{
		{Node: 0, At: 0, Lead: 900},
		{Node: 1, At: 0, Lead: 100},
		{Node: 2, At: 0, Lead: 500},
	})
	if !sort.SliceIsSorted(r.Outcomes, func(i, j int) bool {
		return r.Outcomes[i].DoneAt < r.Outcomes[j].DoneAt
	}) {
		t.Fatalf("outcomes not completion-ordered: %+v", r.Outcomes)
	}
}

func TestActionString(t *testing.T) {
	if ActionPckpt.String() != "p-ckpt" || ActionLM.String() != "live-migration" || ActionLMAborted.String() != "lm-aborted→p-ckpt" {
		t.Fatal("action strings wrong")
	}
}

func TestRunPanicsOnBadPrediction(t *testing.T) {
	cfg := testConfig(4, 10, false)
	cases := [][]Prediction{
		{{Node: 4, At: 0, Lead: 1}},
		{{Node: -1, At: 0, Lead: 1}},
		{{Node: 0, At: -1, Lead: 1}},
		{{Node: 0, At: 0, Lead: -1}},
	}
	for i, preds := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			Run(cfg, preds)
		}()
	}
}

func TestTraceIsPopulated(t *testing.T) {
	cfg := testConfig(8, 10, false)
	r := Run(cfg, []Prediction{{Node: 2, At: 0, Lead: 60}})
	if len(r.Trace) < 4 {
		t.Fatalf("trace too short: %v", r.Trace)
	}
	joined := strings.Join(r.Trace, "\n")
	for _, want := range []string{"p-ckpt request broadcast", "arbiter grants PFS", "pfs-commit broadcast", "phase 2 complete"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}
