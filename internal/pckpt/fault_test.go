package pckpt

import (
	"testing"

	"pckpt/internal/faultinject"
)

// faultCfg arms the episode with a fault plan.
func faultCfg(nodes int, f faultinject.Config, seed uint64) Config {
	cfg := testConfig(nodes, 10, false)
	cfg.Faults = f
	cfg.FaultSeed = seed
	return cfg
}

// TestZeroRateInjectionBitIdentical pins the hygiene contract at the
// episode level: arming the injector with no rates changes nothing.
func TestZeroRateInjectionBitIdentical(t *testing.T) {
	cfg := testConfig(16, 10, false)
	write := cfg.IO.SingleNodePFSWriteTime(10)
	preds := []Prediction{
		{Node: 3, At: 0, Lead: write + 5},
		{Node: 7, At: 0, Lead: 3 * write},
	}
	clean := Run(cfg, preds)
	armed := Run(faultCfg(16, faultinject.Config{RestartRetries: 5}, 1), preds)
	if clean.Phase1End != armed.Phase1End || clean.Phase2End != armed.Phase2End ||
		len(clean.Outcomes) != len(armed.Outcomes) || armed.WriteFailures != 0 || armed.Requeues != 0 {
		t.Fatalf("rate-0 injection diverged:\nclean %+v\narmed %+v", clean, armed)
	}
}

// TestFailedWriteRequeuesWithLeadToSpare gives one node lead for several
// attempts under a high failure rate: the failed prioritized writes must
// re-enter the queue and eventually commit in time.
func TestFailedWriteRequeuesWithLeadToSpare(t *testing.T) {
	cfg := testConfig(16, 10, false)
	write := cfg.IO.SingleNodePFSWriteTime(10)
	// Find a seed whose plan fails the first attempt, so the requeue path
	// demonstrably runs (the plan is deterministic per seed).
	for seed := uint64(1); seed <= 50; seed++ {
		r := Run(faultCfg(16, faultinject.Config{PFSWriteFailProb: 0.5}, seed),
			[]Prediction{{Node: 3, At: 0, Lead: 20 * write}})
		if r.Requeues == 0 {
			continue
		}
		o := r.Outcomes[0]
		if !o.Mitigated {
			t.Fatalf("seed %d: node with 20 writes of lead not mitigated after %d requeues", seed, r.Requeues)
		}
		if r.WriteFailures < r.Requeues {
			t.Fatalf("seed %d: %d write failures < %d requeues", seed, r.WriteFailures, r.Requeues)
		}
		// Each failed attempt costs a full write: commit lands late by
		// exactly the retries.
		if want := write * float64(r.Requeues+1); o.DoneAt < want-1e-9 {
			t.Fatalf("seed %d: committed at %.3f, want ≥ %.3f after %d requeues", seed, o.DoneAt, want, r.Requeues)
		}
		return
	}
	t.Fatal("no seed in 1..50 failed a write at p=0.5 (injector not drawing?)")
}

// TestFailedWriteAbandonsWhenLeadExhausted gives the node lead for
// exactly one attempt: a failed write cannot requeue and the prediction
// goes unserved.
func TestFailedWriteAbandonsWhenLeadExhausted(t *testing.T) {
	cfg := testConfig(16, 10, false)
	write := cfg.IO.SingleNodePFSWriteTime(10)
	for seed := uint64(1); seed <= 50; seed++ {
		r := Run(faultCfg(16, faultinject.Config{PFSWriteFailProb: 0.5}, seed),
			[]Prediction{{Node: 3, At: 0, Lead: write * 1.5}})
		if r.WriteFailures == 0 {
			continue
		}
		o := r.Outcomes[0]
		if o.Mitigated {
			t.Fatalf("seed %d: abandoned node reported mitigated: %+v", seed, o)
		}
		if r.Requeues != 0 {
			t.Fatalf("seed %d: requeued with lead for only one attempt", seed)
		}
		return
	}
	t.Fatal("no seed in 1..50 failed a write at p=0.5 (injector not drawing?)")
}

// TestPhase2RetriesAreBounded floods the collective write with failures;
// the bounded retry must still terminate the episode with the extra
// writes charged.
func TestPhase2RetriesAreBounded(t *testing.T) {
	cfg := faultCfg(16, faultinject.Config{PFSWriteFailProb: 0.9}, 7)
	write := cfg.IO.SingleNodePFSWriteTime(10)
	r := Run(cfg, []Prediction{{Node: 3, At: 0, Lead: 100 * write}})
	if r.Phase2End <= r.Phase1End {
		t.Fatal("phase 2 never completed")
	}
	maxRetries := faultinject.MaxCascadeDepth
	tr := cfg.IO.PFSWriteTransfer(15, 10)
	if limit := r.Phase1End + float64(maxRetries+1)*tr.Seconds + 1e-6; r.Phase2End > limit {
		t.Fatalf("phase 2 ended at %.3f, beyond the bounded-retry limit %.3f", r.Phase2End, limit)
	}
}
