package pckpt

import "pckpt/internal/iomodel"

// EpisodePricing is the one place the p-ckpt episode's two transfer
// prices are derived, shared by every implementation of the protocol —
// the process-per-node episode in this package, the app tier's closed
// form (internal/crmodel), the node tier (internal/nodesim), and the
// step tier's continuation chain (internal/stepsim). Centralising the
// derivation keeps the float operations identical across tiers, which
// the bit-identity cross-validation depends on: a tier that priced
// phase 2 with its own arithmetic could agree statistically yet diverge
// in the last bit.
type EpisodePricing struct {
	// VulnerableWrite is the phase-1 prioritized commit: one node's
	// uncontended PFS write of its footprint (the lead-time queue serves
	// these serially).
	VulnerableWrite float64

	io        *iomodel.Model
	perNodeGB float64
}

// NewEpisodePricing derives the episode prices for one platform: io is
// the priced I/O model, perNodeGB each node's checkpoint footprint.
func NewEpisodePricing(io *iomodel.Model, perNodeGB float64) EpisodePricing {
	return EpisodePricing{
		VulnerableWrite: io.SingleNodePFSWriteTime(perNodeGB),
		io:              io,
		perNodeGB:       perNodeGB,
	}
}

// Phase2Transfer prices the post-broadcast collective write: healthy
// nodes checkpoint together at contended aggregate bandwidth.
func (p EpisodePricing) Phase2Transfer(healthy int) iomodel.Transfer {
	return p.io.PFSWriteTransfer(healthy, p.perNodeGB)
}
