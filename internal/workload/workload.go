// Package workload describes the six real-world HPC applications the
// paper simulates (its Table I) and the checkpoint-size scaling rule,
// Eq. (3), used to port application footprints between systems with
// different node counts and DRAM sizes (the paper scaled Titan-era
// characteristics up to Summit).
package workload

import (
	"fmt"
	"sort"
)

// App describes one application's simulation-relevant characteristics.
type App struct {
	// Name is the application identifier (e.g. "CHIMERA").
	Name string
	// Nodes is the number of compute nodes the job runs on.
	Nodes int
	// TotalCkptGB is the application-wide checkpoint volume in GB: the
	// sum over all nodes of the state each node must save.
	TotalCkptGB float64
	// ComputeHours is the failure-free computation time of the job.
	ComputeHours float64
}

// PerNodeGB returns the checkpoint footprint of a single node.
func (a App) PerNodeGB() float64 { return a.TotalCkptGB / float64(a.Nodes) }

// ComputeSeconds returns the failure-free runtime in seconds.
func (a App) ComputeSeconds() float64 { return a.ComputeHours * 3600 }

// String implements fmt.Stringer.
func (a App) String() string {
	return fmt.Sprintf("%s(nodes=%d, ckpt=%.4gGB, compute=%gh)", a.Name, a.Nodes, a.TotalCkptGB, a.ComputeHours)
}

// Validate reports an error for non-physical characteristics.
func (a App) Validate() error {
	switch {
	case a.Name == "":
		return fmt.Errorf("workload: empty application name")
	case a.Nodes <= 0:
		return fmt.Errorf("workload %s: non-positive node count", a.Name)
	case a.TotalCkptGB <= 0:
		return fmt.Errorf("workload %s: non-positive checkpoint size", a.Name)
	case a.ComputeHours <= 0:
		return fmt.Errorf("workload %s: non-positive compute time", a.Name)
	}
	return nil
}

// Summit returns the paper's Table I: the six applications with checkpoint
// sizes already scaled to Summit via Eq. (3). Ordered largest first, the
// order the paper's figures use.
func Summit() []App {
	return []App{
		{Name: "CHIMERA", Nodes: 2272, TotalCkptGB: 646382, ComputeHours: 360},
		{Name: "XGC", Nodes: 1515, TotalCkptGB: 149625, ComputeHours: 240},
		{Name: "S3D", Nodes: 505, TotalCkptGB: 20199, ComputeHours: 240},
		{Name: "GYRO", Nodes: 126, TotalCkptGB: 197.2, ComputeHours: 120},
		{Name: "POP", Nodes: 126, TotalCkptGB: 102.5, ComputeHours: 480},
		{Name: "VULCAN", Nodes: 64, TotalCkptGB: 3.27, ComputeHours: 720},
	}
}

// ByName returns the Summit application with the given name.
func ByName(name string) (App, error) {
	for _, a := range Summit() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("workload: unknown application %q", name)
}

// Names returns the catalogue's application names, largest job first.
func Names() []string {
	apps := Summit()
	names := make([]string, len(apps))
	for i, a := range apps {
		names[i] = a.Name
	}
	return names
}

// SortBySize orders apps by total checkpoint volume, descending, in place.
// The paper's observations are phrased in terms of application size; the
// figures keep this order.
func SortBySize(apps []App) {
	sort.SliceStable(apps, func(i, j int) bool {
		return apps[i].TotalCkptGB > apps[j].TotalCkptGB
	})
}

// ScaleEq3 applies the paper's Eq. (3): given an application measured on a
// system with oldNodes nodes of oldDRAMGB memory each, return the
// checkpoint size when the application runs on newNodes nodes of
// newDRAMGB each. Footprint scales with both node count and memory size.
func ScaleEq3(oldSizeGB float64, oldNodes, newNodes int, oldDRAMGB, newDRAMGB float64) float64 {
	if oldNodes <= 0 || newNodes <= 0 || oldDRAMGB <= 0 || newDRAMGB <= 0 {
		panic("workload: ScaleEq3 with non-positive parameter")
	}
	return oldSizeGB * float64(newNodes) * newDRAMGB / (float64(oldNodes) * oldDRAMGB)
}

// ScaleApp returns a copy of a rescaled to a target system via Eq. (3).
func ScaleApp(a App, newNodes int, oldDRAMGB, newDRAMGB float64) App {
	out := a
	out.Nodes = newNodes
	out.TotalCkptGB = ScaleEq3(a.TotalCkptGB, a.Nodes, newNodes, oldDRAMGB, newDRAMGB)
	return out
}
