package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummitCatalogueValid(t *testing.T) {
	apps := Summit()
	if len(apps) != 6 {
		t.Fatalf("catalogue has %d apps, want 6", len(apps))
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestPerNodeFitsInDRAM(t *testing.T) {
	// Sec. II: "the checkpoint size per node never exceeds the DRAM or BB
	// size" — 512 GB DRAM on Summit.
	for _, a := range Summit() {
		if per := a.PerNodeGB(); per > 512 {
			t.Errorf("%s per-node checkpoint %.1f GB exceeds DRAM", a.Name, per)
		}
	}
}

func TestCataloguedSizesMatchTable1(t *testing.T) {
	want := map[string]struct {
		nodes int
		gb    float64
		hours float64
	}{
		"CHIMERA": {2272, 646382, 360},
		"XGC":     {1515, 149625, 240},
		"S3D":     {505, 20199, 240},
		"GYRO":    {126, 197.2, 120},
		"POP":     {126, 102.5, 480},
		"VULCAN":  {64, 3.27, 720},
	}
	for _, a := range Summit() {
		w, ok := want[a.Name]
		if !ok {
			t.Errorf("unexpected app %s", a.Name)
			continue
		}
		if a.Nodes != w.nodes || a.TotalCkptGB != w.gb || a.ComputeHours != w.hours {
			t.Errorf("%s = %+v, want %+v", a.Name, a, w)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("POP")
	if err != nil || a.Nodes != 126 {
		t.Fatalf("ByName(POP) = %v, %v", a, err)
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("ByName with unknown app did not error")
	}
}

func TestNamesOrderedBySize(t *testing.T) {
	names := Names()
	if names[0] != "CHIMERA" || names[len(names)-1] != "VULCAN" {
		t.Fatalf("names order unexpected: %v", names)
	}
}

func TestSortBySize(t *testing.T) {
	apps := []App{
		{Name: "small", Nodes: 1, TotalCkptGB: 1, ComputeHours: 1},
		{Name: "big", Nodes: 1, TotalCkptGB: 100, ComputeHours: 1},
		{Name: "mid", Nodes: 1, TotalCkptGB: 10, ComputeHours: 1},
	}
	SortBySize(apps)
	if apps[0].Name != "big" || apps[2].Name != "small" {
		t.Fatalf("sorted order wrong: %v", apps)
	}
}

func TestComputeSeconds(t *testing.T) {
	a := App{Name: "x", Nodes: 1, TotalCkptGB: 1, ComputeHours: 2}
	if a.ComputeSeconds() != 7200 {
		t.Fatalf("ComputeSeconds = %g, want 7200", a.ComputeSeconds())
	}
}

func TestScaleEq3RoundTrip(t *testing.T) {
	f := func(sizeRaw, n1Raw, n2Raw uint16) bool {
		size := float64(sizeRaw%10000) + 1
		n1 := int(n1Raw%5000) + 1
		n2 := int(n2Raw%5000) + 1
		scaled := ScaleEq3(size, n1, n2, 32, 512)
		back := ScaleEq3(scaled, n2, n1, 512, 32)
		return math.Abs(back-size)/size < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleEq3Known(t *testing.T) {
	// Doubling both nodes and DRAM quadruples the checkpoint footprint.
	if got := ScaleEq3(100, 10, 20, 32, 64); math.Abs(got-400) > 1e-9 {
		t.Fatalf("ScaleEq3 = %g, want 400", got)
	}
}

func TestScaleEq3Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScaleEq3 with zero nodes did not panic")
		}
	}()
	ScaleEq3(1, 0, 1, 1, 1)
}

func TestScaleApp(t *testing.T) {
	a := App{Name: "x", Nodes: 100, TotalCkptGB: 1000, ComputeHours: 10}
	b := ScaleApp(a, 200, 32, 32)
	if b.Nodes != 200 || math.Abs(b.TotalCkptGB-2000) > 1e-9 {
		t.Fatalf("ScaleApp = %+v", b)
	}
	if math.Abs(b.PerNodeGB()-a.PerNodeGB()) > 1e-9 {
		t.Fatal("same DRAM scaling must preserve per-node footprint")
	}
	if a.Nodes != 100 {
		t.Fatal("ScaleApp mutated its input")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []App{
		{},
		{Name: "x"},
		{Name: "x", Nodes: 1},
		{Name: "x", Nodes: 1, TotalCkptGB: 1},
		{Name: "x", Nodes: -1, TotalCkptGB: 1, ComputeHours: 1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: invalid app accepted: %+v", i, a)
		}
	}
}
