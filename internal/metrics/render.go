package metrics

import (
	"fmt"
	"sort"
	"strings"

	"pckpt/internal/tablefmt"
)

// Render formats a snapshot as aligned tables: histograms with their
// percentiles first (the headline latencies), then gauges (time-weighted
// levels), then counters. Empty sections are omitted; an entirely empty
// snapshot renders a placeholder line.
func Render(s *Snapshot) string {
	if s.Empty() {
		return "(no metrics recorded)\n"
	}
	var b strings.Builder
	if len(s.Histograms) > 0 {
		t := tablefmt.NewTable("histogram", "count", "mean", "p50", "p95", "p99", "max")
		for _, name := range sortedNames(s.Histograms) {
			h := s.Histograms[name]
			t.AddRow(name, fmt.Sprintf("%d", h.Count), sig(h.Mean()), sig(h.P50), sig(h.P95), sig(h.P99), sig(h.Max))
		}
		b.WriteString(t.String())
	}
	if len(s.Gauges) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		t := tablefmt.NewTable("gauge", "time-mean", "min", "max", "last")
		for _, name := range sortedNames(s.Gauges) {
			g := s.Gauges[name]
			t.AddRow(name, sig(g.Mean()), sig(g.Min), sig(g.Max), sig(g.Last))
		}
		b.WriteString(t.String())
	}
	if len(s.Counters) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		t := tablefmt.NewTable("counter", "total")
		for _, name := range sortedNames(s.Counters) {
			t.AddRow(name, sig(s.Counters[name]))
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// sig formats a value to four significant digits — latencies span
// microseconds to days, so fixed decimals fit nothing.
func sig(v float64) string { return fmt.Sprintf("%.4g", v) }

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
