package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("Value = %g, want 3.5", got)
	}
	if r.Counter("x") != c {
		t.Fatal("same name must return the same handle")
	}
}

func TestGaugeTimeWeightedMean(t *testing.T) {
	r := New()
	g := r.Gauge("depth")
	g.Set(0, 1)  // 1 for 10 s
	g.Set(10, 3) // 3 for 5 s
	g.Set(15, 0)
	s := r.Snapshot(20) // 0 for the last 5 s
	st := s.Gauges["depth"]
	want := (1*10.0 + 3*5 + 0*5) / 20
	if math.Abs(st.Mean()-want) > 1e-12 {
		t.Fatalf("Mean = %g, want %g", st.Mean(), want)
	}
	if st.Min != 0 || st.Max != 3 || st.Last != 0 {
		t.Fatalf("extrema = %+v", st)
	}
}

func TestGaugeAdd(t *testing.T) {
	r := New()
	g := r.Gauge("q")
	g.Add(0, 1)
	g.Add(5, 1)
	g.Add(10, -2)
	st := r.Snapshot(10).Gauges["q"]
	if st.Max != 2 || st.Last != 0 {
		t.Fatalf("got %+v", st)
	}
}

func TestHistogramBasics(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i)) // 1..1000
	}
	st := r.Snapshot(0).Histograms["lat"]
	if st.Count != 1000 || st.Min != 1 || st.Max != 1000 {
		t.Fatalf("stat = %+v", st)
	}
	if math.Abs(st.Mean()-500.5) > 1e-9 {
		t.Fatalf("Mean = %g", st.Mean())
	}
	// Log buckets are ≈19% wide; allow that plus a little slack.
	checks := []struct{ q, want float64 }{{0.50, 500}, {0.95, 950}, {0.99, 990}}
	for _, c := range checks {
		got := st.Quantile(c.q)
		if got < c.want*0.75 || got > c.want*1.25 {
			t.Errorf("Quantile(%g) = %g, want ≈%g", c.q, got, c.want)
		}
	}
	if st.P50 != st.Quantile(0.5) || st.P99 != st.Quantile(0.99) {
		t.Fatal("serialized percentiles must match Quantile")
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(0)    // underflow bucket
	h.Observe(1e10) // overflow bucket
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := bucketIndex(0); got != 0 {
		t.Fatalf("bucketIndex(0) = %d", got)
	}
	if got := bucketIndex(1e10); got != numBuckets-1 {
		t.Fatalf("bucketIndex(1e10) = %d, want %d", got, numBuckets-1)
	}
	if got := bucketIndex(math.NaN()); got != 0 {
		t.Fatalf("bucketIndex(NaN) = %d", got)
	}
}

func TestBucketBoundsCoverIndex(t *testing.T) {
	for i := 1; i < numBuckets-1; i++ {
		lo, hi := bucketLo(i), bucketHi(i)
		mid := math.Sqrt(lo * hi)
		if got := bucketIndex(mid); got != i {
			t.Fatalf("bucketIndex(mid of %d) = %d", i, got)
		}
	}
}

// TestNilHandlesAreNoOps is the off-path contract: every handle method on
// a nil receiver does nothing, and a nil registry hands out nil handles.
func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("a"), r.Gauge("b"), r.Histogram("c")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil handles")
	}
	c.Add(1)
	c.Inc()
	g.Set(1, 2)
	g.Add(2, 3)
	h.Observe(4)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if s := r.Snapshot(10); !s.Empty() {
		t.Fatal("nil registry snapshot must be empty")
	}
	if r.Names() != nil {
		t.Fatal("nil registry must have no names")
	}
}

// TestZeroAllocations proves both sides of the hot-path contract: nil
// handles (metering off) AND live handles (metering on) allocate nothing
// per operation.
func TestZeroAllocations(t *testing.T) {
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		nc.Add(1)
		ng.Set(1, 2)
		nh.Observe(3)
	}); n != 0 {
		t.Fatalf("nil handles allocated %.1f per op", n)
	}
	r := New()
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h")
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(1, 2)
		h.Observe(3)
	}); n != 0 {
		t.Fatalf("live handles allocated %.1f per op", n)
	}
}

// TestSnapshotMergeQuick is the property test of the mergeable-snapshot
// contract: recording shards into separate registries and merging their
// snapshots must equal recording everything into one registry. Matches
// the internal/stats testing/quick style.
func TestSnapshotMergeQuick(t *testing.T) {
	f := func(shards [][]float64) bool {
		single := New()
		sh := single.Histogram("h")
		sc := single.Counter("c")
		merged := &Snapshot{}
		for _, shard := range shards {
			r := New()
			h := r.Histogram("h")
			c := r.Counter("c")
			for _, v := range shard {
				// Clamp to finite non-negative values, the instruments'
				// domain (durations, bandwidths, counts).
				if math.IsNaN(v) || math.IsInf(v, 0) {
					continue
				}
				v = math.Abs(v)
				if v > 1e100 {
					continue
				}
				h.Observe(v)
				sh.Observe(v)
				c.Add(1)
				sc.Add(1)
			}
			merged.Merge(r.Snapshot(0))
		}
		want := single.Snapshot(0)
		wh, mh := want.Histograms["h"], merged.Histograms["h"]
		if wh.Count != mh.Count || wh.Min != mh.Min || wh.Max != mh.Max {
			return false
		}
		if len(wh.Buckets) != len(mh.Buckets) {
			return false
		}
		for i := range wh.Buckets {
			if wh.Buckets[i] != mh.Buckets[i] {
				return false
			}
		}
		// Sums accumulate in different orders; quantiles are pure
		// functions of (buckets, min, max, count) so they must be exact.
		if math.Abs(wh.Sum-mh.Sum) > 1e-6*(1+math.Abs(wh.Sum)) {
			return false
		}
		if wh.P50 != mh.P50 || wh.P95 != mh.P95 || wh.P99 != mh.P99 {
			return false
		}
		return want.Counters["c"] == merged.Counters["c"]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGaugeMerge(t *testing.T) {
	a, b := New(), New()
	a.Gauge("g").Set(0, 2)
	a.Gauge("g").Set(10, 2) // mean 2 over 10 s
	b.Gauge("g").Set(0, 4)
	b.Gauge("g").Set(5, 4) // mean 4 over 5 s
	s := a.Snapshot(10)
	s.Merge(b.Snapshot(5))
	g := s.Gauges["g"]
	want := (2*10.0 + 4*5) / 15 // duration-weighted across shards
	if math.Abs(g.Mean()-want) > 1e-12 {
		t.Fatalf("merged Mean = %g, want %g", g.Mean(), want)
	}
	if g.Min != 2 || g.Max != 4 {
		t.Fatalf("merged extrema %+v", g)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("runs").Add(3)
	r.Gauge("depth").Set(0, 1)
	r.Gauge("depth").Set(4, 0)
	for i := 0; i < 100; i++ {
		r.Histogram("lat").Observe(float64(i) * 0.01)
	}
	s := r.Snapshot(10)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["runs"] != 3 {
		t.Fatalf("counter lost: %+v", back.Counters)
	}
	if back.Histograms["lat"].Count != 100 || back.Histograms["lat"].P50 != s.Histograms["lat"].P50 {
		t.Fatalf("histogram lost: %+v", back.Histograms["lat"])
	}
	if back.Gauges["depth"].Seconds != 10 {
		t.Fatalf("gauge span = %g, want 10", back.Gauges["depth"].Seconds)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	col := NewCollector()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				r := New()
				r.Counter("n").Inc()
				r.Histogram("h").Observe(float64(w + i))
				col.Add(r.Snapshot(0))
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	s := col.Snapshot()
	if s.Counters["n"] != 400 || s.Histograms["h"].Count != 400 {
		t.Fatalf("collector lost updates: %+v", s.Counters)
	}
}

func TestRender(t *testing.T) {
	r := New()
	r.Counter("failures").Add(2)
	r.Gauge("depth").Set(0, 1)
	r.Histogram("episode_seconds").Observe(12.5)
	out := Render(r.Snapshot(100))
	for _, want := range []string{"failures", "depth", "episode_seconds", "p95"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render output missing %q:\n%s", want, out)
		}
	}
	if got := Render(&Snapshot{}); got != "(no metrics recorded)\n" {
		t.Fatalf("empty render = %q", got)
	}
}
