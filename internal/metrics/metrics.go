// Package metrics is the simulation-time observability layer: a registry
// of counters, gauges, and log-bucketed streaming histograms that the
// simulators populate as a run unfolds, designed — like trace.Recorder —
// so that a disabled registry costs nothing on the hot path.
//
// The zero-cost contract works through typed handles: code resolves each
// instrument once at setup (Registry.Counter / Gauge / Histogram, all of
// which return nil when the registry itself is nil) and the hot path calls
// methods on the handle. Every handle method is a no-op on a nil receiver
// and allocates nothing on a live one, so instrumented code never branches
// on "is metering enabled" and testing.AllocsPerRun can prove the off
// path free.
//
// Time is the simulation clock (float64 seconds), never the wall clock:
// gauges take the current simulation time explicitly and integrate the
// tracked value over it, which is what makes quantities like "BB drain
// queue depth over sim time" well defined.
//
// A Registry is single-run state and is not safe for concurrent use; the
// worker-pool runner gives every run its own registry and merges the
// resulting Snapshots after the fact (snapshots of identical bucket
// layout merge exactly), so the hot path stays lock-free.
package metrics

import (
	"math"
	"sort"
	"sync"
)

// Counter is a monotonically accumulating value (counts or seconds).
type Counter struct {
	n float64
}

// Add accumulates v. No-op on a nil counter.
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	c.n += v
}

// Inc accumulates 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the accumulated total (0 for a nil counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge tracks an instantaneous value over simulation time, accumulating
// the time integral so a snapshot can report the time-weighted mean (the
// right average for quantities like queue depth or vulnerable-node count
// that are sampled at state changes, not on a fixed cadence).
type Gauge struct {
	set           bool
	last, lastT   float64
	integral, dur float64
	min, max      float64
}

// Set records the value v at simulation time now. Calls must arrive in
// non-decreasing time order (simulation order guarantees this). No-op on
// a nil gauge.
func (g *Gauge) Set(now, v float64) {
	if g == nil {
		return
	}
	if !g.set {
		g.set = true
		g.last, g.lastT = v, now
		g.min, g.max = v, v
		return
	}
	if now > g.lastT {
		g.integral += (now - g.lastT) * g.last
		g.dur += now - g.lastT
		g.lastT = now
	}
	g.last = v
	if v < g.min {
		g.min = v
	}
	if v > g.max {
		g.max = v
	}
}

// Add adjusts the gauge by delta at time now (a Set relative to the last
// value; 0 before the first Set).
func (g *Gauge) Add(now, delta float64) {
	if g == nil {
		return
	}
	g.Set(now, g.last+delta)
}

// Histogram bucket layout: values in [histMin, histMin·2^histOctaves) map
// to log-spaced buckets with bucketsPerOctave buckets per power of two
// (≈19 % relative width); bucket 0 catches everything below histMin
// (including zero), the top bucket everything above the range. The layout
// is a package constant so any two histograms merge bucket-for-bucket.
const (
	histMin          = 1e-6 // one simulated microsecond
	bucketsPerOctave = 4
	histOctaves      = 44 // covers up to histMin·2^44 ≈ 1.8e7 s
	numBuckets       = 2 + histOctaves*bucketsPerOctave
)

// Histogram is a streaming log-bucketed histogram over non-negative
// values (durations in seconds, bandwidths in GB/s). It records exact
// count/sum/min/max plus bucket counts from which quantiles are
// estimated to within one bucket's relative width.
type Histogram struct {
	count    uint64
	sum      float64
	min, max float64
	buckets  [numBuckets]uint64
}

// bucketIndex maps a value to its bucket. NaN and negatives land in the
// underflow bucket (the simulators never produce them; losing them to
// bucket 0 keeps the hot path branch-free).
func bucketIndex(v float64) int {
	if !(v >= histMin) {
		return 0
	}
	i := 1 + int(bucketsPerOctave*math.Log2(v/histMin))
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// bucketLo returns bucket i's lower bound (0 for the underflow bucket).
func bucketLo(i int) float64 {
	if i <= 0 {
		return 0
	}
	return histMin * math.Exp2(float64(i-1)/bucketsPerOctave)
}

// bucketHi returns bucket i's upper bound.
func bucketHi(i int) float64 {
	if i >= numBuckets-1 {
		return math.Inf(1)
	}
	return histMin * math.Exp2(float64(i)/bucketsPerOctave)
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.count++
	h.sum += v
	h.buckets[bucketIndex(v)]++
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Registry holds one simulation run's instruments, keyed by name. The
// accessors are idempotent (same name → same handle) and nil-safe: on a
// nil registry they return nil handles whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Names returns every instrument name in the registry, sorted (for tests
// and debugging; snapshots carry the data).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
