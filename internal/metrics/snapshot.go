package metrics

import (
	"encoding/json"
	"math"
	"os"
	"sort"
	"sync"
)

// GaugeStat is a gauge's snapshot: the time integral of the tracked value
// over the observed span, plus exact extrema. Merging sums integrals and
// spans, so the merged Mean stays the correct time-weighted average
// across runs.
type GaugeStat struct {
	// Integral is ∫value·dt over the observed span, in value·seconds.
	Integral float64 `json:"integral"`
	// Seconds is the observed span (time between first and last Set).
	Seconds float64 `json:"seconds"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	// Last is the value at snapshot time. After a merge it is the last
	// merged shard's value (shards merge in seed order, so it remains
	// deterministic, but only per-run snapshots give it physical meaning).
	Last float64 `json:"last"`
}

// Mean returns the time-weighted mean (Last when the span is empty).
func (g GaugeStat) Mean() float64 {
	if g.Seconds <= 0 {
		return g.Last
	}
	return g.Integral / g.Seconds
}

// Bucket is one non-empty histogram bucket, identified by its index in
// the package-wide layout.
type Bucket struct {
	Index int    `json:"i"`
	Count uint64 `json:"n"`
}

// HistStat is a histogram's snapshot: exact count/sum/min/max, the
// non-empty buckets (sparse, ascending index), and quantiles estimated
// from them. P50/P95/P99 are derived fields recomputed on merge; they are
// serialized so downstream consumers (BENCH_*.json comparisons) need not
// know the bucket layout.
type HistStat struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the exact arithmetic mean of the observations.
func (h HistStat) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) from the buckets: the
// geometric midpoint of the bucket holding the target rank, clamped to
// the exact observed [Min, Max].
func (h HistStat) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= target {
			lo, hi := bucketLo(b.Index), bucketHi(b.Index)
			var est float64
			switch {
			case b.Index == 0:
				est = h.Min
			case math.IsInf(hi, 1):
				est = h.Max
			default:
				est = math.Sqrt(lo * hi)
			}
			return math.Min(math.Max(est, h.Min), h.Max)
		}
	}
	return h.Max
}

// refreshQuantiles recomputes the derived P50/P95/P99 fields.
func (h *HistStat) refreshQuantiles() {
	h.P50 = h.Quantile(0.50)
	h.P95 = h.Quantile(0.95)
	h.P99 = h.Quantile(0.99)
}

// merge folds o into h bucket-for-bucket.
func (h *HistStat) merge(o HistStat) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 {
		h.Min, h.Max = o.Min, o.Max
	} else {
		h.Min = math.Min(h.Min, o.Min)
		h.Max = math.Max(h.Max, o.Max)
	}
	h.Count += o.Count
	h.Sum += o.Sum
	merged := make(map[int]uint64, len(h.Buckets)+len(o.Buckets))
	for _, b := range h.Buckets {
		merged[b.Index] += b.Count
	}
	for _, b := range o.Buckets {
		merged[b.Index] += b.Count
	}
	h.Buckets = h.Buckets[:0]
	for i, n := range merged {
		h.Buckets = append(h.Buckets, Bucket{Index: i, Count: n})
	}
	sort.Slice(h.Buckets, func(i, j int) bool { return h.Buckets[i].Index < h.Buckets[j].Index })
	h.refreshQuantiles()
}

// Snapshot is a registry's state frozen at a point in simulation time:
// plain data, JSON-serializable, and mergeable across runs (all
// histograms share the package bucket layout, so merging shard snapshots
// is exact — a property test guards this).
type Snapshot struct {
	Counters   map[string]float64   `json:"counters,omitempty"`
	Gauges     map[string]GaugeStat `json:"gauges,omitempty"`
	Histograms map[string]HistStat  `json:"histograms,omitempty"`
}

// Snapshot freezes the registry at simulation time now: gauge integrals
// are extended to now (a gauge last set at t < now is worth its last
// value for the remaining now−t). The registry remains usable. Returns
// an empty snapshot for a nil registry.
func (r *Registry) Snapshot(now float64) *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]float64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.n
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]GaugeStat, len(r.gauges))
		for name, g := range r.gauges {
			st := GaugeStat{Integral: g.integral, Seconds: g.dur, Min: g.min, Max: g.max, Last: g.last}
			if g.set && now > g.lastT {
				st.Integral += (now - g.lastT) * g.last
				st.Seconds += now - g.lastT
			}
			s.Gauges[name] = st
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistStat, len(r.hists))
		for name, h := range r.hists {
			st := HistStat{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
			for i, n := range h.buckets {
				if n > 0 {
					st.Buckets = append(st.Buckets, Bucket{Index: i, Count: n})
				}
			}
			st.refreshQuantiles()
			s.Histograms[name] = st
		}
	}
	return s
}

// Merge folds o into s. Metrics present in only one side are kept as-is;
// shared names are combined (counters add, gauge integrals and spans
// add, histogram buckets add). Safe with a nil or empty o.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	for name, v := range o.Counters {
		if s.Counters == nil {
			s.Counters = make(map[string]float64, len(o.Counters))
		}
		s.Counters[name] += v
	}
	for name, og := range o.Gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]GaugeStat, len(o.Gauges))
		}
		g, ok := s.Gauges[name]
		if !ok {
			s.Gauges[name] = og
			continue
		}
		g.Integral += og.Integral
		g.Seconds += og.Seconds
		g.Min = math.Min(g.Min, og.Min)
		g.Max = math.Max(g.Max, og.Max)
		g.Last = og.Last
		s.Gauges[name] = g
	}
	for name, oh := range o.Histograms {
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistStat, len(o.Histograms))
		}
		h := s.Histograms[name]
		h.merge(oh)
		s.Histograms[name] = h
	}
}

// Empty reports whether the snapshot holds no metrics at all.
func (s *Snapshot) Empty() bool {
	return s == nil || (len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0)
}

// WriteJSON writes the snapshot to path as indented JSON.
func (s *Snapshot) WriteJSON(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Collector accumulates snapshots from many runs or configurations into
// one merged snapshot. Unlike Registry it is safe for concurrent use:
// merging happens off the simulation hot path, where a mutex is cheap.
type Collector struct {
	mu   sync.Mutex
	snap Snapshot
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add merges one snapshot into the collector. No-op on a nil collector.
func (c *Collector) Add(s *Snapshot) {
	if c == nil || s == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snap.Merge(s)
}

// Snapshot returns a copy of the merged state collected so far.
func (c *Collector) Snapshot() *Snapshot {
	if c == nil {
		return &Snapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := &Snapshot{}
	out.Merge(&c.snap)
	return out
}
