// Package tablefmt renders the experiment results as terminal tables, bar
// charts, and heat maps — the presentation layer for the paper's tables
// and figures. Output is plain ASCII so it diffs cleanly and survives any
// terminal.
package tablefmt

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows and renders with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered
// with %v except float64, which uses %.3g... callers needing full control
// should format and use AddRow.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Bar renders a horizontal bar of the given value scaled so that maxValue
// occupies width runes. Negative values render empty.
func Bar(value, maxValue float64, width int) string {
	if maxValue <= 0 || value <= 0 || width <= 0 {
		return ""
	}
	n := int(math.Round(value / maxValue * float64(width)))
	if n > width {
		n = width
	}
	return strings.Repeat("█", n)
}

// StackedBar renders segments (e.g. checkpoint/recompute/recovery) with
// distinct fill runes, scaled so maxValue fills width.
func StackedBar(segments []float64, maxValue float64, width int) string {
	if maxValue <= 0 || width <= 0 {
		return ""
	}
	fills := []rune{'█', '▒', '░'} // checkpoint / recompute / recovery
	var b strings.Builder
	for i, s := range segments {
		if s <= 0 {
			continue
		}
		n := int(math.Round(s / maxValue * float64(width)))
		fill := fills[i%len(fills)]
		for j := 0; j < n; j++ {
			b.WriteRune(fill)
		}
	}
	out := b.String()
	if len([]rune(out)) > width {
		out = string([]rune(out)[:width])
	}
	return out
}

// HeatCell maps a value in [lo, hi] to a shaded rune, for the Fig. 2c
// style heat map.
func HeatCell(value, lo, hi float64) string {
	shades := []string{" ", "░", "▒", "▓", "█"}
	if hi <= lo {
		return shades[0]
	}
	f := (value - lo) / (hi - lo)
	idx := int(f * float64(len(shades)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(shades) {
		idx = len(shades) - 1
	}
	return shades[idx]
}

// Percent formats a percentage with one decimal.
func Percent(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// Hours formats a duration given in seconds as hours with two decimals.
func Hours(seconds float64) string { return fmt.Sprintf("%.2fh", seconds/3600) }
