package tablefmt

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("x", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	// All rows align: the value column starts at the same offset.
	if strings.Index(lines[0], "value") != strings.Index(lines[3], "22") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("only")
	if !strings.Contains(tb.String(), "only") {
		t.Fatal("short row lost")
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRowf("x", 3.14159, 42)
	out := tb.String()
	for _, want := range []string{"x", "3.142", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); len([]rune(got)) != 5 {
		t.Fatalf("Bar(5,10,10) = %q", got)
	}
	if Bar(20, 10, 10) != strings.Repeat("█", 10) {
		t.Fatal("Bar must clamp to width")
	}
	if Bar(-1, 10, 10) != "" || Bar(1, 0, 10) != "" {
		t.Fatal("degenerate bars must be empty")
	}
}

func TestStackedBar(t *testing.T) {
	got := StackedBar([]float64{5, 5}, 10, 10)
	if n := len([]rune(got)); n != 10 {
		t.Fatalf("stacked bar length %d, want 10 (%q)", n, got)
	}
	// Two distinct fills must appear.
	if !strings.ContainsRune(got, '█') || !strings.ContainsRune(got, '▒') {
		t.Fatalf("stacked bar missing segment fills: %q", got)
	}
	if got := StackedBar([]float64{100}, 10, 8); len([]rune(got)) != 8 {
		t.Fatal("stacked bar must clamp to width")
	}
}

func TestHeatCell(t *testing.T) {
	if HeatCell(0, 0, 1) != " " {
		t.Fatal("minimum must map to the lightest shade")
	}
	if HeatCell(1, 0, 1) != "█" {
		t.Fatal("maximum must map to the darkest shade")
	}
	if HeatCell(5, 3, 3) != " " {
		t.Fatal("degenerate range must not panic")
	}
	if HeatCell(-10, 0, 1) != " " || HeatCell(10, 0, 1) != "█" {
		t.Fatal("out-of-range values must clamp")
	}
}

func TestPercentAndHours(t *testing.T) {
	if Percent(53.25) != "53.2%" && Percent(53.25) != "53.3%" {
		t.Fatalf("Percent = %q", Percent(53.25))
	}
	if Hours(7200) != "2.00h" {
		t.Fatalf("Hours = %q", Hours(7200))
	}
}
