package globalview

import (
	"math"
	"testing"

	"pckpt/internal/iomodel"
)

func twoJobs() Config {
	return Config{
		Jobs: []Job{
			{Name: "A", Nodes: 505, PerNodeGB: 40},
			{Name: "B", Nodes: 505, PerNodeGB: 40},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := twoJobs().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{},
		{Jobs: []Job{{Name: "", Nodes: 2, PerNodeGB: 1}}},
		{Jobs: []Job{{Name: "x", Nodes: 1, PerNodeGB: 1}}},
		{Jobs: []Job{{Name: "x", Nodes: 2, PerNodeGB: 0}}},
		{Jobs: []Job{{Name: "x", Nodes: 2, PerNodeGB: 1}}, Mode: 7},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestModeString(t *testing.T) {
	if PerJob.String() != "per-job" || Global.String() != "global" {
		t.Fatal("mode strings wrong")
	}
}

func TestSingleEpisodeMatchesClosedForm(t *testing.T) {
	// With one episode and no competition, both modes give the textbook
	// timing: vulnerable commit at the uncontended single-node write.
	io := iomodel.New(iomodel.DefaultSummit())
	for _, mode := range []Mode{PerJob, Global} {
		cfg := twoJobs()
		cfg.Mode = mode
		res := Run(cfg, []Prediction{{Job: 0, Node: 3, At: 0, Lead: 100}})
		if len(res.Outcomes) != 1 {
			t.Fatalf("%v: %d outcomes", mode, len(res.Outcomes))
		}
		o := res.Outcomes[0]
		want := io.SingleNodePFSWriteTime(40)
		if math.Abs(o.CommitAt-want) > 1e-6 {
			t.Fatalf("%v: commit at %.4f, want %.4f", mode, o.CommitAt, want)
		}
		if !o.Mitigated {
			t.Fatalf("%v: uncontended episode missed its deadline", mode)
		}
		wantEnd := want + io.PFSWriteTime(504, 40)
		if math.Abs(o.EpisodeEnd-wantEnd) > 1e-6 {
			t.Fatalf("%v: episode end %.4f, want %.4f", mode, o.EpisodeEnd, wantEnd)
		}
	}
}

// overlapWorkload: job B's episode starts first; its phase-2 bulk flood is
// in full swing when job A's short-lead vulnerable node arrives.
func overlapWorkload(io *iomodel.Model) []Prediction {
	phase1 := io.SingleNodePFSWriteTime(40)
	tightLead := io.SingleNodePFSWriteTime(40) * 1.5
	return []Prediction{
		{Job: 1, Node: 9, At: 0, Lead: 1000},
		{Job: 0, Node: 2, At: phase1 * 2, Lead: tightLead},
	}
}

func TestGlobalViewRescuesTightDeadline(t *testing.T) {
	io := iomodel.New(iomodel.DefaultSummit())
	preds := overlapWorkload(io)

	perJob := twoJobs()
	perJob.Mode = PerJob
	rPer := Run(perJob, preds)

	global := twoJobs()
	global.Mode = Global
	rGlob := Run(global, preds)

	// Under per-job coordination, job A's vulnerable write shares the
	// PFS with job B's 504-node flood and misses its tight deadline.
	var perA, globA Outcome
	for _, o := range rPer.Outcomes {
		if o.Job == 0 {
			perA = o
		}
	}
	for _, o := range rGlob.Outcomes {
		if o.Job == 0 {
			globA = o
		}
	}
	if perA.Mitigated {
		t.Fatalf("per-job: tight deadline unexpectedly met (commit %.2f, deadline %.2f)", perA.CommitAt, perA.Deadline)
	}
	if !globA.Mitigated {
		t.Fatalf("global: tight deadline missed (commit %.2f, deadline %.2f)", globA.CommitAt, globA.Deadline)
	}
	if rGlob.FTRatio() <= rPer.FTRatio() {
		t.Fatalf("global FT %.2f not above per-job %.2f", rGlob.FTRatio(), rPer.FTRatio())
	}
	// The global vulnerable commit runs at full single-writer speed.
	soloDur := io.SingleNodePFSWriteTime(40)
	globDur := globA.CommitAt - preds[1].At
	if math.Abs(globDur-soloDur) > 1e-6 {
		t.Fatalf("global commit took %.4f, want uncontended %.4f", globDur, soloDur)
	}
	// The per-job one was measurably slower (bandwidth shared).
	perDur := perA.CommitAt - preds[1].At
	if perDur < soloDur*1.5 {
		t.Fatalf("per-job commit %.4f not slowed vs solo %.4f", perDur, soloDur)
	}
}

func TestPreemptionPausesAndResumesBulk(t *testing.T) {
	io := iomodel.New(iomodel.DefaultSummit())
	cfg := twoJobs()
	cfg.Mode = Global
	preds := overlapWorkload(io)
	res := Run(cfg, preds)
	// Job B's episode must still complete (the suspended bulk resumes),
	// and its total time exceeds the uncontended episode by at least the
	// preemption window.
	var b Outcome
	for _, o := range res.Outcomes {
		if o.Job == 1 {
			b = o
		}
	}
	uncontended := io.SingleNodePFSWriteTime(40) + io.PFSWriteTime(504, 40)
	if b.EpisodeEnd <= uncontended {
		t.Fatalf("preempted episode finished in %.2f, faster than uncontended %.2f", b.EpisodeEnd, uncontended)
	}
	if !b.Mitigated {
		t.Fatal("job B's ample-lead episode must still be mitigated")
	}
}

func TestPeakLaneSharers(t *testing.T) {
	io := iomodel.New(iomodel.DefaultSummit())
	preds := overlapWorkload(io)
	perJob := twoJobs()
	rPer := Run(perJob, preds)
	if rPer.PeakLaneSharers < 2 {
		t.Fatalf("per-job mode never overlapped writers (peak %d)", rPer.PeakLaneSharers)
	}
}

func TestSameJobVulnerableCommitsSerializeByPriority(t *testing.T) {
	// Two same-job vulnerable commits go through the job's priority
	// queue back to back; their bulk phases serialize after them.
	io := iomodel.New(iomodel.DefaultSummit())
	solo := io.SingleNodePFSWriteTime(40)
	bulk := io.PFSWriteTime(504, 40)
	for _, mode := range []Mode{PerJob, Global} {
		cfg := twoJobs()
		cfg.Mode = mode
		res := Run(cfg, []Prediction{
			{Job: 0, Node: 1, At: 0, Lead: 1e6},
			{Job: 0, Node: 2, At: 0.5, Lead: 1e6},
		})
		if len(res.Outcomes) != 2 {
			t.Fatalf("%v: %d outcomes", mode, len(res.Outcomes))
		}
		first, second := res.Outcomes[0], res.Outcomes[1]
		// The second vulnerable commit follows the first directly (it
		// does NOT wait for the first episode's bulk phase).
		if second.CommitAt > first.CommitAt+solo+1 {
			t.Fatalf("%v: second commit at %.2f waited past back-to-back %.2f", mode, second.CommitAt, first.CommitAt+solo)
		}
		// Both bulk phases complete, serialized per job: the later
		// episode ends at least one uncontended bulk after the earlier.
		if second.EpisodeEnd < first.EpisodeEnd+0.5*bulk {
			t.Fatalf("%v: bulk phases overlapped within one job (%.2f vs %.2f)", mode, second.EpisodeEnd, first.EpisodeEnd)
		}
	}
}

func TestConservationOfBytes(t *testing.T) {
	// Processor sharing must not lose work: under heavy overlap, every
	// episode eventually completes with all bytes written.
	cfg := Config{
		Jobs: []Job{
			{Name: "A", Nodes: 64, PerNodeGB: 20},
			{Name: "B", Nodes: 128, PerNodeGB: 10},
			{Name: "C", Nodes: 32, PerNodeGB: 40},
		},
		Mode: PerJob,
	}
	var preds []Prediction
	for i := 0; i < 9; i++ {
		preds = append(preds, Prediction{Job: i % 3, Node: i, At: float64(i), Lead: 50})
	}
	res := Run(cfg, preds)
	if len(res.Outcomes) != len(preds) {
		t.Fatalf("%d outcomes, want %d", len(res.Outcomes), len(preds))
	}
	for _, o := range res.Outcomes {
		if o.EpisodeEnd <= o.CommitAt || o.CommitAt <= 0 {
			t.Fatalf("inconsistent episode times: %+v", o)
		}
	}
	episodes := 0
	for _, j := range res.Jobs {
		episodes += j.Episodes
	}
	if episodes != len(preds) {
		t.Fatalf("job episode counts sum to %d, want %d", episodes, len(preds))
	}
}

func TestDeterminism(t *testing.T) {
	cfg := twoJobs()
	cfg.Mode = Global
	io := iomodel.New(iomodel.DefaultSummit())
	preds := overlapWorkload(io)
	a := Run(cfg, preds)
	b := Run(cfg, preds)
	if len(a.Outcomes) != len(b.Outcomes) {
		t.Fatal("nondeterministic outcome count")
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			t.Fatalf("outcome %d differs between identical runs", i)
		}
	}
}

func TestRunPanicsOnBadPrediction(t *testing.T) {
	cases := [][]Prediction{
		{{Job: 5, At: 0, Lead: 1}},
		{{Job: 0, At: -1, Lead: 1}},
		{{Job: 0, At: 0, Lead: -1}},
	}
	for i, preds := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			Run(twoJobs(), preds)
		}()
	}
}

func TestFTRatioEmpty(t *testing.T) {
	r := &Result{}
	if r.FTRatio() != 0 {
		t.Fatal("empty result FT ratio must be 0")
	}
}
