// Package globalview implements the extension the paper marks as beyond
// its scope (Sec. VII, "Feasibility"): p-ckpt with a *global system
// view*. The published protocol coordinates the processes of a single
// application; when several applications share the machine, one job's
// vulnerable node can end up racing its failure deadline while another
// job's phase-2 bulk commit (hundreds of healthy nodes writing at once)
// floods the PFS. Per-job coordination cannot see that conflict.
//
// Two coordination modes run identical workloads of p-ckpt episodes:
//
//   - PerJob: each application runs the published protocol in isolation.
//     Its vulnerable node writes "uncontended" — but only job-locally:
//     on the shared PFS it processor-shares bandwidth with whatever
//     other jobs are doing, including their phase-2 floods.
//   - Global: a machine-wide view orders vulnerable commits across jobs
//     by lead time AND suspends any in-flight bulk phase while a
//     vulnerable node is writing, restoring the contention-free critical
//     path the protocol's deadline math assumes.
//
// The headline output is the global fault-tolerance ratio under bursty,
// overlapping episodes: the global view mitigates strictly more failures
// once bursts overlap across jobs.
package globalview

import (
	"fmt"
	"sort"

	"pckpt/internal/iomodel"
	"pckpt/internal/queue"
	"pckpt/internal/sim"
)

// Job describes one application sharing the machine.
type Job struct {
	// Name identifies the job in results.
	Name string
	// Nodes is the job's node count (phase 2 writes Nodes−1 at once).
	Nodes int
	// PerNodeGB is each node's checkpoint footprint.
	PerNodeGB float64
}

// Mode selects the coordination strategy.
type Mode uint8

const (
	// PerJob: independent per-application protocol instances.
	PerJob Mode = iota
	// Global: machine-wide vulnerable-first coordination.
	Global
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Global {
		return "global"
	}
	return "per-job"
}

// Config parameterises a run.
type Config struct {
	// Jobs are the co-resident applications.
	Jobs []Job
	// IO prices the writes; nil selects the default Summit model.
	IO *iomodel.Model
	// Mode selects per-job or global coordination.
	Mode Mode
}

func (c Config) withDefaults() Config {
	if c.IO == nil {
		c.IO = iomodel.New(iomodel.DefaultSummit())
	}
	return c
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	if len(c.Jobs) == 0 {
		return fmt.Errorf("globalview: no jobs")
	}
	for _, j := range c.Jobs {
		if j.Name == "" || j.PerNodeGB <= 0 || j.Nodes < 2 {
			return fmt.Errorf("globalview: invalid job %+v", j)
		}
	}
	if c.Mode > Global {
		return fmt.Errorf("globalview: invalid mode %d", c.Mode)
	}
	return nil
}

// Prediction announces a coming failure on one job's node, triggering a
// full p-ckpt episode for that job (phase 1: the vulnerable node's
// prioritized write; phase 2: the job's remaining nodes commit in bulk).
type Prediction struct {
	// Job indexes into Config.Jobs.
	Job int
	// Node is the job-local node index (diagnostic only).
	Node int
	// At is when the prediction arrives; Lead the time to failure.
	At, Lead float64
}

// Outcome records one episode's fate.
type Outcome struct {
	Job, Node int
	// Deadline is the predicted failure time; CommitAt when the
	// vulnerable node's data reached the PFS; EpisodeEnd when phase 2
	// finished.
	Deadline, CommitAt, EpisodeEnd float64
	// Mitigated reports whether the vulnerable commit beat the deadline.
	Mitigated bool
}

// JobResult aggregates per job.
type JobResult struct {
	Name                string
	Episodes, Mitigated int
}

// Result is one run's outcome.
type Result struct {
	Mode Mode
	// Outcomes lists every episode in vulnerable-commit order.
	Outcomes []Outcome
	// Jobs aggregates per application.
	Jobs []JobResult
	// PeakLaneSharers is the largest number of node-groups that shared
	// the PFS simultaneously (1 means perfectly serialized).
	PeakLaneSharers int
}

// FTRatio returns mitigated / total across all jobs.
func (r *Result) FTRatio() float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	n := 0
	for _, o := range r.Outcomes {
		if o.Mitigated {
			n++
		}
	}
	return float64(n) / float64(len(r.Outcomes))
}

// writer is one node-group pushing data through the shared PFS.
type writer struct {
	// remainingGB is the group's total outstanding volume (nodes ×
	// per-node footprint).
	remainingGB float64
	perNodeGB   float64
	nodes       int
	job         int
	vulnerable  bool
}

// lane is the shared PFS path as a processor-sharing resource with a
// vulnerable-first preemption rule whose scope depends on the mode: a
// per-job protocol instance pauses only its own bulk phase while its own
// vulnerable node writes (it cannot see other jobs), whereas the global
// view pauses every bulk phase machine-wide. Bandwidth splits across
// active groups in proportion to their node counts, per the
// aggregate-bandwidth curve for the total active node count.
type lane struct {
	env       *sim.Env
	io        *iomodel.Model
	globalCut bool // Global mode: any vulnerable writer suspends all bulk
	writers   map[*writer]*sim.Proc
	resume    *sim.Event // re-armed: fires when a vulnerable writer leaves
	peak      int
}

func newLane(env *sim.Env, io *iomodel.Model, globalCut bool) *lane {
	return &lane{env: env, io: io, globalCut: globalCut, writers: make(map[*writer]*sim.Proc), resume: sim.NewEvent(env)}
}

// vulnActive reports whether a vulnerable writer is in flight — any at
// all, or one belonging to the given job (job ≥ 0).
func (l *lane) vulnActive(job int) bool {
	for w := range l.writers {
		if w.vulnerable && (job < 0 || w.job == job) {
			return true
		}
	}
	return false
}

// suspended reports whether w must pause: a bulk writer yields to any
// vulnerable writer machine-wide under the global view, and to its own
// job's vulnerable writers always (the published protocol's phase order).
func (l *lane) suspended(w *writer) bool {
	if w.vulnerable {
		return false
	}
	if l.globalCut {
		return l.vulnActive(-1)
	}
	return l.vulnActive(w.job)
}

// activeNodes sums the node counts of all non-suspended writers.
func (l *lane) activeNodes() int {
	n := 0
	for w := range l.writers {
		if !l.suspended(w) {
			n += w.nodes
		}
	}
	return n
}

// rate returns w's current bandwidth share in GB/s (node-proportional
// split of the aggregate curve at the active node count).
func (l *lane) rate(w *writer) float64 {
	total := l.activeNodes()
	return l.io.AggregateBandwidth(total, w.perNodeGB) * float64(w.nodes) / float64(total)
}

// write pushes perNodeGB × nodes through the lane and returns when done.
func (l *lane) write(p *sim.Proc, job, nodes int, perNodeGB float64, vulnerable bool) {
	w := &writer{remainingGB: perNodeGB * float64(nodes), perNodeGB: perNodeGB, nodes: nodes, job: job, vulnerable: vulnerable}
	l.writers[w] = p
	l.rerateOthers(w)
	if sharers := len(l.writers); sharers > l.peak {
		l.peak = sharers
	}
	defer func() {
		delete(l.writers, w)
		if vulnerable && l.resume.Waiters() > 0 {
			// A vulnerable writer left: wake the suspended bulk phases to
			// re-check their gate, then re-arm for the next round.
			l.resume.Trigger()
			l.resume = sim.NewEvent(l.env)
		}
		l.rerateOthers(w)
	}()
	for w.remainingGB > 1e-9 {
		if l.suspended(w) {
			// Preempted: wait for the vulnerable traffic to drain. Any
			// interrupt (a re-rate) just re-checks the condition.
			l.waitResume(p)
			continue
		}
		rate := l.rate(w)
		start := l.env.Now()
		err := p.Wait(w.remainingGB / rate)
		w.remainingGB -= (l.env.Now() - start) * rate
		if err == nil {
			return
		}
	}
}

func (l *lane) waitResume(p *sim.Proc) {
	// The resume event is replaced after each Trigger, so capture it.
	ev := l.resume
	_ = p.WaitEvent(ev) // interrupts mean "membership changed": re-check
}

// rerateOthers interrupts every other writer blocked mid-transfer so it
// recomputes its share under the new membership.
func (l *lane) rerateOthers(except *writer) {
	for w, p := range l.writers {
		if w != except {
			p.Interrupt("re-rate")
		}
	}
}

// arbiter serializes turns in deadline order, one holder at a time.
type arbiter struct {
	env  *sim.Env
	q    queue.PQ[*sim.Event]
	busy bool
}

// waitTurn blocks until the caller holds the grant.
func (a *arbiter) waitTurn(p *sim.Proc, deadline float64) {
	if !a.busy {
		a.busy = true
		return
	}
	turn := sim.NewEvent(a.env)
	a.q.Push(deadline, turn)
	if err := p.WaitEvent(turn); err != nil {
		panic(fmt.Sprintf("globalview: turn wait interrupted: %v", err))
	}
}

// release hands the grant to the earliest-deadline waiter, if any.
func (a *arbiter) release() {
	if a.q.Len() == 0 {
		a.busy = false
		return
	}
	_, turn := a.q.Pop()
	turn.Trigger()
}

// Run simulates one prediction workload under the configured mode.
func Run(cfg Config, preds []Prediction) *Result {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	for _, pr := range preds {
		if pr.Job < 0 || pr.Job >= len(cfg.Jobs) {
			panic(fmt.Sprintf("globalview: prediction for unknown job %d", pr.Job))
		}
		if pr.At < 0 || pr.Lead < 0 {
			panic("globalview: negative prediction time or lead")
		}
	}
	env := sim.NewEnv()
	res := &Result{Mode: cfg.Mode, Jobs: make([]JobResult, len(cfg.Jobs))}
	for i, j := range cfg.Jobs {
		res.Jobs[i].Name = j.Name
	}
	ln := newLane(env, cfg.IO, cfg.Mode == Global)

	// Vulnerable commits go through a lead-time priority arbiter — one
	// per job under PerJob (the published protocol's node-local queue),
	// one machine-wide under Global. Phase-2 bulk commits serialize per
	// job in both modes (a job cannot run two collective commits at
	// once), but never block another episode's vulnerable write: a node
	// predicted mid-episode joins phase 1 immediately, as in Fig. 5.
	bulkArbs := make([]*arbiter, len(cfg.Jobs))
	for i := range bulkArbs {
		bulkArbs[i] = &arbiter{env: env}
	}
	vulnArbs := make([]*arbiter, len(cfg.Jobs))
	if cfg.Mode == Global {
		shared := &arbiter{env: env}
		for i := range vulnArbs {
			vulnArbs[i] = shared
		}
	} else {
		for i := range vulnArbs {
			vulnArbs[i] = &arbiter{env: env}
		}
	}

	for i, pr := range preds {
		pr := pr
		env.SpawnAt(pr.At, fmt.Sprintf("episode-%d", i), func(p *sim.Proc) {
			job := cfg.Jobs[pr.Job]
			deadline := env.Now() + pr.Lead
			// Phase 1: the vulnerable node's prioritized commit, ordered
			// by lead time within its arbiter's scope.
			vulnArbs[pr.Job].waitTurn(p, deadline)
			ln.write(p, pr.Job, 1, job.PerNodeGB, true)
			commit := env.Now()
			vulnArbs[pr.Job].release()
			// Phase 2: the job's healthy nodes commit in bulk.
			bulkArbs[pr.Job].waitTurn(p, deadline)
			ln.write(p, pr.Job, job.Nodes-1, job.PerNodeGB, false)
			bulkArbs[pr.Job].release()

			res.Jobs[pr.Job].Episodes++
			o := Outcome{Job: pr.Job, Node: pr.Node, Deadline: deadline, CommitAt: commit,
				EpisodeEnd: env.Now(), Mitigated: commit <= deadline}
			if o.Mitigated {
				res.Jobs[pr.Job].Mitigated++
			}
			res.Outcomes = append(res.Outcomes, o)
		})
	}
	env.RunAll()
	env.Release()
	res.PeakLaneSharers = ln.peak
	sort.SliceStable(res.Outcomes, func(i, j int) bool { return res.Outcomes[i].CommitAt < res.Outcomes[j].CommitAt })
	return res
}
