// Package iomodel implements the I/O performance model of Sec. IV of the
// paper: the bandwidth every checkpoint and recovery operation in the C/R
// models is priced against.
//
// The paper measured Summit's GPFS with two experiments — a single-node
// task-count sweep (its Fig. 2b, showing 8 MPI tasks per node maximise
// bandwidth) and a weak-scaling sweep producing a performance matrix of
// aggregate bandwidth over (node count × per-node transfer size) (its
// Fig. 2c). The simulation then *only* consults that matrix. We reproduce
// the same two-stage structure: a parametric surface calibrated to the
// numbers the paper reports stands in for the measurement campaign, a
// discrete matrix is sampled from it exactly as a measurement would be
// recorded, and all queries go through bilinear interpolation over the
// matrix in log2 space — the same code path a measured matrix would use.
//
// Units: sizes are GB (1e9 bytes), bandwidths GB/s, times seconds.
package iomodel

import (
	"fmt"
	"math"
)

// Config holds the platform constants. DefaultSummit returns the values
// from the paper (Summit compute node + GPFS + NVMe burst buffer).
type Config struct {
	// BBWriteGBs and BBReadGBs are the per-node burst-buffer bandwidths
	// (2.1 GB/s write, 5.5 GB/s read on Summit's 1.6 TB NVMe).
	BBWriteGBs float64
	BBReadGBs  float64
	// NodePFSPeakGBs is the maximum PFS bandwidth a single compute node
	// reaches with the optimal task count (~13.5 GB/s on Summit; the
	// paper quotes 13–13.5 GB/s single-node PFS write).
	NodePFSPeakGBs float64
	// AggregatePFSCeilingGBs is the file-system-wide bandwidth ceiling
	// (2.5 TB/s aggregate on Summit per the CORAL evaluation).
	AggregatePFSCeilingGBs float64
	// NetworkGBs is the inter-node link bandwidth used by live migration
	// (12.5 GB/s on Summit's fat-tree EDR infiniband).
	NetworkGBs float64
	// OptimalTasks is the per-node MPI task count at which single-node
	// PFS bandwidth peaks (8 on Summit).
	OptimalTasks int
	// MaxTasks is the number of physical cores per node (42 on Summit).
	MaxTasks int
	// HalfSaturationGB is the per-node transfer size at which bandwidth
	// reaches half of its asymptote; small transfers are latency-bound.
	HalfSaturationGB float64
	// DRAMSizeGB and BBSizeGB bound checkpoint and migration footprints
	// (512 GB DRAM, 1600 GB burst buffer per Summit node).
	DRAMSizeGB float64
	BBSizeGB   float64
	// DrainConcurrency limits how many nodes bleed checkpoints from BB to
	// PFS at once during the asynchronous drain (Sec. II).
	DrainConcurrency int
}

// DefaultSummit returns the Summit-calibrated configuration used by every
// experiment in the paper.
func DefaultSummit() Config {
	return Config{
		BBWriteGBs:             2.1,
		BBReadGBs:              5.5,
		NodePFSPeakGBs:         13.5,
		AggregatePFSCeilingGBs: 2500,
		NetworkGBs:             12.5,
		OptimalTasks:           8,
		MaxTasks:               42,
		HalfSaturationGB:       0.25,
		DRAMSizeGB:             512,
		BBSizeGB:               1600,
		// High enough that the asynchronous drain window stays small
		// relative to the OCI, matching the paper's observation that the
		// drain window is negligible on Summit's PFS.
		DrainConcurrency: 512,
	}
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.BBWriteGBs <= 0 || c.BBReadGBs <= 0:
		return fmt.Errorf("iomodel: burst buffer bandwidths must be positive")
	case c.NodePFSPeakGBs <= 0 || c.AggregatePFSCeilingGBs <= 0:
		return fmt.Errorf("iomodel: PFS bandwidths must be positive")
	case c.NetworkGBs <= 0:
		return fmt.Errorf("iomodel: network bandwidth must be positive")
	case c.OptimalTasks <= 0 || c.MaxTasks < c.OptimalTasks:
		return fmt.Errorf("iomodel: task counts invalid (optimal=%d, max=%d)", c.OptimalTasks, c.MaxTasks)
	case c.HalfSaturationGB <= 0:
		return fmt.Errorf("iomodel: half-saturation size must be positive")
	case c.DRAMSizeGB <= 0 || c.BBSizeGB <= 0:
		return fmt.Errorf("iomodel: memory sizes must be positive")
	case c.DrainConcurrency <= 0:
		return fmt.Errorf("iomodel: drain concurrency must be positive")
	}
	return nil
}

// Model prices I/O operations. Construct with New.
type Model struct {
	cfg Config
	mx  *Matrix
}

// New builds a Model: it samples the parametric surface into the discrete
// performance matrix and keeps the matrix for all queries. It panics on an
// invalid configuration (construction happens at program start; failing
// loudly there is the useful behaviour).
func New(cfg Config) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Model{cfg: cfg}
	m.mx = BuildMatrix(cfg)
	return m
}

// Config returns the platform constants the model was built with.
func (m *Model) Config() Config { return m.cfg }

// Matrix returns the sampled performance matrix (for display tools).
func (m *Model) Matrix() *Matrix { return m.mx }

// sizeFactor models latency-bound small transfers: a saturating ramp that
// reaches 1 asymptotically, 0.5 at HalfSaturationGB.
func sizeFactor(cfg Config, perNodeGB float64) float64 {
	if perNodeGB <= 0 {
		return 0
	}
	return perNodeGB / (perNodeGB + cfg.HalfSaturationGB)
}

// taskFactor models the single-node task-count sweep of Fig. 2b: bandwidth
// climbs roughly linearly to the optimum (8 tasks), then degrades gently
// from file-system client contention toward the core count.
func taskFactor(cfg Config, tasks int) float64 {
	if tasks <= 0 {
		return 0
	}
	opt := float64(cfg.OptimalTasks)
	t := float64(tasks)
	if t <= opt {
		// Diminishing returns on the way up: each extra task adds a bit
		// less, reaching 1.0 exactly at the optimum.
		return math.Sqrt(t/opt)*0.55 + (t/opt)*0.45
	}
	// Past the optimum, contention sheds ~25% of peak by MaxTasks.
	over := (t - opt) / (float64(cfg.MaxTasks) - opt)
	if over > 1 {
		over = 1
	}
	return 1 - 0.25*over
}

// SingleNodeBandwidth returns the aggregate PFS bandwidth one node sees
// when writing transferGB with the given number of tasks (the Fig. 2b
// surface). The 8-task curve at large sizes hits NodePFSPeakGBs.
func (m *Model) SingleNodeBandwidth(tasks int, transferGB float64) float64 {
	return m.cfg.NodePFSPeakGBs * taskFactor(m.cfg, tasks) * sizeFactor(m.cfg, transferGB)
}

// surfaceAggregate is the parametric weak-scaling surface the matrix is
// sampled from: per-node bandwidth at the optimal task count, summed over
// nodes, saturating exponentially at the file-system ceiling.
func surfaceAggregate(cfg Config, nodes int, perNodeGB float64) float64 {
	if nodes <= 0 || perNodeGB <= 0 {
		return 0
	}
	perNode := cfg.NodePFSPeakGBs * sizeFactor(cfg, perNodeGB)
	offered := float64(nodes) * perNode
	c := cfg.AggregatePFSCeilingGBs
	return c * (1 - math.Exp(-offered/c))
}

// AggregateBandwidth returns the job-wide PFS bandwidth for nodes each
// transferring perNodeGB, interpolated from the performance matrix. This
// is the quantity the C/R models divide checkpoint volume by.
func (m *Model) AggregateBandwidth(nodes int, perNodeGB float64) float64 {
	return m.mx.Lookup(nodes, perNodeGB)
}

// PFSWriteTime returns the seconds for nodes to each write perNodeGB to
// the PFS concurrently (a proactive checkpoint or the phase-2 p-ckpt
// commit of the healthy nodes).
func (m *Model) PFSWriteTime(nodes int, perNodeGB float64) float64 {
	if perNodeGB <= 0 || nodes <= 0 {
		return 0
	}
	bw := m.AggregateBandwidth(nodes, perNodeGB)
	return float64(nodes) * perNodeGB / bw
}

// PFSReadTime returns the seconds for nodes to each read perNodeGB from
// the PFS. The paper assumes the same performance matrix for reads
// (writes are fsync-purged; see Sec. IV).
func (m *Model) PFSReadTime(nodes int, perNodeGB float64) float64 {
	return m.PFSWriteTime(nodes, perNodeGB)
}

// Transfer describes one priced collective PFS operation: the volume
// moved, the seconds it takes, and the effective aggregate bandwidth
// actually drawn — the quantity the metrics layer records per write to
// expose PFS contention over a run.
type Transfer struct {
	Nodes    int
	VolumeGB float64
	Seconds  float64
	// GBs is VolumeGB/Seconds: the effective aggregate bandwidth, which
	// sits below the matrix entry whenever the transfer is latency-bound.
	GBs float64
}

// PFSWriteTransfer prices a collective write of perNodeGB per node and
// returns the full transfer description. PFSWriteTime is this function's
// Seconds component.
func (m *Model) PFSWriteTransfer(nodes int, perNodeGB float64) Transfer {
	t := Transfer{Nodes: nodes, VolumeGB: float64(nodes) * perNodeGB}
	t.Seconds = m.PFSWriteTime(nodes, perNodeGB)
	if t.Seconds > 0 {
		t.GBs = t.VolumeGB / t.Seconds
	}
	return t
}

// SingleNodePFSWriteTime returns the seconds for ONE node to write
// perNodeGB to the PFS without contention — the prioritized, low-latency
// critical path a vulnerable node gets under p-ckpt.
func (m *Model) SingleNodePFSWriteTime(perNodeGB float64) float64 {
	if perNodeGB <= 0 {
		return 0
	}
	return perNodeGB / m.AggregateBandwidth(1, perNodeGB)
}

// SingleNodePFSReadTime returns the seconds for one replacement node to
// restore perNodeGB from the PFS during recovery.
func (m *Model) SingleNodePFSReadTime(perNodeGB float64) float64 {
	return m.SingleNodePFSWriteTime(perNodeGB)
}

// BBWriteTime returns the seconds to stage perNodeGB on the node-local
// burst buffer (the blocking part of a periodic checkpoint). Every node
// writes to its own device, so the time is independent of node count.
func (m *Model) BBWriteTime(perNodeGB float64) float64 {
	if perNodeGB <= 0 {
		return 0
	}
	return perNodeGB / m.cfg.BBWriteGBs
}

// BBReadTime returns the seconds to restore perNodeGB from the node-local
// burst buffer during recovery of healthy nodes.
func (m *Model) BBReadTime(perNodeGB float64) float64 {
	if perNodeGB <= 0 {
		return 0
	}
	return perNodeGB / m.cfg.BBReadGBs
}

// NetworkTransferTime returns the seconds to push totalGB over one
// inter-node link — the live-migration path.
func (m *Model) NetworkTransferTime(totalGB float64) float64 {
	if totalGB <= 0 {
		return 0
	}
	return totalGB / m.cfg.NetworkGBs
}

// DrainTime returns the seconds for the asynchronous BB→PFS bleed-off of
// a periodic checkpoint: nodes drain in waves of at most DrainConcurrency
// concurrent transferrers (Sec. II limits concurrent drainers to bound
// PFS contention).
func (m *Model) DrainTime(nodes int, perNodeGB float64) float64 {
	if perNodeGB <= 0 || nodes <= 0 {
		return 0
	}
	conc := m.cfg.DrainConcurrency
	waves := (nodes + conc - 1) / conc
	full := m.PFSWriteTime(conc, perNodeGB)
	t := float64(waves-1) * full
	rem := nodes - (waves-1)*conc
	t += m.PFSWriteTime(rem, perNodeGB)
	// The drain is also bounded by the BB read bandwidth on each node.
	perWaveBBRead := perNodeGB / m.cfg.BBReadGBs
	if minimum := float64(waves) * perWaveBBRead; t < minimum {
		t = minimum
	}
	return t
}
