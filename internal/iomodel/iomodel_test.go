package iomodel

import (
	"math"
	"testing"
	"testing/quick"
)

func newSummit(t testing.TB) *Model {
	t.Helper()
	return New(DefaultSummit())
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := DefaultSummit()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.BBWriteGBs = 0 },
		func(c *Config) { c.BBReadGBs = -1 },
		func(c *Config) { c.NodePFSPeakGBs = 0 },
		func(c *Config) { c.AggregatePFSCeilingGBs = 0 },
		func(c *Config) { c.NetworkGBs = 0 },
		func(c *Config) { c.OptimalTasks = 0 },
		func(c *Config) { c.MaxTasks = c.OptimalTasks - 1 },
		func(c *Config) { c.HalfSaturationGB = 0 },
		func(c *Config) { c.DRAMSizeGB = 0 },
		func(c *Config) { c.BBSizeGB = 0 },
		func(c *Config) { c.DrainConcurrency = 0 },
	}
	for i, mutate := range cases {
		c := DefaultSummit()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	c := DefaultSummit()
	c.NetworkGBs = 0
	New(c)
}

// TestFig2bOptimalTaskCount: the 8-task curve must dominate 1, 4, 16 and
// 42 tasks at a large transfer size, matching the paper's conclusion.
func TestFig2bOptimalTaskCount(t *testing.T) {
	m := newSummit(t)
	const size = 64 // GB
	best := m.SingleNodeBandwidth(8, size)
	for _, tasks := range []int{1, 2, 4, 6, 16, 32, 42} {
		if bw := m.SingleNodeBandwidth(tasks, size); bw >= best {
			t.Errorf("%d tasks reaches %.2f GB/s >= 8-task %.2f GB/s", tasks, bw, best)
		}
	}
	// Peak must land in the paper's 13–13.5 GB/s single-node window.
	if best < 12 || best > 13.5 {
		t.Errorf("8-task peak %.2f GB/s outside [12, 13.5]", best)
	}
}

func TestSingleNodeBandwidthMonotonicInSize(t *testing.T) {
	m := newSummit(t)
	prev := 0.0
	for s := 0.01; s < 512; s *= 2 {
		bw := m.SingleNodeBandwidth(8, s)
		if bw < prev {
			t.Fatalf("single-node bandwidth not monotone at size %.3f", s)
		}
		prev = bw
	}
}

func TestAggregateBandwidthMonotonicInNodes(t *testing.T) {
	m := newSummit(t)
	const size = 32.0
	prev := 0.0
	for n := 1; n <= 4096; n *= 2 {
		bw := m.AggregateBandwidth(n, size)
		if bw < prev-1e-9 {
			t.Fatalf("aggregate bandwidth dropped at %d nodes: %.2f < %.2f", n, bw, prev)
		}
		prev = bw
	}
}

func TestAggregateBandwidthApproachesCeiling(t *testing.T) {
	m := newSummit(t)
	bw := m.AggregateBandwidth(4096, 64)
	ceiling := m.Config().AggregatePFSCeilingGBs
	if bw < 0.9*ceiling || bw > ceiling {
		t.Fatalf("4096-node bandwidth %.1f not in [0.9, 1.0]×ceiling %.1f", bw, ceiling)
	}
}

func TestAggregateSubLinearScaling(t *testing.T) {
	m := newSummit(t)
	// Doubling nodes must never more than double bandwidth.
	for n := 1; n <= 2048; n *= 2 {
		b1 := m.AggregateBandwidth(n, 16)
		b2 := m.AggregateBandwidth(2*n, 16)
		if b2 > 2*b1+1e-9 {
			t.Fatalf("super-linear scaling: %d→%d nodes went %.1f→%.1f", n, 2*n, b1, b2)
		}
	}
}

// TestMatrixLookupQuick property: interpolated values are bounded by the
// min and max of the four surrounding grid samples.
func TestMatrixLookupQuick(t *testing.T) {
	m := newSummit(t).Matrix()
	f := func(nodesRaw uint16, sizeRaw uint16) bool {
		nodes := int(nodesRaw%4000) + 1
		size := 0.002 + float64(sizeRaw%50000)/100.0 // up to 500 GB
		v := m.Lookup(nodes, size)
		if v <= 0 || math.IsNaN(v) {
			return false
		}
		xi, _ := m.locateNode(nodes)
		yi, _ := m.locateSize(size)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, b := range []float64{m.At(xi, yi), m.At(xi, yi+1), m.At(xi+1, yi), m.At(xi+1, yi+1)} {
			lo = math.Min(lo, b)
			hi = math.Max(hi, b)
		}
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLookupClampsOutsideGrid(t *testing.T) {
	m := newSummit(t).Matrix()
	inside := m.Lookup(4096, 1024)
	if got := m.Lookup(100000, 100000); math.Abs(got-inside)/inside > 1e-9 {
		t.Fatalf("out-of-grid lookup %.2f != clamped corner %.2f", got, inside)
	}
	if got := m.Lookup(1, 1.0/4096); got != m.At(0, 0) {
		t.Fatalf("below-grid lookup %.4f != corner %.4f", got, m.At(0, 0))
	}
}

func TestLookupZeroInputs(t *testing.T) {
	m := newSummit(t).Matrix()
	if m.Lookup(0, 5) != 0 || m.Lookup(5, 0) != 0 {
		t.Fatal("Lookup with zero inputs must return 0")
	}
}

func TestPFSWriteTimeScalesWithVolume(t *testing.T) {
	m := newSummit(t)
	t1 := m.PFSWriteTime(100, 10)
	t2 := m.PFSWriteTime(100, 20)
	if t2 <= t1 {
		t.Fatalf("writing twice the data is not slower: %.2f vs %.2f", t2, t1)
	}
}

func TestPFSWriteTimeZero(t *testing.T) {
	m := newSummit(t)
	if m.PFSWriteTime(0, 10) != 0 || m.PFSWriteTime(10, 0) != 0 {
		t.Fatal("zero-node or zero-size write must take zero time")
	}
}

func TestSingleNodeFasterPerByteThanContended(t *testing.T) {
	m := newSummit(t)
	// The p-ckpt premise: one vulnerable node writing alone finishes its
	// share far faster than it would as 1/N of a full-job checkpoint.
	perNode := 284.0 // ~CHIMERA per-node GB
	solo := m.SingleNodePFSWriteTime(perNode)
	full := m.PFSWriteTime(2272, perNode)
	if solo >= full/4 {
		t.Fatalf("prioritized single-node write %.1fs not ≪ contended %.1fs", solo, full)
	}
}

func TestBBTimes(t *testing.T) {
	m := newSummit(t)
	if got, want := m.BBWriteTime(21), 10.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("BBWriteTime(21) = %.3f, want %.3f", got, want)
	}
	if got, want := m.BBReadTime(11), 2.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("BBReadTime(11) = %.3f, want %.3f", got, want)
	}
	if m.BBWriteTime(0) != 0 || m.BBReadTime(-1) != 0 {
		t.Fatal("non-positive sizes must take zero time")
	}
}

func TestNetworkTransferTime(t *testing.T) {
	m := newSummit(t)
	if got, want := m.NetworkTransferTime(125), 10.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("NetworkTransferTime(125) = %.3f, want %.3f", got, want)
	}
	if m.NetworkTransferTime(0) != 0 {
		t.Fatal("zero transfer must take zero time")
	}
}

func TestDrainTimeWaves(t *testing.T) {
	m := newSummit(t)
	conc := m.Config().DrainConcurrency
	// Twice the concurrency limit must take roughly twice one wave.
	oneWave := m.DrainTime(conc, 10)
	twoWaves := m.DrainTime(2*conc, 10)
	if twoWaves < 1.8*oneWave || twoWaves > 2.2*oneWave {
		t.Fatalf("two waves %.2fs not ~2× one wave %.2fs", twoWaves, oneWave)
	}
}

func TestDrainTimeBoundedByBBRead(t *testing.T) {
	m := newSummit(t)
	// A single node draining a large checkpoint cannot outrun its own BB
	// read bandwidth (5.5 GB/s).
	got := m.DrainTime(1, 550)
	if want := 100.0; got < want-1e-9 {
		t.Fatalf("drain of 550 GB took %.1fs, faster than BB read bound %.1fs", got, want)
	}
}

func TestDrainTimeMonotonicInNodes(t *testing.T) {
	m := newSummit(t)
	prev := 0.0
	for n := 1; n <= 4096; n *= 2 {
		d := m.DrainTime(n, 5)
		if d < prev-1e-9 {
			t.Fatalf("drain time dropped at %d nodes", n)
		}
		prev = d
	}
}

func TestMatrixRender(t *testing.T) {
	m := newSummit(t)
	out := m.Matrix().Render()
	if len(out) == 0 {
		t.Fatal("empty render")
	}
	// Header plus one row per node-count sample.
	wantRows := len(m.Matrix().Nodes()) + 1
	rows := 0
	for _, c := range out {
		if c == '\n' {
			rows++
		}
	}
	if rows != wantRows {
		t.Fatalf("render has %d rows, want %d", rows, wantRows)
	}
}

func TestReadEqualsWritePolicy(t *testing.T) {
	m := newSummit(t)
	if m.PFSReadTime(128, 7) != m.PFSWriteTime(128, 7) {
		t.Fatal("paper assumes identical read/write matrices")
	}
	if m.SingleNodePFSReadTime(7) != m.SingleNodePFSWriteTime(7) {
		t.Fatal("single-node read/write must match")
	}
}
