package iomodel

import (
	"math"
	"testing"
)

// FuzzAggregateBandwidth checks the invariants every simulation tier
// leans on when pricing checkpoints: for any sane (nodes, per-node GB)
// pair the interpolated aggregate bandwidth is positive, finite, never
// exceeds the PFS ceiling, and is monotonically non-decreasing in node
// count (more writers never see less aggregate bandwidth on the way to
// the ceiling). The seeded corpus under testdata/fuzz pins the grid
// corners, an off-grid interior point, and the Summit-scale operating
// point; `go test` replays it without -fuzz.
func FuzzAggregateBandwidth(f *testing.F) {
	f.Add(1, 0.0009765625) // smallest grid corner (1/1024 GB)
	f.Add(4096, 1024.0)    // largest grid corner
	f.Add(2272, 285.0)     // Summit-scale CHIMERA operating point
	f.Add(3, 0.25)         // off-grid interior: both axes interpolate
	f.Add(100000, 2048.0)  // beyond the grid: clamps at the edge
	io := New(DefaultSummit())
	ceiling := DefaultSummit().AggregatePFSCeilingGBs
	f.Fuzz(func(t *testing.T, nodes int, perNodeGB float64) {
		if nodes <= 0 || nodes > 1<<20 {
			t.Skip("lookup contract requires a positive, plausible node count")
		}
		if !(perNodeGB > 0) || perNodeGB > 4096 || math.IsNaN(perNodeGB) {
			t.Skip("lookup contract requires a positive, finite footprint")
		}
		bw := io.AggregateBandwidth(nodes, perNodeGB)
		if !(bw > 0) || math.IsInf(bw, 0) || math.IsNaN(bw) {
			t.Fatalf("AggregateBandwidth(%d, %g) = %g, want positive finite", nodes, perNodeGB, bw)
		}
		if bw > ceiling*(1+1e-9) {
			t.Fatalf("AggregateBandwidth(%d, %g) = %g exceeds PFS ceiling %g", nodes, perNodeGB, bw, ceiling)
		}
		if nodes <= 1<<19 {
			if more := io.AggregateBandwidth(nodes*2, perNodeGB); more < bw-1e-9*bw {
				t.Fatalf("bandwidth not monotone in nodes: %d→%g but %d→%g", nodes, bw, nodes*2, more)
			}
		}
	})
}
