package iomodel

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is the discrete I/O performance matrix of the paper's Fig. 2c:
// aggregate PFS bandwidth sampled over a grid of node counts and per-node
// transfer sizes, queried with bilinear interpolation in log2 space.
// Sampling happens once at Model construction; the simulation reads it.
type Matrix struct {
	// nodeGrid and sizeGrid are the sample coordinates, ascending.
	nodeGrid []int     // powers of two, 1 .. maxNodes
	sizeGrid []float64 // GB per node, powers of two spanning the range
	// bw[i][j] is aggregate GB/s at nodeGrid[i], sizeGrid[j].
	bw [][]float64
}

// matrix grid bounds. The largest paper application (CHIMERA) runs on
// 2272 nodes with ~285 GB per node, comfortably inside the grid; queries
// beyond the grid clamp to the edge, mirroring how a measured matrix
// would be used.
const (
	matrixMaxNodes  = 4096
	matrixMinSizeGB = 1.0 / 1024 // 1 MiB-ish in GB terms
	matrixMaxSizeGB = 1024
)

// BuildMatrix samples the parametric weak-scaling surface for cfg into a
// discrete matrix, standing in for the paper's measurement campaign.
func BuildMatrix(cfg Config) *Matrix {
	m := &Matrix{}
	for n := 1; n <= matrixMaxNodes; n *= 2 {
		m.nodeGrid = append(m.nodeGrid, n)
	}
	for s := matrixMinSizeGB; s <= matrixMaxSizeGB*1.0001; s *= 2 {
		m.sizeGrid = append(m.sizeGrid, s)
	}
	m.bw = make([][]float64, len(m.nodeGrid))
	for i, n := range m.nodeGrid {
		row := make([]float64, len(m.sizeGrid))
		for j, s := range m.sizeGrid {
			row[j] = surfaceAggregate(cfg, n, s)
		}
		m.bw[i] = row
	}
	return m
}

// Nodes returns the node-count grid.
func (m *Matrix) Nodes() []int { return m.nodeGrid }

// Sizes returns the per-node transfer-size grid in GB.
func (m *Matrix) Sizes() []float64 { return m.sizeGrid }

// At returns the sampled bandwidth at grid indices (i, j).
func (m *Matrix) At(i, j int) float64 { return m.bw[i][j] }

// Lookup returns the aggregate bandwidth for (nodes, perNodeGB) by
// bilinear interpolation on (log2 nodes, log2 size). Queries outside the
// grid clamp to the nearest edge.
func (m *Matrix) Lookup(nodes int, perNodeGB float64) float64 {
	if nodes <= 0 || perNodeGB <= 0 {
		return 0
	}
	xi, xf := m.locateNode(nodes)
	yi, yf := m.locateSize(perNodeGB)
	b00 := m.bw[xi][yi]
	b01 := m.bw[xi][yi+1]
	b10 := m.bw[xi+1][yi]
	b11 := m.bw[xi+1][yi+1]
	return (b00*(1-xf)+b10*xf)*(1-yf) + (b01*(1-xf)+b11*xf)*yf
}

// locateNode returns the lower grid index and the interpolation fraction
// for a node count, clamped to the grid.
func (m *Matrix) locateNode(nodes int) (int, float64) {
	lx := math.Log2(float64(nodes))
	if lx <= 0 {
		return 0, 0
	}
	maxIdx := len(m.nodeGrid) - 2
	i := int(lx)
	if i > maxIdx {
		return maxIdx, 1
	}
	return i, lx - float64(i)
}

// locateSize returns the lower grid index and fraction for a per-node
// size, clamped to the grid.
func (m *Matrix) locateSize(sizeGB float64) (int, float64) {
	l := math.Log2(sizeGB / m.sizeGrid[0])
	if l <= 0 {
		return 0, 0
	}
	maxIdx := len(m.sizeGrid) - 2
	i := int(l)
	if i > maxIdx {
		return maxIdx, 1
	}
	return i, l - float64(i)
}

// Render returns the matrix as an ASCII heat-map-style table (nodes down,
// sizes across), the Fig. 2c presentation.
func (m *Matrix) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "nodes\\GB")
	for _, s := range m.sizeGrid {
		fmt.Fprintf(&b, " %8s", sizeLabel(s))
	}
	b.WriteByte('\n')
	for i, n := range m.nodeGrid {
		fmt.Fprintf(&b, "%-8d", n)
		for j := range m.sizeGrid {
			fmt.Fprintf(&b, " %8.1f", m.bw[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sizeLabel(gb float64) string {
	switch {
	case gb >= 1:
		return fmt.Sprintf("%.0fG", gb)
	default:
		return fmt.Sprintf("%.0fM", gb*1024)
	}
}
