// Package cluster tracks the simulated machine: the job's compute nodes
// with their health state and the checkpoint data resident on each
// node-local burst buffer and on the PFS, plus the reserved spare-node
// pool the resource manager draws replacements from (the paper assumes
// the recovery rate of failed nodes keeps spares available; the pool
// makes that assumption checkable).
package cluster

import "fmt"

// State is a node's health state, following the paper's Fig. 5.
type State uint8

const (
	// Healthy: normal computation and periodic checkpointing.
	Healthy State = iota
	// Vulnerable: a failure has been predicted for this node.
	Vulnerable
	// Migrating: the node's process is being live-migrated away.
	Migrating
	// Failed: the node failed and awaits replacement.
	Failed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Vulnerable:
		return "vulnerable"
	case Migrating:
		return "migrating"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Node is one job node's bookkeeping.
type Node struct {
	// ID is the job-local node index.
	ID int
	// State is the current health state.
	State State
	// PredictedFailAt is the predicted failure time while Vulnerable or
	// Migrating; zero otherwise.
	PredictedFailAt float64
	// BBProgress is the application progress (simulated seconds of
	// computation) captured by the newest checkpoint on this node's
	// burst buffer; negative means none.
	BBProgress float64
	// PFSProgress is the progress captured by this node's newest
	// checkpoint committed to the PFS; negative means none.
	PFSProgress float64
	// Replacements counts how many times this logical rank has been
	// re-hosted on a spare after failures.
	Replacements int
}

// Observer receives node state transitions as they happen, letting a
// metrics layer track populations (vulnerable nodes, failed nodes) over
// simulation time without the cluster knowing about clocks or metric
// names. A nil observer costs one predictable branch per transition.
type Observer func(id int, from, to State)

// Cluster is the job's node set plus the spare pool.
type Cluster struct {
	nodes    []Node
	spares   int
	used     int
	observer Observer
}

// SetObserver installs the state-transition observer (nil to remove).
func (c *Cluster) SetObserver(o Observer) { c.observer = o }

// setState applies a transition and notifies the observer on change.
func (c *Cluster) setState(n *Node, to State) {
	from := n.State
	n.State = to
	if c.observer != nil && from != to {
		c.observer(n.ID, from, to)
	}
}

// New builds a cluster of n job nodes backed by spares reserve nodes.
func New(n, spares int) *Cluster {
	if n <= 0 {
		panic("cluster: non-positive node count")
	}
	if spares < 0 {
		panic("cluster: negative spare count")
	}
	c := &Cluster{nodes: make([]Node, n), spares: spares}
	for i := range c.nodes {
		c.nodes[i].ID = i
		c.nodes[i].BBProgress = -1
		c.nodes[i].PFSProgress = -1
	}
	return c
}

// Len returns the job's node count.
func (c *Cluster) Len() int { return len(c.nodes) }

// Node returns a pointer to node id for inspection and mutation.
func (c *Cluster) Node(id int) *Node {
	if id < 0 || id >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: node %d out of range [0, %d)", id, len(c.nodes)))
	}
	return &c.nodes[id]
}

// SparesLeft returns how many reserve nodes remain.
func (c *Cluster) SparesLeft() int { return c.spares - c.used }

// MarkVulnerable transitions a node to Vulnerable with the given
// predicted failure time. A vulnerable or migrating node may be re-marked
// (a newer prediction supersedes); a failed node may not. A migrating
// node keeps its Migrating state — the in-flight migration still owns the
// node, only the deadline is refreshed — so no observer notification
// fires for it. Use AbortMigration to tear the migration down first when
// the superseding prediction should re-queue the node.
func (c *Cluster) MarkVulnerable(id int, failAt float64) error {
	n := c.Node(id)
	if n.State == Failed {
		return fmt.Errorf("cluster: node %d is failed, cannot mark vulnerable", id)
	}
	if n.State != Migrating {
		c.setState(n, Vulnerable)
	}
	n.PredictedFailAt = failAt
	return nil
}

// MarkMigrating transitions a vulnerable node to Migrating.
func (c *Cluster) MarkMigrating(id int) error {
	n := c.Node(id)
	if n.State != Vulnerable {
		return fmt.Errorf("cluster: node %d is %v, cannot start migration", id, n.State)
	}
	c.setState(n, Migrating)
	return nil
}

// AbortMigration tears down an in-flight migration: the node returns to
// Vulnerable with the given predicted failure time (the superseding
// prediction's deadline), ready to be re-queued by the episode drain.
func (c *Cluster) AbortMigration(id int, failAt float64) error {
	n := c.Node(id)
	if n.State != Migrating {
		return fmt.Errorf("cluster: node %d is %v, no migration to abort", id, n.State)
	}
	c.setState(n, Vulnerable)
	n.PredictedFailAt = failAt
	return nil
}

// MarkHealthy returns a node to Healthy (prediction resolved: the failure
// was avoided, mitigated, or turned out spurious).
func (c *Cluster) MarkHealthy(id int) {
	n := c.Node(id)
	if n.State == Failed {
		panic(fmt.Sprintf("cluster: node %d is failed; use Replace", id))
	}
	c.setState(n, Healthy)
	n.PredictedFailAt = 0
}

// Fail records a node failure. The node keeps its Failed state until
// Replace is called.
func (c *Cluster) Fail(id int) {
	n := c.Node(id)
	c.setState(n, Failed)
	n.PredictedFailAt = 0
	// The node's burst buffer dies with it: its staged checkpoint is
	// gone. The PFS copy survives.
	n.BBProgress = -1
}

// Replace swaps a failed node for a spare: the logical rank becomes a
// fresh healthy node with an empty burst buffer. It reports an error when
// the spare pool is exhausted.
func (c *Cluster) Replace(id int) error {
	n := c.Node(id)
	if n.State != Failed {
		return fmt.Errorf("cluster: node %d is %v, not failed", id, n.State)
	}
	if c.SparesLeft() <= 0 {
		return fmt.Errorf("cluster: spare pool exhausted replacing node %d", id)
	}
	c.used++
	c.setState(n, Healthy)
	n.Replacements++
	n.BBProgress = -1
	return nil
}

// RecordBBCheckpoint notes that node id staged a checkpoint capturing the
// given application progress on its burst buffer.
func (c *Cluster) RecordBBCheckpoint(id int, progress float64) {
	c.Node(id).BBProgress = progress
}

// RecordPFSCheckpoint notes that node id committed a checkpoint capturing
// the given progress to the PFS.
func (c *Cluster) RecordPFSCheckpoint(id int, progress float64) {
	c.Node(id).PFSProgress = progress
}

// RecordBBCheckpointAll stages a checkpoint on every non-failed node.
func (c *Cluster) RecordBBCheckpointAll(progress float64) {
	for i := range c.nodes {
		if c.nodes[i].State != Failed {
			c.nodes[i].BBProgress = progress
		}
	}
}

// RecordPFSCheckpointAll commits a checkpoint for every non-failed node.
func (c *Cluster) RecordPFSCheckpointAll(progress float64) {
	for i := range c.nodes {
		if c.nodes[i].State != Failed {
			c.nodes[i].PFSProgress = progress
		}
	}
}

// ClampCheckpoints discards every checkpoint record newer than progress,
// on every node. A degraded-platform restart that found the newer
// generations corrupt calls this so no later recovery tries them again.
func (c *Cluster) ClampCheckpoints(progress float64) {
	for i := range c.nodes {
		if c.nodes[i].BBProgress > progress {
			c.nodes[i].BBProgress = progress
		}
		if c.nodes[i].PFSProgress > progress {
			c.nodes[i].PFSProgress = progress
		}
	}
}

// Vulnerable returns the IDs of nodes currently Vulnerable or Migrating,
// ascending. It allocates a fresh slice; hot paths that run once per
// episode should prefer AppendVulnerable with a reused buffer.
func (c *Cluster) Vulnerable() []int {
	return c.AppendVulnerable(nil)
}

// AppendVulnerable appends the IDs of nodes currently Vulnerable or
// Migrating, ascending, to buf and returns the extended slice. Callers
// that keep buf across calls (`buf = c.AppendVulnerable(buf[:0])`) pay
// zero allocations once the buffer has grown to the episode's width.
func (c *Cluster) AppendVulnerable(buf []int) []int {
	for i := range c.nodes {
		if s := c.nodes[i].State; s == Vulnerable || s == Migrating {
			buf = append(buf, i)
		}
	}
	return buf
}

// CountState returns how many nodes are in the given state.
func (c *Cluster) CountState(s State) int {
	count := 0
	for i := range c.nodes {
		if c.nodes[i].State == s {
			count++
		}
	}
	return count
}

// RecoverableProgress returns the newest application progress the whole
// job can restart from after an unhandled failure of node failedID: every
// healthy node restores from its burst buffer, the replacement restores
// from the PFS, so recovery is bounded by the failed node's PFS copy and
// the healthy nodes' BB copies. A negative result means no consistent
// restart point exists (restart from the beginning).
//
// The paper's checkpoint model keeps all nodes' checkpoints aligned (all
// nodes save state together), so in practice the minimum is the last
// completed coordinated checkpoint that also finished draining for the
// failed node.
func (c *Cluster) RecoverableProgress(failedID int) float64 {
	min := c.Node(failedID).PFSProgress
	for i := range c.nodes {
		if i == failedID {
			continue
		}
		p := c.nodes[i].BBProgress
		if c.nodes[i].PFSProgress > p {
			p = c.nodes[i].PFSProgress
		}
		if p < min {
			min = p
		}
	}
	return min
}
