package cluster

import (
	"testing"
	"testing/quick"
)

func TestNewInitialState(t *testing.T) {
	c := New(4, 2)
	if c.Len() != 4 || c.SparesLeft() != 2 {
		t.Fatalf("Len=%d spares=%d", c.Len(), c.SparesLeft())
	}
	for i := 0; i < 4; i++ {
		n := c.Node(i)
		if n.State != Healthy || n.BBProgress >= 0 || n.PFSProgress >= 0 {
			t.Fatalf("node %d not pristine: %+v", i, n)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for i, fn := range []func(){func() { New(0, 1) }, func() { New(3, -1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNodeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(3, 0).Node(3)
}

func TestVulnerableLifecycle(t *testing.T) {
	c := New(5, 1)
	if err := c.MarkVulnerable(2, 100); err != nil {
		t.Fatal(err)
	}
	if got := c.Vulnerable(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Vulnerable() = %v", got)
	}
	if c.Node(2).PredictedFailAt != 100 {
		t.Fatal("predicted fail time not recorded")
	}
	// Re-marking with a newer prediction is allowed.
	if err := c.MarkVulnerable(2, 50); err != nil {
		t.Fatal(err)
	}
	c.MarkHealthy(2)
	if c.Node(2).State != Healthy || c.Node(2).PredictedFailAt != 0 {
		t.Fatal("MarkHealthy did not reset")
	}
}

func TestMigratingRequiresVulnerable(t *testing.T) {
	c := New(3, 0)
	if err := c.MarkMigrating(0); err == nil {
		t.Fatal("migrating a healthy node accepted")
	}
	c.MarkVulnerable(0, 10)
	if err := c.MarkMigrating(0); err != nil {
		t.Fatal(err)
	}
	if got := c.Vulnerable(); len(got) != 1 {
		t.Fatalf("migrating node not reported vulnerable: %v", got)
	}
}

func TestFailAndReplace(t *testing.T) {
	c := New(3, 1)
	c.RecordBBCheckpointAll(50)
	c.RecordPFSCheckpointAll(40)
	c.Fail(1)
	if c.Node(1).State != Failed {
		t.Fatal("node not failed")
	}
	if c.Node(1).BBProgress >= 0 {
		t.Fatal("failed node kept its burst buffer")
	}
	if c.Node(1).PFSProgress != 40 {
		t.Fatal("PFS copy must survive a node failure")
	}
	if err := c.Replace(1); err != nil {
		t.Fatal(err)
	}
	if c.Node(1).State != Healthy || c.Node(1).Replacements != 1 {
		t.Fatalf("replacement wrong: %+v", c.Node(1))
	}
	if c.SparesLeft() != 0 {
		t.Fatalf("spares left %d, want 0", c.SparesLeft())
	}
}

func TestReplaceExhaustsSpares(t *testing.T) {
	c := New(2, 1)
	c.Fail(0)
	if err := c.Replace(0); err != nil {
		t.Fatal(err)
	}
	c.Fail(1)
	if err := c.Replace(1); err == nil {
		t.Fatal("replacement from empty pool accepted")
	}
}

func TestReplaceRequiresFailed(t *testing.T) {
	c := New(2, 1)
	if err := c.Replace(0); err == nil {
		t.Fatal("replacing a healthy node accepted")
	}
}

func TestMarkVulnerableOnFailed(t *testing.T) {
	c := New(2, 1)
	c.Fail(0)
	if err := c.MarkVulnerable(0, 10); err == nil {
		t.Fatal("marking a failed node vulnerable accepted")
	}
}

func TestMarkHealthyOnFailedPanics(t *testing.T) {
	c := New(2, 1)
	c.Fail(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.MarkHealthy(0)
}

func TestCountState(t *testing.T) {
	c := New(5, 2)
	c.MarkVulnerable(0, 1)
	c.MarkVulnerable(1, 2)
	c.Fail(4)
	if c.CountState(Healthy) != 2 || c.CountState(Vulnerable) != 2 || c.CountState(Failed) != 1 {
		t.Fatalf("counts wrong: H=%d V=%d F=%d", c.CountState(Healthy), c.CountState(Vulnerable), c.CountState(Failed))
	}
}

func TestRecoverableProgress(t *testing.T) {
	c := New(3, 1)
	// Coordinated checkpoint at progress 100 staged on BBs, earlier one
	// at 60 fully on PFS.
	c.RecordPFSCheckpointAll(60)
	c.RecordBBCheckpointAll(100)
	c.Fail(1)
	// Node 1 lost its BB; it recovers from PFS@60. Healthy nodes hold
	// BB@100 but must roll back to the consistent cut at 60.
	if got := c.RecoverableProgress(1); got != 60 {
		t.Fatalf("RecoverableProgress = %g, want 60", got)
	}
}

func TestRecoverableProgressAfterDrain(t *testing.T) {
	c := New(3, 1)
	c.RecordBBCheckpointAll(100)
	c.RecordPFSCheckpointAll(100) // drain completed
	c.Fail(2)
	if got := c.RecoverableProgress(2); got != 100 {
		t.Fatalf("RecoverableProgress = %g, want 100", got)
	}
}

func TestRecoverableProgressNoCheckpoint(t *testing.T) {
	c := New(2, 1)
	c.Fail(0)
	if got := c.RecoverableProgress(0); got >= 0 {
		t.Fatalf("RecoverableProgress = %g, want negative (restart)", got)
	}
}

// TestStateMachineQuick drives a random operation sequence and checks
// invariants: vulnerable+migrating counts match Vulnerable(), spares
// never go negative, and failed nodes never appear in Vulnerable().
func TestStateMachineQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New(8, 100)
		for _, op := range ops {
			id := int(op) % 8
			switch (op / 8) % 5 {
			case 0:
				c.MarkVulnerable(id, float64(op))
			case 1:
				if c.Node(id).State == Vulnerable {
					c.MarkMigrating(id)
				}
			case 2:
				if c.Node(id).State != Failed {
					c.MarkHealthy(id)
				}
			case 3:
				c.Fail(id)
			case 4:
				if c.Node(id).State == Failed {
					c.Replace(id)
				}
			}
		}
		if c.SparesLeft() < 0 {
			return false
		}
		vuln := map[int]bool{}
		for _, id := range c.Vulnerable() {
			vuln[id] = true
			if s := c.Node(id).State; s != Vulnerable && s != Migrating {
				return false
			}
		}
		return len(vuln) == c.CountState(Vulnerable)+c.CountState(Migrating)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{Healthy: "healthy", Vulnerable: "vulnerable", Migrating: "migrating", Failed: "failed"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
