package cluster

import (
	"testing"
	"testing/quick"
)

func TestNewInitialState(t *testing.T) {
	c := New(4, 2)
	if c.Len() != 4 || c.SparesLeft() != 2 {
		t.Fatalf("Len=%d spares=%d", c.Len(), c.SparesLeft())
	}
	for i := 0; i < 4; i++ {
		n := c.Node(i)
		if n.State != Healthy || n.BBProgress >= 0 || n.PFSProgress >= 0 {
			t.Fatalf("node %d not pristine: %+v", i, n)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for i, fn := range []func(){func() { New(0, 1) }, func() { New(3, -1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNodeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(3, 0).Node(3)
}

func TestVulnerableLifecycle(t *testing.T) {
	c := New(5, 1)
	if err := c.MarkVulnerable(2, 100); err != nil {
		t.Fatal(err)
	}
	if got := c.Vulnerable(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Vulnerable() = %v", got)
	}
	if c.Node(2).PredictedFailAt != 100 {
		t.Fatal("predicted fail time not recorded")
	}
	// Re-marking with a newer prediction is allowed.
	if err := c.MarkVulnerable(2, 50); err != nil {
		t.Fatal(err)
	}
	c.MarkHealthy(2)
	if c.Node(2).State != Healthy || c.Node(2).PredictedFailAt != 0 {
		t.Fatal("MarkHealthy did not reset")
	}
}

func TestMigratingRequiresVulnerable(t *testing.T) {
	c := New(3, 0)
	if err := c.MarkMigrating(0); err == nil {
		t.Fatal("migrating a healthy node accepted")
	}
	c.MarkVulnerable(0, 10)
	if err := c.MarkMigrating(0); err != nil {
		t.Fatal(err)
	}
	if got := c.Vulnerable(); len(got) != 1 {
		t.Fatalf("migrating node not reported vulnerable: %v", got)
	}
}

func TestFailAndReplace(t *testing.T) {
	c := New(3, 1)
	c.RecordBBCheckpointAll(50)
	c.RecordPFSCheckpointAll(40)
	c.Fail(1)
	if c.Node(1).State != Failed {
		t.Fatal("node not failed")
	}
	if c.Node(1).BBProgress >= 0 {
		t.Fatal("failed node kept its burst buffer")
	}
	if c.Node(1).PFSProgress != 40 {
		t.Fatal("PFS copy must survive a node failure")
	}
	if err := c.Replace(1); err != nil {
		t.Fatal(err)
	}
	if c.Node(1).State != Healthy || c.Node(1).Replacements != 1 {
		t.Fatalf("replacement wrong: %+v", c.Node(1))
	}
	if c.SparesLeft() != 0 {
		t.Fatalf("spares left %d, want 0", c.SparesLeft())
	}
}

func TestReplaceExhaustsSpares(t *testing.T) {
	c := New(2, 1)
	c.Fail(0)
	if err := c.Replace(0); err != nil {
		t.Fatal(err)
	}
	c.Fail(1)
	if err := c.Replace(1); err == nil {
		t.Fatal("replacement from empty pool accepted")
	}
}

func TestReplaceRequiresFailed(t *testing.T) {
	c := New(2, 1)
	if err := c.Replace(0); err == nil {
		t.Fatal("replacing a healthy node accepted")
	}
}

func TestMarkVulnerableOnFailed(t *testing.T) {
	c := New(2, 1)
	c.Fail(0)
	if err := c.MarkVulnerable(0, 10); err == nil {
		t.Fatal("marking a failed node vulnerable accepted")
	}
}

func TestMarkHealthyOnFailedPanics(t *testing.T) {
	c := New(2, 1)
	c.Fail(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.MarkHealthy(0)
}

func TestCountState(t *testing.T) {
	c := New(5, 2)
	c.MarkVulnerable(0, 1)
	c.MarkVulnerable(1, 2)
	c.Fail(4)
	if c.CountState(Healthy) != 2 || c.CountState(Vulnerable) != 2 || c.CountState(Failed) != 1 {
		t.Fatalf("counts wrong: H=%d V=%d F=%d", c.CountState(Healthy), c.CountState(Vulnerable), c.CountState(Failed))
	}
}

func TestRecoverableProgress(t *testing.T) {
	c := New(3, 1)
	// Coordinated checkpoint at progress 100 staged on BBs, earlier one
	// at 60 fully on PFS.
	c.RecordPFSCheckpointAll(60)
	c.RecordBBCheckpointAll(100)
	c.Fail(1)
	// Node 1 lost its BB; it recovers from PFS@60. Healthy nodes hold
	// BB@100 but must roll back to the consistent cut at 60.
	if got := c.RecoverableProgress(1); got != 60 {
		t.Fatalf("RecoverableProgress = %g, want 60", got)
	}
}

func TestRecoverableProgressAfterDrain(t *testing.T) {
	c := New(3, 1)
	c.RecordBBCheckpointAll(100)
	c.RecordPFSCheckpointAll(100) // drain completed
	c.Fail(2)
	if got := c.RecoverableProgress(2); got != 100 {
		t.Fatalf("RecoverableProgress = %g, want 100", got)
	}
}

func TestRecoverableProgressNoCheckpoint(t *testing.T) {
	c := New(2, 1)
	c.Fail(0)
	if got := c.RecoverableProgress(0); got >= 0 {
		t.Fatalf("RecoverableProgress = %g, want negative (restart)", got)
	}
}

// TestStateMachineQuick drives a random operation sequence and checks
// invariants: vulnerable+migrating counts match Vulnerable(), spares
// never go negative, and failed nodes never appear in Vulnerable().
func TestStateMachineQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New(8, 100)
		for _, op := range ops {
			id := int(op) % 8
			switch (op / 8) % 5 {
			case 0:
				c.MarkVulnerable(id, float64(op))
			case 1:
				if c.Node(id).State == Vulnerable {
					c.MarkMigrating(id)
				}
			case 2:
				if c.Node(id).State != Failed {
					c.MarkHealthy(id)
				}
			case 3:
				c.Fail(id)
			case 4:
				if c.Node(id).State == Failed {
					c.Replace(id)
				}
			}
		}
		if c.SparesLeft() < 0 {
			return false
		}
		vuln := map[int]bool{}
		for _, id := range c.Vulnerable() {
			vuln[id] = true
			if s := c.Node(id).State; s != Vulnerable && s != Migrating {
				return false
			}
		}
		return len(vuln) == c.CountState(Vulnerable)+c.CountState(Migrating)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSupersedeDuringMigration pins the supersede-during-migration
// contract: a newer prediction landing on a Migrating node refreshes the
// deadline but must NOT revert the node to Vulnerable — the in-flight
// migration still owns it. Tearing the migration down is a separate,
// explicit AbortMigration.
func TestSupersedeDuringMigration(t *testing.T) {
	c := New(3, 1)
	c.MarkVulnerable(1, 100)
	if err := c.MarkMigrating(1); err != nil {
		t.Fatal(err)
	}
	var fired []string
	c.SetObserver(func(id int, from, to State) {
		fired = append(fired, from.String()+"->"+to.String())
	})
	if err := c.MarkVulnerable(1, 80); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(1).State; got != Migrating {
		t.Fatalf("superseding prediction reverted state to %v, want migrating", got)
	}
	if got := c.Node(1).PredictedFailAt; got != 80 {
		t.Fatalf("PredictedFailAt = %g, want refreshed to 80", got)
	}
	if len(fired) != 0 {
		t.Fatalf("no-op re-mark notified the observer: %v", fired)
	}
	// The explicit abort realizes Migrating -> Vulnerable (and notifies).
	if err := c.AbortMigration(1, 75); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(1).State; got != Vulnerable {
		t.Fatalf("AbortMigration left state %v, want vulnerable", got)
	}
	if got := c.Node(1).PredictedFailAt; got != 75 {
		t.Fatalf("PredictedFailAt = %g, want 75", got)
	}
	if len(fired) != 1 || fired[0] != "migrating->vulnerable" {
		t.Fatalf("observer saw %v, want [migrating->vulnerable]", fired)
	}
}

func TestAbortMigrationRequiresMigrating(t *testing.T) {
	c := New(2, 1)
	if err := c.AbortMigration(0, 10); err == nil {
		t.Fatal("aborting a healthy node's migration accepted")
	}
	c.MarkVulnerable(0, 10)
	if err := c.AbortMigration(0, 10); err == nil {
		t.Fatal("aborting a vulnerable node's migration accepted")
	}
}

// TestObserverTable walks every legal transition path — including
// Replace, Fail, and the re-mark paths — and asserts the observer sees
// exactly the real transitions, with no notification for no-ops.
func TestObserverTable(t *testing.T) {
	type step struct {
		op   func(c *Cluster)
		want string // "" = no notification
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"predict-resolve", []step{
			{func(c *Cluster) { c.MarkVulnerable(0, 10) }, "healthy->vulnerable"},
			{func(c *Cluster) { c.MarkVulnerable(0, 8) }, ""}, // re-mark: no-op transition
			{func(c *Cluster) { c.MarkHealthy(0) }, "vulnerable->healthy"},
			{func(c *Cluster) { c.MarkHealthy(0) }, ""}, // already healthy
		}},
		{"migrate-complete", []step{
			{func(c *Cluster) { c.MarkVulnerable(0, 10) }, "healthy->vulnerable"},
			{func(c *Cluster) { c.MarkMigrating(0) }, "vulnerable->migrating"},
			{func(c *Cluster) { c.MarkVulnerable(0, 6) }, ""}, // supersede keeps migrating
			{func(c *Cluster) { c.MarkHealthy(0) }, "migrating->healthy"},
		}},
		{"migrate-abort", []step{
			{func(c *Cluster) { c.MarkVulnerable(0, 10) }, "healthy->vulnerable"},
			{func(c *Cluster) { c.MarkMigrating(0) }, "vulnerable->migrating"},
			{func(c *Cluster) { c.AbortMigration(0, 9) }, "migrating->vulnerable"},
		}},
		{"fail-replace", []step{
			{func(c *Cluster) { c.Fail(0) }, "healthy->failed"},
			{func(c *Cluster) { c.Fail(0) }, ""}, // double fail: no-op
			{func(c *Cluster) { c.Replace(0) }, "failed->healthy"},
		}},
		{"vulnerable-fail", []step{
			{func(c *Cluster) { c.MarkVulnerable(0, 10) }, "healthy->vulnerable"},
			{func(c *Cluster) { c.Fail(0) }, "vulnerable->failed"},
		}},
		{"migrating-fail", []step{
			{func(c *Cluster) { c.MarkVulnerable(0, 10) }, "healthy->vulnerable"},
			{func(c *Cluster) { c.MarkMigrating(0) }, "vulnerable->migrating"},
			{func(c *Cluster) { c.Fail(0) }, "migrating->failed"},
		}},
		{"failed-rejects-marks", []step{
			{func(c *Cluster) { c.Fail(0) }, "healthy->failed"},
			{func(c *Cluster) { c.MarkVulnerable(0, 10) }, ""}, // rejected, no notify
			{func(c *Cluster) { c.AbortMigration(0, 10) }, ""}, // rejected, no notify
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(2, 4)
			var got []string
			c.SetObserver(func(id int, from, to State) {
				if from == to {
					t.Errorf("observer notified of no-op %v->%v", from, to)
				}
				got = append(got, from.String()+"->"+to.String())
			})
			var want []string
			for _, s := range tc.steps {
				s.op(c)
				if s.want != "" {
					want = append(want, s.want)
				}
				if len(got) != len(want) || (len(want) > 0 && got[len(got)-1] != want[len(want)-1]) {
					t.Fatalf("after step: observer saw %v, want %v", got, want)
				}
			}
		})
	}
}

func TestAppendVulnerable(t *testing.T) {
	c := New(6, 1)
	c.MarkVulnerable(1, 10)
	c.MarkVulnerable(4, 20)
	c.MarkVulnerable(5, 30)
	c.MarkMigrating(4)
	buf := make([]int, 0, 8)
	buf = c.AppendVulnerable(buf)
	if len(buf) != 3 || buf[0] != 1 || buf[1] != 4 || buf[2] != 5 {
		t.Fatalf("AppendVulnerable = %v, want [1 4 5]", buf)
	}
	// Reusing the buffer must not allocate and must replace, not append.
	allocs := testing.AllocsPerRun(100, func() {
		buf = c.AppendVulnerable(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendVulnerable with warm buffer allocated %.1f times per run, want 0", allocs)
	}
	if got := c.Vulnerable(); len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("Vulnerable() = %v, want [1 4 5]", got)
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{Healthy: "healthy", Vulnerable: "vulnerable", Migrating: "migrating", Failed: "failed"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
