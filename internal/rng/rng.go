// Package rng provides a deterministic pseudo-random number generator and
// the probability distributions used throughout the p-ckpt simulation:
// uniform, exponential, Weibull (failure inter-arrival times, Table III of
// the paper), log-normal and triangular (failure-chain lead times), and
// weighted mixtures (the ten-sequence lead-time model of Fig. 2a).
//
// Every stochastic input of the simulator flows through this package so
// that a simulation run is a pure function of its seed. The generator is
// xoshiro256**, seeded via SplitMix64, following the reference algorithms
// by Blackman and Vigna. Substreams derived with Split are statistically
// independent, which lets each (experiment, run, purpose) tuple own its
// own stream without cross-contamination when one component draws a
// variable number of samples.
package rng

import "math"

// Source is a deterministic xoshiro256** generator. The zero value is not
// a valid generator; use New or Split.
type Source struct {
	s [4]uint64
}

// splitMix64 advances x and returns the next SplitMix64 output. It is used
// only to expand seeds into full generator state.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Two Sources constructed with the
// same seed produce identical streams.
func New(seed uint64) *Source {
	var s Source
	x := seed
	for i := range s.s {
		s.s[i] = splitMix64(&x)
	}
	// xoshiro256** requires a nonzero state; SplitMix64 of any seed is
	// astronomically unlikely to produce all zeros, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent substream labelled by key. The parent
// stream is not advanced, so the derivation is stable no matter how many
// draws the parent has made: substream identity depends only on the
// parent's seed state at Split time and the key.
func (r *Source) Split(key uint64) *Source {
	x := r.s[0] ^ rotl(r.s[2], 23) ^ (key * 0xd1342543de82ef95)
	var s Source
	for i := range s.s {
		s.s[i] = splitMix64(&x)
	}
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1), never exactly zero, which
// is convenient for inverse-CDF sampling that takes a logarithm.
func (r *Source) Float64Open() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Uniform returns a uniform value in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exponential samples an exponential distribution with the given rate
// (events per unit time). The mean of the distribution is 1/rate.
func (r *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Weibull samples a Weibull distribution with the given shape k and scale
// lambda via inverse-CDF: lambda * (-ln U)^(1/k). Shape < 1 produces the
// infant-mortality-heavy inter-arrival behaviour observed on HPC systems.
func (r *Source) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull with non-positive parameter")
	}
	return scale * math.Pow(-math.Log(r.Float64Open()), 1/shape)
}

// Normal samples a standard normal using the Marsaglia polar method.
func (r *Source) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormalMuSigma samples a normal with mean mu and standard deviation sigma.
func (r *Source) NormalMuSigma(mu, sigma float64) float64 {
	return mu + sigma*r.Normal()
}

// LogNormal samples exp(N(mu, sigma)). Lead times of mined failure chains
// are heavy-tailed and strictly positive, which log-normal captures well.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormalMuSigma(mu, sigma))
}

// Triangular samples a triangular distribution on [lo, hi] with mode m.
func (r *Source) Triangular(lo, m, hi float64) float64 {
	if !(lo <= m && m <= hi) || lo == hi {
		panic("rng: Triangular with invalid parameters")
	}
	u := r.Float64()
	f := (m - lo) / (hi - lo)
	if u < f {
		return lo + math.Sqrt(u*(hi-lo)*(m-lo))
	}
	return hi - math.Sqrt((1-u)*(hi-lo)*(hi-m))
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
