package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependentOfParentPosition(t *testing.T) {
	a := New(7)
	sub1 := a.Split(99)
	// Advance the parent; Split must still derive the same substream
	// because derivation depends only on parent state at Split time...
	first := sub1.Uint64()
	b := New(7)
	sub2 := b.Split(99)
	if got := sub2.Uint64(); got != first {
		t.Fatalf("Split(99) not reproducible: %d vs %d", got, first)
	}
}

func TestSplitDistinctKeys(t *testing.T) {
	a := New(7)
	s1 := a.Split(1)
	s2 := a.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("substreams 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(4)
	for i := 0; i < 100000; i++ {
		if r.Float64Open() <= 0 {
			t.Fatal("Float64Open returned a non-positive value")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

// meanOf draws n samples and returns their mean.
func meanOf(t *testing.T, r *Source, n int, sample func(*Source) float64) float64 {
	t.Helper()
	var sum float64
	for i := 0; i < n; i++ {
		sum += sample(r)
	}
	return sum / float64(n)
}

func TestExponentialMean(t *testing.T) {
	r := New(8)
	mean := meanOf(t, r, 200000, func(r *Source) float64 { return r.Exponential(0.5) })
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("Exponential(0.5) mean %.4f, want ~2", mean)
	}
}

func TestWeibullMean(t *testing.T) {
	r := New(9)
	// Titan's published parameters from Table III.
	d := WeibullDist{Shape: 0.6885, Scale: 5.4527}
	mean := meanOf(t, r, 400000, d.Sample)
	if rel := math.Abs(mean-d.Mean()) / d.Mean(); rel > 0.02 {
		t.Fatalf("Weibull mean %.4f, analytic %.4f, rel err %.3f", mean, d.Mean(), rel)
	}
}

func TestWeibullShape1IsExponential(t *testing.T) {
	r := New(10)
	d := WeibullDist{Shape: 1, Scale: 3}
	mean := meanOf(t, r, 200000, d.Sample)
	if math.Abs(mean-3) > 0.1 {
		t.Fatalf("Weibull(1,3) mean %.4f, want ~3", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %.4f, want ~1", variance)
	}
}

func TestLogNormalFromMeanCV(t *testing.T) {
	d := LogNormalFromMeanCV(40, 0.6)
	if rel := math.Abs(d.Mean()-40) / 40; rel > 1e-12 {
		t.Fatalf("analytic mean %.6f, want 40", d.Mean())
	}
	r := New(12)
	mean := meanOf(t, r, 400000, d.Sample)
	if math.Abs(mean-40)/40 > 0.02 {
		t.Fatalf("sampled mean %.4f, want ~40", mean)
	}
}

func TestTriangularRangeAndMean(t *testing.T) {
	r := New(13)
	d := TriangularDist{Lo: 1, Mode: 3, Hi: 8}
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v < 1 || v > 8 {
			t.Fatalf("triangular sample %.4f out of [1, 8]", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-4) > 0.05 {
		t.Fatalf("triangular mean %.4f, want ~4", mean)
	}
}

func TestUniformDist(t *testing.T) {
	r := New(14)
	d := UniformDist{Lo: 2, Hi: 6}
	mean := meanOf(t, r, 200000, d.Sample)
	if math.Abs(mean-4) > 0.05 {
		t.Fatalf("uniform mean %.4f, want ~4", mean)
	}
}

func TestMixtureWeights(t *testing.T) {
	m := NewMixture(
		MixtureComponent{Weight: 3, Dist: ConstDist{Value: 1}},
		MixtureComponent{Weight: 1, Dist: ConstDist{Value: 5}},
	)
	if want := (3.0*1 + 1.0*5) / 4; math.Abs(m.Mean()-want) > 1e-12 {
		t.Fatalf("mixture mean %.4f, want %.4f", m.Mean(), want)
	}
	r := New(15)
	count1 := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Sample(r) == 1 {
			count1++
		}
	}
	if frac := float64(count1) / n; math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("component 0 selected %.3f of draws, want ~0.75", frac)
	}
}

func TestMixtureSampleComponent(t *testing.T) {
	m := NewMixture(
		MixtureComponent{Weight: 1, Dist: ConstDist{Value: 10}},
		MixtureComponent{Weight: 1, Dist: ConstDist{Value: 20}},
	)
	r := New(16)
	for i := 0; i < 1000; i++ {
		v, c := m.SampleComponent(r)
		if (c == 0 && v != 10) || (c == 1 && v != 20) {
			t.Fatalf("component %d returned %v", c, v)
		}
	}
}

func TestScaled(t *testing.T) {
	d := Scaled{Factor: 1.5, Dist: ConstDist{Value: 4}}
	if d.Mean() != 6 {
		t.Fatalf("scaled mean %v, want 6", d.Mean())
	}
	if got := d.Sample(New(1)); got != 6 {
		t.Fatalf("scaled sample %v, want 6", got)
	}
}

func TestTruncated(t *testing.T) {
	r := New(17)
	d := Truncated{Lo: 2, Hi: 3, Dist: ExponentialDist{Rate: 1}}
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < 2 || v > 3 {
			t.Fatalf("truncated sample %.4f out of [2, 3]", v)
		}
	}
}

func TestTruncatedClampsPathological(t *testing.T) {
	// The constant 10 can never fall in [0, 1]; sampling must clamp, not hang.
	d := Truncated{Lo: 0, Hi: 1, Dist: ConstDist{Value: 10}}
	if v := d.Sample(New(18)); v != 1 {
		t.Fatalf("expected clamp to 1, got %v", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	f := func(n uint8) bool {
		m := int(n%64) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffle(t *testing.T) {
	r := New(20)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("shuffle duplicated value %d", v)
		}
		seen[v] = true
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(21)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %.4f", frac)
	}
}

func TestWeibullPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Weibull with zero shape did not panic")
		}
	}()
	New(1).Weibull(0, 1)
}

func TestMixtureEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty mixture did not panic")
		}
	}()
	NewMixture()
}
