package rng

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a sampleable distribution over positive reals. The failure and
// lead-time models accept a Dist so that experiments can swap the
// published mixture for simpler shapes in tests.
type Dist interface {
	// Sample draws one value using the provided source.
	Sample(r *Source) float64
	// Mean returns the analytical mean of the distribution.
	Mean() float64
}

// WeibullDist is a Weibull distribution with Shape k and Scale lambda.
type WeibullDist struct {
	Shape, Scale float64
}

// Sample draws a Weibull variate.
func (d WeibullDist) Sample(r *Source) float64 { return r.Weibull(d.Shape, d.Scale) }

// Mean returns scale * Gamma(1 + 1/shape).
func (d WeibullDist) Mean() float64 { return d.Scale * math.Gamma(1+1/d.Shape) }

// String implements fmt.Stringer.
func (d WeibullDist) String() string {
	return fmt.Sprintf("Weibull(shape=%.4g, scale=%.4g)", d.Shape, d.Scale)
}

// ExponentialDist is an exponential distribution with the given Rate.
type ExponentialDist struct {
	Rate float64
}

// Sample draws an exponential variate.
func (d ExponentialDist) Sample(r *Source) float64 { return r.Exponential(d.Rate) }

// Mean returns 1/rate.
func (d ExponentialDist) Mean() float64 { return 1 / d.Rate }

// LogNormalDist is a log-normal distribution parameterised by the mean Mu
// and standard deviation Sigma of the underlying normal.
type LogNormalDist struct {
	Mu, Sigma float64
}

// Sample draws a log-normal variate.
func (d LogNormalDist) Sample(r *Source) float64 { return r.LogNormal(d.Mu, d.Sigma) }

// Mean returns exp(mu + sigma^2/2).
func (d LogNormalDist) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// LogNormalFromMeanCV constructs a LogNormalDist with the requested mean
// and coefficient of variation (stddev/mean). This is how the lead-time
// model translates "mean lead time 40 s, moderately spread" into
// parameters.
func LogNormalFromMeanCV(mean, cv float64) LogNormalDist {
	if mean <= 0 || cv <= 0 {
		panic("rng: LogNormalFromMeanCV with non-positive parameter")
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return LogNormalDist{Mu: mu, Sigma: math.Sqrt(sigma2)}
}

// UniformDist is a uniform distribution on [Lo, Hi).
type UniformDist struct {
	Lo, Hi float64
}

// Sample draws a uniform variate.
func (d UniformDist) Sample(r *Source) float64 { return r.Uniform(d.Lo, d.Hi) }

// Mean returns the midpoint.
func (d UniformDist) Mean() float64 { return (d.Lo + d.Hi) / 2 }

// TriangularDist is a triangular distribution on [Lo, Hi] with Mode.
type TriangularDist struct {
	Lo, Mode, Hi float64
}

// Sample draws a triangular variate.
func (d TriangularDist) Sample(r *Source) float64 { return r.Triangular(d.Lo, d.Mode, d.Hi) }

// Mean returns (lo + mode + hi) / 3.
func (d TriangularDist) Mean() float64 { return (d.Lo + d.Mode + d.Hi) / 3 }

// ConstDist always returns Value. Useful for deterministic tests.
type ConstDist struct {
	Value float64
}

// Sample returns the constant.
func (d ConstDist) Sample(*Source) float64 { return d.Value }

// Mean returns the constant.
func (d ConstDist) Mean() float64 { return d.Value }

// MixtureComponent pairs a component distribution with a selection weight.
type MixtureComponent struct {
	Weight float64
	Dist   Dist
}

// Mixture is a finite weighted mixture of distributions. The ten failure
// sequences of the paper's Fig. 2a form a Mixture whose weights are the
// observed occurrence counts.
type Mixture struct {
	components []MixtureComponent
	cum        []float64 // cumulative normalised weights
	total      float64
}

// NewMixture builds a mixture from components. Weights must be positive;
// they are normalised internally.
func NewMixture(components ...MixtureComponent) *Mixture {
	if len(components) == 0 {
		panic("rng: empty mixture")
	}
	m := &Mixture{components: components}
	for _, c := range components {
		if c.Weight <= 0 {
			panic("rng: mixture component with non-positive weight")
		}
		m.total += c.Weight
		m.cum = append(m.cum, m.total)
	}
	return m
}

// Sample picks a component by weight, then samples it.
func (m *Mixture) Sample(r *Source) float64 {
	return m.components[m.pick(r)].Dist.Sample(r)
}

// SampleComponent picks a component by weight and returns both the sampled
// value and the index of the chosen component. The failure model uses the
// index to report which failure sequence fired.
func (m *Mixture) SampleComponent(r *Source) (value float64, component int) {
	i := m.pick(r)
	return m.components[i].Dist.Sample(r), i
}

func (m *Mixture) pick(r *Source) int {
	u := r.Float64() * m.total
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.cum) {
		i = len(m.cum) - 1
	}
	// SearchFloat64s returns the first index with cum >= u; when u lands
	// exactly on a boundary the next component is intended, but the
	// difference has probability zero and either choice is valid.
	return i
}

// Mean returns the weight-averaged component mean.
func (m *Mixture) Mean() float64 {
	var sum float64
	for _, c := range m.components {
		sum += c.Weight * c.Dist.Mean()
	}
	return sum / m.total
}

// Components returns a copy of the component list.
func (m *Mixture) Components() []MixtureComponent {
	out := make([]MixtureComponent, len(m.components))
	copy(out, m.components)
	return out
}

// Scaled wraps a distribution and multiplies every sample (and the mean)
// by Factor. Lead-time variability experiments scale the published lead
// times by 1 ± x/100 without touching the underlying shape.
type Scaled struct {
	Factor float64
	Dist   Dist
}

// Sample draws from the wrapped distribution and scales the result.
func (d Scaled) Sample(r *Source) float64 { return d.Factor * d.Dist.Sample(r) }

// Mean returns factor times the wrapped mean.
func (d Scaled) Mean() float64 { return d.Factor * d.Dist.Mean() }

// Truncated clamps samples of the wrapped distribution into [Lo, Hi] by
// resampling (up to a bounded number of attempts, then clamping). It keeps
// lead times physical: never negative, never beyond the chain horizon.
type Truncated struct {
	Lo, Hi float64
	Dist   Dist
}

// Sample draws until the value falls inside [Lo, Hi], clamping after 64
// rejected attempts so that pathological parameters cannot hang a run.
func (d Truncated) Sample(r *Source) float64 {
	for i := 0; i < 64; i++ {
		v := d.Dist.Sample(r)
		if v >= d.Lo && v <= d.Hi {
			return v
		}
	}
	v := d.Dist.Sample(r)
	return math.Min(math.Max(v, d.Lo), d.Hi)
}

// Mean returns the untruncated mean; exact truncated moments are not
// needed by any consumer and the approximation is documented.
func (d Truncated) Mean() float64 { return d.Dist.Mean() }
