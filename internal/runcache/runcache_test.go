package runcache

import (
	"bufio"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pckpt/internal/metrics"
	"pckpt/internal/stats"
)

func testKey() Key {
	return Key{
		Experiment:  "fig6a",
		Label:       "CHIMERA|OLCF Titan|B|ls=1.000|fn=0.125",
		Policy:      "B",
		Platform:    "platform/v1\napp=CHIMERA|2272|646382|360\n",
		Runs:        200,
		Seed:        42,
		Fingerprint: "pckpt@test",
	}
}

func testAgg() *stats.Agg {
	a := &stats.Agg{}
	a.Add(stats.RunResult{Overheads: stats.Overheads{Checkpoint: 100.5, Recompute: 37.25, Recovery: 3}, WallSeconds: 86400, Failures: 3, Mitigated: 2})
	a.Add(stats.RunResult{Overheads: stats.Overheads{Checkpoint: 90, Recompute: 12}, WallSeconds: 86000, Failures: 1, Avoided: 1})
	return a
}

func TestKeyHashStableAndSensitive(t *testing.T) {
	k := testKey()
	if k.Hash() != testKey().Hash() {
		t.Fatal("hash not stable")
	}
	mutations := []func(*Key){
		func(k *Key) { k.Experiment = "fig6b" },
		func(k *Key) { k.Label += "x" },
		func(k *Key) { k.Policy = "P2" },
		func(k *Key) { k.Platform += "extra\n" },
		func(k *Key) { k.Runs++ },
		func(k *Key) { k.Seed++ },
		func(k *Key) { k.Fingerprint = "pckpt@other" },
	}
	for i, mutate := range mutations {
		m := testKey()
		mutate(&m)
		if m.Hash() == k.Hash() {
			t.Errorf("mutation %d does not change the hash", i)
		}
	}
	if !strings.HasPrefix(k.Canonical(), "runcache/v1\n") {
		t.Fatal("canonical text missing version header")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if _, _, ok := s.Get(k, false); ok {
		t.Fatal("hit on empty store")
	}
	agg := testAgg()
	snap := &metrics.Snapshot{Counters: map[string]float64{"failures": 3}}
	if err := s.Put(k, agg, snap); err != nil {
		t.Fatal(err)
	}
	got, gotSnap, ok := s.Get(k, true)
	if !ok {
		t.Fatal("miss after put")
	}
	if got.N() != agg.N() || got.MeanOverheads() != agg.MeanOverheads() || got.MeanFTRatio() != agg.MeanFTRatio() {
		t.Fatalf("decoded aggregate differs: %+v vs %+v", got, agg)
	}
	if gotSnap == nil || gotSnap.Counters["failures"] != 3 {
		t.Fatalf("decoded snapshot differs: %+v", gotSnap)
	}
	if st := s.Totals(); st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Evictions != 0 {
		t.Fatalf("unexpected totals %+v", st)
	}
	if n := s.Entries(); n != 1 {
		t.Fatalf("Entries() = %d, want 1", n)
	}
}

func TestNeedMetricsUpgrade(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := s.Put(k, testAgg(), nil); err != nil {
		t.Fatal(err)
	}
	// A metered sweep must not accept the metrics-less entry…
	if _, _, ok := s.Get(k, true); ok {
		t.Fatal("metrics-less entry served a metered lookup")
	}
	// …but an un-metered sweep may.
	if _, _, ok := s.Get(k, false); !ok {
		t.Fatal("metrics-less entry missed an un-metered lookup")
	}
	// The recompute's Put upgrades the entry in place.
	if err := s.Put(k, testAgg(), &metrics.Snapshot{Counters: map[string]float64{"x": 1}}); err != nil {
		t.Fatal(err)
	}
	if _, snap, ok := s.Get(k, true); !ok || snap == nil {
		t.Fatal("upgraded entry still misses metered lookups")
	}
	if n := s.Entries(); n != 1 {
		t.Fatalf("upgrade duplicated the entry: %d files", n)
	}
}

// blobPaths lists every blob file in the store.
func blobPaths(t *testing.T, s *Store) []string {
	t.Helper()
	var paths []string
	filepath.WalkDir(filepath.Join(s.Dir(), "objects"), func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			paths = append(paths, path)
		}
		return nil
	})
	return paths
}

func TestCorruptionDetectedAndEvicted(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flip", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a digit inside the agg payload: still valid JSON,
			// only the checksum can catch it.
			i := strings.Index(string(data), "100.5")
			if i < 0 {
				t.Fatal("payload marker not found")
			}
			data[i] = '9'
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			k := testKey()
			if err := s.Put(k, testAgg(), nil); err != nil {
				t.Fatal(err)
			}
			paths := blobPaths(t, s)
			if len(paths) != 1 {
				t.Fatalf("want 1 blob, have %d", len(paths))
			}
			tc.corrupt(t, paths[0])
			if _, _, ok := s.Get(k, false); ok {
				t.Fatal("corrupt entry was trusted")
			}
			if st := s.Totals(); st.Evictions != 1 || st.Misses != 1 {
				t.Fatalf("corruption not accounted as evict+miss: %+v", st)
			}
			if _, err := os.Stat(paths[0]); !os.IsNotExist(err) {
				t.Fatal("corrupt blob not removed from disk")
			}
		})
	}
}

func TestPerExperimentAccounting(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := testKey(), testKey()
	kb.Experiment = "fig7"
	s.Get(ka, false) // miss
	s.Put(ka, testAgg(), nil)
	s.Get(ka, false) // hit
	s.Get(kb, false) // miss
	per := s.PerExperiment()
	if st := per["fig6a"]; st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("fig6a accounting %+v", st)
	}
	if st := per["fig7"]; st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("fig7 accounting %+v", st)
	}
}

func TestIndexRecordsPuts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := testKey(), testKey()
	kb.Label += "|2"
	s.Put(ka, testAgg(), nil)
	s.Put(kb, testAgg(), nil)
	f, err := os.Open(filepath.Join(s.Dir(), "index.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e struct {
			Hash       string `json:"hash"`
			Experiment string `json:"experiment"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("index line %d unparsable: %v", lines, err)
		}
		if e.Hash == "" || e.Experiment != "fig6a" {
			t.Fatalf("index line %d malformed: %+v", lines, e)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("index has %d lines, want 2", lines)
	}
}

func TestFingerprintStable(t *testing.T) {
	fp := Fingerprint()
	if fp == "" {
		t.Fatal("empty fingerprint")
	}
	if fp != Fingerprint() {
		t.Fatal("fingerprint not stable within a process")
	}
}
