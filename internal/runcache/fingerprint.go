package runcache

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
)

var (
	fingerprintOnce sync.Once
	fingerprint     string
)

// Fingerprint returns the code fingerprint stamped into every cache key:
// the main module's path, version, and checksum from the build info,
// plus the VCS revision and dirty bit when the binary was built with
// them. A release binary therefore invalidates the whole cache on any
// code change; a development build (`go run`, `go test`) reports
// "(devel)" with no revision, so code edits between runs are NOT
// detected — use a fresh cache directory (or -no-cache) after changing
// simulation code in a working tree. The rule is documented in
// DESIGN.md.
func Fingerprint() string {
	fingerprintOnce.Do(func() {
		fingerprint = buildFingerprint()
	})
	return fingerprint
}

// buildFingerprint derives the fingerprint from debug.ReadBuildInfo.
func buildFingerprint() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "no-build-info"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s", bi.Main.Path, bi.Main.Version)
	if bi.Main.Sum != "" {
		fmt.Fprintf(&b, "+%s", bi.Main.Sum)
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision", "vcs.modified":
			fmt.Fprintf(&b, "|%s=%s", s.Key, s.Value)
		}
	}
	return b.String()
}
