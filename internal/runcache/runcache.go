// Package runcache is a content-addressed, on-disk store for simulated
// experiment configurations: the resumable layer under cmd/experiments.
//
// Every (experiment, configuration) pair the sweep simulates is keyed by
// a canonical hash of the experiment ID, the run parameters (minus the
// worker count, which a determinism test guarantees cannot change
// results), the platform configuration's canonical rendering, the policy
// ID, and a code fingerprint derived from the module build info. The
// stored value is the full serialized stats.Agg (plus the merged metrics
// snapshot when the run was metered), so a cache hit reproduces the
// original simulation's output exactly — including every derived table
// cell — without executing a single run.
//
// The store is crash- and interrupt-safe by construction: each blob is
// written atomically (temp file + rename) the moment its configuration
// completes, and reads go straight to the blob file, so a sweep killed
// mid-flight leaves a valid store holding exactly the completed prefix.
// An append-only index (index.jsonl, one JSON line per store) records
// what was cached and when for humans and tooling; blobs stay
// authoritative, so a torn index line is never trusted for reads.
// Corrupt or truncated blobs are detected via a payload checksum,
// evicted, and transparently recomputed by the caller.
package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"pckpt/internal/metrics"
	"pckpt/internal/stats"
)

// Key identifies one simulated configuration. All fields participate in
// the content address; see Canonical for the exact layout.
type Key struct {
	// Experiment is the registry ID namespace ("fig6a", "crossval", ...).
	Experiment string
	// Label is the experiment's per-configuration label (app, system,
	// lead scale, ... — whatever the experiment used to derive the
	// configuration seed).
	Label string
	// Policy is the C/R policy ID ("B", "P2", ...).
	Policy string
	// Platform is platform.Config.CanonicalString() of the configuration.
	Platform string
	// Runs and Seed are the effective run count and base seed. The
	// worker count is deliberately absent: run aggregation is seed-
	// ordered, so results are worker-count independent (guarded by
	// TestWorkersDeterminism in internal/experiments).
	Runs int
	Seed uint64
	// Fingerprint ties the entry to the code that produced it (see
	// Fingerprint()).
	Fingerprint string
}

// Canonical renders the key as versioned, newline-delimited text — the
// preimage of Hash. The multi-line Platform rendering sits last so the
// fixed-position fields above it stay self-delimiting.
func (k Key) Canonical() string {
	var b strings.Builder
	b.WriteString("runcache/v1\n")
	fmt.Fprintf(&b, "experiment=%s\n", k.Experiment)
	fmt.Fprintf(&b, "label=%s\n", k.Label)
	fmt.Fprintf(&b, "policy=%s\n", k.Policy)
	fmt.Fprintf(&b, "runs=%d\n", k.Runs)
	fmt.Fprintf(&b, "seed=%d\n", k.Seed)
	fmt.Fprintf(&b, "fingerprint=%s\n", k.Fingerprint)
	b.WriteString("platform:\n")
	b.WriteString(k.Platform)
	return b.String()
}

// Hash returns the content address: hex SHA-256 of the canonical text.
func (k Key) Hash() string {
	sum := sha256.Sum256([]byte(k.Canonical()))
	return hex.EncodeToString(sum[:])
}

// Stats counts cache traffic. Hits/Misses/Puts/Evictions are cumulative
// over a Store's lifetime (one process; the on-disk store itself is
// shared across processes).
type Stats struct {
	Hits, Misses, Puts, Evictions int
}

// add folds o into s.
func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Puts += o.Puts
	s.Evictions += o.Evictions
}

// Store is an opened cache directory. Safe for concurrent use.
type Store struct {
	dir string

	mu     sync.Mutex
	total  Stats
	perExp map[string]Stats
}

// Open creates (if needed) and opens a cache directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runcache: empty cache directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("runcache: %w", err)
	}
	return &Store{dir: dir, perExp: make(map[string]Stats)}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// blob is the on-disk envelope of one entry. Key holds the full
// canonical text (collision and corruption guard); Check is the hex
// SHA-256 of the Agg bytes, a newline, and the Metrics bytes.
type blob struct {
	Key     string          `json:"key"`
	Check   string          `json:"check"`
	Agg     json.RawMessage `json:"agg"`
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// payloadCheck computes the blob checksum over the serialized payloads.
func payloadCheck(agg, met json.RawMessage) string {
	h := sha256.New()
	h.Write(agg)
	h.Write([]byte{'\n'})
	h.Write(met)
	return hex.EncodeToString(h.Sum(nil))
}

// path returns the blob path for a hash, sharded by its first byte.
func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, "objects", hash[:2], hash+".json")
}

// Get looks a key up. With needMetrics set, an entry stored without a
// metrics snapshot counts as a miss (it cannot serve a metered sweep);
// the caller's recompute-and-Put then upgrades the entry in place.
// Corrupt entries — unparsable envelope, canonical-key mismatch,
// checksum mismatch, or unparsable payloads — are evicted from disk and
// reported as misses, never trusted.
func (s *Store) Get(k Key, needMetrics bool) (*stats.Agg, *metrics.Snapshot, bool) {
	hash := k.Hash()
	data, err := os.ReadFile(s.path(hash))
	if err != nil {
		s.record(k.Experiment, Stats{Misses: 1})
		return nil, nil, false
	}
	var bl blob
	if err := json.Unmarshal(data, &bl); err != nil {
		s.evict(k, hash)
		return nil, nil, false
	}
	if bl.Key != k.Canonical() || bl.Check != payloadCheck(bl.Agg, bl.Metrics) {
		s.evict(k, hash)
		return nil, nil, false
	}
	if needMetrics && len(bl.Metrics) == 0 {
		s.record(k.Experiment, Stats{Misses: 1})
		return nil, nil, false
	}
	agg := &stats.Agg{}
	if err := json.Unmarshal(bl.Agg, agg); err != nil {
		s.evict(k, hash)
		return nil, nil, false
	}
	var snap *metrics.Snapshot
	if len(bl.Metrics) > 0 {
		snap = &metrics.Snapshot{}
		if err := json.Unmarshal(bl.Metrics, snap); err != nil {
			s.evict(k, hash)
			return nil, nil, false
		}
	}
	s.record(k.Experiment, Stats{Hits: 1})
	return agg, snap, true
}

// Put stores one completed configuration. The blob lands atomically
// (temp file + rename), so a concurrent or interrupted reader never
// observes a torn entry; an existing entry for the key is replaced.
func (s *Store) Put(k Key, agg *stats.Agg, snap *metrics.Snapshot) error {
	aggJSON, err := json.Marshal(agg)
	if err != nil {
		return fmt.Errorf("runcache: encode agg: %w", err)
	}
	var metJSON json.RawMessage
	if snap != nil && !snap.Empty() {
		if metJSON, err = json.Marshal(snap); err != nil {
			return fmt.Errorf("runcache: encode metrics: %w", err)
		}
	}
	bl := blob{
		Key:     k.Canonical(),
		Check:   payloadCheck(aggJSON, metJSON),
		Agg:     aggJSON,
		Metrics: metJSON,
	}
	data, err := json.Marshal(bl)
	if err != nil {
		return fmt.Errorf("runcache: encode blob: %w", err)
	}
	hash := k.Hash()
	path := s.path(hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	s.record(k.Experiment, Stats{Puts: 1})
	s.appendIndex(k, hash, len(data))
	return nil
}

// indexEntry is one line of index.jsonl.
type indexEntry struct {
	Hash       string `json:"hash"`
	Experiment string `json:"experiment"`
	Label      string `json:"label"`
	Policy     string `json:"policy"`
	Runs       int    `json:"runs"`
	Seed       uint64 `json:"seed"`
	Bytes      int    `json:"bytes"`
	Created    string `json:"created"`
}

// appendIndex records a Put in the human-readable index. Best-effort:
// the index is informational, blobs are authoritative, so index I/O
// errors are swallowed rather than failing the sweep.
func (s *Store) appendIndex(k Key, hash string, size int) {
	line, err := json.Marshal(indexEntry{
		Hash:       hash,
		Experiment: k.Experiment,
		Label:      k.Label,
		Policy:     k.Policy,
		Runs:       k.Runs,
		Seed:       k.Seed,
		Bytes:      size,
		Created:    time.Now().UTC().Format(time.RFC3339),
	})
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(filepath.Join(s.dir, "index.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	f.Write(append(line, '\n'))
}

// evict removes a corrupt entry and accounts it as an eviction plus the
// miss the caller is about to act on.
func (s *Store) evict(k Key, hash string) {
	os.Remove(s.path(hash))
	s.record(k.Experiment, Stats{Misses: 1, Evictions: 1})
}

// record folds traffic into the total and per-experiment accounting.
func (s *Store) record(experiment string, d Stats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total.add(d)
	pe := s.perExp[experiment]
	pe.add(d)
	s.perExp[experiment] = pe
}

// Totals returns the cumulative traffic counters.
func (s *Store) Totals() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// PerExperiment returns a copy of the per-experiment traffic counters.
func (s *Store) PerExperiment() map[string]Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Stats, len(s.perExp))
	for k, v := range s.perExp {
		out[k] = v
	}
	return out
}

// Entries counts the blob files currently on disk (across every process
// that ever wrote to the directory).
func (s *Store) Entries() int {
	n := 0
	filepath.WalkDir(filepath.Join(s.dir, "objects"), func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			n++
		}
		return nil
	})
	return n
}
