package trace

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	if CycleStart.String() != "cycle-start" || Complete.String() != "complete" {
		t.Fatal("kind strings wrong")
	}
	if !strings.HasPrefix(Kind(200).String(), "Kind(") {
		t.Fatal("unknown kind must render numerically")
	}
}

func TestBufferRecordAndFilter(t *testing.T) {
	var b Buffer
	b.Record(Event{T: 1, Kind: CycleStart, Node: -1})
	b.Record(Event{T: 2, Kind: Failure, Node: 3, Detail: "unhandled loss=10s"})
	b.Record(Event{T: 3, Kind: Failure, Node: 5})
	b.Record(Event{T: 4, Kind: Complete, Node: -1})
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}
	fails := b.Filter(Failure)
	if len(fails) != 2 || fails[0].Node != 3 {
		t.Fatalf("Filter(Failure) = %+v", fails)
	}
	if got := b.Counts()[Failure]; got != 2 {
		t.Fatalf("Counts[Failure] = %d", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{T: 12.5, Kind: Prediction, Node: 7, Progress: 100, Detail: "lead=40s"}
	s := e.String()
	for _, want := range []string{"prediction", "node 7", "lead=40s"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string missing %q: %s", want, s)
		}
	}
	if !strings.Contains((Event{Node: -1}).String(), "app") {
		t.Fatal("app-wide events must render as 'app'")
	}
}

func TestRenderAndSummary(t *testing.T) {
	var b Buffer
	b.Record(Event{T: 1, Kind: BBWrite, Node: -1})
	b.Record(Event{T: 2, Kind: BBWrite, Node: -1})
	if lines := strings.Count(b.Render(), "\n"); lines != 2 {
		t.Fatalf("render lines = %d", lines)
	}
	if !strings.Contains(b.Summary(), "bb-write") {
		t.Fatalf("summary missing kind:\n%s", b.Summary())
	}
}

func TestGantt(t *testing.T) {
	var b Buffer
	b.Record(Event{T: 10, Kind: BBWrite})
	b.Record(Event{T: 50, Kind: Failure})
	b.Record(Event{T: 55, Kind: RecoveryDone})
	b.Record(Event{T: 100, Kind: Complete})
	g := b.Gantt(20)
	if !strings.ContainsRune(g, 'X') || !strings.ContainsRune(g, 'c') || !strings.ContainsRune(g, 'r') {
		t.Fatalf("gantt missing marks: %s", g)
	}
	// Severity: a failure and a checkpoint in the same bucket show the failure.
	var c Buffer
	c.Record(Event{T: 10, Kind: BBWrite})
	c.Record(Event{T: 10, Kind: Failure})
	c.Record(Event{T: 10.1, Kind: Complete})
	if g := c.Gantt(1); len(g) == 0 || []rune(g)[0] != 'X' {
		t.Fatalf("severity ordering broken: %q", g)
	}
}

func TestGanttEmpty(t *testing.T) {
	var b Buffer
	if b.Gantt(10) != "" {
		t.Fatal("empty buffer must render nothing")
	}
	b.Record(Event{T: 0, Kind: Complete})
	if b.Gantt(0) != "" {
		t.Fatal("zero width must render nothing")
	}
}
