// Package trace records the timeline of a C/R simulation run — cycle
// boundaries, checkpoints, drains, predictions, proactive actions,
// failures, recoveries — and renders it for humans. The simulator emits
// events through the Recorder interface; tracing is off (a nil recorder)
// unless requested, so the hot path pays nothing.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies timeline events.
type Kind uint8

const (
	// CycleStart: a compute interval begins (Detail: interval seconds).
	CycleStart Kind = iota
	// BBWrite: a periodic checkpoint was staged on the burst buffers.
	BBWrite
	// DrainDone: the asynchronous BB→PFS drain completed.
	DrainDone
	// Prediction: the predictor announced a failure (Node, Detail: lead).
	Prediction
	// SpuriousPrediction: a false positive arrived.
	SpuriousPrediction
	// MigrationStart / MigrationDone / MigrationAborted: LM lifecycle.
	MigrationStart
	// MigrationDone marks successful completion (failure avoided).
	MigrationDone
	// MigrationAborted marks an LM superseded by p-ckpt.
	MigrationAborted
	// EpisodeStart / EpisodeEnd: a p-ckpt episode's bounds.
	EpisodeStart
	// EpisodeEnd carries the blocked duration in Detail.
	EpisodeEnd
	// SafeguardStart / SafeguardEnd: an M1 safeguard checkpoint's bounds.
	SafeguardStart
	// SafeguardEnd marks the synchronous PFS commit completing.
	SafeguardEnd
	// VulnerableCommit: one vulnerable node's prioritized PFS commit.
	VulnerableCommit
	// Failure: a failure struck (Detail: mitigated/unhandled + loss).
	Failure
	// RecoveryDone: the post-failure restore finished.
	RecoveryDone
	// Complete: the application finished.
	Complete
	// Truncated: the platform killed the job early (spare pool exhausted
	// when a failure struck).
	Truncated
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := [...]string{
		"cycle-start", "bb-write", "drain-done", "prediction", "spurious",
		"migration-start", "migration-done", "migration-aborted",
		"episode-start", "episode-end", "safeguard-start", "safeguard-end",
		"vulnerable-commit", "failure", "recovery-done", "complete",
		"truncated",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one timeline entry.
type Event struct {
	// T is the simulation time in seconds.
	T float64
	// Kind classifies the event.
	Kind Kind
	// Node is the affected node, or -1 for application-wide events.
	Node int
	// Progress is the application's completed computation at T.
	Progress float64
	// Detail is free-form context.
	Detail string
}

// String renders one line.
func (e Event) String() string {
	node := "app"
	if e.Node >= 0 {
		node = fmt.Sprintf("node %d", e.Node)
	}
	s := fmt.Sprintf("t=%12.2f  progress=%12.2f  %-18s %s", e.T, e.Progress, e.Kind, node)
	if e.Detail != "" {
		s += "  " + e.Detail
	}
	return s
}

// Recorder consumes events. Implementations must tolerate events arriving
// in simulation-time order with ties.
type Recorder interface {
	Record(Event)
}

// Buffer is an in-memory Recorder.
type Buffer struct {
	events []Event
}

// Record appends the event.
func (b *Buffer) Record(e Event) { b.events = append(b.events, e) }

// Events returns the recorded timeline.
func (b *Buffer) Events() []Event { return b.events }

// Len returns the number of recorded events.
func (b *Buffer) Len() int { return len(b.events) }

// Filter returns the events of the given kinds, in order.
func (b *Buffer) Filter(kinds ...Kind) []Event {
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, e := range b.events {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// Counts returns the number of events per kind.
func (b *Buffer) Counts() map[Kind]int {
	out := map[Kind]int{}
	for _, e := range b.events {
		out[e.Kind]++
	}
	return out
}

// Render prints the full timeline, one event per line.
func (b *Buffer) Render() string {
	var sb strings.Builder
	for _, e := range b.events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Summary renders event counts sorted by kind.
func (b *Buffer) Summary() string {
	counts := b.Counts()
	kinds := make([]Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var sb strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&sb, "%-18s %6d\n", k, counts[k])
	}
	return sb.String()
}

// Gantt renders a coarse single-lane activity strip: the run's span is
// divided into width buckets and each bucket shows the most severe
// activity that touched it (failure > recovery > episode/safeguard >
// migration > checkpoint > compute).
func (b *Buffer) Gantt(width int) string {
	if len(b.events) == 0 || width <= 0 {
		return ""
	}
	end := b.events[len(b.events)-1].T
	if end <= 0 {
		return ""
	}
	cells := make([]rune, width)
	for i := range cells {
		cells[i] = '·'
	}
	mark := func(t float64, r rune, sev int) {
		i := int(t / end * float64(width))
		if i >= width {
			i = width - 1
		}
		if severity(cells[i]) < sev {
			cells[i] = r
		}
	}
	for _, e := range b.events {
		switch e.Kind {
		case BBWrite, DrainDone:
			mark(e.T, 'c', 1)
		case MigrationStart, MigrationDone:
			mark(e.T, 'm', 2)
		case EpisodeStart, EpisodeEnd, SafeguardStart, SafeguardEnd, VulnerableCommit:
			mark(e.T, 'P', 3)
		case RecoveryDone:
			mark(e.T, 'r', 4)
		case Failure:
			mark(e.T, 'X', 5)
		}
	}
	return string(cells) + "\n(X failure, r recovery, P p-ckpt/safeguard, m migration, c checkpoint, · compute)"
}

func severity(r rune) int {
	switch r {
	case 'X':
		return 5
	case 'r':
		return 4
	case 'P':
		return 3
	case 'm':
		return 2
	case 'c':
		return 1
	default:
		return 0
	}
}
