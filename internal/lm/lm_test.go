package lm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.RAMCapGB = 0 },
		func(c *Config) { c.NetworkGBs = -1 },
		func(c *Config) { c.Dilation = 1 },
		func(c *Config) { c.Dilation = -0.1 },
	}
	for i, mutate := range cases {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTransferTriplesFootprint(t *testing.T) {
	c := Default()
	if got := c.TransferGB(40); got != 120 {
		t.Fatalf("TransferGB(40) = %g, want 120", got)
	}
}

func TestTransferCappedAtRAM(t *testing.T) {
	c := Default()
	// CHIMERA's ~284.5 GB per node would triple to 853 GB; DRAM caps it.
	if got := c.TransferGB(284.5); got != 512 {
		t.Fatalf("TransferGB(284.5) = %g, want 512 (RAM cap)", got)
	}
}

func TestTransferZero(t *testing.T) {
	if Default().TransferGB(0) != 0 || Default().TransferGB(-5) != 0 {
		t.Fatal("non-positive footprint must transfer nothing")
	}
}

func TestThetaKnownValues(t *testing.T) {
	c := Default()
	// CHIMERA: capped 512 GB over 12.5 GB/s ≈ 41 s — the θ the lead-time
	// calibration targets.
	if got := c.Theta(284.5); math.Abs(got-40.96) > 0.01 {
		t.Fatalf("CHIMERA θ = %.2f s, want ≈40.96", got)
	}
	// XGC: 3×98.8 = 296.3 GB → 23.7 s.
	if got := c.Theta(98.76); math.Abs(got-23.7) > 0.1 {
		t.Fatalf("XGC θ = %.2f s, want ≈23.7", got)
	}
}

func TestFeasible(t *testing.T) {
	c := Default()
	theta := c.Theta(100)
	if !c.Feasible(theta, 100) {
		t.Fatal("exact lead must be feasible")
	}
	if c.Feasible(theta-0.01, 100) {
		t.Fatal("lead below θ must be infeasible")
	}
}

func TestWithAlpha(t *testing.T) {
	c := Default().WithAlpha(1)
	if c.TransferGB(100) != 100 {
		t.Fatalf("alpha=1 TransferGB(100) = %g", c.TransferGB(100))
	}
	if Default().Alpha != DefaultAlpha {
		t.Fatal("WithAlpha mutated the default")
	}
}

func TestThetaMonotoneInAlphaQuick(t *testing.T) {
	f := func(sizeRaw, aRaw uint8) bool {
		size := float64(sizeRaw%100) + 1
		a1 := float64(aRaw%40)/10 + 0.5
		a2 := a1 + 0.5
		c1 := Default().WithAlpha(a1)
		c2 := Default().WithAlpha(a2)
		return c2.Theta(size) >= c1.Theta(size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDilationSeconds(t *testing.T) {
	c := Default()
	want := c.Theta(40) * c.Dilation
	if got := c.DilationSeconds(40); math.Abs(got-want) > 1e-12 {
		t.Fatalf("DilationSeconds = %g, want %g", got, want)
	}
}

func TestMigrationLifecycle(t *testing.T) {
	c := Default()
	m := NewMigration(c, 7, 1000, 1000+c.Theta(40)+1, 40)
	if m.Node != 7 || m.Start != 1000 {
		t.Fatalf("migration fields wrong: %+v", m)
	}
	if !m.CompletesBy() {
		t.Fatal("migration with sufficient lead must complete")
	}
	m.Abort()
	if !m.Aborted() || m.CompletesBy() {
		t.Fatal("aborted migration must not complete")
	}
}

func TestMigrationMissesDeadline(t *testing.T) {
	c := Default()
	m := NewMigration(c, 0, 0, c.Theta(40)-1, 40)
	if m.CompletesBy() {
		t.Fatal("migration with short lead must miss its deadline")
	}
}
