// Package lm models proactive process-level live migration (LM), the
// preferred proactive action of the paper's hybrid p-ckpt model: when a
// failure is predicted with enough lead time, the vulnerable node's
// process migrates to a healthy spare while the application keeps
// running, avoiding the failure entirely.
//
// The paper sizes an LM at three times the node's checkpoint footprint
// (a stencil's t−1, t, t+1 temporal planes must all move, where a
// checkpoint needs only one), bounded by the node's DRAM, and prices it
// against the inter-node network bandwidth. θ is the minimum lead time
// for a migration to finish before the failure.
package lm

import "fmt"

// DefaultAlpha is the paper's LM-transfer to checkpoint-size ratio.
const DefaultAlpha = 3.0

// DefaultDilation is the runtime dilation an in-progress migration
// imposes on the application. The paper cites 0.08–2.98 % from Wang et
// al.; the default sits mid-range.
const DefaultDilation = 0.015

// Config parameterises the migration model.
type Config struct {
	// Alpha is the ratio of migrated bytes to checkpoint bytes (the
	// M2-* sweep of the paper's Fig. 6c varies exactly this).
	Alpha float64
	// RAMCapGB bounds the transfer: a process cannot exceed node DRAM
	// (512 GB on Summit).
	RAMCapGB float64
	// NetworkGBs is the inter-node link bandwidth (12.5 GB/s on Summit).
	NetworkGBs float64
	// Dilation is the fractional runtime slowdown while a migration is
	// in flight.
	Dilation float64
}

// Default returns the Summit configuration used across the paper.
func Default() Config {
	return Config{Alpha: DefaultAlpha, RAMCapGB: 512, NetworkGBs: 12.5, Dilation: DefaultDilation}
}

// WithAlpha returns a copy of c with Alpha replaced (the Fig. 6c sweep).
func (c Config) WithAlpha(alpha float64) Config {
	c.Alpha = alpha
	return c
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.Alpha <= 0:
		return fmt.Errorf("lm: non-positive alpha %g", c.Alpha)
	case c.RAMCapGB <= 0:
		return fmt.Errorf("lm: non-positive RAM cap")
	case c.NetworkGBs <= 0:
		return fmt.Errorf("lm: non-positive network bandwidth")
	case c.Dilation < 0 || c.Dilation >= 1:
		return fmt.Errorf("lm: dilation %g outside [0, 1)", c.Dilation)
	}
	return nil
}

// TransferGB returns the bytes (in GB) a migration moves for a node whose
// checkpoint footprint is perNodeCkptGB: α times the footprint, capped at
// the node's DRAM.
func (c Config) TransferGB(perNodeCkptGB float64) float64 {
	if perNodeCkptGB <= 0 {
		return 0
	}
	gb := c.Alpha * perNodeCkptGB
	if gb > c.RAMCapGB {
		gb = c.RAMCapGB
	}
	return gb
}

// Theta returns the minimum lead time in seconds for a migration of a
// node with the given checkpoint footprint to complete before the
// predicted failure: transfer size over network bandwidth. This is the θ
// of the paper's Eq. (2) discussion.
func (c Config) Theta(perNodeCkptGB float64) float64 {
	return c.TransferGB(perNodeCkptGB) / c.NetworkGBs
}

// Feasible reports whether a migration started with leadSeconds of
// warning finishes in time for a node with the given footprint.
func (c Config) Feasible(leadSeconds, perNodeCkptGB float64) bool {
	return leadSeconds >= c.Theta(perNodeCkptGB)
}

// DilationSeconds returns the extra application runtime incurred by one
// migration: the migration lasts Theta seconds during which the
// application runs Dilation slower.
func (c Config) DilationSeconds(perNodeCkptGB float64) float64 {
	return c.Theta(perNodeCkptGB) * c.Dilation
}

// Migration tracks one in-flight migration so the simulation can abort it
// when a shorter-lead prediction supersedes it (the LM→p-ckpt transition
// in the paper's Fig. 5 state diagram).
type Migration struct {
	// Node is the vulnerable node being evacuated.
	Node int
	// Start and End are the migration's simulated time bounds.
	Start, End float64
	// Deadline is the predicted failure time it must beat.
	Deadline float64
	aborted  bool
}

// NewMigration plans a migration beginning at start for a node with the
// given footprint and failure deadline.
func NewMigration(c Config, node int, start, deadline, perNodeCkptGB float64) *Migration {
	return &Migration{Node: node, Start: start, End: start + c.Theta(perNodeCkptGB), Deadline: deadline}
}

// Abort marks the migration cancelled (superseded by p-ckpt).
func (m *Migration) Abort() { m.aborted = true }

// Aborted reports whether the migration was cancelled.
func (m *Migration) Aborted() bool { return m.aborted }

// CompletesBy reports whether the migration, if not aborted, finishes at
// or before its failure deadline.
func (m *Migration) CompletesBy() bool { return !m.aborted && m.End <= m.Deadline }
