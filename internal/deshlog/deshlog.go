// Package deshlog reproduces the failure-analysis pipeline the paper
// builds on (Desh): mining recurring phrase chains from HPC system logs,
// where the time between a chain's first phrase and its terminal failure
// phrase is the prediction lead time. The paper ran this over six months
// of logs from three production systems to obtain the lead-time
// distribution of its Fig. 2a; production logs are not redistributable,
// so this package also ships a generator that synthesizes logs with
// planted chains, letting the full log → chain → lead-time-distribution
// path run end to end.
package deshlog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pckpt/internal/failure"
	"pckpt/internal/rng"
)

// Entry is one log line.
type Entry struct {
	// Time is seconds since the log's start.
	Time float64
	// Node is the originating node index.
	Node int
	// Component is the subsystem that emitted the line.
	Component string
	// Phrase is the normalised message text (Desh operates on
	// deduplicated phrase classes, not raw messages).
	Phrase string
}

// Format renders the entry as a single log line.
func (e Entry) Format() string {
	return fmt.Sprintf("t=%.3f node=%d comp=%s msg=%s", e.Time, e.Node, e.Component, e.Phrase)
}

// ParseEntry parses a line produced by Format.
func ParseEntry(line string) (Entry, error) {
	var e Entry
	rest := strings.TrimSpace(line)
	fields := []struct {
		key string
		set func(string) error
	}{
		{"t=", func(s string) error {
			v, err := strconv.ParseFloat(s, 64)
			e.Time = v
			return err
		}},
		{"node=", func(s string) error {
			v, err := strconv.Atoi(s)
			e.Node = v
			return err
		}},
		{"comp=", func(s string) error {
			e.Component = s
			return nil
		}},
	}
	for _, f := range fields {
		if !strings.HasPrefix(rest, f.key) {
			return Entry{}, fmt.Errorf("deshlog: malformed line %q: missing %q", line, f.key)
		}
		rest = rest[len(f.key):]
		val, tail, ok := strings.Cut(rest, " ")
		if !ok {
			return Entry{}, fmt.Errorf("deshlog: malformed line %q: truncated after %q", line, f.key)
		}
		if err := f.set(val); err != nil {
			return Entry{}, fmt.Errorf("deshlog: malformed line %q: %v", line, err)
		}
		rest = tail
	}
	if !strings.HasPrefix(rest, "msg=") {
		return Entry{}, fmt.Errorf("deshlog: malformed line %q: missing msg", line)
	}
	e.Phrase = rest[len("msg="):]
	return e, nil
}

// ChainTemplate is one recurring failure chain: an ordered phrase
// sequence whose last phrase is the failure itself.
type ChainTemplate struct {
	// SeqID is the failure-sequence number (1–10, matching Fig. 2a).
	SeqID int
	// Component is the emitting subsystem.
	Component string
	// Phrases is the ordered chain; the final phrase is the failure.
	Phrases []string
}

// Templates returns the ten chain templates used by the generator and the
// miner, styled after the hardware/software failure precursors Desh
// reports on Cray system logs.
func Templates() []ChainTemplate {
	return []ChainTemplate{
		{1, "hwerr", []string{"MCE correctable burst on DIMM", "ECC threshold exceeded", "memory page retired", "uncorrectable ECC error: kernel panic"}},
		{2, "lustre", []string{"ost write timeout", "client evicted by lock callback", "lustre connection lost", "node fenced by health monitor"}},
		{3, "netwatch", []string{"HSN link degraded", "lane retrain storm", "routing table resweep", "aries nic quiesce failed", "node declared dead by HSN"}},
		{4, "power", []string{"VRM overcurrent warning", "cabinet power sag", "node power fault"}},
		{5, "kernel", []string{"soft lockup detected", "hung task panic timer armed", "kernel oops: scheduling while atomic"}},
		{6, "gpfs", []string{"mmfsd long waiter", "quorum heartbeat missed", "filesystem unmounted: node expelled"}},
		{7, "thermal", []string{"core temperature above threshold", "fan controller fallback", "thermal trip assertion"}},
		{8, "pcie", []string{"pcie correctable error flood", "device link retrain", "gpu fell off the bus"}},
		{9, "moab", []string{"healthcheck script timeout", "node marked admindown"}},
		{10, "bmc", []string{"ipmi watchdog pretimeout", "bmc controller reset", "node watchdog hard reset"}},
	}
}

// noisePhrases are benign lines interleaved between chains.
var noisePhrases = []string{
	"heartbeat ok",
	"job launch accepted",
	"lnet router pings nominal",
	"periodic scrub complete",
	"sensor poll ok",
	"nfs automount refresh",
}

// Planted is the ground truth for one generated failure chain.
type Planted struct {
	SeqID    int
	Node     int
	FailTime float64
	Lead     float64
}

// GenConfig parameterises the synthetic log.
type GenConfig struct {
	// Nodes is the cluster size.
	Nodes int
	// Duration is the log span in seconds.
	Duration float64
	// Failures is how many failure chains to plant.
	Failures int
	// NoisePerChain is the number of benign lines per planted chain.
	NoisePerChain int
	// PartialChains plants this many chain prefixes that never complete
	// (precursors that recovered), exercising the miner's robustness.
	PartialChains int
	// Leads samples each chain's lead time; nil selects the default
	// Fig. 2a model.
	Leads *failure.LeadTimeModel
}

// Generate synthesizes a log and returns its entries sorted by time plus
// the planted ground truth.
func Generate(cfg GenConfig, src *rng.Source) ([]Entry, []Planted) {
	if cfg.Nodes <= 0 || cfg.Duration <= 0 || cfg.Failures < 0 {
		panic("deshlog: invalid generator config")
	}
	leads := cfg.Leads
	if leads == nil {
		leads = failure.DefaultLeadTimes()
	}
	templates := Templates()
	weights := leads.Sequences()
	var entries []Entry
	var planted []Planted
	for i := 0; i < cfg.Failures; i++ {
		lead, seqID := leads.Sample(src)
		tmpl := templates[seqID-1]
		node := src.Intn(cfg.Nodes)
		// Leave room for the full chain inside the log window.
		failAt := src.Uniform(lead, cfg.Duration)
		entries = append(entries, chainEntries(tmpl, node, failAt, lead)...)
		planted = append(planted, Planted{SeqID: seqID, Node: node, FailTime: failAt, Lead: lead})
		for j := 0; j < cfg.NoisePerChain; j++ {
			entries = append(entries, Entry{
				Time:      src.Uniform(0, cfg.Duration),
				Node:      src.Intn(cfg.Nodes),
				Component: "sys",
				Phrase:    noisePhrases[src.Intn(len(noisePhrases))],
			})
		}
	}
	for i := 0; i < cfg.PartialChains; i++ {
		// A prefix of a random chain that never reaches the failure.
		tmpl := templates[weights[src.Intn(len(weights))].ID-1]
		cut := 1 + src.Intn(len(tmpl.Phrases)-1)
		node := src.Intn(cfg.Nodes)
		start := src.Uniform(0, cfg.Duration*0.9)
		span := src.Uniform(1, 60)
		for k := 0; k < cut; k++ {
			entries = append(entries, Entry{
				Time:      start + span*float64(k)/float64(len(tmpl.Phrases)-1),
				Node:      node,
				Component: tmpl.Component,
				Phrase:    tmpl.Phrases[k],
			})
		}
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Time < entries[j].Time })
	return entries, planted
}

// chainEntries lays a template's phrases across [failAt−lead, failAt].
func chainEntries(tmpl ChainTemplate, node int, failAt, lead float64) []Entry {
	n := len(tmpl.Phrases)
	out := make([]Entry, n)
	for i, ph := range tmpl.Phrases {
		frac := float64(i) / float64(n-1)
		out[i] = Entry{
			Time:      failAt - lead*(1-frac),
			Node:      node,
			Component: tmpl.Component,
			Phrase:    ph,
		}
	}
	return out
}
