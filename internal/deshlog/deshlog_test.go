package deshlog

import (
	"math"
	"strings"
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/rng"
)

func TestTemplatesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	ids := map[int]bool{}
	for _, tmpl := range Templates() {
		if len(tmpl.Phrases) < 2 {
			t.Errorf("template %d has %d phrases, want ≥2", tmpl.SeqID, len(tmpl.Phrases))
		}
		if ids[tmpl.SeqID] {
			t.Errorf("duplicate template ID %d", tmpl.SeqID)
		}
		ids[tmpl.SeqID] = true
		for _, ph := range tmpl.Phrases {
			if seen[ph] {
				t.Errorf("phrase %q reused across templates", ph)
			}
			seen[ph] = true
		}
	}
	if len(ids) != 10 {
		t.Fatalf("%d templates, want 10", len(ids))
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	e := Entry{Time: 123.456, Node: 42, Component: "lustre", Phrase: "ost write timeout"}
	got, err := ParseEntry(e.Format())
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip: %+v != %+v", got, e)
	}
}

func TestParseEntryErrors(t *testing.T) {
	bad := []string{
		"",
		"t=1.0",
		"node=1 t=2 comp=x msg=y",
		"t=abc node=1 comp=x msg=y",
		"t=1 node=zz comp=x msg=y",
		"t=1 node=2 comp=x nomsg",
	}
	for _, line := range bad {
		if _, err := ParseEntry(line); err == nil {
			t.Errorf("line %q accepted", line)
		}
	}
}

func TestGenerateAndMineRecoversPlanted(t *testing.T) {
	src := rng.New(11)
	entries, planted := Generate(GenConfig{
		Nodes:         256,
		Duration:      6 * 30 * 24 * 3600, // six months, like the paper's logs
		Failures:      400,
		NoisePerChain: 20,
		PartialChains: 50,
	}, src)
	chains := Mine(entries)
	// Chains can collide (two same-sequence chains overlapping on one
	// node merge or break); expect to recover the large majority.
	if len(chains) < int(0.95*float64(len(planted))) {
		t.Fatalf("mined %d chains from %d planted", len(chains), len(planted))
	}
	if len(chains) > len(planted) {
		t.Fatalf("mined %d chains, more than the %d planted", len(chains), len(planted))
	}
	// Mined leads must match planted leads: index by (node, failTime).
	type key struct {
		node int
		end  float64
	}
	want := map[key]float64{}
	for _, p := range planted {
		want[key{p.Node, math.Round(p.FailTime * 1000)}] = p.Lead
	}
	matched := 0
	for _, c := range chains {
		if lead, ok := want[key{c.Node, math.Round(c.End * 1000)}]; ok {
			if math.Abs(c.Lead()-lead) > 1e-6 {
				t.Fatalf("chain at node %d: mined lead %.3f, planted %.3f", c.Node, c.Lead(), lead)
			}
			matched++
		}
	}
	if matched < len(chains)*9/10 {
		t.Fatalf("only %d/%d mined chains matched ground truth", matched, len(chains))
	}
}

func TestMineIgnoresPartialChains(t *testing.T) {
	src := rng.New(12)
	entries, _ := Generate(GenConfig{
		Nodes:         64,
		Duration:      1e6,
		Failures:      0,
		PartialChains: 200,
	}, src)
	if chains := Mine(entries); len(chains) != 0 {
		t.Fatalf("mined %d chains from partial-only log", len(chains))
	}
}

func TestMineRestartsBrokenWindow(t *testing.T) {
	tmpl := Templates()[0] // 4 phrases
	// First phrase, then first phrase again (restart), then the rest:
	// the mined lead must measure from the SECOND first-phrase.
	entries := []Entry{
		{Time: 0, Node: 1, Component: tmpl.Component, Phrase: tmpl.Phrases[0]},
		{Time: 100, Node: 1, Component: tmpl.Component, Phrase: tmpl.Phrases[0]},
		{Time: 110, Node: 1, Component: tmpl.Component, Phrase: tmpl.Phrases[1]},
		{Time: 120, Node: 1, Component: tmpl.Component, Phrase: tmpl.Phrases[2]},
		{Time: 130, Node: 1, Component: tmpl.Component, Phrase: tmpl.Phrases[3]},
	}
	chains := Mine(entries)
	if len(chains) != 1 {
		t.Fatalf("mined %d chains, want 1", len(chains))
	}
	if got := chains[0].Lead(); got != 30 {
		t.Fatalf("lead = %g, want 30 (window must restart)", got)
	}
}

func TestMineSeparatesNodes(t *testing.T) {
	tmpl := Templates()[3] // 3 phrases
	// Interleave the same chain on two nodes; both must be found.
	var entries []Entry
	for i, ph := range tmpl.Phrases {
		entries = append(entries,
			Entry{Time: float64(10 * i), Node: 1, Component: tmpl.Component, Phrase: ph},
			Entry{Time: float64(10*i + 1), Node: 2, Component: tmpl.Component, Phrase: ph},
		)
	}
	chains := Mine(entries)
	if len(chains) != 2 {
		t.Fatalf("mined %d chains, want 2", len(chains))
	}
}

func TestStatsQuartiles(t *testing.T) {
	var chains []Chain
	for i := 1; i <= 5; i++ {
		chains = append(chains, Chain{SeqID: 3, Node: 0, Start: 0, End: float64(i * 10)})
	}
	st := Stats(chains)
	if len(st) != 1 {
		t.Fatalf("stats groups = %d", len(st))
	}
	s := st[0]
	if s.Count != 5 || s.Mean != 30 || s.Min != 10 || s.Max != 50 || s.P50 != 30 {
		t.Fatalf("stats = %+v", s)
	}
	if s.P25 != 20 || s.P75 != 40 {
		t.Fatalf("quartiles = %g/%g", s.P25, s.P75)
	}
}

func TestToLeadModelMatchesPlanted(t *testing.T) {
	src := rng.New(13)
	entries, _ := Generate(GenConfig{
		Nodes:    512,
		Duration: 6 * 30 * 24 * 3600,
		Failures: 3000,
	}, src)
	model, err := ToLeadModel(Mine(entries))
	if err != nil {
		t.Fatal(err)
	}
	// The reconstructed model's mean must track the generating model's
	// analytic mean.
	want := failure.DefaultLeadTimes().Mean()
	got := model.Mean()
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("mined model mean %.2f, generator mean %.2f", got, want)
	}
}

func TestRenderStats(t *testing.T) {
	st := []SeqStats{{SeqID: 1, Count: 3, Mean: 42.5, Min: 40, Max: 45, P25: 41, P50: 42, P75: 44}}
	out := RenderStats(st)
	for _, want := range []string{"seq", "42.50", "45.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestToLeadModelEmpty(t *testing.T) {
	if _, err := ToLeadModel(nil); err == nil {
		t.Fatal("empty chain set accepted")
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Generate(GenConfig{Nodes: 0, Duration: 1}, rng.New(1))
}
