package deshlog

import (
	"reflect"
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/rng"
	"pckpt/internal/scenario"
)

// The full loop: synthesize a log, mine its chains, export them as a
// scenario trace, render to JSON, parse back, and replay — the replayed
// trace must carry exactly the mined failures, and its lead-time mixture
// must match the one ToLeadModel fits from the same chains.
func TestExportTraceRoundTrip(t *testing.T) {
	cfg := GenConfig{Nodes: 32, Duration: 86400, Failures: 40, NoisePerChain: 5, PartialChains: 6}
	entries, _ := Generate(cfg, rng.New(11))
	chains := Mine(entries)
	if len(chains) == 0 {
		t.Fatal("no chains mined")
	}
	tr, err := ExportTrace("mined", chains, cfg.Nodes, cfg.Duration)
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.Render()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := scenario.ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := parsed.Validate(); err != nil {
		t.Fatal(err)
	}
	re := parsed.ToReplay()
	if re.Digest() != tr.ToReplay().Digest() {
		t.Fatal("JSON round trip changes the trace")
	}
	if got, want := re.FailureCount(), len(chains); got != want {
		t.Fatalf("replay carries %d failures, mined %d chains", got, want)
	}
	// The replay's fitted lead mixture must agree with the model mined
	// directly from the chains: same grouping, same moments.
	fromChains, err := ToLeadModel(chains)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re.LeadModel().Sequences(), fromChains.Sequences()) {
		t.Fatalf("lead models diverge:\n%+v\nvs\n%+v", re.LeadModel().Sequences(), fromChains.Sequences())
	}
	// And the replay must actually stream: the first cycle's failures are
	// the mined chains in time order.
	src := failure.NewReplayStream(re, cfg.Nodes, nil)
	got, seen := 0, 0.0
	for got < len(chains) {
		ev := src.Next()
		if ev.Time < seen {
			t.Fatalf("stream out of order at %v", ev.Time)
		}
		seen = ev.Time
		if ev.Time > cfg.Duration {
			t.Fatalf("first cycle overran the horizon: only %d of %d failures seen", got, len(chains))
		}
		if ev.Kind == failure.KindFailure {
			got++
		}
	}
}

func TestExportTraceRejects(t *testing.T) {
	chains := []Chain{{SeqID: 1, Node: 2, Start: 10, End: 50}}
	cases := map[string]func() (*scenario.Trace, error){
		"no-chains":    func() (*scenario.Trace, error) { return ExportTrace("t", nil, 4, 100) },
		"bad-nodes":    func() (*scenario.Trace, error) { return ExportTrace("t", chains, 0, 100) },
		"bad-horizon":  func() (*scenario.Trace, error) { return ExportTrace("t", chains, 4, -1) },
		"node-beyond":  func() (*scenario.Trace, error) { return ExportTrace("t", chains, 2, 100) },
		"past-horizon": func() (*scenario.Trace, error) { return ExportTrace("t", chains, 4, 40) },
		"negative-lead": func() (*scenario.Trace, error) {
			return ExportTrace("t", []Chain{{SeqID: 1, Node: 0, Start: 60, End: 50}}, 4, 100)
		},
	}
	for name, fn := range cases {
		if _, err := fn(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
