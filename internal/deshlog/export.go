package deshlog

import (
	"fmt"
	"math"
	"sort"

	"pckpt/internal/scenario"
)

// ExportTrace converts mined failure chains into a replayable scenario
// trace: each chain becomes one predicted failure at its terminal phrase
// time with the chain's lead as the announcement margin — closing the
// loop from raw logs all the way to a simulation input both tiers can
// replay deterministically. nodes is the span the log covered and
// horizonSeconds its window length (replay wraps modulo it); every chain
// must fall inside both.
func ExportTrace(name string, chains []Chain, nodes int, horizonSeconds float64) (*scenario.Trace, error) {
	if len(chains) == 0 {
		return nil, fmt.Errorf("deshlog: no chains to export")
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("deshlog: non-positive node span")
	}
	if !(horizonSeconds > 0) || math.IsInf(horizonSeconds, 0) {
		return nil, fmt.Errorf("deshlog: horizon %v not a positive finite duration", horizonSeconds)
	}
	events := make([]scenario.TraceEvent, 0, len(chains))
	for _, c := range chains {
		if c.Node < 0 || c.Node >= nodes {
			return nil, fmt.Errorf("deshlog: chain on node %d outside the %d-node span", c.Node, nodes)
		}
		if c.End > horizonSeconds {
			return nil, fmt.Errorf("deshlog: chain failing at t=%v beyond the %vs horizon", c.End, horizonSeconds)
		}
		lead := c.Lead()
		if lead < 0 {
			return nil, fmt.Errorf("deshlog: chain with negative lead %v", lead)
		}
		events = append(events, scenario.TraceEvent{T: c.End, Node: c.Node, Lead: lead, Seq: c.SeqID})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })
	t := &scenario.Trace{
		Version:        1,
		Name:           name,
		Nodes:          nodes,
		HorizonSeconds: horizonSeconds,
		Events:         events,
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
