package deshlog

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pckpt/internal/failure"
)

// Chain is one mined failure chain instance.
type Chain struct {
	// SeqID identifies the matched template.
	SeqID int
	// Node is where the chain unfolded.
	Node int
	// Start and End are the first-phrase and failure-phrase times; the
	// lead time is their difference (the Desh definition).
	Start, End float64
}

// Lead returns the chain's prediction lead time in seconds.
func (c Chain) Lead() float64 { return c.End - c.Start }

// Mine scans entries (any order) for complete chain template matches on a
// per-node basis, the Desh approach: phrases must appear in template
// order on the same node; an interrupted prefix that re-sees the first
// phrase restarts its window; prefixes that never complete are dropped.
func Mine(entries []Entry) []Chain {
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	templates := Templates()
	// phrase → (template index, position) lookup. Phrases are unique
	// across templates by construction; assert to catch edits.
	type pos struct{ tmpl, idx int }
	lookup := make(map[string]pos)
	for ti, t := range templates {
		for pi, ph := range t.Phrases {
			if _, dup := lookup[ph]; dup {
				panic(fmt.Sprintf("deshlog: duplicate phrase %q across templates", ph))
			}
			lookup[ph] = pos{ti, pi}
		}
	}

	type progress struct {
		next  int
		start float64
	}
	// state[node][template] → progress
	state := make(map[int][]progress)
	var out []Chain
	for _, e := range sorted {
		p, ok := lookup[e.Phrase]
		if !ok {
			continue // noise
		}
		st := state[e.Node]
		if st == nil {
			st = make([]progress, len(templates))
			state[e.Node] = st
		}
		pr := &st[p.tmpl]
		switch {
		case p.idx == 0:
			// (Re-)open a window at the first phrase.
			pr.next = 1
			pr.start = e.Time
		case p.idx == pr.next:
			pr.next++
		default:
			// Out-of-order phrase: the window is broken.
			pr.next = 0
		}
		if pr.next == len(templates[p.tmpl].Phrases) {
			out = append(out, Chain{SeqID: templates[p.tmpl].SeqID, Node: e.Node, Start: pr.start, End: e.Time})
			pr.next = 0
		}
	}
	return out
}

// SeqStats summarises one sequence's mined lead times: the per-boxplot
// numbers of the paper's Fig. 2a.
type SeqStats struct {
	SeqID         int
	Count         int
	Mean          float64
	Min, Max      float64
	P25, P50, P75 float64
}

// Stats aggregates mined chains per sequence, ordered by SeqID.
func Stats(chains []Chain) []SeqStats {
	bySeq := make(map[int][]float64)
	for _, c := range chains {
		bySeq[c.SeqID] = append(bySeq[c.SeqID], c.Lead())
	}
	ids := make([]int, 0, len(bySeq))
	for id := range bySeq {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]SeqStats, 0, len(ids))
	for _, id := range ids {
		leads := bySeq[id]
		sort.Float64s(leads)
		s := SeqStats{SeqID: id, Count: len(leads), Min: leads[0], Max: leads[len(leads)-1]}
		var sum float64
		for _, l := range leads {
			sum += l
		}
		s.Mean = sum / float64(len(leads))
		s.P25 = quantile(leads, 0.25)
		s.P50 = quantile(leads, 0.50)
		s.P75 = quantile(leads, 0.75)
		out = append(out, s)
	}
	return out
}

// quantile returns the q-quantile of sorted xs by linear interpolation.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 1 {
		return xs[0]
	}
	f := q * float64(len(xs)-1)
	i := int(f)
	if i >= len(xs)-1 {
		return xs[len(xs)-1]
	}
	frac := f - float64(i)
	return xs[i]*(1-frac) + xs[i+1]*frac
}

// ToLeadModel converts mined chains into a lead-time model usable by the
// failure package — closing the loop from raw logs to the simulator's
// prediction inputs. Sequences with fewer than two samples get a floor CV
// so the log-normal stays well-defined.
func ToLeadModel(chains []Chain) (*failure.LeadTimeModel, error) {
	st := Stats(chains)
	if len(st) == 0 {
		return nil, fmt.Errorf("deshlog: no chains to build a model from")
	}
	seqs := make([]failure.Sequence, 0, len(st))
	bySeq := make(map[int][]float64)
	for _, c := range chains {
		bySeq[c.SeqID] = append(bySeq[c.SeqID], c.Lead())
	}
	for _, s := range st {
		leads := bySeq[s.SeqID]
		cv := 0.05
		if len(leads) > 1 {
			var ss float64
			for _, l := range leads {
				d := l - s.Mean
				ss += d * d
			}
			std := math.Sqrt(ss / float64(len(leads)-1))
			if got := std / s.Mean; got > cv {
				cv = got
			}
		}
		if s.Mean <= 0 {
			return nil, fmt.Errorf("deshlog: sequence %d has non-positive mean lead", s.SeqID)
		}
		seqs = append(seqs, failure.Sequence{ID: s.SeqID, Weight: float64(s.Count), MeanLeadSec: s.Mean, CV: cv})
	}
	return failure.NewLeadTimeModel(seqs), nil
}

// RenderStats renders Fig. 2a-style per-sequence statistics as a table.
func RenderStats(st []SeqStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-6s %-10s %-8s %-8s %-8s %-8s %-8s\n", "seq", "count", "mean(s)", "min", "p25", "p50", "p75", "max")
	for _, s := range st {
		fmt.Fprintf(&b, "%-4d %-6d %-10.2f %-8.2f %-8.2f %-8.2f %-8.2f %-8.2f\n",
			s.SeqID, s.Count, s.Mean, s.Min, s.P25, s.P50, s.P75, s.Max)
	}
	return b.String()
}
