package stepsim

// WriteClass labels a PFS transfer for the bandwidth arbiter of a
// shared machine: the arbiter prices each class differently (the
// vulnerable-node lane is prioritized machine-wide, drains contend for
// shared drain slots). A solo run has no arbiter and never constructs
// these.
type WriteClass uint8

const (
	// ClassDrain is the asynchronous BB→PFS bleed-off of a periodic
	// checkpoint. Drains additionally contend for the machine's shared
	// drain slots.
	ClassDrain WriteClass = iota
	// ClassCollective is a blocking all-node PFS write: an M1 safeguard
	// or the phase-2 p-ckpt commit.
	ClassCollective
	// ClassVulnerable is a vulnerable node's prioritized phase-1 write —
	// the lane the arbiter serves ahead of fair-share traffic, so
	// p-ckpt's prioritization is visible machine-wide.
	ClassVulnerable
	// ClassRecovery is the post-failure PFS restore read.
	ClassRecovery
)

// String implements fmt.Stringer.
func (c WriteClass) String() string {
	switch c {
	case ClassDrain:
		return "drain"
	case ClassCollective:
		return "collective"
	case ClassVulnerable:
		return "vulnerable"
	case ClassRecovery:
		return "recovery"
	}
	return "unknown"
}

// FlowID identifies one in-flight transfer at the arbiter. The zero ID
// is never issued.
type FlowID int64

// Arbiter is the shared-machine bandwidth control plane the step tier
// routes its PFS transfers through when several applications contend
// for one aggregate ceiling (see internal/machine). All methods run on
// the simulation goroutine — an implementation schedules completions on
// the same engine the apps run on and must never call done inline from
// StartFlow.
//
// The contract mirrors the app's park/interrupt protocol: a blocking
// write starts a flow and parks until done fires; an injector interrupt
// suspends the flow (its bandwidth returns to the pool, its completion
// timer stops) while the app handles events, then resumes it; a
// voiding failure cancels it. Done fires exactly once, only while the
// flow is neither suspended nor cancelled.
type Arbiter interface {
	// StartFlow registers a transfer of volumeGB for application app.
	// soloSeconds is the transfer's uncontended duration — the arbiter
	// derives the flow's solo bandwidth volumeGB/soloSeconds and never
	// allocates more (contention can only slow a transfer down, never
	// speed it past its solo price).
	StartFlow(app int, class WriteClass, volumeGB, soloSeconds float64, done func()) FlowID
	// SuspendFlow pauses the flow: remaining volume is frozen and its
	// bandwidth is released to the other writers.
	SuspendFlow(id FlowID)
	// ResumeFlow restarts a suspended flow with its remaining volume.
	ResumeFlow(id FlowID)
	// CancelFlow abandons the flow; done will not fire.
	CancelFlow(id FlowID)
}
