package stepsim

import (
	"math"
	"testing"
)

// TestTieBreakFIFO pins the determinism contract: simultaneous events
// fire in schedule order, exactly like the process-based engine's heap.
func TestTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.At(1, func() { got = append(got, -1) })
	e.RunAll()
	want := []int{-1, 0, 1, 2, 3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order %v, want %v", got, want)
		}
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %g after RunAll, want 5", e.Now())
	}
}

// TestPrimitives exercises the HasPendingEvents / PeekNextEventTime /
// ProcessNextEvent decomposition an external shared-clock driver uses.
func TestPrimitives(t *testing.T) {
	e := NewEngine()
	if e.HasPendingEvents() {
		t.Fatal("fresh engine reports pending events")
	}
	if _, ok := e.PeekNextEventTime(); ok {
		t.Fatal("fresh engine peeks an event")
	}
	if e.ProcessNextEvent() {
		t.Fatal("fresh engine processed an event")
	}

	fired := 0
	e.At(2, func() { fired++ })
	e.At(7, func() { fired++ })
	if !e.HasPendingEvents() {
		t.Fatal("no pending events after scheduling")
	}
	if at, ok := e.PeekNextEventTime(); !ok || at != 2 {
		t.Fatalf("PeekNextEventTime = (%g, %t), want (2, true)", at, ok)
	}
	if !e.ProcessNextEvent() {
		t.Fatal("ProcessNextEvent found nothing")
	}
	if e.Now() != 2 || fired != 1 {
		t.Fatalf("after one step: now=%g fired=%d, want 2/1", e.Now(), fired)
	}
	if at, ok := e.PeekNextEventTime(); !ok || at != 7 {
		t.Fatalf("PeekNextEventTime = (%g, %t), want (7, true)", at, ok)
	}
	if !e.ProcessNextEvent() {
		t.Fatal("second ProcessNextEvent found nothing")
	}
	if e.ProcessNextEvent() {
		t.Fatal("drained engine still processed an event")
	}
	if fired != 2 || e.Now() != 7 {
		t.Fatalf("final state now=%g fired=%d, want 7/2", e.Now(), fired)
	}
}

// TestCancelledHeadSkipped: the primitives must report the next LIVE
// event — a cancelled timer at the heap head is invisible to Peek.
func TestCancelledHeadSkipped(t *testing.T) {
	e := NewEngine()
	fired := ""
	tm := e.AfterCancel(1, "victim", func() { fired += "victim" })
	e.At(3, func() { fired += "live" })
	e.Cancel(tm)
	if at, ok := e.PeekNextEventTime(); !ok || at != 3 {
		t.Fatalf("PeekNextEventTime = (%g, %t), want (3, true) past cancelled head", at, ok)
	}
	e.RunAll()
	if fired != "live" {
		t.Fatalf("fired = %q, want only the live event", fired)
	}
	// Cancel of the zero Timer and double cancel are no-ops.
	e.Cancel(Timer{})
	e.Cancel(tm)
}

// TestInterruptReschedulePattern pins the wait/interrupt shape app.go
// relies on: cancel the pending wake, schedule the interrupt path at the
// current time, and the interrupt fires before later same-time events
// scheduled after it but after earlier ones — pure (time, seq) order.
func TestInterruptReschedulePattern(t *testing.T) {
	e := NewEngine()
	var order []string
	wake := e.AfterCancel(100, "app", func() { order = append(order, "wake") })
	e.At(5, func() {
		order = append(order, "injector")
		e.Cancel(wake)
		e.AtNamed(0, "app", func() { order = append(order, "interrupt") })
	})
	e.At(5, func() { order = append(order, "later") })
	e.RunAll()
	want := []string{"injector", "later", "interrupt"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestRunHorizon: Run(until) advances the clock to the horizon when
// events remain beyond it, mirroring sim.Env.Run.
func TestRunHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(30, func() { fired++ })
	if now := e.Run(20); now != 20 {
		t.Fatalf("Run(20) = %g, want 20", now)
	}
	if fired != 1 {
		t.Fatalf("fired %d events before horizon, want 1", fired)
	}
	if now := e.RunAll(); now != 30 || fired != 2 {
		t.Fatalf("RunAll = %g fired=%d, want 30/2", now, fired)
	}
	// Run past the last event returns the last event time, not the horizon.
	e2 := NewEngine()
	e2.At(4, func() {})
	if now := e2.Run(50); now != 4 {
		t.Fatalf("Run(50) = %g, want 4 (heap drained first)", now)
	}
}

// TestSchedulePastPanics mirrors the process engine's guard.
func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.schedule(5, e.newEvent())
	})
	e.RunAll()
}

// TestWatchdogEventLimit: a self-rescheduling zero-delay event (the step
// engine's livelock shape) trips the armed event limit with a
// *WatchdogError naming the event.
func TestWatchdogEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(100, 0)
	var spin func()
	spin = func() { e.AtNamed(0, "spinner", spin) }
	e.AtNamed(0, "spinner", spin)
	defer func() {
		w, ok := recover().(*WatchdogError)
		if !ok {
			t.Fatalf("expected *WatchdogError, got %v", w)
		}
		if w.Reason != "event limit" || w.Name != "spinner" {
			t.Fatalf("WatchdogError = %+v, want event limit on spinner", w)
		}
	}()
	e.RunAll()
}

// TestWatchdogSimTimeLimit trips the clock ceiling.
func TestWatchdogSimTimeLimit(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(0, 50)
	var tick func()
	tick = func() { e.At(10, tick) }
	e.At(10, tick)
	defer func() {
		w, ok := recover().(*WatchdogError)
		if !ok || w.Reason != "sim-time limit" {
			t.Fatalf("expected sim-time WatchdogError, got %v", w)
		}
	}()
	e.RunAll()
}

// TestCompactionPreservesOrder: a storm of cancellations triggers the
// lazy-cancel compaction pass, which must not reorder surviving
// same-timestamp events.
func TestCompactionPreservesOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	timers := make([]Timer, 0, 200)
	for i := 0; i < 200; i++ {
		i := i
		if i%4 == 0 {
			e.At(100, func() { got = append(got, i) })
			continue
		}
		timers = append(timers, e.AfterCancel(100, "victim", func() { got = append(got, -i) }))
	}
	for _, tm := range timers {
		e.Cancel(tm) // crosses the ≥64 && ≥half threshold → compaction
	}
	e.RunAll()
	if len(got) != 50 {
		t.Fatalf("fired %d events, want the 50 survivors", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("survivors fired out of schedule order: %v", got)
		}
	}
}

// TestReleaseReuse: a released engine comes back with a zero clock and
// no leftover watchdog, and a non-empty engine refuses to be pooled.
func TestReleaseReuse(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(10, 10)
	e.At(5, func() {})
	e.RunAll()
	e.Release()
	e2 := NewEngine()
	if e2.Now() != 0 || e2.HasPendingEvents() {
		t.Fatalf("reused engine not reset: now=%g pending=%t", e2.Now(), e2.HasPendingEvents())
	}
	e2.At(1, func() {})
	e2.Release() // pending events: must be a no-op
	if !e2.HasPendingEvents() {
		t.Fatal("Release with pending events dropped them")
	}
	e2.RunAll()
	e2.Release()
}

// TestDispatchedCounts: the step-rate numerator counts live dispatches
// only, not cancelled entries.
func TestDispatchedCounts(t *testing.T) {
	e := NewEngine()
	tm := e.AfterCancel(1, "x", func() {})
	e.Cancel(tm)
	for i := 0; i < 5; i++ {
		e.At(float64(i), func() {})
	}
	e.RunAll()
	if e.Dispatched() != 5 {
		t.Fatalf("Dispatched = %d, want 5", e.Dispatched())
	}
}

// TestSharedClockInterleave drives two engines the way a multi-instance
// driver would — always stepping the one with the earlier next event —
// and checks the merged order is globally time-sorted.
func TestSharedClockInterleave(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	var merged []float64
	tick := func(e *Engine, period float64, n int) {
		var fn func()
		i := 0
		fn = func() {
			merged = append(merged, e.Now())
			i++
			if i < n {
				e.At(period, fn)
			}
		}
		e.At(period, fn)
	}
	tick(a, 3, 10)
	tick(b, 5, 6)
	for {
		ta, oka := a.PeekNextEventTime()
		tb, okb := b.PeekNextEventTime()
		switch {
		case !oka && !okb:
			goto done
		case !okb || (oka && ta <= tb):
			if !a.ProcessNextEvent() {
				t.Fatal("a had a peeked event but processed nothing")
			}
		default:
			if !b.ProcessNextEvent() {
				t.Fatal("b had a peeked event but processed nothing")
			}
		}
	}
done:
	if len(merged) != 16 {
		t.Fatalf("merged %d events, want 16", len(merged))
	}
	last := math.Inf(-1)
	for _, at := range merged {
		if at < last {
			t.Fatalf("merged clock went backwards: %v", merged)
		}
		last = at
	}
}
