package stepsim_test

import (
	"testing"

	"pckpt/internal/stepsim"
)

// Abort kills a running app mid-flight: the partial run carries the
// truncated marker and the abort-time wall clock, the engine drains
// without the app scheduling further work, and the accounting is frozen
// at the abort instant.
func TestAppAbortTruncatesMidFlight(t *testing.T) {
	for name, plat := range testPlatforms() {
		plat := plat
		t.Run(name, func(t *testing.T) {
			for _, id := range stepModels {
				for seed := uint64(1); seed <= 3; seed++ {
					solo := stepsim.Simulate(stepsim.Config{Model: id, Config: plat}, seed)
					cut := solo.WallSeconds / 2
					eng := stepsim.NewEngine()
					h := stepsim.StartApp(eng, stepsim.Config{Model: id, Config: plat}, seed, stepsim.AppOptions{})
					var partial = struct {
						res  bool
						wall float64
					}{}
					eng.At(cut, func() {
						r := h.Abort()
						partial.res = r.Truncated
						partial.wall = r.WallSeconds
					})
					eng.RunAll()
					eng.Release()
					if !h.Done() {
						t.Fatalf("%v seed %d: aborted app not Done", id, seed)
					}
					if !partial.res {
						t.Fatalf("%v seed %d: aborted run not marked truncated", id, seed)
					}
					if partial.wall != cut {
						t.Fatalf("%v seed %d: aborted wall %g, want the abort instant %g", id, seed, partial.wall, cut)
					}
					final := h.Result()
					if !final.Truncated || final.WallSeconds != cut {
						t.Fatalf("%v seed %d: post-drain result (trunc=%v wall=%g) moved past the abort (want trunc at %g)",
							id, seed, final.Truncated, final.WallSeconds, cut)
					}
					if final.WallSeconds >= solo.WallSeconds {
						t.Fatalf("%v seed %d: aborted wall %g not shorter than solo wall %g", id, seed, final.WallSeconds, solo.WallSeconds)
					}
				}
			}
		})
	}
}

// Aborting a finished app is a no-op returning the final result.
func TestAppAbortAfterCompletionIsNoop(t *testing.T) {
	plat := testPlatforms()["clean"]
	for _, id := range stepModels {
		solo := stepsim.Simulate(stepsim.Config{Model: id, Config: plat}, 2)
		eng := stepsim.NewEngine()
		h := stepsim.StartApp(eng, stepsim.Config{Model: id, Config: plat}, 2, stepsim.AppOptions{})
		eng.RunAll()
		got := h.Abort()
		eng.Release()
		if got != solo {
			t.Fatalf("%v: Abort after completion returned a different result\nsolo:  %+v\nabort: %+v", id, solo, got)
		}
		if got.Truncated != solo.Truncated {
			t.Fatalf("%v: post-completion Abort flipped the truncated marker", id)
		}
	}
}
