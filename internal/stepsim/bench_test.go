package stepsim_test

import (
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/stepsim"
	"pckpt/internal/workload"
)

// BenchmarkStepHotPath is the step-tier counterpart of
// sim.BenchmarkWaitHotPath: one consumer repeatedly sleeping on the
// clock. In the process engine each wait is a park/unpark pair across a
// goroutine boundary; here it is a heap push and a function call. The
// events/sec ratio between the two benches is the tier-0 headroom claim
// benchfmt tracks.
func BenchmarkStepHotPath(b *testing.B) {
	e := stepsim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.At(1, tick)
		}
	}
	e.At(1, tick)
	b.ResetTimer()
	e.RunAll()
	b.StopTimer()
	if n != b.N {
		b.Fatalf("dispatched %d events, want %d", n, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	e.Release()
}

// BenchmarkStepInterrupt measures the cancel-and-reschedule pattern the
// app port uses for every delivered prediction: park on a long timer,
// cancel it, run the interrupt path at the current time. The process
// engine's equivalent is BenchmarkInterruptHeavy.
func BenchmarkStepInterrupt(b *testing.B) {
	e := stepsim.NewEngine()
	n := 0
	var park func()
	park = func() {
		wake := e.AfterCancel(1e9, "sleeper", func() { b.Fatal("long wake fired") })
		e.AtNamed(1, "interrupter", func() {
			e.Cancel(wake)
			n++
			if n < b.N {
				e.AtNamed(0, "sleeper", park)
			}
		})
	}
	e.AtNamed(0, "sleeper", park)
	b.ResetTimer()
	e.RunAll()
	b.StopTimer()
	if n != b.N {
		b.Fatalf("ran %d interrupts, want %d", n, b.N)
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "interrupts/sec")
	e.Release()
}

// BenchmarkStepEngineLifecycle measures pooled construct/run/release —
// the per-run overhead a sweep pays on top of the event loop.
func BenchmarkStepEngineLifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := stepsim.NewEngine()
		for j := 0; j < 16; j++ {
			e.At(float64(j), func() {})
		}
		e.RunAll()
		e.Release()
	}
}

// BenchmarkStepSimulate runs the full ported model end to end — the
// number sweeps actually see, failure stream and policy machinery
// included.
func BenchmarkStepSimulate(b *testing.B) {
	cfg := stepsim.Config{
		Model: policy.M2,
		Config: platform.Config{
			App:    workload.App{Name: "bench-48", Nodes: 48, TotalCkptGB: 960, ComputeHours: 24},
			System: failure.System{Name: "busy", Shape: 0.75, ScaleHours: 40, Nodes: 48},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stepsim.Simulate(cfg, uint64(i)+1)
	}
}
