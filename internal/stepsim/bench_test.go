package stepsim_test

import (
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/queue"
	"pckpt/internal/stepsim"
	"pckpt/internal/workload"
)

// BenchmarkStepHotPath is the step-tier counterpart of
// sim.BenchmarkWaitHotPath: one consumer repeatedly sleeping on the
// clock. In the process engine each wait is a park/unpark pair across a
// goroutine boundary; here it is a heap push and a function call. The
// events/sec ratio between the two benches is the tier-0 headroom claim
// benchfmt tracks.
func BenchmarkStepHotPath(b *testing.B) {
	e := stepsim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.At(1, tick)
		}
	}
	e.At(1, tick)
	b.ResetTimer()
	e.RunAll()
	b.StopTimer()
	if n != b.N {
		b.Fatalf("dispatched %d events, want %d", n, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	e.Release()
}

// BenchmarkStepInterrupt measures the cancel-and-reschedule pattern the
// app port uses for every delivered prediction: park on a long timer,
// cancel it, run the interrupt path at the current time. The process
// engine's equivalent is BenchmarkInterruptHeavy.
func BenchmarkStepInterrupt(b *testing.B) {
	e := stepsim.NewEngine()
	n := 0
	var park func()
	park = func() {
		wake := e.AfterCancel(1e9, "sleeper", func() { b.Fatal("long wake fired") })
		e.AtNamed(1, "interrupter", func() {
			e.Cancel(wake)
			n++
			if n < b.N {
				e.AtNamed(0, "sleeper", park)
			}
		})
	}
	e.AtNamed(0, "sleeper", park)
	b.ResetTimer()
	e.RunAll()
	b.StopTimer()
	if n != b.N {
		b.Fatalf("ran %d interrupts, want %d", n, b.N)
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "interrupts/sec")
	e.Release()
}

// BenchmarkStepEngineLifecycle measures pooled construct/run/release —
// the per-run overhead a sweep pays on top of the event loop.
func BenchmarkStepEngineLifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := stepsim.NewEngine()
		for j := 0; j < 16; j++ {
			e.At(float64(j), func() {})
		}
		e.RunAll()
		e.Release()
	}
}

// BenchmarkStepEpisodeDrain is the step-tier counterpart of
// pckpt.BenchmarkEpisodeProcess: one full episode drain per iteration
// in the exact shape the episode port uses — arrivals push into a
// lead-time priority queue, an idle check kicks the arbiter, and every
// grant is a heap pop plus a w-second continuation. Same 16-node
// scenario shape as the process bench; the commits/sec ratio between
// the two is the episode-machinery headroom claim benchfmt gates on.
func BenchmarkStepEpisodeDrain(b *testing.B) {
	const (
		k = 16
		w = 1.5
	)
	commits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := stepsim.NewEngine()
		var q queue.PQ[int]
		busy := false
		var grant func()
		grant = func() {
			if q.Len() == 0 {
				busy = false
				return
			}
			busy = true
			q.Pop()
			commits++
			e.At(w, grant)
		}
		for j := 0; j < k; j++ {
			node := 1 + j*3
			deadline := float64((j*7)%k + 2)
			e.At(0.5*w*float64(j), func() {
				q.Push(deadline, node)
				if !busy {
					grant()
				}
			})
		}
		e.RunAll()
		e.Release()
	}
	b.StopTimer()
	if commits != k*b.N {
		b.Fatalf("committed %d nodes, want %d", commits, k*b.N)
	}
	b.ReportMetric(float64(commits)/b.Elapsed().Seconds(), "commits/sec")
}

// benchPlatform is the 48-node cohort every full-model bench runs on.
func benchPlatform() platform.Config {
	return platform.Config{
		App:    workload.App{Name: "bench-48", Nodes: 48, TotalCkptGB: 960, ComputeHours: 24},
		System: failure.System{Name: "busy", Shape: 0.75, ScaleHours: 40, Nodes: 48},
	}
}

// BenchmarkStepSimulate runs the full ported model end to end — the
// number sweeps actually see, failure stream and policy machinery
// included.
func BenchmarkStepSimulate(b *testing.B) {
	cfg := stepsim.Config{Model: policy.M2, Config: benchPlatform()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stepsim.Simulate(cfg, uint64(i)+1)
	}
}

// BenchmarkStepSimulateP1 and BenchmarkStepSimulateP2 track the episode
// models end to end on the step tier — the sweep-facing numbers behind
// the default-tier flip. Informational: the gated claim is the
// micro-bench pair above.
func BenchmarkStepSimulateP1(b *testing.B) {
	cfg := stepsim.Config{Model: policy.P1, Config: benchPlatform()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stepsim.Simulate(cfg, uint64(i)+1)
	}
}

func BenchmarkStepSimulateP2(b *testing.B) {
	cfg := stepsim.Config{Model: policy.P2, Config: benchPlatform()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stepsim.Simulate(cfg, uint64(i)+1)
	}
}
