// Package stepsim is the tier-0 discrete-event engine: a single-goroutine,
// callback/step-based core decomposed into the three primitives a
// shared-clock multi-instance loop needs —
//
//	HasPendingEvents / PeekNextEventTime / ProcessNextEvent
//
// — over the same stable (time, seq) heap the process-based engine
// (internal/sim) uses. There are no goroutines and no channels: an event
// is a closure, dispatching one is a function call, and blocking code is
// written in continuation-passing style (see app.go for the C/R port).
//
// The engine reproduces internal/sim's scheduling semantics exactly:
// simultaneous events fire in schedule order (heap seq tie-break),
// cancellation is lazy with threshold compaction, scheduling into the
// past panics, Run(until) advances the clock to the horizon, and an
// armed watchdog kills livelocked runs with a diagnostic panic. A
// consumer that schedules the same closures at the same logical points
// as a process-based run therefore observes the identical event order —
// which is what lets the step tier cross-validate bit-identically
// against internal/crmodel (see stepsim_test.go).
//
// The decomposition is deliberately the shape inference-sim's
// ClusterSimulator uses: an external driver can interleave several
// engines on one shared clock by repeatedly asking each for its next
// event time and stepping the earliest.
package stepsim

import (
	"fmt"
	"math"
	"sync"

	"pckpt/internal/queue"
)

// event is one heap entry: a closure to run at an absolute time.
// Cancelled entries stay in the heap and are skipped when popped, making
// timer cancellation O(1).
type event struct {
	at        float64 // absolute fire time, mirrored from the heap key
	fn        func()
	cancelled bool
	// name labels the event's owner for watchdog diagnostics.
	name string
}

// Timer is a cancellable scheduled event handle (the step-engine
// equivalent of a parked process's pending wake).
type Timer struct{ ev *event }

// Engine is the step-based simulation core: a virtual clock plus the
// pending-event heap. Create one with NewEngine, schedule closures, then
// drive it with ProcessNextEvent (or Run/RunAll).
type Engine struct {
	now    float64
	events queue.PQ[*event]
	// free is the event free list: every entry popped from the heap is
	// recycled, so a steady-state run reuses a small working set.
	free []*event
	// ncancelled counts cancelled entries still in the heap; when they
	// dominate, one compaction pass removes them (same thresholds as
	// internal/sim, and compaction preserves (key, seq) pop order).
	ncancelled int
	// Watchdog limits (see SetWatchdog); zero disables each check.
	wdMaxEvents uint64
	wdMaxSim    float64
	wdEvents    uint64
	// dispatched counts live events processed since construction.
	dispatched uint64
}

// WatchdogError is the panic value ProcessNextEvent raises when an armed
// watchdog limit trips, mirroring sim.WatchdogError.
type WatchdogError struct {
	// Reason says which limit tripped ("event limit" or "sim-time limit").
	Reason string
	// Events is how many events had been dispatched when the limit tripped.
	Events uint64
	// Now is the simulated time at the trip.
	Now float64
	// Name labels the event that tripped the limit.
	Name string
}

func (w *WatchdogError) Error() string {
	return fmt.Sprintf("stepsim: watchdog %s exceeded after %d events at t=%gs (next event: %s)",
		w.Reason, w.Events, w.Now, w.Name)
}

// enginePool recycles released engines — principally the event-heap
// backing array and the free list — across runs of a sweep.
var enginePool = sync.Pool{New: func() any { return new(Engine) }}

// NewEngine returns an empty engine with the clock at zero. It may reuse
// the buffers of a previously Released engine.
func NewEngine() *Engine {
	return enginePool.Get().(*Engine)
}

// Release hands the engine back for reuse by a later NewEngine. Call it
// only when the run is over: with events still pending, Release is a
// no-op and the engine is simply dropped. Using an engine after
// releasing it is a bug.
func (e *Engine) Release() {
	if e.events.Len() != 0 {
		return
	}
	e.now = 0
	e.ncancelled = 0
	e.wdMaxEvents = 0
	e.wdMaxSim = 0
	e.wdEvents = 0
	e.dispatched = 0
	enginePool.Put(e)
}

// newEvent takes an entry off the free list, or allocates one.
func (e *Engine) newEvent() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// freeEvent zeroes an entry and returns it to the free list. The caller
// must guarantee no reference survives; dispatch copies the payload
// before freeing, and a cancelled Timer's handle is dropped by Cancel.
func (e *Engine) freeEvent(ev *event) {
	*ev = event{}
	e.free = append(e.free, ev)
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Dispatched returns how many live events have been processed — the
// step-rate numerator for benchmarks and throughput accounting.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// schedule pushes an event at an absolute time.
func (e *Engine) schedule(at float64, ev *event) {
	if at < e.now {
		panic(fmt.Sprintf("stepsim: scheduling into the past (at=%g, now=%g)", at, e.now))
	}
	ev.at = at
	e.events.Push(at, ev)
}

// At runs fn at the given delay from now. fn executes on the driving
// goroutine and may schedule further events, but must not block.
func (e *Engine) At(delay float64, fn func()) {
	ev := e.newEvent()
	ev.fn = fn
	e.schedule(e.now+delay, ev)
}

// AtNamed is At with a diagnostic name attached to the event, reported
// by watchdog trips.
func (e *Engine) AtNamed(delay float64, name string, fn func()) {
	ev := e.newEvent()
	ev.fn = fn
	ev.name = name
	e.schedule(e.now+delay, ev)
}

// AfterCancel schedules fn like AtNamed and returns a Timer that Cancel
// can retract — the engine's interruptible wait: a consumer parks by
// scheduling its continuation on a timer, and an interrupt cancels the
// timer and schedules the interrupt path at the current time instead.
func (e *Engine) AfterCancel(delay float64, name string, fn func()) Timer {
	ev := e.newEvent()
	ev.fn = fn
	ev.name = name
	e.schedule(e.now+delay, ev)
	return Timer{ev: ev}
}

// AtTimeNamed runs fn at absolute engine time at (clamped to now). An
// offset-started app schedules every deadline this way — one uniform
// t0+local rounding per event — so deadlines that tie in the app's
// local clock still tie on the shared clock; re-deriving them from
// eng.Now() at different moments would split such ties by an ulp and
// reorder the run.
func (e *Engine) AtTimeNamed(at float64, name string, fn func()) {
	ev := e.newEvent()
	ev.fn = fn
	ev.name = name
	e.schedule(math.Max(at, e.now), ev)
}

// AfterCancelAt is AfterCancel at an absolute engine time (clamped to
// now).
func (e *Engine) AfterCancelAt(at float64, name string, fn func()) Timer {
	ev := e.newEvent()
	ev.fn = fn
	ev.name = name
	e.schedule(math.Max(at, e.now), ev)
	return Timer{ev: ev}
}

// Cancel lazily retracts a scheduled timer, compacting the heap when
// dead entries reach both an absolute floor and half the heap. Cancelling
// an already-cancelled or fired timer is a bug the zero handle guards:
// Cancel on the zero Timer is a no-op.
func (e *Engine) Cancel(t Timer) {
	if t.ev == nil || t.ev.cancelled {
		return
	}
	t.ev.cancelled = true
	e.ncancelled++
	if e.ncancelled >= 64 && e.ncancelled*2 >= e.events.Len() {
		e.compact()
	}
}

// compact removes every cancelled entry in one pass. Pop order is a pure
// function of each entry's (key, seq) pair, which compaction preserves.
func (e *Engine) compact() {
	e.events.RemoveFunc(func(ev *event) bool {
		if ev.cancelled {
			e.freeEvent(ev)
			return true
		}
		return false
	})
	e.ncancelled = 0
}

// settle drops cancelled entries off the heap head so the Peek/Has
// primitives report the next LIVE event.
func (e *Engine) settle() {
	for e.events.Len() > 0 {
		_, ev, _ := e.events.Peek()
		if !ev.cancelled {
			return
		}
		e.events.Pop()
		e.ncancelled--
		e.freeEvent(ev)
	}
}

// HasPendingEvents reports whether any live event remains.
func (e *Engine) HasPendingEvents() bool {
	e.settle()
	return e.events.Len() > 0
}

// PeekNextEventTime returns the absolute time of the next live event.
// The boolean is false when no live event remains. A shared-clock driver
// interleaving several engines peeks each and steps the earliest.
func (e *Engine) PeekNextEventTime() (float64, bool) {
	e.settle()
	if e.events.Len() == 0 {
		return 0, false
	}
	at, _, _ := e.events.Peek()
	return at, true
}

// ProcessNextEvent advances the clock to the next live event and runs it.
// It reports false when no live event remained (the clock is unchanged).
// The result must not be ignored in driver loops — a discarded false
// spins forever (cmd/vet-ignored enforces this).
func (e *Engine) ProcessNextEvent() bool {
	e.settle()
	if e.events.Len() == 0 {
		return false
	}
	_, ev := e.events.Pop()
	e.now = ev.at
	e.watch(ev)
	// Copy the payload and recycle the entry up front: fn may schedule
	// new events that reuse it, and no reference to a dispatched event
	// survives (Cancel guards fired timers via the cancelled flag only
	// until this pop).
	fn := ev.fn
	e.freeEvent(ev)
	e.dispatched++
	fn()
	return true
}

// Run processes events until none remain or the clock would pass until.
// When events remain beyond the horizon, the clock still advances to
// until — mirroring sim.Env.Run and SimPy's run(until=...) — so Now()
// afterwards is the horizon. It returns the final simulation time.
func (e *Engine) Run(until float64) float64 {
	for {
		at, ok := e.PeekNextEventTime()
		if !ok {
			return e.now
		}
		if at > until {
			e.now = until
			return e.now
		}
		if !e.ProcessNextEvent() {
			return e.now
		}
	}
}

// RunAll processes events until none remain and returns the final time.
func (e *Engine) RunAll() float64 {
	for e.ProcessNextEvent() {
	}
	return e.now
}

// SetWatchdog arms (or, with two zeros, disarms) the watchdog:
// ProcessNextEvent panics with a *WatchdogError once more than maxEvents
// events have been dispatched since arming, or once the clock reaches an
// event past maxSimSeconds. Zero disables the respective limit; the
// event counter restarts at every call, and Release resets both limits.
func (e *Engine) SetWatchdog(maxEvents uint64, maxSimSeconds float64) {
	e.wdMaxEvents = maxEvents
	e.wdMaxSim = maxSimSeconds
	e.wdEvents = 0
}

// watch enforces the armed limits against the live entry about to run.
func (e *Engine) watch(ev *event) {
	if e.wdMaxEvents == 0 && e.wdMaxSim == 0 {
		return
	}
	e.wdEvents++
	name := ev.name
	if name == "" {
		name = "(callback)"
	}
	if e.wdMaxEvents > 0 && e.wdEvents > e.wdMaxEvents {
		panic(&WatchdogError{Reason: "event limit", Events: e.wdEvents, Now: e.now, Name: name})
	}
	if e.wdMaxSim > 0 && e.now > e.wdMaxSim {
		panic(&WatchdogError{Reason: "sim-time limit", Events: e.wdEvents, Now: e.now, Name: name})
	}
}
