package stepsim_test

import (
	"strings"
	"testing"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/metrics"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/stepsim"
	"pckpt/internal/trace"
	"pckpt/internal/workload"
)

// stepModels is the catalogue the step tier implements — all five
// models, episode machinery included.
var stepModels = []policy.ID{policy.B, policy.M1, policy.M2, policy.P1, policy.P2}

// testPlatforms is the configuration matrix the bit-identity suite runs:
// the crossval platform, a degraded platform with every fault knob
// armed, a stretched-lead variant, and a replayed failure trace — the
// parametric and replayed halves of the acceptance criterion.
func testPlatforms() map[string]platform.Config {
	app := workload.App{Name: "crossval-48", Nodes: 48, TotalCkptGB: 960, ComputeHours: 24}
	sys := failure.System{Name: "busy", Shape: 0.75, ScaleHours: 40, Nodes: 48}
	return map[string]platform.Config{
		"clean": {App: app, System: sys},
		"degraded": {App: app, System: sys, Faults: faultinject.Config{
			BBWriteFailProb:  0.08,
			PFSWriteFailProb: 0.06,
			CorruptProb:      0.05,
			RestartFailProb:  0.10,
			CascadeProb:      0.07,
		}},
		"stretched-leads": {App: app, System: sys, LeadScale: 2.5, FNRate: 0.3, FPRate: 0.25},
		"replay":          {App: app, System: sys, Replay: testReplay()},
	}
}

// testReplay is a hand-written failure trace: predicted, unpredicted,
// and spurious events, with same-instant collisions to stress the
// tie-break path.
func testReplay() *failure.Replay {
	re := &failure.Replay{
		Name:           "stepsim-bitid",
		Nodes:          48,
		HorizonSeconds: 6 * 3600,
		Events: []failure.ReplayEvent{
			{T: 1800, Node: 3, Lead: 600, Seq: 1},
			{T: 4000, Node: 7, Lead: 0},
			{T: 4000, Node: 9, Lead: 1200, Seq: 2},
			{T: 7200, Node: 11, Lead: 90, Seq: 1},
			{T: 9000, Node: 20, Lead: 300, Seq: 3, Spurious: true},
			{T: 12000, Node: 20, Lead: 2400, Seq: 3},
			{T: 15000, Node: 41, Lead: 0},
			{T: 20000, Node: 5, Lead: 5400, Seq: 2},
		},
	}
	if err := re.Validate(); err != nil {
		panic(err)
	}
	return re
}

// TestCrossValidationStepBitIdentity is the tentpole's acceptance gate: for
// every supported model, platform variant, and seed, the step tier's
// RunResult must equal crmodel's bit for bit — same failure stream, same
// float arithmetic, same event ordering, same fault plan.
func TestCrossValidationStepBitIdentity(t *testing.T) {
	for name, plat := range testPlatforms() {
		plat := plat
		t.Run(name, func(t *testing.T) {
			for _, id := range stepModels {
				for seed := uint64(1); seed <= 8; seed++ {
					app := crmodel.Simulate(crmodel.Config{Model: id, Config: plat}, seed)
					step := stepsim.Simulate(stepsim.Config{Model: id, Config: plat}, seed)
					if app != step {
						t.Errorf("%v seed %d: step tier diverged\napp:  %+v\nstep: %+v", id, seed, app, step)
					}
				}
			}
		})
	}
}

// TestReplaySeedInvariant: a replayed run draws nothing from the seed's
// failure substream, so the step tier — like the app tier — must be
// bit-identical across seeds in replay mode.
func TestReplaySeedInvariant(t *testing.T) {
	plat := testPlatforms()["replay"]
	for _, id := range stepModels {
		ref := stepsim.Simulate(stepsim.Config{Model: id, Config: plat}, 1)
		for seed := uint64(2); seed <= 4; seed++ {
			if got := stepsim.Simulate(stepsim.Config{Model: id, Config: plat}, seed); got != ref {
				t.Errorf("%v: replayed run depends on seed %d\nref: %+v\ngot: %+v", id, seed, ref, got)
			}
		}
	}
}

// TestTraceTimelineParity compares the recorded timelines event for
// event: not just the final accounting but every intermediate state
// transition must land at the same time, node, and progress.
func TestTraceTimelineParity(t *testing.T) {
	plat := testPlatforms()["clean"]
	for _, id := range stepModels {
		var appBuf, stepBuf trace.Buffer
		crmodel.Simulate(crmodel.Config{Model: id, Config: plat, Trace: &appBuf}, 7)
		stepsim.Simulate(stepsim.Config{Model: id, Config: plat, Trace: &stepBuf}, 7)
		if appBuf.Len() != stepBuf.Len() {
			t.Errorf("%v: timeline length %d vs %d", id, appBuf.Len(), stepBuf.Len())
			continue
		}
		for i, ae := range appBuf.Events() {
			if se := stepBuf.Events()[i]; ae != se {
				t.Errorf("%v: timeline diverges at entry %d\napp:  %+v\nstep: %+v", id, i, ae, se)
				break
			}
		}
	}
}

// TestMeteredRunIdentical: attaching a metrics registry must not change
// the result (the same contract the app tier keeps), and the step tier's
// series must land under its own prefix.
func TestMeteredRunIdentical(t *testing.T) {
	plat := testPlatforms()["clean"]
	for _, id := range stepModels {
		plain := stepsim.Simulate(stepsim.Config{Model: id, Config: plat}, 3)
		reg := metrics.New()
		metered := stepsim.Simulate(stepsim.Config{Model: id, Config: plat, Metrics: reg}, 3)
		if plain != metered {
			t.Errorf("%v: metering changed the result\nplain:   %+v\nmetered: %+v", id, plain, metered)
		}
		snap := reg.Snapshot(metered.WallSeconds)
		prefix := "stepsim." + id.String() + "."
		found := false
		for name := range snap.Histograms {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%v: no %q series in the metered snapshot", id, prefix)
		}
	}
}

// TestSupports pins the tier's catalogue: the full five-model set since
// the episode port, and still a hard no on invalid IDs.
func TestSupports(t *testing.T) {
	for _, id := range policy.All() {
		if !stepsim.Supports(id) {
			t.Errorf("Supports(%v) = false, want true", id)
		}
	}
	if stepsim.Supports(policy.ID(250)) {
		t.Error("Supports accepted an invalid model ID")
	}
}

// TestValidateRejectsInvalidModel: Validate must still refuse a model
// outside the catalogue (the old episode guard is gone; the catalogue
// check is not).
func TestValidateRejectsInvalidModel(t *testing.T) {
	plat := testPlatforms()["clean"]
	if err := (stepsim.Config{Model: policy.ID(250), Config: plat}).Validate(); err == nil {
		t.Error("Validate accepted an invalid model ID")
	}
	for _, id := range policy.All() {
		if err := (stepsim.Config{Model: id, Config: plat}).Validate(); err != nil {
			t.Errorf("Validate rejected catalogue model %v: %v", id, err)
		}
	}
}
