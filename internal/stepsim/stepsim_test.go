package stepsim_test

import (
	"math"
	"strings"
	"testing"

	"pckpt/internal/crmodel"
	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/metrics"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/stepsim"
	"pckpt/internal/trace"
	"pckpt/internal/workload"
)

// stepModels is the catalogue the step tier implements — all five
// models, episode machinery included.
var stepModels = []policy.ID{policy.B, policy.M1, policy.M2, policy.P1, policy.P2}

// testPlatforms is the configuration matrix the bit-identity suite runs:
// the crossval platform, a degraded platform with every fault knob
// armed, a stretched-lead variant, and a replayed failure trace — the
// parametric and replayed halves of the acceptance criterion.
func testPlatforms() map[string]platform.Config {
	app := workload.App{Name: "crossval-48", Nodes: 48, TotalCkptGB: 960, ComputeHours: 24}
	sys := failure.System{Name: "busy", Shape: 0.75, ScaleHours: 40, Nodes: 48}
	return map[string]platform.Config{
		"clean": {App: app, System: sys},
		"degraded": {App: app, System: sys, Faults: faultinject.Config{
			BBWriteFailProb:  0.08,
			PFSWriteFailProb: 0.06,
			CorruptProb:      0.05,
			RestartFailProb:  0.10,
			CascadeProb:      0.07,
		}},
		"stretched-leads": {App: app, System: sys, LeadScale: 2.5, FNRate: 0.3, FPRate: 0.25},
		"replay":          {App: app, System: sys, Replay: testReplay()},
	}
}

// testReplay is a hand-written failure trace: predicted, unpredicted,
// and spurious events, with same-instant collisions to stress the
// tie-break path.
func testReplay() *failure.Replay {
	re := &failure.Replay{
		Name:           "stepsim-bitid",
		Nodes:          48,
		HorizonSeconds: 6 * 3600,
		Events: []failure.ReplayEvent{
			{T: 1800, Node: 3, Lead: 600, Seq: 1},
			{T: 4000, Node: 7, Lead: 0},
			{T: 4000, Node: 9, Lead: 1200, Seq: 2},
			{T: 7200, Node: 11, Lead: 90, Seq: 1},
			{T: 9000, Node: 20, Lead: 300, Seq: 3, Spurious: true},
			{T: 12000, Node: 20, Lead: 2400, Seq: 3},
			{T: 15000, Node: 41, Lead: 0},
			{T: 20000, Node: 5, Lead: 5400, Seq: 2},
		},
	}
	if err := re.Validate(); err != nil {
		panic(err)
	}
	return re
}

// TestCrossValidationStepBitIdentity is the tentpole's acceptance gate: for
// every supported model, platform variant, and seed, the step tier's
// RunResult must equal crmodel's bit for bit — same failure stream, same
// float arithmetic, same event ordering, same fault plan.
func TestCrossValidationStepBitIdentity(t *testing.T) {
	for name, plat := range testPlatforms() {
		plat := plat
		t.Run(name, func(t *testing.T) {
			for _, id := range stepModels {
				for seed := uint64(1); seed <= 8; seed++ {
					app := crmodel.Simulate(crmodel.Config{Model: id, Config: plat}, seed)
					step := stepsim.Simulate(stepsim.Config{Model: id, Config: plat}, seed)
					if app != step {
						t.Errorf("%v seed %d: step tier diverged\napp:  %+v\nstep: %+v", id, seed, app, step)
					}
				}
			}
		})
	}
}

// TestReplaySeedInvariant: a replayed run draws nothing from the seed's
// failure substream, so the step tier — like the app tier — must be
// bit-identical across seeds in replay mode.
func TestReplaySeedInvariant(t *testing.T) {
	plat := testPlatforms()["replay"]
	for _, id := range stepModels {
		ref := stepsim.Simulate(stepsim.Config{Model: id, Config: plat}, 1)
		for seed := uint64(2); seed <= 4; seed++ {
			if got := stepsim.Simulate(stepsim.Config{Model: id, Config: plat}, seed); got != ref {
				t.Errorf("%v: replayed run depends on seed %d\nref: %+v\ngot: %+v", id, seed, ref, got)
			}
		}
	}
}

// TestSpareExhaustionBitIdentity is the spare-pool regression gate: at a
// tiny spare count on a failure-heavy system, runs end truncated (the
// old code panicked) — and they must end truncated IDENTICALLY on both
// tiers: same Truncated marker, same wall time, same partial overheads,
// bit for bit.
func TestSpareExhaustionBitIdentity(t *testing.T) {
	plat := platform.Config{
		App:        workload.App{Name: "spare-exhaust", Nodes: 48, TotalCkptGB: 960, ComputeHours: 24},
		System:     failure.System{Name: "hostile", Shape: 0.75, ScaleHours: 6, Nodes: 48},
		SpareNodes: 2,
	}
	truncated := 0
	for _, id := range stepModels {
		for seed := uint64(1); seed <= 8; seed++ {
			app := crmodel.Simulate(crmodel.Config{Model: id, Config: plat}, seed)
			step := stepsim.Simulate(stepsim.Config{Model: id, Config: plat}, seed)
			if app != step {
				t.Errorf("%v seed %d: step tier diverged on spare exhaustion\napp:  %+v\nstep: %+v", id, seed, app, step)
			}
			if app.Truncated {
				truncated++
				if app.Failures <= plat.SpareNodes {
					t.Errorf("%v seed %d: truncated after only %d failures with %d spares", id, seed, app.Failures, plat.SpareNodes)
				}
			}
		}
	}
	if truncated == 0 {
		t.Fatal("no run exhausted the 2-node spare pool: the regression path never executed")
	}
}

// TestComputeResidualSnapTermination is the livelock regression gate:
// on a failure-heavy platform, a rollback can land progress a sub-ULP
// residual short of ComputeSeconds — simulated time can no longer
// resolve the remaining wait, so progress froze while the run looped
// compute-0s/checkpoint forever until the engine watchdog fired. The
// compute loop now snaps residuals below a microsecond (as the
// node-granular tier always did). This exact (platform, seed) pair spun
// before the fix; it must now terminate, identically on both tiers.
func TestComputeResidualSnapTermination(t *testing.T) {
	plat := platform.Config{
		App:    workload.App{Name: "tenant", Nodes: 16, TotalCkptGB: 320, ComputeHours: 4},
		System: failure.System{Name: "busy", Shape: 0.75, ScaleHours: 2, Nodes: 16},
	}
	const seed = 14653447727327214218
	app := crmodel.Simulate(crmodel.Config{Model: policy.P2, Config: plat}, seed)
	step := stepsim.Simulate(stepsim.Config{Model: policy.P2, Config: plat}, seed)
	if app != step {
		t.Errorf("step tier diverged on the residual-snap path\napp:  %+v\nstep: %+v", app, step)
	}
	if app.Truncated {
		t.Errorf("run truncated; want normal completion (wall %.0fs)", app.WallSeconds)
	}
	if app.WallSeconds <= plat.App.ComputeHours*3600 {
		t.Errorf("wall %.0fs not above compute time — wrong (platform, seed) pinned?", app.WallSeconds)
	}
}

// TestSpareExhaustionTraceParity pins the truncated timeline: both tiers
// must record the same events and end with a truncated marker, not
// complete.
func TestSpareExhaustionTraceParity(t *testing.T) {
	// P2 avoids most predicted failures by migration, so exhausting its
	// spare pool takes a harsher recipe than the bit-identity matrix: a
	// single spare, a predictor that misses 30% of failures, and node
	// MTBFs of 3 hours.
	plat := platform.Config{
		App:        workload.App{Name: "spare-exhaust", Nodes: 48, TotalCkptGB: 960, ComputeHours: 24},
		System:     failure.System{Name: "hostile", Shape: 0.75, ScaleHours: 3, Nodes: 48},
		FNRate:     0.3,
		FPRate:     0.05,
		SpareNodes: 1,
	}
	for seed := uint64(1); seed <= 12; seed++ {
		var appBuf, stepBuf trace.Buffer
		res := crmodel.Simulate(crmodel.Config{Model: policy.P2, Config: plat, Trace: &appBuf}, seed)
		stepsim.Simulate(stepsim.Config{Model: policy.P2, Config: plat, Trace: &stepBuf}, seed)
		if appBuf.Len() != stepBuf.Len() {
			t.Fatalf("seed %d: timeline length %d vs %d", seed, appBuf.Len(), stepBuf.Len())
		}
		for i, ae := range appBuf.Events() {
			if se := stepBuf.Events()[i]; ae != se {
				t.Fatalf("seed %d: timeline diverges at entry %d\napp:  %+v\nstep: %+v", seed, i, ae, se)
			}
		}
		if !res.Truncated {
			continue
		}
		events := appBuf.Events()
		last := events[len(events)-1]
		sawTrunc := false
		for _, e := range events {
			if e.Kind == trace.Truncated {
				sawTrunc = true
			}
			if e.Kind == trace.Complete {
				t.Fatalf("seed %d: truncated run recorded a complete event", seed)
			}
		}
		if !sawTrunc {
			t.Fatalf("seed %d: truncated run's timeline has no truncated event (last: %+v)", seed, last)
		}
		return // one truncated timeline verified end to end is enough
	}
	t.Fatal("no seed truncated under P2: the trace-parity path never executed")
}

// TestMigrationSupersedeBitIdentity exercises the supersede-during-
// migration path (a p-ckpt episode aborting in-flight migrations, and
// re-predictions landing on Migrating nodes) on a lead-stretched hybrid
// platform, and holds both tiers bit-identical through it.
func TestMigrationSupersedeBitIdentity(t *testing.T) {
	// A checkpoint-heavy app (170 GB/node) pushes θ to ≈41 s — the middle
	// of the lead distribution — so hybrids migrate on long leads AND
	// start episodes on short ones, and 1-hour node MTBFs make short-lead
	// predictions land inside the ≈41 s migration windows.
	plat := platform.Config{
		App:    workload.App{Name: "supersede", Nodes: 48, TotalCkptGB: 8160, ComputeHours: 24},
		System: failure.System{Name: "busy", Shape: 0.75, ScaleHours: 1, Nodes: 48},
	}
	aborted := 0
	for _, id := range []policy.ID{policy.M2, policy.P2} {
		for seed := uint64(1); seed <= 12; seed++ {
			app := crmodel.Simulate(crmodel.Config{Model: id, Config: plat}, seed)
			step := stepsim.Simulate(stepsim.Config{Model: id, Config: plat}, seed)
			if app != step {
				t.Errorf("%v seed %d: step tier diverged on supersede path\napp:  %+v\nstep: %+v", id, seed, app, step)
			}
			aborted += app.AbortedMigrations
		}
	}
	if aborted == 0 {
		t.Fatal("no migration was superseded: the regression path never executed")
	}
}

// TestTraceTimelineParity compares the recorded timelines event for
// event: not just the final accounting but every intermediate state
// transition must land at the same time, node, and progress.
func TestTraceTimelineParity(t *testing.T) {
	plat := testPlatforms()["clean"]
	for _, id := range stepModels {
		var appBuf, stepBuf trace.Buffer
		crmodel.Simulate(crmodel.Config{Model: id, Config: plat, Trace: &appBuf}, 7)
		stepsim.Simulate(stepsim.Config{Model: id, Config: plat, Trace: &stepBuf}, 7)
		if appBuf.Len() != stepBuf.Len() {
			t.Errorf("%v: timeline length %d vs %d", id, appBuf.Len(), stepBuf.Len())
			continue
		}
		for i, ae := range appBuf.Events() {
			if se := stepBuf.Events()[i]; ae != se {
				t.Errorf("%v: timeline diverges at entry %d\napp:  %+v\nstep: %+v", id, i, ae, se)
				break
			}
		}
	}
}

// TestMeteredRunIdentical: attaching a metrics registry must not change
// the result (the same contract the app tier keeps), and the step tier's
// series must land under its own prefix.
func TestMeteredRunIdentical(t *testing.T) {
	plat := testPlatforms()["clean"]
	for _, id := range stepModels {
		plain := stepsim.Simulate(stepsim.Config{Model: id, Config: plat}, 3)
		reg := metrics.New()
		metered := stepsim.Simulate(stepsim.Config{Model: id, Config: plat, Metrics: reg}, 3)
		if plain != metered {
			t.Errorf("%v: metering changed the result\nplain:   %+v\nmetered: %+v", id, plain, metered)
		}
		snap := reg.Snapshot(metered.WallSeconds)
		prefix := "stepsim." + id.String() + "."
		found := false
		for name := range snap.Histograms {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%v: no %q series in the metered snapshot", id, prefix)
		}
	}
}

// TestSupports pins the tier's catalogue: the full five-model set since
// the episode port, and still a hard no on invalid IDs.
func TestSupports(t *testing.T) {
	for _, id := range policy.All() {
		if !stepsim.Supports(id) {
			t.Errorf("Supports(%v) = false, want true", id)
		}
	}
	if stepsim.Supports(policy.ID(250)) {
		t.Error("Supports accepted an invalid model ID")
	}
}

// TestValidateRejectsInvalidModel: Validate must still refuse a model
// outside the catalogue (the old episode guard is gone; the catalogue
// check is not).
func TestValidateRejectsInvalidModel(t *testing.T) {
	plat := testPlatforms()["clean"]
	if err := (stepsim.Config{Model: policy.ID(250), Config: plat}).Validate(); err == nil {
		t.Error("Validate accepted an invalid model ID")
	}
	for _, id := range policy.All() {
		if err := (stepsim.Config{Model: id, Config: plat}).Validate(); err != nil {
			t.Errorf("Validate rejected catalogue model %v: %v", id, err)
		}
	}
}

// TestStartAppOffsetIdentity: an app started mid-run on a shared engine
// (no arbiter) computes the same run a solo Simulate does — the
// app-local time base keeps every stream comparison and decision in
// job-relative seconds, so the event sequence and all integer
// accounting match exactly. The float buckets are sums of
// (t0+x)-t0 differences, so they agree to last-ulp tolerance rather
// than bit-for-bit.
func TestStartAppOffsetIdentity(t *testing.T) {
	relClose := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))+1e-9
	}
	for name, plat := range testPlatforms() {
		plat := plat
		t.Run(name, func(t *testing.T) {
			for _, id := range stepModels {
				for seed := uint64(1); seed <= 4; seed++ {
					solo := stepsim.Simulate(stepsim.Config{Model: id, Config: plat}, seed)
					eng := stepsim.NewEngine()
					var h *stepsim.AppHandle
					// Admit the app at t=98765.4321s of machine time.
					eng.At(98765.4321, func() {
						h = stepsim.StartApp(eng, stepsim.Config{Model: id, Config: plat}, seed, stepsim.AppOptions{AppIndex: 3})
					})
					eng.RunAll()
					if !h.Done() {
						t.Fatalf("%v seed %d: offset app never finished", id, seed)
					}
					got := h.Result()
					eng.Release()
					for _, c := range []struct {
						name      string
						got, want float64
					}{
						{"WallSeconds", got.WallSeconds, solo.WallSeconds},
						{"Overheads.Checkpoint", got.Overheads.Checkpoint, solo.Overheads.Checkpoint},
						{"Overheads.Recompute", got.Overheads.Recompute, solo.Overheads.Recompute},
						{"Overheads.Recovery", got.Overheads.Recovery, solo.Overheads.Recovery},
					} {
						if !relClose(c.got, c.want) {
							t.Fatalf("%v seed %d: %s = %v, solo %v", id, seed, c.name, c.got, c.want)
						}
					}
					got.WallSeconds, got.Overheads = solo.WallSeconds, solo.Overheads
					if got != solo {
						t.Fatalf("%v seed %d: offset-start accounting differs from solo\nsolo:   %+v\noffset: %+v", id, seed, solo, got)
					}
				}
			}
		})
	}
}
