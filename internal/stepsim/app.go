package stepsim

import (
	"fmt"
	"math"

	"pckpt/internal/cluster"
	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/metrics"
	"pckpt/internal/oci"
	"pckpt/internal/pckpt"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/rng"
	"pckpt/internal/stats"
	"pckpt/internal/trace"
)

// Config parameterises one step-tier simulation: the model under test,
// the shared platform configuration, and this tier's observers. It is
// the same shape as crmodel.Config and covers the full catalogue — the
// p-ckpt episode machinery (P1/P2) runs here as a continuation chain,
// bit-identical to the app tier's process form.
type Config struct {
	// Model is the C/R policy to simulate. Must satisfy Supports.
	Model policy.ID
	// Config is the tier-independent platform; its fields are promoted.
	platform.Config
	// Trace, when non-nil, receives the run's timeline events.
	Trace trace.Recorder
	// Metrics, when non-nil, receives the run's simulation-time metrics
	// under the "stepsim.<model>." prefix. Nil costs nothing.
	Metrics *metrics.Registry
}

// Supports reports whether the step tier implements the catalogue
// entry: the full catalogue (B, M1, M2, P1, P2).
func Supports(id policy.ID) bool { return id.Valid() }

// withDefaults returns a copy with zero platform fields defaulted.
func (c Config) withDefaults() Config {
	c.Config = c.Config.WithDefaults()
	return c
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	if !c.Model.Valid() {
		return fmt.Errorf("stepsim: invalid model %d", uint8(c.Model))
	}
	return c.Config.Validate()
}

// Sigma returns Eq. (2)'s σ for this configuration (0 for models
// without LM), exactly as the app tier computes it.
func (c Config) Sigma() float64 {
	if !c.Model.UsesLM() {
		return 0
	}
	return c.Config.SigmaLM()
}

// maxRunEvents is the per-run watchdog ceiling, matching crmodel's.
const maxRunEvents = 100_000_000

// appSim is the state of one step-tier run. It mirrors crmodel.appSim
// field for field, but the application "process" is a continuation chain
// on the step engine instead of a goroutine: every blocking call site of
// the process-based tier appears here as a wait with an explicit
// continuation, scheduled at the same logical point in the same
// statement order — which is what makes a run bit-identical to the app
// tier on the shared failure stream.
type appSim struct {
	cfg    Config
	pol    policy.Policy
	eng    *Engine
	stream failure.EventSource
	est    *failure.RateEstimator
	cl     *cluster.Cluster
	inj    *faultinject.Injector

	// t0 is the app's start time on the (possibly shared) engine, and
	// localNow the app's own clock in seconds since t0. The local clock
	// advances to each event's locally-computed deadline rather than
	// being re-derived from the engine clock: subtracting t0 back out
	// would lose last-ulp bits, and those bits compound (an ulp-short
	// progress buys a whole extra checkpoint cycle). Every time in the
	// app's accounting, trace, and failure stream is local, so a job
	// admitted mid-machine-run computes the same timeline a solo run
	// does.
	t0       float64
	localNow float64
	// arb, when non-nil, is the shared machine's bandwidth arbiter: PFS
	// transfers become flows priced against the other tenants instead of
	// fixed solo durations. appIdx identifies this app at the arbiter.
	arb    Arbiter
	appIdx int
	// onDone, when non-nil, observes the final result the moment the app
	// finishes (the shared-machine completion hook).
	onDone func(stats.RunResult)
	// drainFlows tracks in-flight drain transfers at the arbiter so a
	// finished (or truncated) job withdraws them from the machine.
	drainFlows []FlowID
	// blockFlows tracks the arbitered flows the app is parked on —
	// including suspended outer flows of nested waits — so an aborted
	// tenant withdraws them from the machine.
	blockFlows []FlowID

	plat  platform.Derived
	sigma float64
	// pricing derives the episode's phase-1/phase-2 transfer prices from
	// the shared pckpt.EpisodePricing (identical float operations across
	// tiers).
	pricing pckpt.EpisodePricing

	progress float64
	curOCI   float64
	st       *policy.State

	pending      []failure.Event
	safeguarding bool
	// vulnBuf is the reused episode-width scratch buffer (metered runs
	// only): cluster.AppendVulnerable fills it without allocating.
	vulnBuf []int

	// Step-machine state standing in for the application goroutine:
	// appDone mirrors !Proc.Alive(); blocked is the pending wake timer
	// while the app waits; blockedCont is the wait's continuation
	// (invoked with interrupted=true when the injector cuts it short);
	// interruptPending drops double interrupt deliveries exactly like
	// sim.Proc (the first reason wins).
	appDone          bool
	blocked          Timer
	blockedCont      func(interrupted bool)
	interruptPending bool

	met runMetrics
	res stats.RunResult
}

// now returns the app-local simulation time: seconds since the app
// started. On a dedicated engine (Simulate) it equals the engine clock.
func (a *appSim) now() float64 { return a.localNow }

// clockTo advances the local clock (never backwards: an arbitered flow
// may already have pushed it past an older timer's deadline).
func (a *appSim) clockTo(local float64) {
	if local > a.localNow {
		a.localNow = local
	}
}

// syncClock advances the local clock to the engine clock — the entry
// point for events whose time the machine owns (arbitered flow
// completions), which have no locally-computed deadline.
func (a *appSim) syncClock() { a.clockTo(a.eng.Now() - a.t0) }

// sched runs fn after delay seconds of app-local time. The deadline is
// computed in local arithmetic — now()+delay, the exact float ops a
// solo run performs — and the local clock advances to that deadline
// when the event fires, so local arithmetic never round-trips through
// the absolute clock (which would lose last-ulp bits and let locally
// tied deadlines split). The engine-time conversion is one t0 addition.
func (a *appSim) sched(delay float64, name string, fn func()) {
	if delay == 0 {
		// An immediate event joins the current timestamp batch; the t0
		// round-trip could land an ulp past it.
		a.eng.AtNamed(0, name, fn)
		return
	}
	deadline := a.now() + delay
	a.eng.AtTimeNamed(a.t0+deadline, name, func() {
		a.clockTo(deadline)
		fn()
	})
}

// schedTimer is sched returning a cancellable Timer.
func (a *appSim) schedTimer(delay float64, name string, fn func()) Timer {
	if delay == 0 {
		return a.eng.AfterCancel(0, name, fn)
	}
	deadline := a.now() + delay
	return a.eng.AfterCancelAt(a.t0+deadline, name, func() {
		a.clockTo(deadline)
		fn()
	})
}

// trace emits a timeline event when tracing is enabled.
func (a *appSim) trace(kind trace.Kind, node int, detail string) {
	if a.cfg.Trace == nil {
		return
	}
	a.cfg.Trace.Record(trace.Event{
		T:        a.now(),
		Kind:     kind,
		Node:     node,
		Progress: a.progress,
		Detail:   detail,
	})
}

// Simulate executes one run and returns its accounting. Deterministic in
// (cfg, seed), and bit-identical to crmodel.Simulate for the supported
// models on the same configuration and seed.
func Simulate(cfg Config, seed uint64) stats.RunResult {
	eng := NewEngine()
	eng.SetWatchdog(maxRunEvents, 0)
	h := StartApp(eng, cfg, seed, AppOptions{})
	eng.RunAll()
	eng.Release()
	return h.Result()
}

// AppOptions configures an application started on a shared engine. The
// zero value reproduces a solo Simulate run exactly.
type AppOptions struct {
	// Arbiter, when non-nil, routes the app's PFS transfers through a
	// shared-machine bandwidth arbiter instead of pricing each at its
	// uncontended solo duration.
	Arbiter Arbiter
	// AppIndex identifies the app at the arbiter and in diagnostics.
	AppIndex int
	// OnDone, when non-nil, runs the moment the app completes (normally
	// or truncated), receiving the final result — the machine layer's
	// job-departure hook. It fires on the simulation goroutine.
	OnDone func(stats.RunResult)
}

// AppHandle is a started application on a (possibly shared) engine.
type AppHandle struct{ a *appSim }

// Done reports whether the application has finished.
func (h *AppHandle) Done() bool { return h.a.appDone }

// Result returns the run's accounting; meaningful once Done.
func (h *AppHandle) Result() stats.RunResult { return h.a.res }

// Abort kills a running application mid-flight — the machine layer's
// tenant-crash hook. The pending wake is cancelled, every arbitered
// flow (blocking and drain alike) is withdrawn from the machine, and
// the run is marked truncated at the current time; the partial
// accounting is returned. OnDone does NOT fire — the caller owns the
// crash bookkeeping (requeue or give up). Aborting a finished app is a
// no-op returning the final result. Must run on the simulation
// goroutine, between engine events.
func (h *AppHandle) Abort() stats.RunResult {
	a := h.a
	if a.appDone {
		return a.res
	}
	a.syncClock()
	a.eng.Cancel(a.blocked)
	a.blocked = Timer{}
	a.blockedCont = nil
	a.interruptPending = false
	for _, id := range a.blockFlows {
		a.arb.CancelFlow(id)
	}
	a.blockFlows = nil
	for _, id := range a.drainFlows {
		a.arb.CancelFlow(id)
	}
	a.drainFlows = nil
	a.res.Truncated = true
	a.res.WallSeconds = a.now()
	a.trace(trace.Truncated, -1, "tenant crash")
	a.appDone = true
	return a.res
}

// StartApp schedules one application run on eng, starting at the
// engine's current time. The caller drives the engine; several apps on
// one engine share its clock (the multi-tenant machine of
// internal/machine) while each keeps its own local time base, failure
// substreams, and accounting — an app admitted at t on a shared engine
// with no arbiter computes bit-identically to a solo Simulate run.
func StartApp(eng *Engine, cfg Config, seed uint64, opts AppOptions) *AppHandle {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	src := rng.New(seed)
	a := &appSim{
		cfg:    cfg,
		pol:    policy.For(cfg.Model),
		eng:    eng,
		t0:     eng.Now(),
		arb:    opts.Arbiter,
		appIdx: opts.AppIndex,
		onDone: opts.OnDone,
		est:    failure.NewRateEstimator(cfg.System.JobFailureRate(cfg.App.Nodes)),
		cl:     cluster.New(cfg.App.Nodes, cfg.SpareLimit()),
		plat:   cfg.Derive(),
		sigma:  cfg.Sigma(),
		st:     policy.NewState(),
	}
	a.pricing = pckpt.NewEpisodePricing(cfg.IO, a.plat.PerNodeGB)
	a.met = newRunMetrics(cfg.Metrics, cfg.Model)
	if cfg.Metrics != nil {
		a.observeCluster()
	}
	// Substream layout matches the app tier exactly: the failure stream
	// draws from Split(1), the fault plan from Split(StreamKey).
	a.stream = failure.NewSource(cfg.StreamConfig(cfg.Metrics), src.Split(1))
	a.inj = faultinject.New(cfg.Faults, src.Split(faultinject.StreamKey), cfg.Metrics)

	// Start order mirrors crmodel's spawn order: the app's first compute
	// cycle schedules its wake before the injector draws the stream.
	a.sched(0, "app", a.start)
	a.sched(0, "injector", a.injectLoop)
	return &AppHandle{a: a}
}

// wait parks the application for d seconds of simulated time: cont runs
// at expiry with interrupted=false, or at the interrupt time with
// interrupted=true if the injector cuts the wait short (in which case
// less than d elapsed) — the CPS equivalent of sim.Proc.Wait.
func (a *appSim) wait(d float64, cont func(interrupted bool)) {
	if d < 0 {
		panic(fmt.Sprintf("stepsim: wait with negative duration %g", d))
	}
	a.blockedCont = cont
	a.blocked = a.schedTimer(d, "app", func() {
		a.resume()(false)
	})
}

// resume clears the parked state and returns the pending continuation,
// mirroring sim.Proc.park's bookkeeping on wake-up.
func (a *appSim) resume() func(bool) {
	cont := a.blockedCont
	a.blockedCont = nil
	a.blocked = Timer{}
	a.interruptPending = false
	return cont
}

// interrupt delivers an interrupt to the parked application: its pending
// wake is cancelled and the interrupted continuation is scheduled at the
// current time — exactly sim.Proc.Interrupt on a Wait-blocked process,
// including the double-delivery drop.
func (a *appSim) interrupt() {
	if a.appDone {
		return
	}
	if a.interruptPending {
		return
	}
	a.interruptPending = true
	a.eng.Cancel(a.blocked)
	a.blocked = Timer{}
	a.sched(0, "app", func() {
		if a.appDone {
			return // aborted between delivery and wake-up
		}
		a.resume()(true)
	})
}

// refreshOCI re-derives the checkpoint interval from the current failure
// rate estimate, per Eq. (1) (σ=0) or Eq. (2).
func (a *appSim) refreshOCI() {
	rate := a.est.Rate(a.now())
	a.curOCI = oci.FromJobRate(a.plat.BBWrite, rate, a.sigma)
}

// start begins the application: compute OCI seconds, checkpoint to BB,
// repeat until the required computation completes (crmodel's run loop).
func (a *appSim) start() {
	if a.appDone {
		return // aborted before the first compute cycle
	}
	a.runLoop()
}

func (a *appSim) runLoop() {
	if a.progress < a.plat.ComputeSeconds && !a.res.Truncated {
		a.computeChunk(func() {
			if a.progress >= a.plat.ComputeSeconds || a.res.Truncated {
				a.finish()
				return
			}
			a.bbCheckpoint(a.runLoop)
		})
		return
	}
	a.finish()
}

// finish completes the application process — normally or truncated; the
// injector observes appDone at its next delivery, exactly as it observes
// !Alive().
func (a *appSim) finish() {
	a.res.WallSeconds = a.now()
	if a.res.Truncated {
		a.trace(trace.Truncated, -1, "spare pool exhausted")
	} else {
		a.trace(trace.Complete, -1, "")
	}
	a.appDone = true
	// A departed job withdraws its in-flight drains from the machine —
	// their bandwidth and drain slots return to the remaining tenants.
	for _, id := range a.drainFlows {
		a.arb.CancelFlow(id)
	}
	a.drainFlows = nil
	if a.onDone != nil {
		a.onDone(a.res)
	}
}

// computeChunk advances the application by one checkpoint interval,
// absorbing interrupts, then runs k.
func (a *appSim) computeChunk(k func()) {
	a.refreshOCI()
	target := math.Min(a.progress+a.curOCI, a.plat.ComputeSeconds)
	if a.cfg.Trace != nil {
		a.trace(trace.CycleStart, -1, fmt.Sprintf("interval=%.0fs", target-a.progress))
	}
	// Mirrors crmodel's residual snap: the float sums can stall a hair
	// short of the target once simulated time can no longer resolve the
	// residual; treat anything below a microsecond as done and snap.
	// Without the snap, a rollback that lands progress just short of
	// ComputeSeconds livelocks the run: compute 0s, checkpoint, forever.
	var step func()
	step = func() {
		if target-a.progress <= 1e-6 {
			a.progress = target
			k()
			return
		}
		start := a.now()
		a.wait(target-a.progress, func(interrupted bool) {
			a.progress += a.now() - start
			if !interrupted {
				a.progress = target
				k()
				return
			}
			a.handleEvents(func() {
				if a.res.Truncated {
					k()
					return
				}
				if a.st.TakeRescheduled() {
					// A proactive action committed a full checkpoint;
					// re-base the periodic schedule on the fresh interval.
					a.refreshOCI()
					target = math.Min(a.progress+a.curOCI, a.plat.ComputeSeconds)
				}
				step()
			})
		})
	}
	step()
}

// bbCheckpoint performs the synchronous burst-buffer write of a periodic
// checkpoint, launches the asynchronous PFS drain, then runs k.
func (a *appSim) bbCheckpoint(k func()) {
	began := a.now()
	a.blockedWait(a.plat.BBWrite, &a.res.Overheads.Checkpoint, func(ok bool) {
		if !ok {
			// A failure voided the write and rolled progress back; resume
			// computing, the next cycle will checkpoint the redone state.
			a.met.bbAborted.Inc()
			k()
			return
		}
		a.met.bbWrite.Observe(a.now() - began)
		if a.inj.BBWriteFails() {
			a.res.BBWriteFailures++
			a.trace(trace.BBWrite, -1, "write failed (injected)")
			k()
			return
		}
		a.res.Checkpoints++
		a.st.CommitBB(a.progress)
		if a.inj.CorruptCommit() {
			a.st.MarkCorrupt(a.progress)
		}
		a.trace(trace.BBWrite, -1, "")
		a.cl.RecordBBCheckpointAll(a.progress)
		captured := a.progress
		gen, depth := a.st.BeginDrain()
		a.met.drainDepth.Set(a.now(), float64(depth))
		a.startDrain(captured, gen)
		k()
	})
}

// startDrain launches the asynchronous BB→PFS drain: a fixed-duration
// callback solo, an arbitered flow (contending for drain slots and
// fair-share bandwidth) on a shared machine.
func (a *appSim) startDrain(captured float64, gen int) {
	var fid FlowID
	done := func() {
		if a.arb != nil {
			a.dropDrainFlow(fid)
		}
		depth, current := a.st.FinishDrain(gen)
		a.met.drainDepth.Set(a.now(), float64(depth))
		// The drain completes unless a newer checkpoint superseded it.
		if current {
			if a.inj.PFSWriteFails() {
				a.res.PFSWriteFailures++
				a.trace(trace.DrainDone, -1, "drain failed (injected)")
				return
			}
			a.commitFullPFS(captured)
			a.trace(trace.DrainDone, -1, "")
		}
	}
	if a.arb == nil {
		a.sched(a.plat.Drain, "drain", done)
		return
	}
	fid = a.arb.StartFlow(a.appIdx, ClassDrain, float64(a.plat.Nodes)*a.plat.PerNodeGB, a.plat.Drain, func() {
		a.syncClock()
		done()
	})
	a.drainFlows = append(a.drainFlows, fid)
}

// dropDrainFlow forgets a completed drain's flow handle.
func (a *appSim) dropDrainFlow(fid FlowID) {
	for i, id := range a.drainFlows {
		if id == fid {
			a.drainFlows = append(a.drainFlows[:i], a.drainFlows[i+1:]...)
			return
		}
	}
}

// blockedWait blocks the application for dur seconds, accounting the
// elapsed time into bucket and processing any events that interrupt it.
// k receives false if a failure voided the activity before dur fully
// elapsed, true on completion.
func (a *appSim) blockedWait(dur float64, bucket *float64, k func(ok bool)) {
	epoch := a.st.Epoch()
	remaining := dur
	var step func()
	step = func() {
		if remaining <= 0 {
			k(true)
			return
		}
		start := a.now()
		a.wait(remaining, func(interrupted bool) {
			elapsed := a.now() - start
			remaining -= elapsed
			*bucket += elapsed
			if !interrupted {
				k(true)
				return
			}
			a.handleEvents(func() {
				if a.st.Epoch() != epoch {
					k(false)
					return
				}
				step()
			})
		})
	}
	step()
}

// flowWait is blockedWait for an arbitered PFS transfer: the app parks
// on a flow of volumeGB whose completion time the machine's bandwidth
// arbiter owns. Solo (nil arbiter) it is exactly blockedWait at the
// uncontended duration — which is what keeps solo runs bit-identical.
// An injector interrupt suspends the flow while events are handled
// (its bandwidth returns to the pool, mirroring how a blocked wait's
// clock stops); a voiding failure cancels it and k sees false.
func (a *appSim) flowWait(class WriteClass, volumeGB, soloSeconds float64, bucket *float64, k func(ok bool)) {
	if a.arb == nil || volumeGB <= 0 || soloSeconds <= 0 {
		a.blockedWait(soloSeconds, bucket, k)
		return
	}
	epoch := a.st.Epoch()
	var fid FlowID
	var park func()
	park = func() {
		start := a.now()
		a.blockedCont = func(interrupted bool) {
			*bucket += a.now() - start
			if !interrupted {
				k(true)
				return
			}
			a.arb.SuspendFlow(fid)
			a.handleEvents(func() {
				if a.st.Epoch() != epoch {
					a.arb.CancelFlow(fid)
					a.dropBlockFlow(fid)
					k(false)
					return
				}
				a.arb.ResumeFlow(fid)
				park()
			})
		}
	}
	fid = a.arb.StartFlow(a.appIdx, class, volumeGB, soloSeconds, func() {
		a.syncClock()
		a.dropBlockFlow(fid)
		a.resume()(false)
	})
	a.blockFlows = append(a.blockFlows, fid)
	park()
}

// dropBlockFlow forgets a completed or cancelled blocking flow's handle.
func (a *appSim) dropBlockFlow(fid FlowID) {
	for i, id := range a.blockFlows {
		if id == fid {
			a.blockFlows = append(a.blockFlows[:i], a.blockFlows[i+1:]...)
			return
		}
	}
}

// handleEvents drains the pending queue, then runs k. A truncated run
// stops draining: the job is dead, the remaining events go nowhere.
func (a *appSim) handleEvents(k func()) {
	if len(a.pending) == 0 || a.res.Truncated {
		k()
		return
	}
	ev := a.pending[0]
	a.pending = a.pending[1:]
	next := func() { a.handleEvents(k) }
	switch ev.Kind {
	case failure.KindPrediction, failure.KindSpurious:
		a.onPrediction(ev, next)
	case failure.KindFailure:
		a.onFailure(ev, next)
	default:
		next()
	}
}

// onPrediction records the prediction, marks the node vulnerable, and
// executes whatever proactive action the model's strategy decides.
func (a *appSim) onPrediction(ev failure.Event, k func()) {
	if ev.Kind == failure.KindPrediction {
		a.st.RecordPrediction(ev.ID, policy.Prediction{Node: ev.Node, FailAt: ev.FailTime, Lead: ev.Lead})
		if a.cfg.Trace != nil {
			a.trace(trace.Prediction, ev.Node, fmt.Sprintf("lead=%.1fs", ev.Lead))
		}
	} else if a.cfg.Trace != nil {
		a.trace(trace.SpuriousPrediction, ev.Node, fmt.Sprintf("lead=%.1fs", ev.Lead))
	}
	if err := a.cl.MarkVulnerable(ev.Node, ev.FailTime); err == nil {
		// Clear the vulnerable mark once the predicted failure time has
		// passed without a newer prediction superseding it.
		failAt := ev.FailTime
		node := ev.Node
		a.sched(math.Max(failAt-a.now(), 0), "vuln-clear", func() {
			n := a.cl.Node(node)
			if n.State == cluster.Vulnerable && n.PredictedFailAt == failAt {
				a.cl.MarkHealthy(node)
			}
		})
	}
	switch act := a.pol.OnPrediction(a.st, ev.Node, ev.Lead, a.plat.Theta); act {
	case policy.ActJoinEpisode:
		// Phase 1 in progress: the new vulnerable node joins the
		// node-local priority queue (lower lead = higher priority).
		a.st.Episode().Q.Push(ev.FailTime, ev)
		k()
	case policy.ActMigrate:
		a.startMigration(ev)
		k()
	case policy.ActStartEpisode:
		a.pckptEpisode(ev, k)
	case policy.ActSafeguard:
		a.safeguard(k)
	case policy.ActNone:
		k()
	default:
		panic(fmt.Sprintf("stepsim: unsupported action %d for model %v", act, a.cfg.Model))
	}
}

// pckptEpisode runs one coordinated prioritized checkpoint: phase 1
// serves vulnerable nodes serially by lead-time priority with
// uncontended PFS access; phase 2 commits the remaining nodes at
// aggregate bandwidth. The application is blocked throughout (healthy
// nodes wait). A failure during the episode abandons the remainder.
//
// This is crmodel's pckptEpisode in continuation-passing style: the
// drain loop becomes a recursive continuation, `break` and the deferred
// EndEpisode become the finish/done continuations, and every injector
// draw, metric observation, and trace record keeps its statement order
// — which is what holds the port bit-identical to the app tier.
func (a *appSim) pckptEpisode(first failure.Event, k func()) {
	a.res.ProactiveCkpts++
	a.trace(trace.EpisodeStart, first.Node, "")
	epBegin := a.now()
	ep := a.st.BeginEpisode(a.progress)
	done := func() { // crmodel's `defer a.st.EndEpisode()`
		a.st.EndEpisode()
		k()
	}
	ep.Q.Push(first.FailTime, first)
	// A p-ckpt request supersedes in-flight migrations (Fig. 5): abort
	// them and requeue their nodes as vulnerable.
	a.st.AbortMigrations(func(ev failure.Event) {
		a.res.AbortedMigrations++
		a.trace(trace.MigrationAborted, ev.Node, "superseded by p-ckpt")
		if a.cl.Node(ev.Node).State == cluster.Migrating {
			a.cl.AbortMigration(ev.Node, ev.FailTime)
		}
		ep.Q.Push(ev.FailTime, ev)
	})
	if a.cfg.Metrics != nil {
		a.vulnBuf = a.cl.AppendVulnerable(a.vulnBuf[:0])
		a.met.episodeWidth.Observe(float64(len(a.vulnBuf)))
	}
	finish := func() { // everything after crmodel's drain loop
		if ep.Abandoned {
			a.met.episodesAbandoned.Inc()
			done()
			return
		}
		commit := func() {
			if a.inj.PFSWriteFails() {
				// The phase-2 collective write failed: the episode's full
				// checkpoint never commits (phase-1 mitigations stand —
				// those nodes' states did reach the PFS).
				a.res.PFSWriteFailures++
			} else {
				a.commitFullPFS(ep.StartProgress)
				if a.inj.CorruptCommit() {
					a.st.MarkCorrupt(ep.StartProgress)
				}
				a.st.MarkRescheduled()
			}
			a.met.episodeDur.Observe(a.now() - epBegin)
			if a.cfg.Trace != nil {
				a.trace(trace.EpisodeEnd, -1, fmt.Sprintf("blocked=%.1fs committed=%d", a.now()-epBegin, ep.Committed))
			}
			done()
		}
		// Phase 2: pfs-commit broadcast; healthy nodes write together.
		healthy := a.plat.Nodes - ep.Committed
		if healthy > 0 {
			tr := a.pricing.Phase2Transfer(healthy)
			a.flowWait(ClassCollective, tr.VolumeGB, tr.Seconds, &a.res.Overheads.Checkpoint, func(ok bool) {
				if !ok {
					a.met.episodesAbandoned.Inc()
					done()
					return
				}
				a.met.pfsGBs.Observe(tr.GBs)
				commit()
			})
			return
		}
		commit()
	}
	var drain func()
	drain = func() {
		if ep.Q.Len() == 0 || ep.Abandoned {
			finish()
			return
		}
		_, ev := ep.Q.Pop()
		a.flowWait(ClassVulnerable, a.plat.PerNodeGB, a.pricing.VulnerableWrite, &a.res.Overheads.Checkpoint, func(ok bool) {
			if !ok {
				finish() // the failure that voided the wait abandoned ep
				return
			}
			if a.inj.PFSWriteFails() {
				// The vulnerable node's prioritized write tore. If the
				// remaining lead time still covers another attempt, the
				// node re-enters the lead-time priority queue; otherwise
				// its prediction goes unserved.
				a.res.PFSWriteFailures++
				if ev.Kind == failure.KindPrediction && a.now()+a.pricing.VulnerableWrite <= ev.FailTime {
					ep.Q.Push(ev.FailTime, ev)
				}
				drain()
				return
			}
			ep.Committed++
			a.met.commitLat.Observe(a.now() - epBegin)
			a.trace(trace.VulnerableCommit, ev.Node, "")
			a.cl.RecordPFSCheckpoint(ev.Node, ep.StartProgress)
			if a.cl.Node(ev.Node).State == cluster.Vulnerable {
				a.cl.MarkHealthy(ev.Node)
			}
			if ev.Kind == failure.KindPrediction && a.now() <= ev.FailTime {
				// The vulnerable node's state reached the PFS before its
				// failure: the failure is mitigated.
				a.st.Mitigate(ev.ID, ep.StartProgress)
				a.met.leadConsumed.Observe(a.now() - (ev.FailTime - ev.Lead))
				a.met.leadMargin.Observe(ev.FailTime - a.now())
			}
			drain()
		})
	}
	drain()
}

// startMigration begins a live migration. The application keeps running;
// completion is a scheduled callback.
func (a *appSim) startMigration(ev failure.Event) {
	m := a.st.StartMigration(ev)
	if a.cfg.Trace != nil {
		a.trace(trace.MigrationStart, ev.Node, fmt.Sprintf("theta=%.1fs", a.plat.Theta))
	}
	a.cl.MarkMigrating(ev.Node)
	a.sched(a.plat.Theta, "migration", func() {
		if !a.st.FinishMigration(m) {
			return
		}
		a.res.Migrations++
		a.trace(trace.MigrationDone, ev.Node, "")
		// The application dilates slightly while migrating.
		a.res.Overheads.Checkpoint += a.cfg.LM.DilationSeconds(a.plat.PerNodeGB)
		if a.cl.Node(ev.Node).State == cluster.Migrating {
			a.cl.MarkHealthy(ev.Node)
		}
		if ev.Kind == failure.KindPrediction {
			a.st.MarkAvoided(ev.ID)
			a.res.Avoided++
			a.st.ForgetPrediction(ev.ID)
		}
	})
}

// safeguard runs M1's just-in-time checkpoint: every node writes to the
// PFS synchronously, racing the predicted failure. done stands in for
// crmodel's deferred safeguarding-flag clear: it runs on every exit path
// before control returns to the caller's continuation.
func (a *appSim) safeguard(k func()) {
	if a.safeguarding {
		k() // the in-flight safeguard covers this prediction too
		return
	}
	a.safeguarding = true
	done := func() {
		a.safeguarding = false
		k()
	}
	a.res.ProactiveCkpts++
	a.trace(trace.SafeguardStart, -1, "")
	began := a.now()
	startProgress := a.progress
	a.flowWait(ClassCollective, float64(a.plat.Nodes)*a.plat.PerNodeGB, a.plat.FullPFSWrite, &a.res.Overheads.Checkpoint, func(ok bool) {
		if !ok {
			done() // the failure won the race (or rolled us back)
			return
		}
		if a.inj.PFSWriteFails() {
			a.res.PFSWriteFailures++
			a.trace(trace.SafeguardEnd, -1, "write failed (injected)")
			done()
			return
		}
		a.commitFullPFS(startProgress)
		if a.inj.CorruptCommit() {
			a.st.MarkCorrupt(startProgress)
		}
		a.st.MarkRescheduled()
		a.trace(trace.SafeguardEnd, -1, "")
		now := a.now()
		a.met.safeguardDur.Observe(now - began)
		if a.plat.FullPFSWrite > 0 {
			a.met.pfsGBs.Observe(float64(a.plat.Nodes) * a.plat.PerNodeGB / a.plat.FullPFSWrite)
		}
		a.st.EachPrediction(func(id int64, pi policy.Prediction) {
			if pi.FailAt >= now {
				// The safeguard committed everyone's state before this
				// pending failure: mitigated.
				a.st.Mitigate(id, startProgress)
				a.met.leadConsumed.Observe(now - (pi.FailAt - pi.Lead))
				a.met.leadMargin.Observe(pi.FailAt - now)
			}
		})
		done()
	})
}

// commitFullPFS records a full-application checkpoint at progress q as
// resident on the PFS.
func (a *appSim) commitFullPFS(q float64) {
	if a.st.CommitPFS(q) {
		a.cl.RecordPFSCheckpointAll(q)
	}
}

// onFailure handles a failure striking node ev.Node: classify it, roll
// progress back, perform recovery, replace the node, then run k.
func (a *appSim) onFailure(ev failure.Event, k func()) {
	a.res.Failures++
	if ev.Lead > 0 {
		a.res.Predicted++
	}
	out := a.pol.OnFailure(a.st, ev)
	if out.MigrationAborted {
		a.res.AbortedMigrations++
	}
	a.cl.Fail(ev.Node)
	if out.Mitigated {
		a.res.Mitigated++
	}
	q, fullPFSRestore, corrupted := a.st.ResolveRestart(a.cl.RecoverableProgress(ev.Node), out)
	if corrupted > 0 {
		a.res.CorruptRestarts += corrupted
		a.inj.ObserveCorruptRestarts(corrupted)
		// The checkpoint records claiming the discarded generations are
		// lies now; no later restart may try them again.
		a.cl.ClampCheckpoints(q)
	}
	recovery := a.plat.RecoveryBB
	// A PFS restore reads the full checkpoint over the shared filesystem
	// and contends at the arbiter; BB recovery is node-local (no volume).
	recoveryGB := 0.0
	if fullPFSRestore {
		recovery = a.plat.RecoveryPFS
		recoveryGB = float64(a.plat.Nodes) * a.plat.PerNodeGB
	}
	loss := 0.0
	if a.progress > q {
		loss = a.progress - q
		a.res.Recompute += loss
		a.progress = q
	}
	a.met.recomputeLoss.Observe(loss)
	if fullPFSRestore && recovery > 0 {
		a.met.pfsGBs.Observe(float64(a.plat.Nodes) * a.plat.PerNodeGB / recovery)
	}
	if a.cfg.Trace != nil {
		outcome := "unhandled"
		if out.Mitigated {
			outcome = "mitigated"
		}
		a.trace(trace.Failure, ev.Node, fmt.Sprintf("%s loss=%.0fs", outcome, loss))
	}
	if err := a.cl.Replace(ev.Node); err != nil {
		// Spare pool exhausted: the resource manager cannot re-host the
		// failed rank, so the failure is job-fatal. The run ends truncated
		// at the current time — no recovery is charged; k unwinds through
		// handleEvents, whose truncated checks stop the chain (crmodel's
		// early returns through the call stack).
		a.res.Truncated = true
		k()
		return
	}
	// Recovery mirrors crmodel's retry structure: corrupt candidates cost
	// a torn read each, cascades void the partial restore, and failed
	// restart attempts charge deterministic doubling backoff. The nested
	// `for !blockedWait(...) {}` loops become persistentWait chains; k is
	// their truncated-abort continuation (crmodel's `return` from the
	// retry loops skips the recovery metering the same way).
	began := a.now()
	attempt, cascades := 0, 0
	finish := func() {
		if cascades > 0 {
			a.inj.ObserveCascadeDepth(cascades)
		}
		a.met.recoveryDur.Observe(a.now() - began)
		a.trace(trace.RecoveryDone, ev.Node, "")
		k()
	}
	var mainLoop func()
	mainLoop = func() {
		// CascadeRecovery is drawn every iteration — even at the depth
		// cap — exactly as the app tier does, to keep the rng plan in
		// lockstep.
		if strike, frac := a.inj.CascadeRecovery(); strike && cascades < faultinject.MaxCascadeDepth {
			cascades++
			a.res.Cascades++
			a.persistentWait(frac*recoveryGB, frac*recovery, mainLoop, k)
			return
		}
		a.persistentWait(recoveryGB, recovery, func() {
			fail, backoff := a.inj.RestartAttemptFails(attempt)
			if !fail {
				finish()
				return
			}
			attempt++
			a.res.RestartRetries++
			if backoff > 0 {
				// Backoff is idle waiting, not I/O: never arbitered.
				a.persistentWait(0, backoff, mainLoop, k)
				return
			}
			mainLoop()
		}, k)
	}
	var corruptLoop func(i int)
	corruptLoop = func(i int) {
		if i >= corrupted {
			mainLoop()
			return
		}
		a.persistentWait(recoveryGB, recovery, func() { corruptLoop(i + 1) }, k)
	}
	corruptLoop(0)
}

// persistentWait repeats a recovery-bucket wait until it completes
// without a voiding failure — the CPS form of crmodel's
// `for !a.blockedWait(p, dur, &a.res.Overheads.Recovery) {}` loops.
// gb > 0 marks the wait as a PFS restore read of that volume: on a
// shared machine it contends at the arbiter as a ClassRecovery flow
// (solo, or gb == 0, it is exactly blockedWait). trunc runs instead of
// retrying when a voiding failure truncated the run (crmodel's
// `if a.res.Truncated { return }` inside those loops).
func (a *appSim) persistentWait(gb, dur float64, k, trunc func()) {
	a.flowWait(ClassRecovery, gb, dur, &a.res.Overheads.Recovery, func(ok bool) {
		if ok {
			k()
			return
		}
		if a.res.Truncated {
			trunc()
			return
		}
		a.persistentWait(gb, dur, k, trunc)
	})
}

// injectLoop is the injector "process": it delivers the event stream to
// the application, skipping failures avoided by completed migrations.
// It parks (schedules injectResume) for future events and delivers
// same-time events inline, exactly like crmodel's injector loop.
func (a *appSim) injectLoop() {
	for {
		ev := a.stream.Next()
		if a.appDone {
			return
		}
		if dt := ev.Time - a.now(); dt > 0 {
			ev := ev
			a.sched(dt, "injector", func() { a.injectResume(ev) })
			return
		}
		a.deliver(ev)
	}
}

// injectResume is the injector waking at a delivery time.
func (a *appSim) injectResume(ev failure.Event) {
	if a.appDone {
		return
	}
	a.deliver(ev)
	a.injectLoop()
}

// deliver classifies one stream event and hands it to the application.
func (a *appSim) deliver(ev failure.Event) {
	switch ev.Kind {
	case failure.KindFailure:
		if a.st.ConsumeAvoided(ev.ID) {
			return // live migration emptied the node in time
		}
		a.est.Observe()
	default:
		if !a.cfg.Model.UsesPrediction() {
			return // model B ignores the predictor entirely
		}
	}
	a.pending = append(a.pending, ev)
	a.interrupt()
}
