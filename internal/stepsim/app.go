package stepsim

import (
	"fmt"
	"math"

	"pckpt/internal/cluster"
	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/metrics"
	"pckpt/internal/oci"
	"pckpt/internal/pckpt"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/rng"
	"pckpt/internal/stats"
	"pckpt/internal/trace"
)

// Config parameterises one step-tier simulation: the model under test,
// the shared platform configuration, and this tier's observers. It is
// the same shape as crmodel.Config and covers the full catalogue — the
// p-ckpt episode machinery (P1/P2) runs here as a continuation chain,
// bit-identical to the app tier's process form.
type Config struct {
	// Model is the C/R policy to simulate. Must satisfy Supports.
	Model policy.ID
	// Config is the tier-independent platform; its fields are promoted.
	platform.Config
	// Trace, when non-nil, receives the run's timeline events.
	Trace trace.Recorder
	// Metrics, when non-nil, receives the run's simulation-time metrics
	// under the "stepsim.<model>." prefix. Nil costs nothing.
	Metrics *metrics.Registry
}

// Supports reports whether the step tier implements the catalogue
// entry: the full catalogue (B, M1, M2, P1, P2).
func Supports(id policy.ID) bool { return id.Valid() }

// withDefaults returns a copy with zero platform fields defaulted.
func (c Config) withDefaults() Config {
	c.Config = c.Config.WithDefaults()
	return c
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	if !c.Model.Valid() {
		return fmt.Errorf("stepsim: invalid model %d", uint8(c.Model))
	}
	return c.Config.Validate()
}

// Sigma returns Eq. (2)'s σ for this configuration (0 for models
// without LM), exactly as the app tier computes it.
func (c Config) Sigma() float64 {
	if !c.Model.UsesLM() {
		return 0
	}
	return c.Config.SigmaLM()
}

// maxRunEvents is the per-run watchdog ceiling, matching crmodel's.
const maxRunEvents = 100_000_000

// appSim is the state of one step-tier run. It mirrors crmodel.appSim
// field for field, but the application "process" is a continuation chain
// on the step engine instead of a goroutine: every blocking call site of
// the process-based tier appears here as a wait with an explicit
// continuation, scheduled at the same logical point in the same
// statement order — which is what makes a run bit-identical to the app
// tier on the shared failure stream.
type appSim struct {
	cfg    Config
	pol    policy.Policy
	eng    *Engine
	stream failure.EventSource
	est    *failure.RateEstimator
	cl     *cluster.Cluster
	inj    *faultinject.Injector

	plat  platform.Derived
	sigma float64
	// pricing derives the episode's phase-1/phase-2 transfer prices from
	// the shared pckpt.EpisodePricing (identical float operations across
	// tiers).
	pricing pckpt.EpisodePricing

	progress float64
	curOCI   float64
	st       *policy.State

	pending      []failure.Event
	safeguarding bool

	// Step-machine state standing in for the application goroutine:
	// appDone mirrors !Proc.Alive(); blocked is the pending wake timer
	// while the app waits; blockedCont is the wait's continuation
	// (invoked with interrupted=true when the injector cuts it short);
	// interruptPending drops double interrupt deliveries exactly like
	// sim.Proc (the first reason wins).
	appDone          bool
	blocked          Timer
	blockedCont      func(interrupted bool)
	interruptPending bool

	met runMetrics
	res stats.RunResult
}

// trace emits a timeline event when tracing is enabled.
func (a *appSim) trace(kind trace.Kind, node int, detail string) {
	if a.cfg.Trace == nil {
		return
	}
	a.cfg.Trace.Record(trace.Event{
		T:        a.eng.Now(),
		Kind:     kind,
		Node:     node,
		Progress: a.progress,
		Detail:   detail,
	})
}

// Simulate executes one run and returns its accounting. Deterministic in
// (cfg, seed), and bit-identical to crmodel.Simulate for the supported
// models on the same configuration and seed.
func Simulate(cfg Config, seed uint64) stats.RunResult {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	src := rng.New(seed)
	a := &appSim{
		cfg:   cfg,
		pol:   policy.For(cfg.Model),
		eng:   NewEngine(),
		est:   failure.NewRateEstimator(cfg.System.JobFailureRate(cfg.App.Nodes)),
		cl:    cluster.New(cfg.App.Nodes, math.MaxInt32),
		plat:  cfg.Derive(),
		sigma: cfg.Sigma(),
		st:    policy.NewState(),
	}
	a.pricing = pckpt.NewEpisodePricing(cfg.IO, a.plat.PerNodeGB)
	a.met = newRunMetrics(cfg.Metrics, cfg.Model)
	if cfg.Metrics != nil {
		a.observeCluster()
	}
	// Substream layout matches the app tier exactly: the failure stream
	// draws from Split(1), the fault plan from Split(StreamKey).
	a.stream = failure.NewSource(cfg.StreamConfig(cfg.Metrics), src.Split(1))
	a.inj = faultinject.New(cfg.Faults, src.Split(faultinject.StreamKey), cfg.Metrics)
	a.eng.SetWatchdog(maxRunEvents, 0)

	// Start order mirrors crmodel's spawn order: the app's first compute
	// cycle schedules its wake before the injector draws the stream.
	a.eng.AtNamed(0, "app", a.start)
	a.eng.AtNamed(0, "injector", a.injectLoop)
	a.eng.RunAll()
	a.eng.Release()
	return a.res
}

// wait parks the application for d seconds of simulated time: cont runs
// at expiry with interrupted=false, or at the interrupt time with
// interrupted=true if the injector cuts the wait short (in which case
// less than d elapsed) — the CPS equivalent of sim.Proc.Wait.
func (a *appSim) wait(d float64, cont func(interrupted bool)) {
	if d < 0 {
		panic(fmt.Sprintf("stepsim: wait with negative duration %g", d))
	}
	a.blockedCont = cont
	a.blocked = a.eng.AfterCancel(d, "app", func() {
		a.resume()(false)
	})
}

// resume clears the parked state and returns the pending continuation,
// mirroring sim.Proc.park's bookkeeping on wake-up.
func (a *appSim) resume() func(bool) {
	cont := a.blockedCont
	a.blockedCont = nil
	a.blocked = Timer{}
	a.interruptPending = false
	return cont
}

// interrupt delivers an interrupt to the parked application: its pending
// wake is cancelled and the interrupted continuation is scheduled at the
// current time — exactly sim.Proc.Interrupt on a Wait-blocked process,
// including the double-delivery drop.
func (a *appSim) interrupt() {
	if a.appDone {
		return
	}
	if a.interruptPending {
		return
	}
	a.interruptPending = true
	a.eng.Cancel(a.blocked)
	a.blocked = Timer{}
	a.eng.AtNamed(0, "app", func() {
		a.resume()(true)
	})
}

// refreshOCI re-derives the checkpoint interval from the current failure
// rate estimate, per Eq. (1) (σ=0) or Eq. (2).
func (a *appSim) refreshOCI() {
	rate := a.est.Rate(a.eng.Now())
	a.curOCI = oci.FromJobRate(a.plat.BBWrite, rate, a.sigma)
}

// start begins the application: compute OCI seconds, checkpoint to BB,
// repeat until the required computation completes (crmodel's run loop).
func (a *appSim) start() {
	a.runLoop()
}

func (a *appSim) runLoop() {
	if a.progress < a.plat.ComputeSeconds {
		a.computeChunk(func() {
			if a.progress >= a.plat.ComputeSeconds {
				a.finish()
				return
			}
			a.bbCheckpoint(a.runLoop)
		})
		return
	}
	a.finish()
}

// finish completes the application process; the injector observes
// appDone at its next delivery, exactly as it observes !Alive().
func (a *appSim) finish() {
	a.res.WallSeconds = a.eng.Now()
	a.trace(trace.Complete, -1, "")
	a.appDone = true
}

// computeChunk advances the application by one checkpoint interval,
// absorbing interrupts, then runs k.
func (a *appSim) computeChunk(k func()) {
	a.refreshOCI()
	target := math.Min(a.progress+a.curOCI, a.plat.ComputeSeconds)
	if a.cfg.Trace != nil {
		a.trace(trace.CycleStart, -1, fmt.Sprintf("interval=%.0fs", target-a.progress))
	}
	var step func()
	step = func() {
		if a.progress >= target {
			k()
			return
		}
		start := a.eng.Now()
		a.wait(target-a.progress, func(interrupted bool) {
			a.progress += a.eng.Now() - start
			if !interrupted {
				k()
				return
			}
			a.handleEvents(func() {
				if a.st.TakeRescheduled() {
					// A proactive action committed a full checkpoint;
					// re-base the periodic schedule on the fresh interval.
					a.refreshOCI()
					target = math.Min(a.progress+a.curOCI, a.plat.ComputeSeconds)
				}
				step()
			})
		})
	}
	step()
}

// bbCheckpoint performs the synchronous burst-buffer write of a periodic
// checkpoint, launches the asynchronous PFS drain, then runs k.
func (a *appSim) bbCheckpoint(k func()) {
	began := a.eng.Now()
	a.blockedWait(a.plat.BBWrite, &a.res.Overheads.Checkpoint, func(ok bool) {
		if !ok {
			// A failure voided the write and rolled progress back; resume
			// computing, the next cycle will checkpoint the redone state.
			a.met.bbAborted.Inc()
			k()
			return
		}
		a.met.bbWrite.Observe(a.eng.Now() - began)
		if a.inj.BBWriteFails() {
			a.res.BBWriteFailures++
			a.trace(trace.BBWrite, -1, "write failed (injected)")
			k()
			return
		}
		a.res.Checkpoints++
		a.st.CommitBB(a.progress)
		if a.inj.CorruptCommit() {
			a.st.MarkCorrupt(a.progress)
		}
		a.trace(trace.BBWrite, -1, "")
		a.cl.RecordBBCheckpointAll(a.progress)
		captured := a.progress
		gen, depth := a.st.BeginDrain()
		a.met.drainDepth.Set(a.eng.Now(), float64(depth))
		a.eng.At(a.plat.Drain, func() {
			depth, current := a.st.FinishDrain(gen)
			a.met.drainDepth.Set(a.eng.Now(), float64(depth))
			// The drain completes unless a newer checkpoint superseded it.
			if current {
				if a.inj.PFSWriteFails() {
					a.res.PFSWriteFailures++
					a.trace(trace.DrainDone, -1, "drain failed (injected)")
					return
				}
				a.commitFullPFS(captured)
				a.trace(trace.DrainDone, -1, "")
			}
		})
		k()
	})
}

// blockedWait blocks the application for dur seconds, accounting the
// elapsed time into bucket and processing any events that interrupt it.
// k receives false if a failure voided the activity before dur fully
// elapsed, true on completion.
func (a *appSim) blockedWait(dur float64, bucket *float64, k func(ok bool)) {
	epoch := a.st.Epoch()
	remaining := dur
	var step func()
	step = func() {
		if remaining <= 0 {
			k(true)
			return
		}
		start := a.eng.Now()
		a.wait(remaining, func(interrupted bool) {
			elapsed := a.eng.Now() - start
			remaining -= elapsed
			*bucket += elapsed
			if !interrupted {
				k(true)
				return
			}
			a.handleEvents(func() {
				if a.st.Epoch() != epoch {
					k(false)
					return
				}
				step()
			})
		})
	}
	step()
}

// handleEvents drains the pending queue, then runs k.
func (a *appSim) handleEvents(k func()) {
	if len(a.pending) == 0 {
		k()
		return
	}
	ev := a.pending[0]
	a.pending = a.pending[1:]
	next := func() { a.handleEvents(k) }
	switch ev.Kind {
	case failure.KindPrediction, failure.KindSpurious:
		a.onPrediction(ev, next)
	case failure.KindFailure:
		a.onFailure(ev, next)
	default:
		next()
	}
}

// onPrediction records the prediction, marks the node vulnerable, and
// executes whatever proactive action the model's strategy decides.
func (a *appSim) onPrediction(ev failure.Event, k func()) {
	if ev.Kind == failure.KindPrediction {
		a.st.RecordPrediction(ev.ID, policy.Prediction{Node: ev.Node, FailAt: ev.FailTime, Lead: ev.Lead})
		if a.cfg.Trace != nil {
			a.trace(trace.Prediction, ev.Node, fmt.Sprintf("lead=%.1fs", ev.Lead))
		}
	} else if a.cfg.Trace != nil {
		a.trace(trace.SpuriousPrediction, ev.Node, fmt.Sprintf("lead=%.1fs", ev.Lead))
	}
	if err := a.cl.MarkVulnerable(ev.Node, ev.FailTime); err == nil {
		// Clear the vulnerable mark once the predicted failure time has
		// passed without a newer prediction superseding it.
		failAt := ev.FailTime
		node := ev.Node
		a.eng.At(math.Max(failAt-a.eng.Now(), 0), func() {
			n := a.cl.Node(node)
			if n.State == cluster.Vulnerable && n.PredictedFailAt == failAt {
				a.cl.MarkHealthy(node)
			}
		})
	}
	switch act := a.pol.OnPrediction(a.st, ev.Node, ev.Lead, a.plat.Theta); act {
	case policy.ActJoinEpisode:
		// Phase 1 in progress: the new vulnerable node joins the
		// node-local priority queue (lower lead = higher priority).
		a.st.Episode().Q.Push(ev.FailTime, ev)
		k()
	case policy.ActMigrate:
		a.startMigration(ev)
		k()
	case policy.ActStartEpisode:
		a.pckptEpisode(ev, k)
	case policy.ActSafeguard:
		a.safeguard(k)
	case policy.ActNone:
		k()
	default:
		panic(fmt.Sprintf("stepsim: unsupported action %d for model %v", act, a.cfg.Model))
	}
}

// pckptEpisode runs one coordinated prioritized checkpoint: phase 1
// serves vulnerable nodes serially by lead-time priority with
// uncontended PFS access; phase 2 commits the remaining nodes at
// aggregate bandwidth. The application is blocked throughout (healthy
// nodes wait). A failure during the episode abandons the remainder.
//
// This is crmodel's pckptEpisode in continuation-passing style: the
// drain loop becomes a recursive continuation, `break` and the deferred
// EndEpisode become the finish/done continuations, and every injector
// draw, metric observation, and trace record keeps its statement order
// — which is what holds the port bit-identical to the app tier.
func (a *appSim) pckptEpisode(first failure.Event, k func()) {
	a.res.ProactiveCkpts++
	a.trace(trace.EpisodeStart, first.Node, "")
	epBegin := a.eng.Now()
	ep := a.st.BeginEpisode(a.progress)
	done := func() { // crmodel's `defer a.st.EndEpisode()`
		a.st.EndEpisode()
		k()
	}
	ep.Q.Push(first.FailTime, first)
	// A p-ckpt request supersedes in-flight migrations (Fig. 5): abort
	// them and requeue their nodes as vulnerable.
	a.st.AbortMigrations(func(ev failure.Event) {
		a.res.AbortedMigrations++
		a.trace(trace.MigrationAborted, ev.Node, "superseded by p-ckpt")
		if a.cl.Node(ev.Node).State == cluster.Migrating {
			a.cl.MarkVulnerable(ev.Node, ev.FailTime)
		}
		ep.Q.Push(ev.FailTime, ev)
	})
	finish := func() { // everything after crmodel's drain loop
		if ep.Abandoned {
			a.met.episodesAbandoned.Inc()
			done()
			return
		}
		commit := func() {
			if a.inj.PFSWriteFails() {
				// The phase-2 collective write failed: the episode's full
				// checkpoint never commits (phase-1 mitigations stand —
				// those nodes' states did reach the PFS).
				a.res.PFSWriteFailures++
			} else {
				a.commitFullPFS(ep.StartProgress)
				if a.inj.CorruptCommit() {
					a.st.MarkCorrupt(ep.StartProgress)
				}
				a.st.MarkRescheduled()
			}
			a.met.episodeDur.Observe(a.eng.Now() - epBegin)
			if a.cfg.Trace != nil {
				a.trace(trace.EpisodeEnd, -1, fmt.Sprintf("blocked=%.1fs committed=%d", a.eng.Now()-epBegin, ep.Committed))
			}
			done()
		}
		// Phase 2: pfs-commit broadcast; healthy nodes write together.
		healthy := a.plat.Nodes - ep.Committed
		if healthy > 0 {
			tr := a.pricing.Phase2Transfer(healthy)
			a.blockedWait(tr.Seconds, &a.res.Overheads.Checkpoint, func(ok bool) {
				if !ok {
					a.met.episodesAbandoned.Inc()
					done()
					return
				}
				a.met.pfsGBs.Observe(tr.GBs)
				commit()
			})
			return
		}
		commit()
	}
	var drain func()
	drain = func() {
		if ep.Q.Len() == 0 || ep.Abandoned {
			finish()
			return
		}
		_, ev := ep.Q.Pop()
		a.blockedWait(a.pricing.VulnerableWrite, &a.res.Overheads.Checkpoint, func(ok bool) {
			if !ok {
				finish() // the failure that voided the wait abandoned ep
				return
			}
			if a.inj.PFSWriteFails() {
				// The vulnerable node's prioritized write tore. If the
				// remaining lead time still covers another attempt, the
				// node re-enters the lead-time priority queue; otherwise
				// its prediction goes unserved.
				a.res.PFSWriteFailures++
				if ev.Kind == failure.KindPrediction && a.eng.Now()+a.pricing.VulnerableWrite <= ev.FailTime {
					ep.Q.Push(ev.FailTime, ev)
				}
				drain()
				return
			}
			ep.Committed++
			a.met.commitLat.Observe(a.eng.Now() - epBegin)
			a.trace(trace.VulnerableCommit, ev.Node, "")
			a.cl.RecordPFSCheckpoint(ev.Node, ep.StartProgress)
			if a.cl.Node(ev.Node).State == cluster.Vulnerable {
				a.cl.MarkHealthy(ev.Node)
			}
			if ev.Kind == failure.KindPrediction && a.eng.Now() <= ev.FailTime {
				// The vulnerable node's state reached the PFS before its
				// failure: the failure is mitigated.
				a.st.Mitigate(ev.ID, ep.StartProgress)
				a.met.leadConsumed.Observe(a.eng.Now() - (ev.FailTime - ev.Lead))
				a.met.leadMargin.Observe(ev.FailTime - a.eng.Now())
			}
			drain()
		})
	}
	drain()
}

// startMigration begins a live migration. The application keeps running;
// completion is a scheduled callback.
func (a *appSim) startMigration(ev failure.Event) {
	m := a.st.StartMigration(ev)
	if a.cfg.Trace != nil {
		a.trace(trace.MigrationStart, ev.Node, fmt.Sprintf("theta=%.1fs", a.plat.Theta))
	}
	a.cl.MarkMigrating(ev.Node)
	a.eng.At(a.plat.Theta, func() {
		if !a.st.FinishMigration(m) {
			return
		}
		a.res.Migrations++
		a.trace(trace.MigrationDone, ev.Node, "")
		// The application dilates slightly while migrating.
		a.res.Overheads.Checkpoint += a.cfg.LM.DilationSeconds(a.plat.PerNodeGB)
		if a.cl.Node(ev.Node).State == cluster.Migrating {
			a.cl.MarkHealthy(ev.Node)
		}
		if ev.Kind == failure.KindPrediction {
			a.st.MarkAvoided(ev.ID)
			a.res.Avoided++
			a.st.ForgetPrediction(ev.ID)
		}
	})
}

// safeguard runs M1's just-in-time checkpoint: every node writes to the
// PFS synchronously, racing the predicted failure. done stands in for
// crmodel's deferred safeguarding-flag clear: it runs on every exit path
// before control returns to the caller's continuation.
func (a *appSim) safeguard(k func()) {
	if a.safeguarding {
		k() // the in-flight safeguard covers this prediction too
		return
	}
	a.safeguarding = true
	done := func() {
		a.safeguarding = false
		k()
	}
	a.res.ProactiveCkpts++
	a.trace(trace.SafeguardStart, -1, "")
	began := a.eng.Now()
	startProgress := a.progress
	a.blockedWait(a.plat.FullPFSWrite, &a.res.Overheads.Checkpoint, func(ok bool) {
		if !ok {
			done() // the failure won the race (or rolled us back)
			return
		}
		if a.inj.PFSWriteFails() {
			a.res.PFSWriteFailures++
			a.trace(trace.SafeguardEnd, -1, "write failed (injected)")
			done()
			return
		}
		a.commitFullPFS(startProgress)
		if a.inj.CorruptCommit() {
			a.st.MarkCorrupt(startProgress)
		}
		a.st.MarkRescheduled()
		a.trace(trace.SafeguardEnd, -1, "")
		now := a.eng.Now()
		a.met.safeguardDur.Observe(now - began)
		if a.plat.FullPFSWrite > 0 {
			a.met.pfsGBs.Observe(float64(a.plat.Nodes) * a.plat.PerNodeGB / a.plat.FullPFSWrite)
		}
		a.st.EachPrediction(func(id int64, pi policy.Prediction) {
			if pi.FailAt >= now {
				// The safeguard committed everyone's state before this
				// pending failure: mitigated.
				a.st.Mitigate(id, startProgress)
				a.met.leadConsumed.Observe(now - (pi.FailAt - pi.Lead))
				a.met.leadMargin.Observe(pi.FailAt - now)
			}
		})
		done()
	})
}

// commitFullPFS records a full-application checkpoint at progress q as
// resident on the PFS.
func (a *appSim) commitFullPFS(q float64) {
	if a.st.CommitPFS(q) {
		a.cl.RecordPFSCheckpointAll(q)
	}
}

// onFailure handles a failure striking node ev.Node: classify it, roll
// progress back, perform recovery, replace the node, then run k.
func (a *appSim) onFailure(ev failure.Event, k func()) {
	a.res.Failures++
	if ev.Lead > 0 {
		a.res.Predicted++
	}
	out := a.pol.OnFailure(a.st, ev)
	if out.MigrationAborted {
		a.res.AbortedMigrations++
	}
	a.cl.Fail(ev.Node)
	if out.Mitigated {
		a.res.Mitigated++
	}
	q, fullPFSRestore, corrupted := a.st.ResolveRestart(a.cl.RecoverableProgress(ev.Node), out)
	if corrupted > 0 {
		a.res.CorruptRestarts += corrupted
		a.inj.ObserveCorruptRestarts(corrupted)
		// The checkpoint records claiming the discarded generations are
		// lies now; no later restart may try them again.
		a.cl.ClampCheckpoints(q)
	}
	recovery := a.plat.RecoveryBB
	if fullPFSRestore {
		recovery = a.plat.RecoveryPFS
	}
	loss := 0.0
	if a.progress > q {
		loss = a.progress - q
		a.res.Recompute += loss
		a.progress = q
	}
	a.met.recomputeLoss.Observe(loss)
	if fullPFSRestore && recovery > 0 {
		a.met.pfsGBs.Observe(float64(a.plat.Nodes) * a.plat.PerNodeGB / recovery)
	}
	if a.cfg.Trace != nil {
		outcome := "unhandled"
		if out.Mitigated {
			outcome = "mitigated"
		}
		a.trace(trace.Failure, ev.Node, fmt.Sprintf("%s loss=%.0fs", outcome, loss))
	}
	if err := a.cl.Replace(ev.Node); err != nil {
		panic(fmt.Sprintf("stepsim: %v", err))
	}
	// Recovery mirrors crmodel's retry structure: corrupt candidates cost
	// a torn read each, cascades void the partial restore, and failed
	// restart attempts charge deterministic doubling backoff. The nested
	// `for !blockedWait(...) {}` loops become persistentWait chains.
	began := a.eng.Now()
	attempt, cascades := 0, 0
	finish := func() {
		if cascades > 0 {
			a.inj.ObserveCascadeDepth(cascades)
		}
		a.met.recoveryDur.Observe(a.eng.Now() - began)
		a.trace(trace.RecoveryDone, ev.Node, "")
		k()
	}
	var mainLoop func()
	mainLoop = func() {
		// CascadeRecovery is drawn every iteration — even at the depth
		// cap — exactly as the app tier does, to keep the rng plan in
		// lockstep.
		if strike, frac := a.inj.CascadeRecovery(); strike && cascades < faultinject.MaxCascadeDepth {
			cascades++
			a.res.Cascades++
			a.persistentWait(frac*recovery, mainLoop)
			return
		}
		a.persistentWait(recovery, func() {
			fail, backoff := a.inj.RestartAttemptFails(attempt)
			if !fail {
				finish()
				return
			}
			attempt++
			a.res.RestartRetries++
			if backoff > 0 {
				a.persistentWait(backoff, mainLoop)
				return
			}
			mainLoop()
		})
	}
	var corruptLoop func(i int)
	corruptLoop = func(i int) {
		if i >= corrupted {
			mainLoop()
			return
		}
		a.persistentWait(recovery, func() { corruptLoop(i + 1) })
	}
	corruptLoop(0)
}

// persistentWait repeats blockedWait(dur) into the recovery bucket until
// it completes without a voiding failure — the CPS form of crmodel's
// `for !a.blockedWait(p, dur, &a.res.Overheads.Recovery) {}` loops.
func (a *appSim) persistentWait(dur float64, k func()) {
	a.blockedWait(dur, &a.res.Overheads.Recovery, func(ok bool) {
		if ok {
			k()
			return
		}
		a.persistentWait(dur, k)
	})
}

// injectLoop is the injector "process": it delivers the event stream to
// the application, skipping failures avoided by completed migrations.
// It parks (schedules injectResume) for future events and delivers
// same-time events inline, exactly like crmodel's injector loop.
func (a *appSim) injectLoop() {
	for {
		ev := a.stream.Next()
		if a.appDone {
			return
		}
		if dt := ev.Time - a.eng.Now(); dt > 0 {
			ev := ev
			a.eng.AtNamed(dt, "injector", func() { a.injectResume(ev) })
			return
		}
		a.deliver(ev)
	}
}

// injectResume is the injector waking at a delivery time.
func (a *appSim) injectResume(ev failure.Event) {
	if a.appDone {
		return
	}
	a.deliver(ev)
	a.injectLoop()
}

// deliver classifies one stream event and hands it to the application.
func (a *appSim) deliver(ev failure.Event) {
	switch ev.Kind {
	case failure.KindFailure:
		if a.st.ConsumeAvoided(ev.ID) {
			return // live migration emptied the node in time
		}
		a.est.Observe()
	default:
		if !a.cfg.Model.UsesPrediction() {
			return // model B ignores the predictor entirely
		}
	}
	a.pending = append(a.pending, ev)
	a.interrupt()
}
