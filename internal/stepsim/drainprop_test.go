package stepsim_test

import (
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/lm"
	"pckpt/internal/pckpt"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/stepsim"
	"pckpt/internal/trace"
	"pckpt/internal/workload"
)

// This file property-tests the prioritized-queue drain invariant of the
// p-ckpt protocol (Sec. VI): phase-1 PFS grants go to the queued
// vulnerable node with the least lead time to failure (earliest
// deadline), late arrivals insert by deadline — not arrival — order,
// and an aborted migration re-enters the queue under the same rule. One
// shared generator feeds three executors: an abstract arbiter model (the
// invariant stated directly), the process-per-node implementation
// (internal/pckpt), and the step-engine episode port (the P1/P2 path in
// this package), so the two simulations are checked against the
// specification rather than only against each other.

// propPred is one generated prediction in episode-relative terms.
type propPred struct {
	node     int
	at       float64 // arrival of the prediction
	deadline float64 // predicted failure time (at + lead)
}

// lcg is a tiny deterministic generator so scenarios are reproducible
// without seeding any simulation RNG machinery.
type lcg uint64

func (l *lcg) float() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(*l>>11) / (1 << 53)
}

// propPlatform is the crossval platform the bit-identity suite uses.
func propPlatform() platform.Config {
	return platform.Config{
		App:    workload.App{Name: "crossval-48", Nodes: 48, TotalCkptGB: 960, ComputeHours: 24},
		System: failure.System{Name: "busy", Shape: 0.75, ScaleHours: 40, Nodes: 48},
	}
}

// refCommitOrder is the invariant stated directly: an arbiter holding a
// deadline-ordered queue, granting one exclusive write of w seconds at
// a time, with arrivals joining the queue whenever they land.
func refCommitOrder(preds []propPred, w float64) []int {
	pending := append([]propPred(nil), preds...)
	for i := 1; i < len(pending); i++ { // insertion sort by arrival
		for j := i; j > 0 && pending[j].at < pending[j-1].at; j-- {
			pending[j], pending[j-1] = pending[j-1], pending[j]
		}
	}
	var queue []propPred
	var order []int
	t := 0.0
	for len(pending) > 0 || len(queue) > 0 {
		if len(queue) == 0 && t < pending[0].at {
			t = pending[0].at
		}
		for len(pending) > 0 && pending[0].at <= t {
			queue = append(queue, pending[0])
			pending = pending[1:]
		}
		best := 0
		for i, p := range queue {
			if p.deadline < queue[best].deadline {
				best = i
			}
		}
		order = append(order, queue[best].node)
		queue = append(queue[:best], queue[best+1:]...)
		t += w
	}
	return order
}

// genScenario draws one drain scenario: every arrival lands while the
// previous writes are still in flight (gaps < one write), so the whole
// set drains in a single episode, and every deadline clears the episode
// end, so every node commits in time and no failure interrupts the
// drain. Deadlines are otherwise scattered, so commit order differs
// from arrival order in general.
func genScenario(l *lcg, k int, w, phase2 float64) []propPred {
	preds := make([]propPred, k)
	at := 0.0
	episodeEnd := float64(k)*w + phase2
	for i := range preds {
		if i > 0 {
			at += (0.15 + 0.8*l.float()) * w
		}
		lead := episodeEnd + (2+40*l.float())*w
		preds[i] = propPred{node: 1 + i*3, at: at, deadline: at + lead}
	}
	return preds
}

// toReplay renders the scenario as a failure trace starting at start
// seconds (ReplayEvent.T is the strike time; the prediction arrives
// Lead seconds earlier), ordered by strike time as Validate requires.
func toReplay(preds []propPred, start float64) *failure.Replay {
	evs := make([]failure.ReplayEvent, len(preds))
	for i, p := range preds {
		evs[i] = failure.ReplayEvent{T: start + p.deadline, Node: p.node, Lead: p.deadline - p.at, Seq: i + 1}
	}
	for i := 1; i < len(evs); i++ { // insertion sort by strike time
		for j := i; j > 0 && evs[j].T < evs[j-1].T; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	re := &failure.Replay{Name: "drain-prop", Nodes: 48, HorizonSeconds: 7200, Events: evs}
	if err := re.Validate(); err != nil {
		panic(err)
	}
	return re
}

// stepCommitOrder replays the scenario through the step tier and reads
// the grant order off the trace — the first k prioritized commits of
// the run's first episode.
func stepCommitOrder(t *testing.T, model policy.ID, plat platform.Config, re *failure.Replay, k int) []int {
	t.Helper()
	plat.Replay = re
	var buf trace.Buffer
	stepsim.Simulate(stepsim.Config{Model: model, Config: plat, Trace: &buf}, 1)
	var order []int
	for _, e := range buf.Events() {
		if e.Kind == trace.VulnerableCommit {
			order = append(order, e.Node)
			if len(order) == k {
				break
			}
		}
	}
	return order
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDrainPriorityInvariant: for generated scenarios, the process
// implementation's grant order and the step port's grant order both
// equal the abstract arbiter's deadline order.
func TestDrainPriorityInvariant(t *testing.T) {
	plat := propPlatform().WithDefaults()
	d := plat.Derive()
	w := d.SingleNodePFSWrite
	const k = 12
	phase2 := pckpt.NewEpisodePricing(plat.IO, d.PerNodeGB).Phase2Transfer(plat.App.Nodes - k).Seconds
	for seed := 1; seed <= 6; seed++ {
		l := lcg(seed)
		preds := genScenario(&l, k, w, phase2)
		want := refCommitOrder(preds, w)

		pp := make([]pckpt.Prediction, len(preds))
		for i, p := range preds {
			pp[i] = pckpt.Prediction{Node: p.node, At: p.at, Lead: p.deadline - p.at}
		}
		res := pckpt.Run(pckpt.Config{Nodes: plat.App.Nodes, PerNodeGB: d.PerNodeGB, IO: plat.IO}, pp)
		if !eqInts(res.CommitOrder, want) {
			t.Errorf("seed %d: process implementation drained %v, invariant wants %v", seed, res.CommitOrder, want)
		}
		if got := res.Mitigated(); got != k {
			t.Errorf("seed %d: %d/%d mitigated — scenario constraints violated", seed, got, k)
		}

		if got := stepCommitOrder(t, policy.P1, propPlatform(), toReplay(preds, 900), k); !eqInts(got, want) {
			t.Errorf("seed %d: step port drained %v, invariant wants %v", seed, got, want)
		}
	}
}

// TestAbortedMigrationInsertsInOrder pins the hybrid path: a migrating
// node whose LM is aborted by a p-ckpt request joins the queue under
// the same deadline rule as everyone else. Node 5 migrates (long
// lead), node 9 forces p-ckpt (lead below θ, but its failure due only
// after the drain completes — a failure mid-episode abandons the
// remainder, since mitigation preserves progress without preventing
// the strike), node 12 arrives during node 9's write with a deadline
// between the two — so the grant order is 9, 12, 5 while the arrival
// order was 5, 9, 12. The default θ on this platform is shorter than a
// three-commit episode, which would make "below θ yet past the episode
// end" unsatisfiable, so the scenario raises θ through the LM α knob.
func TestAbortedMigrationInsertsInOrder(t *testing.T) {
	plat := propPlatform()
	plat.LM = lm.Default().WithAlpha(8)
	plat = plat.WithDefaults()
	d := plat.Derive()
	w, theta := d.SingleNodePFSWrite, d.Theta
	phase2 := pckpt.NewEpisodePricing(plat.IO, d.PerNodeGB).Phase2Transfer(plat.App.Nodes - 3).Seconds
	triggerLead := 5*w + phase2 // past the 3-commit episode end, below θ
	if theta <= triggerLead {
		t.Fatalf("θ=%v ≤ trigger lead %v: α=8 no longer stretches θ past the episode; rescale the scenario", theta, triggerLead)
	}
	preds := []propPred{
		{node: 5, at: 0, deadline: 10 * theta},
		{node: 9, at: 2, deadline: 2 + triggerLead},
		{node: 12, at: 2 + 0.7*w, deadline: 2 + 0.7*w + 20*w},
	}
	want := []int{9, 12, 5}

	pp := make([]pckpt.Prediction, len(preds))
	for i, p := range preds {
		pp[i] = pckpt.Prediction{Node: p.node, At: p.at, Lead: p.deadline - p.at}
	}
	res := pckpt.Run(pckpt.Config{Nodes: plat.App.Nodes, PerNodeGB: d.PerNodeGB, IO: plat.IO, LM: plat.LM, Hybrid: true}, pp)
	if !eqInts(res.CommitOrder, want) {
		t.Errorf("process implementation drained %v, want %v", res.CommitOrder, want)
	}
	aborted := false
	for _, o := range res.Outcomes {
		if o.Node == 5 && o.Action == pckpt.ActionLMAborted {
			aborted = true
		}
	}
	if !aborted {
		t.Errorf("node 5's migration was not aborted onto the queue: %+v", res.Outcomes)
	}

	re := toReplay(preds, 1000)
	stepPlat := propPlatform()
	stepPlat.LM = lm.Default().WithAlpha(8)
	if got := stepCommitOrder(t, policy.P2, stepPlat, re, len(want)); !eqInts(got, want) {
		t.Errorf("step port drained %v, want %v", got, want)
	}
	plat2 := stepPlat
	plat2.Replay = re
	var buf trace.Buffer
	stepsim.Simulate(stepsim.Config{Model: policy.P2, Config: plat2, Trace: &buf}, 1)
	sawAbort := false
	for _, e := range buf.Events() {
		if e.Kind == trace.MigrationAborted && e.Node == 5 {
			sawAbort = true
		}
	}
	if !sawAbort {
		t.Error("step port never aborted node 5's migration")
	}
}
