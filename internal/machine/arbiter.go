// Package machine simulates a shared machine: several applications,
// each a full platform cell on the step tier, contend for one
// parallel-file-system bandwidth ceiling, a shared drain-concurrency
// budget, and a finite node pool. The package supplies the two control
// planes the solo tiers lack — a bandwidth arbiter (this file) pricing
// concurrent PFS transfers against each other, and an admission plane
// (admission.go) deciding when queued jobs start — and a driver
// (machine.go) running the whole cohort on one step engine.
package machine

import (
	"fmt"
	"math"

	"pckpt/internal/stepsim"
)

// flow is one in-flight transfer at the arbiter.
type flow struct {
	id       stepsim.FlowID
	app      int
	class    stepsim.WriteClass
	remainGB float64
	// soloRate is the flow's uncontended bandwidth (volume over solo
	// duration): the arbiter never allocates a flow more — contention
	// only slows a transfer down, never speeds it past its solo price.
	soloRate float64
	// rate is the current allocation, repriced on every writer-set change.
	rate  float64
	done  func()
	timer stepsim.Timer
	// queued marks a drain parked for a free drain slot; suspended marks
	// a flow frozen by its app's interrupt handling. Neither holds
	// bandwidth.
	queued    bool
	suspended bool
	// starved marks a flow active but allocated zero bandwidth since
	// starvedAt; escalated marks a flow the starvation watchdog has
	// promoted into the priority lane. escTimer is the pending watchdog.
	starved   bool
	starvedAt float64
	escalated bool
	escTimer  stepsim.Timer
}

// BandwidthArbiter is the machine's PFS bandwidth control plane. It
// implements stepsim.Arbiter with a fluid-flow model: between writer-set
// changes every active flow proceeds at a constant rate, and on every
// change (start, finish, suspend, resume, cancel) the arbiter advances
// each flow's remaining volume and re-divides the ceiling —
//
//   - vulnerable-node writes (stepsim.ClassVulnerable) form a priority
//     lane served first, in FIFO order, each capped at its solo rate, so
//     p-ckpt's phase-1 prioritization holds machine-wide;
//   - the remaining bandwidth is max-min fair-shared across all other
//     active flows, each again capped at its solo rate;
//   - drains additionally contend for MaxDrains shared slots: a drain
//     arriving with no free slot queues FIFO and holds no bandwidth.
//
// Completion times are engine timers rescheduled on each repricing, so
// the whole machine stays a deterministic single-goroutine simulation.
type BandwidthArbiter struct {
	eng      *stepsim.Engine
	ceiling  float64
	maxDrain int

	active   []*flow // allocation order: ascending flow id
	drainQ   []*flow // FIFO drains awaiting a slot
	byID     map[stepsim.FlowID]*flow
	nextID   stepsim.FlowID
	inDrain  int
	lastT    float64
	starving []bool    // app had an active-but-unallocated flow at lastT
	starveS  []float64 // integrated starvation seconds per app

	// Starvation watchdog (escBound > 0 arms it): flows starved longer
	// than escBound seconds escalate into the priority lane, so no
	// tenant starves forever even under brownout.
	escBound     float64
	numEscalated int
	escalations  []int     // per-app watchdog escalation count
	maxStretch   []float64 // per-app longest single zero-rate stretch

	// onAlloc, when non-nil, observes every repricing: the simulation
	// time, the total allocated bandwidth, and the instantaneous ceiling
	// (the conservation probe — total never exceeds the ceiling, even
	// mid-brownout).
	onAlloc func(t, totalGBs, ceilingGBs float64)

	// scratch is the water-filling worklist, reused across repricings;
	// escScratch is the escalated lane's.
	scratch    []*flow
	escScratch []*flow
}

// NewBandwidthArbiter creates the arbiter for a machine whose PFS
// sustains ceilingGBs aggregate bandwidth and maxDrains concurrent
// drains, shared by numApps applications on eng.
func NewBandwidthArbiter(eng *stepsim.Engine, ceilingGBs float64, maxDrains, numApps int) *BandwidthArbiter {
	if ceilingGBs <= 0 {
		panic(fmt.Sprintf("machine: non-positive bandwidth ceiling %g", ceilingGBs))
	}
	if maxDrains <= 0 {
		panic(fmt.Sprintf("machine: non-positive drain concurrency %d", maxDrains))
	}
	return &BandwidthArbiter{
		eng:         eng,
		ceiling:     ceilingGBs,
		maxDrain:    maxDrains,
		byID:        make(map[stepsim.FlowID]*flow),
		starving:    make([]bool, numApps),
		starveS:     make([]float64, numApps),
		escalations: make([]int, numApps),
		maxStretch:  make([]float64, numApps),
		lastT:       eng.Now(),
	}
}

// SetAllocObserver installs fn to observe every repricing's total
// allocation (t, totalGBs, ceilingGBs). Pass nil to remove.
func (b *BandwidthArbiter) SetAllocObserver(fn func(t, totalGBs, ceilingGBs float64)) { b.onAlloc = fn }

// Ceiling returns the instantaneous aggregate bandwidth ceiling.
func (b *BandwidthArbiter) Ceiling() float64 { return b.ceiling }

// SetCeiling changes the aggregate bandwidth ceiling mid-run — the PFS
// brownout/blackout hook. Zero is legal (a blackout: every flow prices
// to zero and waits); negative or NaN is not. Every transition reprices
// immediately, so in-flight transfers keep exact integer progress
// accounting across the change.
func (b *BandwidthArbiter) SetCeiling(gbs float64) {
	if gbs < 0 || math.IsNaN(gbs) {
		panic(fmt.Sprintf("machine: invalid bandwidth ceiling %g", gbs))
	}
	b.ceiling = gbs
	b.reprice()
}

// SetMaxDrains changes the drain-slot budget mid-run — the drain-slot
// outage hook. Zero is legal (no drain runs until slots return).
// Shrinking evicts the most recently admitted in-flight drains back to
// the FRONT of the slot queue in start order, so when slots return the
// interrupted drains resume FIFO ahead of drains that never started;
// growing promotes queued drains FIFO.
func (b *BandwidthArbiter) SetMaxDrains(n int) {
	if n < 0 {
		panic(fmt.Sprintf("machine: negative drain concurrency %d", n))
	}
	t := b.eng.Now()
	b.advance(t)
	b.maxDrain = n
	var evicted []*flow // descending id (most recent first)
	for b.inDrain > n {
		var victim *flow
		vi := -1
		for i := len(b.active) - 1; i >= 0; i-- {
			if b.active[i].class == stepsim.ClassDrain {
				victim, vi = b.active[i], i
				break
			}
		}
		if victim == nil {
			break
		}
		b.park(victim, t)
		b.active = append(b.active[:vi], b.active[vi+1:]...)
		b.inDrain--
		victim.queued = true
		evicted = append(evicted, victim)
	}
	if len(evicted) > 0 {
		// Prepend in ascending-id (start) order ahead of never-started drains.
		requeued := make([]*flow, 0, len(evicted)+len(b.drainQ))
		for i := len(evicted) - 1; i >= 0; i-- {
			requeued = append(requeued, evicted[i])
		}
		b.drainQ = append(requeued, b.drainQ...)
	}
	for b.inDrain < n && len(b.drainQ) > 0 {
		next := b.drainQ[0]
		copy(b.drainQ, b.drainQ[1:])
		b.drainQ = b.drainQ[:len(b.drainQ)-1]
		b.activate(next)
	}
	b.reprice()
}

// MaxDrains returns the instantaneous drain-slot budget.
func (b *BandwidthArbiter) MaxDrains() int { return b.maxDrain }

// SetStarvationEscalation arms the starvation watchdog: any flow
// starved (active at zero rate) for longer than boundSeconds escalates
// into the priority lane until it next holds bandwidth. Zero disables
// the watchdog (the default); negative or NaN is rejected.
func (b *BandwidthArbiter) SetStarvationEscalation(boundSeconds float64) {
	if boundSeconds < 0 || math.IsNaN(boundSeconds) {
		panic(fmt.Sprintf("machine: invalid starvation escalation bound %g", boundSeconds))
	}
	b.escBound = boundSeconds
}

// Escalations returns how many times the starvation watchdog promoted
// one of app's flows into the priority lane.
func (b *BandwidthArbiter) Escalations(app int) int {
	if app < 0 || app >= len(b.escalations) {
		return 0
	}
	return b.escalations[app]
}

// EscalationCount returns the machine-wide watchdog escalation total.
func (b *BandwidthArbiter) EscalationCount() int {
	n := 0
	for _, e := range b.escalations {
		n += e
	}
	return n
}

// MaxStarvationStretchSeconds returns the longest single stretch during
// which app had a flow active at zero allocated bandwidth.
func (b *BandwidthArbiter) MaxStarvationStretchSeconds(app int) float64 {
	if app < 0 || app >= len(b.maxStretch) {
		return 0
	}
	return b.maxStretch[app]
}

// StarvationSeconds returns the total simulated time during which app
// had at least one runnable flow allocated zero bandwidth.
func (b *BandwidthArbiter) StarvationSeconds(app int) float64 {
	if app < 0 || app >= len(b.starveS) {
		return 0
	}
	return b.starveS[app]
}

// QueuedDrains returns the number of drains waiting for a slot.
func (b *BandwidthArbiter) QueuedDrains() int { return len(b.drainQ) }

// StartFlow implements stepsim.Arbiter. Done is always scheduled through
// the engine, never called inline.
func (b *BandwidthArbiter) StartFlow(app int, class stepsim.WriteClass, volumeGB, soloSeconds float64, done func()) stepsim.FlowID {
	if volumeGB <= 0 || soloSeconds <= 0 {
		panic(fmt.Sprintf("machine: flow with non-positive volume %g GB / solo %g s", volumeGB, soloSeconds))
	}
	b.nextID++
	f := &flow{
		id:       b.nextID,
		app:      app,
		class:    class,
		remainGB: volumeGB,
		soloRate: volumeGB / soloSeconds,
		done:     done,
	}
	b.byID[f.id] = f
	b.grow(app)
	if class == stepsim.ClassDrain && b.inDrain >= b.maxDrain {
		f.queued = true
		b.drainQ = append(b.drainQ, f)
		return f.id
	}
	b.activate(f)
	b.reprice()
	return f.id
}

// SuspendFlow implements stepsim.Arbiter: the flow's remaining volume is
// frozen and its bandwidth (and drain slot) returns to the machine.
func (b *BandwidthArbiter) SuspendFlow(id stepsim.FlowID) {
	f := b.byID[id]
	if f == nil || f.suspended {
		return
	}
	b.advance(b.eng.Now())
	f.suspended = true
	if f.queued {
		b.unqueue(f)
		return
	}
	b.deactivate(f)
	b.reprice()
}

// ResumeFlow implements stepsim.Arbiter: the flow re-enters contention
// with its remaining volume (a drain re-queues if no slot is free).
func (b *BandwidthArbiter) ResumeFlow(id stepsim.FlowID) {
	f := b.byID[id]
	if f == nil || !f.suspended {
		return
	}
	f.suspended = false
	if f.class == stepsim.ClassDrain && b.inDrain >= b.maxDrain {
		f.queued = true
		b.drainQ = append(b.drainQ, f)
		return
	}
	b.activate(f)
	b.reprice()
}

// CancelFlow implements stepsim.Arbiter: the flow is abandoned and done
// will not fire.
func (b *BandwidthArbiter) CancelFlow(id stepsim.FlowID) {
	f := b.byID[id]
	if f == nil {
		return
	}
	delete(b.byID, id)
	if f.suspended {
		return // held no slot, no bandwidth, no timer
	}
	if f.queued {
		b.unqueue(f)
		return
	}
	b.deactivate(f)
	b.reprice()
}

// complete fires when a flow's completion timer expires: the flow's
// remaining volume has fully transferred at its allocated rate.
func (b *BandwidthArbiter) complete(f *flow) {
	f.timer = stepsim.Timer{}
	delete(b.byID, f.id)
	b.deactivate(f)
	b.reprice()
	f.done()
}

// activate admits f to the allocated set (taking a drain slot if it is a
// drain), keeping the set in ascending-id order so allocation — and its
// floating-point summation order — is canonical.
func (b *BandwidthArbiter) activate(f *flow) {
	f.queued = false
	if f.class == stepsim.ClassDrain {
		b.inDrain++
	}
	i := len(b.active)
	for i > 0 && b.active[i-1].id > f.id {
		i--
	}
	b.active = append(b.active, nil)
	copy(b.active[i+1:], b.active[i:])
	b.active[i] = f
}

// park tears down f's pricing state — completion timer, open starvation
// stretch, watchdog timer, escalation — without touching its slot or
// active-set membership.
func (b *BandwidthArbiter) park(f *flow, t float64) {
	b.eng.Cancel(f.timer)
	f.timer = stepsim.Timer{}
	f.rate = 0
	if f.starved {
		b.noteStretch(f, t)
	}
	b.eng.Cancel(f.escTimer)
	f.escTimer = stepsim.Timer{}
	if f.escalated {
		f.escalated = false
		b.numEscalated--
	}
}

// noteStretch closes f's current zero-rate stretch at time t, folding
// it into the per-app maximum.
func (b *BandwidthArbiter) noteStretch(f *flow, t float64) {
	f.starved = false
	if s := t - f.starvedAt; s > b.maxStretch[f.app] {
		b.maxStretch[f.app] = s
	}
}

// escalate fires when the starvation watchdog expires: if the flow is
// still active and still priced at zero, it joins the priority lane
// until it next holds bandwidth (deactivation clears it).
func (b *BandwidthArbiter) escalate(f *flow) {
	f.escTimer = stepsim.Timer{}
	if b.byID[f.id] != f || f.suspended || f.queued || f.escalated || f.rate > 0 {
		return
	}
	f.escalated = true
	b.numEscalated++
	b.escalations[f.app]++
	b.reprice()
}

// deactivate removes f from the allocated set, cancels its timer, and —
// if it held a drain slot — promotes the longest-waiting queued drain.
func (b *BandwidthArbiter) deactivate(f *flow) {
	b.park(f, b.eng.Now())
	for i, g := range b.active {
		if g == f {
			b.active = append(b.active[:i], b.active[i+1:]...)
			break
		}
	}
	if f.class == stepsim.ClassDrain {
		b.inDrain--
		if len(b.drainQ) > 0 {
			next := b.drainQ[0]
			copy(b.drainQ, b.drainQ[1:])
			b.drainQ = b.drainQ[:len(b.drainQ)-1]
			b.activate(next)
		}
	}
}

// unqueue removes a parked drain from the slot queue.
func (b *BandwidthArbiter) unqueue(f *flow) {
	f.queued = false
	for i, g := range b.drainQ {
		if g == f {
			b.drainQ = append(b.drainQ[:i], b.drainQ[i+1:]...)
			return
		}
	}
}

// grow widens the per-app accounting to cover app.
func (b *BandwidthArbiter) grow(app int) {
	for len(b.starveS) <= app {
		b.starveS = append(b.starveS, 0)
		b.starving = append(b.starving, false)
	}
	for len(b.escalations) <= app {
		b.escalations = append(b.escalations, 0)
		b.maxStretch = append(b.maxStretch, 0)
	}
}

// advance integrates the fluid model from the last repricing to t:
// every active flow's remaining volume shrinks by rate·dt, and starved
// apps accrue starvation time.
func (b *BandwidthArbiter) advance(t float64) {
	dt := t - b.lastT
	if dt > 0 {
		for _, f := range b.active {
			f.remainGB = math.Max(f.remainGB-f.rate*dt, 0)
		}
		for app, s := range b.starving {
			if s {
				b.starveS[app] += dt
			}
		}
	}
	b.lastT = t
}

// waterFill max-min fair-shares left across unsat: repeatedly grant
// flows whose solo cap fits under the equal share, then split what
// remains equally among the unsatisfied. Returns the bandwidth still
// unallocated. A zero (or exhausted) ceiling is safe: the loop never
// runs and every flow keeps its zero rate — no division by a zero
// share, no negative allocation.
func (b *BandwidthArbiter) waterFill(unsat []*flow, left float64) float64 {
	for len(unsat) > 0 && left > 0 {
		share := left / float64(len(unsat))
		n := 0
		for _, f := range unsat {
			if f.soloRate <= share {
				f.rate = f.soloRate
				left -= f.rate
			} else {
				unsat[n] = f
				n++
			}
		}
		if n == len(unsat) {
			for _, f := range unsat {
				f.rate = share
			}
			left = 0
			break
		}
		unsat = unsat[:n]
	}
	return left
}

// reprice advances the fluid model to now, re-divides the ceiling over
// the active flows (escalated lane, then priority lane, then capped
// max-min fair share), and reschedules every completion timer.
func (b *BandwidthArbiter) reprice() {
	t := b.eng.Now()
	b.advance(t)

	left := b.ceiling
	// Escalated lane: flows the starvation watchdog promoted are
	// water-filled first, so each holds a positive rate whenever any
	// ceiling remains at all.
	if b.numEscalated > 0 {
		b.escScratch = b.escScratch[:0]
		for _, f := range b.active {
			if f.escalated {
				f.rate = 0
				b.escScratch = append(b.escScratch, f)
			}
		}
		left = b.waterFill(b.escScratch, left)
	}
	// Priority lane: vulnerable-node writes, FIFO by flow id, each at
	// its solo rate while the ceiling lasts.
	b.scratch = b.scratch[:0]
	for _, f := range b.active {
		if f.escalated {
			continue
		}
		if f.class == stepsim.ClassVulnerable {
			f.rate = math.Min(f.soloRate, left)
			left -= f.rate
		} else {
			f.rate = 0
			b.scratch = append(b.scratch, f)
		}
	}
	// Water-filling max-min over everyone else.
	b.waterFill(b.scratch, left)

	total := 0.0
	for _, f := range b.active {
		total += f.rate
	}
	if b.onAlloc != nil {
		b.onAlloc(t, total, b.ceiling)
	}
	for i := range b.starving {
		b.starving[i] = false
	}
	for _, f := range b.active {
		if f.rate == 0 {
			b.starving[f.app] = true
			if !f.starved {
				f.starved = true
				f.starvedAt = t
				if b.escBound > 0 && !f.escalated {
					f := f
					f.escTimer = b.eng.AfterCancel(b.escBound, "starve-escalate", func() { b.escalate(f) })
				}
			}
		} else if f.starved {
			b.noteStretch(f, t)
			b.eng.Cancel(f.escTimer)
			f.escTimer = stepsim.Timer{}
		}
	}

	for _, f := range b.active {
		b.eng.Cancel(f.timer)
		f.timer = stepsim.Timer{}
		if f.rate > 0 {
			f := f
			f.timer = b.eng.AfterCancel(f.remainGB/f.rate, "arbiter", func() { b.complete(f) })
		}
	}
}
